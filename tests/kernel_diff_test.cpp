// Differential kernel tests: the blocked/parallel GEMM family against a
// naive double-accumulation triple loop, and the im2col convolution
// against the direct reference implementation, each across a large set
// of randomized shapes; plus determinism checks (serial vs threaded,
// and run-to-run under threads).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/conv_direct.hpp"
#include "nn/layers.hpp"
#include "runtime/device.hpp"
#include "tensor/conv.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/pack.hpp"
#include "util/rng.hpp"

namespace dlbench::tensor {
namespace {

using runtime::Device;

// References accumulate in double, so the comparison tolerance reflects
// only float rounding inside the kernels under test.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.shape().dim(0), k = a.shape().dim(1),
                     n = b.shape().dim(1);
  Tensor c(Shape({m, n}));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a.at(i * k + p)) *
               static_cast<double>(b.at(p * n + j));
      c.at(i * n + j) = static_cast<float>(acc);
    }
  return c;
}

Tensor naive_matmul_tn(const Tensor& a, const Tensor& b) {
  // a is [K, M] stored; result is A^T * B = [M, N].
  const std::int64_t k = a.shape().dim(0), m = a.shape().dim(1),
                     n = b.shape().dim(1);
  Tensor c(Shape({m, n}));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a.at(p * m + i)) *
               static_cast<double>(b.at(p * n + j));
      c.at(i * n + j) = static_cast<float>(acc);
    }
  return c;
}

Tensor naive_matmul_nt(const Tensor& a, const Tensor& b) {
  // b is [N, K]; result is A * B^T = [M, N].
  const std::int64_t m = a.shape().dim(0), k = a.shape().dim(1),
                     n = b.shape().dim(0);
  Tensor c(Shape({m, n}));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a.at(i * k + p)) *
               static_cast<double>(b.at(j * k + p));
      c.at(i * n + j) = static_cast<float>(acc);
    }
  return c;
}

void expect_close(const Tensor& got, const Tensor& want, double tol,
                  const std::string& what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const double g = got.at(i), w = want.at(i);
    ASSERT_NEAR(g, w, tol + 1e-4 * std::max(std::abs(g), std::abs(w)))
        << what << " at flat index " << i;
  }
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    ASSERT_EQ(a.at(i), b.at(i)) << what << " differs at flat index " << i;
}

constexpr int kMatmulShapes = 60;   // per variant; >= 50 required
constexpr int kConvShapes = 54;     // >= 50 required

struct MatDims {
  std::int64_t m, k, n;
};

MatDims random_dims(util::Rng& rng) {
  // Spans tiny degenerate shapes (1x1x1) through sizes large enough to
  // exercise the blocked path and multiple thread chunks.
  return {1 + static_cast<std::int64_t>(rng.uniform_index(48)),
          1 + static_cast<std::int64_t>(rng.uniform_index(40)),
          1 + static_cast<std::int64_t>(rng.uniform_index(40))};
}

TEST(KernelDiffTest, MatmulMatchesNaiveAcrossRandomShapes) {
  util::Rng rng(101);
  const Device serial = Device::cpu();
  const Device threaded = Device::parallel(4);
  for (int it = 0; it < kMatmulShapes; ++it) {
    const MatDims d = random_dims(rng);
    Tensor a = Tensor::randn(Shape({d.m, d.k}), rng);
    Tensor b = Tensor::randn(Shape({d.k, d.n}), rng);
    const Tensor want = naive_matmul(a, b);
    const std::string what = "matmul " + std::to_string(d.m) + "x" +
                             std::to_string(d.k) + "x" + std::to_string(d.n);
    expect_close(matmul(a, b, serial), want, 1e-3, what + " serial");
    expect_close(matmul(a, b, threaded), want, 1e-3, what + " threaded");
  }
}

TEST(KernelDiffTest, MatmulTnMatchesNaiveAcrossRandomShapes) {
  util::Rng rng(202);
  const Device serial = Device::cpu();
  const Device threaded = Device::parallel(4);
  for (int it = 0; it < kMatmulShapes; ++it) {
    const MatDims d = random_dims(rng);
    Tensor a = Tensor::randn(Shape({d.k, d.m}), rng);  // stored transposed
    Tensor b = Tensor::randn(Shape({d.k, d.n}), rng);
    const Tensor want = naive_matmul_tn(a, b);
    const std::string what = "matmul_tn " + std::to_string(d.m) + "x" +
                             std::to_string(d.k) + "x" + std::to_string(d.n);
    expect_close(matmul_tn(a, b, serial), want, 1e-3, what + " serial");
    expect_close(matmul_tn(a, b, threaded), want, 1e-3, what + " threaded");
  }
}

TEST(KernelDiffTest, MatmulNtMatchesNaiveAcrossRandomShapes) {
  util::Rng rng(303);
  const Device serial = Device::cpu();
  const Device threaded = Device::parallel(4);
  for (int it = 0; it < kMatmulShapes; ++it) {
    const MatDims d = random_dims(rng);
    Tensor a = Tensor::randn(Shape({d.m, d.k}), rng);
    Tensor b = Tensor::randn(Shape({d.n, d.k}), rng);  // stored transposed
    const Tensor want = naive_matmul_nt(a, b);
    const std::string what = "matmul_nt " + std::to_string(d.m) + "x" +
                             std::to_string(d.k) + "x" + std::to_string(d.n);
    expect_close(matmul_nt(a, b, serial), want, 1e-3, what + " serial");
    expect_close(matmul_nt(a, b, threaded), want, 1e-3, what + " threaded");
  }
}

// Each row of C is produced by exactly one thread with a fixed-order
// inner loop, so 1-thread and N-thread results must agree bit for bit.
TEST(KernelDiffTest, MatmulFamilyIsThreadCountDeterministic) {
  util::Rng rng(404);
  const Device serial = Device::cpu();
  for (int it = 0; it < 12; ++it) {
    const MatDims d = random_dims(rng);
    Tensor a = Tensor::randn(Shape({d.m, d.k}), rng);
    Tensor b = Tensor::randn(Shape({d.k, d.n}), rng);
    Tensor at = Tensor::randn(Shape({d.k, d.m}), rng);
    Tensor bt = Tensor::randn(Shape({d.n, d.k}), rng);
    for (const int threads : {2, 3, 8}) {
      const Device dev = Device::parallel(threads);
      const std::string tag = " (threads=" + std::to_string(threads) + ")";
      expect_bitwise_equal(matmul(a, b, dev), matmul(a, b, serial),
                           "matmul" + tag);
      expect_bitwise_equal(matmul_tn(at, b, dev), matmul_tn(at, b, serial),
                           "matmul_tn" + tag);
      expect_bitwise_equal(matmul_nt(a, bt, dev), matmul_nt(a, bt, serial),
                           "matmul_nt" + tag);
    }
  }
}

// Weight layouts match ([out_c, patch_size] / [out_c]); copy so the
// two implementations evaluate the identical function.
void copy_params(nn::Layer& from, nn::Layer& to) {
  auto src = from.params();
  auto dst = to.params();
  ASSERT_EQ(src.size(), dst.size());
  for (std::size_t p = 0; p < src.size(); ++p) {
    auto s = src[p]->data();
    auto d = dst[p]->data();
    ASSERT_EQ(s.size(), d.size());
    std::copy(s.begin(), s.end(), d.begin());
  }
}

ConvGeom random_geom(util::Rng& rng) {
  ConvGeom g;
  g.in_c = 1 + static_cast<std::int64_t>(rng.uniform_index(3));
  g.kernel = 1 + static_cast<std::int64_t>(rng.uniform_index(3));  // 1..3
  g.stride = 1 + static_cast<std::int64_t>(rng.uniform_index(2));
  g.pad = static_cast<std::int64_t>(rng.uniform_index(g.kernel));
  // Ensure at least one full output position.
  const std::int64_t min_hw = g.kernel;
  g.in_h = min_hw + static_cast<std::int64_t>(rng.uniform_index(7));
  g.in_w = min_hw + static_cast<std::int64_t>(rng.uniform_index(7));
  g.out_c = 1 + static_cast<std::int64_t>(rng.uniform_index(4));
  return g;
}

// im2col conv vs the direct loop reference: forward, dx, dweight, dbias
// over randomized geometries, on both serial and threaded devices.
TEST(KernelDiffTest, Im2colConvMatchesDirectReference) {
  util::Rng rng(505);
  nn::Context serial_ctx;  // Device::cpu(), inference
  nn::Context threaded_ctx;
  threaded_ctx.device = Device::parallel(4);
  for (int it = 0; it < kConvShapes; ++it) {
    const ConvGeom g = random_geom(rng);
    const std::int64_t batch =
        1 + static_cast<std::int64_t>(rng.uniform_index(3));
    nn::Conv2d conv(g, InitKind::kXavierUniform, rng);
    util::Rng scratch(1);
    nn::Conv2dDirect ref(g, InitKind::kXavierUniform, scratch);
    copy_params(conv, ref);
    Tensor x = Tensor::randn(Shape({batch, g.in_c, g.in_h, g.in_w}), rng);
    const std::string what =
        "conv c" + std::to_string(g.in_c) + " k" + std::to_string(g.kernel) +
        " s" + std::to_string(g.stride) + " p" + std::to_string(g.pad) +
        " hw" + std::to_string(g.in_h) + "x" + std::to_string(g.in_w);

    for (nn::Context* ctx : {&serial_ctx, &threaded_ctx}) {
      conv.zero_grads();
      ref.zero_grads();
      Tensor y_im2col = conv.forward(x, *ctx);
      Tensor y_direct = ref.forward(x, *ctx);
      expect_close(y_im2col, y_direct, 1e-4, what + " forward");

      Tensor dy = Tensor::rand_uniform(y_im2col.shape(), rng, -1.f, 1.f);
      Tensor dx_im2col = conv.backward(dy, *ctx);
      Tensor dx_direct = ref.backward(dy, *ctx);
      expect_close(dx_im2col, dx_direct, 1e-4, what + " dx");
      expect_close(*conv.grads()[0], *ref.grads()[0], 1e-3,
                   what + " dweight");
      expect_close(*conv.grads()[1], *ref.grads()[1], 1e-3, what + " dbias");
    }
  }
}

// Forward and dx are partitioned per batch sample (one writer per output
// region, fixed-order accumulation inside), so thread count cannot
// change the bits.
TEST(KernelDiffTest, ConvForwardAndDxAreThreadCountDeterministic) {
  util::Rng rng(606);
  nn::Context serial_ctx;
  for (int it = 0; it < 10; ++it) {
    const ConvGeom g = random_geom(rng);
    nn::Conv2d conv(g, InitKind::kXavierUniform, rng);
    Tensor x = Tensor::randn(Shape({4, g.in_c, g.in_h, g.in_w}), rng);

    conv.zero_grads();
    Tensor y_serial = conv.forward(x, serial_ctx);
    Tensor dy = Tensor::rand_uniform(y_serial.shape(), rng, -1.f, 1.f);
    Tensor dx_serial = conv.backward(dy, serial_ctx);

    for (const int threads : {2, 5}) {
      nn::Context ctx;
      ctx.device = Device::parallel(threads);
      conv.zero_grads();
      const std::string tag = " (threads=" + std::to_string(threads) + ")";
      expect_bitwise_equal(conv.forward(x, ctx), y_serial,
                           "conv forward" + tag);
      expect_bitwise_equal(conv.backward(dy, ctx), dx_serial,
                           "conv dx" + tag);
    }
  }
}

// dweight/dbias are reduced across batch chunks; the reduction merges
// per-chunk partials in a fixed chunk order, so repeated threaded runs
// must agree bit for bit, and any thread count must stay within float
// tolerance of the serial reduction.
TEST(KernelDiffTest, ConvWeightGradsAreRunToRunDeterministicUnderThreads) {
  util::Rng rng(707);
  for (int it = 0; it < 8; ++it) {
    const ConvGeom g = random_geom(rng);
    nn::Conv2d conv(g, InitKind::kXavierUniform, rng);
    Tensor x = Tensor::randn(Shape({6, g.in_c, g.in_h, g.in_w}), rng);
    nn::Context serial_ctx;
    conv.zero_grads();
    Tensor dy = Tensor::rand_uniform(conv.forward(x, serial_ctx).shape(),
                                     rng, -1.f, 1.f);
    conv.backward(dy, serial_ctx);
    Tensor dw_serial = conv.grads()[0]->clone();
    Tensor db_serial = conv.grads()[1]->clone();

    nn::Context ctx;
    ctx.device = Device::parallel(4);
    conv.zero_grads();
    conv.forward(x, ctx);
    conv.backward(dy, ctx);
    Tensor dw_first = conv.grads()[0]->clone();
    Tensor db_first = conv.grads()[1]->clone();

    // Run-to-run bit-exactness under the same thread count.
    for (int rep = 0; rep < 3; ++rep) {
      conv.zero_grads();
      conv.forward(x, ctx);
      conv.backward(dy, ctx);
      expect_bitwise_equal(*conv.grads()[0], dw_first, "dweight rep");
      expect_bitwise_equal(*conv.grads()[1], db_first, "dbias rep");
    }

    // Serial vs threaded differ only by float summation order.
    expect_close(dw_first, dw_serial, 1e-3, "dweight serial-vs-threaded");
    expect_close(db_first, db_serial, 1e-3, "dbias serial-vs-threaded");
  }
}

// ---------------------------------------------------------------------------
// Packed-GEMM layer (gemm_kernel.hpp): parity with the legacy row
// kernel, direct driver coverage of strides / epilogues / both GemmMath
// roundings, fused-epilogue bitwise equivalence, and determinism at the
// register-blocking boundaries.
// ---------------------------------------------------------------------------

// Shapes that hit every edge of the 6x16 blocking and its paired 12x32
// macro tiles: K=1, N below one panel, M not divisible by MR, and sizes
// straddling the row-pair (12) and column-pair (32) boundaries.
const MatDims kEdgeDims[] = {
    {1, 1, 1},   {1, 1, 15},  {5, 1, 16},  {6, 1, 7},   {6, 1, 1},
    {7, 3, 15},  {11, 2, 31}, {12, 5, 32}, {13, 8, 33}, {18, 1, 16},
    {23, 7, 48}, {24, 9, 31}, {25, 4, 64}, {48, 1, 33}, {50, 13, 50},
    {12, 1, 32}, {36, 2, 96}, {5, 40, 11}, {1, 40, 96}, {96, 3, 1},
};

// The packed path against the retained legacy row kernel over the edge
// shapes plus randoms (>= 50 total). Summation order differs, so this
// is a tolerance comparison; bitwise coverage is below.
TEST(KernelDiffTest, PackedMatmulMatchesRowsReferenceAcrossShapes) {
  util::Rng rng(808);
  const Device serial = Device::cpu();
  const Device threaded = Device::parallel(4);
  std::vector<MatDims> dims(std::begin(kEdgeDims), std::end(kEdgeDims));
  while (dims.size() < 56) dims.push_back(random_dims(rng));
  for (const MatDims& d : dims) {
    Tensor a = Tensor::randn(Shape({d.m, d.k}), rng);
    Tensor b = Tensor::randn(Shape({d.k, d.n}), rng);
    const Tensor want = matmul_rows_reference(a, b, serial);
    const std::string what = "packed-vs-rows " + std::to_string(d.m) + "x" +
                             std::to_string(d.k) + "x" + std::to_string(d.n);
    expect_close(matmul(a, b, serial), want, 1e-3, what + " serial");
    expect_close(matmul(a, b, threaded), want, 1e-3, what + " threaded");
  }
}

// Double-precision reference for a gemm_packed call with arbitrary
// element strides and epilogue.
Tensor naive_gemm_ep(const Tensor& a, std::int64_t a_rs, std::int64_t a_cs,
                     const Tensor& b, std::int64_t b_rs, std::int64_t b_cs,
                     std::int64_t m, std::int64_t k, std::int64_t n,
                     GemmEpilogue ep, const Tensor* bias) {
  Tensor c(Shape({m, n}));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = (ep == GemmEpilogue::kBiasRowInit ||
                    ep == GemmEpilogue::kBiasRowRelu)
                       ? static_cast<double>(bias->at(i))
                       : 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a.at(i * a_rs + p * a_cs)) *
               static_cast<double>(b.at(p * b_rs + j * b_cs));
      if (ep == GemmEpilogue::kBiasColAdd || ep == GemmEpilogue::kBiasColRelu)
        acc += static_cast<double>(bias->at(j));
      if (ep == GemmEpilogue::kBiasColRelu || ep == GemmEpilogue::kBiasRowRelu)
        acc = acc > 0.0 ? acc : 0.0;
      c.at(i * n + j) = static_cast<float>(acc);
    }
  return c;
}

// Direct gemm_packed calls: every epilogue x both GemmMath roundings x
// the three stride patterns the matmul family uses (row-major,
// transposed A, transposed B), on serial and threaded devices.
TEST(KernelDiffTest, GemmPackedCoversStridesEpiloguesAndBothRoundings) {
  util::Rng rng(909);
  const Device serial = Device::cpu();
  const Device threaded = Device::parallel(3);
  const MatDims cases[] = {{5, 3, 17}, {12, 7, 32}, {13, 1, 33}, {26, 9, 31}};
  const GemmEpilogue eps[] = {
      GemmEpilogue::kNone, GemmEpilogue::kBiasColAdd,
      GemmEpilogue::kBiasColRelu, GemmEpilogue::kBiasRowInit,
      GemmEpilogue::kBiasRowRelu};
  for (const MatDims& d : cases) {
    Tensor a = Tensor::randn(Shape({d.m, d.k}), rng);
    Tensor at = Tensor::randn(Shape({d.k, d.m}), rng);  // A^T storage
    Tensor b = Tensor::randn(Shape({d.k, d.n}), rng);
    Tensor bt = Tensor::randn(Shape({d.n, d.k}), rng);  // B^T storage
    Tensor bias_col = Tensor::randn(Shape({d.n}), rng);
    Tensor bias_row = Tensor::randn(Shape({d.m}), rng);
    for (const GemmEpilogue ep : eps) {
      const bool row = ep == GemmEpilogue::kBiasRowInit ||
                       ep == GemmEpilogue::kBiasRowRelu;
      const Tensor* bias =
          ep == GemmEpilogue::kNone ? nullptr : (row ? &bias_row : &bias_col);
      for (const GemmMath math : {GemmMath::kFma, GemmMath::kMulAdd}) {
        const std::string what =
            "gemm_packed " + std::to_string(d.m) + "x" + std::to_string(d.k) +
            "x" + std::to_string(d.n) + " ep=" +
            std::to_string(static_cast<int>(ep)) +
            " math=" + std::to_string(static_cast<int>(math));
        struct StrideCase {
          const Tensor* src;
          std::int64_t rs, cs;
          const char* tag;
        };
        const StrideCase a_cases[] = {{&a, d.k, 1, " a-rowmajor"},
                                      {&at, 1, d.m, " a-transposed"}};
        const StrideCase b_cases[] = {{&b, d.n, 1, " b-rowmajor"},
                                      {&bt, 1, d.k, " b-transposed"}};
        for (const StrideCase& ac : a_cases) {
          for (const StrideCase& bc : b_cases) {
            const Tensor want =
                naive_gemm_ep(*ac.src, ac.rs, ac.cs, *bc.src, bc.rs, bc.cs,
                              d.m, d.k, d.n, ep, bias);
            for (const Device* dev : {&serial, &threaded}) {
              Tensor got = Tensor::uninit(Shape({d.m, d.n}));
              gemm_packed(ac.src->raw(), ac.rs, ac.cs, bc.src->raw(), bc.rs,
                          bc.cs, got.raw(), d.m, d.k, d.n, ep,
                          bias ? bias->raw() : nullptr, *dev, math);
              expect_close(got, want, 1e-3, what + ac.tag + bc.tag);
            }
          }
        }
      }
    }
  }
}

// The fused epilogues run while the tile is still in registers, but the
// float operations and their order are exactly those of the unfused
// sequence, so the results must be bitwise identical — this is what
// lets layers fuse without disturbing golden trajectories.
TEST(KernelDiffTest, FusedBiasEpiloguesBitwiseMatchUnfusedSequence) {
  util::Rng rng(1010);
  const Device serial = Device::cpu();
  const Device threaded = Device::parallel(4);
  for (const MatDims& d : kEdgeDims) {
    Tensor a = Tensor::randn(Shape({d.m, d.k}), rng);
    Tensor b = Tensor::randn(Shape({d.k, d.n}), rng);
    Tensor bias = Tensor::randn(Shape({d.n}), rng);
    const std::string what = "fused " + std::to_string(d.m) + "x" +
                             std::to_string(d.k) + "x" + std::to_string(d.n);
    for (const Device* dev : {&serial, &threaded}) {
      Tensor unfused = matmul(a, b, *dev);
      add_row_bias(unfused, bias, *dev);
      expect_bitwise_equal(matmul_bias(a, b, bias, *dev), unfused,
                           what + " bias");
      expect_bitwise_equal(matmul_bias_relu(a, b, bias, *dev),
                           relu(unfused, *dev), what + " bias+relu");
    }
  }
}

// Thread-count and run-to-run bitwise determinism for the fused entry
// points, over shapes that straddle the pairing boundaries (the
// paired-tile grouping shifts with the worker chunking; the bits must
// not).
TEST(KernelDiffTest, FusedMatmulBiasIsThreadCountDeterministic) {
  util::Rng rng(1111);
  const Device serial = Device::cpu();
  for (const MatDims& d : kEdgeDims) {
    Tensor a = Tensor::randn(Shape({d.m, d.k}), rng);
    Tensor b = Tensor::randn(Shape({d.k, d.n}), rng);
    Tensor bias = Tensor::randn(Shape({d.n}), rng);
    const Tensor want = matmul_bias(a, b, bias, serial);
    const Tensor want_relu = matmul_bias_relu(a, b, bias, serial);
    for (const int threads : {2, 3, 8}) {
      const Device dev = Device::parallel(threads);
      const std::string tag = std::to_string(d.m) + "x" + std::to_string(d.k) +
                              "x" + std::to_string(d.n) + " threads=" +
                              std::to_string(threads);
      for (int rep = 0; rep < 2; ++rep) {
        expect_bitwise_equal(matmul_bias(a, b, bias, dev), want,
                             "matmul_bias " + tag);
        expect_bitwise_equal(matmul_bias_relu(a, b, bias, dev), want_relu,
                             "matmul_bias_relu " + tag);
      }
    }
  }
}

// The wide AVX-512 tiles (x2: 6x32, 2x2: 12x32) against the equivalent
// sequence of single-tile calls, on hand-packed panels: grouping tiles
// into one call must not change a single bit (each output element keeps
// its own ascending-k chain). Skipped on hosts without AVX-512F.
#if defined(DLB_HAVE_AVX512_BUILD)
TEST(KernelDiffTest, WideAvx512TilesBitwiseMatchSingleTileCalls) {
  if (!runtime::cpu_features().avx512f) GTEST_SKIP() << "no AVX-512F host";
  util::Rng rng(1212);
  const Device serial = Device::cpu();
  for (const std::int64_t k : {1L, 7L, 64L, 129L}) {
    const std::int64_t m = 2 * kGemmMR, n = 2 * kGemmNR;
    Tensor a = Tensor::randn(Shape({m, k}), rng);
    Tensor b = Tensor::randn(Shape({k, n}), rng);
    Tensor bias_col = Tensor::randn(Shape({n}), rng);
    Tensor bias_row = Tensor::randn(Shape({m}), rng);
    std::vector<float> pa(static_cast<std::size_t>(2 * kGemmMR * k));
    std::vector<float> pb(static_cast<std::size_t>(2 * kGemmNR * k));
    pack_a_panels(a.raw(), k, 1, m, k, pa.data(), serial);
    pack_b_panels(b.raw(), n, 1, k, n, pb.data(), serial);
    const GemmEpilogue eps[] = {
        GemmEpilogue::kNone, GemmEpilogue::kBiasColAdd,
        GemmEpilogue::kBiasColRelu, GemmEpilogue::kBiasRowInit,
        GemmEpilogue::kBiasRowRelu};
    for (const GemmEpilogue ep : eps) {
      std::vector<float> want(static_cast<std::size_t>(m * n));
      std::vector<float> got(static_cast<std::size_t>(m * n));
      // Reference: four single 6x16 tiles.
      for (int rp = 0; rp < 2; ++rp)
        for (int cp = 0; cp < 2; ++cp)
          detail::micro_kernel_avx512(
              pa.data() + rp * k * kGemmMR, pb.data() + cp * k * kGemmNR, k,
              want.data() + rp * kGemmMR * n + cp * kGemmNR, n, ep,
              bias_row.raw() + rp * kGemmMR, bias_col.raw() + cp * kGemmNR);
      // x2: two 6x32 tiles.
      for (int rp = 0; rp < 2; ++rp)
        detail::micro_kernel_avx512_x2(
            pa.data() + rp * k * kGemmMR, pb.data(), k,
            got.data() + rp * kGemmMR * n, n, ep,
            bias_row.raw() + rp * kGemmMR, bias_col.raw());
      EXPECT_EQ(want, got) << "x2 tile k=" << k
                           << " ep=" << static_cast<int>(ep);
      // 2x2: one 12x32 tile.
      std::fill(got.begin(), got.end(), 0.f);
      detail::micro_kernel_avx512_2x2(pa.data(), pb.data(), k, got.data(), n,
                                      ep, bias_row.raw(), bias_col.raw());
      EXPECT_EQ(want, got) << "2x2 tile k=" << k
                           << " ep=" << static_cast<int>(ep);
    }
  }
}
#endif  // DLB_HAVE_AVX512_BUILD

}  // namespace
}  // namespace dlbench::tensor
