// Parallel crafting engine: the determinism contract (parallel sweeps
// bitwise-identical to serial at any thread count), replica
// independence of Sequential::clone, and engine bookkeeping.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "adversarial/attacks.hpp"
#include "adversarial/engine.hpp"
#include "data/synthetic.hpp"
#include "frameworks/emulations.hpp"
#include "frameworks/registry.hpp"
#include "nn/layers.hpp"
#include "runtime/device.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::adversarial {
namespace {

using frameworks::DatasetId;
using frameworks::FrameworkKind;
using runtime::Device;

Context gpu_ctx() {
  Context ctx;
  ctx.device = Device::gpu();  // engine must force serial inside units
  ctx.training = false;
  return ctx;
}

// One small trained model shared by every test here (trained once).
struct TrainedFixture {
  data::DatasetPair mnist;
  nn::Sequential model;

  TrainedFixture() {
    data::MnistOptions d;
    d.train_samples = 400;
    d.test_samples = 120;
    mnist = data::synthetic_mnist(d);
    auto fw = frameworks::make_framework(FrameworkKind::kCaffe);
    auto config = frameworks::default_training_config(FrameworkKind::kCaffe,
                                                      DatasetId::kMnist);
    auto spec = frameworks::default_network_spec(FrameworkKind::kCaffe,
                                                 DatasetId::kMnist);
    util::Rng rng(7);
    model = fw->build_model(spec, Device::gpu(), rng);
    frameworks::TrainOptions opts;
    opts.scale.max_step_cap = 60;
    (void)fw->train(model, mnist.train, config, Device::gpu(), opts);
  }
};

TrainedFixture& fixture() {
  static TrainedFixture fx;
  return fx;
}

TEST(SequentialClone, ReplicaMatchesOriginalBitwise) {
  auto& fx = fixture();
  nn::Sequential replica = fx.model.clone();
  Context ctx = gpu_ctx();
  ctx.device = Device::cpu();
  tensor::Tensor x = fx.mnist.test.sample(0);
  tensor::Tensor a = fx.model.forward(x, ctx);
  tensor::Tensor b = replica.forward(x, ctx);
  ASSERT_EQ(a.numel(), b.numel());
  EXPECT_EQ(std::memcmp(a.raw(), b.raw(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0);
}

TEST(SequentialClone, ReplicaWeightsAreIndependentStorage) {
  auto& fx = fixture();
  nn::Sequential replica = fx.model.clone();
  Context ctx = gpu_ctx();
  ctx.device = Device::cpu();
  tensor::Tensor x = fx.mnist.test.sample(0);
  tensor::Tensor before = fx.model.forward(x, ctx).clone();

  // Corrupt every replica parameter; the original must not notice.
  for (auto* param : replica.params())
    for (std::int64_t i = 0; i < param->numel(); ++i)
      param->raw()[i] += 1.f;
  tensor::Tensor after = fx.model.forward(x, ctx);
  EXPECT_EQ(std::memcmp(before.raw(), after.raw(),
                        static_cast<std::size_t>(before.numel()) *
                            sizeof(float)),
            0);
}

TEST(CraftUnits, CoversEveryUnitOnceAndCountsThem) {
  auto& fx = fixture();
  const std::int64_t units = 23;
  std::vector<int> hits(static_cast<std::size_t>(units), 0);
  CraftTiming t = craft_units(
      fx.model, gpu_ctx(), units, /*threads=*/4,
      [&](nn::Sequential&, const Context& ctx, std::int64_t u) {
        // The engine must hand units a serial device (determinism +
        // no pool re-entrancy) and an eval-mode context.
        EXPECT_FALSE(ctx.device.is_parallel());
        EXPECT_FALSE(ctx.training);
        ++hits[static_cast<std::size_t>(u)];  // one writer per slot
        return 1e-4;
      });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(t.craft_time.count(), units);
  EXPECT_GE(t.craft_wall_s, 0.0);
  EXPECT_EQ(t.screening_s, 0.0);  // screening belongs to the caller
}

TEST(CraftUnits, PropagatesUnitException) {
  auto& fx = fixture();
  EXPECT_THROW(
      craft_units(fx.model, gpu_ctx(), 8, /*threads=*/2,
                  [&](nn::Sequential&, const Context&, std::int64_t u) {
                    if (u == 5) throw dlbench::Error("unit boom");
                    return 1e-4;
                  }),
      dlbench::Error);
}

// The contract the whole subsystem hangs on: sweeps at any thread
// count produce bitwise-identical tables. Compare full FGSM sweeps at
// 1, 2 and 8 threads field by field with exact equality.
TEST(Determinism, FgsmSweepIsBitwiseIdenticalAcrossThreadCounts) {
  auto& fx = fixture();
  FgsmOptions opt;
  opt.epsilon = 0.05f;
  opt.max_iterations = 10;
  const UntargetedSweep serial =
      fgsm_sweep(fx.model, fx.mnist.test, opt, gpu_ctx(),
                 /*max_per_class=*/3, /*threads=*/1);
  ASSERT_GT(serial.total_attacks, 0);
  for (int threads : {2, 8}) {
    const UntargetedSweep par =
        fgsm_sweep(fx.model, fx.mnist.test, opt, gpu_ctx(),
                   /*max_per_class=*/3, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(par.total_attacks, serial.total_attacks);
    EXPECT_EQ(par.total_successes, serial.total_successes);
    EXPECT_EQ(par.total_iterations, serial.total_iterations);
    for (int c = 0; c < 10; ++c) {
      EXPECT_EQ(par.attempts[c], serial.attempts[c]);
      // Bitwise: rates are ratios of identical integers.
      EXPECT_EQ(std::memcmp(&par.success_rate[c], &serial.success_rate[c],
                            sizeof(double)),
                0);
      for (int t = 0; t < 10; ++t)
        EXPECT_EQ(par.destination_counts[c][t],
                  serial.destination_counts[c][t]);
    }
    EXPECT_EQ(par.timing.craft_time.count(),
              serial.timing.craft_time.count());
  }
}

TEST(Determinism, JsmaSweepIsBitwiseIdenticalAcrossThreadCounts) {
  auto& fx = fixture();
  JsmaOptions opt;
  opt.theta = 1.0f;
  opt.max_distortion = 0.03;  // keep the test fast
  const TargetedSweep serial =
      jsma_sweep(fx.model, fx.mnist.test, /*source=*/1, opt, gpu_ctx(),
                 /*samples_per_target=*/2, /*threads=*/1);
  ASSERT_GT(serial.total_attacks, 0);
  for (int threads : {2, 8}) {
    const TargetedSweep par =
        jsma_sweep(fx.model, fx.mnist.test, /*source=*/1, opt, gpu_ctx(),
                   /*samples_per_target=*/2, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(par.total_attacks, serial.total_attacks);
    EXPECT_EQ(par.total_successes, serial.total_successes);
    EXPECT_EQ(par.total_iterations, serial.total_iterations);
    for (int t = 0; t < 10; ++t) {
      EXPECT_EQ(par.attempts[t], serial.attempts[t]);
      EXPECT_EQ(std::memcmp(&par.success_rate[t], &serial.success_rate[t],
                            sizeof(double)),
                0);
    }
    EXPECT_EQ(par.timing.craft_time.count(),
              serial.timing.craft_time.count());
    EXPECT_EQ(par.timing.threads, threads);
  }
}

// Crafting with more threads than units must clamp, not spawn idle
// replicas (each replica deep-copies all weights).
TEST(CraftUnits, ClampsWorkersToUnitCount) {
  auto& fx = fixture();
  CraftTiming t = craft_units(
      fx.model, gpu_ctx(), /*unit_count=*/2, /*threads=*/16,
      [&](nn::Sequential&, const Context&, std::int64_t) { return 1e-4; });
  EXPECT_LE(t.threads, 2);
  EXPECT_EQ(t.craft_time.count(), 2);
}

TEST(CraftUnits, ZeroUnitsIsANoop) {
  auto& fx = fixture();
  CraftTiming t = craft_units(
      fx.model, gpu_ctx(), 0, 4,
      [&](nn::Sequential&, const Context&, std::int64_t) {
        ADD_FAILURE() << "no units should run";
        return 0.0;
      });
  EXPECT_EQ(t.craft_time.count(), 0);
}

}  // namespace
}  // namespace dlbench::adversarial
