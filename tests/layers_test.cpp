// Layer-level tests: forward semantics, backward vs numeric gradients,
// training/eval mode behavior, parameter bookkeeping.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/conv_direct.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::nn {
namespace {

using runtime::Device;
using tensor::Shape;
using tensor::Tensor;

Context eval_ctx() {
  Context ctx;
  ctx.device = Device::cpu();
  ctx.training = false;
  return ctx;
}

// Numeric input-gradient check for any layer: loss = sum(layer(x)).
void check_input_gradient(Layer& layer, const Tensor& x, float tol = 0.05f) {
  Context ctx = eval_ctx();
  Tensor y = layer.forward(x, ctx);
  Tensor dy(y.shape(), 1.f);
  Tensor dx = layer.backward(dy, ctx);
  ASSERT_EQ(dx.shape(), x.shape());

  const float eps = 1e-2f;
  const std::int64_t stride = std::max<std::int64_t>(1, x.numel() / 9);
  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    Tensor xp = x.clone(), xm = x.clone();
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    const double fp = tensor::sum(layer.forward(xp, ctx));
    const double fm = tensor::sum(layer.forward(xm, ctx));
    const double numeric = (fp - fm) / (2 * eps);
    EXPECT_NEAR(dx.at(i), numeric, tol) << "input grad at " << i;
  }
}

TEST(Conv2dLayer, ForwardShapeAndDescribe) {
  util::Rng rng(1);
  tensor::ConvGeom g{1, 28, 28, 20, 5, 1, 0};
  Conv2d conv(g, tensor::InitKind::kXavierUniform, rng);
  Context ctx = eval_ctx();
  Tensor x = Tensor::randn(Shape({2, 1, 28, 28}), rng);
  Tensor y = conv.forward(x, ctx);
  EXPECT_EQ(y.shape(), Shape({2, 20, 24, 24}));
  EXPECT_EQ(conv.describe(), "conv5x5 1->20");
  EXPECT_EQ(conv.num_params(), 20 * 25 + 20);
}

TEST(Conv2dLayer, BackwardBeforeForwardThrows) {
  util::Rng rng(2);
  tensor::ConvGeom g{1, 8, 8, 2, 3, 1, 0};
  Conv2d conv(g, tensor::InitKind::kXavierUniform, rng);
  Tensor dy(Shape({1, 2, 6, 6}), 1.f);
  Context ctx = eval_ctx();
  EXPECT_THROW(conv.backward(dy, ctx), dlbench::Error);
}

TEST(Conv2dLayer, InputGradientNumeric) {
  util::Rng rng(3);
  tensor::ConvGeom g{2, 6, 6, 3, 3, 1, 1};
  Conv2d conv(g, tensor::InitKind::kXavierUniform, rng);
  Tensor x = Tensor::randn(Shape({2, 2, 6, 6}), rng);
  check_input_gradient(conv, x);
}

TEST(Conv2dDirectLayer, MatchesGemmConvolution) {
  util::Rng rng1(4), rng2(4);
  tensor::ConvGeom g{3, 7, 7, 4, 3, 1, 1};
  Conv2d gemm_conv(g, tensor::InitKind::kXavierUniform, rng1);
  Conv2dDirect direct_conv(g, tensor::InitKind::kXavierUniform, rng2);
  Context ctx = eval_ctx();
  util::Rng xr(5);
  Tensor x = Tensor::randn(Shape({2, 3, 7, 7}), xr);
  Tensor a = gemm_conv.forward(x, ctx);
  Tensor b = direct_conv.forward(x, ctx);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i)
    ASSERT_NEAR(a.at(i), b.at(i), 2e-4f);

  // Gradients agree too.
  Tensor dy(a.shape(), 1.f);
  Tensor dxa = gemm_conv.backward(dy, ctx);
  Tensor dxb = direct_conv.backward(dy, ctx);
  for (std::int64_t i = 0; i < dxa.numel(); ++i)
    ASSERT_NEAR(dxa.at(i), dxb.at(i), 2e-4f);
  auto ga = gemm_conv.grads();
  auto gb = direct_conv.grads();
  for (std::size_t p = 0; p < ga.size(); ++p)
    for (std::int64_t i = 0; i < ga[p]->numel(); ++i)
      ASSERT_NEAR(ga[p]->at(i), gb[p]->at(i), 2e-3f);
}

TEST(LinearLayer, ForwardComputesAffine) {
  util::Rng rng(6);
  Linear fc(3, 2, tensor::InitKind::kXavierUniform, rng);
  fc.params()[0]->fill(1.f);  // weight all ones
  fc.params()[1]->fill(0.5f); // bias
  Context ctx = eval_ctx();
  Tensor x(Shape({1, 3}), std::vector<float>{1, 2, 3});
  Tensor y = fc.forward(x, ctx);
  EXPECT_FLOAT_EQ(y.at(0), 6.5f);
  EXPECT_FLOAT_EQ(y.at(1), 6.5f);
}

TEST(LinearLayer, RejectsWrongInputWidth) {
  util::Rng rng(7);
  Linear fc(3, 2, tensor::InitKind::kXavierUniform, rng);
  Context ctx = eval_ctx();
  Tensor x(Shape({1, 4}));
  EXPECT_THROW(fc.forward(x, ctx), dlbench::Error);
}

TEST(LinearLayer, GradientsNumeric) {
  util::Rng rng(8);
  Linear fc(5, 4, tensor::InitKind::kXavierUniform, rng);
  Tensor x = Tensor::randn(Shape({3, 5}), rng);
  check_input_gradient(fc, x, 0.02f);

  // Weight gradient numeric spot-check.
  Context ctx = eval_ctx();
  fc.zero_grads();
  Tensor y = fc.forward(x, ctx);
  Tensor dy(y.shape(), 1.f);
  (void)fc.backward(dy, ctx);
  Tensor* w = fc.params()[0];
  Tensor* dw = fc.grads()[0];
  const float eps = 1e-2f;
  for (std::int64_t i : {0L, 7L, w->numel() - 1}) {
    const float saved = w->at(i);
    w->data()[i] = saved + eps;
    const double fp = tensor::sum(fc.forward(x, ctx));
    w->data()[i] = saved - eps;
    const double fm = tensor::sum(fc.forward(x, ctx));
    w->data()[i] = saved;
    EXPECT_NEAR(dw->at(i), (fp - fm) / (2 * eps), 0.05) << "dw " << i;
  }
}

TEST(Activations, InputGradientsNumeric) {
  util::Rng rng(9);
  Tensor x = Tensor::randn(Shape({2, 3, 4, 4}), rng);
  // Push values away from ReLU's kink so the finite-difference probe
  // (eps = 1e-2) does not straddle it.
  for (auto& v : x.data())
    if (std::fabs(v) < 0.05f) v = v < 0 ? -0.05f : 0.05f;
  {
    ReLU relu;
    check_input_gradient(relu, x, 0.02f);
  }
  {
    Tanh tanh_layer;
    check_input_gradient(tanh_layer, x, 0.02f);
  }
}

TEST(Dropout, IdentityInEvalMode) {
  Dropout drop(0.5f);
  Context ctx = eval_ctx();
  util::Rng rng(10);
  Tensor x = Tensor::randn(Shape({4, 4}), rng);
  Tensor y = drop.forward(x, ctx);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y.at(i), x.at(i));
}

TEST(Dropout, TrainingMasksAndRescales) {
  Dropout drop(0.5f);
  Context ctx = eval_ctx();
  ctx.training = true;
  util::Rng rng(11);
  ctx.rng = &rng;
  Tensor x(Shape({10000}), 1.f);
  Tensor y = drop.forward(x, ctx);
  std::int64_t zeros = 0;
  for (float v : y.data()) {
    if (v == 0.f) ++zeros;
    else EXPECT_FLOAT_EQ(v, 2.f);  // inverted dropout scaling
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
  // Expected value preserved.
  EXPECT_NEAR(tensor::mean_of(y), 1.0, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f);
  Context ctx = eval_ctx();
  ctx.training = true;
  util::Rng rng(12);
  ctx.rng = &rng;
  Tensor x(Shape({100}), 1.f);
  Tensor y = drop.forward(x, ctx);
  Tensor dy(Shape({100}), 1.f);
  Tensor dx = drop.backward(dy, ctx);
  for (std::int64_t i = 0; i < 100; ++i)
    EXPECT_EQ(dx.at(i), y.at(i));  // same mask, same scale
}

TEST(Dropout, TrainingWithoutRngThrows) {
  Dropout drop(0.3f);
  Context ctx = eval_ctx();
  ctx.training = true;
  ctx.rng = nullptr;
  Tensor x(Shape({4}), 1.f);
  EXPECT_THROW(drop.forward(x, ctx), dlbench::Error);
}

TEST(Dropout, RejectsInvalidProbability) {
  EXPECT_THROW(Dropout(-0.1f), dlbench::Error);
  EXPECT_THROW(Dropout(1.0f), dlbench::Error);
}

TEST(Lrn, NormalizesAcrossChannels) {
  LocalResponseNorm lrn(/*radius=*/1, /*bias=*/1.f, /*alpha=*/1.f,
                        /*beta=*/1.f);
  Context ctx = eval_ctx();
  Tensor x(Shape({1, 2, 1, 1}), std::vector<float>{1.f, 2.f});
  Tensor y = lrn.forward(x, ctx);
  // scale_0 = 1 + (1^2 + 2^2) = 6 → y_0 = 1/6
  EXPECT_NEAR(y.at(0), 1.f / 6.f, 1e-5);
  EXPECT_NEAR(y.at(1), 2.f / 6.f, 1e-5);
}

TEST(Lrn, InputGradientNumeric) {
  LocalResponseNorm lrn;  // default TF parameters
  util::Rng rng(13);
  Tensor x = Tensor::randn(Shape({1, 6, 3, 3}), rng, 0.f, 1.f);
  check_input_gradient(lrn, x, 0.03f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  Context ctx = eval_ctx();
  util::Rng rng(14);
  Tensor x = Tensor::randn(Shape({2, 3, 4, 5}), rng);
  Tensor y = flat.forward(x, ctx);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  Tensor dx = flat.backward(y, ctx);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Pooling, MaxPoolGradientNumericThroughLayer) {
  util::Rng rng(15);
  tensor::PoolGeom g{2, 6, 6, 2, 2, false};
  MaxPool2d pool(g);
  // Use distinct values so the argmax is stable under the probe eps.
  Tensor x = Tensor::randn(Shape({1, 2, 6, 6}), rng);
  check_input_gradient(pool, x, 0.02f);
}

TEST(Sequential, ParamsAndGradsAggregation) {
  util::Rng rng(16);
  Sequential model;
  model.add(std::make_unique<Linear>(4, 3, tensor::InitKind::kXavierUniform,
                                     rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(3, 2, tensor::InitKind::kXavierUniform,
                                     rng));
  EXPECT_EQ(model.params().size(), 4u);
  EXPECT_EQ(model.grads().size(), 4u);
  EXPECT_EQ(model.num_params(), 4 * 3 + 3 + 3 * 2 + 2);
  model.zero_grads();
  for (Tensor* g : model.grads())
    for (float v : g->data()) EXPECT_EQ(v, 0.f);
}

TEST(Sequential, ForwardLossAndBackwardShapes) {
  util::Rng rng(17);
  Sequential model;
  model.add(std::make_unique<Linear>(6, 10, tensor::InitKind::kXavierUniform,
                                     rng));
  Context ctx = eval_ctx();
  Tensor x = Tensor::randn(Shape({4, 6}), rng);
  std::vector<std::int64_t> labels{0, 3, 9, 5};
  LossResult res = model.forward_loss(x, labels, ctx);
  EXPECT_EQ(res.logits.shape(), Shape({4, 10}));
  EXPECT_GT(res.loss, 0.0);
  Tensor dx = model.backward(res, labels, ctx);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Sequential, LossDecreasesUnderManualSgd) {
  util::Rng rng(18);
  Sequential model;
  model.add(std::make_unique<Linear>(8, 10, tensor::InitKind::kXavierUniform,
                                     rng));
  Context ctx = eval_ctx();
  ctx.training = true;
  Tensor x = Tensor::randn(Shape({16, 8}), rng);
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 16; ++i) labels.push_back(i % 10);

  double first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    model.zero_grads();
    LossResult res = model.forward_loss(x, labels, ctx);
    if (step == 0) first = res.loss;
    last = res.loss;
    model.backward(res, labels, ctx);
    auto params = model.params();
    auto grads = model.grads();
    for (std::size_t p = 0; p < params.size(); ++p)
      tensor::axpy_inplace(*params[p], -0.5f, *grads[p], ctx.device);
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(Sequential, EmptyModelThrows) {
  Sequential model;
  Context ctx = eval_ctx();
  Tensor x(Shape({1, 2}));
  EXPECT_THROW(model.forward(x, ctx), dlbench::Error);
}

}  // namespace
}  // namespace dlbench::nn
