// Checkpoint save/load: round trips, mismatch detection, corruption.

#include <gtest/gtest.h>

#include <sstream>

#include "frameworks/registry.hpp"
#include "nn/checkpoint.hpp"
#include "nn/network_spec.hpp"
#include "util/error.hpp"

namespace dlbench::nn {
namespace {

using frameworks::DatasetId;
using frameworks::FrameworkKind;
using tensor::Tensor;

Sequential make_model(std::uint64_t seed) {
  NetworkSpec spec = frameworks::default_network_spec(FrameworkKind::kCaffe,
                                                      DatasetId::kMnist);
  util::Rng rng(seed);
  return build_model(spec, rng);
}

TEST(Checkpoint, RoundTripRestoresEveryParameter) {
  Sequential a = make_model(1);
  Sequential b = make_model(2);  // different init

  std::stringstream buffer;
  save_checkpoint(a, buffer);
  load_checkpoint(b, buffer);

  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->shape(), pb[i]->shape());
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      ASSERT_EQ(pa[i]->at(k), pb[i]->at(k)) << "tensor " << i << " at " << k;
  }
}

TEST(Checkpoint, RestoredModelPredictsIdentically) {
  Sequential a = make_model(3);
  Sequential b = make_model(4);
  std::stringstream buffer;
  save_checkpoint(a, buffer);
  load_checkpoint(b, buffer);

  Context ctx;
  ctx.device = runtime::Device::cpu();
  util::Rng xr(5);
  Tensor x = Tensor::randn(tensor::Shape({2, 1, 28, 28}), xr, 0.5f, 0.2f);
  Tensor ya = a.forward(x, ctx);
  Tensor yb = b.forward(x, ctx);
  for (std::int64_t i = 0; i < ya.numel(); ++i)
    ASSERT_EQ(ya.at(i), yb.at(i));
}

TEST(Checkpoint, ArchitectureMismatchThrows) {
  Sequential a = make_model(6);
  // A different architecture (TF MNIST net).
  NetworkSpec other = frameworks::default_network_spec(
      FrameworkKind::kTensorFlow, DatasetId::kMnist);
  util::Rng rng(7);
  Sequential b = build_model(other, rng);

  std::stringstream buffer;
  save_checkpoint(a, buffer);
  EXPECT_THROW(load_checkpoint(b, buffer), dlbench::Error);
}

TEST(Checkpoint, GarbageStreamThrows) {
  Sequential a = make_model(8);
  std::stringstream buffer("this is not a checkpoint at all............");
  EXPECT_THROW(load_checkpoint(a, buffer), dlbench::Error);
}

TEST(Checkpoint, TruncatedStreamThrows) {
  Sequential a = make_model(9);
  std::stringstream buffer;
  save_checkpoint(a, buffer);
  std::string data = buffer.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  Sequential b = make_model(10);
  EXPECT_THROW(load_checkpoint(b, truncated), dlbench::Error);
}

TEST(Checkpoint, FileRoundTrip) {
  Sequential a = make_model(11);
  Sequential b = make_model(12);
  const std::string path = "/tmp/dlbench_checkpoint_test.bin";
  save_checkpoint(a, path);
  load_checkpoint(b, path);
  auto pa = a.params();
  auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    ASSERT_EQ(pa[i]->at(0), pb[i]->at(0));
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  Sequential a = make_model(13);
  EXPECT_THROW(load_checkpoint(a, "/nonexistent/dir/ckpt.bin"),
               dlbench::Error);
}

}  // namespace
}  // namespace dlbench::nn
