// Checkpoint save/load: round trips, mismatch detection, corruption.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "frameworks/registry.hpp"
#include "nn/checkpoint.hpp"
#include "nn/network_spec.hpp"
#include "runtime/fault.hpp"
#include "util/error.hpp"

namespace dlbench::nn {
namespace {

using frameworks::DatasetId;
using frameworks::FrameworkKind;
using tensor::Tensor;

Sequential make_model(std::uint64_t seed) {
  NetworkSpec spec = frameworks::default_network_spec(FrameworkKind::kCaffe,
                                                      DatasetId::kMnist);
  util::Rng rng(seed);
  return build_model(spec, rng);
}

TEST(Checkpoint, RoundTripRestoresEveryParameter) {
  Sequential a = make_model(1);
  Sequential b = make_model(2);  // different init

  std::stringstream buffer;
  save_checkpoint(a, buffer);
  load_checkpoint(b, buffer);

  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->shape(), pb[i]->shape());
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      ASSERT_EQ(pa[i]->at(k), pb[i]->at(k)) << "tensor " << i << " at " << k;
  }
}

TEST(Checkpoint, RestoredModelPredictsIdentically) {
  Sequential a = make_model(3);
  Sequential b = make_model(4);
  std::stringstream buffer;
  save_checkpoint(a, buffer);
  load_checkpoint(b, buffer);

  Context ctx;
  ctx.device = runtime::Device::cpu();
  util::Rng xr(5);
  Tensor x = Tensor::randn(tensor::Shape({2, 1, 28, 28}), xr, 0.5f, 0.2f);
  Tensor ya = a.forward(x, ctx);
  Tensor yb = b.forward(x, ctx);
  for (std::int64_t i = 0; i < ya.numel(); ++i)
    ASSERT_EQ(ya.at(i), yb.at(i));
}

TEST(Checkpoint, ArchitectureMismatchThrows) {
  Sequential a = make_model(6);
  // A different architecture (TF MNIST net).
  NetworkSpec other = frameworks::default_network_spec(
      FrameworkKind::kTensorFlow, DatasetId::kMnist);
  util::Rng rng(7);
  Sequential b = build_model(other, rng);

  std::stringstream buffer;
  save_checkpoint(a, buffer);
  EXPECT_THROW(load_checkpoint(b, buffer), dlbench::Error);
}

TEST(Checkpoint, GarbageStreamThrows) {
  Sequential a = make_model(8);
  std::stringstream buffer("this is not a checkpoint at all............");
  EXPECT_THROW(load_checkpoint(a, buffer), dlbench::Error);
}

TEST(Checkpoint, TruncatedStreamThrows) {
  Sequential a = make_model(9);
  std::stringstream buffer;
  save_checkpoint(a, buffer);
  std::string data = buffer.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  Sequential b = make_model(10);
  EXPECT_THROW(load_checkpoint(b, truncated), dlbench::Error);
}

TEST(Checkpoint, FileRoundTrip) {
  Sequential a = make_model(11);
  Sequential b = make_model(12);
  const std::string path = "/tmp/dlbench_checkpoint_test.bin";
  save_checkpoint(a, path);
  load_checkpoint(b, path);
  auto pa = a.params();
  auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    ASSERT_EQ(pa[i]->at(0), pb[i]->at(0));
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  Sequential a = make_model(13);
  EXPECT_THROW(load_checkpoint(a, "/nonexistent/dir/ckpt.bin"),
               dlbench::Error);
}

// ---- v2 container hardening ----

// v2 layout: u32 magic, u32 version, u64 payload length, payload,
// u32 CRC-32 of the payload.
constexpr std::size_t kHeaderBytes = 16;

std::string serialized(Sequential& model) {
  std::stringstream buffer;
  save_checkpoint(model, buffer);
  return buffer.str();
}

TEST(CheckpointHardening, SingleFlippedPayloadByteFailsChecksum) {
  Sequential a = make_model(20);
  std::string bytes = serialized(a);
  ASSERT_GT(bytes.size(), kHeaderBytes + 4);
  bytes[bytes.size() / 2] ^= 0x01;  // one bit, deep in the payload

  Sequential b = make_model(21);
  std::stringstream corrupt(bytes);
  try {
    load_checkpoint(b, corrupt);
    FAIL() << "corrupt stream must not load";
  } catch (const dlbench::Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckpointHardening, FlippedCrcTrailerFailsChecksum) {
  Sequential a = make_model(22);
  std::string bytes = serialized(a);
  bytes[bytes.size() - 1] ^= 0xff;  // corrupt the stored CRC itself
  Sequential b = make_model(23);
  std::stringstream corrupt(bytes);
  EXPECT_THROW(load_checkpoint(b, corrupt), dlbench::Error);
}

TEST(CheckpointHardening, TruncatedPayloadReportsTruncation) {
  Sequential a = make_model(24);
  std::string bytes = serialized(a);
  std::stringstream truncated(bytes.substr(0, bytes.size() - 64));
  Sequential b = make_model(25);
  try {
    load_checkpoint(b, truncated);
    FAIL() << "truncated stream must not load";
  } catch (const dlbench::Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointHardening, ImplausibleLengthHeaderIsRejected) {
  Sequential a = make_model(26);
  std::string bytes = serialized(a);
  // Overwrite the u64 payload-length field (offset 8) with a huge value
  // so a corrupt header cannot drive a giant allocation.
  const std::uint64_t huge = 1ull << 40;
  for (std::size_t i = 0; i < sizeof(huge); ++i)
    bytes[8 + i] = static_cast<char>(reinterpret_cast<const char*>(&huge)[i]);
  Sequential b = make_model(27);
  std::stringstream corrupt(bytes);
  try {
    load_checkpoint(b, corrupt);
    FAIL() << "implausible length must not load";
  } catch (const dlbench::Error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointHardening, LegacyV1StreamStillLoads) {
  Sequential a = make_model(28);
  // Rebuild the exact v1 container: magic, version=1, bare payload —
  // no length, no CRC. The payload is version-independent, so it can be
  // carved out of a v2 save (between the 16-byte header and the 4-byte
  // CRC trailer).
  std::string v2 = serialized(a);
  const std::string payload =
      v2.substr(kHeaderBytes, v2.size() - kHeaderBytes - 4);
  std::stringstream v1;
  const std::uint32_t magic = 0x444c4243;
  const std::uint32_t version = 1;
  v1.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  v1.write(reinterpret_cast<const char*>(&version), sizeof(version));
  v1.write(payload.data(), static_cast<std::streamsize>(payload.size()));

  Sequential b = make_model(29);
  load_checkpoint(b, v1);
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      ASSERT_EQ(pa[i]->at(k), pb[i]->at(k));
}

TEST(CheckpointHardening, AtomicSaveLeavesNoTempFile) {
  Sequential a = make_model(30);
  const std::string path = "/tmp/dlbench_ckpt_atomic_test.bin";
  save_checkpoint(a, path);
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "temp file must be renamed away";
  std::remove(path.c_str());
}

TEST(CheckpointHardening, SaveToMissingDirectoryThrows) {
  Sequential a = make_model(31);
  EXPECT_THROW(save_checkpoint(a, "/nonexistent/dir/ckpt.bin"),
               dlbench::Error);
}

// ---- primary/fallback restore ----

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Rebuilds the v1 container (magic, version=1, bare payload) from a v2
// save, as a file — the fallback in the recovery scenarios below.
std::string as_v1_bytes(Sequential& model) {
  std::string v2 = serialized(model);
  const std::string payload =
      v2.substr(kHeaderBytes, v2.size() - kHeaderBytes - 4);
  std::stringstream v1;
  const std::uint32_t magic = 0x444c4243;
  const std::uint32_t version = 1;
  v1.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  v1.write(reinterpret_cast<const char*>(&version), sizeof(version));
  v1.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return v1.str();
}

void expect_same_params(Sequential& a, Sequential& b) {
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      ASSERT_EQ(pa[i]->at(k), pb[i]->at(k)) << "tensor " << i << " at " << k;
}

TEST(CheckpointFallback, ValidPrimaryWinsOverFallback) {
  Sequential primary_model = make_model(40);
  Sequential fallback_model = make_model(41);
  const std::string primary = "/tmp/dlbench_fb_primary.bin";
  const std::string fallback = "/tmp/dlbench_fb_fallback.bin";
  save_checkpoint(primary_model, primary);
  save_checkpoint(fallback_model, fallback);

  Sequential restored = make_model(42);
  EXPECT_EQ(load_checkpoint_with_fallback(restored, primary, fallback),
            CheckpointSource::kPrimary);
  expect_same_params(primary_model, restored);
  std::remove(primary.c_str());
  std::remove(fallback.c_str());
}

TEST(CheckpointFallback, V2TruncatedMidHeaderFallsBackToV1) {
  Sequential primary_model = make_model(43);
  Sequential fallback_model = make_model(44);
  const std::string primary = "/tmp/dlbench_fb_midheader.bin";
  const std::string fallback = "/tmp/dlbench_fb_v1.bin";
  // Cut the v2 container inside its 16-byte header: the magic survives
  // but the version/length fields do not.
  write_file(primary, serialized(primary_model).substr(0, 6));
  write_file(fallback, as_v1_bytes(fallback_model));

  Sequential restored = make_model(45);
  EXPECT_EQ(load_checkpoint_with_fallback(restored, primary, fallback),
            CheckpointSource::kFallback);
  expect_same_params(fallback_model, restored);
  std::remove(primary.c_str());
  std::remove(fallback.c_str());
}

TEST(CheckpointFallback, CrcRejectedPrimaryFallsBack) {
  Sequential primary_model = make_model(46);
  Sequential fallback_model = make_model(47);
  const std::string primary = "/tmp/dlbench_fb_crc.bin";
  const std::string fallback = "/tmp/dlbench_fb_good.bin";
  {
    // Write the primary under simulated disk corruption: byte flips
    // land past the header, so the CRC — not the parser — rejects it.
    runtime::fault::FaultPlan plan;
    plan.ckpt_flip_bytes = 4;
    runtime::fault::FaultScope scope(plan);
    save_checkpoint(primary_model, primary);
    EXPECT_EQ(scope.stats().checkpoint_bytes_flipped, 4);
  }
  save_checkpoint(fallback_model, fallback);

  Sequential restored = make_model(48);
  EXPECT_EQ(load_checkpoint_with_fallback(restored, primary, fallback),
            CheckpointSource::kFallback);
  expect_same_params(fallback_model, restored);
  std::remove(primary.c_str());
  std::remove(fallback.c_str());
}

TEST(CheckpointFallback, MissingPrimaryFallsBack) {
  Sequential fallback_model = make_model(49);
  const std::string fallback = "/tmp/dlbench_fb_only.bin";
  save_checkpoint(fallback_model, fallback);

  Sequential restored = make_model(50);
  EXPECT_EQ(load_checkpoint_with_fallback(
                restored, "/nonexistent/dir/primary.bin", fallback),
            CheckpointSource::kFallback);
  expect_same_params(fallback_model, restored);
  std::remove(fallback.c_str());
}

TEST(CheckpointFallback, BothUnusableThrowsNamingBoth) {
  Sequential primary_model = make_model(51);
  const std::string primary = "/tmp/dlbench_fb_bad_primary.bin";
  const std::string fallback = "/tmp/dlbench_fb_bad_fallback.bin";
  std::string bytes = serialized(primary_model);
  bytes[bytes.size() / 2] ^= 0x01;  // CRC reject
  write_file(primary, bytes);
  write_file(fallback, "not a checkpoint");

  Sequential restored = make_model(52);
  try {
    load_checkpoint_with_fallback(restored, primary, fallback);
    FAIL() << "both containers unusable — must throw";
  } catch (const dlbench::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(primary), std::string::npos) << what;
    EXPECT_NE(what.find(fallback), std::string::npos) << what;
  }
  std::remove(primary.c_str());
  std::remove(fallback.c_str());
}

}  // namespace
}  // namespace dlbench::nn
