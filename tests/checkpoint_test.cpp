// Checkpoint save/load: round trips, mismatch detection, corruption.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "frameworks/registry.hpp"
#include "nn/checkpoint.hpp"
#include "nn/network_spec.hpp"
#include "util/error.hpp"

namespace dlbench::nn {
namespace {

using frameworks::DatasetId;
using frameworks::FrameworkKind;
using tensor::Tensor;

Sequential make_model(std::uint64_t seed) {
  NetworkSpec spec = frameworks::default_network_spec(FrameworkKind::kCaffe,
                                                      DatasetId::kMnist);
  util::Rng rng(seed);
  return build_model(spec, rng);
}

TEST(Checkpoint, RoundTripRestoresEveryParameter) {
  Sequential a = make_model(1);
  Sequential b = make_model(2);  // different init

  std::stringstream buffer;
  save_checkpoint(a, buffer);
  load_checkpoint(b, buffer);

  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->shape(), pb[i]->shape());
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      ASSERT_EQ(pa[i]->at(k), pb[i]->at(k)) << "tensor " << i << " at " << k;
  }
}

TEST(Checkpoint, RestoredModelPredictsIdentically) {
  Sequential a = make_model(3);
  Sequential b = make_model(4);
  std::stringstream buffer;
  save_checkpoint(a, buffer);
  load_checkpoint(b, buffer);

  Context ctx;
  ctx.device = runtime::Device::cpu();
  util::Rng xr(5);
  Tensor x = Tensor::randn(tensor::Shape({2, 1, 28, 28}), xr, 0.5f, 0.2f);
  Tensor ya = a.forward(x, ctx);
  Tensor yb = b.forward(x, ctx);
  for (std::int64_t i = 0; i < ya.numel(); ++i)
    ASSERT_EQ(ya.at(i), yb.at(i));
}

TEST(Checkpoint, ArchitectureMismatchThrows) {
  Sequential a = make_model(6);
  // A different architecture (TF MNIST net).
  NetworkSpec other = frameworks::default_network_spec(
      FrameworkKind::kTensorFlow, DatasetId::kMnist);
  util::Rng rng(7);
  Sequential b = build_model(other, rng);

  std::stringstream buffer;
  save_checkpoint(a, buffer);
  EXPECT_THROW(load_checkpoint(b, buffer), dlbench::Error);
}

TEST(Checkpoint, GarbageStreamThrows) {
  Sequential a = make_model(8);
  std::stringstream buffer("this is not a checkpoint at all............");
  EXPECT_THROW(load_checkpoint(a, buffer), dlbench::Error);
}

TEST(Checkpoint, TruncatedStreamThrows) {
  Sequential a = make_model(9);
  std::stringstream buffer;
  save_checkpoint(a, buffer);
  std::string data = buffer.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  Sequential b = make_model(10);
  EXPECT_THROW(load_checkpoint(b, truncated), dlbench::Error);
}

TEST(Checkpoint, FileRoundTrip) {
  Sequential a = make_model(11);
  Sequential b = make_model(12);
  const std::string path = "/tmp/dlbench_checkpoint_test.bin";
  save_checkpoint(a, path);
  load_checkpoint(b, path);
  auto pa = a.params();
  auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    ASSERT_EQ(pa[i]->at(0), pb[i]->at(0));
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  Sequential a = make_model(13);
  EXPECT_THROW(load_checkpoint(a, "/nonexistent/dir/ckpt.bin"),
               dlbench::Error);
}

// ---- v2 container hardening ----

// v2 layout: u32 magic, u32 version, u64 payload length, payload,
// u32 CRC-32 of the payload.
constexpr std::size_t kHeaderBytes = 16;

std::string serialized(Sequential& model) {
  std::stringstream buffer;
  save_checkpoint(model, buffer);
  return buffer.str();
}

TEST(CheckpointHardening, SingleFlippedPayloadByteFailsChecksum) {
  Sequential a = make_model(20);
  std::string bytes = serialized(a);
  ASSERT_GT(bytes.size(), kHeaderBytes + 4);
  bytes[bytes.size() / 2] ^= 0x01;  // one bit, deep in the payload

  Sequential b = make_model(21);
  std::stringstream corrupt(bytes);
  try {
    load_checkpoint(b, corrupt);
    FAIL() << "corrupt stream must not load";
  } catch (const dlbench::Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckpointHardening, FlippedCrcTrailerFailsChecksum) {
  Sequential a = make_model(22);
  std::string bytes = serialized(a);
  bytes[bytes.size() - 1] ^= 0xff;  // corrupt the stored CRC itself
  Sequential b = make_model(23);
  std::stringstream corrupt(bytes);
  EXPECT_THROW(load_checkpoint(b, corrupt), dlbench::Error);
}

TEST(CheckpointHardening, TruncatedPayloadReportsTruncation) {
  Sequential a = make_model(24);
  std::string bytes = serialized(a);
  std::stringstream truncated(bytes.substr(0, bytes.size() - 64));
  Sequential b = make_model(25);
  try {
    load_checkpoint(b, truncated);
    FAIL() << "truncated stream must not load";
  } catch (const dlbench::Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointHardening, ImplausibleLengthHeaderIsRejected) {
  Sequential a = make_model(26);
  std::string bytes = serialized(a);
  // Overwrite the u64 payload-length field (offset 8) with a huge value
  // so a corrupt header cannot drive a giant allocation.
  const std::uint64_t huge = 1ull << 40;
  for (std::size_t i = 0; i < sizeof(huge); ++i)
    bytes[8 + i] = static_cast<char>(reinterpret_cast<const char*>(&huge)[i]);
  Sequential b = make_model(27);
  std::stringstream corrupt(bytes);
  try {
    load_checkpoint(b, corrupt);
    FAIL() << "implausible length must not load";
  } catch (const dlbench::Error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointHardening, LegacyV1StreamStillLoads) {
  Sequential a = make_model(28);
  // Rebuild the exact v1 container: magic, version=1, bare payload —
  // no length, no CRC. The payload is version-independent, so it can be
  // carved out of a v2 save (between the 16-byte header and the 4-byte
  // CRC trailer).
  std::string v2 = serialized(a);
  const std::string payload =
      v2.substr(kHeaderBytes, v2.size() - kHeaderBytes - 4);
  std::stringstream v1;
  const std::uint32_t magic = 0x444c4243;
  const std::uint32_t version = 1;
  v1.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  v1.write(reinterpret_cast<const char*>(&version), sizeof(version));
  v1.write(payload.data(), static_cast<std::streamsize>(payload.size()));

  Sequential b = make_model(29);
  load_checkpoint(b, v1);
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      ASSERT_EQ(pa[i]->at(k), pb[i]->at(k));
}

TEST(CheckpointHardening, AtomicSaveLeavesNoTempFile) {
  Sequential a = make_model(30);
  const std::string path = "/tmp/dlbench_ckpt_atomic_test.bin";
  save_checkpoint(a, path);
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "temp file must be renamed away";
  std::remove(path.c_str());
}

TEST(CheckpointHardening, SaveToMissingDirectoryThrows) {
  Sequential a = make_model(31);
  EXPECT_THROW(save_checkpoint(a, "/nonexistent/dir/ckpt.bin"),
               dlbench::Error);
}

}  // namespace
}  // namespace dlbench::nn
