// Framework emulation tests: the registry must encode Tables I–III
// exactly; each emulation must apply its own regularizer, init and conv
// implementation; the trainer must learn, record losses, and detect
// divergence.

#include <gtest/gtest.h>

#include <memory>

#include "data/synthetic.hpp"
#include "frameworks/emulations.hpp"
#include "frameworks/registry.hpp"
#include "nn/conv_direct.hpp"
#include "nn/layers.hpp"

namespace dlbench::frameworks {
namespace {

using runtime::Device;

// ---- Table II: MNIST training defaults ----

TEST(Registry, TableIITfMnist) {
  TrainingConfig c =
      default_training_config(FrameworkKind::kTensorFlow, DatasetId::kMnist);
  EXPECT_EQ(c.algo, OptimizerAlgo::kAdam);
  EXPECT_DOUBLE_EQ(c.base_lr, 0.0001);
  EXPECT_EQ(c.batch_size, 50);
  EXPECT_NEAR(c.epochs, 16.67, 0.01);
  EXPECT_EQ(c.paper_max_iterations, 20000);
}

TEST(Registry, TableIICaffeMnist) {
  TrainingConfig c =
      default_training_config(FrameworkKind::kCaffe, DatasetId::kMnist);
  EXPECT_EQ(c.algo, OptimizerAlgo::kSgd);
  EXPECT_DOUBLE_EQ(c.base_lr, 0.01);
  EXPECT_EQ(c.batch_size, 64);
  EXPECT_NEAR(c.epochs, 10.67, 0.01);
  EXPECT_EQ(c.paper_max_iterations, 10000);
}

TEST(Registry, TableIITorchMnist) {
  TrainingConfig c =
      default_training_config(FrameworkKind::kTorch, DatasetId::kMnist);
  EXPECT_EQ(c.algo, OptimizerAlgo::kSgd);
  EXPECT_DOUBLE_EQ(c.base_lr, 0.05);
  EXPECT_EQ(c.batch_size, 10);
  EXPECT_DOUBLE_EQ(c.epochs, 20.0);
  EXPECT_EQ(c.paper_max_iterations, 120000);
}

// ---- Table III: CIFAR-10 training defaults ----

TEST(Registry, TableIIITfCifar) {
  TrainingConfig c = default_training_config(FrameworkKind::kTensorFlow,
                                             DatasetId::kCifar10);
  EXPECT_EQ(c.algo, OptimizerAlgo::kSgd);
  EXPECT_DOUBLE_EQ(c.base_lr, 0.1);
  EXPECT_EQ(c.batch_size, 128);
  EXPECT_DOUBLE_EQ(c.epochs, 2560.0);
  EXPECT_EQ(c.paper_max_iterations, 1000000);
}

TEST(Registry, TableIIICaffeCifarTwoPhase) {
  TrainingConfig c =
      default_training_config(FrameworkKind::kCaffe, DatasetId::kCifar10);
  EXPECT_DOUBLE_EQ(c.base_lr, 0.001);
  ASSERT_EQ(c.lr_phases.size(), 1u);
  EXPECT_DOUBLE_EQ(c.lr_phases[0].first, 8.0);    // 8 epochs at base lr
  EXPECT_DOUBLE_EQ(c.lr_phases[0].second, 0.0001);  // then 0.0001
  EXPECT_EQ(c.batch_size, 100);
  EXPECT_DOUBLE_EQ(c.epochs, 10.0);
  EXPECT_EQ(c.paper_max_iterations, 5000);
}

TEST(Registry, TableIIITorchCifarBatchOne) {
  TrainingConfig c =
      default_training_config(FrameworkKind::kTorch, DatasetId::kCifar10);
  EXPECT_DOUBLE_EQ(c.base_lr, 0.001);
  EXPECT_EQ(c.batch_size, 1);
  EXPECT_DOUBLE_EQ(c.epochs, 20.0);
  EXPECT_EQ(c.paper_max_iterations, 100000);
}

// ---- Table I: framework properties ----

TEST(Registry, TableIProperties) {
  FrameworkInfo tf = framework_info(FrameworkKind::kTensorFlow);
  EXPECT_EQ(tf.paper_version, "1.3.0");
  EXPECT_EQ(tf.paper_loc, 1281085);
  EXPECT_EQ(tf.paper_license, "Apache");
  FrameworkInfo caffe = framework_info(FrameworkKind::kCaffe);
  EXPECT_EQ(caffe.paper_version, "1.0.0");
  EXPECT_EQ(caffe.paper_library, "OpenBLAS & CUDA");
  FrameworkInfo torch = framework_info(FrameworkKind::kTorch);
  EXPECT_EQ(torch.paper_interface, "Lua");
  EXPECT_EQ(torch.paper_loc, 29750);
}

TEST(Registry, EpochIterationIdentityHolds) {
  // #Epochs = max_steps * batch / #samples (paper §III-A), at the
  // paper's dataset sizes: 60k MNIST, 50k CIFAR-10 training samples.
  for (FrameworkKind fw : kAllFrameworks) {
    {
      TrainingConfig c = default_training_config(fw, DatasetId::kMnist);
      const double derived =
          static_cast<double>(c.paper_max_iterations) * c.batch_size / 60000.0;
      EXPECT_NEAR(derived, c.epochs, 0.01) << to_string(fw) << " MNIST";
    }
    {
      TrainingConfig c = default_training_config(fw, DatasetId::kCifar10);
      // Torch trains on a 5,000-sample subset (train_fraction 0.1);
      // the identity holds against the samples it actually visits.
      const double samples = 50000.0 * c.train_fraction;
      const double derived =
          static_cast<double>(c.paper_max_iterations) * c.batch_size / samples;
      EXPECT_NEAR(derived, c.epochs, 0.01) << to_string(fw) << " CIFAR";
    }
  }
}

// ---- emulation behaviours ----

TEST(Emulations, FactoryProducesMatchingKinds) {
  for (FrameworkKind kind : kAllFrameworks) {
    auto fw = make_framework(kind);
    EXPECT_EQ(fw->kind(), kind);
    EXPECT_EQ(fw->name(), to_string(kind));
  }
}

TEST(Emulations, RegularizersMatchTableIX) {
  EXPECT_EQ(make_framework(FrameworkKind::kTensorFlow)->regularizer(),
            Regularizer::kDropout);
  EXPECT_EQ(make_framework(FrameworkKind::kCaffe)->regularizer(),
            Regularizer::kWeightDecay);
  EXPECT_EQ(make_framework(FrameworkKind::kTorch)->regularizer(),
            Regularizer::kNone);
}

TEST(Emulations, TfInjectsDropoutBeforeClassifier) {
  auto tf = make_framework(FrameworkKind::kTensorFlow);
  nn::NetworkSpec spec =
      default_network_spec(FrameworkKind::kCaffe, DatasetId::kMnist);
  util::Rng rng(1);
  nn::Sequential model = tf->build_model(spec, Device::cpu(), rng);
  bool has_dropout = false;
  for (std::size_t i = 0; i < model.size(); ++i)
    if (dynamic_cast<nn::Dropout*>(&model.layer(i))) has_dropout = true;
  EXPECT_TRUE(has_dropout);

  // Caffe builds the same spec with no dropout.
  auto caffe = make_framework(FrameworkKind::kCaffe);
  util::Rng rng2(1);
  nn::Sequential cm = caffe->build_model(spec, Device::cpu(), rng2);
  for (std::size_t i = 0; i < cm.size(); ++i)
    EXPECT_EQ(dynamic_cast<nn::Dropout*>(&cm.layer(i)), nullptr);
}

TEST(Emulations, TorchUsesDirectConvOnCpuGemmOnGpu) {
  auto torch = make_framework(FrameworkKind::kTorch);
  nn::NetworkSpec spec =
      default_network_spec(FrameworkKind::kTorch, DatasetId::kMnist);
  util::Rng rng(2);
  nn::Sequential cpu_model = torch->build_model(spec, Device::cpu(), rng);
  bool any_direct = false;
  for (std::size_t i = 0; i < cpu_model.size(); ++i)
    if (dynamic_cast<nn::Conv2dDirect*>(&cpu_model.layer(i)))
      any_direct = true;
  EXPECT_TRUE(any_direct);

  util::Rng rng2(2);
  nn::Sequential gpu_model = torch->build_model(spec, Device::gpu(), rng2);
  for (std::size_t i = 0; i < gpu_model.size(); ++i)
    EXPECT_EQ(dynamic_cast<nn::Conv2dDirect*>(&gpu_model.layer(i)), nullptr);
}

TEST(Emulations, EvalBatchSizes) {
  EXPECT_EQ(make_framework(FrameworkKind::kTensorFlow)->eval_batch_size(),
            100);
  EXPECT_EQ(make_framework(FrameworkKind::kCaffe)->eval_batch_size(), 100);
  EXPECT_EQ(make_framework(FrameworkKind::kTorch)->eval_batch_size(), 1);
}

// ---- training loop ----

class TrainingSmoke : public ::testing::TestWithParam<FrameworkKind> {};

TEST_P(TrainingSmoke, LearnsSyntheticMnistAboveChance) {
  const FrameworkKind kind = GetParam();
  auto fw = make_framework(kind);
  data::MnistOptions d;
  d.train_samples = 300;
  d.test_samples = 100;
  data::DatasetPair mnist = data::synthetic_mnist(d);

  TrainingConfig config = default_training_config(kind, DatasetId::kMnist);
  nn::NetworkSpec spec = default_network_spec(kind, DatasetId::kMnist);
  util::Rng rng(3);
  const Device dev = Device::gpu();
  nn::Sequential model = fw->build_model(spec, dev, rng);

  TrainOptions opts;
  opts.scale.max_step_cap = config.batch_size < 32 ? 250 : 50;
  TrainResult train = fw->train(model, mnist.train, config, dev, opts);
  EXPECT_GT(train.steps, 0);
  EXPECT_GT(train.train_time_s, 0.0);
  EXPECT_FALSE(train.loss_curve.empty());
  EXPECT_TRUE(train.converged) << "final loss " << train.final_loss;

  EvalResult eval = fw->evaluate(model, mnist.test, dev);
  EXPECT_EQ(eval.total, 100);
  EXPECT_GT(eval.accuracy_pct, 60.0) << to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(AllFrameworks, TrainingSmoke,
                         ::testing::ValuesIn(kAllFrameworks),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Training, LossCurveIsRecordedAtInterval) {
  auto fw = make_framework(FrameworkKind::kCaffe);
  data::MnistOptions d;
  d.train_samples = 128;
  d.test_samples = 32;
  data::DatasetPair mnist = data::synthetic_mnist(d);
  TrainingConfig config =
      default_training_config(FrameworkKind::kCaffe, DatasetId::kMnist);
  nn::NetworkSpec spec =
      default_network_spec(FrameworkKind::kCaffe, DatasetId::kMnist);
  util::Rng rng(4);
  nn::Sequential model = fw->build_model(spec, Device::gpu(), rng);
  TrainOptions opts;
  opts.scale.max_step_cap = 21;
  opts.loss_record_interval = 5;
  TrainResult res = fw->train(model, mnist.train, config, Device::gpu(), opts);
  ASSERT_GE(res.loss_curve.size(), 5u);  // steps 0,5,10,15,20 at least
  EXPECT_EQ(res.loss_curve.front().first, 0);
  EXPECT_EQ(res.loss_curve.back().first, res.steps - 1);
}

TEST(Training, DivergenceIsDetected) {
  // An absurd learning rate must blow up and be flagged, mirroring the
  // paper's Caffe-on-CIFAR-10-with-MNIST-settings non-convergence.
  auto fw = make_framework(FrameworkKind::kCaffe);
  data::CifarOptions d;
  d.train_samples = 100;
  d.test_samples = 30;
  data::DatasetPair cifar = data::synthetic_cifar10(d);
  TrainingConfig config =
      default_training_config(FrameworkKind::kCaffe, DatasetId::kCifar10);
  config.base_lr = 50.0;  // guaranteed divergence
  config.lr_phases.clear();
  nn::NetworkSpec spec =
      default_network_spec(FrameworkKind::kCaffe, DatasetId::kCifar10);
  util::Rng rng(5);
  nn::Sequential model = fw->build_model(spec, Device::gpu(), rng);
  TrainOptions opts;
  opts.scale.max_step_cap = 10;
  TrainResult res = fw->train(model, cifar.train, config, Device::gpu(), opts);
  EXPECT_FALSE(res.converged);
}

TEST(Training, DeterministicAcrossRuns) {
  auto fw = make_framework(FrameworkKind::kCaffe);
  data::MnistOptions d;
  d.train_samples = 100;
  d.test_samples = 50;
  data::DatasetPair mnist = data::synthetic_mnist(d);
  TrainingConfig config =
      default_training_config(FrameworkKind::kCaffe, DatasetId::kMnist);
  nn::NetworkSpec spec =
      default_network_spec(FrameworkKind::kCaffe, DatasetId::kMnist);
  TrainOptions opts;
  opts.scale.max_step_cap = 15;

  auto run_once = [&] {
    util::Rng rng(6);
    nn::Sequential model = fw->build_model(spec, Device::cpu(), rng);
    TrainResult res =
        fw->train(model, mnist.train, config, Device::cpu(), opts);
    EvalResult eval = fw->evaluate(model, mnist.test, Device::cpu());
    return std::make_pair(res.final_loss, eval.accuracy_pct);
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace dlbench::frameworks
