// Unit tests for dlb_runtime: thread pool, device model, scaling.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

#include "runtime/device.hpp"
#include "runtime/scale.hpp"
#include "runtime/stopwatch.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"

namespace dlbench::runtime {
namespace {

TEST(ThreadPool, InlineModeRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(10, 0);
  pool.parallel_for(10, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RangesPartitionCompletely) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_ranges(997, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 997u);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_ranges(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw dlbench::Error("boom");
                                 }),
               dlbench::Error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw dlbench::Error("x"); }),
      dlbench::Error);
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, SubmitRunsOnWorkers) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::mutex m;
  std::condition_variable cv;
  for (int i = 0; i < 8; ++i)
    pool.submit([&] {
      if (count.fetch_add(1) + 1 == 8) cv.notify_one();
    });
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return count.load() == 8; }));
}

// Regression: an inline pool (size 1, no worker threads) used to
// enqueue submitted tasks onto a queue nothing ever drained — the task
// was silently stranded forever. It must execute on the caller.
TEST(ThreadPool, SubmitOnInlinePoolRunsImmediately) {
  ThreadPool pool(1);
  ASSERT_EQ(pool.size(), 1u);
  int ran = 0;
  pool.submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // no wait: it must have run synchronously
}

TEST(ThreadPool, ManySmallDispatchesAreStable) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(16, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 16);
  }
}

TEST(Device, CpuIsSerial) {
  Device cpu = Device::cpu();
  EXPECT_EQ(cpu.kind(), Device::Kind::kCpu);
  EXPECT_FALSE(cpu.is_parallel());
  EXPECT_EQ(cpu.workers(), 1u);
  EXPECT_EQ(cpu.name(), "CPU");
}

TEST(Device, GpuIsParallel) {
  Device gpu = Device::gpu();
  EXPECT_EQ(gpu.kind(), Device::Kind::kGpu);
  EXPECT_TRUE(gpu.is_parallel());
  EXPECT_GE(gpu.workers(), 2u);
  EXPECT_EQ(gpu.name(), "GPU");
}

TEST(Device, ParallelWithOneWorkerDegradesToCpu) {
  Device dev = Device::parallel(1);
  EXPECT_FALSE(dev.is_parallel());
}

TEST(Device, ParallelForCoversRangeOnBothKinds) {
  for (const Device& dev : {Device::cpu(), Device::parallel(3)}) {
    std::vector<std::atomic<int>> hits(257);
    dev.parallel_for(257, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(Device, GrainKeepsSmallWorkInline) {
  Device dev = Device::parallel(4);
  int calls = 0;
  // count <= grain must run as a single inline range.
  dev.parallel_for(8, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 8u);
  },
                   /*grain=*/16);
  EXPECT_EQ(calls, 1);
}

TEST(Scale, SamplesScaleWithFloor) {
  ScaleConfig cfg;
  cfg.data_fraction = 0.1;
  EXPECT_EQ(cfg.scale_samples(1000), 100);
  EXPECT_EQ(cfg.scale_samples(100, 64), 64);  // floor kicks in
  EXPECT_EQ(cfg.scale_samples(10, 64), 10);   // never exceeds n
}

TEST(Scale, EpochsScaleWithFloor) {
  ScaleConfig cfg;
  cfg.epoch_fraction = 0.5;
  EXPECT_DOUBLE_EQ(cfg.scale_epochs(10.0), 5.0);
  EXPECT_DOUBLE_EQ(cfg.scale_epochs(0.01), 0.05);
}

TEST(Scale, StepCap) {
  ScaleConfig cfg;
  EXPECT_EQ(cfg.cap_steps(1000), 1000);  // no cap by default
  cfg.max_step_cap = 10;
  EXPECT_EQ(cfg.cap_steps(1000), 10);
  EXPECT_EQ(cfg.cap_steps(5), 5);
}

TEST(Scale, InvalidFractionThrows) {
  ScaleConfig cfg;
  cfg.data_fraction = 0.0;
  EXPECT_THROW(cfg.scale_samples(10), dlbench::Error);
  cfg.data_fraction = 1.5;
  EXPECT_THROW(cfg.scale_samples(10), dlbench::Error);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sw.seconds(), 0.0);
  const double before = sw.seconds();
  sw.reset();
  EXPECT_LT(sw.seconds(), before + 1.0);
}

}  // namespace
}  // namespace dlbench::runtime
