// End-to-end integration tests crossing module boundaries: the
// train -> checkpoint -> reload -> attack pipeline, device-crossing
// evaluation, and augmentation inside a real training loop.

#include <gtest/gtest.h>

#include <sstream>

#include "adversarial/attacks.hpp"
#include "core/harness.hpp"
#include "data/augment.hpp"
#include "data/synthetic.hpp"
#include "nn/checkpoint.hpp"

namespace dlbench {
namespace {

using core::Harness;
using core::HarnessOptions;
using frameworks::DatasetId;
using frameworks::FrameworkKind;
using runtime::Device;

TEST(Integration, TrainCheckpointReloadAttack) {
  Harness harness(HarnessOptions::test_profile());
  auto trained = harness.train_model(FrameworkKind::kCaffe,
                                     FrameworkKind::kCaffe,
                                     DatasetId::kMnist, DatasetId::kMnist,
                                     Device::gpu());

  // Round-trip through a checkpoint into a freshly initialized model.
  std::stringstream buffer;
  nn::save_checkpoint(trained.model, buffer);
  auto framework = frameworks::make_framework(FrameworkKind::kCaffe);
  nn::NetworkSpec spec = frameworks::default_network_spec(
      FrameworkKind::kCaffe, DatasetId::kMnist);
  util::Rng rng(99);
  nn::Sequential restored =
      framework->build_model(spec, Device::gpu(), rng);
  nn::load_checkpoint(restored, buffer);

  // Restored model evaluates identically.
  auto e1 = framework->evaluate(trained.model, trained.test, Device::gpu());
  auto e2 = framework->evaluate(restored, trained.test, Device::gpu());
  EXPECT_EQ(e1.correct, e2.correct);

  // And is attackable: FGSM gradient flows through the restored net.
  nn::Context ctx;
  ctx.device = Device::gpu();
  adversarial::FgsmOptions fgsm;
  fgsm.epsilon = 0.05f;
  fgsm.max_iterations = 30;
  auto outcome = adversarial::fgsm_attack(
      restored, trained.test.sample(0), trained.test.labels[0], fgsm, ctx);
  EXPECT_GT(outcome.iterations, 0);
}

TEST(Integration, TrainOnGpuEvaluateOnCpuMatches) {
  // One code path, two devices: a GPU-trained model must classify
  // identically when evaluated serially (paper's CPU/GPU parity
  // observation for accuracy).
  Harness harness(HarnessOptions::test_profile());
  auto trained = harness.train_model(FrameworkKind::kCaffe,
                                     FrameworkKind::kCaffe,
                                     DatasetId::kMnist, DatasetId::kMnist,
                                     Device::gpu());
  auto framework = frameworks::make_framework(FrameworkKind::kCaffe);
  auto gpu_eval =
      framework->evaluate(trained.model, trained.test, Device::gpu());
  auto cpu_eval =
      framework->evaluate(trained.model, trained.test, Device::cpu());
  EXPECT_EQ(gpu_eval.correct, cpu_eval.correct);
  EXPECT_EQ(gpu_eval.total, cpu_eval.total);
}

TEST(Integration, AugmentedTrainingLoopLearns) {
  // Drive a manual training loop with the TF-CIFAR augmentation policy
  // attached — the machinery a user would combine for the paper's
  // "incrementally enhanced datasets" discussion.
  data::MnistOptions opt;
  opt.train_samples = 200;
  opt.test_samples = 80;
  data::DatasetPair mnist = data::synthetic_mnist(opt);

  auto framework = frameworks::make_framework(FrameworkKind::kCaffe);
  nn::NetworkSpec spec = frameworks::default_network_spec(
      FrameworkKind::kCaffe, DatasetId::kMnist);
  util::Rng rng(5);
  const Device dev = Device::gpu();
  nn::Sequential model = framework->build_model(spec, dev, rng);

  frameworks::TrainingConfig config = frameworks::default_training_config(
      FrameworkKind::kCaffe, DatasetId::kMnist);
  auto optimizer = framework->make_optimizer(config, 4, 60);

  data::AugmentPolicy augment;
  augment.horizontal_flip = false;  // digits are chirality-sensitive
  augment.crop_pad = 2;
  augment.brightness_delta = 0.1;

  nn::Context ctx;
  ctx.device = dev;
  ctx.training = true;
  util::Rng dropout_rng(6);
  ctx.rng = &dropout_rng;
  util::Rng augment_rng(7);

  data::DataLoader loader(mnist.train, config.batch_size, true,
                          util::Rng(8));
  std::int64_t step = 0;
  data::Batch batch;
  while (step < 60) {
    loader.start_epoch();
    while (step < 60 && loader.next(batch)) {
      augment.apply(batch, augment_rng);
      model.zero_grads();
      auto loss = model.forward_loss(batch.images, batch.labels, ctx);
      model.backward(loss, batch.labels, ctx);
      optimizer->step(model.params(), model.grads(), step, dev);
      ++step;
    }
  }
  auto eval = framework->evaluate(model, mnist.test, dev);
  EXPECT_GT(eval.accuracy_pct, 60.0);
}

TEST(Integration, SameSeedSameResultsAcrossHarnessInstances) {
  HarnessOptions opts = HarnessOptions::test_profile();
  Harness h1(opts), h2(opts);
  auto r1 = h1.run_default(FrameworkKind::kCaffe, DatasetId::kMnist,
                           Device::gpu());
  auto r2 = h2.run_default(FrameworkKind::kCaffe, DatasetId::kMnist,
                           Device::gpu());
  EXPECT_EQ(r1.eval.accuracy_pct, r2.eval.accuracy_pct);
  EXPECT_EQ(r1.train.final_loss, r2.train.final_loss);
  EXPECT_EQ(r1.train.steps, r2.train.steps);
}

}  // namespace
}  // namespace dlbench
