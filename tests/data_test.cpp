// Dataset + generator tests: determinism, statistical properties the
// paper's analysis relies on (MNIST low entropy/sparse vs CIFAR-10
// dense/high entropy), loader semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace dlbench::data {
namespace {

TEST(SyntheticMnist, ShapesAndLabels) {
  MnistOptions opt;
  opt.train_samples = 100;
  opt.test_samples = 40;
  DatasetPair pair = synthetic_mnist(opt);
  EXPECT_EQ(pair.train.size(), 100);
  EXPECT_EQ(pair.test.size(), 40);
  EXPECT_EQ(pair.train.channels(), 1);
  EXPECT_EQ(pair.train.height(), 28);
  EXPECT_EQ(pair.train.width(), 28);
  EXPECT_EQ(pair.train.num_classes, 10);
  for (auto y : pair.train.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

TEST(SyntheticMnist, BalancedClasses) {
  MnistOptions opt;
  opt.train_samples = 200;
  opt.test_samples = 50;
  DatasetPair pair = synthetic_mnist(opt);
  std::array<int, 10> counts{};
  for (auto y : pair.train.labels) ++counts[static_cast<std::size_t>(y)];
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(SyntheticMnist, DeterministicPerSeed) {
  MnistOptions opt;
  opt.train_samples = 50;
  opt.test_samples = 10;
  DatasetPair a = synthetic_mnist(opt);
  DatasetPair b = synthetic_mnist(opt);
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i)
    ASSERT_EQ(a.train.images.at(i), b.train.images.at(i));
  opt.seed = 99;
  DatasetPair c = synthetic_mnist(opt);
  bool any_diff = false;
  for (std::int64_t i = 0; i < a.train.images.numel() && !any_diff; ++i)
    any_diff = a.train.images.at(i) != c.train.images.at(i);
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticMnist, TrainAndTestSplitsDiffer) {
  MnistOptions opt;
  opt.train_samples = 50;
  opt.test_samples = 50;
  DatasetPair pair = synthetic_mnist(opt);
  bool any_diff = false;
  for (std::int64_t i = 0; i < pair.train.images.numel() && !any_diff; ++i)
    any_diff = pair.train.images.at(i) != pair.test.images.at(i);
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticMnist, PixelsInUnitRange) {
  DatasetPair pair = synthetic_mnist({.train_samples = 50,
                                      .test_samples = 10});
  for (float v : pair.train.images.data()) {
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 1.f);
  }
}

TEST(SyntheticCifar, ShapesAndRange) {
  CifarOptions opt;
  opt.train_samples = 60;
  opt.test_samples = 20;
  DatasetPair pair = synthetic_cifar10(opt);
  EXPECT_EQ(pair.train.channels(), 3);
  EXPECT_EQ(pair.train.height(), 32);
  EXPECT_EQ(pair.train.width(), 32);
  for (float v : pair.train.images.data()) {
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 1.f);
  }
}

TEST(SyntheticCifar, DeterministicPerSeed) {
  CifarOptions opt;
  opt.train_samples = 30;
  opt.test_samples = 10;
  DatasetPair a = synthetic_cifar10(opt);
  DatasetPair b = synthetic_cifar10(opt);
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i)
    ASSERT_EQ(a.train.images.at(i), b.train.images.at(i));
}

// The paper's §III-B explanation: MNIST is sparse and low-entropy,
// CIFAR-10 is color-rich and high-entropy. The synthetic substitutes
// must reproduce that contrast or the accuracy/time analysis loses its
// basis.
TEST(SyntheticData, MnistIsSparserAndLowerEntropyThanCifar) {
  DatasetPair mnist = synthetic_mnist({.train_samples = 200,
                                       .test_samples = 20});
  DatasetPair cifar = synthetic_cifar10({.train_samples = 200,
                                         .test_samples = 20});
  DatasetStats ms = compute_stats(mnist.train);
  DatasetStats cs = compute_stats(cifar.train);
  EXPECT_GT(ms.sparsity, 0.5);              // mostly background
  EXPECT_LT(cs.sparsity, 0.2);              // dense textures
  EXPECT_LT(ms.pixel_entropy_bits, cs.pixel_entropy_bits);
}

TEST(Dataset, TakeCopiesPrefix) {
  DatasetPair pair = synthetic_mnist({.train_samples = 50,
                                      .test_samples = 10});
  Dataset head = pair.train.take(7);
  EXPECT_EQ(head.size(), 7);
  EXPECT_EQ(head.labels[3], pair.train.labels[3]);
  EXPECT_EQ(head.images.at(100), pair.train.images.at(100));
  // Clamped to available samples.
  EXPECT_EQ(pair.train.take(500).size(), 50);
}

TEST(Dataset, SampleExtractsOneImage) {
  DatasetPair pair = synthetic_mnist({.train_samples = 20,
                                      .test_samples = 5});
  auto x = pair.train.sample(3);
  EXPECT_EQ(x.shape(), tensor::Shape({1, 1, 28, 28}));
  EXPECT_EQ(x.at(0), pair.train.images.at(3 * 28 * 28));
  EXPECT_THROW(pair.train.sample(20), dlbench::Error);
  EXPECT_THROW(pair.train.sample(-1), dlbench::Error);
}

TEST(Dataset, ValidateCatchesBadLabels) {
  DatasetPair pair = synthetic_mnist({.train_samples = 10,
                                      .test_samples = 5});
  pair.train.labels[0] = 99;
  EXPECT_THROW(pair.train.validate(), dlbench::Error);
  pair.train.labels.pop_back();
  EXPECT_THROW(pair.train.validate(), dlbench::Error);
}

TEST(DataLoader, CoversDatasetExactlyOncePerEpoch) {
  DatasetPair pair = synthetic_mnist({.train_samples = 53,
                                      .test_samples = 5});
  DataLoader loader(pair.train, 10, /*shuffle=*/true, util::Rng(3));
  EXPECT_EQ(loader.batches_per_epoch(), 6);
  Batch batch;
  std::int64_t total = 0;
  int batches = 0;
  while (loader.next(batch)) {
    total += batch.size();
    ++batches;
  }
  EXPECT_EQ(total, 53);
  EXPECT_EQ(batches, 6);
  EXPECT_FALSE(loader.next(batch));  // exhausted
}

TEST(DataLoader, ShuffleChangesOrderAcrossEpochs) {
  DatasetPair pair = synthetic_mnist({.train_samples = 40,
                                      .test_samples = 5});
  DataLoader loader(pair.train, 40, /*shuffle=*/true, util::Rng(4));
  Batch first, second;
  loader.next(first);
  loader.start_epoch();
  loader.next(second);
  EXPECT_NE(first.labels, second.labels);
  // Same multiset of labels either way.
  auto a = first.labels, b = second.labels;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(DataLoader, NoShufflePreservesOrder) {
  DatasetPair pair = synthetic_mnist({.train_samples = 30,
                                      .test_samples = 5});
  DataLoader loader(pair.train, 7, /*shuffle=*/false, util::Rng(5));
  Batch batch;
  std::vector<std::int64_t> seen;
  while (loader.next(batch))
    seen.insert(seen.end(), batch.labels.begin(), batch.labels.end());
  EXPECT_EQ(seen, pair.train.labels);
}

TEST(DataLoader, BatchImagesMatchSourceSamples) {
  DatasetPair pair = synthetic_mnist({.train_samples = 12,
                                      .test_samples = 5});
  DataLoader loader(pair.train, 5, /*shuffle=*/false, util::Rng(6));
  Batch batch;
  ASSERT_TRUE(loader.next(batch));
  EXPECT_EQ(batch.images.shape(), tensor::Shape({5, 1, 28, 28}));
  for (std::int64_t i = 0; i < 5 * 28 * 28; ++i)
    ASSERT_EQ(batch.images.at(i), pair.train.images.at(i));
}

TEST(DataLoader, RejectsBadArguments) {
  DatasetPair pair = synthetic_mnist({.train_samples = 10,
                                      .test_samples = 5});
  EXPECT_THROW(DataLoader(pair.train, 0, false, util::Rng(7)),
               dlbench::Error);
}

TEST(Generators, RejectNonPositiveCounts) {
  MnistOptions m;
  m.train_samples = 0;
  EXPECT_THROW(synthetic_mnist(m), dlbench::Error);
  CifarOptions c;
  c.test_samples = -1;
  EXPECT_THROW(synthetic_cifar10(c), dlbench::Error);
}

}  // namespace
}  // namespace dlbench::data
