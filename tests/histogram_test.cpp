// LatencyHistogram: percentile accuracy against an exact reference,
// and exactness/associativity of cross-thread merges.

#include "runtime/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using dlbench::runtime::LatencyHistogram;
using dlbench::util::Rng;

/// Exact order statistic with the histogram's documented rank rule:
/// value at rank ceil(p/100 * n), 1-based; p<=0 -> min, p>=100 -> max.
double exact_percentile_s(std::vector<std::int64_t> sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  std::sort(sorted_ns.begin(), sorted_ns.end());
  if (p <= 0.0) return static_cast<double>(sorted_ns.front()) * 1e-9;
  if (p >= 100.0) return static_cast<double>(sorted_ns.back()) * 1e-9;
  const auto n = static_cast<double>(sorted_ns.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted_ns.size());
  return static_cast<double>(sorted_ns[rank - 1]) * 1e-9;
}

/// Asserts every interesting percentile of `h` is within the
/// histogram's error bound of the exact order statistic.
void expect_percentiles_close(const LatencyHistogram& h,
                              const std::vector<std::int64_t>& samples_ns) {
  for (const double p : {0.0, 1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    const double exact = exact_percentile_s(samples_ns, p);
    const double approx = h.percentile(p);
    // Bucket midpoints are within kMaxRelativeError of any value the
    // bucket covers; allow an absolute nanosecond of slack for the
    // integer-exact region.
    const double tol =
        LatencyHistogram::kMaxRelativeError * std::abs(exact) + 1e-9;
    EXPECT_NEAR(approx, exact, tol) << "p=" << p;
  }
}

std::vector<std::int64_t> record_all(LatencyHistogram& h,
                                     const std::vector<std::int64_t>& ns) {
  for (const auto v : ns) h.record_ns(v);
  return ns;
}

TEST(LatencyHistogram, EmptyBehaviour) {
  // No samples ⇒ no order statistics. Every path returns the NaN
  // sentinel — 0.0 is a legal latency and must never stand in for
  // "nothing was measured" (a fully-shed gauntlet window would
  // otherwise report a perfect 0 ns p99).
  const LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0);
  for (const double p : {0.0, 50.0, 99.0, 100.0})
    EXPECT_TRUE(std::isnan(h.percentile(p))) << "p=" << p;
  EXPECT_TRUE(std::isnan(h.min_s()));
  EXPECT_TRUE(std::isnan(h.max_s()));
  EXPECT_TRUE(std::isnan(h.mean_s()));
  EXPECT_EQ(h.total_s(), 0.0);  // a sum over nothing is still 0
}

TEST(LatencyHistogram, MergedEmptyStaysSentinel) {
  // Merging empties in any combination must not manufacture samples:
  // the merged histogram keeps the sentinel on every stat path.
  LatencyHistogram a, b, c;
  a.merge(b);
  b.merge(c);
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(std::isnan(a.percentile(99)));
  EXPECT_TRUE(std::isnan(a.min_s()));
  EXPECT_TRUE(std::isnan(a.max_s()));
  EXPECT_TRUE(std::isnan(a.mean_s()));
  // ...and merging an empty into a live histogram must not disturb it.
  LatencyHistogram live;
  live.record_ns(5000);
  live.merge(a);
  EXPECT_DOUBLE_EQ(live.min_s(), 5000e-9);
  EXPECT_FALSE(std::isnan(live.percentile(99)));
}

TEST(LatencyHistogram, SingleSample) {
  LatencyHistogram h;
  h.record_ns(1234567);
  EXPECT_EQ(h.count(), 1);
  // Min and max are tracked exactly regardless of bucketing.
  EXPECT_DOUBLE_EQ(h.min_s(), 1234567e-9);
  EXPECT_DOUBLE_EQ(h.max_s(), 1234567e-9);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1234567e-9);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1234567e-9);
  EXPECT_NEAR(h.percentile(50), 1234567e-9,
              LatencyHistogram::kMaxRelativeError * 1234567e-9);
}

TEST(LatencyHistogram, NegativeDurationsClampToZero) {
  LatencyHistogram h;
  h.record_ns(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min_s(), 0.0);
  EXPECT_EQ(h.max_s(), 0.0);
}

TEST(LatencyHistogram, ExactBelowPrecisionThreshold) {
  // Every value below kPrecisionBuckets ns has its own bucket: the
  // percentile must be *exact*, not just within the relative bound.
  LatencyHistogram h;
  std::vector<std::int64_t> samples;
  for (std::int64_t v = 0; v < LatencyHistogram::kPrecisionBuckets; ++v)
    for (int repeat = 0; repeat <= v % 3; ++repeat) samples.push_back(v);
  record_all(h, samples);
  std::vector<std::int64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {1.0, 25.0, 50.0, 75.0, 99.0})
    EXPECT_DOUBLE_EQ(h.percentile(p), exact_percentile_s(sorted, p))
        << "p=" << p;
}

TEST(LatencyHistogram, UniformDistribution) {
  Rng rng(1);
  LatencyHistogram h;
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(static_cast<std::int64_t>(rng.uniform(0.0, 5e7)));
  record_all(h, samples);
  expect_percentiles_close(h, samples);
}

TEST(LatencyHistogram, LogNormalDistribution) {
  // Heavy-tailed: the shape serving latencies actually take.
  Rng rng(2);
  LatencyHistogram h;
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(
        static_cast<std::int64_t>(std::exp(rng.normal(12.0, 2.5))));
  record_all(h, samples);
  expect_percentiles_close(h, samples);
}

TEST(LatencyHistogram, BimodalWithHugeOutliers) {
  // Adversarial: two tight modes eight orders of magnitude apart plus
  // sentinel extremes — exercises the widest buckets.
  Rng rng(3);
  LatencyHistogram h;
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(100 + static_cast<std::int64_t>(rng.uniform(0.0, 20.0)));
    samples.push_back(static_cast<std::int64_t>(1e10) +
                      static_cast<std::int64_t>(rng.uniform(0.0, 1e8)));
  }
  samples.push_back(0);
  samples.push_back(std::int64_t{1} << 55);
  record_all(h, samples);
  expect_percentiles_close(h, samples);
}

TEST(LatencyHistogram, ConstantValue) {
  // Degenerate distribution: all mass in one bucket. Percentiles must
  // come back clamped to [min, max] — i.e. exactly the value.
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record_ns(777777);
  for (const double p : {0.0, 10.0, 50.0, 99.9, 100.0})
    EXPECT_DOUBLE_EQ(h.percentile(p), 777777e-9) << "p=" << p;
}

TEST(LatencyHistogram, PowersOfTwoBucketBoundaries) {
  // Values at and around every power of two probe bucket-edge math.
  LatencyHistogram h;
  std::vector<std::int64_t> samples;
  for (int bit = 0; bit < 62; ++bit) {
    const std::int64_t v = std::int64_t{1} << bit;
    samples.push_back(v - 1);
    samples.push_back(v);
    samples.push_back(v + 1);
  }
  record_all(h, samples);
  expect_percentiles_close(h, samples);
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(samples.size()));
}

TEST(LatencyHistogram, MeanAndTotalAreExact) {
  // Sums are kept as exact integers, not bucket approximations.
  LatencyHistogram h;
  std::int64_t total = 0;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.uniform(0.0, 1e9));
    h.record_ns(v);
    total += v;
  }
  EXPECT_DOUBLE_EQ(h.total_s(), static_cast<double>(total) * 1e-9);
  EXPECT_DOUBLE_EQ(h.mean_s(), static_cast<double>(total) * 1e-9 / 1000.0);
}

TEST(LatencyHistogram, RecordSecondsMatchesNanoseconds) {
  LatencyHistogram a, b;
  a.record_s(0.0015);
  b.record_ns(1500000);
  EXPECT_EQ(a, b);
}

TEST(LatencyHistogram, MergeEqualsSingleHistogram) {
  // Splitting a stream across k histograms and merging must be
  // bitwise-identical to recording everything into one.
  Rng rng(5);
  LatencyHistogram whole;
  LatencyHistogram parts[4];
  for (int i = 0; i < 10000; ++i) {
    const auto v =
        static_cast<std::int64_t>(std::exp(rng.normal(10.0, 3.0)));
    whole.record_ns(v);
    parts[i % 4].record_ns(v);
  }
  LatencyHistogram merged;
  for (const auto& part : parts) merged.merge(part);
  EXPECT_EQ(merged, whole);
}

TEST(LatencyHistogram, MergeIsCommutativeAndAssociative) {
  Rng rng(6);
  LatencyHistogram a, b, c;
  for (int i = 0; i < 3000; ++i) {
    a.record_ns(static_cast<std::int64_t>(rng.uniform(0.0, 1e6)));
    b.record_ns(static_cast<std::int64_t>(std::exp(rng.normal(14.0, 2.0))));
    if (i % 7 == 0) c.record_ns(static_cast<std::int64_t>(1e12));
  }
  // (a + b) + c
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ab_c = ab;
  ab_c.merge(c);
  // a + (b + c)
  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  // (c + b) + a
  LatencyHistogram cb = c;
  cb.merge(b);
  LatencyHistogram cb_a = cb;
  cb_a.merge(a);
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, cb_a);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram h, empty;
  h.record_ns(42);
  h.record_ns(999999);
  const LatencyHistogram before = h;
  h.merge(empty);
  EXPECT_EQ(h, before);
  LatencyHistogram other;
  other.merge(before);
  EXPECT_EQ(other, before);
}

TEST(LatencyHistogram, CrossThreadMergeMatchesSerialReference) {
  // The server's usage pattern: each thread records into its own
  // histogram, the aggregator merges. The merged result must equal a
  // serial recording of the union, in any merge order.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<std::int64_t>> streams(kThreads);
  Rng seeder(7);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng = seeder.fork();
    for (int i = 0; i < kPerThread; ++i)
      streams[t].push_back(
          static_cast<std::int64_t>(std::exp(rng.normal(11.0, 2.0))));
  }

  std::vector<LatencyHistogram> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { record_all(per_thread[t], streams[t]); });
  for (auto& thread : threads) thread.join();

  LatencyHistogram serial;
  std::vector<std::int64_t> all;
  for (const auto& stream : streams)
    for (const auto v : record_all(serial, stream)) all.push_back(v);

  LatencyHistogram forward, reverse;
  for (int t = 0; t < kThreads; ++t) forward.merge(per_thread[t]);
  for (int t = kThreads - 1; t >= 0; --t) reverse.merge(per_thread[t]);
  EXPECT_EQ(forward, serial);
  EXPECT_EQ(reverse, serial);
  expect_percentiles_close(forward, all);
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record_ns(123456);
  h.reset();
  EXPECT_EQ(h, LatencyHistogram{});
  EXPECT_TRUE(h.empty());
}

TEST(LatencyHistogram, SummaryIsHumanReadable) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record_ns(i * 1000000);
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=100"), std::string::npos) << s;
  EXPECT_NE(s.find("p99"), std::string::npos) << s;
}

}  // namespace
