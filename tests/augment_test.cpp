// Data augmentation: flip/crop/brightness semantics and determinism.

#include <gtest/gtest.h>

#include <algorithm>

#include "data/augment.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace dlbench::data {
namespace {

double tensor_sum(const Batch& batch) {
  double acc = 0;
  for (float v : batch.images.data()) acc += v;
  return acc;
}

Batch make_batch(std::int64_t n = 4) {
  MnistOptions opt;
  opt.train_samples = n;
  opt.test_samples = 1;
  DatasetPair pair = synthetic_mnist(opt);
  DataLoader loader(pair.train, n, false, util::Rng(1));
  Batch batch;
  loader.next(batch);
  return batch;
}

TEST(Augment, FlipProbabilityOneMirrorsEveryRow) {
  Batch batch = make_batch();
  Batch original;
  original.images = batch.images.clone();
  original.labels = batch.labels;
  util::Rng rng(2);
  random_horizontal_flip(batch, 1.0, rng);
  const std::int64_t w = 28;
  for (std::int64_t i = 0; i < batch.images.dim(0); ++i) {
    for (std::int64_t y = 0; y < 28; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        ASSERT_EQ(batch.images.at((i * 28 + y) * w + x),
                  original.images.at((i * 28 + y) * w + (w - 1 - x)));
      }
    }
  }
}

TEST(Augment, FlipProbabilityZeroIsIdentity) {
  Batch batch = make_batch();
  Batch original;
  original.images = batch.images.clone();
  util::Rng rng(3);
  random_horizontal_flip(batch, 0.0, rng);
  for (std::int64_t i = 0; i < batch.images.numel(); ++i)
    ASSERT_EQ(batch.images.at(i), original.images.at(i));
}

TEST(Augment, DoubleFlipIsIdentity) {
  Batch batch = make_batch();
  Batch original;
  original.images = batch.images.clone();
  util::Rng rng(4);
  random_horizontal_flip(batch, 1.0, rng);
  random_horizontal_flip(batch, 1.0, rng);
  for (std::int64_t i = 0; i < batch.images.numel(); ++i)
    ASSERT_EQ(batch.images.at(i), original.images.at(i));
}

TEST(Augment, CropPreservesShapeAndMassApproximately) {
  Batch batch = make_batch();
  const auto shape_before = batch.images.shape();
  const double sum_before = tensor_sum(batch);
  util::Rng rng(5);
  random_crop(batch, 2, rng);
  EXPECT_EQ(batch.images.shape(), shape_before);
  // A 2-pixel crop of a centered 20x20 glyph keeps most stroke mass.
  EXPECT_GT(tensor_sum(batch), sum_before * 0.5);
}

TEST(Augment, CropZeroPadIsIdentity) {
  Batch batch = make_batch();
  Batch original;
  original.images = batch.images.clone();
  util::Rng rng(6);
  random_crop(batch, 0, rng);
  for (std::int64_t i = 0; i < batch.images.numel(); ++i)
    ASSERT_EQ(batch.images.at(i), original.images.at(i));
}

TEST(Augment, BrightnessScalesWithinBounds) {
  Batch batch = make_batch();
  Batch original;
  original.images = batch.images.clone();
  util::Rng rng(7);
  random_brightness(batch, 0.3, rng);
  const std::int64_t sample = batch.images.numel() / batch.images.dim(0);
  for (std::int64_t i = 0; i < batch.images.dim(0); ++i) {
    // Per-sample uniform scale: ratio is constant across the sample.
    float ratio = 0.f;
    for (std::int64_t k = 0; k < sample; ++k) {
      const float orig = original.images.at(i * sample + k);
      if (orig == 0.f) continue;
      const float r = batch.images.at(i * sample + k) / orig;
      if (ratio == 0.f) ratio = r;
      ASSERT_NEAR(r, ratio, 1e-4f);
    }
    EXPECT_GE(ratio, 0.7f - 1e-4f);
    EXPECT_LE(ratio, 1.3f + 1e-4f);
  }
}

TEST(Augment, PolicyComposesAndIsDeterministic) {
  AugmentPolicy policy = AugmentPolicy::tf_cifar();
  EXPECT_TRUE(policy.enabled());

  Batch a = make_batch();
  Batch b;
  b.images = a.images.clone();
  b.labels = a.labels;
  util::Rng r1(8), r2(8);
  policy.apply(a, r1);
  policy.apply(b, r2);
  for (std::int64_t i = 0; i < a.images.numel(); ++i)
    ASSERT_EQ(a.images.at(i), b.images.at(i));
}

TEST(Augment, DisabledPolicyIsIdentity) {
  AugmentPolicy policy;
  EXPECT_FALSE(policy.enabled());
  Batch batch = make_batch();
  Batch original;
  original.images = batch.images.clone();
  util::Rng rng(9);
  policy.apply(batch, rng);
  for (std::int64_t i = 0; i < batch.images.numel(); ++i)
    ASSERT_EQ(batch.images.at(i), original.images.at(i));
}

TEST(Augment, InvalidArgumentsThrow) {
  Batch batch = make_batch();
  util::Rng rng(10);
  EXPECT_THROW(random_horizontal_flip(batch, 1.5, rng), dlbench::Error);
  EXPECT_THROW(random_crop(batch, -1, rng), dlbench::Error);
  EXPECT_THROW(random_brightness(batch, 1.5, rng), dlbench::Error);
}

}  // namespace
}  // namespace dlbench::data
