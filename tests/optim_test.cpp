// Optimizer tests: SGD/momentum/weight-decay semantics, Adam bias
// correction, lr schedules (including Caffe's two-phase CIFAR-10 one).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "optim/optimizer.hpp"
#include "util/error.hpp"

namespace dlbench::optim {
namespace {

using runtime::Device;
using tensor::Shape;
using tensor::Tensor;

TEST(LrSchedule, FixedRate) {
  LrSchedule s(0.05);
  EXPECT_DOUBLE_EQ(s.rate(0), 0.05);
  EXPECT_DOUBLE_EQ(s.rate(100000), 0.05);
  EXPECT_DOUBLE_EQ(s.base(), 0.05);
}

TEST(LrSchedule, TwoPhaseCaffeCifar) {
  // Caffe CIFAR-10: 0.001 for the first 80% of steps, then 0.0001.
  LrSchedule s(0.001, {4000}, {0.0001});
  EXPECT_DOUBLE_EQ(s.rate(0), 0.001);
  EXPECT_DOUBLE_EQ(s.rate(3999), 0.001);
  EXPECT_DOUBLE_EQ(s.rate(4000), 0.0001);
  EXPECT_DOUBLE_EQ(s.rate(999999), 0.0001);
}

TEST(LrSchedule, MultistepMonotoneBoundaries) {
  LrSchedule s(1.0, {10, 20}, {0.1, 0.01});
  EXPECT_DOUBLE_EQ(s.rate(15), 0.1);
  EXPECT_DOUBLE_EQ(s.rate(25), 0.01);
  EXPECT_THROW(LrSchedule(1.0, {20, 10}, {0.1, 0.01}), dlbench::Error);
  EXPECT_THROW(LrSchedule(1.0, {10}, {0.1, 0.01}), dlbench::Error);
  EXPECT_THROW(LrSchedule(-1.0), dlbench::Error);
}

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Tensor w(Shape({2}), std::vector<float>{1.f, -1.f});
  Tensor g(Shape({2}), std::vector<float>{0.5f, -0.5f});
  Sgd sgd(LrSchedule(0.1));
  sgd.step({&w}, {&g}, 0, Device::cpu());
  EXPECT_FLOAT_EQ(w.at(0), 0.95f);
  EXPECT_FLOAT_EQ(w.at(1), -0.95f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Tensor w(Shape({1}), std::vector<float>{1.f});
  Tensor g(Shape({1}), std::vector<float>{0.f});
  Sgd sgd(LrSchedule(0.1), 0.0, /*weight_decay=*/0.5);
  sgd.step({&w}, {&g}, 0, Device::cpu());
  EXPECT_FLOAT_EQ(w.at(0), 1.f - 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Tensor w(Shape({1}), std::vector<float>{0.f});
  Tensor g(Shape({1}), std::vector<float>{1.f});
  Sgd sgd(LrSchedule(1.0), /*momentum=*/0.9);
  sgd.step({&w}, {&g}, 0, Device::cpu());
  EXPECT_FLOAT_EQ(w.at(0), -1.f);  // v = 1
  sgd.step({&w}, {&g}, 1, Device::cpu());
  EXPECT_FLOAT_EQ(w.at(0), -1.f - 1.9f);  // v = 0.9 + 1
}

TEST(Sgd, RejectsBadHyperparameters) {
  EXPECT_THROW(Sgd(LrSchedule(0.1), -0.1), dlbench::Error);
  EXPECT_THROW(Sgd(LrSchedule(0.1), 1.0), dlbench::Error);
  EXPECT_THROW(Sgd(LrSchedule(0.1), 0.0, -1.0), dlbench::Error);
}

TEST(Sgd, ShapeMismatchThrows) {
  Tensor w(Shape({2}));
  Tensor g(Shape({3}));
  Sgd sgd(LrSchedule(0.1));
  EXPECT_THROW(sgd.step({&w}, {&g}, 0, Device::cpu()), dlbench::Error);
  EXPECT_THROW(sgd.step({&w}, {}, 0, Device::cpu()), dlbench::Error);
}

TEST(Adam, FirstStepIsLrSizedRegardlessOfGradScale) {
  // With bias correction, the first Adam update is ~lr * sign(g).
  for (float scale : {0.001f, 1.f, 1000.f}) {
    Tensor w(Shape({1}), std::vector<float>{0.f});
    Tensor g(Shape({1}), std::vector<float>{scale});
    Adam adam(LrSchedule(0.01));
    adam.step({&w}, {&g}, 0, Device::cpu());
    EXPECT_NEAR(w.at(0), -0.01f, 1e-4f) << "scale " << scale;
  }
}

TEST(Adam, ConvergesOnQuadraticFasterThanItDiverges) {
  // Minimize f(w) = (w - 3)^2 with gradients 2(w - 3).
  Tensor w(Shape({1}), std::vector<float>{0.f});
  Adam adam(LrSchedule(0.1));
  for (int step = 0; step < 300; ++step) {
    Tensor g(Shape({1}), std::vector<float>{2.f * (w.at(0) - 3.f)});
    adam.step({&w}, {&g}, step, Device::cpu());
  }
  EXPECT_NEAR(w.at(0), 3.f, 0.05f);
}

TEST(Adam, RejectsBadHyperparameters) {
  EXPECT_THROW(Adam(LrSchedule(0.1), 1.0), dlbench::Error);
  EXPECT_THROW(Adam(LrSchedule(0.1), 0.9, 1.0), dlbench::Error);
  EXPECT_THROW(Adam(LrSchedule(0.1), 0.9, 0.999, 0.0), dlbench::Error);
}

TEST(Optim, RebindingToDifferentModelThrows) {
  Tensor w1(Shape({2})), g1(Shape({2}));
  Tensor w2(Shape({3})), g2(Shape({3}));
  Sgd sgd(LrSchedule(0.1), 0.9);
  sgd.step({&w1}, {&g1}, 0, Device::cpu());
  EXPECT_THROW(sgd.step({&w1, &w2}, {&g1, &g2}, 1, Device::cpu()),
               dlbench::Error);
}

TEST(Optim, SgdConvergesOnLeastSquares) {
  // w* = argmin ||Xw - y||^2 on a tiny fixed problem.
  util::Rng rng(1);
  const int n = 32, d = 4;
  Tensor X = Tensor::randn(Shape({n, d}), rng);
  std::vector<float> w_true = {1.f, -2.f, 0.5f, 3.f};
  std::vector<float> y(n);
  for (int i = 0; i < n; ++i) {
    float acc = 0;
    for (int j = 0; j < d; ++j) acc += X.at(i * d + j) * w_true[j];
    y[static_cast<std::size_t>(i)] = acc;
  }
  Tensor w(Shape({d}));
  Sgd sgd(LrSchedule(0.05), 0.9);
  for (int step = 0; step < 400; ++step) {
    Tensor grad(Shape({d}));
    for (int i = 0; i < n; ++i) {
      float pred = 0;
      for (int j = 0; j < d; ++j) pred += X.at(i * d + j) * w.at(j);
      const float err = pred - y[static_cast<std::size_t>(i)];
      for (int j = 0; j < d; ++j)
        grad.data()[j] += 2.f * err * X.at(i * d + j) / n;
    }
    sgd.step({&w}, {&grad}, step, Device::cpu());
  }
  for (int j = 0; j < d; ++j) EXPECT_NEAR(w.at(j), w_true[j], 0.02f);
}

TEST(Optim, ParallelDeviceMatchesSerial) {
  util::Rng rng(2);
  Tensor w1 = Tensor::randn(Shape({1000}), rng);
  Tensor w2 = w1.clone();
  Tensor g = Tensor::randn(Shape({1000}), rng);
  Sgd a(LrSchedule(0.01), 0.9, 0.001);
  Sgd b(LrSchedule(0.01), 0.9, 0.001);
  for (int step = 0; step < 5; ++step) {
    a.step({&w1}, {&g}, step, Device::cpu());
    b.step({&w2}, {&g}, step, Device::parallel(4));
  }
  for (std::int64_t i = 0; i < w1.numel(); ++i)
    ASSERT_EQ(w1.at(i), w2.at(i));
}


TEST(NesterovSgd, FirstStepAppliesLookahead) {
  Tensor w(Shape({1}), std::vector<float>{0.f});
  Tensor g(Shape({1}), std::vector<float>{1.f});
  NesterovSgd opt(LrSchedule(0.1), 0.9);
  opt.step({&w}, {&g}, 0, Device::cpu());
  // v = 1; update = lr * (g + mu * v) = 0.1 * 1.9.
  EXPECT_NEAR(w.at(0), -0.19f, 1e-6f);
}

TEST(NesterovSgd, ConvergesOnQuadratic) {
  Tensor w(Shape({1}), std::vector<float>{0.f});
  NesterovSgd opt(LrSchedule(0.05), 0.9);
  for (int step = 0; step < 200; ++step) {
    Tensor g(Shape({1}), std::vector<float>{2.f * (w.at(0) - 3.f)});
    opt.step({&w}, {&g}, step, Device::cpu());
  }
  EXPECT_NEAR(w.at(0), 3.f, 0.05f);
}

TEST(AdaGrad, RatesShrinkWithAccumulatedGradient) {
  Tensor w(Shape({1}), std::vector<float>{0.f});
  Tensor g(Shape({1}), std::vector<float>{1.f});
  AdaGrad opt(LrSchedule(0.1));
  opt.step({&w}, {&g}, 0, Device::cpu());
  const float first = -w.at(0);  // ~0.1
  const float before = w.at(0);
  opt.step({&w}, {&g}, 1, Device::cpu());
  const float second = before - w.at(0);
  EXPECT_GT(first, second);  // accumulated curvature damps the step
  EXPECT_NEAR(first, 0.1f, 1e-3f);
}

TEST(AdaGrad, RejectsBadEpsilon) {
  EXPECT_THROW(AdaGrad(LrSchedule(0.1), 0.0), dlbench::Error);
}

TEST(RmsProp, StepMagnitudeIsScaleInvariant) {
  for (float scale : {0.01f, 1.f, 100.f}) {
    Tensor w(Shape({1}), std::vector<float>{0.f});
    Tensor g(Shape({1}), std::vector<float>{scale});
    RmsProp opt(LrSchedule(0.01), 0.9);
    // After a few steps the mean-square estimate tracks g^2 and the
    // step approaches lr / sqrt(1 - rho^t)-ish regardless of scale.
    for (int s = 0; s < 5; ++s) opt.step({&w}, {&g}, s, Device::cpu());
    EXPECT_LT(std::fabs(w.at(0)), 0.2f) << scale;
    EXPECT_GT(std::fabs(w.at(0)), 0.01f) << scale;
  }
}

TEST(RmsProp, ConvergesOnQuadratic) {
  Tensor w(Shape({1}), std::vector<float>{0.f});
  RmsProp opt(LrSchedule(0.05), 0.9);
  for (int step = 0; step < 400; ++step) {
    Tensor g(Shape({1}), std::vector<float>{2.f * (w.at(0) - 3.f)});
    opt.step({&w}, {&g}, step, Device::cpu());
  }
  EXPECT_NEAR(w.at(0), 3.f, 0.1f);
}

TEST(RmsProp, RejectsBadDecay) {
  EXPECT_THROW(RmsProp(LrSchedule(0.1), 1.0), dlbench::Error);
}

}  // namespace
}  // namespace dlbench::optim
