// Reporting-layer tests: table rendering details, summaries, CSV.

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "util/table.hpp"

namespace dlbench::core {
namespace {

RunRecord sample_record() {
  RunRecord r;
  r.framework = "Caffe";
  r.setting = "Caffe MNIST";
  r.dataset = "MNIST/train";
  r.device = "GPU";
  r.train.train_time_s = 97.02;
  r.train.steps = 10000;
  r.train.epochs_run = 10.67;
  r.train.final_loss = 0.05;
  r.train.converged = true;
  r.eval.test_time_s = 0.55;
  r.eval.accuracy_pct = 99.13;
  r.eval.correct = 9913;
  r.eval.total = 10000;
  return r;
}

TEST(Report, SummaryContainsEveryKeyMetric) {
  const std::string s = summarize(sample_record());
  EXPECT_NE(s.find("Caffe"), std::string::npos);
  EXPECT_NE(s.find("97.02"), std::string::npos);
  EXPECT_NE(s.find("0.550"), std::string::npos);
  EXPECT_NE(s.find("99.13"), std::string::npos);
  EXPECT_NE(s.find("10000 steps"), std::string::npos);
  EXPECT_EQ(s.find("DID NOT CONVERGE"), std::string::npos);
}

TEST(Report, SummaryFlagsNonConvergence) {
  RunRecord r = sample_record();
  r.train.converged = false;
  EXPECT_NE(summarize(r).find("DID NOT CONVERGE"), std::string::npos);
}

TEST(Report, ResultsTableMarksDivergedRuns) {
  RunRecord good = sample_record();
  RunRecord bad = sample_record();
  bad.train.converged = false;
  util::Table t = results_table("x", {good, bad});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| yes"), std::string::npos);
  EXPECT_NE(s.find("| NO"), std::string::npos);
}

TEST(Report, ComparisonTableFormatsUnits) {
  util::Table t =
      comparison_table("t", {{"train time", 68.51, 52.98, "s"}});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("68.51"), std::string::npos);
  EXPECT_NE(s.find("52.98"), std::string::npos);
  EXPECT_NE(s.find("| s"), std::string::npos);
}

TEST(Report, CsvRoundTripsThroughTable) {
  RunRecord r = sample_record();
  util::Table t = results_table("csv", {r});
  const std::string csv = t.to_csv();
  // Header row + one data row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_NE(csv.find("Caffe,Caffe MNIST"), std::string::npos);
}

TEST(Report, BannerMentionsWorkloadProfile) {
  HarnessOptions opt;
  opt.mnist_train = 1234;
  std::stringstream captured;
  auto* old = std::cout.rdbuf(captured.rdbuf());
  print_banner("Fig X", "description here", opt);
  std::cout.rdbuf(old);
  EXPECT_NE(captured.str().find("Fig X"), std::string::npos);
  EXPECT_NE(captured.str().find("1234"), std::string::npos);
  EXPECT_NE(captured.str().find("description here"), std::string::npos);
}

}  // namespace
}  // namespace dlbench::core
