// Numerical gradient checks: every layer's backward() against central
// finite differences of its forward(), plus both loss paths (the fused
// softmax cross-entropy head and the raw-logit path the adversarial
// module uses), over randomized shapes and seeds.
//
// Method: with a fixed random weighting W, define the scalar objective
//   L(x, params) = sum_i W_i * f(x; params)_i.
// Then dL/dx = backward(W) and dL/dparam lands in the layer's grad
// buffers, while numeric derivatives come from (L(v+eps) - L(v-eps)) /
// (2 eps) on sampled coordinates. Accumulation is in double; forward
// remains float, which bounds the achievable agreement and sets the
// tolerances below.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv_direct.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace dlbench::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

struct CheckTolerance {
  double eps = 1e-2;
  double atol = 2e-3;
  double rtol = 2e-2;
};

// Deterministic sample of up to `cap` distinct flat indices.
std::vector<std::int64_t> sample_indices(std::int64_t numel, std::size_t cap,
                                         util::Rng& rng) {
  std::vector<std::int64_t> all(static_cast<std::size_t>(numel));
  for (std::int64_t i = 0; i < numel; ++i)
    all[static_cast<std::size_t>(i)] = i;
  if (all.size() <= cap) return all;
  // Partial Fisher-Yates: the first `cap` entries become the sample.
  for (std::size_t i = 0; i < cap; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_index(all.size() - i));
    std::swap(all[i], all[j]);
  }
  all.resize(cap);
  return all;
}

// L = sum(W . layer.forward(x)). A fresh dropout rng per call keeps the
// mask identical across the +eps/-eps evaluations.
double objective(Layer& layer, const Tensor& x, const Tensor& weighting,
                 bool training, std::uint64_t mask_seed) {
  util::Rng mask_rng(mask_seed);
  Context ctx;
  ctx.training = training;
  ctx.rng = &mask_rng;
  Tensor y = layer.forward(x, ctx);
  EXPECT_EQ(y.numel(), weighting.numel());
  double acc = 0.0;
  auto yd = y.data();
  auto wd = weighting.data();
  for (std::size_t i = 0; i < yd.size(); ++i)
    acc += static_cast<double>(yd[i]) * static_cast<double>(wd[i]);
  return acc;
}

void expect_grad_near(double analytic, double numeric,
                      const CheckTolerance& tol, const std::string& what,
                      std::int64_t index) {
  const double bound =
      tol.atol + tol.rtol * std::max(std::abs(analytic), std::abs(numeric));
  EXPECT_NEAR(analytic, numeric, bound)
      << what << " gradient mismatch at flat index " << index;
}

// Full check of one layer: dL/dx against backward()'s return and
// dL/dparam against the layer's grad buffers.
void gradcheck_layer(Layer& layer, Tensor& x, std::uint64_t seed,
                     const CheckTolerance& tol, bool training = false) {
  util::Rng rng(seed ^ 0xabcdef);
  const std::uint64_t mask_seed = seed * 7919 + 13;

  // Probe forward once for the output shape, then fix the weighting.
  Tensor probe;
  {
    util::Rng mask_rng(mask_seed);
    Context ctx;
    ctx.training = training;
    ctx.rng = &mask_rng;
    probe = layer.forward(x, ctx);
  }
  Tensor weighting = Tensor::rand_uniform(probe.shape(), rng, -1.f, 1.f);

  // Analytic gradients: one forward (same mask) + one backward.
  layer.zero_grads();
  Tensor dx;
  {
    util::Rng mask_rng(mask_seed);
    Context ctx;
    ctx.training = training;
    ctx.rng = &mask_rng;
    layer.forward(x, ctx);
    dx = layer.backward(weighting, ctx);
  }
  ASSERT_EQ(dx.shape(), x.shape());

  // Input gradient.
  for (const std::int64_t i : sample_indices(x.numel(), 32, rng)) {
    const float saved = x.at(i);
    x.at(i) = saved + static_cast<float>(tol.eps);
    const double up = objective(layer, x, weighting, training, mask_seed);
    x.at(i) = saved - static_cast<float>(tol.eps);
    const double down = objective(layer, x, weighting, training, mask_seed);
    x.at(i) = saved;
    const double numeric = (up - down) / (2.0 * tol.eps);
    expect_grad_near(dx.at(i), numeric, tol, layer.describe() + " input", i);
  }

  // Parameter gradients.
  const auto params = layer.params();
  const auto grads = layer.grads();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& param = *params[p];
    for (const std::int64_t i : sample_indices(param.numel(), 24, rng)) {
      const float saved = param.at(i);
      param.at(i) = saved + static_cast<float>(tol.eps);
      const double up = objective(layer, x, weighting, training, mask_seed);
      param.at(i) = saved - static_cast<float>(tol.eps);
      const double down = objective(layer, x, weighting, training, mask_seed);
      param.at(i) = saved;
      const double numeric = (up - down) / (2.0 * tol.eps);
      expect_grad_near(grads[p]->at(i), numeric, tol,
                       layer.describe() + " param" + std::to_string(p), i);
    }
  }
}

// Inputs with |v| >= margin, so +-eps perturbations cannot cross the
// ReLU kink at zero.
Tensor away_from_zero(Shape shape, util::Rng& rng, float margin) {
  Tensor x = Tensor::randn(std::move(shape), rng);
  for (auto& v : x.data()) {
    if (v >= 0.f && v < margin) v += margin;
    if (v < 0.f && v > -margin) v -= margin;
  }
  return x;
}

// Distinct, evenly spaced values in shuffled order: every pooling
// window has a unique max with a gap far larger than 2*eps, so the
// argmax cannot flip under perturbation.
Tensor distinct_values(Shape shape, util::Rng& rng) {
  Tensor x(std::move(shape));
  auto d = x.data();
  std::vector<float> vals(d.size());
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = (static_cast<float>(i) -
               static_cast<float>(vals.size()) * 0.5f) *
              0.1f;
  for (std::size_t i = vals.size(); i > 1; --i)
    std::swap(vals[i - 1],
              vals[static_cast<std::size_t>(rng.uniform_index(i))]);
  std::copy(vals.begin(), vals.end(), d.begin());
  return x;
}

constexpr std::uint64_t kSeeds[] = {11, 23, 47};

TEST(GradCheckTest, Linear) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    const std::int64_t batch = 2 + static_cast<std::int64_t>(seed % 3);
    const std::int64_t in = 4 + static_cast<std::int64_t>(seed % 5);
    const std::int64_t out = 3 + static_cast<std::int64_t>(seed % 4);
    Linear layer(in, out, tensor::InitKind::kXavierUniform, rng);
    Tensor x = Tensor::randn(Shape({batch, in}), rng);
    gradcheck_layer(layer, x, seed, CheckTolerance{});
  }
}

// Fused dense+activation layer (single matmul_bias_relu kernel call).
// The objective's weighting is fixed, so kink crossings at relu(0) are
// the only hazard; the small dims keep pre-activations generic and the
// seeds are fixed, making any pass deterministic.
TEST(GradCheckTest, LinearReLUFused) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    const std::int64_t batch = 2 + static_cast<std::int64_t>(seed % 3);
    const std::int64_t in = 4 + static_cast<std::int64_t>(seed % 5);
    const std::int64_t out = 3 + static_cast<std::int64_t>(seed % 4);
    LinearReLU layer(in, out, tensor::InitKind::kXavierUniform, rng);
    Tensor x = Tensor::randn(Shape({batch, in}), rng);
    gradcheck_layer(layer, x, seed, CheckTolerance{});
  }
}

// The fused layer against the unfused pair it replaces: identical
// parameters must give bitwise-identical activations and gradients
// (the fused epilogue reorders no float operation; see DESIGN.md §11).
TEST(GradCheckTest, LinearReLUFusedMatchesUnfusedPairBitwise) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    const std::int64_t batch = 3, in = 19, out = 37;  // crosses 6/16 tiles
    LinearReLU fused(in, out, tensor::InitKind::kXavierUniform, rng);
    util::Rng scratch(1);
    Linear linear(in, out, tensor::InitKind::kXavierUniform, scratch);
    ReLU relu_layer;
    // Copy fused params into the unfused Linear.
    auto src = fused.params();
    auto dst = linear.params();
    ASSERT_EQ(src.size(), dst.size());
    for (std::size_t p = 0; p < src.size(); ++p) {
      auto s = src[p]->data();
      auto d = dst[p]->data();
      ASSERT_EQ(s.size(), d.size());
      std::copy(s.begin(), s.end(), d.begin());
    }
    Tensor x = Tensor::randn(Shape({batch, in}), rng);
    Context ctx;
    fused.zero_grads();
    linear.zero_grads();
    Tensor y_fused = fused.forward(x, ctx);
    Tensor y_ref = relu_layer.forward(linear.forward(x, ctx), ctx);
    ASSERT_EQ(y_fused.numel(), y_ref.numel());
    for (std::int64_t i = 0; i < y_fused.numel(); ++i)
      ASSERT_EQ(y_fused.at(i), y_ref.at(i)) << "forward bit at " << i;

    Tensor dy = Tensor::rand_uniform(y_fused.shape(), rng, -1.f, 1.f);
    Tensor dx_fused = fused.backward(dy, ctx);
    Tensor dx_ref = linear.backward(relu_layer.backward(dy, ctx), ctx);
    for (std::int64_t i = 0; i < dx_fused.numel(); ++i)
      ASSERT_EQ(dx_fused.at(i), dx_ref.at(i)) << "dx bit at " << i;
    for (std::size_t p = 0; p < src.size(); ++p) {
      auto g_fused = fused.grads()[p]->data();
      auto g_ref = linear.grads()[p]->data();
      for (std::size_t i = 0; i < g_fused.size(); ++i)
        ASSERT_EQ(g_fused[i], g_ref[i])
            << "param" << p << " grad bit at " << i;
    }
  }
}

TEST(GradCheckTest, Conv2d) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    tensor::ConvGeom g;
    g.in_c = 1 + static_cast<std::int64_t>(seed % 2);
    g.in_h = g.in_w = 6 + static_cast<std::int64_t>(seed % 3);
    g.out_c = 2 + static_cast<std::int64_t>(seed % 2);
    g.kernel = 3;
    g.stride = 1;
    g.pad = static_cast<std::int64_t>(seed % 2);
    Conv2d layer(g, tensor::InitKind::kXavierUniform, rng);
    Tensor x = Tensor::randn(Shape({2, g.in_c, g.in_h, g.in_w}), rng);
    gradcheck_layer(layer, x, seed, CheckTolerance{});
  }
}

TEST(GradCheckTest, Conv2dDirect) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    tensor::ConvGeom g;
    g.in_c = 1 + static_cast<std::int64_t>(seed % 2);
    g.in_h = g.in_w = 5 + static_cast<std::int64_t>(seed % 3);
    g.out_c = 2;
    g.kernel = 3;
    g.stride = 1 + static_cast<std::int64_t>(seed % 2);
    g.pad = 1;
    Conv2dDirect layer(g, tensor::InitKind::kLecunUniform, rng);
    Tensor x = Tensor::randn(Shape({2, g.in_c, g.in_h, g.in_w}), rng);
    gradcheck_layer(layer, x, seed, CheckTolerance{});
  }
}

TEST(GradCheckTest, MaxPool2d) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    tensor::PoolGeom g;
    g.channels = 2;
    g.in_h = g.in_w = 6;
    g.window = 2 + static_cast<std::int64_t>(seed % 2);
    g.stride = 2;
    g.ceil_mode = seed % 2 == 1;
    MaxPool2d layer(g);
    Tensor x = distinct_values(Shape({2, g.channels, g.in_h, g.in_w}), rng);
    // The max gap between distinct inputs is 0.1; eps stays well below
    // half of it so windows never change winners.
    CheckTolerance tol;
    tol.eps = 1e-3;
    gradcheck_layer(layer, x, seed, tol);
  }
}

TEST(GradCheckTest, AvgPool2d) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    tensor::PoolGeom g;
    g.channels = 1 + static_cast<std::int64_t>(seed % 3);
    g.in_h = g.in_w = 6;
    g.window = 3;
    g.stride = 2 + static_cast<std::int64_t>(seed % 2);
    g.ceil_mode = seed % 2 == 0;
    AvgPool2d layer(g);
    Tensor x = Tensor::randn(Shape({2, g.channels, g.in_h, g.in_w}), rng);
    gradcheck_layer(layer, x, seed, CheckTolerance{});
  }
}

TEST(GradCheckTest, ReLU) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    ReLU layer;
    Tensor x = away_from_zero(Shape({3, 4 + static_cast<std::int64_t>(seed % 4)}),
                              rng, 0.05f);
    gradcheck_layer(layer, x, seed, CheckTolerance{});
  }
}

TEST(GradCheckTest, Tanh) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    Tanh layer;
    Tensor x = Tensor::randn(Shape({2, 5 + static_cast<std::int64_t>(seed % 3)}),
                             rng);
    gradcheck_layer(layer, x, seed, CheckTolerance{});
  }
}

TEST(GradCheckTest, DropoutTraining) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    Dropout layer(0.4f);
    // Keep inputs away from zero so a surviving unit's gradient is
    // unambiguous (the mask itself is held fixed via the mask seed).
    Tensor x = away_from_zero(Shape({4, 6}), rng, 0.05f);
    gradcheck_layer(layer, x, seed, CheckTolerance{}, /*training=*/true);
  }
}

TEST(GradCheckTest, DropoutEvalIsIdentity) {
  util::Rng rng(3);
  Dropout layer(0.5f);
  Tensor x = Tensor::randn(Shape({3, 4}), rng);
  gradcheck_layer(layer, x, 3, CheckTolerance{}, /*training=*/false);
}

TEST(GradCheckTest, LocalResponseNorm) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    LocalResponseNorm layer(/*depth_radius=*/2, /*bias=*/1.f,
                            /*alpha=*/0.05f, /*beta=*/0.75f);
    Tensor x = Tensor::randn(Shape({2, 5, 3, 3}), rng);
    gradcheck_layer(layer, x, seed, CheckTolerance{});
  }
}

TEST(GradCheckTest, Flatten) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    Flatten layer;
    Tensor x = Tensor::randn(Shape({2, 3, 4, 4}), rng);
    gradcheck_layer(layer, x, seed, CheckTolerance{});
  }
}

// Loss 1 — the fused softmax cross-entropy head: the analytic seed
// (probs - onehot) / N against numeric d(mean CE)/d(logits).
TEST(GradCheckTest, SoftmaxCrossEntropyLogitGradient) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    const std::int64_t n = 3 + static_cast<std::int64_t>(seed % 3);
    const std::int64_t classes = 4 + static_cast<std::int64_t>(seed % 4);
    Tensor logits = Tensor::randn(Shape({n, classes}), rng, 0.f, 2.f);
    std::vector<std::int64_t> labels;
    for (std::int64_t i = 0; i < n; ++i)
      labels.push_back(
          static_cast<std::int64_t>(rng.uniform_index(
              static_cast<std::size_t>(classes))));

    const Device dev = Device::cpu();
    Tensor probs = tensor::softmax_rows(logits, dev);
    Tensor analytic = tensor::softmax_cross_entropy_backward(probs, labels,
                                                             dev);
    const double eps = 1e-2;
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
      const float saved = logits.at(i);
      logits.at(i) = saved + static_cast<float>(eps);
      const double up = tensor::cross_entropy_mean(
          tensor::softmax_rows(logits, dev), labels);
      logits.at(i) = saved - static_cast<float>(eps);
      const double down = tensor::cross_entropy_mean(
          tensor::softmax_rows(logits, dev), labels);
      logits.at(i) = saved;
      const double numeric = (up - down) / (2.0 * eps);
      expect_grad_near(analytic.at(i), numeric, CheckTolerance{},
                       "softmax-ce logits", i);
    }
  }
}

Sequential small_model(util::Rng& rng) {
  Sequential model;
  tensor::ConvGeom g;
  g.in_c = 1;
  g.in_h = g.in_w = 6;
  g.out_c = 2;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 0;
  model.add(std::make_unique<Conv2d>(g, tensor::InitKind::kXavierUniform,
                                     rng));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Linear>(2 * 4 * 4, 3,
                                     tensor::InitKind::kXavierUniform, rng));
  return model;
}

// Loss 1, end to end: dL/dinput through Sequential::forward_loss +
// backward for a conv/tanh/linear stack.
TEST(GradCheckTest, SequentialLossInputGradient) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    Sequential model = small_model(rng);
    Tensor x = Tensor::randn(Shape({2, 1, 6, 6}), rng);
    const std::vector<std::int64_t> labels = {
        static_cast<std::int64_t>(seed % 3),
        static_cast<std::int64_t>((seed + 1) % 3)};
    Context ctx;

    model.zero_grads();
    LossResult loss = model.forward_loss(x, labels, ctx);
    Tensor dx = model.backward(loss, labels, ctx);

    util::Rng pick(seed);
    const double eps = 1e-2;
    for (const std::int64_t i : sample_indices(x.numel(), 24, pick)) {
      const float saved = x.at(i);
      x.at(i) = saved + static_cast<float>(eps);
      const double up = model.forward_loss(x, labels, ctx).loss;
      x.at(i) = saved - static_cast<float>(eps);
      const double down = model.forward_loss(x, labels, ctx).loss;
      x.at(i) = saved;
      const double numeric = (up - down) / (2.0 * eps);
      expect_grad_near(dx.at(i), numeric, CheckTolerance{},
                       "sequential loss input", i);
    }
  }
}

// Loss 2 — the raw-logit path (backward_from_logits), which FGSM/JSMA
// differentiate: objective = one selected logit.
TEST(GradCheckTest, LogitPathInputGradient) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    Sequential model = small_model(rng);
    Tensor x = Tensor::randn(Shape({1, 1, 6, 6}), rng);
    const std::int64_t target = static_cast<std::int64_t>(seed % 3);
    Context ctx;

    auto logit = [&](Tensor& input) {
      Tensor logits = model.forward(input, ctx);
      return static_cast<double>(logits.at(target));
    };

    model.zero_grads();
    Tensor logits = model.forward(x, ctx);
    Tensor dlogits(logits.shape());
    dlogits.at(target) = 1.f;
    Tensor dx = model.backward_from_logits(dlogits, ctx);

    util::Rng pick(seed + 99);
    const double eps = 1e-2;
    for (const std::int64_t i : sample_indices(x.numel(), 24, pick)) {
      const float saved = x.at(i);
      x.at(i) = saved + static_cast<float>(eps);
      const double up = logit(x);
      x.at(i) = saved - static_cast<float>(eps);
      const double down = logit(x);
      x.at(i) = saved;
      const double numeric = (up - down) / (2.0 * eps);
      expect_grad_near(dx.at(i), numeric, CheckTolerance{}, "logit path", i);
    }
  }
}

}  // namespace
}  // namespace dlbench::nn
