// NetworkSpec + registry structure tests: the six default networks must
// materialize with exactly the layer dimensions printed in the paper's
// Tables IV and V.

#include <gtest/gtest.h>

#include "frameworks/registry.hpp"
#include "nn/conv_direct.hpp"
#include "nn/layers.hpp"
#include "nn/network_spec.hpp"
#include "util/error.hpp"

namespace dlbench::nn {
namespace {

using frameworks::DatasetId;
using frameworks::FrameworkKind;
using tensor::Shape;
using tensor::Tensor;

Context cpu_ctx() {
  Context ctx;
  ctx.device = runtime::Device::cpu();
  return ctx;
}

// Forward a batch through a freshly built spec and return the logits
// shape — implicitly validates every intermediate dimension.
Shape logits_shape(const NetworkSpec& spec, std::int64_t batch = 2) {
  util::Rng rng(1);
  Sequential model = build_model(spec, rng);
  Context ctx = cpu_ctx();
  util::Rng xr(2);
  Tensor x = Tensor::randn(
      Shape({batch, spec.input_channels, spec.input_height,
             spec.input_width}),
      xr, 0.5f, 0.2f);
  return model.forward(x, ctx).shape();
}

TEST(Registry, AllSixDefaultSpecsBuildAndClassify) {
  for (FrameworkKind fw : frameworks::kAllFrameworks) {
    for (DatasetId ds : frameworks::kAllDatasets) {
      NetworkSpec spec = frameworks::default_network_spec(fw, ds);
      EXPECT_EQ(logits_shape(spec), Shape({2, 10})) << spec.name;
    }
  }
}

// Table IV: first fc layer input dims — TF 7x7x64=3136->1024,
// Caffe 4x4x50=800->500, Torch 3x3x64->200.
TEST(Registry, MnistFcDimensionsMatchTableIV) {
  struct Case {
    FrameworkKind fw;
    std::int64_t in, out;
  };
  const Case cases[] = {
      {FrameworkKind::kTensorFlow, 7 * 7 * 64, 1024},
      {FrameworkKind::kCaffe, 4 * 4 * 50, 500},
      {FrameworkKind::kTorch, 3 * 3 * 64, 200},
  };
  for (const auto& c : cases) {
    NetworkSpec spec =
        frameworks::default_network_spec(c.fw, DatasetId::kMnist);
    util::Rng rng(3);
    Sequential model = build_model(spec, rng);
    // Find the first Linear layer and check its geometry.
    bool found = false;
    for (std::size_t i = 0; i < model.size(); ++i) {
      auto* fc = dynamic_cast<Linear*>(&model.layer(i));
      if (!fc) continue;
      EXPECT_EQ(fc->in_features(), c.in) << frameworks::to_string(c.fw);
      EXPECT_EQ(fc->out_features(), c.out) << frameworks::to_string(c.fw);
      found = true;
      break;
    }
    EXPECT_TRUE(found);
  }
}

// Table V: TF 7x7x64=3136->384, Caffe 4x4x64=1024->64,
// Torch 5x5x256=6400->128.
TEST(Registry, CifarFcDimensionsMatchTableV) {
  struct Case {
    FrameworkKind fw;
    std::int64_t in, out;
  };
  const Case cases[] = {
      {FrameworkKind::kTensorFlow, 7 * 7 * 64, 384},
      {FrameworkKind::kCaffe, 4 * 4 * 64, 64},
      {FrameworkKind::kTorch, 5 * 5 * 256, 128},
  };
  for (const auto& c : cases) {
    NetworkSpec spec =
        frameworks::default_network_spec(c.fw, DatasetId::kCifar10);
    util::Rng rng(4);
    Sequential model = build_model(spec, rng);
    bool found = false;
    for (std::size_t i = 0; i < model.size(); ++i) {
      auto* fc = dynamic_cast<Linear*>(&model.layer(i));
      if (!fc) continue;
      EXPECT_EQ(fc->in_features(), c.in) << frameworks::to_string(c.fw);
      EXPECT_EQ(fc->out_features(), c.out) << frameworks::to_string(c.fw);
      found = true;
      break;
    }
    EXPECT_TRUE(found);
  }
}

TEST(Registry, WeightLayerCountsMatchPaper) {
  // Paper: MNIST nets are 2 conv + 2 fc everywhere; CIFAR nets are
  // 5-layer for TF/Caffe and 4-layer for Torch.
  for (FrameworkKind fw : frameworks::kAllFrameworks) {
    EXPECT_EQ(frameworks::default_network_spec(fw, DatasetId::kMnist)
                  .num_weight_layers(),
              4);
  }
  EXPECT_EQ(frameworks::default_network_spec(FrameworkKind::kTensorFlow,
                                             DatasetId::kCifar10)
                .num_weight_layers(),
            5);
  EXPECT_EQ(frameworks::default_network_spec(FrameworkKind::kCaffe,
                                             DatasetId::kCifar10)
                .num_weight_layers(),
            5);
  EXPECT_EQ(frameworks::default_network_spec(FrameworkKind::kTorch,
                                             DatasetId::kCifar10)
                .num_weight_layers(),
            4);
}

TEST(Spec, FirstFcWidthReadAndAblate) {
  NetworkSpec spec = frameworks::default_network_spec(
      FrameworkKind::kTensorFlow, DatasetId::kMnist);
  EXPECT_EQ(spec.first_fc_width(), 1024);
  NetworkSpec narrowed = spec.with_first_fc_width(500);
  EXPECT_EQ(narrowed.first_fc_width(), 500);
  // Still builds and classifies.
  EXPECT_EQ(logits_shape(narrowed), Shape({2, 10}));
  EXPECT_THROW(spec.with_first_fc_width(0), dlbench::Error);
}

TEST(Spec, CrossDatasetInputAdaptation) {
  // The paper trains CIFAR-10-tuned nets on MNIST (Fig 3); input
  // geometry adapts and the net still builds.
  NetworkSpec spec = frameworks::default_network_spec(
      FrameworkKind::kTensorFlow, DatasetId::kCifar10);
  spec.input_channels = 1;
  spec.input_height = 28;
  spec.input_width = 28;
  EXPECT_EQ(logits_shape(spec), Shape({2, 10}));
}

TEST(Spec, DescribeLayersGroupsLikeThePaper) {
  NetworkSpec spec = frameworks::default_network_spec(
      FrameworkKind::kTensorFlow, DatasetId::kMnist);
  auto rows = spec.describe_layers();
  ASSERT_EQ(rows.size(), 4u);  // 2 conv + 2 fc rows
  EXPECT_NE(rows[0].find("conv 5x5"), std::string::npos);
  EXPECT_NE(rows[0].find("ReLU"), std::string::npos);
  EXPECT_NE(rows[0].find("MaxPooling(2x2)"), std::string::npos);
  EXPECT_NE(rows[3].find("fc ->10"), std::string::npos);
}

TEST(Spec, EmptySpecThrows) {
  NetworkSpec spec;
  spec.name = "empty";
  util::Rng rng(5);
  EXPECT_THROW(build_model(spec, rng), dlbench::Error);
}

TEST(Spec, ConvAfterFlattenThrows) {
  NetworkSpec spec;
  spec.name = "bad";
  spec.input_channels = 1;
  spec.input_height = 8;
  spec.input_width = 8;
  spec.ops = {LayerSpec::linear(4), LayerSpec::conv(2, 3)};
  util::Rng rng(6);
  EXPECT_THROW(build_model(spec, rng), dlbench::Error);
}

TEST(Spec, NoFcLayerThrows) {
  NetworkSpec spec;
  spec.name = "convonly";
  spec.input_channels = 1;
  spec.input_height = 8;
  spec.input_width = 8;
  spec.ops = {LayerSpec::conv(2, 3)};
  util::Rng rng(7);
  EXPECT_THROW(build_model(spec, rng), dlbench::Error);
}

TEST(Spec, PoolTooLargeThrows) {
  NetworkSpec spec;
  spec.name = "hugepool";
  spec.input_channels = 1;
  spec.input_height = 4;
  spec.input_width = 4;
  spec.ops = {LayerSpec::max_pool(8, 8), LayerSpec::linear(2)};
  util::Rng rng(8);
  EXPECT_THROW(build_model(spec, rng), dlbench::Error);
}

TEST(Spec, DirectConvImplSelectable) {
  NetworkSpec spec = frameworks::default_network_spec(FrameworkKind::kTorch,
                                                      DatasetId::kMnist);
  util::Rng rng(9);
  Sequential model = build_model(spec, rng, ConvImpl::kDirect);
  bool has_direct = false;
  for (std::size_t i = 0; i < model.size(); ++i)
    if (dynamic_cast<Conv2dDirect*>(&model.layer(i))) has_direct = true;
  EXPECT_TRUE(has_direct);
}


TEST(SpecFlops, PositiveAndOrderedByNetSize) {
  // The harness bases its compute-budget step caps on these estimates;
  // they must be positive and track the obvious size ordering.
  const auto tf_cifar = spec_forward_flops(frameworks::default_network_spec(
      FrameworkKind::kTensorFlow, DatasetId::kCifar10));
  const auto caffe_cifar = spec_forward_flops(
      frameworks::default_network_spec(FrameworkKind::kCaffe,
                                       DatasetId::kCifar10));
  const auto caffe_mnist = spec_forward_flops(
      frameworks::default_network_spec(FrameworkKind::kCaffe,
                                       DatasetId::kMnist));
  EXPECT_GT(caffe_mnist, 0);
  // TF's CIFAR net (64-map convs) costs >2x Caffe's quick net per
  // sample (and more per step: batch 128 vs 100).
  EXPECT_GT(tf_cifar, 2 * caffe_cifar);
  // CIFAR nets cost more than MNIST nets for the same framework.
  EXPECT_GT(caffe_cifar, caffe_mnist);
}

TEST(SpecFlops, GrowsWithFcWidth) {
  NetworkSpec spec = frameworks::default_network_spec(
      FrameworkKind::kTensorFlow, DatasetId::kMnist);
  const auto wide = spec_forward_flops(spec);
  const auto narrow = spec_forward_flops(spec.with_first_fc_width(64));
  EXPECT_GT(wide, narrow);
}

TEST(SpecFlops, ConvDominatesConvNets) {
  // For the paper's CNNs, conv MACs dwarf everything else; a version
  // with 1x1-equivalent fc-only ops must be much cheaper.
  NetworkSpec conv_net = frameworks::default_network_spec(
      FrameworkKind::kCaffe, DatasetId::kCifar10);
  NetworkSpec fc_net;
  fc_net.name = "fc-only";
  fc_net.input_channels = 3;
  fc_net.input_height = 32;
  fc_net.input_width = 32;
  fc_net.ops = {LayerSpec::linear(64), LayerSpec::linear(10)};
  EXPECT_GT(spec_forward_flops(conv_net),
            5 * spec_forward_flops(fc_net));
}

}  // namespace
}  // namespace dlbench::nn
