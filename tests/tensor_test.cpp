// Unit + property tests for tensors and elementwise/reduction ops.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "runtime/device.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"

namespace dlbench::tensor {
namespace {

using runtime::Device;

TEST(Shape, BasicAccessors) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, EqualityAndErrors) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
  Shape s({2});
  EXPECT_THROW(s.dim(1), dlbench::Error);
  EXPECT_THROW(Shape({-1}), dlbench::Error);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape({3, 4}));
  for (float v : t.data()) EXPECT_EQ(v, 0.f);
}

TEST(Tensor, FillAndFull) {
  Tensor t = Tensor::full(Shape({5}), 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
  t.fill(-1.f);
  for (float v : t.data()) EXPECT_EQ(v, -1.f);
}

TEST(Tensor, CopyAliasesCloneDoesNot) {
  Tensor a(Shape({4}), 1.f);
  Tensor alias = a;
  Tensor deep = a.clone();
  a.data()[0] = 9.f;
  EXPECT_EQ(alias.at(0), 9.f);
  EXPECT_EQ(deep.at(0), 1.f);
}

TEST(Tensor, ReshapeSharesStorageAndChecksCount) {
  Tensor a(Shape({2, 6}), 3.f);
  Tensor b = a.reshape(Shape({3, 4}));
  b.data()[0] = 7.f;
  EXPECT_EQ(a.at(0), 7.f);
  EXPECT_THROW(a.reshape(Shape({5})), dlbench::Error);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t(Shape({2}));
  EXPECT_THROW(t.at(2), dlbench::Error);
  EXPECT_THROW(t.at(-1), dlbench::Error);
}

TEST(Tensor, HasNonFiniteDetectsNanAndInf) {
  Tensor t(Shape({3}), 1.f);
  EXPECT_FALSE(t.has_non_finite());
  t.data()[1] = std::nanf("");
  EXPECT_TRUE(t.has_non_finite());
  t.data()[1] = INFINITY;
  EXPECT_TRUE(t.has_non_finite());
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  util::Rng r1(5), r2(5);
  Tensor a = Tensor::randn(Shape({100}), r1);
  Tensor b = Tensor::randn(Shape({100}), r2);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(a.at(i), b.at(i));
}

// Parameterized over devices: every op must give identical results on
// the serial and parallel devices.
class OpsOnDevice : public ::testing::TestWithParam<bool> {
 protected:
  Device dev() const {
    return GetParam() ? Device::parallel(4) : Device::cpu();
  }
};

TEST_P(OpsOnDevice, AddSubMul) {
  Tensor a(Shape({2, 3}), 2.f);
  Tensor b(Shape({2, 3}), 3.f);
  EXPECT_EQ(add(a, b, dev()).at(0), 5.f);
  EXPECT_EQ(sub(a, b, dev()).at(0), -1.f);
  EXPECT_EQ(mul(a, b, dev()).at(0), 6.f);
}

TEST_P(OpsOnDevice, InplaceOps) {
  Tensor a(Shape({4}), 1.f);
  Tensor b(Shape({4}), 2.f);
  add_inplace(a, b, dev());
  EXPECT_EQ(a.at(0), 3.f);
  axpy_inplace(a, 0.5f, b, dev());
  EXPECT_EQ(a.at(0), 4.f);
  scale_inplace(a, 2.f, dev());
  EXPECT_EQ(a.at(0), 8.f);
}

TEST_P(OpsOnDevice, ShapeMismatchThrows) {
  Tensor a(Shape({2}));
  Tensor b(Shape({3}));
  EXPECT_THROW(add(a, b, dev()), dlbench::Error);
  EXPECT_THROW(add_inplace(a, b, dev()), dlbench::Error);
}

TEST_P(OpsOnDevice, ReluForwardBackward) {
  Tensor x(Shape({4}), std::vector<float>{-1.f, 0.f, 2.f, -3.f});
  Tensor y = relu(x, dev());
  EXPECT_EQ(y.at(0), 0.f);
  EXPECT_EQ(y.at(2), 2.f);
  Tensor dy(Shape({4}), 1.f);
  Tensor dx = relu_backward(x, dy, dev());
  EXPECT_EQ(dx.at(0), 0.f);
  EXPECT_EQ(dx.at(2), 1.f);
}

TEST_P(OpsOnDevice, TanhMatchesStd) {
  Tensor x(Shape({3}), std::vector<float>{-1.f, 0.f, 0.5f});
  Tensor y = tanh_op(x, dev());
  EXPECT_NEAR(y.at(0), std::tanh(-1.f), 1e-6);
  EXPECT_EQ(y.at(1), 0.f);
  Tensor dy(Shape({3}), 1.f);
  Tensor dx = tanh_backward(y, dy, dev());
  EXPECT_NEAR(dx.at(2), 1.f - y.at(2) * y.at(2), 1e-6);
}

TEST_P(OpsOnDevice, SignMatchesPaperDefinition) {
  Tensor x(Shape({3}), std::vector<float>{-0.5f, 0.f, 3.f});
  Tensor s = sign(x, dev());
  EXPECT_EQ(s.at(0), -1.f);
  EXPECT_EQ(s.at(1), 0.f);
  EXPECT_EQ(s.at(2), 1.f);
}

TEST_P(OpsOnDevice, ClampBounds) {
  Tensor x(Shape({3}), std::vector<float>{-1.f, 0.5f, 2.f});
  Tensor c = clamp(x, 0.f, 1.f, dev());
  EXPECT_EQ(c.at(0), 0.f);
  EXPECT_EQ(c.at(1), 0.5f);
  EXPECT_EQ(c.at(2), 1.f);
  EXPECT_THROW(clamp(x, 1.f, 0.f, dev()), dlbench::Error);
}

TEST_P(OpsOnDevice, SoftmaxRowsSumToOne) {
  util::Rng rng(3);
  Tensor logits = Tensor::randn(Shape({5, 10}), rng, 0.f, 3.f);
  Tensor p = softmax_rows(logits, dev());
  for (std::int64_t r = 0; r < 5; ++r) {
    double sum_row = 0;
    for (std::int64_t c = 0; c < 10; ++c) sum_row += p.at(r * 10 + c);
    EXPECT_NEAR(sum_row, 1.0, 1e-5);
  }
}

TEST_P(OpsOnDevice, SoftmaxIsShiftInvariantAndStable) {
  Tensor big(Shape({1, 3}), std::vector<float>{1000.f, 1001.f, 999.f});
  Tensor p = softmax_rows(big, dev());
  EXPECT_FALSE(p.has_non_finite());
  Tensor small(Shape({1, 3}), std::vector<float>{0.f, 1.f, -1.f});
  Tensor q = softmax_rows(small, dev());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(p.at(i), q.at(i), 1e-5);
}

TEST_P(OpsOnDevice, CrossEntropyGradientMatchesNumeric) {
  util::Rng rng(4);
  Tensor logits = Tensor::randn(Shape({3, 5}), rng);
  std::vector<std::int64_t> labels = {1, 4, 0};
  Tensor probs = softmax_rows(logits, dev());
  Tensor grad = softmax_cross_entropy_backward(probs, labels, dev());

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits.clone();
    Tensor lm = logits.clone();
    lp.data()[i] += eps;
    lm.data()[i] -= eps;
    const double fp = cross_entropy_mean(softmax_rows(lp, dev()), labels);
    const double fm = cross_entropy_mean(softmax_rows(lm, dev()), labels);
    const double numeric = (fp - fm) / (2 * eps);
    EXPECT_NEAR(grad.at(i), numeric, 5e-3) << "at logit " << i;
  }
}

TEST_P(OpsOnDevice, CrossEntropyClampsAtFloatMin) {
  // A fully confident wrong prediction must report the Caffe plateau
  // loss of -log(FLT_MIN) = 87.34 (paper Fig. 5), not inf.
  Tensor probs(Shape({1, 2}), std::vector<float>{1.f, 0.f});
  const double loss = cross_entropy_mean(probs, {1});
  EXPECT_NEAR(loss, 87.336, 0.01);
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, OpsOnDevice, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Parallel" : "Serial";
                         });

TEST(Reductions, SumMeanArgmax) {
  Tensor x(Shape({2, 3}), std::vector<float>{1, 5, 2, 9, 0, 4});
  EXPECT_DOUBLE_EQ(sum(x), 21.0);
  EXPECT_DOUBLE_EQ(mean_of(x), 3.5);
  EXPECT_EQ(argmax_row(x, 0), 1);
  EXPECT_EQ(argmax_row(x, 1), 0);
  auto rows = argmax_rows(x);
  EXPECT_EQ(rows, (std::vector<std::int64_t>{1, 0}));
}

TEST(Reductions, ArgmaxTiesPickFirst) {
  Tensor x(Shape({1, 4}), std::vector<float>{3.f, 3.f, 1.f, 3.f});
  EXPECT_EQ(argmax_row(x, 0), 0);
}

TEST(Init, XavierBoundsDependOnFanIn) {
  util::Rng rng(6);
  Tensor w(Shape({100, 100}));
  initialize(w, InitKind::kXavierUniform, 300, 100, rng);
  const float limit = std::sqrt(3.f / 300.f);
  for (float v : w.data()) {
    EXPECT_LE(std::fabs(v), limit);
  }
}

TEST(Init, TruncatedNormalWithinTwoSigma) {
  util::Rng rng(7);
  Tensor w(Shape({1000}));
  initialize(w, InitKind::kTruncatedNormal, 10, 10, rng);
  for (float v : w.data()) EXPECT_LE(std::fabs(v), 0.2f + 1e-6f);
}

TEST(Init, LecunUniformBounds) {
  util::Rng rng(8);
  Tensor w(Shape({500}));
  initialize(w, InitKind::kLecunUniform, 25, 10, rng);
  for (float v : w.data()) EXPECT_LE(std::fabs(v), 0.2f + 1e-6f);
}

TEST(Init, NamesAreStable) {
  EXPECT_STREQ(init_kind_name(InitKind::kXavierUniform), "xavier");
  EXPECT_STREQ(init_kind_name(InitKind::kTruncatedNormal),
               "truncated_normal");
  EXPECT_STREQ(init_kind_name(InitKind::kLecunUniform), "lecun_uniform");
}

}  // namespace
}  // namespace dlbench::tensor
