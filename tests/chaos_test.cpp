// Serving-path chaos suite: injected replica crashes, stalls, forward
// errors, response corruption and deadline expiry against the
// supervised ModelServer fleet. Every fault decision is keyed on the
// fault plan's seed and stable ordinals (DESIGN.md §13), so the suite
// asserts exact counts where the determinism contract applies and
// recovery invariants (no stranded future, bounded shutdown) elsewhere.

#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "frameworks/predictor.hpp"
#include "runtime/fault.hpp"
#include "runtime/histogram.hpp"
#include "serve/server.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using dlbench::frameworks::DatasetId;
using dlbench::frameworks::FrameworkKind;
using dlbench::frameworks::make_predictor;
using dlbench::frameworks::PredictorConfig;
using dlbench::runtime::fault::FaultPlan;
using dlbench::runtime::fault::FaultScope;
using dlbench::serve::ModelServer;
using dlbench::serve::Prediction;
using dlbench::serve::RequestStatus;
using dlbench::serve::ServerOptions;
using dlbench::serve::ServerStats;
using dlbench::tensor::Shape;
using dlbench::tensor::Tensor;

dlbench::nn::FrozenModel mnist_model() {
  PredictorConfig config;
  config.framework = FrameworkKind::kCaffe;
  config.dataset = DatasetId::kMnist;
  return make_predictor(config);
}

std::vector<Tensor> mnist_samples(int count, std::uint64_t seed = 42) {
  dlbench::util::Rng rng(seed);
  std::vector<Tensor> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    samples.push_back(Tensor::randn(
        dlbench::frameworks::sample_shape(DatasetId::kMnist), rng));
  return samples;
}

ServerOptions chaos_options() {
  ServerOptions opts;
  opts.sample_shape = dlbench::frameworks::sample_shape(DatasetId::kMnist);
  opts.replicas = 2;
  opts.max_batch = 4;
  opts.max_batch_delay_s = 0.001;
  opts.supervise = true;
  opts.heartbeat_s = 0.001;
  return opts;
}

/// Submits `count` requests and collects every prediction. The fixed
/// sequential id set {0..count-1} is what makes id-keyed fault
/// decisions identical run-to-run.
std::vector<Prediction> drive(ModelServer& server,
                              const std::vector<Tensor>& samples,
                              int count) {
  std::vector<std::future<Prediction>> futures;
  futures.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    futures.push_back(
        server.submit(samples[static_cast<std::size_t>(i) % samples.size()]));
  std::vector<Prediction> out;
  out.reserve(futures.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

std::int64_t count_status(const std::vector<Prediction>& preds,
                          RequestStatus status) {
  std::int64_t n = 0;
  for (const auto& p : preds) n += p.status == status ? 1 : 0;
  return n;
}

// ---- crash + restart --------------------------------------------------

TEST(ChaosCrash, SupervisedFleetRestartsAndStrandsNoFuture) {
  FaultPlan plan;
  plan.serve_crash_every = 3;
  plan.serve_crash_max = 4;
  FaultScope scope(plan);

  const auto samples = mnist_samples(8);
  ServerOptions opts = chaos_options();
  ModelServer server(mnist_model(), opts);
  const auto preds = drive(server, samples, 64);

  // Every future resolves OK: dying replicas requeue their in-flight
  // batch and the supervisor restaffs the slot.
  EXPECT_EQ(count_status(preds, RequestStatus::kOk), 64);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.crashes, 4);  // cap reached exactly (determinism)
  EXPECT_EQ(scope.stats().serve_crashes, stats.crashes);
  EXPECT_GE(stats.crash_requeues, 1);
  EXPECT_GE(stats.restarts, 1);
  server.shutdown(true);
  EXPECT_EQ(server.stats().live_replicas, opts.replicas);
}

TEST(ChaosCrash, UnsupervisedFleetDiesAndFailsFastInsteadOfHanging) {
  FaultPlan plan;
  plan.serve_crash_every = 1;  // every batch, unlimited
  FaultScope scope(plan);

  const auto samples = mnist_samples(4);
  ServerOptions opts = chaos_options();
  opts.supervise = false;
  ModelServer server(mnist_model(), opts);

  // Both replicas crash on their first batch. Every outstanding and
  // subsequent request must resolve kError — never hang.
  const auto preds = drive(server, samples, 16);
  EXPECT_EQ(count_status(preds, RequestStatus::kOk), 0);
  EXPECT_EQ(count_status(preds, RequestStatus::kError), 16);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.live_replicas, 0);
  EXPECT_EQ(stats.crashes, opts.replicas);
  EXPECT_EQ(stats.restarts, 0);

  // A fresh submission on the dead fleet also fails immediately.
  EXPECT_EQ(server.predict(samples[0]).status, RequestStatus::kError);
}

// ---- stall watchdog ---------------------------------------------------

TEST(ChaosStall, StalledReplicaIsAbandonedAndReplaced) {
  FaultPlan plan;
  plan.serve_stall_every = 1;
  plan.serve_stall_ms = 500;
  plan.serve_stall_max = 1;
  FaultScope scope(plan);

  const auto samples = mnist_samples(4);
  ServerOptions opts = chaos_options();
  opts.stall_timeout_s = 0.02;  // abandon after 20 ms of a 500 ms stall
  ModelServer server(mnist_model(), opts);
  const auto preds = drive(server, samples, 24);

  EXPECT_EQ(count_status(preds, RequestStatus::kOk), 24);
  const ServerStats stats = server.stats();
  EXPECT_EQ(scope.stats().serve_stalls, 1);
  EXPECT_GE(stats.stalls_replaced, 1);
  EXPECT_EQ(stats.live_replicas, opts.replicas);
}

// ---- deadlines --------------------------------------------------------

TEST(ChaosDeadline, QueuedRequestPastDeadlineIsShedBeforeForward) {
  // One replica, its first batch stalled 100 ms: a request with a 5 ms
  // deadline queued behind it must be shed at dequeue, never forwarded.
  FaultPlan plan;
  plan.serve_stall_every = 1;
  plan.serve_stall_ms = 100;
  plan.serve_stall_max = 1;
  FaultScope scope(plan);

  const auto samples = mnist_samples(2);
  ServerOptions opts = chaos_options();
  opts.replicas = 1;
  opts.max_batch = 1;
  ModelServer server(mnist_model(), opts);

  auto first = server.submit(samples[0]);  // rides the stalled batch
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dlbench::serve::SubmitOptions deadline_opts;
  deadline_opts.deadline_s = 0.005;
  auto second = server.submit(samples[1], deadline_opts);

  EXPECT_EQ(first.get().status, RequestStatus::kOk);
  EXPECT_EQ(second.get().status, RequestStatus::kExpired);
  EXPECT_EQ(server.stats().expired, 1);
}

TEST(ChaosDeadline, InjectedExpiryIsExactAndReproducible) {
  const auto samples = mnist_samples(4);
  auto run = [&]() {
    FaultPlan plan;
    plan.serve_expire_rate = 0.3;
    FaultScope scope(plan);
    ModelServer server(mnist_model(), chaos_options());
    const auto preds = drive(server, samples, 100);
    const std::int64_t expired =
        count_status(preds, RequestStatus::kExpired);
    EXPECT_EQ(expired, scope.stats().serve_expirations);
    EXPECT_EQ(expired, server.stats().expired);
    EXPECT_EQ(count_status(preds, RequestStatus::kOk), 100 - expired);
    return expired;
  };
  const std::int64_t first = run();
  EXPECT_GT(first, 0);
  EXPECT_LT(first, 100);
  EXPECT_EQ(first, run());  // same seed, same id set ⇒ same decisions
}

// ---- retries ----------------------------------------------------------

TEST(ChaosRetry, MarkedRequestsRecoverWithExactlyOneRetry) {
  FaultPlan plan;
  plan.serve_error_rate = 0.3;
  plan.serve_error_attempts = 1;  // attempt 0 fails, attempt 1 succeeds
  FaultScope scope(plan);

  const auto samples = mnist_samples(4);
  ServerOptions opts = chaos_options();
  opts.max_retries = 2;
  ModelServer server(mnist_model(), opts);
  const auto preds = drive(server, samples, 100);

  EXPECT_EQ(count_status(preds, RequestStatus::kOk), 100);
  std::int64_t retried = 0;
  for (const auto& p : preds) retried += p.attempts > 1 ? 1 : 0;
  const ServerStats stats = server.stats();
  EXPECT_GT(retried, 0);
  EXPECT_EQ(stats.retries, retried);
  EXPECT_EQ(stats.retries, scope.stats().serve_errors);
  EXPECT_EQ(stats.errors, 0);
}

TEST(ChaosRetry, ExhaustionFailsWithErrorAfterConfiguredAttempts) {
  FaultPlan plan;
  plan.serve_error_rate = 1.0;
  plan.serve_error_attempts = 10;  // fails attempts 0..9
  FaultScope scope(plan);

  const auto samples = mnist_samples(4);
  ServerOptions opts = chaos_options();
  opts.max_retries = 1;
  ModelServer server(mnist_model(), opts);
  const auto preds = drive(server, samples, 20);

  EXPECT_EQ(count_status(preds, RequestStatus::kError), 20);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.errors, 20);
  EXPECT_EQ(stats.retries, 20);  // exactly one re-dispatch each
}

TEST(ChaosRetry, UnsupervisedServerNeverRetries) {
  FaultPlan plan;
  plan.serve_error_rate = 1.0;
  plan.serve_error_attempts = 1;
  FaultScope scope(plan);

  const auto samples = mnist_samples(4);
  ServerOptions opts = chaos_options();
  opts.supervise = false;
  opts.max_retries = 3;  // ignored without supervision
  ModelServer server(mnist_model(), opts);
  const auto preds = drive(server, samples, 12);

  EXPECT_EQ(count_status(preds, RequestStatus::kError), 12);
  EXPECT_EQ(server.stats().retries, 0);
}

// ---- hedging ----------------------------------------------------------

TEST(ChaosHedge, StragglersAreHedgedAndEveryRequestResolvesOnce) {
  FaultPlan plan;
  plan.serve_stall_every = 1;
  plan.serve_stall_ms = 80;
  plan.serve_stall_max = 1;
  FaultScope scope(plan);

  const auto samples = mnist_samples(8);
  ServerOptions opts = chaos_options();
  opts.hedge_delay_s = 0.005;  // hedge anything in flight > 5 ms
  ModelServer server(mnist_model(), opts);
  const auto preds = drive(server, samples, 32);

  EXPECT_EQ(count_status(preds, RequestStatus::kOk), 32);
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.hedges, 1);  // the stalled batch got hedged
  std::int64_t hedged = 0;
  for (const auto& p : preds) hedged += p.hedged ? 1 : 0;
  EXPECT_GE(hedged, 1);
}

// ---- circuit breaker --------------------------------------------------

TEST(ChaosBreaker, OpensOnFailuresShedsLowPriorityThenCloses) {
  FaultPlan plan;
  plan.serve_error_rate = 1.0;
  plan.serve_error_attempts = 10;
  FaultScope scope(plan);

  const auto samples = mnist_samples(4);
  ServerOptions opts = chaos_options();
  opts.breaker_threshold = 0.5;
  opts.breaker_window = 4;
  opts.breaker_probe_s = 0.05;
  ModelServer server(mnist_model(), opts);

  // Four straight failures fill the window and trip the breaker.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(server.predict(samples[0]).status, RequestStatus::kError);
  ServerStats stats = server.stats();
  EXPECT_GE(stats.breaker_opens, 1);
  EXPECT_TRUE(stats.breaker_open);

  // Bronze-class load is shed while open; silver still flows.
  dlbench::serve::SubmitOptions low;
  low.slo = dlbench::serve::SloClass::kBronze;
  EXPECT_EQ(server.predict(samples[1], low).status, RequestStatus::kShed);
  EXPECT_EQ(server.predict(samples[1]).status, RequestStatus::kError);
  EXPECT_GE(server.stats().shed_breaker, 1);

  // After the probe window the breaker re-closes: the same low-priority
  // request is admitted again (it still fails — the fault is persistent
  // — but it is no longer shed).
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_NE(server.predict(samples[1], low).status, RequestStatus::kShed);
  EXPECT_GE(server.stats().breaker_closes, 1);
}

// ---- response corruption ---------------------------------------------

TEST(ChaosCorruption, CorruptedResponsesAreClientDetectable) {
  FaultPlan plan;
  plan.serve_corrupt_rate = 1.0;
  FaultScope scope(plan);

  const auto samples = mnist_samples(4);
  ModelServer server(mnist_model(), chaos_options());
  const auto preds = drive(server, samples, 12);

  EXPECT_EQ(count_status(preds, RequestStatus::kOk), 12);
  for (const auto& p : preds) {
    double sum = 0.0;
    for (const float v : p.probabilities) sum += v;
    // A doubled softmax row sums to ~2 — the integrity check clients
    // (and the loadgen) use to detect delivered corruption.
    EXPECT_GT(sum, 1.5);
  }
  EXPECT_EQ(server.stats().corrupted, 12);
  EXPECT_EQ(scope.stats().serve_corruptions, 12);
}

// ---- bounded shutdown (regression: stop() under a permanent stall) ----

TEST(ChaosShutdown, ShutdownIsBoundedUnderPermanentlyStalledReplica) {
  FaultPlan plan;
  plan.serve_stall_every = 1;
  plan.serve_stall_ms = 60000;  // effectively forever
  FaultScope scope(plan);

  const auto samples = mnist_samples(4);
  ServerOptions opts = chaos_options();
  opts.replicas = 1;
  opts.shutdown_deadline_s = 0.2;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Prediction>> futures;
  {
    ModelServer server(mnist_model(), opts);
    for (int i = 0; i < 6; ++i) futures.push_back(server.submit(samples[0]));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.shutdown(true);  // must return despite the 60 s stall
  }  // destructor must also return promptly
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 5.0) << "shutdown not bounded by shutdown_deadline_s";

  // No future hangs: everything resolved as served or shut down.
  for (auto& f : futures) {
    const RequestStatus status = f.get().status;
    EXPECT_TRUE(status == RequestStatus::kOk ||
                status == RequestStatus::kShutdown)
        << dlbench::serve::to_string(status);
  }
}

// ---- the determinism contract end-to-end ------------------------------

TEST(ChaosDeterminism, MixedFaultCountsAreIdenticalRunToRun) {
  const auto samples = mnist_samples(8);
  struct Counts {
    std::int64_t expired, retries, corrupted, crashes, ok;
    bool operator==(const Counts& o) const {
      return expired == o.expired && retries == o.retries &&
             corrupted == o.corrupted && crashes == o.crashes && ok == o.ok;
    }
  };
  auto run = [&]() {
    FaultPlan plan;
    plan.serve_crash_every = 2;
    plan.serve_crash_max = 3;
    plan.serve_error_rate = 0.2;
    plan.serve_error_attempts = 1;
    plan.serve_corrupt_rate = 0.15;
    plan.serve_expire_rate = 0.1;
    FaultScope scope(plan);
    ServerOptions opts = chaos_options();
    opts.max_retries = 2;
    ModelServer server(mnist_model(), opts);
    const auto preds = drive(server, samples, 120);
    const ServerStats stats = server.stats();
    return Counts{stats.expired, stats.retries, stats.corrupted,
                  stats.crashes, count_status(preds, RequestStatus::kOk)};
  };
  const Counts a = run();
  const Counts b = run();
  EXPECT_TRUE(a == b) << "fault decisions leaked timing dependence: "
                      << a.expired << "/" << a.retries << "/" << a.corrupted
                      << "/" << a.crashes << "/" << a.ok << " vs "
                      << b.expired << "/" << b.retries << "/" << b.corrupted
                      << "/" << b.crashes << "/" << b.ok;
  EXPECT_EQ(a.crashes, 3);  // cap reached exactly
  EXPECT_GT(a.expired, 0);
  EXPECT_GT(a.retries, 0);
  EXPECT_GT(a.corrupted, 0);
}

// ---- ChaosRecord reporting -------------------------------------------

TEST(ChaosReport, EmptyPercentilesSerializeAsNullNeverGarbage) {
  dlbench::core::ChaosRecord record;
  record.scenario = "smoke";
  // Latencies taken from an *empty* histogram carry the NaN sentinel —
  // JSON must render them as null, and the table as "n/a", never as a
  // number (the pre-sentinel histogram returned garbage like 0 or
  // whatever the last merge left behind).
  dlbench::runtime::LatencyHistogram empty;
  record.latency_p50_s = empty.percentile(50.0);
  record.latency_p99_s = empty.percentile(99.0);
  record.latency_max_s = empty.max_s();
  record.baseline_p99_s = empty.percentile(99.0);
  record.faulted_p99_s = empty.percentile(99.0);
  record.p99_inflation = record.faulted_p99_s / record.baseline_p99_s;
  ASSERT_TRUE(std::isnan(record.latency_p99_s));
  const std::string json = dlbench::core::chaos_record_json(record);
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_NE(json.find("null"), std::string::npos) << json;
  const std::string table =
      dlbench::core::chaos_table("chaos", {record}).to_string();
  EXPECT_EQ(table.find("nan"), std::string::npos) << table;
}

}  // namespace
