// Convolution and pooling kernels: im2col/col2im structure, forward
// against a naive reference, backward against numeric gradients, and
// the ceil/floor pooling arithmetic the paper's nets depend on.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "runtime/device.hpp"
#include "tensor/conv.hpp"
#include "tensor/ops.hpp"
#include "tensor/pool.hpp"
#include "util/rng.hpp"

namespace dlbench::tensor {
namespace {

using runtime::Device;

// Naive direct convolution used as the reference implementation.
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor& b,
                  const ConvGeom& g) {
  const std::int64_t n = x.dim(0), oh = g.out_h(), ow = g.out_w();
  Tensor y({n, g.out_c, oh, ow});
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t oc = 0; oc < g.out_c; ++oc)
      for (std::int64_t y0 = 0; y0 < oh; ++y0)
        for (std::int64_t x0 = 0; x0 < ow; ++x0) {
          double acc = b.at(oc);
          for (std::int64_t ic = 0; ic < g.in_c; ++ic)
            for (std::int64_t ky = 0; ky < g.kernel; ++ky)
              for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
                const std::int64_t iy = y0 * g.stride + ky - g.pad;
                const std::int64_t ix = x0 * g.stride + kx - g.pad;
                if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w)
                  continue;
                acc += static_cast<double>(
                           w.at(oc * g.patch_size() +
                                (ic * g.kernel + ky) * g.kernel + kx)) *
                       x.at(((i * g.in_c + ic) * g.in_h + iy) * g.in_w + ix);
              }
          y.data()[((i * g.out_c + oc) * oh + y0) * ow + x0] =
              static_cast<float>(acc);
        }
  return y;
}

TEST(ConvGeom, OutputArithmetic) {
  ConvGeom g{/*in_c=*/1, /*in_h=*/28, /*in_w=*/28, /*out_c=*/20,
             /*kernel=*/5, /*stride=*/1, /*pad=*/0};
  EXPECT_EQ(g.out_h(), 24);
  EXPECT_EQ(g.patch_size(), 25);
  g.pad = 2;
  EXPECT_EQ(g.out_h(), 28);  // SAME padding
}

TEST(Im2Col, RoundTripThroughCol2ImIsOverlapCount) {
  // col2im(im2col(x)) multiplies each pixel by the number of windows
  // covering it; with kernel 1 that count is 1 → exact roundtrip.
  ConvGeom g{2, 4, 4, 1, /*kernel=*/1, /*stride=*/1, /*pad=*/0};
  util::Rng rng(1);
  Tensor x = Tensor::randn(Shape({1, 2, 4, 4}), rng);
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size() * 16));
  im2col(x.raw(), g, cols.data());
  Tensor back(Shape({1, 2, 4, 4}));
  col2im(cols.data(), g, back.raw());
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_FLOAT_EQ(back.at(i), x.at(i));
}

TEST(Im2Col, ZeroPadsOutOfBounds) {
  ConvGeom g{1, 2, 2, 1, /*kernel=*/3, /*stride=*/1, /*pad=*/1};
  Tensor x(Shape({1, 1, 2, 2}), 1.f);
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size()) *
                          static_cast<std::size_t>(g.out_h() * g.out_w()));
  im2col(x.raw(), g, cols.data());
  // Top-left output's top-left kernel tap reads the (-1,-1) pad → 0.
  EXPECT_EQ(cols[0], 0.f);
}

using ConvParam = std::tuple<int, int, int, int, int, bool>;  // ic,oc,hw,k,pad,par

class ConvShapes : public ::testing::TestWithParam<ConvParam> {
 protected:
  Device dev() const {
    return std::get<5>(GetParam()) ? Device::parallel(4) : Device::cpu();
  }
};

TEST_P(ConvShapes, ForwardMatchesNaive) {
  auto [ic, oc, hw, k, pad, par] = GetParam();
  (void)par;
  ConvGeom g{ic, hw, hw, oc, k, 1, pad};
  if (g.out_h() <= 0) GTEST_SKIP();
  util::Rng rng(static_cast<std::uint64_t>(ic * 100 + oc * 10 + hw));
  Tensor x = Tensor::randn(Shape({3, ic, hw, hw}), rng);
  Tensor w = Tensor::randn(Shape({oc, g.patch_size()}), rng, 0.f, 0.5f);
  Tensor b = Tensor::randn(Shape({oc}), rng);
  Tensor got = conv2d_forward(x, w, b, g, dev());
  Tensor want = naive_conv(x, w, b, g);
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i)
    ASSERT_NEAR(got.at(i), want.at(i), 1e-3f) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvShapes,
    ::testing::Combine(::testing::Values(1, 3), ::testing::Values(2, 6),
                       ::testing::Values(6, 9), ::testing::Values(3, 5),
                       ::testing::Values(0, 2), ::testing::Bool()),
    [](const ::testing::TestParamInfo<ConvParam>& info) {
      return "ic" + std::to_string(std::get<0>(info.param)) + "oc" +
             std::to_string(std::get<1>(info.param)) + "hw" +
             std::to_string(std::get<2>(info.param)) + "k" +
             std::to_string(std::get<3>(info.param)) + "p" +
             std::to_string(std::get<4>(info.param)) +
             (std::get<5>(info.param) ? "Par" : "Ser");
    });

TEST(ConvBackward, GradientsMatchNumeric) {
  ConvGeom g{2, 6, 6, 3, /*kernel=*/3, /*stride=*/1, /*pad=*/1};
  util::Rng rng(11);
  Tensor x = Tensor::randn(Shape({2, 2, 6, 6}), rng);
  Tensor w = Tensor::randn(Shape({3, g.patch_size()}), rng, 0.f, 0.5f);
  Tensor b = Tensor::randn(Shape({3}), rng);
  const Device dev = Device::cpu();

  // Loss = sum(conv(x)); dL/dy = ones.
  Tensor y = conv2d_forward(x, w, b, g, dev);
  Tensor dy(y.shape(), 1.f);
  ConvGrads grads = conv2d_backward(x, w, dy, g, dev);

  const float eps = 1e-2f;
  auto loss_at = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    return sum(conv2d_forward(xx, ww, bb, g, dev));
  };
  // Spot-check a handful of coordinates of each gradient.
  for (std::int64_t i : {0L, 7L, 31L, x.numel() - 1}) {
    Tensor xp = x.clone(), xm = x.clone();
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    const double numeric = (loss_at(xp, w, b) - loss_at(xm, w, b)) / (2 * eps);
    EXPECT_NEAR(grads.dx.at(i), numeric, 0.05) << "dx " << i;
  }
  for (std::int64_t i : {0L, 5L, w.numel() - 1}) {
    Tensor wp = w.clone(), wm = w.clone();
    wp.data()[i] += eps;
    wm.data()[i] -= eps;
    const double numeric = (loss_at(x, wp, b) - loss_at(x, wm, b)) / (2 * eps);
    EXPECT_NEAR(grads.dweight.at(i), numeric, 0.05) << "dw " << i;
  }
  for (std::int64_t i : {0L, 2L}) {
    Tensor bp = b.clone(), bm = b.clone();
    bp.data()[i] += eps;
    bm.data()[i] -= eps;
    const double numeric = (loss_at(x, w, bp) - loss_at(x, w, bm)) / (2 * eps);
    EXPECT_NEAR(grads.dbias.at(i), numeric, 0.05) << "db " << i;
  }
}

TEST(ConvBackward, SerialAndParallelAgree) {
  ConvGeom g{3, 8, 8, 4, /*kernel=*/3, /*stride=*/1, /*pad=*/1};
  util::Rng rng(12);
  Tensor x = Tensor::randn(Shape({5, 3, 8, 8}), rng);
  Tensor w = Tensor::randn(Shape({4, g.patch_size()}), rng);
  Tensor dy = Tensor::randn(Shape({5, 4, 8, 8}), rng);
  ConvGrads a = conv2d_backward(x, w, dy, g, Device::cpu());
  ConvGrads b = conv2d_backward(x, w, dy, g, Device::parallel(4));
  for (std::int64_t i = 0; i < a.dx.numel(); ++i)
    ASSERT_NEAR(a.dx.at(i), b.dx.at(i), 1e-4f);
  for (std::int64_t i = 0; i < a.dweight.numel(); ++i)
    ASSERT_NEAR(a.dweight.at(i), b.dweight.at(i), 1e-3f);
}

// ---- pooling ----

TEST(Pool, GeometryCeilVsFloor) {
  PoolGeom floor_g{1, 24, 24, 3, 2, /*ceil=*/false};
  PoolGeom ceil_g{1, 24, 24, 3, 2, /*ceil=*/true};
  EXPECT_EQ(floor_g.out_h(), 11);  // Torch MNIST: 24 -> 11
  EXPECT_EQ(ceil_g.out_h(), 12);   // Caffe rounding
  PoolGeom tf{64, 32, 32, 3, 2, false};
  EXPECT_EQ(tf.out_h(), 15);  // TF CIFAR: 32 -> 15
}

TEST(Pool, MaxForwardPicksMaxAndArgmax) {
  PoolGeom g{1, 4, 4, 2, 2, false};
  Tensor x(Shape({1, 1, 4, 4}),
           std::vector<float>{1, 2, 5, 4,    //
                              3, 0, 1, 1,    //
                              9, 1, 0, 0,    //
                              1, 1, 0, 7});
  std::vector<std::int32_t> argmax;
  Tensor y = maxpool_forward(x, g, argmax, Device::cpu());
  EXPECT_EQ(y.at(0), 3.f);
  EXPECT_EQ(y.at(1), 5.f);
  EXPECT_EQ(y.at(2), 9.f);
  EXPECT_EQ(y.at(3), 7.f);
  EXPECT_EQ(argmax[2], 8);  // flat offset of the 9
}

TEST(Pool, MaxBackwardRoutesToArgmax) {
  PoolGeom g{1, 4, 4, 2, 2, false};
  util::Rng rng(13);
  Tensor x = Tensor::randn(Shape({1, 1, 4, 4}), rng);
  std::vector<std::int32_t> argmax;
  (void)maxpool_forward(x, g, argmax, Device::cpu());
  Tensor dy(Shape({1, 1, 2, 2}), std::vector<float>{1, 2, 3, 4});
  Tensor dx = maxpool_backward(dy, g, argmax, Device::cpu());
  EXPECT_DOUBLE_EQ(sum(dx), 10.0);  // gradient mass preserved
  EXPECT_EQ(dx.at(argmax[0]), 1.f);
}

TEST(Pool, AvgForwardAveragesWindow) {
  PoolGeom g{1, 2, 2, 2, 2, false};
  Tensor x(Shape({1, 1, 2, 2}), std::vector<float>{1, 2, 3, 6});
  Tensor y = avgpool_forward(x, g, Device::cpu());
  EXPECT_FLOAT_EQ(y.at(0), 3.f);
}

TEST(Pool, AvgPartialWindowUsesActualCount) {
  // ceil mode: last window covers a 1-wide strip; mean over 2 cells.
  PoolGeom g{1, 3, 3, 2, 2, /*ceil=*/true};
  Tensor x(Shape({1, 1, 3, 3}), 6.f);
  Tensor y = avgpool_forward(x, g, Device::cpu());
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.at(i), 6.f);
}

TEST(Pool, AvgBackwardMatchesNumeric) {
  PoolGeom g{2, 5, 5, 3, 2, /*ceil=*/true};
  util::Rng rng(14);
  Tensor x = Tensor::randn(Shape({1, 2, 5, 5}), rng);
  Tensor y = avgpool_forward(x, g, Device::cpu());
  Tensor dy(y.shape(), 1.f);
  Tensor dx = avgpool_backward(dy, g, Device::cpu());
  const float eps = 1e-2f;
  for (std::int64_t i : {0L, 12L, x.numel() - 1}) {
    Tensor xp = x.clone(), xm = x.clone();
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    const double numeric = (sum(avgpool_forward(xp, g, Device::cpu())) -
                            sum(avgpool_forward(xm, g, Device::cpu()))) /
                           (2 * eps);
    EXPECT_NEAR(dx.at(i), numeric, 0.05);
  }
}

TEST(Pool, ParallelMatchesSerial) {
  PoolGeom g{4, 9, 9, 3, 2, true};
  util::Rng rng(15);
  Tensor x = Tensor::randn(Shape({6, 4, 9, 9}), rng);
  std::vector<std::int32_t> am1, am2;
  Tensor a = maxpool_forward(x, g, am1, Device::cpu());
  Tensor b = maxpool_forward(x, g, am2, Device::parallel(4));
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a.at(i), b.at(i));
  EXPECT_EQ(am1, am2);
}

}  // namespace
}  // namespace dlbench::tensor
