// GEMM kernels: correctness against a naive reference, across devices
// and transposition variants, over randomized shapes (property tests).

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "runtime/device.hpp"
#include "tensor/matmul.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dlbench::tensor {
namespace {

using runtime::Device;

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t x = 0; x < k; ++x)
        acc += static_cast<double>(a.at(i * k + x)) * b.at(x * n + j);
      c.data()[i * n + j] = static_cast<float>(acc);
    }
  return c;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-3f) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i)
    ASSERT_NEAR(a.at(i), b.at(i), tol) << "at " << i;
}

// (M, K, N, parallel)
using GemmParam = std::tuple<int, int, int, bool>;

class GemmShapes : public ::testing::TestWithParam<GemmParam> {
 protected:
  Device dev() const {
    return std::get<3>(GetParam()) ? Device::parallel(4) : Device::cpu();
  }
};

TEST_P(GemmShapes, MatmulMatchesNaive) {
  auto [m, k, n, parallel] = GetParam();
  (void)parallel;
  util::Rng rng(static_cast<std::uint64_t>(m * 73 + k * 7 + n));
  Tensor a = Tensor::randn(Shape({m, k}), rng);
  Tensor b = Tensor::randn(Shape({k, n}), rng);
  expect_close(matmul(a, b, dev()), naive_matmul(a, b));
}

TEST_P(GemmShapes, MatmulTnMatchesExplicitTranspose) {
  auto [m, k, n, parallel] = GetParam();
  (void)parallel;
  util::Rng rng(static_cast<std::uint64_t>(m + k + n));
  Tensor at = Tensor::randn(Shape({k, m}), rng);  // stored transposed
  Tensor b = Tensor::randn(Shape({k, n}), rng);
  // Materialize a = at^T, then compare.
  Tensor a({m, k});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t x = 0; x < k; ++x)
      a.data()[i * k + x] = at.at(x * m + i);
  expect_close(matmul_tn(at, b, dev()), naive_matmul(a, b));
}

TEST_P(GemmShapes, MatmulNtMatchesExplicitTranspose) {
  auto [m, k, n, parallel] = GetParam();
  (void)parallel;
  util::Rng rng(static_cast<std::uint64_t>(m * 3 + k + n * 11));
  Tensor a = Tensor::randn(Shape({m, k}), rng);
  Tensor bt = Tensor::randn(Shape({n, k}), rng);  // stored transposed
  Tensor b({k, n});
  for (std::int64_t x = 0; x < k; ++x)
    for (std::int64_t j = 0; j < n; ++j)
      b.data()[x * n + j] = bt.at(j * k + x);
  expect_close(matmul_nt(a, bt, dev()), naive_matmul(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Combine(::testing::Values(1, 3, 7, 64),
                       ::testing::Values(1, 5, 33),
                       ::testing::Values(1, 4, 17),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<GemmParam>& info) {
      return "M" + std::to_string(std::get<0>(info.param)) + "K" +
             std::to_string(std::get<1>(info.param)) + "N" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "Par" : "Ser");
    });

TEST(Gemm, SerialAndParallelBitIdentical) {
  util::Rng rng(9);
  Tensor a = Tensor::randn(Shape({37, 23}), rng);
  Tensor b = Tensor::randn(Shape({23, 19}), rng);
  Tensor serial = matmul(a, b, Device::cpu());
  Tensor parallel = matmul(a, b, Device::parallel(4));
  for (std::int64_t i = 0; i < serial.numel(); ++i)
    ASSERT_EQ(serial.at(i), parallel.at(i));
}

TEST(Gemm, InnerDimMismatchThrows) {
  Tensor a(Shape({2, 3}));
  Tensor b(Shape({4, 5}));
  EXPECT_THROW(matmul(a, b, Device::cpu()), dlbench::Error);
  EXPECT_THROW(matmul_tn(a, b, Device::cpu()), dlbench::Error);
  EXPECT_THROW(matmul_nt(a, b, Device::cpu()), dlbench::Error);
}

TEST(Gemm, AddRowBiasBroadcasts) {
  Tensor y(Shape({2, 3}), 1.f);
  Tensor bias(Shape({3}), std::vector<float>{1.f, 2.f, 3.f});
  add_row_bias(y, bias, Device::cpu());
  EXPECT_EQ(y.at(0), 2.f);
  EXPECT_EQ(y.at(1), 3.f);
  EXPECT_EQ(y.at(5), 4.f);
}

TEST(Gemm, AddRowBiasShapeChecked) {
  Tensor y(Shape({2, 3}));
  Tensor bad(Shape({4}));
  EXPECT_THROW(add_row_bias(y, bad, Device::cpu()), dlbench::Error);
}

TEST(Gemm, ColumnSums) {
  Tensor x(Shape({2, 3}), std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor sums = column_sums(x, Device::cpu());
  EXPECT_EQ(sums.at(0), 5.f);
  EXPECT_EQ(sums.at(1), 7.f);
  EXPECT_EQ(sums.at(2), 9.f);
  Tensor psums = column_sums(x, Device::parallel(3));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(sums.at(i), psums.at(i));
}

}  // namespace
}  // namespace dlbench::tensor
