// Fault-injection subsystem + guarded training loop: deterministic
// fault plans, NaN-gradient injection with rollback recovery, retry
// exhaustion degrading to a diverged record, watchdog timeouts on
// stalled workers, dataset sample drops, and checkpoint corruption.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "core/report.hpp"
#include "data/synthetic.hpp"
#include "frameworks/registry.hpp"
#include "nn/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "util/error.hpp"

namespace dlbench {
namespace {

namespace fault = runtime::fault;
using frameworks::DatasetId;
using frameworks::FrameworkKind;
using frameworks::TrainOptions;
using frameworks::TrainResult;
using frameworks::TrainingConfig;
using runtime::Device;

// One small Caffe-MNIST training cell; cheap and reliably convergent
// within `step_cap` steps when nothing interferes.
struct Cell {
  data::DatasetPair mnist;
  std::unique_ptr<frameworks::Framework> fw;
  TrainingConfig config;
  nn::NetworkSpec spec;

  Cell() {
    data::MnistOptions d;
    d.train_samples = 300;
    d.test_samples = 100;
    mnist = data::synthetic_mnist(d);
    fw = frameworks::make_framework(FrameworkKind::kCaffe);
    config = frameworks::default_training_config(FrameworkKind::kCaffe,
                                                 DatasetId::kMnist);
    spec = frameworks::default_network_spec(FrameworkKind::kCaffe,
                                            DatasetId::kMnist);
  }

  TrainResult train(const TrainOptions& opts, const Device& dev) {
    util::Rng rng(3);
    nn::Sequential model = fw->build_model(spec, dev, rng);
    return fw->train(model, mnist.train, config, dev, opts);
  }
};

TrainOptions guarded_options(std::int64_t step_cap) {
  TrainOptions opts;
  opts.scale.max_step_cap = step_cap;
  opts.guard.max_recoveries = 2;
  opts.guard.snapshot_interval = 10;
  return opts;
}

// ---- plan / scope plumbing ----

TEST(FaultPlan, InactiveByDefault) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultPlan, FromEnvReadsKnobs) {
  setenv("DLB_FAULT_NAN_STEP", "7", 1);
  setenv("DLB_FAULT_GRAD_FIRES", "3", 1);
  setenv("DLB_FAULT_DROP_RATE", "0.25", 1);
  fault::FaultPlan plan = fault::FaultPlan::from_env();
  unsetenv("DLB_FAULT_NAN_STEP");
  unsetenv("DLB_FAULT_GRAD_FIRES");
  unsetenv("DLB_FAULT_DROP_RATE");
  EXPECT_TRUE(plan.active());
  EXPECT_EQ(plan.grad_fault, fault::GradFault::kNaN);
  EXPECT_EQ(plan.grad_step, 7);
  EXPECT_EQ(plan.grad_max_fires, 3);
  EXPECT_DOUBLE_EQ(plan.sample_drop_rate, 0.25);
}

TEST(FaultScope, NestingThrows) {
  fault::FaultPlan plan;
  plan.sample_drop_rate = 0.1;
  fault::FaultScope outer(plan);
  EXPECT_TRUE(fault::enabled());
  EXPECT_THROW(fault::FaultScope inner(plan), dlbench::Error);
}

TEST(FaultScope, InjectionPointsAreNoOpsWithoutScope) {
  std::vector<float> grad(8, 1.0f);
  std::vector<std::span<float>> grads{std::span<float>(grad)};
  EXPECT_FALSE(fault::maybe_corrupt_gradients(0, grads));
  EXPECT_FALSE(fault::maybe_drop_sample(0));
  std::string bytes = "abcdef";
  EXPECT_EQ(fault::maybe_corrupt_stream(bytes), 0);
  EXPECT_EQ(bytes, "abcdef");
  for (float v : grad) EXPECT_EQ(v, 1.0f);
}

TEST(FaultScope, GradientCorruptionIsDeterministicAndBounded) {
  fault::FaultPlan plan;
  plan.grad_fault = fault::GradFault::kNaN;
  plan.grad_step = 4;
  plan.grad_max_fires = 1;
  plan.grad_fraction = 0.5;

  auto run = [&plan] {
    fault::FaultScope scope(plan);
    std::vector<float> grad(100, 1.0f);
    std::vector<std::span<float>> grads{std::span<float>(grad)};
    EXPECT_FALSE(fault::maybe_corrupt_gradients(3, grads));  // wrong step
    EXPECT_TRUE(fault::maybe_corrupt_gradients(4, grads));
    EXPECT_FALSE(fault::maybe_corrupt_gradients(4, grads));  // fires spent
    std::vector<bool> hit;
    for (float v : grad) hit.push_back(std::isnan(v));
    EXPECT_EQ(scope.stats().gradient_fires, 1);
    return hit;
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);  // same seed, same corrupted entries
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
}

// ---- guarded training: recovery and exhaustion ----

TEST(GuardedTraining, NanInjectionRecoversAndConverges) {
  Cell cell;
  TrainOptions opts = guarded_options(50);

  fault::FaultPlan plan;
  plan.grad_fault = fault::GradFault::kNaN;
  plan.grad_step = 20;
  plan.grad_max_fires = 1;  // transient fault
  fault::FaultScope scope(plan);

  TrainResult res = cell.train(opts, Device::gpu());
  EXPECT_EQ(scope.stats().gradient_fires, 1);
  EXPECT_EQ(res.divergence_step, 20);
  EXPECT_EQ(res.recovery_attempts, 1);
  EXPECT_FALSE(res.diverged);
  EXPECT_TRUE(res.converged) << "final loss " << res.final_loss;
  EXPECT_EQ(res.steps, 50);
}

TEST(GuardedTraining, PersistentFaultExhaustsRetriesGracefully) {
  Cell cell;
  TrainOptions opts = guarded_options(50);

  fault::FaultPlan plan;
  plan.grad_fault = fault::GradFault::kNaN;
  plan.grad_step = 20;
  plan.grad_max_fires = 1000;  // fault re-fires on every retry
  fault::FaultScope scope(plan);

  TrainResult res = cell.train(opts, Device::gpu());
  EXPECT_TRUE(res.diverged);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.divergence_step, 20);
  EXPECT_EQ(res.recovery_attempts, 2);  // both retries consumed
  EXPECT_EQ(res.steps, 20);             // aborted at the faulty step
}

TEST(GuardedTraining, InfInjectionIsAlsoDetected) {
  Cell cell;
  TrainOptions opts = guarded_options(30);
  opts.guard.max_recoveries = 0;  // detection only

  fault::FaultPlan plan;
  plan.grad_fault = fault::GradFault::kInf;
  plan.grad_step = 5;
  fault::FaultScope scope(plan);

  TrainResult res = cell.train(opts, Device::gpu());
  EXPECT_TRUE(res.diverged);
  EXPECT_EQ(res.divergence_step, 5);
  EXPECT_EQ(res.recovery_attempts, 0);
}

TEST(GuardedTraining, GradNormLimitCatchesExplosionBeforeNan) {
  Cell cell;
  cell.config.base_lr = 50.0;  // guaranteed blow-up
  TrainOptions opts = guarded_options(40);
  opts.guard.grad_norm_limit = 1e4;
  opts.guard.max_recoveries = 0;

  TrainResult res = cell.train(opts, Device::gpu());
  EXPECT_TRUE(res.diverged);
  EXPECT_GE(res.divergence_step, 0);
  EXPECT_LT(res.steps, 40);
}

TEST(GuardedTraining, UnfaultedRunMatchesGuardDisabledRun) {
  // The guard must be numerically invisible when nothing diverges.
  Cell cell;
  TrainOptions guarded = guarded_options(30);
  TrainOptions unguarded = guarded_options(30);
  unguarded.guard.max_recoveries = 0;

  TrainResult a = cell.train(guarded, Device::cpu());
  TrainResult b = cell.train(unguarded, Device::cpu());
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.loss_curve, b.loss_curve);
  EXPECT_EQ(a.steps, b.steps);
}

// ---- watchdog ----

TEST(Watchdog, FiresOnStalledPoolWorker) {
  Cell cell;
  TrainOptions opts = guarded_options(2000);
  opts.guard.timeout_s = 0.3;

  fault::FaultPlan plan;
  plan.stall_ms = 30000;  // would hang ~30 s without the watchdog
  plan.stall_scope = fault::StallScope::kPoolWorker;
  fault::FaultScope scope(plan);

  const auto t0 = std::chrono::steady_clock::now();
  TrainResult res = cell.train(opts, Device::gpu());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_EQ(scope.stats().stalls, 1);
  EXPECT_TRUE(res.timed_out);
  EXPECT_FALSE(res.converged);
  EXPECT_LT(res.steps, 2000);
  EXPECT_LT(elapsed, 10.0) << "stall was not cut short";
  EXPECT_FALSE(fault::abort_requested()) << "abort flag must be cleared";
}

TEST(Watchdog, FiresOnStalledTrainingStep) {
  Cell cell;
  TrainOptions opts = guarded_options(2000);
  opts.guard.timeout_s = 0.2;

  fault::FaultPlan plan;
  plan.stall_ms = 30000;
  plan.stall_step = 3;
  plan.stall_scope = fault::StallScope::kTrainStep;
  fault::FaultScope scope(plan);

  const auto t0 = std::chrono::steady_clock::now();
  TrainResult res = cell.train(opts, Device::gpu());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(res.timed_out);
  EXPECT_LT(elapsed, 10.0);
}

TEST(Watchdog, DisarmedWatchdogNeverFires) {
  Cell cell;
  TrainOptions opts = guarded_options(20);
  ASSERT_EQ(opts.guard.timeout_s, 0.0);
  TrainResult res = cell.train(opts, Device::gpu());
  EXPECT_FALSE(res.timed_out);
  EXPECT_EQ(res.steps, 20);
}

// ---- dataset faults ----

TEST(DatasetFaults, LoaderDropsSamplesDeterministically) {
  data::MnistOptions d;
  d.train_samples = 200;
  d.test_samples = 10;
  data::DatasetPair mnist = data::synthetic_mnist(d);

  auto count_samples = [&mnist] {
    util::Rng rng(9);
    data::DataLoader loader(mnist.train, 32, /*shuffle=*/false, rng);
    loader.start_epoch();
    data::Batch batch;
    std::int64_t total = 0;
    while (loader.next(batch)) total += batch.size();
    return total;
  };

  fault::FaultPlan plan;
  plan.sample_drop_rate = 0.3;
  std::int64_t dropped_total = 0;
  {
    fault::FaultScope scope(plan);
    dropped_total = count_samples();
    EXPECT_EQ(scope.stats().samples_dropped, 200 - dropped_total);
  }
  std::int64_t dropped_again = 0;
  {
    fault::FaultScope scope(plan);
    dropped_again = count_samples();
  }
  EXPECT_EQ(count_samples(), 200);  // no scope: nothing dropped
  EXPECT_LT(dropped_total, 200);
  EXPECT_GT(dropped_total, 80);
  EXPECT_EQ(dropped_total, dropped_again);  // seeded, replayable
}

TEST(DatasetFaults, TotalStarvationEndsTrainingGracefully) {
  Cell cell;
  TrainOptions opts = guarded_options(20);
  fault::FaultPlan plan;
  plan.sample_drop_rate = 1.0;  // every sample dropped
  fault::FaultScope scope(plan);
  TrainResult res = cell.train(opts, Device::gpu());
  EXPECT_TRUE(res.diverged);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.steps, 0);
}

// ---- checkpoint faults ----

TEST(CheckpointFaults, InjectedByteFlipsAreCaughtByChecksum) {
  nn::NetworkSpec spec = frameworks::default_network_spec(
      FrameworkKind::kCaffe, DatasetId::kMnist);
  util::Rng rng(11);
  nn::Sequential model = nn::build_model(spec, rng);

  fault::FaultPlan plan;
  plan.ckpt_flip_bytes = 4;
  fault::FaultScope scope(plan);

  std::stringstream buffer;
  nn::save_checkpoint(model, buffer);
  EXPECT_EQ(scope.stats().checkpoint_bytes_flipped, 4);

  util::Rng rng2(12);
  nn::Sequential other = nn::build_model(spec, rng2);
  try {
    nn::load_checkpoint(other, buffer);
    FAIL() << "corrupt checkpoint must not load";
  } catch (const dlbench::Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

// ---- harness-level isolation (the acceptance scenario) ----

TEST(HarnessFaults, InjectedCellIsIsolatedFromTheRestOfTheSweep) {
  core::Harness harness(core::HarnessOptions::test_profile());

  // Baseline sweep, no faults.
  core::RunRecord clean_a = harness.run_default(
      FrameworkKind::kCaffe, DatasetId::kMnist, Device::gpu());
  core::RunRecord clean_b = harness.run_default(
      FrameworkKind::kCaffe, DatasetId::kCifar10, Device::gpu());
  ASSERT_EQ(clean_a.train.divergence_step, -1);

  // Same sweep with a single transient NaN fault armed: the first cell
  // to reach the step absorbs it, recovers, and later cells replay the
  // clean numbers exactly.
  fault::FaultPlan plan;
  plan.grad_fault = fault::GradFault::kNaN;
  plan.grad_step = 5;
  plan.grad_max_fires = 1;
  fault::FaultScope scope(plan);

  core::RunRecord faulted_a = harness.run_default(
      FrameworkKind::kCaffe, DatasetId::kMnist, Device::gpu());
  core::RunRecord faulted_b = harness.run_default(
      FrameworkKind::kCaffe, DatasetId::kCifar10, Device::gpu());

  EXPECT_FALSE(faulted_a.failed());
  EXPECT_EQ(faulted_a.train.divergence_step, 5);
  EXPECT_EQ(faulted_a.train.recovery_attempts, 1);
  EXPECT_FALSE(faulted_a.train.diverged);
  EXPECT_GT(faulted_a.train.steps, 5);

  EXPECT_EQ(faulted_b.train.divergence_step, -1);
  EXPECT_EQ(faulted_b.train.final_loss, clean_b.train.final_loss);
  EXPECT_EQ(faulted_b.eval.accuracy_pct, clean_b.eval.accuracy_pct);
  EXPECT_EQ(faulted_b.train.steps, clean_b.train.steps);
}

// ---- reporting ----

TEST(Reporting, StatusStringsSurfaceDivergenceAndRecovery) {
  core::RunRecord r;
  r.framework = "Caffe";
  r.train.converged = false;
  r.train.diverged = true;
  r.train.divergence_step = 120;
  r.train.recovery_attempts = 2;
  EXPECT_EQ(core::run_status(r), "NO (diverged@120, 2 recoveries)");
  EXPECT_NE(core::summarize(r).find("diverged at step 120"),
            std::string::npos);

  r.train.diverged = false;
  r.train.converged = true;
  EXPECT_EQ(core::run_status(r), "yes (recovered x2)");
  EXPECT_NE(core::summarize(r).find("RECOVERED"), std::string::npos);

  core::RunRecord t;
  t.train.timed_out = true;
  EXPECT_EQ(core::run_status(t), "NO (timed out)");

  core::RunRecord e;
  e.error = "disk on fire";
  EXPECT_EQ(core::run_status(e), "ERROR");
  EXPECT_NE(core::summarize(e).find("disk on fire"), std::string::npos);
}

}  // namespace
}  // namespace dlbench
