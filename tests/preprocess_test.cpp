// Preprocessing pipeline tests: each setting's input transform and the
// fit-on-train/apply-to-both contract.

#include <gtest/gtest.h>

#include <cmath>

#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "util/entropy.hpp"
#include "util/error.hpp"

namespace dlbench::data {
namespace {

DatasetPair small_cifar() {
  CifarOptions opt;
  opt.train_samples = 60;
  opt.test_samples = 20;
  return synthetic_cifar10(opt);
}

TEST(Preprocess, CloneIsDeep) {
  DatasetPair pair = small_cifar();
  Dataset copy = clone_dataset(pair.train);
  copy.images.data()[0] = -123.f;
  EXPECT_NE(pair.train.images.at(0), -123.f);
  EXPECT_EQ(copy.labels, pair.train.labels);
}

TEST(Preprocess, PerImageStandardizeZeroMeanUnitVar) {
  DatasetPair pair = small_cifar();
  per_image_standardize(pair.train);
  const std::int64_t sz = 3 * 32 * 32;
  for (std::int64_t i = 0; i < 5; ++i) {
    const float* img = pair.train.images.raw() + i * sz;
    double mean = 0;
    for (std::int64_t k = 0; k < sz; ++k) mean += img[k];
    mean /= sz;
    double var = 0;
    for (std::int64_t k = 0; k < sz; ++k)
      var += (img[k] - mean) * (img[k] - mean);
    var /= sz;
    EXPECT_NEAR(mean, 0.0, 1e-4) << "image " << i;
    EXPECT_NEAR(std::sqrt(var), 1.0, 1e-2) << "image " << i;
  }
}

TEST(Preprocess, StandardizeHandlesConstantImage) {
  Dataset d;
  d.name = "flat";
  d.num_classes = 2;
  d.images = tensor::Tensor({1, 1, 4, 4}, 0.5f);
  d.labels = {0};
  per_image_standardize(d);
  // std floored at 1/sqrt(D): result is finite zeros.
  for (float v : d.images.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.f);
  }
}

TEST(Preprocess, MeanImageAndSubtract) {
  DatasetPair pair = small_cifar();
  tensor::Tensor mean = mean_image(pair.train);
  EXPECT_EQ(mean.shape(), tensor::Shape({3, 32, 32}));
  Dataset copy = clone_dataset(pair.train);
  subtract_mean_image(copy, mean);
  // After subtraction, the dataset's mean image is ~0.
  tensor::Tensor residual = mean_image(copy);
  for (float v : residual.data()) EXPECT_NEAR(v, 0.f, 1e-4f);
}

TEST(Preprocess, ChannelStatsAndNormalize) {
  DatasetPair pair = small_cifar();
  ChannelStats stats = channel_stats(pair.train);
  ASSERT_EQ(stats.mean.size(), 3u);
  normalize_channels(pair.train, stats);
  ChannelStats after = channel_stats(pair.train);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(after.mean[c], 0.f, 1e-3f);
    EXPECT_NEAR(after.stddev[c], 1.f, 1e-2f);
  }
}

TEST(Preprocess, NormalizeChannelsChecksArity) {
  DatasetPair pair = small_cifar();
  ChannelStats bad;
  bad.mean = {0.f};
  bad.stddev = {1.f};
  EXPECT_THROW(normalize_channels(pair.train, bad), dlbench::Error);
}

TEST(Preprocess, ApplyFitsOnTrainAppliesToBoth) {
  DatasetPair pair = small_cifar();
  Dataset train = clone_dataset(pair.train);
  Dataset test = clone_dataset(pair.test);
  apply_preprocessing(Preprocessing::kGlobalChannelNormalize, train, test);
  // Test was transformed with *train's* statistics: applying train's
  // stats to the raw test set reproduces it exactly.
  ChannelStats stats = channel_stats(pair.train);
  Dataset expected = clone_dataset(pair.test);
  normalize_channels(expected, stats);
  for (std::int64_t i = 0; i < expected.images.numel(); ++i)
    ASSERT_FLOAT_EQ(test.images.at(i), expected.images.at(i));
}

TEST(Preprocess, ScaleOnlyIsIdentity) {
  DatasetPair pair = small_cifar();
  Dataset train = clone_dataset(pair.train);
  Dataset test = clone_dataset(pair.test);
  apply_preprocessing(Preprocessing::kScaleOnly, train, test);
  for (std::int64_t i = 0; i < train.images.numel(); ++i)
    ASSERT_EQ(train.images.at(i), pair.train.images.at(i));
}

TEST(Preprocess, MeanSubtractCentersTestWithTrainMean) {
  DatasetPair pair = small_cifar();
  Dataset train = clone_dataset(pair.train);
  Dataset test = clone_dataset(pair.test);
  apply_preprocessing(Preprocessing::kMeanSubtract, train, test);
  // Train is exactly centered; test only approximately (train's mean).
  tensor::Tensor train_mean = mean_image(train);
  for (float v : train_mean.data()) EXPECT_NEAR(v, 0.f, 1e-4f);
  const double test_mean = util::mean(test.images.data());
  EXPECT_LT(std::fabs(test_mean), 0.1);
}

TEST(Preprocess, NamesAreStable) {
  EXPECT_STREQ(to_string(Preprocessing::kScaleOnly), "scale-only");
  EXPECT_STREQ(to_string(Preprocessing::kPerImageStandardize),
               "per-image-standardize");
  EXPECT_STREQ(to_string(Preprocessing::kMeanSubtract), "mean-subtract");
  EXPECT_STREQ(to_string(Preprocessing::kGlobalChannelNormalize),
               "channel-normalize");
}

}  // namespace
}  // namespace dlbench::data
