// Unit tests for dlb_util: RNG, formatting, tables, entropy stats.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/crc32.hpp"
#include "util/entropy.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dlbench::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(12);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(77);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng parent_copy(77);
  parent_copy.fork();
  EXPECT_EQ(a.next_u64(), parent_copy.next_u64());
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 3), "-1.000");
}

TEST(Format, SecondsAdaptivePrecision) {
  EXPECT_EQ(format_seconds(0.256), "0.256");
  EXPECT_EQ(format_seconds(68.514), "68.51");
}

TEST(Format, Percent) { EXPECT_EQ(format_percent(99.218), "99.22"); }

TEST(Format, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Format, LowerAndStartsWith) {
  EXPECT_EQ(to_lower("MNIST"), "mnist");
  EXPECT_TRUE(starts_with("TensorFlow", "Tensor"));
  EXPECT_FALSE(starts_with("TF", "TensorFlow"));
}

TEST(Table, RendersHeadersAndRows) {
  Table t({"A", "Bee"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| A   | Bee |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4   |"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"name", "value"});
  t.add_row({"a,b", "x\"y"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"x\"\"y\""), std::string::npos);
}

TEST(Entropy, ConstantDataHasZeroEntropy) {
  std::vector<float> values(1000, 0.5f);
  EXPECT_DOUBLE_EQ(shannon_entropy(values), 0.0);
}

TEST(Entropy, UniformDataApproachesLogBins) {
  Rng rng(15);
  std::vector<float> values(200000);
  for (auto& v : values) v = static_cast<float>(rng.uniform());
  EXPECT_NEAR(shannon_entropy(values, 32), 5.0, 0.05);  // log2(32) = 5
}

TEST(Entropy, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(shannon_entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(sparsity({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Entropy, SparsityCountsNearZeros) {
  std::vector<float> values = {0.f, 0.01f, 0.5f, 1.f};
  EXPECT_DOUBLE_EQ(sparsity(values, 0.05f), 0.5);
}

TEST(Entropy, MeanAndStddev) {
  std::vector<float> values = {1.f, 2.f, 3.f, 4.f};
  EXPECT_DOUBLE_EQ(mean(values), 2.5);
  EXPECT_NEAR(stddev(values), std::sqrt(1.25), 1e-9);
}

TEST(Crc32, MatchesIeee8023KnownAnswers) {
  // The standard check value for the reflected 0xEDB88320 polynomial
  // (same algorithm as zlib's crc32()).
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalUpdateEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t crc = 0;
  for (char c : data) crc = crc32_update(crc, &c, 1);
  EXPECT_EQ(crc, crc32(data.data(), data.size()));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data(256, '\x5a');
  const std::uint32_t clean = crc32(data.data(), data.size());
  data[100] ^= 0x04;
  EXPECT_NE(crc32(data.data(), data.size()), clean);
}

TEST(Check, ThrowsWithContext) {
  try {
    DLB_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom message 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dlbench::util
