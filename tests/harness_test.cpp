// Integration tests over the experiment harness: full paper-style
// experiment cells at a tiny test profile.

#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "core/report.hpp"

namespace dlbench::core {
namespace {

using frameworks::DatasetId;
using frameworks::FrameworkKind;
using runtime::Device;

Harness& test_harness() {
  static Harness harness(HarnessOptions::test_profile());
  return harness;
}

TEST(Harness, OwnsBothDatasets) {
  Harness& h = test_harness();
  EXPECT_EQ(h.train_set(DatasetId::kMnist).size(), 300);
  EXPECT_EQ(h.test_set(DatasetId::kMnist).size(), 100);
  EXPECT_EQ(h.train_set(DatasetId::kCifar10).channels(), 3);
}

TEST(Harness, BaselineCellRunsAndLearns) {
  Harness& h = test_harness();
  RunRecord rec =
      h.run_default(FrameworkKind::kCaffe, DatasetId::kMnist, Device::gpu());
  EXPECT_EQ(rec.framework, "Caffe");
  EXPECT_EQ(rec.setting, "Caffe MNIST");
  EXPECT_EQ(rec.device, "GPU");
  EXPECT_GT(rec.train.train_time_s, 0.0);
  EXPECT_GT(rec.eval.test_time_s, 0.0);
  EXPECT_GT(rec.eval.accuracy_pct, 50.0);
  EXPECT_EQ(rec.eval.total, 100);
}

TEST(Harness, CrossSettingCellAdaptsInputGeometry) {
  // TF framework, Torch's MNIST setting — the Fig 6 middle cells.
  Harness& h = test_harness();
  RunRecord rec = h.run(FrameworkKind::kTensorFlow, FrameworkKind::kTorch,
                        DatasetId::kMnist, DatasetId::kMnist, Device::gpu());
  EXPECT_EQ(rec.setting, "Torch MNIST");
  EXPECT_EQ(rec.framework, "TensorFlow");
  EXPECT_GT(rec.eval.accuracy_pct, 30.0);
}

TEST(Harness, CrossDatasetCellRuns) {
  // Caffe's MNIST setting used on CIFAR-10 — the Fig 4 cells (this is
  // the one the paper reports as non-converging at full scale).
  Harness& h = test_harness();
  RunRecord rec = h.run(FrameworkKind::kCaffe, FrameworkKind::kCaffe,
                        DatasetId::kMnist, DatasetId::kCifar10, Device::gpu());
  EXPECT_EQ(rec.dataset, "CIFAR-10/train");
  EXPECT_EQ(rec.eval.total, 100);
}

TEST(Harness, TrainedModelIsAttackable) {
  Harness& h = test_harness();
  auto trained = h.train_model(FrameworkKind::kCaffe, FrameworkKind::kCaffe,
                               DatasetId::kMnist, DatasetId::kMnist,
                               Device::gpu());
  nn::Context ctx;
  ctx.device = Device::gpu();
  auto preds =
      trained.model.predict(h.test_set(DatasetId::kMnist).sample(0), ctx);
  EXPECT_EQ(preds.size(), 1u);
}

TEST(Harness, FcWidthAblationChangesModel) {
  Harness& h = test_harness();
  auto narrow = h.train_model_with_fc_width(
      FrameworkKind::kCaffe, FrameworkKind::kCaffe, DatasetId::kMnist,
      DatasetId::kMnist, Device::gpu(), /*fc_width=*/100);
  EXPECT_GT(narrow.record.eval.accuracy_pct, 30.0);
}

TEST(Report, TableRendersRecords) {
  Harness& h = test_harness();
  RunRecord rec =
      h.run_default(FrameworkKind::kCaffe, DatasetId::kMnist, Device::cpu());
  util::Table table = results_table("Test table", {rec});
  const std::string s = table.to_string();
  EXPECT_NE(s.find("Caffe"), std::string::npos);
  EXPECT_NE(s.find("Accuracy"), std::string::npos);
  EXPECT_FALSE(summarize(rec).empty());
}

TEST(Report, ComparisonTable) {
  util::Table t = comparison_table(
      "cmp", {{"TF GPU train", 68.51, 12.3, "s"},
              {"accuracy", 99.22, 98.5, "%"}});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_NE(t.to_string().find("68.51"), std::string::npos);
}

TEST(HarnessOptions, EnvProfileDefaultsAreSane) {
  HarnessOptions opt = HarnessOptions::from_env();
  EXPECT_GT(opt.mnist_train, 0);
  EXPECT_GT(opt.cifar_flop_budget, 0);
  EXPECT_GT(opt.small_batch_step_cap, 0);
}

}  // namespace
}  // namespace dlbench::core
