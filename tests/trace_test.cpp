// Tracing/metrics subsystem: scope activation, span recording and
// aggregation, counters vs gauges, drop caps, chrome://tracing export,
// and the instrumentation wired into the harness/report layers.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/harness.hpp"
#include "core/report.hpp"
#include "runtime/device.hpp"
#include "runtime/trace.hpp"
#include "tensor/matmul.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dlbench::runtime::trace {
namespace {

TEST(TraceTest, DisabledByDefault) {
  EXPECT_FALSE(enabled());
  // Instrumentation points must be safe no-ops with no scope active.
  { Span span("orphan", "test"); }
  counter_add("orphan.counter", 3);
  gauge_record("orphan.gauge", 7);
  EXPECT_FALSE(enabled());
}

TEST(TraceTest, ScopeActivatesAndDeactivates) {
  ASSERT_FALSE(enabled());
  {
    TraceScope scope;
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());
}

TEST(TraceTest, NestedScopesThrow) {
  TraceScope outer;
  EXPECT_THROW({ TraceScope inner; }, dlbench::Error);
}

TEST(TraceTest, SpansAggregateIntoReport) {
  TraceScope scope;
  for (int i = 0; i < 5; ++i) {
    Span span("unit.work", "test");
  }
  TraceReport report = scope.report();
  ASSERT_FALSE(report.empty());
  bool found = false;
  for (const SpanStat& s : report.spans) {
    if (s.name != "unit.work") continue;
    found = true;
    EXPECT_EQ(s.category, "test");
    EXPECT_EQ(s.count, 5);
    EXPECT_GE(s.total_s, 0.0);
    EXPECT_GE(s.max_s, s.min_s);
    EXPECT_LE(s.min_s * s.count, s.total_s + 1e-12);
  }
  EXPECT_TRUE(found);
  EXPECT_GT(report.total_for("unit.work"), -1.0);
  EXPECT_DOUBLE_EQ(report.total_for("unit.work"),
                   report.category_total("test"));
  EXPECT_EQ(report.total_for("no.such.span"), 0.0);
}

TEST(TraceTest, NullNamedSpanIsNoOp) {
  TraceScope scope;
  { Span span(nullptr, "test"); }
  EXPECT_TRUE(scope.report().empty());
}

TEST(TraceTest, CountersSumAndGaugesPeak) {
  TraceScope scope;
  counter_add("c.items", 2);
  counter_add("c.items", 3);
  gauge_record("g.depth", 5);
  gauge_record("g.depth", 9);
  gauge_record("g.depth", 1);
  TraceReport report = scope.report();
  ASSERT_EQ(report.counters.size(), 2u);
  const CounterStat* items = nullptr;
  const CounterStat* depth = nullptr;
  for (const CounterStat& c : report.counters) {
    if (c.name == "c.items") items = &c;
    if (c.name == "g.depth") depth = &c;
  }
  ASSERT_NE(items, nullptr);
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(items->value, 5);
  EXPECT_EQ(items->samples, 2);
  EXPECT_EQ(depth->value, 1);  // last recorded
  EXPECT_EQ(depth->peak, 9);
  EXPECT_EQ(depth->samples, 3);
}

TEST(TraceTest, EventCapCountsDrops) {
  TraceOptions opts;
  opts.max_events_per_thread = 3;
  TraceScope scope(opts);
  for (int i = 0; i < 10; ++i) {
    Span span("capped", "test");
  }
  TraceReport report = scope.report();
  EXPECT_EQ(report.dropped_events, 7);
  EXPECT_EQ(report.spans.at(0).count, 3);
}

TEST(TraceTest, InternReturnsStablePointer) {
  const char* a = intern("layer/fwd/conv1");
  const char* b = intern("layer/fwd/conv1");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "layer/fwd/conv1");
  EXPECT_NE(a, intern("layer/fwd/conv2"));
}

TEST(TraceTest, WorkerThreadSpansAreCollected) {
  TraceScope scope;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 8; ++i) {
        Span span("worker.task", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  TraceReport report = scope.report();
  ASSERT_EQ(report.spans.size(), 1u);
  EXPECT_EQ(report.spans[0].count, 32);
}

TEST(TraceTest, KernelSpansRecordedFromMatmul) {
  TraceScope scope;
  util::Rng rng(7);
  tensor::Tensor a = tensor::Tensor::randn(tensor::Shape({8, 6}), rng);
  tensor::Tensor b = tensor::Tensor::randn(tensor::Shape({6, 5}), rng);
  tensor::matmul(a, b, Device::cpu());
  tensor::matmul(a, b, Device::parallel(2));
  TraceReport report = scope.report();
  EXPECT_EQ(report.total_for("matmul"),
            report.category_total("kernel"));
  bool found = false;
  for (const SpanStat& s : report.spans)
    if (s.name == "matmul" && s.count == 2) found = true;
  EXPECT_TRUE(found);
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  TraceScope scope;
  {
    Span span("json.span", "test");
  }
  counter_add("json.counter", 4);
  const std::string json = scope.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"json.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"json.counter\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  std::int64_t braces = 0, brackets = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceTest, WritesChromeJsonOnDestruction) {
  const std::string path = ::testing::TempDir() + "/dlb_trace_test.json";
  std::remove(path.c_str());
  {
    TraceOptions opts;
    opts.out_path = path;
    TraceScope scope(opts);
    Span span("file.span", "test");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("file.span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, SummaryTableListsSpansAndCounters) {
  TraceScope scope;
  { Span span("tbl.span", "test"); }
  counter_add("tbl.counter", 11);
  const std::string table = scope.report().summary_table();
  EXPECT_NE(table.find("tbl.span"), std::string::npos);
  EXPECT_NE(table.find("tbl.counter"), std::string::npos);
  EXPECT_NE(table.find("11"), std::string::npos);
}

TEST(TraceTest, OptionsFromEnvReadsKnobs) {
  ::setenv("DLB_TRACE", "1", 1);
  ::setenv("DLB_TRACE_OUT", "/tmp/x.json", 1);
  ::setenv("DLB_TRACE_SUMMARY", "1", 1);
  ::setenv("DLB_TRACE_EVENT_CAP", "123", 1);
  TraceOptions opts = TraceOptions::from_env();
  EXPECT_TRUE(opts.armed);
  EXPECT_EQ(opts.out_path, "/tmp/x.json");
  EXPECT_TRUE(opts.print_summary);
  EXPECT_EQ(opts.max_events_per_thread, 123);
  ::unsetenv("DLB_TRACE");
  ::unsetenv("DLB_TRACE_OUT");
  ::unsetenv("DLB_TRACE_SUMMARY");
  ::unsetenv("DLB_TRACE_EVENT_CAP");
  opts = TraceOptions::from_env();
  EXPECT_FALSE(opts.armed);
  EXPECT_TRUE(opts.out_path.empty());
}

// End-to-end: a harness cell armed via DLB_TRACE embeds a trace report
// whose layer-span total approximates the measured training time.
TEST(TraceTest, HarnessCellEmbedsTraceReport) {
  ::setenv("DLB_TRACE", "1", 1);
  core::Harness harness(core::HarnessOptions::test_profile());
  core::RunRecord record = harness.run_default(
      frameworks::FrameworkKind::kCaffe, frameworks::DatasetId::kMnist,
      Device::cpu());
  ::unsetenv("DLB_TRACE");
  ASSERT_FALSE(record.failed()) << record.error;
  ASSERT_FALSE(record.trace.empty());
  EXPECT_GT(record.trace.total_for("optim.step"), 0.0);
  EXPECT_GT(record.trace.category_total("layer"), 0.0);
  // Per-layer spans should account for most of the training loop
  // (forward + backward dominate; eval layers add a little on top).
  const double layer_s = record.trace.category_total("layer");
  EXPECT_GT(layer_s, 0.5 * record.train.train_time_s);
  EXPECT_LT(layer_s, 1.5 * record.train.train_time_s);
  // Phase breakdown is populated and consistent.
  const auto& ph = record.train.phases;
  EXPECT_GT(ph.forward_s, 0.0);
  EXPECT_GT(ph.backward_s, 0.0);
  EXPECT_GT(ph.optimizer_s, 0.0);
  EXPECT_LE(ph.total(), record.train.train_time_s * 1.05);
  // The record JSON carries the trace summary.
  const std::string json = core::record_json(record);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("optim.step"), std::string::npos);
}

TEST(TraceTest, RecordJsonOmitsEmptyTrace) {
  core::RunRecord record;
  record.framework = "tf";
  const std::string json = core::record_json(record);
  EXPECT_EQ(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
}

}  // namespace
}  // namespace dlbench::runtime::trace
