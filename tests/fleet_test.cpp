// FleetManager: registry lifecycle, deficit-round-robin fairness,
// SLO-class admission (gold sheds last), autoscale hysteresis,
// retire-after-drain scale-down, and decision-log determinism.

#include "serve/fleet.hpp"

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "frameworks/predictor.hpp"
#include "nn/frozen.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using dlbench::frameworks::DatasetId;
using dlbench::frameworks::FrameworkKind;
using dlbench::frameworks::make_predictor;
using dlbench::frameworks::PredictorConfig;
using dlbench::serve::FleetDecision;
using dlbench::serve::FleetDecisionKind;
using dlbench::serve::FleetManager;
using dlbench::serve::FleetModelConfig;
using dlbench::serve::FleetOptions;
using dlbench::serve::FleetPolicy;
using dlbench::serve::FleetStats;
using dlbench::serve::FleetTenantConfig;
using dlbench::serve::MixedArrival;
using dlbench::serve::ModelServer;
using dlbench::serve::Prediction;
using dlbench::serve::RequestStatus;
using dlbench::serve::ServerOptions;
using dlbench::serve::SloClass;
using dlbench::serve::TenantStream;
using dlbench::tensor::Shape;
using dlbench::tensor::Tensor;

Shape mnist_shape() {
  return dlbench::frameworks::sample_shape(DatasetId::kMnist);
}

dlbench::nn::FrozenModel mnist_model(FrameworkKind framework) {
  PredictorConfig config;
  config.framework = framework;
  config.dataset = DatasetId::kMnist;
  return make_predictor(config);
}

std::vector<Tensor> random_samples(const Shape& shape, int count,
                                   std::uint64_t seed) {
  dlbench::util::Rng rng(seed);
  std::vector<Tensor> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    samples.push_back(Tensor::randn(shape, rng));
  return samples;
}

/// Scheduler-test defaults: admission wide open, autoscaler off, no
/// batch lingering so drains finish fast.
FleetOptions fast_options() {
  FleetOptions options;
  options.core_budget = 4;
  options.tenant_queue_capacity = 64;
  options.global_queue_budget = 1024;
  options.autoscale = false;
  return options;
}

FleetModelConfig fast_model(const std::string& name) {
  FleetModelConfig config;
  config.name = name;
  config.sample_shape = mnist_shape();
  config.min_replicas = 1;
  config.max_replicas = 2;
  config.max_batch = 4;
  config.max_batch_delay_s = 0.0;
  return config;
}

FleetTenantConfig tenant(const std::string& name, const std::string& model,
                         SloClass slo = SloClass::kSilver, int weight = 1) {
  FleetTenantConfig config;
  config.name = name;
  config.model = model;
  config.slo = slo;
  config.weight = weight;
  return config;
}

/// Tenant names of the kDispatch entries, in decision order.
std::vector<std::string> dispatch_order(const std::vector<FleetDecision>& log) {
  std::vector<std::string> order;
  for (const auto& d : log)
    if (d.kind == FleetDecisionKind::kDispatch) order.push_back(d.tenant);
  return order;
}

// ---- registry lifecycle -------------------------------------------------

TEST(FleetRegistryTest, RegistersModelsAndTenantsAndServes) {
  FleetManager fleet(fast_options());
  fleet.register_model(fast_model("mnist_tf"),
                       mnist_model(FrameworkKind::kTensorFlow));
  fleet.register_model(fast_model("mnist_torch"),
                       mnist_model(FrameworkKind::kTorch));
  fleet.register_tenant(tenant("alpha", "mnist_tf"));
  fleet.register_tenant(tenant("beta", "mnist_torch", SloClass::kGold));
  fleet.start();

  EXPECT_EQ(fleet.tenant_index("alpha"), 0);
  EXPECT_EQ(fleet.tenant_index("beta"), 1);
  EXPECT_EQ(fleet.replica_target("mnist_tf"), 1);
  EXPECT_EQ(fleet.replica_target("mnist_torch"), 1);

  const auto samples = random_samples(mnist_shape(), 4, 11);
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(fleet.submit(i % 2 == 0 ? "alpha" : "beta",
                                   samples[static_cast<std::size_t>(i) % 4]));
  for (auto& f : futures) EXPECT_EQ(f.get().status, RequestStatus::kOk);

  const FleetStats stats = fleet.stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].tenant, "alpha");
  EXPECT_EQ(stats.tenants[0].submitted, 4);
  EXPECT_EQ(stats.tenants[0].ok, 4);
  EXPECT_EQ(stats.tenants[1].tenant, "beta");
  EXPECT_EQ(stats.tenants[1].ok, 4);
  ASSERT_EQ(stats.models.size(), 2u);
  EXPECT_EQ(stats.models[0].dispatched, 4);
  EXPECT_EQ(stats.models[1].dispatched, 4);
  fleet.stop();
  EXPECT_EQ(fleet.stats().inflight, 0);
}

TEST(FleetRegistryTest, RejectsBadRegistrations) {
  FleetManager fleet(fast_options());
  fleet.register_model(fast_model("m"), mnist_model(FrameworkKind::kCaffe));
  EXPECT_THROW(fleet.register_model(fast_model("m"),
                                    mnist_model(FrameworkKind::kCaffe)),
               dlbench::Error);
  EXPECT_THROW(fleet.register_tenant(tenant("t", "no_such_model")),
               dlbench::Error);
  fleet.register_tenant(tenant("t", "m"));
  EXPECT_THROW(fleet.register_tenant(tenant("t", "m")), dlbench::Error);
  EXPECT_THROW(fleet.submit("t", Tensor::zeros(mnist_shape())),
               dlbench::Error);  // before start()
  fleet.start();
  EXPECT_THROW(fleet.register_model(fast_model("late"),
                                    mnist_model(FrameworkKind::kCaffe)),
               dlbench::Error);
  EXPECT_THROW(fleet.register_tenant(tenant("late", "m")), dlbench::Error);
  EXPECT_THROW(fleet.tenant_index("nobody"), dlbench::Error);
  EXPECT_THROW(fleet.replica_target("nothing"), dlbench::Error);
  fleet.stop();
}

TEST(FleetRegistryTest, MinReplicasMustFitCoreBudget) {
  FleetOptions options = fast_options();
  options.core_budget = 1;
  FleetManager fleet(options);
  auto big = fast_model("big");
  big.min_replicas = 2;
  big.max_replicas = 2;
  fleet.register_model(std::move(big), mnist_model(FrameworkKind::kCaffe));
  fleet.register_tenant(tenant("t", "big"));
  EXPECT_THROW(fleet.start(), dlbench::Error);
}

// ---- weighted-fair scheduling -------------------------------------------

TEST(FleetSchedulerTest, DeficitRoundRobinHonorsExactWeightShares) {
  FleetOptions options = fast_options();
  options.drr_quantum = 1;
  FleetManager fleet(options);
  fleet.register_model(fast_model("m"), mnist_model(FrameworkKind::kCaffe));
  fleet.register_tenant(tenant("heavy", "m", SloClass::kSilver, /*weight=*/2));
  fleet.register_tenant(tenant("light", "m", SloClass::kSilver, /*weight=*/1));
  fleet.start(/*paused=*/true);

  const auto samples = random_samples(mnist_shape(), 4, 5);
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 18; ++i) {
    futures.push_back(fleet.submit("heavy", samples[0]));
    futures.push_back(fleet.submit("light", samples[1]));
  }
  fleet.drain();
  for (auto& f : futures) EXPECT_EQ(f.get().status, RequestStatus::kOk);

  // Both tenants stayed backlogged through the first 18 dispatches, so
  // DRR with quantum 1 and weights 2:1 must produce the exact repeating
  // pattern heavy, heavy, light — determinism makes this a strict
  // equality, not a ratio tolerance.
  const auto order = dispatch_order(fleet.decision_log());
  ASSERT_EQ(order.size(), 36u);
  for (std::size_t i = 0; i < 18; ++i) {
    const std::string expected = i % 3 == 2 ? "light" : "heavy";
    EXPECT_EQ(order[i], expected) << "dispatch " << i;
  }
  fleet.stop();
}

TEST(FleetSchedulerTest, FifoPolicyDispatchesInArrivalOrder) {
  FleetOptions options = fast_options();
  options.policy = FleetPolicy::kFifo;
  FleetManager fleet(options);
  fleet.register_model(fast_model("m"), mnist_model(FrameworkKind::kCaffe));
  fleet.register_tenant(tenant("a", "m", SloClass::kSilver, /*weight=*/8));
  fleet.register_tenant(tenant("b", "m"));
  fleet.start(/*paused=*/true);

  const auto samples = random_samples(mnist_shape(), 2, 6);
  std::vector<std::string> arrival_order;
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 12; ++i) {
    // Lopsided burst: FIFO must ignore weights entirely.
    const std::string who = i < 8 ? "a" : "b";
    arrival_order.push_back(who);
    futures.push_back(fleet.submit(who, samples[static_cast<std::size_t>(i % 2)]));
  }
  fleet.drain();
  for (auto& f : futures) EXPECT_EQ(f.get().status, RequestStatus::kOk);
  EXPECT_EQ(dispatch_order(fleet.decision_log()), arrival_order);
  fleet.stop();
}

// ---- SLO admission ------------------------------------------------------

TEST(FleetAdmissionTest, GoldShedsLastBronzeFirst) {
  FleetOptions options = fast_options();
  options.global_queue_budget = 16;  // bronze sheds at 8, silver 12, gold 16
  options.bronze_watermark = 0.5;
  options.silver_watermark = 0.75;
  options.gold_watermark = 1.0;
  FleetManager fleet(options);
  fleet.register_model(fast_model("m"), mnist_model(FrameworkKind::kCaffe));
  fleet.register_tenant(tenant("bronze", "m", SloClass::kBronze));
  fleet.register_tenant(tenant("silver", "m", SloClass::kSilver));
  fleet.register_tenant(tenant("gold", "m", SloClass::kGold));
  fleet.start(/*paused=*/true);  // nothing drains: backlog only grows

  const auto sample = Tensor::zeros(mnist_shape());
  std::vector<std::future<Prediction>> admitted;
  // An admitted future is pending (it resolves once the drain runs); a
  // shed future resolves immediately — readiness distinguishes them
  // without ever blocking on a paused fleet.
  auto submit_admitted = [&](const std::string& who) {
    admitted.push_back(fleet.submit(who, sample));
    EXPECT_EQ(admitted.back().wait_for(std::chrono::seconds(0)),
              std::future_status::timeout)
        << who << " should have been admitted, not resolved";
  };
  auto submit_shed = [&](const std::string& who) {
    auto future = fleet.submit(who, sample);
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << who << " should have been shed immediately";
    EXPECT_EQ(future.get().status, RequestStatus::kShed) << who;
  };

  for (int i = 0; i < 8; ++i) submit_admitted("bronze");
  submit_shed("bronze");  // backlog 8 >= bronze watermark
  for (int i = 0; i < 4; ++i) submit_admitted("silver");
  submit_shed("bronze");  // still shed
  submit_shed("silver");  // backlog 12 >= silver watermark
  for (int i = 0; i < 4; ++i) submit_admitted("gold");
  submit_shed("gold");  // backlog 16 = the full budget: gold sheds last

  const FleetStats mid = fleet.stats();
  EXPECT_EQ(mid.queued, 16);
  EXPECT_EQ(mid.tenants[0].shed, 2);
  EXPECT_EQ(mid.tenants[1].shed, 1);
  EXPECT_EQ(mid.tenants[2].shed, 1);
  EXPECT_EQ(mid.tenants[0].admitted, 8);
  EXPECT_EQ(mid.tenants[1].admitted, 4);
  EXPECT_EQ(mid.tenants[2].admitted, 4);

  // Nothing admitted is lost: the drain serves all 16.
  fleet.drain();
  for (auto& f : admitted) EXPECT_EQ(f.get().status, RequestStatus::kOk);
  fleet.stop();
}

TEST(FleetAdmissionTest, TenantQueueCapacityRejects) {
  FleetOptions options = fast_options();
  options.slo_admission = false;  // isolate the per-tenant bound
  options.tenant_queue_capacity = 4;
  FleetManager fleet(options);
  fleet.register_model(fast_model("m"), mnist_model(FrameworkKind::kCaffe));
  fleet.register_tenant(tenant("t", "m"));
  fleet.start(/*paused=*/true);

  const auto sample = Tensor::zeros(mnist_shape());
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(fleet.submit("t", sample));
  EXPECT_EQ(futures[4].get().status, RequestStatus::kRejected);
  EXPECT_EQ(futures[5].get().status, RequestStatus::kRejected);
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.tenants[0].admitted, 4);
  EXPECT_EQ(stats.tenants[0].rejected, 2);
  fleet.drain();
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().status,
              RequestStatus::kOk);
  fleet.stop();
}

// ---- autoscaling --------------------------------------------------------

TEST(FleetAutoscaleTest, ScalesUpUnderBacklogAndDownOnlyAfterHysteresis) {
  FleetOptions options = fast_options();
  options.autoscale = true;
  options.autoscale_every = 1;  // evaluate after every dispatch
  options.scale_up_backlog = 4.0;
  options.scale_down_backlog = 0.9;
  options.hysteresis_evals = 3;
  options.core_budget = 2;
  FleetManager fleet(options);
  auto model = fast_model("m");
  model.min_replicas = 1;
  model.max_replicas = 2;
  fleet.register_model(std::move(model), mnist_model(FrameworkKind::kCaffe));
  fleet.register_tenant(tenant("t", "m"));
  fleet.start(/*paused=*/true);

  // Wave 1: 12 preloaded requests. Backlog per replica at the first
  // evaluation is 11/1, far over the up threshold: one replica is
  // added, then the model rides at its max. The final two evaluations
  // (backlog 1 then 0 against 2 replicas) are scale-down candidates —
  // two consecutive lows, one short of the hysteresis requirement.
  const auto sample = Tensor::zeros(mnist_shape());
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(fleet.submit("t", sample));
  fleet.drain();
  FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.models[0].scale_ups, 1);
  EXPECT_EQ(stats.models[0].replicas_peak, 2);
  EXPECT_EQ(stats.models[0].scale_downs, 0)
      << "two low evaluations must not beat hysteresis_evals=3";
  EXPECT_EQ(stats.models[0].replicas, 2);
  EXPECT_EQ(fleet.replica_target("m"), 2);

  // Wave 2: a single request makes the third consecutive low
  // evaluation — now the replica retires.
  fleet.pause();
  futures.push_back(fleet.submit("t", sample));
  fleet.drain();
  stats = fleet.stats();
  EXPECT_EQ(stats.models[0].scale_downs, 1);
  EXPECT_EQ(stats.models[0].replicas, 1);
  EXPECT_EQ(fleet.replica_target("m"), 1);

  // The timeline records both moves, up before down.
  ASSERT_EQ(stats.timeline.size(), 2u);
  EXPECT_EQ(stats.timeline[0].from, 1);
  EXPECT_EQ(stats.timeline[0].to, 2);
  EXPECT_EQ(stats.timeline[1].from, 2);
  EXPECT_EQ(stats.timeline[1].to, 1);
  EXPECT_LT(stats.timeline[0].ordinal, stats.timeline[1].ordinal);

  // Scaling never dropped anything.
  for (auto& fut : futures) EXPECT_EQ(fut.get().status, RequestStatus::kOk);
  fleet.stop();
}

TEST(FleetAutoscaleTest, RespectsGlobalCoreBudgetAcrossModels) {
  FleetOptions options = fast_options();
  options.autoscale = true;
  options.autoscale_every = 1;
  options.scale_up_backlog = 2.0;
  options.scale_down_backlog = -1.0;  // never a scale-down candidate
  options.core_budget = 3;            // 2 models, max 2 each: one must lose
  FleetManager fleet(options);
  auto first = fast_model("first");
  first.max_replicas = 2;
  auto second = fast_model("second");
  second.max_replicas = 2;
  fleet.register_model(std::move(first), mnist_model(FrameworkKind::kCaffe));
  fleet.register_model(std::move(second), mnist_model(FrameworkKind::kCaffe));
  fleet.register_tenant(tenant("ta", "first"));
  fleet.register_tenant(tenant("tb", "second"));
  fleet.start(/*paused=*/true);

  const auto sample = Tensor::zeros(mnist_shape());
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(fleet.submit("ta", sample));
    futures.push_back(fleet.submit("tb", sample));
  }
  fleet.drain();
  for (auto& f : futures) EXPECT_EQ(f.get().status, RequestStatus::kOk);
  const FleetStats stats = fleet.stats();
  const int total = stats.models[0].replicas + stats.models[1].replicas;
  EXPECT_LE(total, 3);
  EXPECT_EQ(total, 3) << "budget headroom should have been used";
  // Registration order breaks the tie deterministically: "first" gets
  // the spare replica.
  EXPECT_EQ(stats.models[0].replicas, 2);
  EXPECT_EQ(stats.models[1].replicas, 1);
  fleet.stop();
}

// ---- retire-after-drain scale-down --------------------------------------

TEST(FleetScaleDownTest, ResizeReplicasNeverDropsInFlightWork) {
  PredictorConfig config;
  config.framework = FrameworkKind::kCaffe;
  config.dataset = DatasetId::kMnist;
  const auto model = make_predictor(config);

  ServerOptions opts;
  opts.sample_shape = mnist_shape();
  opts.replicas = 4;
  opts.max_batch = 4;
  opts.max_batch_delay_s = 0.0;
  opts.queue_capacity = 2048;
  opts.reject_watermark = 2048;
  ModelServer server(model, opts);

  const auto samples = random_samples(mnist_shape(), 4, 21);
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 120; ++i)
    futures.push_back(server.submit(samples[static_cast<std::size_t>(i % 4)]));
  // Shrink hard mid-flight, twice, then grow again — every in-flight
  // batch must finish and scatter before its replica exits.
  server.resize_replicas(2);
  EXPECT_EQ(server.replica_target(), 2);
  server.resize_replicas(1);
  EXPECT_EQ(server.replica_target(), 1);
  for (int i = 0; i < 60; ++i)
    futures.push_back(server.submit(samples[static_cast<std::size_t>(i % 4)]));
  server.resize_replicas(3);
  EXPECT_EQ(server.replica_target(), 3);
  for (auto& f : futures) EXPECT_EQ(f.get().status, RequestStatus::kOk);

  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 180);
  EXPECT_EQ(stats.crashes, 0);
  EXPECT_THROW(server.resize_replicas(0), dlbench::Error);
}

// ---- determinism --------------------------------------------------------

/// One full drained replay: mixed trace over two models and three
/// tenants with admission pressure and the autoscaler on. Returns the
/// formatted decision log.
std::vector<std::string> replay_decision_log(FleetPolicy policy,
                                             std::uint64_t seed) {
  FleetOptions options;
  options.policy = policy;
  options.core_budget = 3;
  options.tenant_queue_capacity = 24;
  options.global_queue_budget = 48;
  options.autoscale = true;
  options.autoscale_every = 8;
  options.scale_up_backlog = 4.0;
  options.scale_down_backlog = 0.5;
  options.hysteresis_evals = 2;
  FleetManager fleet(options);
  auto mnist_tf = fast_model("mnist_tf");
  mnist_tf.max_replicas = 2;
  auto mnist_torch = fast_model("mnist_torch");
  mnist_torch.max_replicas = 2;
  fleet.register_model(std::move(mnist_tf),
                       mnist_model(FrameworkKind::kTensorFlow));
  fleet.register_model(std::move(mnist_torch),
                       mnist_model(FrameworkKind::kTorch));
  fleet.register_tenant(
      tenant("gold_tf", "mnist_tf", SloClass::kGold, /*weight=*/2));
  fleet.register_tenant(tenant("silver_torch", "mnist_torch",
                               SloClass::kSilver, /*weight=*/1));
  fleet.register_tenant(
      tenant("bronze_tf", "mnist_tf", SloClass::kBronze, /*weight=*/1));
  fleet.start(/*paused=*/true);

  const std::vector<TenantStream> streams = {
      {"gold_tf", 40.0}, {"silver_torch", 40.0}, {"bronze_tf", 120.0}};
  const auto trace =
      dlbench::serve::make_mixed_trace(streams, /*duration_s=*/1.0, seed);
  const std::vector<std::vector<Tensor>> inputs = {
      random_samples(mnist_shape(), 2, seed + 1),
      random_samples(mnist_shape(), 2, seed + 2),
      random_samples(mnist_shape(), 2, seed + 3)};
  dlbench::serve::FleetLoadOptions load;
  load.realtime = false;  // pause → preload → resume drain
  dlbench::serve::run_fleet_trace(fleet, streams, trace, inputs, load);

  std::vector<std::string> lines;
  for (const auto& d : fleet.decision_log())
    lines.push_back(dlbench::serve::format_decision(d));
  fleet.stop();
  return lines;
}

TEST(FleetDeterminismTest, SameSeedAndTraceGiveIdenticalDecisionLogs) {
  const auto first = replay_decision_log(FleetPolicy::kWeightedFair, 99);
  const auto second = replay_decision_log(FleetPolicy::kWeightedFair, 99);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    ASSERT_EQ(first[i], second[i]) << "decision " << i;
  EXPECT_GT(first.size(), 100u) << "replay should exercise real load";

  // A different seed must actually change the trace (the log is a
  // function of the trace, not a constant).
  const auto other = replay_decision_log(FleetPolicy::kWeightedFair, 100);
  EXPECT_NE(first, other);
  // And the policy is load-bearing: FIFO replays differently.
  const auto fifo = replay_decision_log(FleetPolicy::kFifo, 99);
  EXPECT_NE(first, fifo);
}

}  // namespace
