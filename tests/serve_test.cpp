// ModelServer: batched-vs-single bitwise parity per framework
// emulation, backpressure bounds, batching behaviour, shutdown
// semantics, and stats/trace accounting.

#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "frameworks/predictor.hpp"
#include "nn/frozen.hpp"
#include "runtime/trace.hpp"
#include "serve/loadgen.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using dlbench::frameworks::DatasetId;
using dlbench::frameworks::FrameworkKind;
using dlbench::frameworks::make_predictor;
using dlbench::frameworks::PredictorConfig;
using dlbench::runtime::Device;
using dlbench::serve::LoadGenOptions;
using dlbench::serve::ModelServer;
using dlbench::serve::Prediction;
using dlbench::serve::RequestStatus;
using dlbench::serve::ServerOptions;
using dlbench::serve::ServerStats;
using dlbench::tensor::Shape;
using dlbench::tensor::Tensor;

std::vector<Tensor> random_samples(const Shape& shape, int count,
                                   std::uint64_t seed) {
  dlbench::util::Rng rng(seed);
  std::vector<Tensor> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    samples.push_back(Tensor::randn(shape, rng));
  return samples;
}

/// Batches a single [C, H, W] sample into [1, C, H, W].
Tensor with_batch_dim(const Tensor& sample) {
  const Shape& s = sample.shape();
  return sample.reshape({1, s[0], s[1], s[2]});
}

ServerOptions mnist_options() {
  ServerOptions opts;
  opts.sample_shape = dlbench::frameworks::sample_shape(DatasetId::kMnist);
  opts.replicas = 2;
  opts.max_batch = 4;
  opts.max_batch_delay_s = 0.01;
  return opts;
}

// ---- batched-vs-single parity ------------------------------------------

/// The load-bearing property behind dynamic batching: riding in a batch
/// must not change a request's answer. Every kernel in the frozen
/// forward computes each sample independently with a fixed summation
/// order, so outputs must be *bitwise* identical to a single-sample
/// forward — per framework emulation, since each picks different
/// kernels (Torch: direct conv) and architectures.
class BatchParityTest : public ::testing::TestWithParam<FrameworkKind> {};

TEST_P(BatchParityTest, ServerMatchesSingleSampleForwardBitwise) {
  PredictorConfig config;
  config.framework = GetParam();
  config.dataset = DatasetId::kMnist;
  const auto model = make_predictor(config);

  const auto samples =
      random_samples(dlbench::frameworks::sample_shape(DatasetId::kMnist),
                     12, /*seed=*/42);

  // References: each sample forwarded alone, batch dimension 1.
  std::vector<std::vector<float>> expected_probs;
  std::vector<std::int64_t> expected_labels;
  for (const auto& sample : samples) {
    const Tensor logits =
        model.forward(with_batch_dim(sample), Device::cpu());
    const Tensor probs = dlbench::tensor::softmax_rows(logits, Device::cpu());
    expected_probs.emplace_back(probs.data().begin(), probs.data().end());
    const auto row = logits.data();
    expected_labels.push_back(std::distance(
        row.begin(), std::max_element(row.begin(), row.end())));
  }

  // Serve the same samples; a long linger delay + concurrent submission
  // forces real multi-request batches.
  ServerOptions opts = mnist_options();
  opts.replicas = 1;
  opts.max_batch = 4;
  opts.max_batch_delay_s = 0.05;
  ModelServer server(model, opts);
  std::vector<std::future<Prediction>> futures;
  for (const auto& sample : samples) futures.push_back(server.submit(sample));

  bool saw_multi_request_batch = false;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Prediction got = futures[i].get();
    ASSERT_EQ(got.status, RequestStatus::kOk);
    EXPECT_EQ(got.label, expected_labels[i]) << "sample " << i;
    ASSERT_EQ(got.probabilities.size(), expected_probs[i].size());
    for (std::size_t c = 0; c < expected_probs[i].size(); ++c)
      EXPECT_EQ(got.probabilities[c], expected_probs[i][c])
          << "sample " << i << " class " << c << " (bitwise)";
    saw_multi_request_batch |= got.batch_size > 1;
  }
  EXPECT_TRUE(saw_multi_request_batch)
      << "parity was only exercised with singleton batches";
}

INSTANTIATE_TEST_SUITE_P(AllFrameworks, BatchParityTest,
                         ::testing::Values(FrameworkKind::kTensorFlow,
                                           FrameworkKind::kCaffe,
                                           FrameworkKind::kTorch),
                         [](const auto& info) {
                           return dlbench::frameworks::to_string(info.param);
                         });

TEST(BatchParity, ParallelDeviceMatchesSerialDevice) {
  // The batching-throughput story runs replicas on the parallel device;
  // parallel_for must not change summation order per sample.
  PredictorConfig config;
  config.dataset = DatasetId::kMnist;
  const auto model = make_predictor(config);
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 6, 43);

  ServerOptions opts = mnist_options();
  opts.device = Device::parallel(2);
  ModelServer server(model, opts);
  for (const auto& sample : samples) {
    const Prediction got = server.predict(sample);
    ASSERT_EQ(got.status, RequestStatus::kOk);
    const Tensor logits =
        model.forward(with_batch_dim(sample), Device::cpu());
    const Tensor probs = dlbench::tensor::softmax_rows(logits, Device::cpu());
    for (std::size_t c = 0; c < got.probabilities.size(); ++c)
      EXPECT_EQ(got.probabilities[c], probs.data()[c]);
  }
}

// ---- request lifecycle --------------------------------------------------

TEST(ModelServer, PredictReturnsOkWithProbabilities) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ModelServer server(model, mnist_options());
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 1, 44);
  const Prediction p = server.predict(samples[0]);
  EXPECT_EQ(p.status, RequestStatus::kOk);
  EXPECT_GE(p.label, 0);
  EXPECT_LT(p.label, 10);
  ASSERT_EQ(p.probabilities.size(), 10u);
  float sum = 0.f;
  for (const float v : p.probabilities) sum += v;
  EXPECT_NEAR(sum, 1.f, 1e-4f);
  EXPECT_GE(p.batch_size, 1);
  EXPECT_GE(p.total_s, 0.0);
  EXPECT_GE(p.queue_wait_s, 0.0);
}

TEST(ModelServer, RejectsWrongSampleShape) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ModelServer server(model, mnist_options());
  EXPECT_THROW(server.submit(Tensor(Shape{3, 32, 32})), dlbench::Error);
}

TEST(ModelServer, ShutdownFailsNewSubmissions) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ModelServer server(model, mnist_options());
  server.shutdown();
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 1, 45);
  const Prediction p = server.predict(samples[0]);
  EXPECT_EQ(p.status, RequestStatus::kShutdown);
}

TEST(ModelServer, DrainingShutdownServesAcceptedRequests) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ServerOptions opts = mnist_options();
  opts.replicas = 1;
  opts.max_batch = 2;
  ModelServer server(model, opts);
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 16, 46);
  std::vector<std::future<Prediction>> futures;
  for (const auto& sample : samples) futures.push_back(server.submit(sample));
  server.shutdown(/*drain=*/true);
  for (auto& future : futures)
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
}

TEST(ModelServer, AbortingShutdownFailsQueuedRequests) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ServerOptions opts = mnist_options();
  opts.replicas = 1;
  opts.max_batch = 1;
  opts.max_batch_delay_s = 0.0;
  ModelServer server(model, opts);
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 32, 47);
  std::vector<std::future<Prediction>> futures;
  for (const auto& sample : samples) futures.push_back(server.submit(sample));
  server.shutdown(/*drain=*/false);
  int ok = 0, aborted = 0;
  for (auto& future : futures) {
    const auto status = future.get().status;
    // Requests already dequeued complete; the rest fail promptly.
    if (status == RequestStatus::kOk) ++ok;
    if (status == RequestStatus::kShutdown) ++aborted;
  }
  EXPECT_EQ(ok + aborted, 32);
  EXPECT_GT(aborted, 0);
}

// ---- backpressure -------------------------------------------------------

TEST(ModelServer, OverloadShedsAtWatermarkAndBoundsQueue) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ServerOptions opts = mnist_options();
  opts.replicas = 1;
  opts.max_batch = 2;
  opts.max_batch_delay_s = 0.0;
  opts.queue_capacity = 32;
  opts.reject_watermark = 16;
  ModelServer server(model, opts);

  // Far more submissions than the watermark, far faster than one
  // replica can serve them.
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 4, 48);
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 500; ++i)
    futures.push_back(server.submit(samples[i % samples.size()]));

  std::int64_t ok = 0, rejected = 0;
  for (auto& future : futures) {
    switch (future.get().status) {
      case RequestStatus::kOk: ++ok; break;
      case RequestStatus::kRejected: ++rejected; break;
      default: FAIL() << "unexpected shutdown status";
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_GT(rejected, 0) << "overload never tripped admission control";
  EXPECT_GT(ok, 0);
  EXPECT_EQ(ok + rejected, 500);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.accepted, ok);
  // The bound the subsystem exists to provide: queue depth never
  // exceeded the watermark no matter the offered load.
  EXPECT_LE(stats.max_queue_depth, 16);
}

// ---- batching behaviour -------------------------------------------------

TEST(ModelServer, LingerAssemblesMultiRequestBatches) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ServerOptions opts = mnist_options();
  opts.replicas = 1;
  opts.max_batch = 8;
  opts.max_batch_delay_s = 0.05;
  ModelServer server(model, opts);
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 8, 49);
  std::vector<std::future<Prediction>> futures;
  for (const auto& sample : samples) futures.push_back(server.submit(sample));
  std::int64_t max_batch_seen = 0;
  for (auto& future : futures)
    max_batch_seen = std::max(max_batch_seen, future.get().batch_size);
  EXPECT_GT(max_batch_seen, 1);
  EXPECT_LE(max_batch_seen, 8);
  const ServerStats stats = server.stats();
  EXPECT_LT(stats.batches, 8) << "every request rode a singleton batch";
  EXPECT_EQ(stats.completed, 8);
}

TEST(ModelServer, BatchNeverExceedsMaxBatch) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ServerOptions opts = mnist_options();
  opts.replicas = 2;
  opts.max_batch = 3;
  opts.max_batch_delay_s = 0.02;
  ModelServer server(model, opts);
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 4, 50);
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 40; ++i)
    futures.push_back(server.submit(samples[i % samples.size()]));
  for (auto& future : futures) {
    const Prediction p = future.get();
    ASSERT_EQ(p.status, RequestStatus::kOk);
    EXPECT_LE(p.batch_size, 3);
    EXPECT_GE(p.batch_size, 1);
  }
}

TEST(ModelServer, ZeroDelayStillServes) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ServerOptions opts = mnist_options();
  opts.max_batch_delay_s = 0.0;
  ModelServer server(model, opts);
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 4, 51);
  for (const auto& sample : samples)
    EXPECT_EQ(server.predict(sample).status, RequestStatus::kOk);
}

// ---- stats + latency accounting ----------------------------------------

TEST(ModelServer, StatsAccountForEveryRequest) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ServerOptions opts = mnist_options();
  opts.replicas = 2;
  ModelServer server(model, opts);
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 4, 52);
  constexpr int kRequests = 24;
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(samples[i % samples.size()]));
  for (auto& future : futures) future.get();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.accepted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.rejected, 0);
  // Per-request histograms saw every request; per-batch histograms saw
  // every batch; busy time is positive and consistent.
  EXPECT_EQ(stats.latency.total.count(), kRequests);
  EXPECT_EQ(stats.latency.queue_wait.count(), kRequests);
  EXPECT_EQ(stats.latency.forward.count(), stats.batches);
  EXPECT_EQ(stats.latency.assemble.count(), stats.batches);
  EXPECT_EQ(stats.latency.scatter.count(), stats.batches);
  EXPECT_GT(stats.busy_s, 0.0);
  EXPECT_GE(stats.mean_batch_size(), 1.0);
  // End-to-end latency dominates its own queue-wait component.
  EXPECT_GE(stats.latency.total.max_s(), stats.latency.queue_wait.min_s());
}

TEST(ModelServer, EmitsServeSpansAndCounters) {
  using dlbench::runtime::trace::TraceOptions;
  using dlbench::runtime::trace::TraceScope;
  if (!dlbench::runtime::trace::compiled()) GTEST_SKIP();

  PredictorConfig config;
  const auto model = make_predictor(config);
  TraceOptions topts;
  TraceScope scope(topts);
  {
    ModelServer server(model, mnist_options());
    const auto samples = random_samples(
        dlbench::frameworks::sample_shape(DatasetId::kMnist), 4, 53);
    std::vector<std::future<Prediction>> futures;
    for (int i = 0; i < 8; ++i)
      futures.push_back(server.submit(samples[i % samples.size()]));
    for (auto& future : futures) future.get();
  }  // server joined: no instrumented work in flight
  const auto report = scope.report();
  for (const char* span : {"serve.enqueue_wait", "serve.assemble",
                           "serve.forward", "serve.scatter"}) {
    bool found = false;
    for (const auto& s : report.spans) found |= s.name == span;
    EXPECT_TRUE(found) << "missing span " << span;
  }
  bool saw_requests = false, saw_batches = false;
  for (const auto& c : report.counters) {
    if (c.name == "serve.requests") {
      saw_requests = true;
      EXPECT_EQ(c.value, 8);
    }
    if (c.name == "serve.batches") saw_batches = true;
  }
  EXPECT_TRUE(saw_requests);
  EXPECT_TRUE(saw_batches);
}

// ---- load generator -----------------------------------------------------

TEST(LoadGen, ClosedLoopDrivesAndMergesHistograms) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ModelServer server(model, mnist_options());
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 4, 54);
  LoadGenOptions lopts;
  lopts.mode = LoadGenOptions::Mode::kClosedLoop;
  lopts.clients = 3;
  lopts.duration_s = 0.1;
  const auto result = run_load(server, samples, lopts);
  EXPECT_GT(result.issued, 0);
  EXPECT_EQ(result.ok, result.issued);
  EXPECT_EQ(result.latency.count(), result.ok);
  EXPECT_EQ(result.queue_wait.count(), result.ok);
  EXPECT_GT(result.achieved_rps, 0.0);
  EXPECT_GE(result.mean_batch, 1.0);
}

TEST(LoadGen, OpenLoopIssuesAtOfferedRate) {
  PredictorConfig config;
  const auto model = make_predictor(config);
  ServerOptions opts = mnist_options();
  opts.max_batch = 8;
  ModelServer server(model, opts);
  const auto samples = random_samples(
      dlbench::frameworks::sample_shape(DatasetId::kMnist), 4, 55);
  LoadGenOptions lopts;
  lopts.mode = LoadGenOptions::Mode::kOpenLoop;
  lopts.offered_rps = 200.0;
  lopts.duration_s = 0.2;
  const auto result = run_load(server, samples, lopts);
  EXPECT_GT(result.issued, 10);
  EXPECT_EQ(result.ok + result.rejected + result.shutdown, result.issued);
  // The dispatcher resolves every future before returning.
  EXPECT_EQ(result.latency.count(), result.ok);
}

TEST(LoadGen, PoissonGapMatchesInverseCdf) {
  using dlbench::serve::poisson_gap_s;
  // Interior draws follow -log(1-u)/rate exactly.
  EXPECT_DOUBLE_EQ(poisson_gap_s(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(poisson_gap_s(0.5, 100.0), -std::log(0.5) / 100.0);
  EXPECT_DOUBLE_EQ(poisson_gap_s(0.9, 10.0), -std::log(1.0 - 0.9) / 10.0);
}

// Regression: u == 1.0 made the raw inverse-CDF emit -log(0) = +inf,
// an inter-arrival gap the open-loop dispatcher would sleep on until
// the end of time. The sampler must clamp to a finite gap.
TEST(LoadGen, PoissonGapIsFiniteAtUniformOne) {
  using dlbench::serve::poisson_gap_s;
  const double gap = poisson_gap_s(1.0, 100.0);
  EXPECT_TRUE(std::isfinite(gap));
  EXPECT_GT(gap, 0.0);
  // Out-of-range draws clamp rather than produce NaN.
  EXPECT_TRUE(std::isfinite(poisson_gap_s(2.0, 100.0)));
  EXPECT_DOUBLE_EQ(poisson_gap_s(-0.5, 100.0), 0.0);
  EXPECT_THROW(poisson_gap_s(0.5, 0.0), dlbench::Error);
}

TEST(LoadGen, PoissonGapRngOverloadStaysFinite) {
  using dlbench::serve::poisson_gap_s;
  dlbench::util::Rng rng(123);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double gap = poisson_gap_s(rng, 1000.0);
    ASSERT_TRUE(std::isfinite(gap));
    ASSERT_GE(gap, 0.0);
    sum += gap;
  }
  // Mean gap ~= 1/rate = 1ms; loose sanity band.
  EXPECT_GT(sum / 10000.0, 0.0005);
  EXPECT_LT(sum / 10000.0, 0.002);
}

// ---- mixed multi-tenant traces (serve/fleet) ---------------------------

TEST(MixedTrace, IsSortedDeterministicAndSeedSensitive) {
  using dlbench::serve::make_mixed_trace;
  using dlbench::serve::TenantStream;
  const std::vector<TenantStream> streams = {{"a", 200.0}, {"b", 100.0}};
  const auto first = make_mixed_trace(streams, /*duration_s=*/1.0, 7);
  const auto second = make_mixed_trace(streams, 1.0, 7);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].t_s, second[i].t_s) << i;   // bitwise
    EXPECT_EQ(first[i].stream, second[i].stream) << i;
  }
  for (std::size_t i = 1; i < first.size(); ++i)
    EXPECT_LE(first[i - 1].t_s, first[i].t_s) << "unsorted at " << i;
  for (const auto& a : first) {
    EXPECT_GE(a.t_s, 0.0);
    EXPECT_LT(a.t_s, 1.0);
    EXPECT_TRUE(a.stream == 0 || a.stream == 1);
  }
  // A different seed is a different trace.
  const auto other = make_mixed_trace(streams, 1.0, 8);
  bool differs = other.size() != first.size();
  for (std::size_t i = 0; !differs && i < first.size(); ++i)
    differs = first[i].t_s != other[i].t_s;
  EXPECT_TRUE(differs);
}

TEST(MixedTrace, PreservesEachStreamsMarginalRate) {
  using dlbench::serve::make_mixed_trace;
  using dlbench::serve::TenantStream;
  const std::vector<TenantStream> streams = {{"slow", 100.0}, {"fast", 400.0}};
  const auto trace = make_mixed_trace(streams, /*duration_s=*/4.0, 31);
  std::int64_t counts[2] = {0, 0};
  for (const auto& a : trace) ++counts[a.stream];
  // Poisson counts with mean rate*duration; 5-sigma bands so the test
  // is deterministic-in-practice for this fixed seed family.
  EXPECT_NEAR(static_cast<double>(counts[0]), 400.0, 5.0 * 20.0);
  EXPECT_NEAR(static_cast<double>(counts[1]), 1600.0, 5.0 * 40.0);
}

TEST(MixedTrace, StreamScheduleIsIndependentOfOtherStreams) {
  using dlbench::serve::make_mixed_trace;
  using dlbench::serve::MixedArrival;
  using dlbench::serve::TenantStream;
  // Stream 0 keeps the same (seed, index), stream 1 changes completely:
  // stream 0's arrivals must be bitwise identical — each stream's
  // schedule comes from its own fork of the seed, never its neighbours'.
  const auto with_b =
      make_mixed_trace({{"a", 80.0}, {"b", 300.0}}, /*duration_s=*/2.0, 13);
  const auto with_c =
      make_mixed_trace({{"a", 80.0}, {"c", 900.0}}, /*duration_s=*/2.0, 13);
  std::vector<double> a_with_b;
  std::vector<double> a_with_c;
  for (const auto& arrival : with_b)
    if (arrival.stream == 0) a_with_b.push_back(arrival.t_s);
  for (const auto& arrival : with_c)
    if (arrival.stream == 0) a_with_c.push_back(arrival.t_s);
  ASSERT_FALSE(a_with_b.empty());
  ASSERT_EQ(a_with_b.size(), a_with_c.size());
  for (std::size_t i = 0; i < a_with_b.size(); ++i)
    EXPECT_EQ(a_with_b[i], a_with_c[i]) << "arrival " << i << " (bitwise)";
}

TEST(MixedTrace, MaxArrivalsBoundsTheMerge) {
  using dlbench::serve::make_mixed_trace;
  using dlbench::serve::TenantStream;
  const std::vector<TenantStream> streams = {{"a", 500.0}, {"b", 500.0}};
  const auto trace =
      make_mixed_trace(streams, /*duration_s=*/10.0, 3, /*max_arrivals=*/64);
  EXPECT_EQ(trace.size(), 64u);
  // The bounded trace is the prefix of the unbounded one.
  const auto full = make_mixed_trace(streams, 10.0, 3);
  ASSERT_GE(full.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].t_s, full[i].t_s) << i;
    EXPECT_EQ(trace[i].stream, full[i].stream) << i;
  }
}

TEST(MixedTrace, ValidatesItsArguments) {
  using dlbench::serve::make_mixed_trace;
  using dlbench::serve::TenantStream;
  EXPECT_THROW(make_mixed_trace({}, 1.0, 1), dlbench::Error);
  EXPECT_THROW(make_mixed_trace({{"a", 100.0}}, /*duration_s=*/0.0, 1,
                                /*max_arrivals=*/0),
               dlbench::Error);
  EXPECT_THROW(make_mixed_trace({{"a", 0.0}}, 1.0, 1), dlbench::Error);
  EXPECT_THROW(make_mixed_trace({{"a", -5.0}}, 1.0, 1), dlbench::Error);
}

}  // namespace
