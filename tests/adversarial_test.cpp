// Adversarial attack tests: FGSM perturbation semantics, Jacobian
// correctness vs numeric differentiation, JSMA behaviour, and sweep
// bookkeeping.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "adversarial/attacks.hpp"
#include "util/error.hpp"
#include "data/synthetic.hpp"
#include "frameworks/emulations.hpp"
#include "frameworks/registry.hpp"
#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace dlbench::adversarial {
namespace {

using frameworks::DatasetId;
using frameworks::FrameworkKind;
using runtime::Device;
using tensor::Shape;

Context cpu_ctx() {
  Context ctx;
  ctx.device = Device::cpu();
  ctx.training = false;
  return ctx;
}

// A small trained model shared by the attack tests (trained once).
struct TrainedFixture {
  data::DatasetPair mnist;
  nn::Sequential model;

  TrainedFixture() {
    data::MnistOptions d;
    d.train_samples = 400;
    d.test_samples = 100;
    mnist = data::synthetic_mnist(d);
    auto fw = frameworks::make_framework(FrameworkKind::kCaffe);
    auto config = frameworks::default_training_config(FrameworkKind::kCaffe,
                                                      DatasetId::kMnist);
    auto spec = frameworks::default_network_spec(FrameworkKind::kCaffe,
                                                 DatasetId::kMnist);
    util::Rng rng(7);
    model = fw->build_model(spec, Device::gpu(), rng);
    frameworks::TrainOptions opts;
    opts.scale.max_step_cap = 60;
    (void)fw->train(model, mnist.train, config, Device::gpu(), opts);
  }
};

TrainedFixture& fixture() {
  static TrainedFixture fx;
  return fx;
}

TEST(Fgsm, OneShotPerturbationIsBoundedByEpsilon) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  tensor::Tensor x = fx.mnist.test.sample(0);
  FgsmOptions opt;
  opt.epsilon = 0.02f;
  opt.max_iterations = 1;
  opt.clip = false;
  AttackOutcome out = fgsm_attack(fx.model, x, fx.mnist.test.labels[0], opt,
                                  ctx);
  EXPECT_EQ(out.iterations, 1);
  float max_abs = 0.f;
  for (std::int64_t i = 0; i < x.numel(); ++i)
    max_abs = std::max(max_abs,
                       std::fabs(out.adversarial_example.at(i) - x.at(i)));
  EXPECT_LE(max_abs, opt.epsilon + 1e-6f);
  EXPECT_GT(max_abs, 0.f);
}

TEST(Fgsm, ClipKeepsPixelsInRange) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  tensor::Tensor x = fx.mnist.test.sample(1);
  FgsmOptions opt;
  opt.epsilon = 0.5f;
  opt.max_iterations = 3;
  AttackOutcome out = fgsm_attack(fx.model, x, fx.mnist.test.labels[1], opt,
                                  ctx);
  for (float v : out.adversarial_example.data()) {
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 1.f);
  }
}

TEST(Fgsm, IteratedAttackFlipsPrediction) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  FgsmOptions opt;
  opt.epsilon = 0.05f;
  opt.max_iterations = 60;
  int successes = 0;
  int attempts = 0;
  for (std::int64_t i = 0; i < 10; ++i) {
    tensor::Tensor x = fx.mnist.test.sample(i);
    AttackOutcome out =
        fgsm_attack(fx.model, x, fx.mnist.test.labels[static_cast<std::size_t>(i)], opt, ctx);
    ++attempts;
    if (out.success) {
      ++successes;
      EXPECT_NE(out.final_class, out.source_class);
    }
  }
  EXPECT_GT(successes, attempts / 2) << "iterated FGSM should usually win";
}

TEST(Fgsm, RejectsBadArguments) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  tensor::Tensor x = fx.mnist.test.sample(0);
  FgsmOptions opt;
  opt.epsilon = 0.f;
  EXPECT_THROW(fgsm_attack(fx.model, x, 0, opt, ctx), dlbench::Error);
  opt.epsilon = 0.1f;
  opt.max_iterations = 0;
  EXPECT_THROW(fgsm_attack(fx.model, x, 0, opt, ctx), dlbench::Error);
  tensor::Tensor batch(Shape({2, 1, 28, 28}));
  opt.max_iterations = 1;
  EXPECT_THROW(fgsm_attack(fx.model, batch, 0, opt, ctx), dlbench::Error);
}

TEST(Jacobian, MatchesNumericDifferentiation) {
  // Tiny fc model so the full Jacobian is cheap to verify.
  util::Rng rng(8);
  nn::Sequential model;
  model.add(std::make_unique<nn::Flatten>());
  model.add(std::make_unique<nn::Linear>(16, 10,
                                         tensor::InitKind::kXavierUniform,
                                         rng));
  Context ctx = cpu_ctx();
  util::Rng xr(9);
  tensor::Tensor x = tensor::Tensor::randn(Shape({1, 1, 4, 4}), xr);

  tensor::Tensor jac = logit_jacobian(model, x, 10, ctx);
  ASSERT_EQ(jac.shape(), Shape({10, 16}));

  const float eps = 1e-2f;
  for (std::int64_t j = 0; j < 10; ++j) {
    for (std::int64_t i = 0; i < 16; ++i) {
      tensor::Tensor xp = x.clone(), xm = x.clone();
      xp.data()[i] += eps;
      xm.data()[i] -= eps;
      const float fp = model.forward(xp, ctx).at(j);
      const float fm = model.forward(xm, ctx).at(j);
      const float numeric = (fp - fm) / (2 * eps);
      ASSERT_NEAR(jac.at(j * 16 + i), numeric, 1e-3f)
          << "class " << j << " input " << i;
    }
  }
}

TEST(Jsma, TargetedAttackIncreasesTargetLogit) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  tensor::Tensor x = fx.mnist.test.sample(2);
  const std::int64_t source = fx.mnist.test.labels[2];
  const std::int64_t target = (source + 3) % 10;

  const float before = fx.model.forward(x, ctx).at(target);
  JsmaOptions opt;
  opt.theta = 0.6f;
  opt.max_distortion = 0.08;
  AttackOutcome out = jsma_attack(fx.model, x, target, opt, ctx);
  const float after = fx.model.forward(out.adversarial_example, ctx).at(target);
  EXPECT_GT(after, before);
  EXPECT_GT(out.iterations, 0);
  EXPECT_LE(out.distortion_l0, opt.max_distortion + 1e-6);
  if (out.success) EXPECT_EQ(out.final_class, target);
}

TEST(Jsma, OnlyIncreasesPixelsAndRespectsClip) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  tensor::Tensor x = fx.mnist.test.sample(3);
  JsmaOptions opt;
  opt.theta = 1.0f;
  opt.max_distortion = 0.05;
  AttackOutcome out = jsma_attack(fx.model, x, 7, opt, ctx);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_GE(out.adversarial_example.at(i), x.at(i) - 1e-6f);
    EXPECT_LE(out.adversarial_example.at(i), 1.f);
  }
}

TEST(Jsma, AlreadyTargetClassIsTrivialSuccess) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  // Find a correctly classified sample and attack toward its own class.
  for (std::int64_t i = 0; i < fx.mnist.test.size(); ++i) {
    tensor::Tensor x = fx.mnist.test.sample(i);
    Context ectx = ctx;
    auto pred = fx.model.predict(x, ectx);
    if (pred[0] != fx.mnist.test.labels[static_cast<std::size_t>(i)]) continue;
    AttackOutcome out = jsma_attack(fx.model, x, pred[0], JsmaOptions{}, ctx);
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.iterations, 0);
    EXPECT_DOUBLE_EQ(out.distortion_l0, 0.0);
    return;
  }
  GTEST_SKIP() << "model classified nothing correctly";
}

TEST(Sweeps, FgsmSweepBookkeeping) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  FgsmOptions opt;
  opt.epsilon = 0.05f;
  opt.max_iterations = 25;
  UntargetedSweep sweep =
      fgsm_sweep(fx.model, fx.mnist.test, opt, ctx, /*max_per_class=*/3);
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_LE(sweep.attempts[c], 3);
    EXPECT_GE(sweep.success_rate[c], 0.0);
    EXPECT_LE(sweep.success_rate[c], 1.0);
    // Destinations only counted for successes, never the source class.
    EXPECT_EQ(sweep.destination_counts[c][c], 0);
    std::int64_t dest_total = 0;
    for (std::size_t t = 0; t < 10; ++t) dest_total += sweep.destination_counts[c][t];
    EXPECT_LE(dest_total, sweep.attempts[c]);
  }
  // Screening and crafting are timed separately now; both phases ran.
  EXPECT_GT(sweep.timing.screening_s, 0.0);
  EXPECT_GT(sweep.timing.craft_wall_s, 0.0);
  EXPECT_EQ(sweep.timing.craft_time.count(), sweep.total_attacks);
}

TEST(Sweeps, JsmaSweepBookkeeping) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  JsmaOptions opt;
  opt.theta = 1.0f;
  opt.max_distortion = 0.03;  // keep the test fast
  TargetedSweep sweep = jsma_sweep(fx.model, fx.mnist.test, /*source=*/1, opt,
                                   ctx, /*samples_per_target=*/2);
  EXPECT_EQ(sweep.attempts[1], 0);  // no self-target
  EXPECT_GT(sweep.total_attacks, 0);
  EXPECT_GT(sweep.mean_craft_time_s, 0.0);
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_GE(sweep.success_rate[t], 0.0);
    EXPECT_LE(sweep.success_rate[t], 1.0);
  }
}


TEST(NoiseBaseline, StaysWithinEpsilonAndClips) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  tensor::Tensor x = fx.mnist.test.sample(4);
  NoiseOptions opt;
  opt.epsilon = 0.05f;
  opt.max_trials = 5;
  AttackOutcome out =
      random_noise_attack(fx.model, x, fx.mnist.test.labels[4], opt, ctx);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float v = out.adversarial_example.at(i);
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 1.f);
    EXPECT_LE(std::fabs(v - std::clamp(x.at(i), 0.f, 1.f)),
              opt.epsilon + 1e-5f);
  }
  EXPECT_LE(out.iterations, opt.max_trials);
}

TEST(NoiseBaseline, GradientAttackBeatsRandomAtEqualBudget) {
  // The paper contrasts gradient-crafted examples with random
  // (untargeted) perturbations; FGSM must win at the same epsilon.
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  int fgsm_wins = 0, noise_wins = 0;
  FgsmOptions fgsm;
  fgsm.epsilon = 0.01f;
  fgsm.max_iterations = 10;
  NoiseOptions noise;
  noise.epsilon = 0.10f;  // even with 10x the budget...
  noise.max_trials = 10;
  for (std::int64_t i = 0; i < 12; ++i) {
    tensor::Tensor x = fx.mnist.test.sample(i);
    const std::int64_t label =
        fx.mnist.test.labels[static_cast<std::size_t>(i)];
    if (fgsm_attack(fx.model, x, label, fgsm, ctx).success) ++fgsm_wins;
    if (random_noise_attack(fx.model, x, label, noise, ctx).success)
      ++noise_wins;
  }
  EXPECT_GE(fgsm_wins, noise_wins);
}

TEST(NoiseBaseline, RejectsBadArguments) {
  auto& fx = fixture();
  Context ctx = cpu_ctx();
  tensor::Tensor x = fx.mnist.test.sample(0);
  NoiseOptions opt;
  opt.epsilon = 0.f;
  EXPECT_THROW(random_noise_attack(fx.model, x, 0, opt, ctx),
               dlbench::Error);
  opt.epsilon = 0.1f;
  opt.max_trials = 0;
  EXPECT_THROW(random_noise_attack(fx.model, x, 0, opt, ctx),
               dlbench::Error);
}

}  // namespace
}  // namespace dlbench::adversarial
