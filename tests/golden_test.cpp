// Golden regression tests: one tiny MNIST cell per emulated framework,
// trained serially (Device::cpu()) so results are machine- and
// thread-count-independent, compared against recorded accuracy/loss
// bands. The bands are tight enough to catch a 1e-2 (one percentage
// point / 1e-2 loss) perturbation — the meta test below proves it with
// injected offsets — while leaving headroom for benign toolchain noise.
//
// To re-record after an intentional numerics change:
//   DLB_GOLDEN_RECORD=1 ./build/tests/golden_test
// and paste the printed table over kGolden.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/harness.hpp"
#include "runtime/device.hpp"

namespace dlbench::core {
namespace {

using frameworks::FrameworkKind;

constexpr double kAccuracyBandPp = 0.75;  // percentage points
constexpr double kLossBand = 5e-3;

struct GoldenCell {
  FrameworkKind fw;
  const char* name;
  double accuracy_pct;
  double final_loss;
};

// Recorded from a DLB_GOLDEN_RECORD=1 run at HarnessOptions::test_profile()
// on Device::cpu(); see header comment.
const GoldenCell kGolden[] = {
    {FrameworkKind::kTensorFlow, "TF", 42.0000, 2.044806},
    {FrameworkKind::kCaffe, "Caffe", 99.0000, 0.111801},
    {FrameworkKind::kTorch, "Torch", 100.0000, 0.079914},
};

bool recording() { return std::getenv("DLB_GOLDEN_RECORD") != nullptr; }

bool within_band(double value, double golden, double band) {
  return std::abs(value - golden) <= band;
}

// Each cell is trained once per process and shared across tests.
const RunRecord& cell(FrameworkKind fw) {
  static std::map<FrameworkKind, RunRecord> cache;
  auto it = cache.find(fw);
  if (it == cache.end()) {
    static Harness harness(HarnessOptions::test_profile());
    it = cache
             .emplace(fw, harness.run_default(fw, frameworks::DatasetId::kMnist,
                                              Device::cpu()))
             .first;
  }
  return it->second;
}

class GoldenTest : public ::testing::TestWithParam<GoldenCell> {};

TEST_P(GoldenTest, MnistCellMatchesRecordedBands) {
  const GoldenCell& g = GetParam();
  const RunRecord& rec = cell(g.fw);
  ASSERT_FALSE(rec.failed()) << rec.error;
  ASSERT_TRUE(rec.train.converged) << g.name;
  if (recording()) {
    std::printf("    {FrameworkKind::k%s, \"%s\", %.4f, %.6f},\n",
                g.fw == FrameworkKind::kTensorFlow
                    ? "TensorFlow"
                    : (g.fw == FrameworkKind::kCaffe ? "Caffe" : "Torch"),
                g.name, rec.eval.accuracy_pct, rec.train.final_loss);
    GTEST_SKIP() << "recording goldens, not asserting";
  }
  EXPECT_TRUE(within_band(rec.eval.accuracy_pct, g.accuracy_pct,
                          kAccuracyBandPp))
      << g.name << " accuracy " << rec.eval.accuracy_pct
      << " outside golden band " << g.accuracy_pct << " +- "
      << kAccuracyBandPp;
  EXPECT_TRUE(within_band(rec.train.final_loss, g.final_loss, kLossBand))
      << g.name << " final loss " << rec.train.final_loss
      << " outside golden band " << g.final_loss << " +- " << kLossBand;
}

// The bands must reject an injected 1e-2 perturbation (one percentage
// point of accuracy; 1e-2 of loss) in either direction — i.e. this
// suite would catch a regression of that size, the acceptance bar.
TEST_P(GoldenTest, BandsCatchInjectedPerturbation) {
  const GoldenCell& g = GetParam();
  const RunRecord& rec = cell(g.fw);
  ASSERT_FALSE(rec.failed()) << rec.error;
  if (recording()) GTEST_SKIP() << "recording goldens, not asserting";
  for (const double sign : {+1.0, -1.0}) {
    EXPECT_FALSE(within_band(rec.eval.accuracy_pct + sign * 1.0,
                             g.accuracy_pct, kAccuracyBandPp))
        << g.name << " band misses a " << sign << "pp accuracy shift";
    EXPECT_FALSE(within_band(rec.train.final_loss + sign * 1e-2,
                             g.final_loss, kLossBand))
        << g.name << " band misses a " << sign << "*1e-2 loss shift";
  }
}

INSTANTIATE_TEST_SUITE_P(Frameworks, GoldenTest, ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// Serial training at a fixed seed is fully deterministic: the same cell
// run twice yields bitwise-identical accuracy and loss. This is what
// makes tight golden bands tenable at all.
TEST(GoldenDeterminismTest, RepeatedCellIsBitwiseIdentical) {
  Harness harness(HarnessOptions::test_profile());
  const RunRecord a = harness.run_default(
      FrameworkKind::kCaffe, frameworks::DatasetId::kMnist, Device::cpu());
  const RunRecord b = harness.run_default(
      FrameworkKind::kCaffe, frameworks::DatasetId::kMnist, Device::cpu());
  ASSERT_FALSE(a.failed()) << a.error;
  ASSERT_FALSE(b.failed()) << b.error;
  EXPECT_EQ(a.eval.accuracy_pct, b.eval.accuracy_pct);
  EXPECT_EQ(a.eval.correct, b.eval.correct);
  EXPECT_EQ(a.train.final_loss, b.train.final_loss);
  EXPECT_EQ(a.train.steps, b.train.steps);
}

}  // namespace
}  // namespace dlbench::core
