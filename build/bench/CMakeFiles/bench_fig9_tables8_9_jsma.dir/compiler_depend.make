# Empty compiler generated dependencies file for bench_fig9_tables8_9_jsma.
# This may be replaced when dependencies are built.
