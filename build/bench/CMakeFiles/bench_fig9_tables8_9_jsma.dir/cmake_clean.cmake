file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_tables8_9_jsma.dir/bench_fig9_tables8_9_jsma.cpp.o"
  "CMakeFiles/bench_fig9_tables8_9_jsma.dir/bench_fig9_tables8_9_jsma.cpp.o.d"
  "bench_fig9_tables8_9_jsma"
  "bench_fig9_tables8_9_jsma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tables8_9_jsma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
