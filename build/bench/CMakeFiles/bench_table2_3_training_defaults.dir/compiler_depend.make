# Empty compiler generated dependencies file for bench_table2_3_training_defaults.
# This may be replaced when dependencies are built.
