file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cifar_dataset_defaults.dir/bench_fig4_cifar_dataset_defaults.cpp.o"
  "CMakeFiles/bench_fig4_cifar_dataset_defaults.dir/bench_fig4_cifar_dataset_defaults.cpp.o.d"
  "bench_fig4_cifar_dataset_defaults"
  "bench_fig4_cifar_dataset_defaults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cifar_dataset_defaults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
