# Empty compiler generated dependencies file for bench_fig4_cifar_dataset_defaults.
# This may be replaced when dependencies are built.
