
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_cifar_dataset_defaults.cpp" "bench/CMakeFiles/bench_fig4_cifar_dataset_defaults.dir/bench_fig4_cifar_dataset_defaults.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_cifar_dataset_defaults.dir/bench_fig4_cifar_dataset_defaults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/dlb_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/dlb_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/adversarial/CMakeFiles/dlb_adversarial.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dlb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dlb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dlb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
