# Empty compiler generated dependencies file for bench_fig6_mnist_framework_defaults.
# This may be replaced when dependencies are built.
