file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_mnist_framework_defaults.dir/bench_fig6_mnist_framework_defaults.cpp.o"
  "CMakeFiles/bench_fig6_mnist_framework_defaults.dir/bench_fig6_mnist_framework_defaults.cpp.o.d"
  "bench_fig6_mnist_framework_defaults"
  "bench_fig6_mnist_framework_defaults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mnist_framework_defaults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
