file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_caffe_convergence.dir/bench_fig5_caffe_convergence.cpp.o"
  "CMakeFiles/bench_fig5_caffe_convergence.dir/bench_fig5_caffe_convergence.cpp.o.d"
  "bench_fig5_caffe_convergence"
  "bench_fig5_caffe_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_caffe_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
