# Empty compiler generated dependencies file for bench_ablation_execution.
# This may be replaced when dependencies are built.
