file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_execution.dir/bench_ablation_execution.cpp.o"
  "CMakeFiles/bench_ablation_execution.dir/bench_ablation_execution.cpp.o.d"
  "bench_ablation_execution"
  "bench_ablation_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
