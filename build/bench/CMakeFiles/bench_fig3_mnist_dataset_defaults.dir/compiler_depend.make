# Empty compiler generated dependencies file for bench_fig3_mnist_dataset_defaults.
# This may be replaced when dependencies are built.
