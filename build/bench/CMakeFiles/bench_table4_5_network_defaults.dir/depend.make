# Empty dependencies file for bench_table4_5_network_defaults.
# This may be replaced when dependencies are built.
