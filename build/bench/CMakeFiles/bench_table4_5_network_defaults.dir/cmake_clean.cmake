file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_5_network_defaults.dir/bench_table4_5_network_defaults.cpp.o"
  "CMakeFiles/bench_table4_5_network_defaults.dir/bench_table4_5_network_defaults.cpp.o.d"
  "bench_table4_5_network_defaults"
  "bench_table4_5_network_defaults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_5_network_defaults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
