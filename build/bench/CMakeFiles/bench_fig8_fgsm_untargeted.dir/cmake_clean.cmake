file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fgsm_untargeted.dir/bench_fig8_fgsm_untargeted.cpp.o"
  "CMakeFiles/bench_fig8_fgsm_untargeted.dir/bench_fig8_fgsm_untargeted.cpp.o.d"
  "bench_fig8_fgsm_untargeted"
  "bench_fig8_fgsm_untargeted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fgsm_untargeted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
