# Empty dependencies file for bench_fig8_fgsm_untargeted.
# This may be replaced when dependencies are built.
