# Empty dependencies file for bench_fig7_cifar_framework_defaults.
# This may be replaced when dependencies are built.
