# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/matmul_test[1]_include.cmake")
include("/root/repo/build/tests/conv_test[1]_include.cmake")
include("/root/repo/build/tests/layers_test[1]_include.cmake")
include("/root/repo/build/tests/network_spec_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/preprocess_test[1]_include.cmake")
include("/root/repo/build/tests/augment_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/frameworks_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
