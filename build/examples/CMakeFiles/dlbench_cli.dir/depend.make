# Empty dependencies file for dlbench_cli.
# This may be replaced when dependencies are built.
