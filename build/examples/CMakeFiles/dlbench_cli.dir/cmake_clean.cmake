file(REMOVE_RECURSE
  "CMakeFiles/dlbench_cli.dir/dlbench_cli.cpp.o"
  "CMakeFiles/dlbench_cli.dir/dlbench_cli.cpp.o.d"
  "dlbench_cli"
  "dlbench_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
