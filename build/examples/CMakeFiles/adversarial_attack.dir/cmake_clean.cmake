file(REMOVE_RECURSE
  "CMakeFiles/adversarial_attack.dir/adversarial_attack.cpp.o"
  "CMakeFiles/adversarial_attack.dir/adversarial_attack.cpp.o.d"
  "adversarial_attack"
  "adversarial_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
