# Empty compiler generated dependencies file for dlb_frameworks.
# This may be replaced when dependencies are built.
