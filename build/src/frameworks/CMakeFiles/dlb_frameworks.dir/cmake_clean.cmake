file(REMOVE_RECURSE
  "CMakeFiles/dlb_frameworks.dir/config.cpp.o"
  "CMakeFiles/dlb_frameworks.dir/config.cpp.o.d"
  "CMakeFiles/dlb_frameworks.dir/emulations.cpp.o"
  "CMakeFiles/dlb_frameworks.dir/emulations.cpp.o.d"
  "CMakeFiles/dlb_frameworks.dir/framework.cpp.o"
  "CMakeFiles/dlb_frameworks.dir/framework.cpp.o.d"
  "CMakeFiles/dlb_frameworks.dir/registry.cpp.o"
  "CMakeFiles/dlb_frameworks.dir/registry.cpp.o.d"
  "libdlb_frameworks.a"
  "libdlb_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
