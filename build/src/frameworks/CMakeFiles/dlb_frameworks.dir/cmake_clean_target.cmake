file(REMOVE_RECURSE
  "libdlb_frameworks.a"
)
