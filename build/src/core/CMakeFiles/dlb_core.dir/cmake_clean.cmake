file(REMOVE_RECURSE
  "CMakeFiles/dlb_core.dir/harness.cpp.o"
  "CMakeFiles/dlb_core.dir/harness.cpp.o.d"
  "CMakeFiles/dlb_core.dir/report.cpp.o"
  "CMakeFiles/dlb_core.dir/report.cpp.o.d"
  "libdlb_core.a"
  "libdlb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
