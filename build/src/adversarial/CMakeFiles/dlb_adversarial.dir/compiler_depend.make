# Empty compiler generated dependencies file for dlb_adversarial.
# This may be replaced when dependencies are built.
