file(REMOVE_RECURSE
  "CMakeFiles/dlb_adversarial.dir/attacks.cpp.o"
  "CMakeFiles/dlb_adversarial.dir/attacks.cpp.o.d"
  "libdlb_adversarial.a"
  "libdlb_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
