file(REMOVE_RECURSE
  "libdlb_adversarial.a"
)
