file(REMOVE_RECURSE
  "libdlb_optim.a"
)
