file(REMOVE_RECURSE
  "CMakeFiles/dlb_optim.dir/optimizer.cpp.o"
  "CMakeFiles/dlb_optim.dir/optimizer.cpp.o.d"
  "libdlb_optim.a"
  "libdlb_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
