# Empty compiler generated dependencies file for dlb_optim.
# This may be replaced when dependencies are built.
