file(REMOVE_RECURSE
  "libdlb_data.a"
)
