file(REMOVE_RECURSE
  "CMakeFiles/dlb_data.dir/augment.cpp.o"
  "CMakeFiles/dlb_data.dir/augment.cpp.o.d"
  "CMakeFiles/dlb_data.dir/dataset.cpp.o"
  "CMakeFiles/dlb_data.dir/dataset.cpp.o.d"
  "CMakeFiles/dlb_data.dir/preprocess.cpp.o"
  "CMakeFiles/dlb_data.dir/preprocess.cpp.o.d"
  "CMakeFiles/dlb_data.dir/synthetic.cpp.o"
  "CMakeFiles/dlb_data.dir/synthetic.cpp.o.d"
  "libdlb_data.a"
  "libdlb_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
