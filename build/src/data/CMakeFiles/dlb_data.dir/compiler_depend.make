# Empty compiler generated dependencies file for dlb_data.
# This may be replaced when dependencies are built.
