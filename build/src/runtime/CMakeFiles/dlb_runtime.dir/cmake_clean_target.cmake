file(REMOVE_RECURSE
  "libdlb_runtime.a"
)
