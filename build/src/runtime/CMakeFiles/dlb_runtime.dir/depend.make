# Empty dependencies file for dlb_runtime.
# This may be replaced when dependencies are built.
