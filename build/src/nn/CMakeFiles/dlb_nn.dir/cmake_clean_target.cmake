file(REMOVE_RECURSE
  "libdlb_nn.a"
)
