
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/dlb_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/dlb_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv_direct.cpp" "src/nn/CMakeFiles/dlb_nn.dir/conv_direct.cpp.o" "gcc" "src/nn/CMakeFiles/dlb_nn.dir/conv_direct.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/dlb_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/dlb_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/network_spec.cpp" "src/nn/CMakeFiles/dlb_nn.dir/network_spec.cpp.o" "gcc" "src/nn/CMakeFiles/dlb_nn.dir/network_spec.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/dlb_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/dlb_nn.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dlb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
