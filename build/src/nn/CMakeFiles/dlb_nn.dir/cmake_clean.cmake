file(REMOVE_RECURSE
  "CMakeFiles/dlb_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/dlb_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/dlb_nn.dir/conv_direct.cpp.o"
  "CMakeFiles/dlb_nn.dir/conv_direct.cpp.o.d"
  "CMakeFiles/dlb_nn.dir/layers.cpp.o"
  "CMakeFiles/dlb_nn.dir/layers.cpp.o.d"
  "CMakeFiles/dlb_nn.dir/network_spec.cpp.o"
  "CMakeFiles/dlb_nn.dir/network_spec.cpp.o.d"
  "CMakeFiles/dlb_nn.dir/sequential.cpp.o"
  "CMakeFiles/dlb_nn.dir/sequential.cpp.o.d"
  "libdlb_nn.a"
  "libdlb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
