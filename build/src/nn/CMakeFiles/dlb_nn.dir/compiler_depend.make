# Empty compiler generated dependencies file for dlb_nn.
# This may be replaced when dependencies are built.
