file(REMOVE_RECURSE
  "CMakeFiles/dlb_tensor.dir/conv.cpp.o"
  "CMakeFiles/dlb_tensor.dir/conv.cpp.o.d"
  "CMakeFiles/dlb_tensor.dir/init.cpp.o"
  "CMakeFiles/dlb_tensor.dir/init.cpp.o.d"
  "CMakeFiles/dlb_tensor.dir/matmul.cpp.o"
  "CMakeFiles/dlb_tensor.dir/matmul.cpp.o.d"
  "CMakeFiles/dlb_tensor.dir/ops.cpp.o"
  "CMakeFiles/dlb_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/dlb_tensor.dir/pool.cpp.o"
  "CMakeFiles/dlb_tensor.dir/pool.cpp.o.d"
  "CMakeFiles/dlb_tensor.dir/shape.cpp.o"
  "CMakeFiles/dlb_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/dlb_tensor.dir/tensor.cpp.o"
  "CMakeFiles/dlb_tensor.dir/tensor.cpp.o.d"
  "libdlb_tensor.a"
  "libdlb_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
