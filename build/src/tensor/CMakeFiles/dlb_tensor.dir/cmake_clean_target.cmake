file(REMOVE_RECURSE
  "libdlb_tensor.a"
)
