# Empty compiler generated dependencies file for dlb_tensor.
# This may be replaced when dependencies are built.
