file(REMOVE_RECURSE
  "CMakeFiles/dlb_util.dir/entropy.cpp.o"
  "CMakeFiles/dlb_util.dir/entropy.cpp.o.d"
  "CMakeFiles/dlb_util.dir/format.cpp.o"
  "CMakeFiles/dlb_util.dir/format.cpp.o.d"
  "CMakeFiles/dlb_util.dir/rng.cpp.o"
  "CMakeFiles/dlb_util.dir/rng.cpp.o.d"
  "CMakeFiles/dlb_util.dir/table.cpp.o"
  "CMakeFiles/dlb_util.dir/table.cpp.o.d"
  "libdlb_util.a"
  "libdlb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
