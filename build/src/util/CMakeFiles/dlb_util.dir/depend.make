# Empty dependencies file for dlb_util.
# This may be replaced when dependencies are built.
