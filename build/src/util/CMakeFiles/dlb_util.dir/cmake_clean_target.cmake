file(REMOVE_RECURSE
  "libdlb_util.a"
)
