// Microbenchmarks for the tensor kernels that dominate every
// experiment: GEMM, im2col convolution, direct convolution, pooling,
// softmax. Uses google-benchmark. Shapes are taken from the paper's
// actual layers (Tables IV and V).

#include <benchmark/benchmark.h>

#include "nn/conv_direct.hpp"
#include "nn/layers.hpp"
#include "tensor/conv.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/pool.hpp"

namespace {

using namespace dlbench;
using runtime::Device;
using tensor::Shape;
using tensor::Tensor;

Device device_for(bool parallel) {
  return parallel ? Device::gpu() : Device::cpu();
}

// GEMM at the TF-MNIST fc1 shape: [batch, 3136] x [3136, 1024].
void BM_MatmulFc1(benchmark::State& state) {
  const auto batch = state.range(0);
  const Device dev = device_for(state.range(1));
  util::Rng rng(1);
  Tensor a = Tensor::randn(Shape({batch, 3136}), rng);
  Tensor b = Tensor::randn(Shape({3136, 1024}), rng);
  for (auto _ : state) {
    Tensor c = tensor::matmul(a, b, dev);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * batch * 3136 * 1024 * 2);
}
BENCHMARK(BM_MatmulFc1)->Args({16, 0})->Args({16, 1})->Args({64, 1});

// Conv at the Caffe-MNIST conv1 shape: 1->20, 5x5, 28x28 input.
void BM_ConvGemmLenet1(benchmark::State& state) {
  const auto batch = state.range(0);
  const Device dev = device_for(state.range(1));
  tensor::ConvGeom g{1, 28, 28, 20, 5, 1, 0};
  util::Rng rng(2);
  Tensor x = Tensor::randn(Shape({batch, 1, 28, 28}), rng);
  Tensor w = Tensor::randn(Shape({20, g.patch_size()}), rng);
  Tensor b = Tensor::randn(Shape({20}), rng);
  for (auto _ : state) {
    Tensor y = tensor::conv2d_forward(x, w, b, g, dev);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_ConvGemmLenet1)->Args({16, 0})->Args({16, 1})->Args({64, 1});

// GEMM vs direct convolution — the Torch CPU/GPU implementation split.
void BM_ConvDirectVsGemm(benchmark::State& state) {
  const bool direct = state.range(0);
  tensor::ConvGeom g{32, 11, 11, 64, 5, 1, 0};  // Torch MNIST conv2
  util::Rng rng(3);
  nn::Context ctx;
  ctx.device = Device::cpu();
  Tensor x = Tensor::randn(Shape({8, 32, 11, 11}), rng);
  if (direct) {
    nn::Conv2dDirect conv(g, tensor::InitKind::kLecunUniform, rng);
    for (auto _ : state) {
      Tensor y = conv.forward(x, ctx);
      benchmark::DoNotOptimize(y.raw());
    }
  } else {
    nn::Conv2d conv(g, tensor::InitKind::kLecunUniform, rng);
    for (auto _ : state) {
      Tensor y = conv.forward(x, ctx);
      benchmark::DoNotOptimize(y.raw());
    }
  }
}
BENCHMARK(BM_ConvDirectVsGemm)->Arg(0)->Arg(1);

void BM_MaxPool(benchmark::State& state) {
  const Device dev = device_for(state.range(0));
  tensor::PoolGeom g{64, 32, 32, 3, 2, false};
  util::Rng rng(4);
  Tensor x = Tensor::randn(Shape({32, 64, 32, 32}), rng);
  std::vector<std::int32_t> argmax;
  for (auto _ : state) {
    Tensor y = tensor::maxpool_forward(x, g, argmax, dev);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_MaxPool)->Arg(0)->Arg(1);

void BM_SoftmaxXent(benchmark::State& state) {
  const Device dev = device_for(state.range(0));
  util::Rng rng(5);
  Tensor logits = Tensor::randn(Shape({256, 10}), rng);
  std::vector<std::int64_t> labels(256);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 10;
  for (auto _ : state) {
    Tensor p = tensor::softmax_rows(logits, dev);
    const double loss = tensor::cross_entropy_mean(p, labels);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_SoftmaxXent)->Arg(0)->Arg(1);

void BM_Lrn(benchmark::State& state) {
  util::Rng rng(6);
  nn::Context ctx;
  ctx.device = device_for(state.range(0));
  nn::LocalResponseNorm lrn;
  Tensor x = Tensor::randn(Shape({32, 64, 15, 15}), rng);
  for (auto _ : state) {
    Tensor y = lrn.forward(x, ctx);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_Lrn)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
