// Microbenchmarks for the tensor kernels that dominate every
// experiment: GEMM, im2col convolution, direct convolution, pooling,
// softmax. Uses google-benchmark. Shapes are taken from the paper's
// actual layers (Tables IV and V), plus square GEMM sizes for the
// packed-vs-legacy kernel comparison (DESIGN.md §11, EXPERIMENTS.md).
//
// Every bench reports arithmetic throughput (counter "GFLOPs", in
// GFLOP/s) and memory throughput (counter "GBps", in GB/s, counting
// each operand tensor once per pass) so regressions show up in units
// that are comparable across shapes; scripts/perf_smoke.sh keys off
// the GFLOPs counter of the GEMM/conv benches.

#include <benchmark/benchmark.h>

#include "nn/conv_direct.hpp"
#include "nn/layers.hpp"
#include "tensor/conv.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/pool.hpp"

namespace {

using namespace dlbench;
using runtime::Device;
using tensor::Shape;
using tensor::Tensor;

Device device_for(bool parallel) {
  return parallel ? Device::gpu() : Device::cpu();
}

// Attach per-second rate counters: `flops` and `bytes` are per
// iteration; google-benchmark scales by iterations/elapsed itself.
void set_rates(benchmark::State& state, double flops, double bytes) {
  using benchmark::Counter;
  state.counters["GFLOPs"] =
      Counter(flops * 1e-9, Counter::kIsIterationInvariantRate);
  state.counters["GBps"] =
      Counter(bytes * 1e-9, Counter::kIsIterationInvariantRate);
}

double gemm_flops(double m, double k, double n) { return 2.0 * m * k * n; }
double gemm_bytes(double m, double k, double n) {
  return 4.0 * (m * k + k * n + m * n);
}

// GEMM at the TF-MNIST fc1 shape: [batch, 3136] x [3136, 1024].
void BM_MatmulFc1(benchmark::State& state) {
  const auto batch = state.range(0);
  const Device dev = device_for(state.range(1));
  util::Rng rng(1);
  Tensor a = Tensor::randn(Shape({batch, 3136}), rng);
  Tensor b = Tensor::randn(Shape({3136, 1024}), rng);
  for (auto _ : state) {
    Tensor c = tensor::matmul(a, b, dev);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * batch * 3136 * 1024 * 2);
  set_rates(state, gemm_flops(static_cast<double>(batch), 3136, 1024),
            gemm_bytes(static_cast<double>(batch), 3136, 1024));
}
BENCHMARK(BM_MatmulFc1)->Args({16, 0})->Args({16, 1})->Args({64, 1})->UseRealTime();

// Square GEMM through the packed SIMD kernel (the production matmul
// path) — compare directly against BM_GemmRows at the same size.
void BM_GemmPacked(benchmark::State& state) {
  const auto s = state.range(0);
  const Device dev = device_for(true);
  util::Rng rng(7);
  Tensor a = Tensor::randn(Shape({s, s}), rng);
  Tensor b = Tensor::randn(Shape({s, s}), rng);
  for (auto _ : state) {
    Tensor c = tensor::matmul(a, b, dev);
    benchmark::DoNotOptimize(c.raw());
  }
  const double d = static_cast<double>(s);
  set_rates(state, gemm_flops(d, d, d), gemm_bytes(d, d, d));
}
BENCHMARK(BM_GemmPacked)->Arg(256)->Arg(384)->Arg(512)->UseRealTime();

// The same sizes through the retained legacy row-blocked kernel — the
// pre-packing baseline the ">= 2x" kernel acceptance is measured
// against (scripts/perf_smoke.sh checks the ratio).
void BM_GemmRows(benchmark::State& state) {
  const auto s = state.range(0);
  const Device dev = device_for(true);
  util::Rng rng(7);
  Tensor a = Tensor::randn(Shape({s, s}), rng);
  Tensor b = Tensor::randn(Shape({s, s}), rng);
  for (auto _ : state) {
    Tensor c = tensor::matmul_rows_reference(a, b, dev);
    benchmark::DoNotOptimize(c.raw());
  }
  const double d = static_cast<double>(s);
  set_rates(state, gemm_flops(d, d, d), gemm_bytes(d, d, d));
}
BENCHMARK(BM_GemmRows)->Arg(256)->Arg(384)->Arg(512)->UseRealTime();

// Conv at the Caffe-MNIST conv1 shape: 1->20, 5x5, 28x28 input.
void BM_ConvGemmLenet1(benchmark::State& state) {
  const auto batch = state.range(0);
  const Device dev = device_for(state.range(1));
  tensor::ConvGeom g{1, 28, 28, 20, 5, 1, 0};
  util::Rng rng(2);
  Tensor x = Tensor::randn(Shape({batch, 1, 28, 28}), rng);
  Tensor w = Tensor::randn(Shape({20, g.patch_size()}), rng);
  Tensor b = Tensor::randn(Shape({20}), rng);
  for (auto _ : state) {
    Tensor y = tensor::conv2d_forward(x, w, b, g, dev);
    benchmark::DoNotOptimize(y.raw());
  }
  const double positions =
      static_cast<double>(batch) * g.out_h() * g.out_w();
  set_rates(state,
            2.0 * positions * g.out_c * static_cast<double>(g.patch_size()),
            4.0 * (static_cast<double>(x.numel()) + w.numel() + b.numel() +
                   positions * g.out_c));
}
BENCHMARK(BM_ConvGemmLenet1)->Args({16, 0})->Args({16, 1})->Args({64, 1})->UseRealTime();

// GEMM vs direct convolution — the Torch CPU/GPU implementation split.
void BM_ConvDirectVsGemm(benchmark::State& state) {
  const bool direct = state.range(0);
  tensor::ConvGeom g{32, 11, 11, 64, 5, 1, 0};  // Torch MNIST conv2
  util::Rng rng(3);
  nn::Context ctx;
  ctx.device = Device::cpu();
  const std::int64_t batch = 8;
  Tensor x = Tensor::randn(Shape({batch, 32, 11, 11}), rng);
  if (direct) {
    nn::Conv2dDirect conv(g, tensor::InitKind::kLecunUniform, rng);
    for (auto _ : state) {
      Tensor y = conv.forward(x, ctx);
      benchmark::DoNotOptimize(y.raw());
    }
  } else {
    nn::Conv2d conv(g, tensor::InitKind::kLecunUniform, rng);
    for (auto _ : state) {
      Tensor y = conv.forward(x, ctx);
      benchmark::DoNotOptimize(y.raw());
    }
  }
  const double positions =
      static_cast<double>(batch) * g.out_h() * g.out_w();
  set_rates(state,
            2.0 * positions * g.out_c * static_cast<double>(g.patch_size()),
            4.0 * (static_cast<double>(x.numel()) +
                   g.out_c * static_cast<double>(g.patch_size()) +
                   positions * g.out_c));
}
BENCHMARK(BM_ConvDirectVsGemm)->Arg(0)->Arg(1)->UseRealTime();

void BM_MaxPool(benchmark::State& state) {
  const Device dev = device_for(state.range(0));
  tensor::PoolGeom g{64, 32, 32, 3, 2, false};
  util::Rng rng(4);
  Tensor x = Tensor::randn(Shape({32, 64, 32, 32}), rng);
  std::vector<std::int32_t> argmax;
  Tensor probe = tensor::maxpool_forward(x, g, argmax, dev);
  for (auto _ : state) {
    Tensor y = tensor::maxpool_forward(x, g, argmax, dev);
    benchmark::DoNotOptimize(y.raw());
  }
  // One compare per window element counts as one "flop".
  set_rates(state, static_cast<double>(probe.numel()) * g.window * g.window,
            4.0 * (static_cast<double>(x.numel()) + probe.numel()));
}
BENCHMARK(BM_MaxPool)->Arg(0)->Arg(1)->UseRealTime();

void BM_SoftmaxXent(benchmark::State& state) {
  const Device dev = device_for(state.range(0));
  util::Rng rng(5);
  Tensor logits = Tensor::randn(Shape({256, 10}), rng);
  std::vector<std::int64_t> labels(256);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 10;
  for (auto _ : state) {
    Tensor p = tensor::softmax_rows(logits, dev);
    const double loss = tensor::cross_entropy_mean(p, labels);
    benchmark::DoNotOptimize(loss);
  }
  // max + sub + exp + sum + div per element, plus the log per row.
  set_rates(state, 5.0 * static_cast<double>(logits.numel()) + 256.0,
            4.0 * 2.0 * static_cast<double>(logits.numel()));
}
BENCHMARK(BM_SoftmaxXent)->Arg(0)->Arg(1)->UseRealTime();

void BM_Lrn(benchmark::State& state) {
  util::Rng rng(6);
  nn::Context ctx;
  ctx.device = device_for(state.range(0));
  nn::LocalResponseNorm lrn;
  Tensor x = Tensor::randn(Shape({32, 64, 15, 15}), rng);
  Tensor probe = lrn.forward(x, ctx);
  for (auto _ : state) {
    Tensor y = lrn.forward(x, ctx);
    benchmark::DoNotOptimize(y.raw());
  }
  // Square + windowed sum + scale + pow per element (window = 5).
  set_rates(state, static_cast<double>(x.numel()) * (5.0 + 3.0),
            4.0 * (static_cast<double>(x.numel()) + probe.numel()));
}
BENCHMARK(BM_Lrn)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
