// Figure 6 / Table VIc — framework-dependent default settings on MNIST
// (GPU): the full 3x3 grid of executing framework x setting owner.

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dlbench;
  using namespace dlbench::bench;

  BenchSession session(
      argc, argv, "Fig 6 / Table VIc",
      "MNIST under framework-dependent default settings (GPU, 3x3 grid)");
  Harness& harness = session.harness();
  const auto device = runtime::Device::gpu();

  std::vector<RunRecord> records;
  std::vector<PaperCell> paper;
  for (std::size_t f = 0; f < 3; ++f) {
    for (std::size_t s = 0; s < 3; ++s) {
      records.push_back(session.add(harness.run(
          frameworks::kAllFrameworks[f], frameworks::kAllFrameworks[s],
          DatasetId::kMnist, DatasetId::kMnist, device)));
      paper.push_back(kMnistFrameworkDependentGpu[f][s]);
    }
  }
  print_vs_paper("Fig 6 — MNIST, framework x setting grid", records, paper);

  // Records are indexed f*3+s.
  auto rec = [&](std::size_t f, std::size_t s) -> const RunRecord& {
    return records[f * 3 + s];
  };
  shape_check(
      "Caffe's MNIST setting gives every framework its fastest training "
      "(paper obs. 1: fewest epochs, simplest net)",
      rec(0, 1).train.train_time_s <= rec(0, 0).train.train_time_s &&
          rec(0, 1).train.train_time_s <= rec(0, 2).train.train_time_s &&
          rec(1, 1).train.train_time_s <= rec(1, 0).train.train_time_s &&
          rec(1, 1).train.train_time_s <= rec(1, 2).train.train_time_s &&
          rec(2, 1).train.train_time_s <= rec(2, 0).train.train_time_s &&
          rec(2, 1).train.train_time_s <= rec(2, 2).train.train_time_s);
  shape_check("every cell stays above 90% accuracy (paper range 94-99.9)",
              [&] {
                for (const auto& r : records)
                  if (r.eval.accuracy_pct < 90.0) return false;
                return true;
              }());
  shape_check("TF's own setting beats Caffe/Torch settings on TF",
              rec(0, 0).eval.accuracy_pct >=
                  rec(0, 1).eval.accuracy_pct - 0.5);
  return 0;
}
