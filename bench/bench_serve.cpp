// Serving benchmark: dynamic batching, replica scaling, backpressure.
//
// The paper measures training and offline testing time; this bench
// covers the deployment side those metrics stop short of — an
// inference server under load. Four experiments:
//
//   1. Batching ablation (open loop). Offered load is fixed at 2x the
//      measured max_batch=1 capacity, then max_batch sweeps 1 -> 8 ->
//      32 on the parallel device. Larger batches spread each forward
//      across more cores, so throughput rises and the p99 (queueing
//      collapse at batch=1) falls.
//   2. Replica scaling (closed loop, serial device): 1 -> 2 -> 4
//      replicas, throughput from concurrency instead of batch width.
//   3. Overload shedding (open loop at 4x capacity, small queue):
//      admission control rejects past the watermark while queue depth
//      stays bounded.
//   4. Framework emulation sweep (closed loop): the TF / Caffe / Torch
//      default MNIST nets served under one policy — the conv kernel and
//      network defaults shift the whole latency distribution.
//   5. Multi-tenant fleet (serve/fleet): mixed MNIST + CIFAR models
//      behind one FleetManager at ~2x aggregate overload. An isolated
//      gold-tenant baseline, then the weighted-fair + SLO-admission
//      control plane against the FIFO/no-admission ablation (gold p99
//      stays within a bounded factor of isolated while FIFO head-of-
//      line blocking collapses it), plus a drained decision-log replay
//      demonstrating the fleet determinism contract (DESIGN.md §14).
//
// Flags: session flags plus --quick (shorter cells) and
// --duration=SECONDS per cell.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "frameworks/predictor.hpp"
#include "runtime/fault.hpp"
#include "serve/fleet.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace {

using dlbench::core::ServeRecord;
using dlbench::core::TenantRecord;
using dlbench::frameworks::DatasetId;
using dlbench::frameworks::FrameworkKind;
using dlbench::runtime::Device;
using dlbench::serve::LoadGenOptions;
using dlbench::serve::LoadGenResult;
using dlbench::serve::ModelServer;
using dlbench::serve::ServerOptions;
using dlbench::serve::ServerStats;
using dlbench::tensor::Tensor;

/// Synthetic request pool: serving cost does not depend on pixel
/// values, so N(0,1) samples of the dataset's shape suffice.
std::vector<Tensor> make_inputs(DatasetId dataset, int count) {
  dlbench::util::Rng rng(99);
  const auto shape = dlbench::frameworks::sample_shape(dataset);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    inputs.push_back(Tensor::randn(shape, rng));
  return inputs;
}

/// Runs one load-gen cell against a fresh server and flattens the
/// client + server views into a ServeRecord.
ServeRecord run_cell(FrameworkKind framework, DatasetId dataset,
                     const ServerOptions& sopts, const LoadGenOptions& lopts,
                     const std::vector<Tensor>& inputs) {
  dlbench::frameworks::PredictorConfig pconfig;
  pconfig.framework = framework;
  pconfig.dataset = dataset;
  pconfig.device = sopts.device;
  ModelServer server(dlbench::frameworks::make_predictor(pconfig), sopts);
  const LoadGenResult load = run_load(server, inputs, lopts);
  server.shutdown();
  const ServerStats stats = server.stats();

  ServeRecord r;
  r.framework = to_string(framework);
  r.dataset = to_string(dataset);
  r.mode = to_string(lopts.mode);
  r.device = sopts.device.name();
  r.replicas = sopts.replicas;
  r.max_batch = sopts.max_batch;
  r.max_batch_delay_s = sopts.max_batch_delay_s;
  r.duration_s = load.duration_s;
  r.offered_rps = load.offered_rps;
  r.achieved_rps = load.achieved_rps;
  r.issued = load.issued;
  r.ok = load.ok;
  r.rejected = load.rejected;
  r.mean_batch = load.mean_batch;
  r.latency_mean_s = load.latency.mean_s();
  r.latency_p50_s = load.latency.percentile(50);
  r.latency_p95_s = load.latency.percentile(95);
  r.latency_p99_s = load.latency.percentile(99);
  r.latency_p999_s = load.latency.percentile(99.9);
  r.latency_max_s = load.latency.max_s();
  r.max_queue_depth = stats.max_queue_depth;
  r.busy_s = stats.busy_s;
  r.queue_wait_p50_s = stats.latency.queue_wait.percentile(50);
  r.queue_wait_p99_s = stats.latency.queue_wait.percentile(99);
  r.assemble_mean_s = stats.latency.assemble.mean_s();
  r.forward_mean_s = stats.latency.forward.mean_s();
  r.scatter_mean_s = stats.latency.scatter.mean_s();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using dlbench::bench::BenchSession;
  namespace fault = dlbench::runtime::fault;
  // Arm env-requested serve faults (DLB_CHAOS_*, DESIGN.md §13) for the
  // whole sweep, mirroring the Harness idiom for DLB_FAULT_*: e.g.
  //   DLB_CHAOS_ERROR_RATE=0.2 ./bench_serve --quick
  // measures every cell under a 20% transient-error burn.
  std::optional<fault::FaultScope> chaos_scope;
  {
    fault::FaultPlan plan = fault::FaultPlan::from_env();
    if (!fault::enabled() && plan.active()) chaos_scope.emplace(plan);
  }
  double duration_s = 0.4;
  BenchSession session(
      argc, argv, "bench_serve",
      "inference serving: dynamic batching, replicas, backpressure",
      [&duration_s](const std::string& arg) {
        if (arg == "--quick") {
          duration_s = 0.15;
          return true;
        }
        if (arg.rfind("--duration=", 0) == 0) {
          duration_s = std::atof(arg.c_str() + 11);
          return duration_s > 0.0;
        }
        return false;
      });

  const DatasetId dataset = DatasetId::kMnist;
  const FrameworkKind framework = FrameworkKind::kTensorFlow;
  const std::vector<Tensor> inputs = make_inputs(dataset, 64);

  // Calibrate: peak closed-loop throughput with no batching, so the
  // open-loop sweeps can pin offered load relative to capacity instead
  // of hardcoding a machine-dependent rate.
  ServerOptions base;
  base.sample_shape = dlbench::frameworks::sample_shape(dataset);
  base.replicas = 1;
  base.max_batch = 1;
  base.max_batch_delay_s = 0.0;
  base.device = Device::gpu();
  base.compute_probabilities = false;
  LoadGenOptions probe;
  probe.mode = LoadGenOptions::Mode::kClosedLoop;
  probe.clients = 2;
  probe.duration_s = duration_s;
  const ServeRecord calib =
      run_cell(framework, dataset, base, probe, inputs);
  const double capacity_rps = calib.achieved_rps;
  std::cout << "calibration: max_batch=1 capacity "
            << static_cast<long long>(capacity_rps) << " r/s\n\n";

  // 1. Batching ablation at fixed offered load (2x capacity).
  std::cout << "--- batching ablation (open loop, offered = 2x capacity) "
               "---\n";
  std::vector<ServeRecord> ablation;
  LoadGenOptions open;
  open.mode = LoadGenOptions::Mode::kOpenLoop;
  open.offered_rps = 2.0 * capacity_rps;
  open.duration_s = duration_s;
  for (const std::int64_t max_batch : {1, 8, 32}) {
    ServerOptions sopts = base;
    sopts.max_batch = max_batch;
    sopts.max_batch_delay_s = 0.002;
    ablation.push_back(
        session.add(run_cell(framework, dataset, sopts, open, inputs)));
  }
  // On a parallel host each extra batch slot is another core for the
  // forward, so throughput rises through 32 and p99 falls with it.
  // Single-core hosts only get the fixed-cost amortization, which
  // saturates (and can regress) past batch 8 — there the claim is that
  // the best batched cell beats unbatched serving.
  const auto& best_batched =
      ablation[1].achieved_rps >= ablation[2].achieved_rps ? ablation[1]
                                                           : ablation[2];
  if (std::thread::hardware_concurrency() >= 4) {
    dlbench::bench::shape_check(
        "throughput rises with max batch 1 -> 8 -> 32",
        ablation[0].achieved_rps < ablation[1].achieved_rps &&
            ablation[1].achieved_rps < ablation[2].achieved_rps);
    dlbench::bench::shape_check(
        "p99 latency falls once batching absorbs the overload",
        ablation[2].latency_p99_s < ablation[0].latency_p99_s);
  } else {
    dlbench::bench::shape_check(
        "batching raises throughput over batch=1 (single-core host)",
        best_batched.achieved_rps > ablation[0].achieved_rps);
    dlbench::bench::shape_check(
        "p99 latency falls once batching absorbs the overload",
        best_batched.latency_p99_s < ablation[0].latency_p99_s);
  }

  // 2. Replica scaling on the serial device (closed loop).
  std::cout << "\n--- replica scaling (closed loop, serial device) ---\n";
  std::vector<ServeRecord> scaling;
  LoadGenOptions closed;
  closed.mode = LoadGenOptions::Mode::kClosedLoop;
  closed.clients = 8;
  closed.duration_s = duration_s;
  for (const int replicas : {1, 2, 4}) {
    ServerOptions sopts = base;
    sopts.device = Device::cpu();
    sopts.replicas = replicas;
    sopts.max_batch = 4;
    // No lingering: a replica-scaling cell measures concurrency, and a
    // batch-fill delay would throttle the closed loop as replicas grow.
    sopts.max_batch_delay_s = 0.0;
    scaling.push_back(
        session.add(run_cell(framework, dataset, sopts, closed, inputs)));
  }
  // Replicas buy throughput only when there are cores to run them on;
  // on a single-core host the honest claim is merely that replica
  // fan-out does not collapse under contention.
  if (std::thread::hardware_concurrency() >= 4) {
    dlbench::bench::shape_check(
        "throughput rises with replicas 1 -> 2 -> 4",
        scaling[0].achieved_rps < scaling[1].achieved_rps &&
            scaling[1].achieved_rps < scaling[2].achieved_rps);
  } else {
    dlbench::bench::shape_check(
        "replica fan-out does not collapse throughput (single-core host)",
        scaling[2].achieved_rps > 0.5 * scaling[0].achieved_rps);
  }

  // 3. Overload shedding: 4x capacity into a small queue.
  std::cout << "\n--- overload shedding (open loop, offered = 4x capacity) "
               "---\n";
  ServerOptions overload = base;
  overload.max_batch = 8;
  overload.max_batch_delay_s = 0.002;
  overload.queue_capacity = 64;  // watermark defaults to 48
  LoadGenOptions storm = open;
  storm.offered_rps = 4.0 * capacity_rps;
  const ServeRecord shed =
      session.add(run_cell(framework, dataset, overload, storm, inputs));
  dlbench::bench::shape_check("overload sheds load (rejections observed)",
                              shed.rejected > 0);
  dlbench::bench::shape_check(
      "queue depth stays bounded by the watermark",
      shed.max_queue_depth <=
          static_cast<std::int64_t>(overload.queue_capacity -
                                    overload.queue_capacity / 4));

  // 4. Framework emulation sweep under one serving policy.
  std::cout << "\n--- framework emulations (closed loop, shared policy) "
               "---\n";
  for (const FrameworkKind kind :
       {FrameworkKind::kTensorFlow, FrameworkKind::kCaffe,
        FrameworkKind::kTorch}) {
    ServerOptions sopts = base;
    sopts.device = Device::cpu();
    sopts.replicas = 2;
    sopts.max_batch = 8;
    sopts.max_batch_delay_s = 0.001;
    LoadGenOptions lopts = closed;
    lopts.clients = 4;
    session.add(run_cell(kind, dataset, sopts, lopts, inputs));
  }

  // 5. Multi-tenant fleet: two models, three SLO classes, aggregate
  // offered load pinned far past the calibrated capacity. Three cells
  // share one mixed trace (gold is stream 0 in both traces, so its
  // marginal arrival schedule is bit-identical across cells):
  //   gold_isolated — the gold tenant alone, the latency it would see
  //                   with the machine to itself;
  //   drr_slo       — weighted-fair scheduling + SLO-class admission
  //                   under the full overload mix;
  //   fifo_noadm    — the ablation: one arrival-order queue, no
  //                   watermark shedding (head-of-line blocking).
  std::cout << "\n--- multi-tenant fleet (SLO classes under aggregate "
               "overload) ---\n";
  namespace serve = dlbench::serve;
  // Quick cells are too short for stable per-tenant tails; floor the
  // fleet trace length instead of inheriting --quick verbatim.
  const double fleet_duration_s = std::max(duration_s, 0.25);
  const std::vector<Tensor> cifar_inputs = make_inputs(DatasetId::kCifar10, 32);

  dlbench::frameworks::PredictorConfig mnist_cfg;
  mnist_cfg.framework = framework;
  mnist_cfg.dataset = DatasetId::kMnist;
  mnist_cfg.device = Device::gpu();
  const auto mnist_frozen = dlbench::frameworks::make_predictor(mnist_cfg);
  dlbench::frameworks::PredictorConfig cifar_cfg = mnist_cfg;
  cifar_cfg.dataset = DatasetId::kCifar10;
  const auto cifar_frozen = dlbench::frameworks::make_predictor(cifar_cfg);

  const auto make_fleet = [&](serve::FleetPolicy policy, bool slo_admission,
                              bool isolated) {
    serve::FleetOptions fo;
    fo.policy = policy;
    fo.slo_admission = slo_admission;
    fo.core_budget = 4;
    fo.tenant_queue_capacity = 128;
    fo.global_queue_budget = 256;
    fo.autoscale_every = 32;
    auto fleet = std::make_unique<serve::FleetManager>(fo);
    serve::FleetModelConfig mnist_model;
    mnist_model.name = "mnist";
    mnist_model.sample_shape =
        dlbench::frameworks::sample_shape(DatasetId::kMnist);
    mnist_model.min_replicas = 1;
    mnist_model.max_replicas = 3;
    mnist_model.window_per_replica = 4;
    mnist_model.max_batch = 4;
    mnist_model.max_batch_delay_s = 0.001;
    mnist_model.device = Device::gpu();
    fleet->register_model(mnist_model, mnist_frozen);
    serve::FleetModelConfig cifar_model = mnist_model;
    cifar_model.name = "cifar";
    cifar_model.sample_shape =
        dlbench::frameworks::sample_shape(DatasetId::kCifar10);
    cifar_model.max_replicas = 1;
    fleet->register_model(cifar_model, cifar_frozen);
    fleet->register_tenant({"gold_mnist", "mnist", serve::SloClass::kGold, 4});
    if (!isolated) {
      fleet->register_tenant(
          {"silver_cifar", "cifar", serve::SloClass::kSilver, 2});
      fleet->register_tenant(
          {"bronze_mnist", "mnist", serve::SloClass::kBronze, 1});
    }
    return fleet;
  };

  // The bronze flood is pinned at 8x the batch-1 capacity so the mix
  // overloads the fleet even where batching and spare cores buy several
  // x of headroom; gold stays well inside its weighted share.
  const serve::TenantStream gold_stream{"gold_mnist", 0.3 * capacity_rps};
  const std::vector<serve::TenantStream> iso_streams{gold_stream};
  const std::vector<serve::TenantStream> mixed_streams{
      gold_stream,
      {"silver_cifar", 0.1 * capacity_rps},
      {"bronze_mnist", 8.0 * capacity_rps}};
  const std::vector<std::vector<Tensor>> iso_inputs{inputs};
  const std::vector<std::vector<Tensor>> mixed_inputs{inputs, cifar_inputs,
                                                      inputs};
  const auto iso_trace =
      serve::make_mixed_trace(iso_streams, fleet_duration_s, 4242, 10000);
  const auto mixed_trace =
      serve::make_mixed_trace(mixed_streams, fleet_duration_s, 4242, 10000);

  const auto run_fleet_cell = [&](const std::string& scenario,
                                  serve::FleetPolicy policy,
                                  bool slo_admission, bool isolated) {
    auto fleet = make_fleet(policy, slo_admission, isolated);
    fleet->start();
    const auto& streams = isolated ? iso_streams : mixed_streams;
    const auto& trace = isolated ? iso_trace : mixed_trace;
    const auto& cell_inputs = isolated ? iso_inputs : mixed_inputs;
    const serve::FleetLoadResult load =
        serve::run_fleet_trace(*fleet, streams, trace, cell_inputs);
    fleet->stop();
    const serve::FleetStats fs = fleet->stats();
    for (const auto& t : fs.tenants) {
      TenantRecord r;
      r.scenario = scenario;
      r.tenant = t.tenant;
      r.model = t.model;
      r.slo = to_string(t.slo);
      r.weight = t.weight;
      for (const auto& s : streams)
        if (s.tenant == t.tenant) r.offered_rps = s.offered_rps;
      r.duration_s = load.duration_s;
      r.submitted = t.submitted;
      r.admitted = t.admitted;
      r.shed = t.shed;
      r.rejected = t.rejected;
      r.ok = t.ok;
      r.failed = t.failed;
      r.goodput_rps = load.duration_s > 0.0
                          ? static_cast<double>(t.ok) / load.duration_s
                          : 0.0;
      r.latency_p50_s = t.latency.percentile(50);
      r.latency_p99_s = t.latency.percentile(99);
      r.latency_max_s = t.latency.max_s();
      r.queue_wait_p99_s = t.queue_wait.percentile(99);
      for (const auto& m : fs.models)
        if (m.model == t.model) {
          r.replicas_min = m.replicas_low;
          r.replicas_max = m.replicas_peak;
          r.scale_ups = m.scale_ups;
          r.scale_downs = m.scale_downs;
        }
      session.add(r);
    }
    std::cout << scenario << ": decisions " << fs.decisions << ", gold p99 "
              << fs.tenants[0].latency.percentile(99) * 1e3 << " ms\n";
    return fs;
  };

  const serve::FleetStats iso = run_fleet_cell(
      "gold_isolated", serve::FleetPolicy::kWeightedFair, true, true);
  const serve::FleetStats drr =
      run_fleet_cell("drr_slo", serve::FleetPolicy::kWeightedFair, true, false);
  const serve::FleetStats fifo =
      run_fleet_cell("fifo_noadm", serve::FleetPolicy::kFifo, false, false);

  const double iso_p99 = iso.tenants[0].latency.percentile(99);
  const double drr_p99 = drr.tenants[0].latency.percentile(99);
  const double fifo_p99 = fifo.tenants[0].latency.percentile(99);
  dlbench::bench::shape_check(
      "SLO admission sheds bronze under overload and never sheds gold",
      drr.tenants[2].shed > 0 && drr.tenants[0].shed == 0);
  // Gold shares replicas with the flood, so some inflation over the
  // isolated baseline is expected — the claim is a bounded factor, not
  // isolation-grade latency (the absolute bound catches a vanishingly
  // small isolated p99 making the ratio noisy).
  dlbench::bench::shape_check(
      "weighted-fair + SLO keeps gold p99 within a bounded factor of isolated",
      drr_p99 <= 25.0 * iso_p99 || drr_p99 < 0.25);
  dlbench::bench::shape_check(
      "FIFO/no-admission head-of-line blocking collapses gold p99",
      fifo_p99 > 3.0 * drr_p99);
  dlbench::bench::shape_check(
      "autoscaler staffs the flooded model up under sustained backlog",
      drr.models[0].scale_ups >= 1);

  // Determinism contract (DESIGN.md §14): pause -> preload -> drain the
  // same fixed-length trace twice; the decision logs must be
  // bit-identical however this machine schedules the replica threads.
  const std::vector<serve::TenantStream> replay_streams{
      {"gold_mnist", 300.0},
      {"silver_cifar", 120.0},
      {"bronze_mnist", 900.0}};
  const auto replay_trace =
      serve::make_mixed_trace(replay_streams, 0.0, 7, 256);
  const auto replay_log = [&]() {
    auto fleet =
        make_fleet(serve::FleetPolicy::kWeightedFair, true, false);
    fleet->start(/*paused=*/true);
    serve::FleetLoadOptions lo;
    lo.realtime = false;
    serve::run_fleet_trace(*fleet, replay_streams, replay_trace, mixed_inputs,
                           lo);
    const std::vector<serve::FleetDecision> log = fleet->decision_log();
    fleet->stop();
    std::vector<std::string> lines;
    lines.reserve(log.size());
    for (const auto& d : log) lines.push_back(serve::format_decision(d));
    return lines;
  };
  const std::vector<std::string> log_a = replay_log();
  const std::vector<std::string> log_b = replay_log();
  dlbench::bench::shape_check(
      "drained decision log replays bit-identically (same seed + trace)",
      !log_a.empty() && log_a == log_b);
  std::cout << "determinism replay: " << log_a.size()
            << " decisions, identical across runs\n";

  std::cout << "\n"
            << dlbench::core::serve_table("bench_serve — all cells",
                                          session.serve_records())
            << "\n";
  std::cout << dlbench::core::tenant_table("bench_serve — multi-tenant fleet",
                                           session.tenant_records())
            << "\n";
  session.flush();
  return 0;
}
