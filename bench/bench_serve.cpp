// Serving benchmark: dynamic batching, replica scaling, backpressure.
//
// The paper measures training and offline testing time; this bench
// covers the deployment side those metrics stop short of — an
// inference server under load. Four experiments:
//
//   1. Batching ablation (open loop). Offered load is fixed at 2x the
//      measured max_batch=1 capacity, then max_batch sweeps 1 -> 8 ->
//      32 on the parallel device. Larger batches spread each forward
//      across more cores, so throughput rises and the p99 (queueing
//      collapse at batch=1) falls.
//   2. Replica scaling (closed loop, serial device): 1 -> 2 -> 4
//      replicas, throughput from concurrency instead of batch width.
//   3. Overload shedding (open loop at 4x capacity, small queue):
//      admission control rejects past the watermark while queue depth
//      stays bounded.
//   4. Framework emulation sweep (closed loop): the TF / Caffe / Torch
//      default MNIST nets served under one policy — the conv kernel and
//      network defaults shift the whole latency distribution.
//
// Flags: session flags plus --quick (shorter cells) and
// --duration=SECONDS per cell.

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "frameworks/predictor.hpp"
#include "runtime/fault.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace {

using dlbench::core::ServeRecord;
using dlbench::frameworks::DatasetId;
using dlbench::frameworks::FrameworkKind;
using dlbench::runtime::Device;
using dlbench::serve::LoadGenOptions;
using dlbench::serve::LoadGenResult;
using dlbench::serve::ModelServer;
using dlbench::serve::ServerOptions;
using dlbench::serve::ServerStats;
using dlbench::tensor::Tensor;

/// Synthetic request pool: serving cost does not depend on pixel
/// values, so N(0,1) samples of the dataset's shape suffice.
std::vector<Tensor> make_inputs(DatasetId dataset, int count) {
  dlbench::util::Rng rng(99);
  const auto shape = dlbench::frameworks::sample_shape(dataset);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    inputs.push_back(Tensor::randn(shape, rng));
  return inputs;
}

/// Runs one load-gen cell against a fresh server and flattens the
/// client + server views into a ServeRecord.
ServeRecord run_cell(FrameworkKind framework, DatasetId dataset,
                     const ServerOptions& sopts, const LoadGenOptions& lopts,
                     const std::vector<Tensor>& inputs) {
  dlbench::frameworks::PredictorConfig pconfig;
  pconfig.framework = framework;
  pconfig.dataset = dataset;
  pconfig.device = sopts.device;
  ModelServer server(dlbench::frameworks::make_predictor(pconfig), sopts);
  const LoadGenResult load = run_load(server, inputs, lopts);
  server.shutdown();
  const ServerStats stats = server.stats();

  ServeRecord r;
  r.framework = to_string(framework);
  r.dataset = to_string(dataset);
  r.mode = to_string(lopts.mode);
  r.device = sopts.device.name();
  r.replicas = sopts.replicas;
  r.max_batch = sopts.max_batch;
  r.max_batch_delay_s = sopts.max_batch_delay_s;
  r.duration_s = load.duration_s;
  r.offered_rps = load.offered_rps;
  r.achieved_rps = load.achieved_rps;
  r.issued = load.issued;
  r.ok = load.ok;
  r.rejected = load.rejected;
  r.mean_batch = load.mean_batch;
  r.latency_mean_s = load.latency.mean_s();
  r.latency_p50_s = load.latency.percentile(50);
  r.latency_p95_s = load.latency.percentile(95);
  r.latency_p99_s = load.latency.percentile(99);
  r.latency_p999_s = load.latency.percentile(99.9);
  r.latency_max_s = load.latency.max_s();
  r.max_queue_depth = stats.max_queue_depth;
  r.busy_s = stats.busy_s;
  r.queue_wait_p50_s = stats.latency.queue_wait.percentile(50);
  r.queue_wait_p99_s = stats.latency.queue_wait.percentile(99);
  r.assemble_mean_s = stats.latency.assemble.mean_s();
  r.forward_mean_s = stats.latency.forward.mean_s();
  r.scatter_mean_s = stats.latency.scatter.mean_s();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using dlbench::bench::BenchSession;
  namespace fault = dlbench::runtime::fault;
  // Arm env-requested serve faults (DLB_CHAOS_*, DESIGN.md §13) for the
  // whole sweep, mirroring the Harness idiom for DLB_FAULT_*: e.g.
  //   DLB_CHAOS_ERROR_RATE=0.2 ./bench_serve --quick
  // measures every cell under a 20% transient-error burn.
  std::optional<fault::FaultScope> chaos_scope;
  {
    fault::FaultPlan plan = fault::FaultPlan::from_env();
    if (!fault::enabled() && plan.active()) chaos_scope.emplace(plan);
  }
  double duration_s = 0.4;
  BenchSession session(
      argc, argv, "bench_serve",
      "inference serving: dynamic batching, replicas, backpressure",
      [&duration_s](const std::string& arg) {
        if (arg == "--quick") {
          duration_s = 0.15;
          return true;
        }
        if (arg.rfind("--duration=", 0) == 0) {
          duration_s = std::atof(arg.c_str() + 11);
          return duration_s > 0.0;
        }
        return false;
      });

  const DatasetId dataset = DatasetId::kMnist;
  const FrameworkKind framework = FrameworkKind::kTensorFlow;
  const std::vector<Tensor> inputs = make_inputs(dataset, 64);

  // Calibrate: peak closed-loop throughput with no batching, so the
  // open-loop sweeps can pin offered load relative to capacity instead
  // of hardcoding a machine-dependent rate.
  ServerOptions base;
  base.sample_shape = dlbench::frameworks::sample_shape(dataset);
  base.replicas = 1;
  base.max_batch = 1;
  base.max_batch_delay_s = 0.0;
  base.device = Device::gpu();
  base.compute_probabilities = false;
  LoadGenOptions probe;
  probe.mode = LoadGenOptions::Mode::kClosedLoop;
  probe.clients = 2;
  probe.duration_s = duration_s;
  const ServeRecord calib =
      run_cell(framework, dataset, base, probe, inputs);
  const double capacity_rps = calib.achieved_rps;
  std::cout << "calibration: max_batch=1 capacity "
            << static_cast<long long>(capacity_rps) << " r/s\n\n";

  // 1. Batching ablation at fixed offered load (2x capacity).
  std::cout << "--- batching ablation (open loop, offered = 2x capacity) "
               "---\n";
  std::vector<ServeRecord> ablation;
  LoadGenOptions open;
  open.mode = LoadGenOptions::Mode::kOpenLoop;
  open.offered_rps = 2.0 * capacity_rps;
  open.duration_s = duration_s;
  for (const std::int64_t max_batch : {1, 8, 32}) {
    ServerOptions sopts = base;
    sopts.max_batch = max_batch;
    sopts.max_batch_delay_s = 0.002;
    ablation.push_back(
        session.add(run_cell(framework, dataset, sopts, open, inputs)));
  }
  // On a parallel host each extra batch slot is another core for the
  // forward, so throughput rises through 32 and p99 falls with it.
  // Single-core hosts only get the fixed-cost amortization, which
  // saturates (and can regress) past batch 8 — there the claim is that
  // the best batched cell beats unbatched serving.
  const auto& best_batched =
      ablation[1].achieved_rps >= ablation[2].achieved_rps ? ablation[1]
                                                           : ablation[2];
  if (std::thread::hardware_concurrency() >= 4) {
    dlbench::bench::shape_check(
        "throughput rises with max batch 1 -> 8 -> 32",
        ablation[0].achieved_rps < ablation[1].achieved_rps &&
            ablation[1].achieved_rps < ablation[2].achieved_rps);
    dlbench::bench::shape_check(
        "p99 latency falls once batching absorbs the overload",
        ablation[2].latency_p99_s < ablation[0].latency_p99_s);
  } else {
    dlbench::bench::shape_check(
        "batching raises throughput over batch=1 (single-core host)",
        best_batched.achieved_rps > ablation[0].achieved_rps);
    dlbench::bench::shape_check(
        "p99 latency falls once batching absorbs the overload",
        best_batched.latency_p99_s < ablation[0].latency_p99_s);
  }

  // 2. Replica scaling on the serial device (closed loop).
  std::cout << "\n--- replica scaling (closed loop, serial device) ---\n";
  std::vector<ServeRecord> scaling;
  LoadGenOptions closed;
  closed.mode = LoadGenOptions::Mode::kClosedLoop;
  closed.clients = 8;
  closed.duration_s = duration_s;
  for (const int replicas : {1, 2, 4}) {
    ServerOptions sopts = base;
    sopts.device = Device::cpu();
    sopts.replicas = replicas;
    sopts.max_batch = 4;
    // No lingering: a replica-scaling cell measures concurrency, and a
    // batch-fill delay would throttle the closed loop as replicas grow.
    sopts.max_batch_delay_s = 0.0;
    scaling.push_back(
        session.add(run_cell(framework, dataset, sopts, closed, inputs)));
  }
  // Replicas buy throughput only when there are cores to run them on;
  // on a single-core host the honest claim is merely that replica
  // fan-out does not collapse under contention.
  if (std::thread::hardware_concurrency() >= 4) {
    dlbench::bench::shape_check(
        "throughput rises with replicas 1 -> 2 -> 4",
        scaling[0].achieved_rps < scaling[1].achieved_rps &&
            scaling[1].achieved_rps < scaling[2].achieved_rps);
  } else {
    dlbench::bench::shape_check(
        "replica fan-out does not collapse throughput (single-core host)",
        scaling[2].achieved_rps > 0.5 * scaling[0].achieved_rps);
  }

  // 3. Overload shedding: 4x capacity into a small queue.
  std::cout << "\n--- overload shedding (open loop, offered = 4x capacity) "
               "---\n";
  ServerOptions overload = base;
  overload.max_batch = 8;
  overload.max_batch_delay_s = 0.002;
  overload.queue_capacity = 64;  // watermark defaults to 48
  LoadGenOptions storm = open;
  storm.offered_rps = 4.0 * capacity_rps;
  const ServeRecord shed =
      session.add(run_cell(framework, dataset, overload, storm, inputs));
  dlbench::bench::shape_check("overload sheds load (rejections observed)",
                              shed.rejected > 0);
  dlbench::bench::shape_check(
      "queue depth stays bounded by the watermark",
      shed.max_queue_depth <=
          static_cast<std::int64_t>(overload.queue_capacity -
                                    overload.queue_capacity / 4));

  // 4. Framework emulation sweep under one serving policy.
  std::cout << "\n--- framework emulations (closed loop, shared policy) "
               "---\n";
  for (const FrameworkKind kind :
       {FrameworkKind::kTensorFlow, FrameworkKind::kCaffe,
        FrameworkKind::kTorch}) {
    ServerOptions sopts = base;
    sopts.device = Device::cpu();
    sopts.replicas = 2;
    sopts.max_batch = 8;
    sopts.max_batch_delay_s = 0.001;
    LoadGenOptions lopts = closed;
    lopts.clients = 4;
    session.add(run_cell(kind, dataset, sopts, lopts, inputs));
  }

  std::cout << "\n"
            << dlbench::core::serve_table("bench_serve — all cells",
                                          session.serve_records())
            << "\n";
  session.flush();
  return 0;
}
