// Table I — deep learning software frameworks and basic properties.
// Prints the published row for each framework alongside what this
// repository actually executes (the emulation).

#include <iostream>

#include "bench/bench_common.hpp"

int main() {
  using namespace dlbench;
  using namespace dlbench::bench;

  std::cout << "Table I — Deep Learning Software Frameworks and Basic "
               "Properties (paper row + emulation note)\n\n";

  util::Table table({"Framework", "Version", "Hash Tag", "Library",
                     "Interface", "LoC", "License", "Website"});
  for (FrameworkKind kind : frameworks::kAllFrameworks) {
    frameworks::FrameworkInfo info = frameworks::framework_info(kind);
    table.add_row({info.name, info.paper_version, info.paper_hash,
                   info.paper_library, info.paper_interface,
                   std::to_string(info.paper_loc), info.paper_license,
                   info.paper_website});
  }
  std::cout << table << "\n";

  std::cout << "Emulations in this repository (DESIGN.md section 2):\n";
  for (FrameworkKind kind : frameworks::kAllFrameworks) {
    frameworks::FrameworkInfo info = frameworks::framework_info(kind);
    std::cout << "  " << info.name << ": " << info.emulation << "\n";
  }

  std::cout << "\nRegularizers under comparison (paper Table IX):\n";
  for (FrameworkKind kind : frameworks::kAllFrameworks) {
    auto fw = frameworks::make_framework(kind);
    std::cout << "  " << fw->name() << ": "
              << frameworks::to_string(fw->regularizer()) << "\n";
  }
  return 0;
}
