// Figure 2 / Table VIIa — CIFAR-10 with each framework's own CIFAR-10
// default setting, CPU and GPU.

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dlbench;
  using namespace dlbench::bench;

  BenchSession session(argc, argv, "Fig 2 / Table VIIa",
                       "CIFAR-10 baselines (own defaults), CPU + GPU");
  Harness& harness = session.harness();

  std::vector<RunRecord> cpu_records, gpu_records;
  for (bool gpu : {false, true}) {
    const auto device =
        gpu ? runtime::Device::gpu() : runtime::Device::cpu();
    std::vector<RunRecord>& records = gpu ? gpu_records : cpu_records;
    for (FrameworkKind fw : frameworks::kAllFrameworks) {
      records.push_back(
          session.add(harness.run_default(fw, DatasetId::kCifar10, device)));
    }
    const auto& paper = gpu ? kCifarBaselineGpu : kCifarBaselineCpu;
    print_vs_paper(std::string("Fig 2 — CIFAR-10 baselines (") +
                       device.name() + ")",
                   records, {paper.begin(), paper.end()});

    auto acc = [](const RunRecord& r) { return r.eval.accuracy_pct; };
    auto train_time = [](const RunRecord& r) { return r.train.train_time_s; };
    shape_check("TensorFlow reaches the highest CIFAR-10 accuracy (obs. 2)",
                argmax(records, acc) == 0);
    shape_check("Torch reaches the lowest CIFAR-10 accuracy (obs. 1)",
                argmin(records, acc) == 2);
    shape_check("TensorFlow spends the most training time (obs. 2)",
                argmax(records, train_time) == 0);
    shape_check("Caffe spends the least training time (obs. 2)",
                argmin(records, train_time) == 1);
  }

  // Section III-B closing observation: MNIST-vs-CIFAR entropy gap.
  data::DatasetStats mnist_stats =
      data::compute_stats(Harness(core::HarnessOptions::test_profile())
                              .train_set(DatasetId::kMnist));
  data::DatasetStats cifar_stats = data::compute_stats(
      harness.train_set(DatasetId::kCifar10));
  std::cout << "\nDataset entropy (paper attributes the accuracy/time gap "
               "to MNIST's low entropy):\n  MNIST  "
            << util::format_fixed(mnist_stats.pixel_entropy_bits, 2)
            << " bits/pixel, sparsity "
            << util::format_fixed(mnist_stats.sparsity, 2)
            << "\n  CIFAR  "
            << util::format_fixed(cifar_stats.pixel_entropy_bits, 2)
            << " bits/pixel, sparsity "
            << util::format_fixed(cifar_stats.sparsity, 2) << "\n";
  shape_check("MNIST entropy < CIFAR-10 entropy",
              mnist_stats.pixel_entropy_bits <
                  cifar_stats.pixel_entropy_bits);
  return 0;
}
