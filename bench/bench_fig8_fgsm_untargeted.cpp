// Figure 8 — untargeted FGSM attacks on MNIST models trained by the TF
// and Caffe emulations with their own default settings: per-digit
// success rates for each model (8a, 8b) and the difference (8c), plus
// the paper's digit-5 destination analysis.
//
// Substitution note (EXPERIMENTS.md): the paper reports ~0.98 success
// with one-shot eps = 0.001 on its models; on our bench-scale models
// the same budget is applied iteratively (eps per step, many steps),
// which is the standard basic-iterative form of the same attack.

#include <iostream>
#include <vector>

#include "adversarial/attacks.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dlbench;
  using namespace dlbench::bench;

  int attack_threads = 1;
  BenchSession session(argc, argv, "Fig 8",
                       "Untargeted FGSM on TF- and Caffe-trained "
                       "MNIST models (GPU-trained)",
                       attack_threads_flag(&attack_threads));
  Harness& harness = session.harness();
  const auto device = runtime::Device::gpu();

  auto tf = harness.train_model(FrameworkKind::kTensorFlow,
                                FrameworkKind::kTensorFlow,
                                DatasetId::kMnist, DatasetId::kMnist,
                                device);
  auto caffe = harness.train_model(FrameworkKind::kCaffe,
                                   FrameworkKind::kCaffe, DatasetId::kMnist,
                                   DatasetId::kMnist, device);
  session.add(tf.record);
  session.add(caffe.record);
  std::cout << "\n";

  // Budget chosen so the success rates land below saturation and the
  // two models differentiate (the paper's scale separates them by
  // 0.3-8.7 points; a saturating budget would hide that).
  adversarial::FgsmOptions attack;
  attack.epsilon = 0.02f;
  attack.max_iterations = 30;
  nn::Context ctx;
  ctx.device = device;

  const std::int64_t per_class = 12;
  adversarial::UntargetedSweep tf_sweep = adversarial::fgsm_sweep(
      tf.model, tf.test, attack, ctx, per_class, attack_threads);
  adversarial::UntargetedSweep caffe_sweep = adversarial::fgsm_sweep(
      caffe.model, caffe.test, attack, ctx, per_class, attack_threads);

  auto to_record = [&](const char* fw, const char* setting,
                       const adversarial::UntargetedSweep& sweep) {
    core::AttackRecord rec = attack_record_base(
        fw, setting, "MNIST", "fgsm", device.name(), sweep.timing);
    rec.attacks = sweep.total_attacks;
    rec.successes = sweep.total_successes;
    rec.success_rate =
        sweep.total_attacks
            ? static_cast<double>(sweep.total_successes) /
                  static_cast<double>(sweep.total_attacks)
            : 0.0;
    rec.total_iterations = sweep.total_iterations;
    return rec;
  };
  session.add(to_record("TensorFlow", "TF MNIST", tf_sweep));
  session.add(to_record("Caffe", "Caffe MNIST", caffe_sweep));
  std::cout << "\n";

  util::Table table({"Digit", "TF success (8a)", "paper", "Caffe success (8b)",
                     "paper", "Caffe - TF (8c)", "paper"});
  table.set_title("Fig 8 — FGSM success rate per source digit");
  double tf_mean = 0, caffe_mean = 0;
  for (int d = 0; d < 10; ++d) {
    const double diff = caffe_sweep.success_rate[d] - tf_sweep.success_rate[d];
    const double paper_diff = kFgsmSuccessCaffe[d] - kFgsmSuccessTf[d];
    table.add_row({std::to_string(d),
                   util::format_fixed(tf_sweep.success_rate[d], 3),
                   util::format_fixed(kFgsmSuccessTf[d], 3),
                   util::format_fixed(caffe_sweep.success_rate[d], 3),
                   util::format_fixed(kFgsmSuccessCaffe[d], 3),
                   util::format_fixed(diff, 3),
                   util::format_fixed(paper_diff, 3)});
    tf_mean += tf_sweep.success_rate[d] / 10;
    caffe_mean += caffe_sweep.success_rate[d] / 10;
  }
  std::cout << table << "\n";

  shape_check(
      "Caffe-trained model is easier to attack on average (paper obs.)",
      caffe_mean >= tf_mean);
  shape_check("both models are attackable (success well above 0)",
              tf_mean > 0.3 && caffe_mean > 0.3);

  // Paper's digit-5 analysis: which classes do adversarial 5s fall in?
  std::cout << "\nDestination classes for attacked digit 5 (paper: top "
               "destinations 3, 8, 2, 9 for both models):\n";
  for (const auto* name : {"TF", "Caffe"}) {
    const auto& sweep =
        std::string(name) == "TF" ? tf_sweep : caffe_sweep;
    std::cout << "  " << name << ": ";
    for (int t = 0; t < 10; ++t)
      if (sweep.destination_counts[5][t] > 0)
        std::cout << "5->" << t << " x" << sweep.destination_counts[5][t]
                  << "  ";
    std::cout << "\n";
  }
  // Screening (victim selection) and crafting are timed separately —
  // the old single total buried screening inside the crafting metric.
  std::cout << "\nattack timing (" << attack_threads << " thread"
            << (attack_threads == 1 ? "" : "s") << "):\n";
  for (const auto* name : {"TF", "Caffe"}) {
    const auto& sweep =
        std::string(name) == "TF" ? tf_sweep : caffe_sweep;
    std::cout << "  " << name << ": screening "
              << util::format_seconds(sweep.timing.screening_s)
              << "s, crafting wall "
              << util::format_seconds(sweep.timing.craft_wall_s)
              << "s, per-attack p50/p95/p99 "
              << util::format_seconds(sweep.timing.craft_time.percentile(50))
              << "/"
              << util::format_seconds(sweep.timing.craft_time.percentile(95))
              << "/"
              << util::format_seconds(sweep.timing.craft_time.percentile(99))
              << "s\n";
  }
  return 0;
}
