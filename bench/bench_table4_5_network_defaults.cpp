// Tables IV and V — primary default neural network parameters per
// framework on MNIST and CIFAR-10, regenerated from the spec zoo, plus
// a live shape trace proving each net builds with exactly the printed
// fc dimensions.

#include <iostream>

#include "bench/bench_common.hpp"
#include "nn/layers.hpp"

namespace {

using namespace dlbench;
using namespace dlbench::bench;

void print_networks(DatasetId dataset, const char* table_name) {
  std::cout << table_name << "\n";
  for (FrameworkKind kind : frameworks::kAllFrameworks) {
    nn::NetworkSpec spec = frameworks::default_network_spec(kind, dataset);
    std::cout << "  " << frameworks::to_string(kind) << " (" << spec.name
              << ", init=" << tensor::init_kind_name(spec.init) << "):\n";
    int layer_no = 1;
    for (const auto& row : spec.describe_layers())
      std::cout << "    layer " << layer_no++ << ": " << row << "\n";

    // Materialize and report the realized structure (num params + the
    // first fc geometry the paper prints, e.g. 7x7x64 -> 1024).
    util::Rng rng(1);
    nn::Sequential model = nn::build_model(spec, rng);
    std::cout << "    realized: " << model.num_params() << " parameters; ";
    for (std::size_t i = 0; i < model.size(); ++i) {
      if (auto* fc = dynamic_cast<nn::Linear*>(&model.layer(i))) {
        std::cout << "first fc " << fc->in_features() << " -> "
                  << fc->out_features();
        break;
      }
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  print_networks(DatasetId::kMnist,
                 "Table IV — Primary default network parameters on MNIST");
  print_networks(
      DatasetId::kCifar10,
      "Table V — Primary default network parameters on CIFAR-10");
  return 0;
}
