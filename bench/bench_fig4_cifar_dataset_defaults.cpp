// Figure 4 / Table VIIb — dataset-dependent default settings on
// CIFAR-10 (GPU): own MNIST setting vs own CIFAR-10 setting. Includes
// the paper's headline failure: Caffe with its MNIST setting does not
// converge on CIFAR-10 (11.03% in the paper).

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dlbench;
  using namespace dlbench::bench;

  BenchSession session(
      argc, argv, "Fig 4 / Table VIIb",
      "CIFAR-10 under dataset-dependent default settings (GPU)");
  Harness& harness = session.harness();
  const auto device = runtime::Device::gpu();

  std::vector<RunRecord> records;
  std::vector<PaperCell> paper;
  for (std::size_t f = 0; f < 3; ++f) {
    const FrameworkKind fw = frameworks::kAllFrameworks[f];
    for (std::size_t s = 0; s < 2; ++s) {
      const DatasetId setting_ds =
          s == 0 ? DatasetId::kMnist : DatasetId::kCifar10;
      records.push_back(session.add(
          harness.run(fw, fw, setting_ds, DatasetId::kCifar10, device)));
      paper.push_back(kCifarDatasetDependentGpu[f][s]);
    }
  }
  print_vs_paper("Fig 4 — CIFAR-10, own-MNIST vs own-CIFAR-10 settings",
                 records, paper);

  shape_check(
      "MNIST settings train faster than CIFAR-10 settings everywhere",
      records[0].train.train_time_s < records[1].train.train_time_s &&
          records[2].train.train_time_s < records[3].train.train_time_s &&
          records[4].train.train_time_s < records[5].train.train_time_s);
  shape_check("TF loses accuracy under its MNIST setting (69.76 vs 87.00)",
              records[0].eval.accuracy_pct <
                  records[1].eval.accuracy_pct - 3.0);
  shape_check(
      "Caffe collapses under its MNIST setting (11.03 in the paper)",
      records[2].eval.accuracy_pct < 35.0);
  shape_check("Torch is roughly setting-insensitive (66.40 vs 65.61)",
              std::abs(records[4].eval.accuracy_pct -
                       records[5].eval.accuracy_pct) < 15.0);
  return 0;
}
