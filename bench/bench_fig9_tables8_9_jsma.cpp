// Figure 9 + Tables VIII and IX — targeted Jacobian-based (JSMA)
// attacks crafting digit 1 into every other class, across the four
// model configurations the paper compares:
//   TF (TF params, fc 3136->1024, dropout)
//   TF (Caffe params, fc 800->500, dropout)
//   Caffe (TF params, fc 3136->1024, weight decay)
//   Caffe (Caffe params, fc 800->500, weight decay)
// Reports per-target success rates (Fig 9 / Table IX) and mean crafting
// time (Table VIII; minutes in the paper, seconds at bench scale).

#include <iostream>
#include <vector>

#include "adversarial/attacks.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dlbench;
  using namespace dlbench::bench;

  int attack_threads = 1;
  BenchSession session(argc, argv, "Fig 9 / Tables VIII-IX",
                       "Targeted JSMA: crafting digit 1, four "
                       "framework(setting) model configurations",
                       attack_threads_flag(&attack_threads));
  Harness& harness = session.harness();
  const auto device = runtime::Device::gpu();

  // The paper's third-layer ablation: TF params keep the wide fc
  // (3136->1024); "Caffe params" use the narrow one (800->500). We use
  // each framework's own net structure and swap the fc width.
  struct Config {
    FrameworkKind fw;
    FrameworkKind setting;
    std::int64_t fc_width;  // 0 = structure's own width
    const char* regularizer;
  };
  const std::vector<Config> configs = {
      {FrameworkKind::kTensorFlow, FrameworkKind::kTensorFlow, 0,
       "drop out"},
      {FrameworkKind::kTensorFlow, FrameworkKind::kCaffe, 500, "drop out"},
      {FrameworkKind::kCaffe, FrameworkKind::kTensorFlow, 1024,
       "weight decay"},
      {FrameworkKind::kCaffe, FrameworkKind::kCaffe, 0, "weight decay"},
  };

  adversarial::JsmaOptions attack;
  attack.theta = 1.0f;
  attack.max_distortion = 0.10;
  nn::Context ctx;
  ctx.device = device;

  std::vector<adversarial::TargetedSweep> sweeps;
  util::Table tableIX({"Model", "third layer", "Regularization", "0", "2",
                       "3", "4", "5", "6", "7", "8", "9"});
  tableIX.set_title(
      "Table IX / Fig 9 — JSMA success rate, digit 1 -> target class");
  util::Table paperIX({"Model", "third layer", "Regularization", "0", "2",
                       "3", "4", "5", "6", "7", "8", "9"});
  paperIX.set_title("Paper values (Table IX)");

  for (std::size_t c = 0; c < configs.size(); ++c) {
    const auto& cfg = configs[c];
    // Train: framework cfg.fw executing, with ITS own MNIST training
    // hyperparameters, on the structure given by cfg.setting's net.
    auto trained = harness.train_model_with_fc_width(
        cfg.fw, cfg.setting, DatasetId::kMnist, DatasetId::kMnist, device,
        cfg.fc_width);
    session.add(trained.record);

    adversarial::TargetedSweep sweep = adversarial::jsma_sweep(
        trained.model, trained.test, /*source=*/1, attack, ctx,
        /*samples_per_target=*/6, attack_threads);
    sweeps.push_back(sweep);

    core::AttackRecord rec = attack_record_base(
        cfg.fw == FrameworkKind::kTensorFlow ? "TensorFlow" : "Caffe",
        kJsmaRowLabels[c], "MNIST", "jsma", device.name(), sweep.timing);
    rec.attacks = sweep.total_attacks;
    rec.successes = sweep.total_successes;
    rec.success_rate =
        sweep.total_attacks
            ? static_cast<double>(sweep.total_successes) /
                  static_cast<double>(sweep.total_attacks)
            : 0.0;
    rec.total_iterations = sweep.total_iterations;
    session.add(rec);

    const std::int64_t fc = cfg.fc_width ? cfg.fc_width : 1024;
    std::vector<std::string> row = {
        kJsmaRowLabels[c],
        (fc == 500 ? "800 -> 500" : "3136 -> 1024"),
        cfg.regularizer};
    std::vector<std::string> paper_row = row;
    for (int t = 0; t < 10; ++t) {
      if (t == 1) continue;
      row.push_back(util::format_fixed(sweep.success_rate[t], 3));
      paper_row.push_back(util::format_fixed(kJsmaDigit1[c][t], 3));
    }
    tableIX.add_row(row);
    paperIX.add_row(paper_row);
  }

  std::cout << "\n" << tableIX << "\n" << paperIX << "\n";

  // Table VIII — average crafting time, plus the crafting-wall /
  // screening split and tail percentiles the engine now measures.
  util::Table tableVIII({"Model", "mean craft time (s, ours)",
                         "paper (min, full scale)", "craft wall (s)",
                         "p95 (s)", "p99 (s)"});
  tableVIII.set_title("Table VIII — average crafting time, targeted attacks");
  for (std::size_t c = 0; c < sweeps.size(); ++c) {
    tableVIII.add_row(
        {kJsmaRowLabels[c],
         util::format_seconds(sweeps[c].mean_craft_time_s),
         util::format_fixed(kJsmaCraftMinutes[c], 0),
         util::format_seconds(sweeps[c].timing.craft_wall_s),
         util::format_seconds(sweeps[c].timing.craft_time.percentile(95)),
         util::format_seconds(sweeps[c].timing.craft_time.percentile(99))});
  }
  std::cout << tableVIII << "\n";
  std::cout << "crafting threads: " << attack_threads << "\n";

  auto mean_rate = [](const adversarial::TargetedSweep& s) {
    double acc = 0;
    for (int t = 0; t < 10; ++t)
      if (t != 1) acc += s.success_rate[t] / 9;
    return acc;
  };
  shape_check(
      "Caffe-trained models are easier to craft than TF-trained "
      "(weight decay vs dropout, paper obs.)",
      mean_rate(sweeps[2]) + mean_rate(sweeps[3]) >=
          mean_rate(sweeps[0]) + mean_rate(sweeps[1]));
  shape_check(
      "narrow feature maps craft faster than wide ones (Table VIII obs.)",
      sweeps[1].mean_craft_time_s <= sweeps[0].mean_craft_time_s * 1.25 &&
          sweeps[3].mean_craft_time_s <= sweeps[2].mean_craft_time_s * 1.25);
  shape_check(
      "wider feature maps are more robust in most cells (Table IX obs.)",
      mean_rate(sweeps[0]) <= mean_rate(sweeps[1]) + 0.15 &&
          mean_rate(sweeps[2]) <= mean_rate(sweeps[3]) + 0.15);
  return 0;
}
