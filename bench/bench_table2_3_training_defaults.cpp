// Tables II and III — default training parameters per framework on
// MNIST and CIFAR-10, regenerated from the configuration registry.

#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"

namespace {

using namespace dlbench;
using namespace dlbench::bench;

void print_defaults(DatasetId dataset, const char* table_name) {
  util::Table table({"Framework", "Algorithm", "Base Learning Rate",
                     "Batch Size", "#Max Iterations", "#Epochs",
                     "Preprocessing"});
  table.set_title(table_name);
  for (FrameworkKind kind : frameworks::kAllFrameworks) {
    frameworks::TrainingConfig c =
        frameworks::default_training_config(kind, dataset);
    std::ostringstream lr;
    lr << c.base_lr;
    for (const auto& [epoch, rate] : c.lr_phases) lr << " -> " << rate;
    std::ostringstream epochs;
    epochs << c.epochs;
    if (!c.lr_phases.empty()) {
      epochs.str("");
      epochs << c.lr_phases[0].first << "+" << (c.epochs - c.lr_phases[0].first);
    }
    table.add_row({frameworks::to_string(kind),
                   frameworks::to_string(c.algo), lr.str(),
                   std::to_string(c.batch_size),
                   std::to_string(c.paper_max_iterations), epochs.str(),
                   data::to_string(c.preprocessing)});
  }
  std::cout << table << "\n";
}

}  // namespace

int main() {
  print_defaults(DatasetId::kMnist,
                 "Table II — Default training parameters on MNIST");
  print_defaults(DatasetId::kCifar10,
                 "Table III — Default training parameters on CIFAR-10");

  std::cout << "Epoch identity check (#Epochs = max_steps * batch / "
               "#samples, paper section III-A):\n";
  for (DatasetId ds : dlbench::frameworks::kAllDatasets) {
    for (FrameworkKind kind : dlbench::frameworks::kAllFrameworks) {
      auto c = dlbench::frameworks::default_training_config(kind, ds);
      const double samples =
          (ds == DatasetId::kMnist ? 60000.0 : 50000.0) * c.train_fraction;
      const double derived =
          static_cast<double>(c.paper_max_iterations) * c.batch_size / samples;
      std::cout << "  " << dlbench::frameworks::to_string(kind) << " on "
                << dlbench::frameworks::to_string(ds) << ": derived "
                << dlbench::util::format_fixed(derived, 2) << " vs table "
                << dlbench::util::format_fixed(c.epochs, 2)
                << (c.train_fraction < 1.0 ? "  (5k-sample Torch subset)"
                                           : "")
                << "\n";
    }
  }
  return 0;
}
