// Figure 1 / Table VIa — MNIST with each framework's own MNIST default
// setting, CPU and GPU. Reproduces training time, testing time and
// accuracy panels plus the GPU-speedup observations of section III-B.

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dlbench;
  using namespace dlbench::bench;

  BenchSession session(argc, argv, "Fig 1 / Table VIa",
                       "MNIST baselines (own defaults), CPU + GPU");
  Harness& harness = session.harness();

  std::vector<RunRecord> cpu_records, gpu_records;
  for (bool gpu : {false, true}) {
    const auto device =
        gpu ? runtime::Device::gpu() : runtime::Device::cpu();
    std::vector<RunRecord>& records = gpu ? gpu_records : cpu_records;
    for (FrameworkKind fw : frameworks::kAllFrameworks) {
      records.push_back(
          session.add(harness.run_default(fw, DatasetId::kMnist, device)));
    }
    const auto& paper = gpu ? kMnistBaselineGpu : kMnistBaselineCpu;
    print_vs_paper(std::string("Fig 1 — MNIST baselines (") +
                       device.name() + ")",
                   records, {paper.begin(), paper.end()});

    // Paper shape findings for this panel.
    auto acc = [](const RunRecord& r) { return r.eval.accuracy_pct; };
    auto test_time = [](const RunRecord& r) { return r.eval.test_time_s; };
    shape_check("all frameworks above 97% on MNIST",
                records[0].eval.accuracy_pct > 97 &&
                    records[1].eval.accuracy_pct > 97 &&
                    records[2].eval.accuracy_pct > 97);
    shape_check("Torch has the longest testing time (paper obs. 1)",
                argmax(records, test_time) == 2);
    shape_check("TensorFlow has the highest accuracy (paper obs. 1)",
                argmax(records, acc) == 0);
  }

  std::cout << "\nGPU acceleration factors (paper: TF 16x/10x, Caffe 5x/6x,"
               " Torch 28x/32x on a 1080 Ti; here the parallel device has "
            << runtime::Device::gpu().workers()
            << " workers, so expected factors are <= that):\n";
  for (std::size_t i = 0; i < cpu_records.size(); ++i) {
    const auto& cpu = cpu_records[i];
    const auto& gpu = gpu_records[i];
    std::cout << "  " << cpu.framework << ": train "
              << util::format_fixed(
                     cpu.train.train_time_s / gpu.train.train_time_s, 2)
              << "x, test "
              << util::format_fixed(
                     cpu.eval.test_time_s / gpu.eval.test_time_s, 2)
              << "x\n";
  }
  shape_check("GPU shortens training time for every framework (obs. 3)",
              cpu_records[0].train.train_time_s >
                      gpu_records[0].train.train_time_s &&
                  cpu_records[1].train.train_time_s >
                      gpu_records[1].train.train_time_s &&
                  cpu_records[2].train.train_time_s >
                      gpu_records[2].train.train_time_s);
  return 0;
}
