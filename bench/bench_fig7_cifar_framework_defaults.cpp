// Figure 7 / Table VIIc — framework-dependent default settings on
// CIFAR-10 (GPU): the full 3x3 grid, including the paper's second
// headline failure (Caffe with TF's CIFAR-10 setting does not converge,
// 10.10%).

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dlbench;
  using namespace dlbench::bench;

  BenchSession session(
      argc, argv, "Fig 7 / Table VIIc",
      "CIFAR-10 under framework-dependent default settings (GPU, 3x3)");
  Harness& harness = session.harness();
  const auto device = runtime::Device::gpu();

  std::vector<RunRecord> records;
  std::vector<PaperCell> paper;
  for (std::size_t f = 0; f < 3; ++f) {
    for (std::size_t s = 0; s < 3; ++s) {
      records.push_back(session.add(harness.run(
          frameworks::kAllFrameworks[f], frameworks::kAllFrameworks[s],
          DatasetId::kCifar10, DatasetId::kCifar10, device)));
      paper.push_back(kCifarFrameworkDependentGpu[f][s]);
    }
  }
  print_vs_paper("Fig 7 — CIFAR-10, framework x setting grid", records,
                 paper);

  auto rec = [&](std::size_t f, std::size_t s) -> const RunRecord& {
    return records[f * 3 + s];
  };
  shape_check("Caffe's own CIFAR-10 setting trains fastest on Caffe",
              rec(1, 1).train.train_time_s <=
                      rec(1, 0).train.train_time_s &&
                  rec(1, 1).train.train_time_s <=
                      rec(1, 2).train.train_time_s);
  shape_check(
      "TF's CIFAR-10 setting is the slowest choice for Caffe and Torch "
      "(paper obs. 1)",
      rec(1, 0).train.train_time_s >= rec(1, 1).train.train_time_s &&
          rec(2, 0).train.train_time_s >= rec(2, 1).train.train_time_s &&
          rec(2, 0).train.train_time_s >= rec(2, 2).train.train_time_s);
  shape_check(
      "Caffe + TF CIFAR-10 setting fails to converge (10.10% paper)",
      !rec(1, 0).train.converged || rec(1, 0).eval.accuracy_pct < 35.0);
  shape_check("TF and Caffe peak with their own settings (paper obs. 3)",
              rec(0, 0).eval.accuracy_pct >= rec(0, 1).eval.accuracy_pct &&
                  rec(0, 0).eval.accuracy_pct >=
                      rec(0, 2).eval.accuracy_pct &&
                  rec(1, 1).eval.accuracy_pct >=
                      rec(1, 0).eval.accuracy_pct &&
                  rec(1, 1).eval.accuracy_pct >=
                      rec(1, 2).eval.accuracy_pct);
  shape_check(
      "Torch does better with TF's setting than its own (73.74 vs 65.61 "
      "paper), at much higher training cost",
      rec(2, 0).eval.accuracy_pct > rec(2, 2).eval.accuracy_pct &&
          rec(2, 0).train.train_time_s > rec(2, 2).train.train_time_s);
  return 0;
}
