// Ablation bench for the design choices DESIGN.md section 5 calls out:
//   * device model — serial vs parallel execution of one training step;
//   * conv implementation — GEMM (im2col) vs direct loops (the Torch
//     CPU/GPU split);
//   * regularizer — dropout vs weight decay vs none, measured as the
//     training-step overhead each adds;
//   * execution model — TF-like graph-compile (prepare) cost vs the
//     per-step cost it amortizes.

#include <benchmark/benchmark.h>

#include "data/synthetic.hpp"
#include "frameworks/emulations.hpp"
#include "frameworks/registry.hpp"
#include "nn/conv_direct.hpp"

namespace {

using namespace dlbench;
using frameworks::DatasetId;
using frameworks::FrameworkKind;
using runtime::Device;

struct StepFixture {
  data::DatasetPair mnist;
  data::Batch batch;

  StepFixture() {
    data::MnistOptions d;
    d.train_samples = 128;
    d.test_samples = 16;
    mnist = data::synthetic_mnist(d);
    data::DataLoader loader(mnist.train, 64, false, util::Rng(1));
    loader.next(batch);
  }
};

StepFixture& fixture() {
  static StepFixture fx;
  return fx;
}

// One full forward+backward step of the Caffe MNIST net, by device.
void BM_TrainStepByDevice(benchmark::State& state) {
  auto& fx = fixture();
  const Device dev =
      state.range(0) ? Device::gpu() : Device::cpu();
  auto fw = frameworks::make_framework(FrameworkKind::kCaffe);
  auto spec = frameworks::default_network_spec(FrameworkKind::kCaffe,
                                               DatasetId::kMnist);
  util::Rng rng(2);
  nn::Sequential model = fw->build_model(spec, dev, rng);
  nn::Context ctx;
  ctx.device = dev;
  ctx.training = true;
  util::Rng drng(3);
  ctx.rng = &drng;
  for (auto _ : state) {
    model.zero_grads();
    auto loss = model.forward_loss(fx.batch.images, fx.batch.labels, ctx);
    auto dx = model.backward(loss, fx.batch.labels, ctx);
    benchmark::DoNotOptimize(dx.raw());
  }
}
BENCHMARK(BM_TrainStepByDevice)->Arg(0)->Arg(1);

// Same step with the conv implementation swapped (Torch's CPU kernel).
void BM_TrainStepByConvImpl(benchmark::State& state) {
  auto& fx = fixture();
  const auto impl = state.range(0) ? nn::ConvImpl::kDirect
                                   : nn::ConvImpl::kGemm;
  auto spec = frameworks::default_network_spec(FrameworkKind::kTorch,
                                               DatasetId::kMnist);
  util::Rng rng(4);
  nn::Sequential model = nn::build_model(spec, rng, impl);
  nn::Context ctx;
  ctx.device = Device::cpu();
  ctx.training = true;
  for (auto _ : state) {
    model.zero_grads();
    auto loss = model.forward_loss(fx.batch.images, fx.batch.labels, ctx);
    auto dx = model.backward(loss, fx.batch.labels, ctx);
    benchmark::DoNotOptimize(dx.raw());
  }
}
BENCHMARK(BM_TrainStepByConvImpl)->Arg(0)->Arg(1);

// Regularizer cost: none vs dropout(0.5) vs weight decay in the
// optimizer — isolates what each framework's choice costs per step.
void BM_TrainStepByRegularizer(benchmark::State& state) {
  auto& fx = fixture();
  const int mode = static_cast<int>(state.range(0));
  const Device dev = Device::gpu();
  auto base_spec = frameworks::default_network_spec(FrameworkKind::kCaffe,
                                                    DatasetId::kMnist);
  util::Rng rng(5);
  nn::Sequential model =
      mode == 1
          ? frameworks::make_framework(FrameworkKind::kTensorFlow)
                ->build_model(base_spec, dev, rng)  // injects dropout
          : nn::build_model(base_spec, rng);
  optim::Sgd sgd(optim::LrSchedule(0.01), 0.9,
                 mode == 2 ? 0.0005 : 0.0);
  nn::Context ctx;
  ctx.device = dev;
  ctx.training = true;
  util::Rng drng(6);
  ctx.rng = &drng;
  std::int64_t step = 0;
  for (auto _ : state) {
    model.zero_grads();
    auto loss = model.forward_loss(fx.batch.images, fx.batch.labels, ctx);
    model.backward(loss, fx.batch.labels, ctx);
    sgd.step(model.params(), model.grads(), step++, dev);
  }
}
BENCHMARK(BM_TrainStepByRegularizer)->Arg(0)->Arg(1)->Arg(2);

// TF-like graph-compile (prepare) cost: one-time dry-run trace.
void BM_TfGraphCompile(benchmark::State& state) {
  auto& fx = fixture();
  auto tf = frameworks::make_framework(FrameworkKind::kTensorFlow);
  auto spec = frameworks::default_network_spec(FrameworkKind::kTensorFlow,
                                               DatasetId::kMnist);
  const Device dev = Device::gpu();
  nn::Context ctx;
  ctx.device = dev;
  util::Rng rng(7);
  nn::Sequential model = tf->build_model(spec, dev, rng);
  tensor::Tensor sample = fx.mnist.train.sample(0);
  for (auto _ : state) {
    tf->prepare(model, sample, ctx);
  }
}
BENCHMARK(BM_TfGraphCompile);

}  // namespace

BENCHMARK_MAIN();
