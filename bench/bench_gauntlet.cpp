// Chaos gauntlet: the serving path under injected faults, supervised
// vs unsupervised, with bounded and *measured* degradation.
//
// Open-loop Poisson traffic (fixed request count, so every id-keyed
// fault decision replays identically — the determinism contract,
// DESIGN.md §13) is driven through four fault schedules:
//
//   crash   — replica slots crash on a batch cadence (capped); the
//             supervised fleet requeues + restarts, the unsupervised
//             fleet bleeds out and eventually fails everything.
//   stall   — replicas freeze mid-batch; the supervised stall watchdog
//             abandons and restaffs the slot, unsupervised traffic
//             queues behind the frozen replica.
//   error   — a deterministic subset of requests hits a transient
//             forward error; supervised retry-with-backoff absorbs it,
//             unsupervised serving surfaces every error to the client.
//   breaker — a persistent error burn with mixed-priority traffic; the
//             hardened config's circuit breaker sheds low-priority load
//             and re-closes after its probe window.
//
// Each scenario reports a ChaosRecord: goodput, p99 inflation over the
// no-fault baseline, and a recovery time computed from windowed p99s of
// per-request samples (a window is "degraded" while its p99 exceeds 2x
// the baseline p99 — or while it has no successful traffic at all; the
// run "recovers" at the first window after the last degraded one).
// A final pass re-runs the supervised crash cell and cross-checks that
// every deterministic event count is identical run-to-run.
//
// Flags: session flags plus --quick and --requests=N per cell.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "frameworks/predictor.hpp"
#include "runtime/fault.hpp"
#include "runtime/histogram.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace {

using dlbench::core::ChaosRecord;
using dlbench::frameworks::DatasetId;
using dlbench::frameworks::FrameworkKind;
using dlbench::runtime::Device;
using dlbench::runtime::LatencyHistogram;
using dlbench::runtime::fault::FaultPlan;
using dlbench::runtime::fault::FaultScope;
using dlbench::serve::LoadGenOptions;
using dlbench::serve::LoadGenResult;
using dlbench::serve::ModelServer;
using dlbench::serve::RequestStatus;
using dlbench::serve::ServerOptions;
using dlbench::serve::ServerStats;
using dlbench::tensor::Tensor;

std::vector<Tensor> make_inputs(DatasetId dataset, int count) {
  dlbench::util::Rng rng(99);
  const auto shape = dlbench::frameworks::sample_shape(dataset);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    inputs.push_back(Tensor::randn(shape, rng));
  return inputs;
}

/// Windowed-p99 timeline over per-request samples. A window is degraded
/// while its ok-latency p99 exceeds `degraded_threshold_s` or while it
/// completed no request at all (service absent counts as degraded, not
/// as healthy silence).
struct Timeline {
  double faulted_p99_s = 0.0;  // worst finite window p99
  double recovery_s = -1.0;    // onset -> first window past the last
                               // degraded one; -1 = never recovered,
                               // 0 = never degraded
};

Timeline analyze_timeline(const std::vector<LoadGenResult::Sample>& samples,
                          double window_s, double degraded_threshold_s) {
  Timeline t;
  t.faulted_p99_s = std::numeric_limits<double>::quiet_NaN();
  if (samples.empty() || window_s <= 0.0) return t;
  double span_s = 0.0;
  for (const auto& s : samples) span_s = std::max(span_s, s.issue_offset_s);
  const auto windows = static_cast<std::size_t>(span_s / window_s) + 1;
  std::vector<LatencyHistogram> hist(windows);
  for (const auto& s : samples) {
    if (s.status != RequestStatus::kOk) continue;
    hist[static_cast<std::size_t>(s.issue_offset_s / window_s)].record_s(
        s.total_s);
  }
  std::ptrdiff_t first_bad = -1, last_bad = -1;
  for (std::size_t w = 0; w < windows; ++w) {
    const double p99 = hist[w].percentile(99.0);
    if (std::isfinite(p99) &&
        (std::isnan(t.faulted_p99_s) || p99 > t.faulted_p99_s))
      t.faulted_p99_s = p99;
    const bool degraded = !std::isfinite(p99) || p99 > degraded_threshold_s;
    if (degraded) {
      if (first_bad < 0) first_bad = static_cast<std::ptrdiff_t>(w);
      last_bad = static_cast<std::ptrdiff_t>(w);
    }
  }
  if (first_bad < 0) {
    t.recovery_s = 0.0;  // never degraded
  } else if (last_bad == static_cast<std::ptrdiff_t>(windows) - 1) {
    t.recovery_s = -1.0;  // still degraded when the run ended
  } else {
    t.recovery_s = static_cast<double>(last_bad + 1 - first_bad) * window_s;
  }
  return t;
}

/// One gauntlet cell: fresh server, optional fault scope for the whole
/// run, ChaosRecord assembled from the client + server views.
ChaosRecord run_cell(const std::string& scenario,
                     const std::optional<FaultPlan>& plan,
                     const ServerOptions& sopts, const LoadGenOptions& lopts,
                     const std::vector<Tensor>& inputs,
                     double baseline_p99_s,
                     dlbench::runtime::fault::FaultStats* fault_stats) {
  const FrameworkKind framework = FrameworkKind::kCaffe;
  const DatasetId dataset = DatasetId::kMnist;
  dlbench::frameworks::PredictorConfig pconfig;
  pconfig.framework = framework;
  pconfig.dataset = dataset;
  pconfig.device = sopts.device;

  std::optional<FaultScope> scope;
  if (plan.has_value()) scope.emplace(*plan);
  ModelServer server(dlbench::frameworks::make_predictor(pconfig), sopts);
  const LoadGenResult load = run_load(server, inputs, lopts);
  server.shutdown();
  const ServerStats stats = server.stats();
  if (scope.has_value() && fault_stats) *fault_stats = scope->stats();

  ChaosRecord r;
  r.framework = to_string(framework);
  r.dataset = to_string(dataset);
  r.device = sopts.device.name();
  r.scenario = scenario;
  r.supervised = sopts.supervise;
  r.replicas = sopts.replicas;
  r.max_batch = sopts.max_batch;
  r.offered_rps = load.offered_rps;
  r.duration_s = load.duration_s;
  r.seed = plan.has_value() ? plan->seed : 0;
  r.issued = load.issued;
  r.ok = load.ok;
  r.rejected = load.rejected;
  r.expired = load.expired;
  r.errors = load.errors + load.shutdown;
  r.shed = load.shed;
  r.goodput_rps = load.achieved_rps;
  r.latency_p50_s = load.latency.percentile(50.0);
  r.latency_p99_s = load.latency.percentile(99.0);
  r.latency_max_s = load.latency.max_s();
  r.crashes = stats.crashes;
  r.restarts = stats.restarts;
  r.stalls_replaced = stats.stalls_replaced;
  r.retries = stats.retries;
  r.hedges = stats.hedges;
  r.hedge_wins = stats.hedge_wins;
  r.corrupted = stats.corrupted;
  r.breaker_opens = stats.breaker_opens;
  r.breaker_closes = stats.breaker_closes;

  r.baseline_p99_s = baseline_p99_s;
  const double window_s = std::max(0.05, load.duration_s / 12.0);
  const Timeline timeline =
      analyze_timeline(load.samples, window_s, 2.0 * baseline_p99_s);
  r.faulted_p99_s = timeline.faulted_p99_s;
  r.p99_inflation = r.faulted_p99_s / baseline_p99_s;
  r.recovery_s = timeline.recovery_s;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using dlbench::bench::BenchSession;
  std::int64_t requests = 800;
  BenchSession session(
      argc, argv, "bench_gauntlet",
      "serving under injected faults: crash, stall, error, breaker",
      [&requests](const std::string& arg) {
        if (arg == "--quick") {
          requests = 250;
          return true;
        }
        if (arg.rfind("--requests=", 0) == 0) {
          requests = std::atoll(arg.c_str() + 11);
          return requests > 0;
        }
        return false;
      });

  const DatasetId dataset = DatasetId::kMnist;
  const std::vector<Tensor> inputs = make_inputs(dataset, 64);

  ServerOptions hardened;
  hardened.sample_shape = dlbench::frameworks::sample_shape(dataset);
  hardened.replicas = 2;
  hardened.max_batch = 4;
  hardened.max_batch_delay_s = 0.001;
  hardened.device = Device::cpu();
  hardened.supervise = true;
  hardened.heartbeat_s = 0.001;

  ServerOptions bare = hardened;  // no supervision, no recovery features
  bare.supervise = false;

  // Calibrate capacity so the offered rate tracks the host instead of a
  // hardcoded machine-dependent number; the gauntlet runs at 60% of the
  // measured closed-loop peak — loaded, but not saturated, so latency
  // inflation is attributable to faults rather than queueing collapse.
  LoadGenOptions probe;
  probe.mode = LoadGenOptions::Mode::kClosedLoop;
  probe.clients = 4;
  probe.duration_s = 0.2;
  double capacity_rps;
  {
    dlbench::frameworks::PredictorConfig pconfig;
    pconfig.framework = FrameworkKind::kCaffe;
    pconfig.dataset = dataset;
    ModelServer server(dlbench::frameworks::make_predictor(pconfig),
                       hardened);
    capacity_rps = run_load(server, inputs, probe).achieved_rps;
  }
  std::cout << "calibration: closed-loop capacity "
            << static_cast<long long>(capacity_rps) << " r/s\n";

  LoadGenOptions open;
  open.mode = LoadGenOptions::Mode::kOpenLoop;
  open.offered_rps = std::max(200.0, 0.6 * capacity_rps);
  open.duration_s = 60.0;  // count-bound; duration is only a backstop
  open.max_requests = requests;
  open.seed = 7;
  open.record_samples = true;

  // No-fault baseline (supervised config, supervision idle): the p99
  // every faulted cell is compared against.
  const ChaosRecord baseline =
      session.add(run_cell("baseline", std::nullopt, hardened, open, inputs,
                           /*baseline_p99_s=*/
                           std::numeric_limits<double>::quiet_NaN(),
                           nullptr));
  const double base_p99 = baseline.latency_p99_s;
  std::cout << "\n";

  // --- crash ---
  FaultPlan crash;
  crash.serve_crash_every = 6;
  crash.serve_crash_max = 4;
  {
    dlbench::runtime::fault::FaultStats fs;
    const ChaosRecord sup = session.add(run_cell(
        "crash", crash, hardened, open, inputs, base_p99, &fs));
    dlbench::bench::shape_check(
        "supervised crash: every injected crash was restarted",
        sup.crashes == crash.serve_crash_max &&
            sup.restarts == sup.crashes && sup.crashes == fs.serve_crashes);
    dlbench::bench::shape_check(
        "supervised crash: full goodput (no request lost to a crash)",
        sup.ok == sup.issued);
    dlbench::bench::shape_check(
        "supervised crash: p99 recovered to the pre-fault band",
        sup.recovery_s >= 0.0);
    const ChaosRecord unsup = session.add(run_cell(
        "crash", crash, bare, open, inputs, base_p99, nullptr));
    dlbench::bench::shape_check(
        "unsupervised crash: fleet death costs goodput and never recovers",
        unsup.ok < unsup.issued && unsup.restarts == 0 &&
            unsup.recovery_s < 0.0);
  }
  std::cout << "\n";

  // --- stall ---
  FaultPlan stall;
  stall.serve_stall_every = 10;
  stall.serve_stall_ms = 120;
  stall.serve_stall_max = 3;
  {
    ServerOptions watched = hardened;
    watched.stall_timeout_s = 0.015;
    watched.hedge_delay_s = 0.03;
    const ChaosRecord sup = session.add(run_cell(
        "stall", stall, watched, open, inputs, base_p99, nullptr));
    dlbench::bench::shape_check(
        "supervised stall: watchdog replaced the frozen replicas",
        sup.stalls_replaced >= 1);
    const ChaosRecord unsup = session.add(run_cell(
        "stall", stall, bare, open, inputs, base_p99, nullptr));
    dlbench::bench::shape_check(
        "stall: supervision bounds the p99 inflation below the bare fleet",
        !(sup.faulted_p99_s > unsup.faulted_p99_s));
  }
  std::cout << "\n";

  // --- transient forward errors ---
  FaultPlan flaky;
  flaky.serve_error_rate = 0.15;
  flaky.serve_error_attempts = 1;  // attempt 0 fails, the retry succeeds
  {
    ServerOptions retrying = hardened;
    retrying.max_retries = 2;
    const ChaosRecord sup = session.add(run_cell(
        "error", flaky, retrying, open, inputs, base_p99, nullptr));
    dlbench::bench::shape_check(
        "supervised error: retries absorb every transient failure",
        sup.errors == 0 && sup.retries > 0 && sup.ok == sup.issued);
    const ChaosRecord unsup = session.add(run_cell(
        "error", flaky, bare, open, inputs, base_p99, nullptr));
    dlbench::bench::shape_check(
        "unsupervised error: every marked request surfaces to the client",
        unsup.errors == sup.retries && unsup.ok == unsup.issued - unsup.errors);
  }
  std::cout << "\n";

  // --- persistent errors + circuit breaker ---
  FaultPlan burn;
  burn.serve_error_rate = 0.5;
  burn.serve_error_attempts = 100;  // effectively permanent per marked id
  {
    LoadGenOptions mixed = open;
    mixed.low_priority_fraction = 0.3;
    ServerOptions breaker = hardened;
    breaker.breaker_threshold = 0.5;
    breaker.breaker_window = 32;
    breaker.breaker_probe_s = 0.05;
    const ChaosRecord sup = session.add(run_cell(
        "breaker", burn, breaker, mixed, inputs, base_p99, nullptr));
    dlbench::bench::shape_check(
        "breaker: opened under the burn and shed low-priority load",
        sup.breaker_opens >= 1 && sup.shed > 0);
    dlbench::bench::shape_check(
        "breaker: re-closed after its probe window",
        sup.breaker_closes >= 1);
    const ChaosRecord unsup = session.add(run_cell(
        "breaker", burn, bare, mixed, inputs, base_p99, nullptr));
    dlbench::bench::shape_check(
        "breaker: bare fleet sheds nothing and eats every failure",
        unsup.shed == 0 && unsup.errors >= sup.errors);
  }
  std::cout << "\n";

  // --- determinism: the supervised crash cell, replayed ---
  {
    const ChaosRecord again = run_cell("crash(replay)", crash, hardened,
                                       open, inputs, base_p99, nullptr);
    const ChaosRecord& first = session.chaos_records()[1];  // crash, sup
    dlbench::bench::shape_check(
        "gauntlet replay: deterministic event counts are identical",
        again.crashes == first.crashes && again.expired == first.expired &&
            again.retries == first.retries &&
            again.corrupted == first.corrupted && again.ok == first.ok);
  }

  std::cout << "\n"
            << dlbench::core::chaos_table("bench_gauntlet — all cells",
                                          session.chaos_records())
            << "\n";
  session.flush();
  return 0;
}
