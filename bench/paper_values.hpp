#pragma once

// Published numbers from the paper's tables and figures, used by every
// bench binary to print paper-vs-measured comparisons. Row order is
// always {TensorFlow, Caffe, Torch} and digit order 0..9, matching the
// paper's layout.

#include <array>

namespace dlbench::bench {

struct PaperCell {
  double train_s;
  double test_s;
  double accuracy_pct;
};

// Table VIa — MNIST baseline defaults.
inline constexpr std::array<PaperCell, 3> kMnistBaselineCpu = {{
    {1114.34, 2.73, 99.28},   // TF
    {512.18, 3.33, 99.03},    // Caffe
    {16096.62, 56.62, 99.20}, // Torch
}};
inline constexpr std::array<PaperCell, 3> kMnistBaselineGpu = {{
    {68.51, 0.26, 99.22},
    {97.02, 0.55, 99.13},
    {563.28, 1.76, 99.18},
}};

// Table VIIa — CIFAR-10 baseline defaults.
inline constexpr std::array<PaperCell, 3> kCifarBaselineCpu = {{
    {219169.14, 4.80, 86.90},
    {1730.89, 14.35, 75.39},
    {38268.67, 121.11, 66.16},
}};
inline constexpr std::array<PaperCell, 3> kCifarBaselineGpu = {{
    {12477.05, 2.34, 87.00},
    {163.51, 1.36, 75.52},
    {722.15, 3.66, 65.61},
}};

// Table VIb — dataset-dependent defaults on MNIST (GPU). Per framework:
// {own MNIST setting, own CIFAR-10 setting}.
inline constexpr std::array<std::array<PaperCell, 2>, 3>
    kMnistDatasetDependentGpu = {{
        {{{68.51, 0.26, 99.22}, {14273.59, 0.60, 99.31}}},   // TF
        {{{97.02, 0.55, 99.13}, {164.68, 1.47, 91.79}}},     // Caffe
        {{{563.28, 1.76, 99.18}, {2978.52, 3.70, 99.17}}},   // Torch
    }};

// Table VIIb — dataset-dependent defaults on CIFAR-10 (GPU).
inline constexpr std::array<std::array<PaperCell, 2>, 3>
    kCifarDatasetDependentGpu = {{
        {{{151.67, 1.32, 69.76}, {12477.05, 2.34, 87.00}}},  // TF
        {{{115.30, 0.64, 11.03}, {163.51, 1.36, 75.52}}},    // Caffe
        {{{638.00, 3.47, 66.40}, {722.15, 3.66, 65.61}}},    // Torch
    }};

// Table VIc — framework-dependent defaults on MNIST (GPU). Outer index:
// executing framework; inner index: setting owner (TF, Caffe, Torch).
inline constexpr std::array<std::array<PaperCell, 3>, 3>
    kMnistFrameworkDependentGpu = {{
        {{{68.51, 0.26, 99.22}, {21.32, 0.12, 98.51}, {176.23, 0.13, 99.10}}},
        {{{206.66, 0.71, 99.94}, {97.02, 0.55, 99.13}, {235.57, 0.76, 94.14}}},
        {{{321.63, 1.53, 99.11}, {187.54, 1.37, 98.78}, {563.28, 1.76, 99.18}}},
    }};

// Table VIIc — framework-dependent defaults on CIFAR-10 (GPU).
inline constexpr std::array<std::array<PaperCell, 3>, 3>
    kCifarFrameworkDependentGpu = {{
        {{{12477.05, 2.34, 87.00}, {32.98, 1.40, 55.96}, {2100.61, 7.10, 55.04}}},
        {{{33908.43, 0.91, 10.10}, {163.51, 1.36, 75.52}, {682.58, 0.58, 59.27}}},
        {{{126304.27, 4.18, 73.74}, {396.86, 4.11, 31.47}, {722.15, 3.66, 65.61}}},
    }};

// Fig 8a/8b — untargeted FGSM success rate per source digit.
inline constexpr std::array<double, 10> kFgsmSuccessTf = {
    0.997, 0.998, 0.892, 0.977, 0.977, 0.989, 0.975, 0.992, 0.979, 0.988};
inline constexpr std::array<double, 10> kFgsmSuccessCaffe = {
    1.000, 1.000, 0.979, 0.986, 0.995, 0.984, 0.995, 0.988, 0.985, 0.991};

// Fig 9 / Table IX — JSMA success rate of crafting digit 1 into class t
// (index by target class; class 1 itself is not attacked). Rows:
// TF(TF), TF(Caffe), Caffe(TF), Caffe(Caffe) — framework(setting).
inline constexpr std::array<std::array<double, 10>, 4> kJsmaDigit1 = {{
    {0.014, 0.0, 0.802, 0.596, 0.421, 0.022, 0.070, 0.633, 0.991, 0.271},
    {0.018, 0.0, 0.721, 0.482, 0.377, 0.025, 0.113, 0.582, 0.823, 0.119},
    {0.584, 0.0, 0.893, 0.802, 0.721, 0.046, 0.533, 0.912, 0.925, 0.327},
    {0.924, 0.0, 0.995, 0.995, 0.993, 0.049, 0.870, 0.982, 0.998, 0.441},
}};
inline constexpr std::array<const char*, 4> kJsmaRowLabels = {
    "TF (TF)", "TF (Caffe)", "Caffe (TF)", "Caffe (Caffe)"};

// Table VIII — average crafting time of targeted attacks (minutes).
inline constexpr std::array<double, 4> kJsmaCraftMinutes = {113, 92, 187,
                                                            134};

}  // namespace dlbench::bench
