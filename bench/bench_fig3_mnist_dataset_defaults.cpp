// Figure 3 / Table VIb — dataset-dependent default settings on MNIST
// (GPU): each framework trains MNIST twice, once with its own MNIST
// default setting and once with its own CIFAR-10 default setting.

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dlbench;
  using namespace dlbench::bench;

  BenchSession session(
      argc, argv, "Fig 3 / Table VIb",
      "MNIST under dataset-dependent default settings (GPU)");
  Harness& harness = session.harness();
  const auto device = runtime::Device::gpu();

  std::vector<RunRecord> records;
  std::vector<PaperCell> paper;
  for (std::size_t f = 0; f < 3; ++f) {
    const FrameworkKind fw = frameworks::kAllFrameworks[f];
    for (std::size_t s = 0; s < 2; ++s) {
      const DatasetId setting_ds =
          s == 0 ? DatasetId::kMnist : DatasetId::kCifar10;
      records.push_back(session.add(
          harness.run(fw, fw, setting_ds, DatasetId::kMnist, device)));
      paper.push_back(kMnistDatasetDependentGpu[f][s]);
    }
  }
  print_vs_paper("Fig 3 — MNIST, own-MNIST vs own-CIFAR-10 settings",
                 records, paper);

  // Paper findings for this figure.
  shape_check(
      "CIFAR-10 settings cost more training time for every framework",
      records[1].train.train_time_s > records[0].train.train_time_s &&
          records[3].train.train_time_s > records[2].train.train_time_s &&
          records[5].train.train_time_s > records[4].train.train_time_s);
  shape_check(
      "TF keeps high accuracy under its CIFAR-10 setting (~99.3 paper)",
      records[1].eval.accuracy_pct > 97.0);
  shape_check(
      "Torch keeps high accuracy under its CIFAR-10 setting (~99.2 paper)",
      records[5].eval.accuracy_pct > 97.0);
  shape_check(
      "Caffe degrades under its CIFAR-10 setting (91.79 vs 99.13 paper)",
      records[3].eval.accuracy_pct < records[2].eval.accuracy_pct - 1.0);
  return 0;
}
