#pragma once

// Shared helpers for the table/figure reproduction binaries.

#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "bench/paper_values.hpp"
#include "core/dlbench.hpp"

namespace dlbench::bench {

using core::Harness;
using core::RunRecord;
using frameworks::DatasetId;
using frameworks::FrameworkKind;

/// Prints measured rows next to the published rows and simple shape
/// checks (who is fastest / most accurate), for one device class.
inline void print_vs_paper(const std::string& title,
                           const std::vector<RunRecord>& records,
                           const std::vector<PaperCell>& paper) {
  util::Table table({"Framework", "Setting", "Device", "Train (s)",
                     "Paper train (s)", "Test (s)", "Paper test (s)",
                     "Acc (%)", "Paper acc (%)", "Converged"});
  table.set_title(title);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    const auto& p = paper[i];
    table.add_row({r.framework, r.setting, r.device,
                   util::format_seconds(r.train.train_time_s),
                   util::format_seconds(p.train_s),
                   util::format_seconds(r.eval.test_time_s),
                   util::format_seconds(p.test_s),
                   util::format_percent(r.eval.accuracy_pct),
                   util::format_percent(p.accuracy_pct),
                   r.train.converged ? "yes" : "NO"});
  }
  std::cout << table << "\n";
}

/// Index of min/max over a metric extracted from records.
template <typename Get>
std::size_t argmin(const std::vector<RunRecord>& rs, Get get) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < rs.size(); ++i)
    if (get(rs[i]) < get(rs[best])) best = i;
  return best;
}
template <typename Get>
std::size_t argmax(const std::vector<RunRecord>& rs, Get get) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < rs.size(); ++i)
    if (get(rs[i]) > get(rs[best])) best = i;
  return best;
}

inline void shape_check(const std::string& what, bool holds) {
  std::cout << "  shape check: " << what << " — "
            << (holds ? "HOLDS" : "DIFFERS") << "\n";
}

}  // namespace dlbench::bench
