#pragma once

// Shared helpers for the table/figure reproduction binaries.

#include <array>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adversarial/engine.hpp"
#include "bench/paper_values.hpp"
#include "core/dlbench.hpp"
#include "runtime/trace.hpp"

namespace dlbench::bench {

using core::Harness;
using core::RunRecord;
using frameworks::DatasetId;
using frameworks::FrameworkKind;

/// Shared session scaffolding for the figure binaries: env-derived
/// harness options, the banner, an optional binary-wide TraceScope
/// (--trace-out=/--trace-summary) and a results-JSON sink (--json-out=).
/// Every cell goes through add(), which prints the one-line summary —
/// the boilerplate each binary used to hand-roll.
class BenchSession {
 public:
  /// Returns true if it consumed `arg`; a binary passes one to accept
  /// flags beyond the session's own.
  using FlagHandler = std::function<bool(const std::string& arg)>;

  BenchSession(int argc, char** argv, const std::string& id,
               const std::string& description,
               const FlagHandler& extra_flags = nullptr)
      : options_(core::HarnessOptions::from_env()) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trace-out=", 0) == 0) {
        trace_out_ = arg.substr(12);
      } else if (arg == "--trace-summary") {
        trace_summary_ = true;
      } else if (arg.rfind("--json-out=", 0) == 0) {
        json_out_ = arg.substr(11);
      } else if (extra_flags && extra_flags(arg)) {
        // consumed by the binary
      } else {
        // A misspelled flag silently measuring the wrong configuration
        // is worse than no measurement: fail loudly instead.
        std::cerr << "error: unknown flag " << arg
                  << " (session flags: --trace-out=PATH, --trace-summary, "
                     "--json-out=PATH)\n";
        std::exit(2);
      }
    }
    core::print_banner(id, description, options_);
    if ((!trace_out_.empty() || trace_summary_) &&
        runtime::trace::compiled() && !runtime::trace::enabled()) {
      runtime::trace::TraceOptions topts;
      topts.out_path = trace_out_;
      topts.print_summary = trace_summary_;
      trace_scope_.emplace(std::move(topts));
    }
    harness_.emplace(options_);
  }

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;
  ~BenchSession() { flush(); }

  Harness& harness() { return *harness_; }
  const core::HarnessOptions& options() const { return options_; }
  const std::vector<RunRecord>& records() const { return records_; }

  /// Registers a finished cell: prints its one-line summary and keeps
  /// it for the end-of-run JSON. Returns the stored record.
  const RunRecord& add(RunRecord record) {
    records_.push_back(std::move(record));
    std::cout << core::summarize(records_.back()) << "\n";
    return records_.back();
  }

  /// Serving-cell variant; lands in the same --json-out (as a "serve"
  /// array when both kinds are present).
  const core::ServeRecord& add(core::ServeRecord record) {
    serve_records_.push_back(std::move(record));
    std::cout << core::summarize(serve_records_.back()) << "\n";
    return serve_records_.back();
  }

  const std::vector<core::ServeRecord>& serve_records() const {
    return serve_records_;
  }

  /// Adversarial-sweep variant; lands in the same --json-out (as an
  /// "attack" array when other record kinds are present).
  const core::AttackRecord& add(core::AttackRecord record) {
    attack_records_.push_back(std::move(record));
    std::cout << core::summarize(attack_records_.back()) << "\n";
    return attack_records_.back();
  }

  const std::vector<core::AttackRecord>& attack_records() const {
    return attack_records_;
  }

  /// Chaos-gauntlet variant; lands in the same --json-out (as a
  /// "chaos" array when other record kinds are present).
  const core::ChaosRecord& add(core::ChaosRecord record) {
    chaos_records_.push_back(std::move(record));
    std::cout << core::summarize(chaos_records_.back()) << "\n";
    return chaos_records_.back();
  }

  const std::vector<core::ChaosRecord>& chaos_records() const {
    return chaos_records_;
  }

  /// Multi-tenant fleet variant; lands in the same --json-out (as a
  /// "tenants" array when other record kinds are present).
  const core::TenantRecord& add(core::TenantRecord record) {
    tenant_records_.push_back(std::move(record));
    std::cout << core::summarize(tenant_records_.back()) << "\n";
    return tenant_records_.back();
  }

  const std::vector<core::TenantRecord>& tenant_records() const {
    return tenant_records_;
  }

  /// Writes --json-out and closes the trace scope (writing --trace-out).
  /// Idempotent; also runs from the destructor.
  void flush() {
    if (flushed_) return;
    flushed_ = true;
    if (!json_out_.empty() && write_json(json_out_)) {
      std::cout << "\nresults JSON: " << json_out_ << "\n";
    }
    if (trace_scope_.has_value()) {
      trace_scope_.reset();
      if (!trace_out_.empty())
        std::cout << "chrome trace: " << trace_out_
                  << " (open via chrome://tracing or ui.perfetto.dev)\n";
    }
  }

 private:
  /// Single-kind runs keep the legacy top-level-array format
  /// (nothing downstream breaks); mixed runs wrap the present arrays
  /// in one object keyed "runs" / "serve" / "attack".
  bool write_json(const std::string& path) const {
    const int kinds = (serve_records_.empty() ? 0 : 1) +
                      (attack_records_.empty() ? 0 : 1) +
                      (chaos_records_.empty() ? 0 : 1) +
                      (tenant_records_.empty() ? 0 : 1) +
                      (records_.empty() ? 0 : 1);
    if (kinds <= 1) {
      if (!serve_records_.empty())
        return core::write_serve_records_json(path, serve_records_);
      if (!attack_records_.empty())
        return core::write_attack_records_json(path, attack_records_);
      if (!chaos_records_.empty())
        return core::write_chaos_records_json(path, chaos_records_);
      if (!tenant_records_.empty())
        return core::write_tenant_records_json(path, tenant_records_);
      return core::write_records_json(path, records_);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "warning: cannot open " << path << " for writing\n";
      return false;
    }
    out << "{";
    bool first = true;
    if (!records_.empty()) {
      out << "\"runs\":" << core::records_json(records_);
      first = false;
    }
    if (!serve_records_.empty()) {
      out << (first ? "" : ",")
          << "\"serve\":" << core::serve_records_json(serve_records_);
      first = false;
    }
    if (!attack_records_.empty()) {
      out << (first ? "" : ",")
          << "\"attack\":" << core::attack_records_json(attack_records_);
      first = false;
    }
    if (!chaos_records_.empty()) {
      out << (first ? "" : ",")
          << "\"chaos\":" << core::chaos_records_json(chaos_records_);
      first = false;
    }
    if (!tenant_records_.empty()) {
      out << (first ? "" : ",")
          << "\"tenants\":" << core::tenant_records_json(tenant_records_);
    }
    out << "}\n";
    return out.good();
  }

  core::HarnessOptions options_;
  std::string trace_out_;
  std::string json_out_;
  bool trace_summary_ = false;
  bool flushed_ = false;
  // Scope before harness: the harness must see tracing already active
  // so it does not arm its own per-cell scopes on top.
  std::optional<runtime::trace::TraceScope> trace_scope_;
  std::optional<Harness> harness_;
  std::vector<RunRecord> records_;
  std::vector<core::ServeRecord> serve_records_;
  std::vector<core::AttackRecord> attack_records_;
  std::vector<core::ChaosRecord> chaos_records_;
  std::vector<core::TenantRecord> tenant_records_;
};

/// FlagHandler for the attack benches' --attack-threads=N flag: number
/// of crafting workers the adversarial engine fans attack units across
/// (1 = serial; results are bitwise-identical either way).
inline BenchSession::FlagHandler attack_threads_flag(int* threads) {
  return [threads](const std::string& arg) {
    if (arg.rfind("--attack-threads=", 0) != 0) return false;
    *threads = std::atoi(arg.c_str() + 17);
    if (*threads < 1) {
      std::cerr << "error: --attack-threads must be >= 1\n";
      std::exit(2);
    }
    return true;
  };
}

/// Fills the configuration + timing half of an AttackRecord shared by
/// both sweep kinds; the caller sets the outcome tallies.
inline core::AttackRecord attack_record_base(
    const std::string& framework, const std::string& setting,
    const std::string& dataset, const std::string& attack,
    const std::string& device, const adversarial::CraftTiming& timing) {
  core::AttackRecord rec;
  rec.framework = framework;
  rec.setting = setting;
  rec.dataset = dataset;
  rec.attack = attack;
  rec.device = device;
  rec.threads = timing.threads;
  rec.screening_s = timing.screening_s;
  rec.craft_wall_s = timing.craft_wall_s;
  rec.craft_mean_s = timing.craft_time.mean_s();
  rec.craft_p50_s = timing.craft_time.percentile(50.0);
  rec.craft_p95_s = timing.craft_time.percentile(95.0);
  rec.craft_p99_s = timing.craft_time.percentile(99.0);
  rec.craft_max_s = timing.craft_time.max_s();
  return rec;
}

/// Prints measured rows next to the published rows and simple shape
/// checks (who is fastest / most accurate), for one device class.
inline void print_vs_paper(const std::string& title,
                           const std::vector<RunRecord>& records,
                           const std::vector<PaperCell>& paper) {
  util::Table table({"Framework", "Setting", "Device", "Train (s)",
                     "Paper train (s)", "Test (s)", "Paper test (s)",
                     "Acc (%)", "Paper acc (%)", "Converged"});
  table.set_title(title);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    const auto& p = paper[i];
    table.add_row({r.framework, r.setting, r.device,
                   util::format_seconds(r.train.train_time_s),
                   util::format_seconds(p.train_s),
                   util::format_seconds(r.eval.test_time_s),
                   util::format_seconds(p.test_s),
                   util::format_percent(r.eval.accuracy_pct),
                   util::format_percent(p.accuracy_pct),
                   r.train.converged ? "yes" : "NO"});
  }
  std::cout << table << "\n";
}

/// Index of min/max over a metric extracted from records.
template <typename Get>
std::size_t argmin(const std::vector<RunRecord>& rs, Get get) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < rs.size(); ++i)
    if (get(rs[i]) < get(rs[best])) best = i;
  return best;
}
template <typename Get>
std::size_t argmax(const std::vector<RunRecord>& rs, Get get) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < rs.size(); ++i)
    if (get(rs[i]) > get(rs[best])) best = i;
  return best;
}

inline void shape_check(const std::string& what, bool holds) {
  std::cout << "  shape check: " << what << " — "
            << (holds ? "HOLDS" : "DIFFERS") << "\n";
}

}  // namespace dlbench::bench
