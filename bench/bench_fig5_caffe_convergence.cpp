// Figure 5 — training loss (convergence) of Caffe on CIFAR-10 under its
// CIFAR-10 default setting vs its MNIST default setting. The paper
// shows the CIFAR-10 setting converging while the MNIST setting sits at
// a constant loss of 87.34 (= -log(FLT_MIN), Caffe's loss clamp).

#include <iostream>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dlbench;
  using namespace dlbench::bench;

  BenchSession session(argc, argv, "Fig 5",
                       "Caffe training-loss convergence on CIFAR-10: MNIST "
                       "vs CIFAR-10 default settings (GPU)");
  Harness& harness = session.harness();
  const auto device = runtime::Device::gpu();

  auto good = harness.train_model(FrameworkKind::kCaffe,
                                  FrameworkKind::kCaffe,
                                  DatasetId::kCifar10, DatasetId::kCifar10,
                                  device);
  auto bad = harness.train_model(FrameworkKind::kCaffe,
                                 FrameworkKind::kCaffe, DatasetId::kMnist,
                                 DatasetId::kCifar10, device);

  std::cout << "\nTraining loss curves (step, loss):\n";
  util::Table table({"Step", "Caffe CIFAR-10 settings", "Caffe MNIST settings"});
  const auto& g = good.record.train.loss_curve;
  const auto& b = bad.record.train.loss_curve;
  const std::size_t rows = std::max(g.size(), b.size());
  for (std::size_t i = 0; i < rows; ++i) {
    table.add_row(
        {std::to_string(i < g.size() ? g[i].first : b[i].first),
         i < g.size() ? util::format_fixed(g[i].second, 4) : "-",
         i < b.size() ? util::format_fixed(b[i].second, 4) : "-"});
  }
  std::cout << table << "\n";

  session.add(good.record);
  session.add(bad.record);
  std::cout << "\n";

  // Robustness report: how the guarded trainer handled each cell —
  // first divergent step (if any), rollback/retry count, final status.
  // With DLB_FAULT_* set this shows injected faults being absorbed.
  util::Table recovery({"Cell", "Status", "Divergence Step", "Recoveries",
                        "Timed Out"});
  recovery.set_title("Guarded-training recovery stats");
  auto recovery_row = [&recovery](const std::string& name,
                                  const core::RunRecord& r) {
    recovery.add_row({name, core::run_status(r),
                      r.train.divergence_step < 0
                          ? "-"
                          : std::to_string(r.train.divergence_step),
                      std::to_string(r.train.recovery_attempts),
                      r.train.timed_out ? "yes" : "no"});
  };
  recovery_row("Caffe CIFAR-10 settings", good.record);
  recovery_row("Caffe MNIST settings", bad.record);
  std::cout << recovery << "\n";

  shape_check("CIFAR-10 settings converge (loss declines, paper Fig 5)",
              good.record.train.converged &&
                  g.back().second < g.front().second * 0.8);
  shape_check("MNIST settings fail to converge on CIFAR-10 (paper Fig 5)",
              !bad.record.train.converged);
  shape_check("non-convergent accuracy is near chance (11.03% paper)",
              bad.record.eval.accuracy_pct < 35.0);
  return 0;
}
