#include "nn/layers.hpp"

#include <cmath>
#include <sstream>

#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::nn {

using tensor::Shape;

// ---- Conv2d ----

Conv2d::Conv2d(tensor::ConvGeom geom, tensor::InitKind init, util::Rng& rng)
    : geom_(geom),
      weight_(Shape({geom.out_c, geom.patch_size()})),
      bias_(Shape({geom.out_c})),
      dweight_(Shape({geom.out_c, geom.patch_size()})),
      dbias_(Shape({geom.out_c})) {
  tensor::initialize(weight_, init, geom.patch_size(),
                     geom.out_c * geom.kernel * geom.kernel, rng);
}

std::string Conv2d::describe() const {
  std::ostringstream os;
  os << "conv" << geom_.kernel << "x" << geom_.kernel << " " << geom_.in_c
     << "->" << geom_.out_c;
  if (geom_.pad != 0) os << " pad" << geom_.pad;
  if (geom_.stride != 1) os << " stride" << geom_.stride;
  return os.str();
}

Tensor Conv2d::forward(const Tensor& x, const Context& ctx) {
  cached_input_ = x;
  return tensor::conv2d_forward(x, weight_, bias_, geom_, ctx.device);
}

Tensor Conv2d::backward(const Tensor& dy, const Context& ctx) {
  DLB_CHECK(!cached_input_.empty(), "Conv2d::backward before forward");
  auto g = tensor::conv2d_backward(cached_input_, weight_, dy, geom_,
                                   ctx.device);
  tensor::add_inplace(dweight_, g.dweight, ctx.device);
  tensor::add_inplace(dbias_, g.dbias, ctx.device);
  return g.dx;
}

// ---- Linear ----

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               tensor::InitKind init, util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Shape({in_features, out_features})),
      bias_(Shape({out_features})),
      dweight_(Shape({in_features, out_features})),
      dbias_(Shape({out_features})) {
  DLB_CHECK(in_features > 0 && out_features > 0,
            "Linear dims must be positive");
  tensor::initialize(weight_, init, in_features, out_features, rng);
}

std::string Linear::describe() const {
  std::ostringstream os;
  os << "fc " << in_ << "->" << out_;
  return os.str();
}

Tensor Linear::forward(const Tensor& x, const Context& ctx) {
  DLB_CHECK(x.shape().rank() == 2 && x.dim(1) == in_,
            "Linear expects [N, " << in_ << "], got "
                                  << x.shape().to_string());
  cached_input_ = x;
  return tensor::matmul_bias(x, weight_, bias_, ctx.device);
}

Tensor Linear::backward(const Tensor& dy, const Context& ctx) {
  DLB_CHECK(!cached_input_.empty(), "Linear::backward before forward");
  // dW[in, out] = x^T [in, N] * dy [N, out]
  Tensor dw = tensor::matmul_tn(cached_input_, dy, ctx.device);
  tensor::add_inplace(dweight_, dw, ctx.device);
  Tensor db = tensor::column_sums(dy, ctx.device);
  tensor::add_inplace(dbias_, db, ctx.device);
  // dx[N, in] = dy [N, out] * W^T [out, in]
  return tensor::matmul_nt(dy, weight_, ctx.device);
}

// ---- LinearReLU ----

LinearReLU::LinearReLU(std::int64_t in_features, std::int64_t out_features,
                       tensor::InitKind init, util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Shape({in_features, out_features})),
      bias_(Shape({out_features})),
      dweight_(Shape({in_features, out_features})),
      dbias_(Shape({out_features})) {
  DLB_CHECK(in_features > 0 && out_features > 0,
            "LinearReLU dims must be positive");
  tensor::initialize(weight_, init, in_features, out_features, rng);
}

std::string LinearReLU::describe() const {
  std::ostringstream os;
  os << "fc+relu " << in_ << "->" << out_;
  return os.str();
}

Tensor LinearReLU::forward(const Tensor& x, const Context& ctx) {
  DLB_CHECK(x.shape().rank() == 2 && x.dim(1) == in_,
            "LinearReLU expects [N, " << in_ << "], got "
                                      << x.shape().to_string());
  cached_input_ = x;
  cached_output_ = tensor::matmul_bias_relu(x, weight_, bias_, ctx.device);
  return cached_output_;
}

Tensor LinearReLU::backward(const Tensor& dy, const Context& ctx) {
  DLB_CHECK(!cached_input_.empty(), "LinearReLU::backward before forward");
  // The cached output is a valid ReLU mask: y > 0 iff pre-activation > 0.
  Tensor dz = tensor::relu_backward(cached_output_, dy, ctx.device);
  Tensor dw = tensor::matmul_tn(cached_input_, dz, ctx.device);
  tensor::add_inplace(dweight_, dw, ctx.device);
  Tensor db = tensor::column_sums(dz, ctx.device);
  tensor::add_inplace(dbias_, db, ctx.device);
  return tensor::matmul_nt(dz, weight_, ctx.device);
}

// ---- pooling ----

std::string MaxPool2d::describe() const {
  std::ostringstream os;
  os << "maxpool" << geom_.window << "x" << geom_.window << " stride"
     << geom_.stride << (geom_.ceil_mode ? " ceil" : "");
  return os.str();
}

Tensor MaxPool2d::forward(const Tensor& x, const Context& ctx) {
  return tensor::maxpool_forward(x, geom_, argmax_, ctx.device);
}

Tensor MaxPool2d::backward(const Tensor& dy, const Context& ctx) {
  DLB_CHECK(!argmax_.empty(), "MaxPool2d::backward before forward");
  return tensor::maxpool_backward(dy, geom_, argmax_, ctx.device);
}

std::string AvgPool2d::describe() const {
  std::ostringstream os;
  os << "avgpool" << geom_.window << "x" << geom_.window << " stride"
     << geom_.stride << (geom_.ceil_mode ? " ceil" : "");
  return os.str();
}

Tensor AvgPool2d::forward(const Tensor& x, const Context& ctx) {
  return tensor::avgpool_forward(x, geom_, ctx.device);
}

Tensor AvgPool2d::backward(const Tensor& dy, const Context& ctx) {
  return tensor::avgpool_backward(dy, geom_, ctx.device);
}

// ---- activations ----

Tensor ReLU::forward(const Tensor& x, const Context& ctx) {
  cached_input_ = x;
  return tensor::relu(x, ctx.device);
}

Tensor ReLU::backward(const Tensor& dy, const Context& ctx) {
  DLB_CHECK(!cached_input_.empty(), "ReLU::backward before forward");
  return tensor::relu_backward(cached_input_, dy, ctx.device);
}

Tensor Tanh::forward(const Tensor& x, const Context& ctx) {
  cached_output_ = tensor::tanh_op(x, ctx.device);
  return cached_output_;
}

Tensor Tanh::backward(const Tensor& dy, const Context& ctx) {
  DLB_CHECK(!cached_output_.empty(), "Tanh::backward before forward");
  return tensor::tanh_backward(cached_output_, dy, ctx.device);
}

// ---- dropout ----

Dropout::Dropout(float drop_probability) : p_(drop_probability) {
  DLB_CHECK(p_ >= 0.f && p_ < 1.f, "dropout probability must be in [0,1)");
}

std::string Dropout::describe() const {
  std::ostringstream os;
  os << "dropout p=" << p_;
  return os.str();
}

Tensor Dropout::forward(const Tensor& x, const Context& ctx) {
  if (!ctx.training || p_ == 0.f) {
    mask_valid_ = false;
    return x;
  }
  DLB_CHECK(ctx.rng != nullptr, "Dropout in training mode needs an Rng");
  mask_ = Tensor(x.shape());
  const float keep = 1.f - p_;
  const float scale = 1.f / keep;
  float* pm = mask_.raw();
  // Inverted dropout mask drawn serially for determinism.
  for (std::int64_t i = 0; i < mask_.numel(); ++i)
    pm[i] = ctx.rng->bernoulli(keep) ? scale : 0.f;
  mask_valid_ = true;
  return tensor::mul(x, mask_, ctx.device);
}

Tensor Dropout::backward(const Tensor& dy, const Context& ctx) {
  if (!mask_valid_) return dy;
  return tensor::mul(dy, mask_, ctx.device);
}

// ---- local response normalization ----

namespace {

// s^-beta on the hot path. For the default beta = 0.75 this is
// 1/(sqrt(s)*sqrt(sqrt(s))) — ~20x cheaper than std::pow per element.
inline float pow_neg_beta(float s, float beta) {
  if (beta == 0.75f) {
    const float r = std::sqrt(s);
    return 1.f / (r * std::sqrt(r));
  }
  return std::pow(s, -beta);
}

}  // namespace

LocalResponseNorm::LocalResponseNorm(std::int64_t depth_radius, float bias,
                                     float alpha, float beta)
    : radius_(depth_radius), k_(bias), alpha_(alpha), beta_(beta) {
  DLB_CHECK(radius_ >= 0, "LRN radius must be non-negative");
}

std::string LocalResponseNorm::describe() const {
  std::ostringstream os;
  os << "lrn r=" << radius_ << " beta=" << beta_;
  return os.str();
}

Tensor LocalResponseNorm::forward(const Tensor& x, const Context& ctx) {
  cached_input_ = x;
  return lrn_forward(x, radius_, k_, alpha_, beta_, &cached_scale_,
                     ctx.device);
}

Tensor lrn_forward(const Tensor& x, std::int64_t radius, float k, float alpha,
                   float beta, Tensor* scale_out, const Device& device) {
  DLB_CHECK(x.shape().rank() == 4, "LRN expects [N, C, H, W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t hw = h * w;
  if (scale_out != nullptr) *scale_out = Tensor(x.shape());
  Tensor y(x.shape());
  const float* px = x.raw();
  float* ps = scale_out != nullptr ? scale_out->raw() : nullptr;
  float* py = y.raw();

  device.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const float* xi = px + static_cast<std::int64_t>(i) * c * hw;
          float* si = ps ? ps + static_cast<std::int64_t>(i) * c * hw : nullptr;
          float* yi = py + static_cast<std::int64_t>(i) * c * hw;
          for (std::int64_t pos = 0; pos < hw; ++pos) {
            for (std::int64_t ch = 0; ch < c; ++ch) {
              const std::int64_t lo_c = std::max<std::int64_t>(0, ch - radius);
              const std::int64_t hi_c = std::min(c - 1, ch + radius);
              float acc = 0.f;
              for (std::int64_t j = lo_c; j <= hi_c; ++j) {
                const float v = xi[j * hw + pos];
                acc += v * v;
              }
              const float scale = k + alpha * acc;
              if (si) si[ch * hw + pos] = scale;
              yi[ch * hw + pos] =
                  xi[ch * hw + pos] * pow_neg_beta(scale, beta);
            }
          }
        }
      },
      1);
  return y;
}

Tensor LocalResponseNorm::backward(const Tensor& dy, const Context& ctx) {
  DLB_CHECK(!cached_input_.empty(), "LRN::backward before forward");
  const Tensor& x = cached_input_;
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t hw = h * w;
  Tensor dx(x.shape());
  const float* px = x.raw();
  const float* ps = cached_scale_.raw();
  const float* pdy = dy.raw();
  float* pdx = dx.raw();

  // dx_j = dy_j * s_j^-beta
  //        - 2 alpha beta x_j * sum_{i: j in win(i)} dy_i x_i s_i^{-beta-1}
  ctx.device.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const float* xi = px + static_cast<std::int64_t>(i) * c * hw;
          const float* si = ps + static_cast<std::int64_t>(i) * c * hw;
          const float* gi = pdy + static_cast<std::int64_t>(i) * c * hw;
          float* di = pdx + static_cast<std::int64_t>(i) * c * hw;
          for (std::int64_t pos = 0; pos < hw; ++pos) {
            for (std::int64_t ch = 0; ch < c; ++ch) {
              const float s = si[ch * hw + pos];
              float grad = gi[ch * hw + pos] * pow_neg_beta(s, beta_);
              const std::int64_t lo_c = std::max<std::int64_t>(0, ch - radius_);
              const std::int64_t hi_c = std::min(c - 1, ch + radius_);
              float cross = 0.f;
              for (std::int64_t j = lo_c; j <= hi_c; ++j) {
                const float sj = si[j * hw + pos];
                cross += gi[j * hw + pos] * xi[j * hw + pos] *
                         pow_neg_beta(sj, beta_) / sj;
              }
              grad -= 2.f * alpha_ * beta_ * xi[ch * hw + pos] * cross;
              di[ch * hw + pos] = grad;
            }
          }
        }
      },
      1);
  return dx;
}

// ---- flatten ----

Tensor Flatten::forward(const Tensor& x, const Context&) {
  DLB_CHECK(x.shape().rank() >= 2, "Flatten expects a batched tensor");
  input_shape_ = x.shape();
  const std::int64_t n = x.dim(0);
  return x.reshape(Shape({n, x.numel() / n}));
}

Tensor Flatten::backward(const Tensor& dy, const Context&) {
  DLB_CHECK(input_shape_.rank() != 0, "Flatten::backward before forward");
  return dy.reshape(input_shape_);
}

// ---- clone ----
//
// Parameterized layers rebuild through their own constructor (throwaway
// init, immediately overwritten) and then deep-copy the weights; the
// ctor already gives them zeroed gradient buffers and empty caches,
// which is exactly the "fresh layer, same weights" contract.

namespace {
util::Rng& clone_init_rng() {
  // Scratch stream for the overwritten init; never observable.
  thread_local util::Rng rng(0);
  return rng;
}
}  // namespace

LayerPtr Conv2d::clone() const {
  auto copy = std::make_unique<Conv2d>(geom_, tensor::InitKind::kXavierUniform,
                                       clone_init_rng());
  copy->weight_ = weight_.clone();
  copy->bias_ = bias_.clone();
  return copy;
}

LayerPtr Linear::clone() const {
  auto copy = std::make_unique<Linear>(
      in_, out_, tensor::InitKind::kXavierUniform, clone_init_rng());
  copy->weight_ = weight_.clone();
  copy->bias_ = bias_.clone();
  return copy;
}

LayerPtr LinearReLU::clone() const {
  auto copy = std::make_unique<LinearReLU>(
      in_, out_, tensor::InitKind::kXavierUniform, clone_init_rng());
  copy->weight_ = weight_.clone();
  copy->bias_ = bias_.clone();
  return copy;
}

LayerPtr MaxPool2d::clone() const { return std::make_unique<MaxPool2d>(geom_); }

LayerPtr AvgPool2d::clone() const { return std::make_unique<AvgPool2d>(geom_); }

LayerPtr Dropout::clone() const { return std::make_unique<Dropout>(p_); }

LayerPtr LocalResponseNorm::clone() const {
  return std::make_unique<LocalResponseNorm>(radius_, k_, alpha_, beta_);
}

}  // namespace dlbench::nn
