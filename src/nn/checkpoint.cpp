#include "nn/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace dlbench::nn {

namespace {

constexpr std::uint32_t kMagic = 0x444c4243;  // "DLBC"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_i64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  DLB_CHECK(in.good(), "checkpoint stream truncated");
  return v;
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  DLB_CHECK(in.good(), "checkpoint stream truncated");
  return v;
}

}  // namespace

void save_checkpoint(Sequential& model, std::ostream& out) {
  const auto params = model.params();
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const tensor::Tensor* p : params) {
    write_u32(out, static_cast<std::uint32_t>(p->shape().rank()));
    for (int d = 0; d < p->shape().rank(); ++d)
      write_i64(out, p->shape().dim(d));
    out.write(reinterpret_cast<const char*>(p->raw()),
              static_cast<std::streamsize>(p->numel() * sizeof(float)));
  }
  DLB_CHECK(out.good(), "checkpoint write failed");
}

void save_checkpoint(Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  DLB_CHECK(out.is_open(), "cannot open " << path << " for writing");
  save_checkpoint(model, out);
}

void load_checkpoint(Sequential& model, std::istream& in) {
  DLB_CHECK(read_u32(in) == kMagic, "not a dlbench checkpoint");
  const std::uint32_t version = read_u32(in);
  DLB_CHECK(version == kVersion, "unsupported checkpoint version "
                                     << version);
  const auto params = model.params();
  const std::uint32_t count = read_u32(in);
  DLB_CHECK(count == params.size(),
            "checkpoint holds " << count << " tensors, model expects "
                                << params.size());
  for (tensor::Tensor* p : params) {
    const std::uint32_t rank = read_u32(in);
    DLB_CHECK(rank == static_cast<std::uint32_t>(p->shape().rank()),
              "tensor rank mismatch: " << rank << " vs "
                                       << p->shape().rank());
    for (int d = 0; d < p->shape().rank(); ++d) {
      const std::int64_t dim = read_i64(in);
      DLB_CHECK(dim == p->shape().dim(d),
                "tensor dim mismatch at axis " << d << ": " << dim << " vs "
                                               << p->shape().dim(d));
    }
    in.read(reinterpret_cast<char*>(p->raw()),
            static_cast<std::streamsize>(p->numel() * sizeof(float)));
    DLB_CHECK(in.good(), "checkpoint stream truncated mid-tensor");
  }
}

void load_checkpoint(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DLB_CHECK(in.is_open(), "cannot open " << path << " for reading");
  load_checkpoint(model, in);
}

}  // namespace dlbench::nn
