#include "nn/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "runtime/fault.hpp"
#include "runtime/trace.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace dlbench::nn {

namespace {

constexpr std::uint32_t kMagic = 0x444c4243;  // "DLBC"
// v1: magic, version, count, tensors — no integrity protection.
// v2: magic, version, payload length (u64), payload (count + tensors),
//     CRC-32 of the payload. Old v1 streams remain loadable.
constexpr std::uint32_t kLegacyVersion = 1;
constexpr std::uint32_t kVersion = 2;
// magic + version + payload length.
constexpr std::size_t kHeaderBytes = 2 * sizeof(std::uint32_t) +
                                     sizeof(std::uint64_t);

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_i64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  DLB_CHECK(in.good(), "checkpoint stream truncated");
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  DLB_CHECK(in.good(), "checkpoint stream truncated");
  return v;
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  DLB_CHECK(in.good(), "checkpoint stream truncated");
  return v;
}

// Serializes the version-independent payload: tensor count, then each
// tensor as rank + dims + raw float32 data.
std::string serialize_payload(Sequential& model) {
  std::ostringstream payload(std::ios::binary);
  const auto params = model.params();
  write_u32(payload, static_cast<std::uint32_t>(params.size()));
  for (const tensor::Tensor* p : params) {
    write_u32(payload, static_cast<std::uint32_t>(p->shape().rank()));
    for (int d = 0; d < p->shape().rank(); ++d)
      write_i64(payload, p->shape().dim(d));
    payload.write(reinterpret_cast<const char*>(p->raw()),
                  static_cast<std::streamsize>(p->numel() * sizeof(float)));
  }
  return std::move(payload).str();
}

// Parses the payload into the model (shared by v1 and v2 loads).
void load_payload(Sequential& model, std::istream& in) {
  const auto params = model.params();
  const std::uint32_t count = read_u32(in);
  DLB_CHECK(count == params.size(),
            "checkpoint holds " << count << " tensors, model expects "
                                << params.size());
  for (tensor::Tensor* p : params) {
    const std::uint32_t rank = read_u32(in);
    DLB_CHECK(rank == static_cast<std::uint32_t>(p->shape().rank()),
              "tensor rank mismatch: " << rank << " vs "
                                       << p->shape().rank());
    for (int d = 0; d < p->shape().rank(); ++d) {
      const std::int64_t dim = read_i64(in);
      DLB_CHECK(dim == p->shape().dim(d),
                "tensor dim mismatch at axis " << d << ": " << dim << " vs "
                                               << p->shape().dim(d));
    }
    in.read(reinterpret_cast<char*>(p->raw()),
            static_cast<std::streamsize>(p->numel() * sizeof(float)));
    DLB_CHECK(in.good(), "checkpoint stream truncated mid-tensor");
  }
}

}  // namespace

void save_checkpoint(Sequential& model, std::ostream& out) {
  runtime::trace::Span span("checkpoint.save", "io");
  const std::string payload = serialize_payload(model);
  std::ostringstream container(std::ios::binary);
  write_u32(container, kMagic);
  write_u32(container, kVersion);
  write_u64(container, static_cast<std::uint64_t>(payload.size()));
  container.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
  write_u32(container, util::crc32(payload.data(), payload.size()));

  std::string bytes = std::move(container).str();
  // Injection point: simulated disk corruption lands in the protected
  // region (past the header) so the CRC is what detects it.
  runtime::fault::maybe_corrupt_stream(bytes, kHeaderBytes);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  DLB_CHECK(out.good(), "checkpoint write failed");
}

void save_checkpoint(Sequential& model, const std::string& path) {
  // Write-temp-then-rename: a crash or fault mid-write can never leave
  // a half-written file at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    DLB_CHECK(out.is_open(), "cannot open " << tmp << " for writing");
    save_checkpoint(model, out);
    out.flush();
    DLB_CHECK(out.good(), "checkpoint write to " << tmp << " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    DLB_CHECK(false, "cannot rename " << tmp << " to " << path);
  }
}

void load_checkpoint(Sequential& model, std::istream& in) {
  runtime::trace::Span span("checkpoint.load", "io");
  DLB_CHECK(read_u32(in) == kMagic, "not a dlbench checkpoint");
  const std::uint32_t version = read_u32(in);
  if (version == kLegacyVersion) {
    load_payload(model, in);
    return;
  }
  DLB_CHECK(version == kVersion, "unsupported checkpoint version "
                                     << version);
  const std::uint64_t length = read_u64(in);
  // Bound the allocation before trusting a possibly-corrupt header.
  DLB_CHECK(length <= (1ull << 31),
            "implausible checkpoint payload length " << length);
  std::string payload(length, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(length));
  DLB_CHECK(in.good() &&
                static_cast<std::uint64_t>(in.gcount()) == length,
            "checkpoint stream truncated (payload shorter than header's "
                << length << " bytes)");
  const std::uint32_t expected = read_u32(in);
  const std::uint32_t actual = util::crc32(payload.data(), payload.size());
  DLB_CHECK(actual == expected,
            "checkpoint checksum mismatch (stored " << expected << ", computed "
                << actual << ") — stream is corrupt");
  std::istringstream payload_in(payload, std::ios::binary);
  load_payload(model, payload_in);
}

void load_checkpoint(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DLB_CHECK(in.is_open(), "cannot open " << path << " for reading");
  load_checkpoint(model, in);
}

CheckpointSource load_checkpoint_with_fallback(Sequential& model,
                                               const std::string& primary,
                                               const std::string& fallback) {
  runtime::trace::Span span("checkpoint.load_fallback", "io");
  std::string primary_error;
  try {
    load_checkpoint(model, primary);
    return CheckpointSource::kPrimary;
  } catch (const std::exception& e) {
    // Truncation mid-header, CRC mismatch, missing file — all land
    // here; the v2 path validated before mutating, so the model is
    // still whatever it was.
    primary_error = e.what();
  }
  runtime::trace::counter_add("checkpoint.fallbacks", 1);
  try {
    load_checkpoint(model, fallback);
  } catch (const std::exception& e) {
    DLB_CHECK(false, "both checkpoints unusable: primary '"
                         << primary << "' (" << primary_error
                         << "); fallback '" << fallback << "' ("
                         << e.what() << ")");
  }
  return CheckpointSource::kFallback;
}

}  // namespace dlbench::nn
