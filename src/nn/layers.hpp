#pragma once

// Concrete layers: everything the paper's default networks use
// (Tables IV and V): 5x5 convolutions, max/average pooling, fully
// connected layers, ReLU/Tanh activations, Dropout (TF's regularizer),
// local response normalization (TF's CIFAR-10 "Normalization"), and
// Flatten to bridge conv and fc stages.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/conv.hpp"
#include "tensor/init.hpp"
#include "tensor/pool.hpp"

namespace dlbench::nn {

/// 2-D convolution with square kernels; weight layout [out_c, in_c*k*k].
class Conv2d final : public Layer {
 public:
  Conv2d(tensor::ConvGeom geom, tensor::InitKind init, util::Rng& rng);

  std::string describe() const override;
  LayerPtr clone() const override;
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweight_, &dbias_}; }

  const tensor::ConvGeom& geom() const { return geom_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  tensor::ConvGeom geom_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor cached_input_;
};

/// Fully connected layer; weight layout [in_features, out_features].
class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features,
         tensor::InitKind init, util::Rng& rng);

  std::string describe() const override;
  LayerPtr clone() const override;
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweight_, &dbias_}; }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  std::int64_t in_, out_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor cached_input_;
};

/// Fully connected layer with the ReLU fused into the GEMM epilogue:
/// forward is a single tensor::matmul_bias_relu call, so the activation
/// is applied while each output tile is still in registers instead of
/// in a second pass over the output. Bitwise-identical to Linear
/// followed by ReLU (see DESIGN.md §11); gradients match too because
/// relu(z) > 0 exactly when z > 0, so the cached output doubles as the
/// backward mask.
class LinearReLU final : public Layer {
 public:
  LinearReLU(std::int64_t in_features, std::int64_t out_features,
             tensor::InitKind init, util::Rng& rng);

  std::string describe() const override;
  LayerPtr clone() const override;
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweight_, &dbias_}; }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  std::int64_t in_, out_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor cached_input_, cached_output_;
};

/// Max pooling; records argmax indices for backward.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(tensor::PoolGeom geom) : geom_(geom) {}

  std::string describe() const override;
  LayerPtr clone() const override;
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;

  const tensor::PoolGeom& geom() const { return geom_; }

 private:
  tensor::PoolGeom geom_;
  std::vector<std::int32_t> argmax_;
};

/// Average pooling.
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(tensor::PoolGeom geom) : geom_(geom) {}

  std::string describe() const override;
  LayerPtr clone() const override;
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;

  const tensor::PoolGeom& geom() const { return geom_; }

 private:
  tensor::PoolGeom geom_;
};

/// ReLU activation.
class ReLU final : public Layer {
 public:
  std::string describe() const override { return "ReLU"; }
  LayerPtr clone() const override { return std::make_unique<ReLU>(); }
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;

 private:
  Tensor cached_input_;
};

/// Tanh activation (Torch's historical default in the paper's nets).
class Tanh final : public Layer {
 public:
  std::string describe() const override { return "Tanh"; }
  LayerPtr clone() const override { return std::make_unique<Tanh>(); }
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;

 private:
  Tensor cached_output_;
};

/// Inverted dropout: active only in training mode, identity at test
/// time. This is TensorFlow's regularizer in the paper's comparison.
class Dropout final : public Layer {
 public:
  explicit Dropout(float drop_probability);

  std::string describe() const override;
  LayerPtr clone() const override;
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;

  float probability() const { return p_; }

 private:
  float p_;
  Tensor mask_;
  bool mask_valid_ = false;
};

/// Cross-channel local response normalization (TF CIFAR-10 tutorial's
/// "norm" layers): y_i = x_i / (k + alpha * sum_{j in window} x_j^2)^beta.
class LocalResponseNorm final : public Layer {
 public:
  LocalResponseNorm(std::int64_t depth_radius = 4, float bias = 1.f,
                    float alpha = 0.001f / 9.0f, float beta = 0.75f);

  std::string describe() const override;
  LayerPtr clone() const override;
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;

  std::int64_t radius() const { return radius_; }
  float bias() const { return k_; }
  float alpha() const { return alpha_; }
  float beta() const { return beta_; }

 private:
  std::int64_t radius_;
  float k_, alpha_, beta_;
  Tensor cached_input_, cached_scale_;  // scale = k + alpha * window sum
};

/// Reshapes [N, C, H, W] to [N, C*H*W]; backward restores the shape.
class Flatten final : public Layer {
 public:
  std::string describe() const override { return "Flatten"; }
  LayerPtr clone() const override { return std::make_unique<Flatten>(); }
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;

 private:
  tensor::Shape input_shape_;
};

/// LRN forward math, shared by the training layer and the frozen
/// inference view (nn/frozen.hpp). `scale_out`, when non-null, receives
/// the per-element k + alpha * window-sum tensor the backward pass
/// needs; the frozen path passes nullptr and skips that allocation.
Tensor lrn_forward(const Tensor& x, std::int64_t radius, float k, float alpha,
                   float beta, Tensor* scale_out, const Device& device);

}  // namespace dlbench::nn
