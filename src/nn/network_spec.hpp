#pragma once

// Declarative network descriptions.
//
// The paper compares *configurations*, so networks are data here: a
// NetworkSpec lists atomic ops (conv / pool / activation / lrn /
// dropout / fc) exactly as Tables IV and V describe them, and
// build_model() materializes it into a Sequential with shapes inferred
// layer by layer. The pretty printer regenerates the table rows.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/init.hpp"

namespace dlbench::nn {

/// One atomic op in a network description.
struct LayerSpec {
  enum class Kind {
    kConv,
    kMaxPool,
    kAvgPool,
    kRelu,
    kTanh,
    kDropout,
    kLrn,
    kLinear,
  };

  Kind kind;
  // conv
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t pad = 0;
  // conv & pool
  std::int64_t stride = 1;
  // pool
  std::int64_t window = 0;
  bool ceil_mode = false;
  // linear
  std::int64_t out_features = 0;
  // dropout
  float drop_p = 0.f;

  static LayerSpec conv(std::int64_t out_channels, std::int64_t kernel,
                        std::int64_t pad = 0, std::int64_t stride = 1);
  static LayerSpec max_pool(std::int64_t window, std::int64_t stride,
                            bool ceil_mode = false);
  static LayerSpec avg_pool(std::int64_t window, std::int64_t stride,
                            bool ceil_mode = false);
  static LayerSpec relu();
  static LayerSpec tanh();
  static LayerSpec dropout(float p);
  static LayerSpec lrn();
  static LayerSpec linear(std::int64_t out_features);
};

/// A complete network: input geometry + op list + init scheme.
struct NetworkSpec {
  std::string name;
  std::int64_t input_channels = 1;
  std::int64_t input_height = 28;
  std::int64_t input_width = 28;
  tensor::InitKind init = tensor::InitKind::kXavierUniform;
  std::vector<LayerSpec> ops;

  /// Number of conv + fc layers (the paper's "N-layer" count).
  int num_weight_layers() const;

  /// Output width of the first fully connected layer (the "feature
  /// maps" knob ablated in Tables VIII/IX), 0 if there is none.
  std::int64_t first_fc_width() const;

  /// Returns a copy whose first fc layer is resized to `width`
  /// (Table IX's 1024→…/500→… ablation).
  NetworkSpec with_first_fc_width(std::int64_t width) const;

  /// Paper-style per-layer rows, e.g.
  /// "conv 5x5, 1->32, ReLU, MaxPooling(2x2)".
  std::vector<std::string> describe_layers() const;
};

/// Which convolution kernel to materialize. Torch7 used a direct
/// (non-GEMM) kernel on CPU and a GEMM kernel on GPU; the emulations
/// reproduce that split (see nn/conv_direct.hpp).
enum class ConvImpl { kGemm, kDirect };

/// Materializes a spec into layers, inferring every intermediate shape.
/// A Flatten is inserted automatically before the first Linear. Throws
/// if shapes do not compose.
Sequential build_model(const NetworkSpec& spec, util::Rng& rng,
                       ConvImpl conv_impl = ConvImpl::kGemm);

/// Estimated forward-pass FLOPs for one sample (2 x MACs of every conv
/// and fc, plus pooling/activation/LRN traffic). The harness uses this
/// to convert a per-run compute budget into a deterministic step cap,
/// so cheap nets get proportionally more optimizer steps — mirroring
/// how the paper's per-framework iteration counts relate.
std::int64_t spec_forward_flops(const NetworkSpec& spec);

}  // namespace dlbench::nn
