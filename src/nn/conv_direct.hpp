#pragma once

// Direct (loop-nest) convolution, no im2col lowering.
//
// The paper observes that Torch uses SpatialConvolutionMap on CPU for
// CIFAR-10 — a slower, non-GEMM kernel — and falls back to the GEMM
// implementation (SpatialConvolutionMM) on GPU, which even flips its
// accuracy slightly. The Torch emulation mirrors this: on the CPU
// device it builds Conv2dDirect (this file); on the GPU device it
// builds the im2col Conv2d. Both compute the same convolution; only the
// loop structure (and hence speed and float summation order) differs.

#include "nn/layer.hpp"
#include "tensor/conv.hpp"
#include "tensor/init.hpp"

namespace dlbench::nn {

/// Convolution evaluated as an explicit 6-deep loop nest. Weight layout
/// matches Conv2d ([out_c, in_c*k*k]) so checkpoints are compatible.
class Conv2dDirect final : public Layer {
 public:
  Conv2dDirect(tensor::ConvGeom geom, tensor::InitKind init, util::Rng& rng);

  std::string describe() const override;
  LayerPtr clone() const override;
  Tensor forward(const Tensor& x, const Context& ctx) override;
  Tensor backward(const Tensor& dy, const Context& ctx) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweight_, &dbias_}; }

  const tensor::ConvGeom& geom() const { return geom_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  tensor::ConvGeom geom_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor cached_input_;
};

/// The direct-convolution forward kernel itself, shared by the layer
/// and the frozen inference view — the frozen Torch-on-CPU path must
/// keep this summation order, not the GEMM one, for its outputs to stay
/// bitwise identical to the training object's.
Tensor conv2d_direct_forward(const Tensor& x, const Tensor& weight,
                             const Tensor& bias, const tensor::ConvGeom& geom,
                             const runtime::Device& device);

}  // namespace dlbench::nn
