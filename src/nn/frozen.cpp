#include "nn/frozen.hpp"

#include <sstream>

#include "nn/conv_direct.hpp"
#include "nn/layers.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::nn {

FrozenModel FrozenModel::freeze(const Sequential& model) {
  DLB_CHECK(model.size() > 0, "cannot freeze an empty model");
  FrozenModel frozen;
  frozen.ops_.reserve(model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    const Layer& layer = model.layer(i);
    Op op{};
    if (const auto* conv = dynamic_cast<const Conv2d*>(&layer)) {
      op.kind = Op::Kind::kConv;
      op.conv = conv->geom();
      op.weight = conv->weight().clone();
      op.bias = conv->bias().clone();
    } else if (const auto* direct =
                   dynamic_cast<const Conv2dDirect*>(&layer)) {
      op.kind = Op::Kind::kConvDirect;
      op.conv = direct->geom();
      op.weight = direct->weight().clone();
      op.bias = direct->bias().clone();
    } else if (const auto* fc = dynamic_cast<const Linear*>(&layer)) {
      op.kind = Op::Kind::kLinear;
      op.weight = fc->weight().clone();
      op.bias = fc->bias().clone();
    } else if (const auto* fcr = dynamic_cast<const LinearReLU*>(&layer)) {
      op.kind = Op::Kind::kLinearRelu;
      op.weight = fcr->weight().clone();
      op.bias = fcr->bias().clone();
    } else if (const auto* mp = dynamic_cast<const MaxPool2d*>(&layer)) {
      op.kind = Op::Kind::kMaxPool;
      op.pool = mp->geom();
    } else if (const auto* ap = dynamic_cast<const AvgPool2d*>(&layer)) {
      op.kind = Op::Kind::kAvgPool;
      op.pool = ap->geom();
    } else if (dynamic_cast<const ReLU*>(&layer) != nullptr) {
      op.kind = Op::Kind::kRelu;
    } else if (dynamic_cast<const Tanh*>(&layer) != nullptr) {
      op.kind = Op::Kind::kTanh;
    } else if (const auto* lrn =
                   dynamic_cast<const LocalResponseNorm*>(&layer)) {
      op.kind = Op::Kind::kLrn;
      op.lrn_radius = lrn->radius();
      op.lrn_k = lrn->bias();
      op.lrn_alpha = lrn->alpha();
      op.lrn_beta = lrn->beta();
    } else if (dynamic_cast<const Flatten*>(&layer) != nullptr) {
      op.kind = Op::Kind::kFlatten;
    } else if (dynamic_cast<const Dropout*>(&layer) != nullptr) {
      continue;  // identity at inference: drop it entirely
    } else {
      DLB_CHECK(false, "no inference lowering for layer '"
                           << layer.describe() << "'");
    }
    // Peephole: ReLU directly after a Linear runs in the GEMM epilogue.
    // Dropout was already elided above, so fc -> dropout -> relu chains
    // fuse too. relu(A*B + bias) via the epilogue is bitwise-identical
    // to the two-op sequence (DESIGN.md §11).
    if (op.kind == Op::Kind::kRelu && !frozen.ops_.empty() &&
        frozen.ops_.back().kind == Op::Kind::kLinear) {
      frozen.ops_.back().kind = Op::Kind::kLinearRelu;
      continue;
    }
    frozen.ops_.push_back(std::move(op));
  }
  return frozen;
}

Tensor FrozenModel::forward(const Tensor& x,
                            const runtime::Device& device) const {
  DLB_CHECK(!ops_.empty(), "empty frozen model");
  Tensor h = x;
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kConv:
        h = tensor::conv2d_forward(h, op.weight, op.bias, op.conv, device);
        break;
      case Op::Kind::kConvDirect:
        h = conv2d_direct_forward(h, op.weight, op.bias, op.conv, device);
        break;
      case Op::Kind::kLinear:
        h = tensor::matmul_bias(h, op.weight, op.bias, device);
        break;
      case Op::Kind::kLinearRelu:
        h = tensor::matmul_bias_relu(h, op.weight, op.bias, device);
        break;
      case Op::Kind::kMaxPool: {
        std::vector<std::int32_t> argmax;  // call-local scratch
        h = tensor::maxpool_forward(h, op.pool, argmax, device);
        break;
      }
      case Op::Kind::kAvgPool:
        h = tensor::avgpool_forward(h, op.pool, device);
        break;
      case Op::Kind::kRelu:
        h = tensor::relu(h, device);
        break;
      case Op::Kind::kTanh:
        h = tensor::tanh_op(h, device);
        break;
      case Op::Kind::kLrn:
        h = lrn_forward(h, op.lrn_radius, op.lrn_k, op.lrn_alpha, op.lrn_beta,
                        /*scale_out=*/nullptr, device);
        break;
      case Op::Kind::kFlatten: {
        const std::int64_t n = h.dim(0);
        h = h.reshape({n, h.numel() / n});
        break;
      }
    }
  }
  return h;
}

std::vector<std::int64_t> FrozenModel::predict(
    const Tensor& x, const runtime::Device& device) const {
  return tensor::argmax_rows(forward(x, device));
}

std::int64_t FrozenModel::num_params() const {
  std::int64_t n = 0;
  for (const Op& op : ops_) n += op.weight.numel() + op.bias.numel();
  return n;
}

std::string FrozenModel::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    os << "  (" << i << ") ";
    switch (op.kind) {
      case Op::Kind::kConv:
        os << "conv" << op.conv.kernel << "x" << op.conv.kernel << " "
           << op.conv.in_c << "->" << op.conv.out_c;
        break;
      case Op::Kind::kConvDirect:
        os << "conv-direct" << op.conv.kernel << "x" << op.conv.kernel << " "
           << op.conv.in_c << "->" << op.conv.out_c;
        break;
      case Op::Kind::kLinear:
        os << "fc " << op.weight.dim(0) << "->" << op.weight.dim(1);
        break;
      case Op::Kind::kLinearRelu:
        os << "fc+relu " << op.weight.dim(0) << "->" << op.weight.dim(1);
        break;
      case Op::Kind::kMaxPool:
        os << "maxpool" << op.pool.window << "x" << op.pool.window;
        break;
      case Op::Kind::kAvgPool:
        os << "avgpool" << op.pool.window << "x" << op.pool.window;
        break;
      case Op::Kind::kRelu:
        os << "ReLU";
        break;
      case Op::Kind::kTanh:
        os << "Tanh";
        break;
      case Op::Kind::kLrn:
        os << "lrn r=" << op.lrn_radius;
        break;
      case Op::Kind::kFlatten:
        os << "Flatten";
        break;
    }
    os << " [frozen]\n";
  }
  return os.str();
}

}  // namespace dlbench::nn
