#pragma once

// Immutable inference view of a trained model.
//
// A Sequential is a *training* object: every layer caches activations
// during forward() for the following backward(), so two threads cannot
// share one. Serving needs the opposite contract — many threads running
// forward passes over one set of weights — so freeze() snapshots a
// Sequential into a FrozenModel: a flat list of stateless inference ops
// over deep-copied parameter tensors that are never written again.
// forward() is const, allocates all scratch per call, and is therefore
// safe to run concurrently from any number of threads. Copying a
// FrozenModel copies tensor handles, not buffers, so server replicas
// share one set of weights (safe precisely because they are immutable).
//
// Inference semantics match Sequential::forward with training=false:
// Dropout is the identity (inverted dropout) and is dropped at freeze
// time, so outputs are bitwise identical to the training object's
// eval-mode forward on the same inputs and device.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/conv.hpp"
#include "tensor/pool.hpp"

namespace dlbench::nn {

/// Thread-safe, const-correct inference snapshot of a Sequential.
class FrozenModel {
 public:
  FrozenModel() = default;

  /// Deep-copies every parameter of `model` into an immutable op list.
  /// Throws on layer kinds with no inference lowering (none exist in
  /// this codebase today). A peephole pass fuses each Linear op whose
  /// successor is a ReLU into one kLinearRelu op executed by the GEMM
  /// epilogue (tensor::matmul_bias_relu) — bitwise-identical output,
  /// one fewer pass over the activations per fc layer.
  static FrozenModel freeze(const Sequential& model);

  /// Logits for a batch. Pure: no member is written, all scratch is
  /// call-local; concurrent calls on any device are safe.
  Tensor forward(const Tensor& x, const runtime::Device& device) const;

  /// Predicted class per row of `x`.
  std::vector<std::int64_t> predict(const Tensor& x,
                                    const runtime::Device& device) const;

  bool empty() const { return ops_.empty(); }
  std::size_t size() const { return ops_.size(); }
  std::int64_t num_params() const;
  std::string describe() const;

 private:
  struct Op {
    enum class Kind {
      kConv,
      kConvDirect,
      kLinear,
      kLinearRelu,  // fused fc+activation; see freeze() peephole
      kMaxPool,
      kAvgPool,
      kRelu,
      kTanh,
      kLrn,
      kFlatten,
    };
    Kind kind;
    Tensor weight, bias;  // conv/linear; deep copies, never mutated
    tensor::ConvGeom conv;
    tensor::PoolGeom pool;
    std::int64_t lrn_radius = 0;
    float lrn_k = 0.f, lrn_alpha = 0.f, lrn_beta = 0.f;
  };

  std::vector<Op> ops_;
};

}  // namespace dlbench::nn
