#pragma once

// Layer abstraction shared by every framework emulation.
//
// A Layer owns its parameters and gradient buffers and caches whatever
// it needs from forward() to run backward(). Backward always propagates
// an input gradient, which is what the adversarial module differentiates
// through to build FGSM perturbations and JSMA saliency maps.

#include <memory>
#include <string>
#include <vector>

#include "runtime/device.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dlbench::nn {

using runtime::Device;
using tensor::Tensor;

/// Per-call execution context threaded through forward/backward.
struct Context {
  Device device = Device::cpu();
  bool training = false;
  util::Rng* rng = nullptr;  // required when training with Dropout
};

class Layer;
using LayerPtr = std::unique_ptr<Layer>;

/// A single differentiable transformation y = f(x; params).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable kind, e.g. "conv5x5 1->32".
  virtual std::string describe() const = 0;

  /// Deep, independent copy: parameters are cloned buffers (never
  /// aliased), gradients start zeroed, and forward caches are NOT
  /// carried over — a clone is a fresh layer with the same weights.
  /// This is what lets the adversarial crafting engine hand every
  /// worker thread its own trainable replica of one model (a frozen
  /// inference view is not enough there: attacks differentiate through
  /// the layer caches).
  virtual LayerPtr clone() const = 0;

  /// Computes y from x; caches activations needed by backward().
  virtual Tensor forward(const Tensor& x, const Context& ctx) = 0;

  /// Given dL/dy, accumulates parameter gradients and returns dL/dx.
  /// Must be called after a matching forward().
  virtual Tensor backward(const Tensor& dy, const Context& ctx) = 0;

  /// Parameter tensors (empty for stateless layers). Order is stable
  /// and matches grads().
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Zeroes accumulated gradients.
  void zero_grads() {
    for (Tensor* g : grads()) g->fill(0.f);
  }

  /// Number of scalar parameters.
  std::int64_t num_params() {
    std::int64_t n = 0;
    for (Tensor* p : params()) n += p->numel();
    return n;
  }
};

}  // namespace dlbench::nn
