#pragma once

// A feed-forward stack of layers with an integrated softmax
// cross-entropy head — the model shape every net in the paper uses.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace dlbench::nn {

/// Output of one forward+loss evaluation.
struct LossResult {
  Tensor logits;        // [N, classes]
  Tensor probabilities; // softmax(logits)
  double loss = 0.0;    // mean cross-entropy
};

/// An owned sequence of layers ending (implicitly) in softmax
/// cross-entropy. The loss head lives here rather than as a layer so
/// the gradient seed (probs - onehot)/N is fused, as in all three
/// frameworks under study.
class Sequential {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<LayerPtr> layers);

  /// Appends a layer.
  void add(LayerPtr layer);

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Deep, independent replica: every layer is clone()d, so the copy
  /// shares no parameter buffers, gradient buffers, or activation
  /// caches with this model. Forward/backward on the replica is
  /// bitwise-identical to the original (same weights, same kernels)
  /// but safe to run on another thread — the adversarial crafting
  /// engine builds one replica per worker this way, mirroring the
  /// FrozenModel replica pattern from serve/ for mutable models.
  Sequential clone() const;

  /// Plain forward pass, logits out.
  Tensor forward(const Tensor& x, const Context& ctx);

  /// Forward + softmax + mean cross-entropy against integer labels.
  LossResult forward_loss(const Tensor& x,
                          const std::vector<std::int64_t>& labels,
                          const Context& ctx);

  /// Backpropagates from the fused loss head through every layer,
  /// accumulating parameter gradients; returns dL/dinput.
  /// Requires a preceding forward_loss() on the same batch.
  Tensor backward(const LossResult& result,
                  const std::vector<std::int64_t>& labels,
                  const Context& ctx);

  /// Backpropagates an arbitrary logit-space gradient (used by the
  /// adversarial module to differentiate single logits for JSMA).
  Tensor backward_from_logits(const Tensor& dlogits, const Context& ctx);

  /// All parameters / gradients across layers, in layer order.
  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();
  void zero_grads();
  std::int64_t num_params();

  /// Predicted class per row.
  std::vector<std::int64_t> predict(const Tensor& x, const Context& ctx);

  /// Multi-line structural description.
  std::string describe() const;

 private:
  /// Lazily interns per-layer span labels ("fwd/<i>.<Type>", ...) the
  /// first time tracing is observed enabled. Rebuilt if layers change.
  void ensure_trace_labels();

  std::vector<LayerPtr> layers_;
  std::vector<const char*> fwd_labels_;
  std::vector<const char*> bwd_labels_;
};

}  // namespace dlbench::nn
