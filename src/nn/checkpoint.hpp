#pragma once

// Model checkpointing.
//
// The paper notes that "pre-trained models are made available on many
// platforms, such as Caffe Model Zoo" — a benchmark suite needs to save
// and restore trained parameters to separate training cost from
// inference/robustness measurements. The format is a small versioned
// binary container (little-endian). Version 2 hardens it against
// bit-rot and truncation: magic, version, payload length (u64), payload
// (tensor count, then each tensor as rank + dims + raw float32 data),
// CRC-32 of the payload. Version 1 streams (no length/CRC) are still
// loadable. The path overload writes atomically (temp file + rename),
// so a crash mid-save never leaves a torn checkpoint behind.

#include <iosfwd>
#include <string>

#include "nn/sequential.hpp"

namespace dlbench::nn {

/// Serializes every parameter tensor of `model`, in layer order.
void save_checkpoint(Sequential& model, std::ostream& out);
void save_checkpoint(Sequential& model, const std::string& path);

/// Restores parameters saved by save_checkpoint. The model must have
/// the same architecture (same parameter count and shapes); throws
/// dlbench::Error on any mismatch or corrupt stream.
void load_checkpoint(Sequential& model, std::istream& in);
void load_checkpoint(Sequential& model, const std::string& path);

}  // namespace dlbench::nn
