#pragma once

// Model checkpointing.
//
// The paper notes that "pre-trained models are made available on many
// platforms, such as Caffe Model Zoo" — a benchmark suite needs to save
// and restore trained parameters to separate training cost from
// inference/robustness measurements. The format is a small versioned
// binary container (little-endian). Version 2 hardens it against
// bit-rot and truncation: magic, version, payload length (u64), payload
// (tensor count, then each tensor as rank + dims + raw float32 data),
// CRC-32 of the payload. Version 1 streams (no length/CRC) are still
// loadable. The path overload writes atomically (temp file + rename),
// so a crash mid-save never leaves a torn checkpoint behind.

#include <iosfwd>
#include <string>

#include "nn/sequential.hpp"

namespace dlbench::nn {

/// Serializes every parameter tensor of `model`, in layer order.
void save_checkpoint(Sequential& model, std::ostream& out);
void save_checkpoint(Sequential& model, const std::string& path);

/// Restores parameters saved by save_checkpoint. The model must have
/// the same architecture (same parameter count and shapes); throws
/// dlbench::Error on any mismatch or corrupt stream.
void load_checkpoint(Sequential& model, std::istream& in);
void load_checkpoint(Sequential& model, const std::string& path);

/// Which container load_checkpoint_with_fallback restored from.
enum class CheckpointSource { kPrimary, kFallback };

/// Loads `primary`, falling back to `fallback` when the primary is
/// missing, truncated (even mid-header) or fails its CRC. Order
/// matters: the primary is fully validated *before* any model mutation
/// — v2 loads buffer and checksum the whole payload first — so a
/// rejected primary leaves the model untouched for the fallback to
/// fill. Throws only when both containers are unusable.
CheckpointSource load_checkpoint_with_fallback(Sequential& model,
                                               const std::string& primary,
                                               const std::string& fallback);

}  // namespace dlbench::nn
