#include "nn/sequential.hpp"

#include <sstream>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::nn {

Sequential::Sequential(std::vector<LayerPtr> layers)
    : layers_(std::move(layers)) {}

void Sequential::add(LayerPtr layer) {
  DLB_CHECK(layer != nullptr, "cannot add a null layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& x, const Context& ctx) {
  DLB_CHECK(!layers_.empty(), "empty model");
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, ctx);
  return h;
}

LossResult Sequential::forward_loss(const Tensor& x,
                                    const std::vector<std::int64_t>& labels,
                                    const Context& ctx) {
  LossResult r;
  r.logits = forward(x, ctx);
  r.probabilities = tensor::softmax_rows(r.logits, ctx.device);
  r.loss = tensor::cross_entropy_mean(r.probabilities, labels);
  return r;
}

Tensor Sequential::backward(const LossResult& result,
                            const std::vector<std::int64_t>& labels,
                            const Context& ctx) {
  Tensor grad = tensor::softmax_cross_entropy_backward(result.probabilities,
                                                       labels, ctx.device);
  return backward_from_logits(grad, ctx);
}

Tensor Sequential::backward_from_logits(const Tensor& dlogits,
                                        const Context& ctx) {
  DLB_CHECK(!layers_.empty(), "empty model");
  Tensor g = dlogits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g, ctx);
  return g;
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* p : layer->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* g : layer->grads()) out.push_back(g);
  return out;
}

void Sequential::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

std::int64_t Sequential::num_params() {
  std::int64_t n = 0;
  for (auto& layer : layers_) n += layer->num_params();
  return n;
}

std::vector<std::int64_t> Sequential::predict(const Tensor& x,
                                              const Context& ctx) {
  Context eval_ctx = ctx;
  eval_ctx.training = false;
  Tensor logits = forward(x, eval_ctx);
  return tensor::argmax_rows(logits);
}

std::string Sequential::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < layers_.size(); ++i)
    os << "  (" << i << ") " << layers_[i]->describe() << "\n";
  return os.str();
}

}  // namespace dlbench::nn
