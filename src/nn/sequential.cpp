#include "nn/sequential.hpp"

#include <sstream>

#include "runtime/trace.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::nn {

namespace {

// "Conv2d(1->20, k5)" -> "Conv2d": span names stay short and stable
// across hyperparameter choices.
std::string layer_type_name(const std::string& description) {
  const auto paren = description.find('(');
  return paren == std::string::npos ? description : description.substr(0, paren);
}

}  // namespace

Sequential::Sequential(std::vector<LayerPtr> layers)
    : layers_(std::move(layers)) {}

void Sequential::add(LayerPtr layer) {
  DLB_CHECK(layer != nullptr, "cannot add a null layer");
  layers_.push_back(std::move(layer));
}

Sequential Sequential::clone() const {
  std::vector<LayerPtr> copies;
  copies.reserve(layers_.size());
  for (const auto& layer : layers_) copies.push_back(layer->clone());
  return Sequential(std::move(copies));
}

void Sequential::ensure_trace_labels() {
  if (fwd_labels_.size() == layers_.size()) return;
  fwd_labels_.clear();
  bwd_labels_.clear();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::string type = layer_type_name(layers_[i]->describe());
    const std::string tag = std::to_string(i) + "." + type;
    fwd_labels_.push_back(runtime::trace::intern("fwd/" + tag));
    bwd_labels_.push_back(runtime::trace::intern("bwd/" + tag));
  }
}

Tensor Sequential::forward(const Tensor& x, const Context& ctx) {
  DLB_CHECK(!layers_.empty(), "empty model");
  const bool traced = runtime::trace::enabled();
  if (traced) ensure_trace_labels();
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    runtime::trace::Span span(traced ? fwd_labels_[i] : nullptr, "layer");
    h = layers_[i]->forward(h, ctx);
  }
  return h;
}

LossResult Sequential::forward_loss(const Tensor& x,
                                    const std::vector<std::int64_t>& labels,
                                    const Context& ctx) {
  LossResult r;
  r.logits = forward(x, ctx);
  runtime::trace::Span span("fwd/loss-head", "layer");
  r.probabilities = tensor::softmax_rows(r.logits, ctx.device);
  r.loss = tensor::cross_entropy_mean(r.probabilities, labels);
  return r;
}

Tensor Sequential::backward(const LossResult& result,
                            const std::vector<std::int64_t>& labels,
                            const Context& ctx) {
  Tensor grad;
  {
    runtime::trace::Span span("bwd/loss-head", "layer");
    grad = tensor::softmax_cross_entropy_backward(result.probabilities, labels,
                                                  ctx.device);
  }
  return backward_from_logits(grad, ctx);
}

Tensor Sequential::backward_from_logits(const Tensor& dlogits,
                                        const Context& ctx) {
  DLB_CHECK(!layers_.empty(), "empty model");
  const bool traced = runtime::trace::enabled();
  if (traced) ensure_trace_labels();
  Tensor g = dlogits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    runtime::trace::Span span(traced ? bwd_labels_[i] : nullptr, "layer");
    g = layers_[i]->backward(g, ctx);
  }
  return g;
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* p : layer->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* g : layer->grads()) out.push_back(g);
  return out;
}

void Sequential::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

std::int64_t Sequential::num_params() {
  std::int64_t n = 0;
  for (auto& layer : layers_) n += layer->num_params();
  return n;
}

std::vector<std::int64_t> Sequential::predict(const Tensor& x,
                                              const Context& ctx) {
  Context eval_ctx = ctx;
  eval_ctx.training = false;
  Tensor logits = forward(x, eval_ctx);
  return tensor::argmax_rows(logits);
}

std::string Sequential::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < layers_.size(); ++i)
    os << "  (" << i << ") " << layers_[i]->describe() << "\n";
  return os.str();
}

}  // namespace dlbench::nn
