#include "nn/network_spec.hpp"

#include <memory>
#include <sstream>

#include "nn/conv_direct.hpp"
#include "nn/layers.hpp"
#include "util/error.hpp"

namespace dlbench::nn {

LayerSpec LayerSpec::conv(std::int64_t out_channels, std::int64_t kernel,
                          std::int64_t pad, std::int64_t stride) {
  LayerSpec s{};
  s.kind = Kind::kConv;
  s.out_channels = out_channels;
  s.kernel = kernel;
  s.pad = pad;
  s.stride = stride;
  return s;
}

LayerSpec LayerSpec::max_pool(std::int64_t window, std::int64_t stride,
                              bool ceil_mode) {
  LayerSpec s{};
  s.kind = Kind::kMaxPool;
  s.window = window;
  s.stride = stride;
  s.ceil_mode = ceil_mode;
  return s;
}

LayerSpec LayerSpec::avg_pool(std::int64_t window, std::int64_t stride,
                              bool ceil_mode) {
  LayerSpec s{};
  s.kind = Kind::kAvgPool;
  s.window = window;
  s.stride = stride;
  s.ceil_mode = ceil_mode;
  return s;
}

LayerSpec LayerSpec::relu() {
  LayerSpec s{};
  s.kind = Kind::kRelu;
  return s;
}

LayerSpec LayerSpec::tanh() {
  LayerSpec s{};
  s.kind = Kind::kTanh;
  return s;
}

LayerSpec LayerSpec::dropout(float p) {
  LayerSpec s{};
  s.kind = Kind::kDropout;
  s.drop_p = p;
  return s;
}

LayerSpec LayerSpec::lrn() {
  LayerSpec s{};
  s.kind = Kind::kLrn;
  return s;
}

LayerSpec LayerSpec::linear(std::int64_t out_features) {
  LayerSpec s{};
  s.kind = Kind::kLinear;
  s.out_features = out_features;
  return s;
}

int NetworkSpec::num_weight_layers() const {
  int n = 0;
  for (const auto& op : ops)
    if (op.kind == LayerSpec::Kind::kConv ||
        op.kind == LayerSpec::Kind::kLinear)
      ++n;
  return n;
}

std::int64_t NetworkSpec::first_fc_width() const {
  for (const auto& op : ops)
    if (op.kind == LayerSpec::Kind::kLinear) return op.out_features;
  return 0;
}

NetworkSpec NetworkSpec::with_first_fc_width(std::int64_t width) const {
  DLB_CHECK(width > 0, "fc width must be positive");
  NetworkSpec copy = *this;
  for (auto& op : copy.ops) {
    if (op.kind == LayerSpec::Kind::kLinear) {
      op.out_features = width;
      std::ostringstream os;
      os << name << "(fc" << width << ")";
      copy.name = os.str();
      return copy;
    }
  }
  DLB_CHECK(false, "network " << name << " has no fc layer");
  return copy;  // unreachable
}

std::vector<std::string> NetworkSpec::describe_layers() const {
  std::vector<std::string> rows;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) rows.push_back(current);
    current.clear();
  };
  for (const auto& op : ops) {
    std::ostringstream os;
    switch (op.kind) {
      case LayerSpec::Kind::kConv:
        flush();
        os << "conv " << op.kernel << "x" << op.kernel << " ->"
           << op.out_channels;
        if (op.pad) os << " pad" << op.pad;
        current = os.str();
        break;
      case LayerSpec::Kind::kLinear:
        flush();
        os << "fc ->" << op.out_features;
        current = os.str();
        break;
      case LayerSpec::Kind::kMaxPool:
        os << "MaxPooling(" << op.window << "x" << op.window << ")";
        current += ", " + os.str();
        break;
      case LayerSpec::Kind::kAvgPool:
        os << "AveragePooling(" << op.window << "x" << op.window << ")";
        current += ", " + os.str();
        break;
      case LayerSpec::Kind::kRelu:
        current += ", ReLU";
        break;
      case LayerSpec::Kind::kTanh:
        current += ", Tanh";
        break;
      case LayerSpec::Kind::kDropout:
        os << ", Dropout(" << op.drop_p << ")";
        current += os.str();
        break;
      case LayerSpec::Kind::kLrn:
        current += ", Normalization";
        break;
    }
  }
  flush();
  return rows;
}

Sequential build_model(const NetworkSpec& spec, util::Rng& rng,
                       ConvImpl conv_impl) {
  DLB_CHECK(!spec.ops.empty(), "network spec has no ops");
  Sequential model;

  // Shape tracking through the stack.
  bool spatial = true;  // still in [N, C, H, W] land
  std::int64_t c = spec.input_channels;
  std::int64_t h = spec.input_height;
  std::int64_t w = spec.input_width;
  std::int64_t features = 0;

  auto flatten_if_needed = [&] {
    if (!spatial) return;
    model.add(std::make_unique<Flatten>());
    features = c * h * w;
    spatial = false;
  };

  for (const auto& op : spec.ops) {
    switch (op.kind) {
      case LayerSpec::Kind::kConv: {
        DLB_CHECK(spatial, spec.name << ": conv after flatten");
        tensor::ConvGeom g;
        g.in_c = c;
        g.in_h = h;
        g.in_w = w;
        g.out_c = op.out_channels;
        g.kernel = op.kernel;
        g.stride = op.stride;
        g.pad = op.pad;
        DLB_CHECK(g.out_h() > 0 && g.out_w() > 0,
                  spec.name << ": conv output empty at " << h << "x" << w);
        if (conv_impl == ConvImpl::kDirect)
          model.add(std::make_unique<Conv2dDirect>(g, spec.init, rng));
        else
          model.add(std::make_unique<Conv2d>(g, spec.init, rng));
        c = g.out_c;
        h = g.out_h();
        w = g.out_w();
        break;
      }
      case LayerSpec::Kind::kMaxPool:
      case LayerSpec::Kind::kAvgPool: {
        DLB_CHECK(spatial, spec.name << ": pool after flatten");
        tensor::PoolGeom g;
        g.channels = c;
        g.in_h = h;
        g.in_w = w;
        g.window = op.window;
        g.stride = op.stride;
        g.ceil_mode = op.ceil_mode;
        DLB_CHECK(g.out_h() > 0 && g.out_w() > 0,
                  spec.name << ": pool output empty at " << h << "x" << w);
        if (op.kind == LayerSpec::Kind::kMaxPool)
          model.add(std::make_unique<MaxPool2d>(g));
        else
          model.add(std::make_unique<AvgPool2d>(g));
        h = g.out_h();
        w = g.out_w();
        break;
      }
      case LayerSpec::Kind::kRelu:
        model.add(std::make_unique<ReLU>());
        break;
      case LayerSpec::Kind::kTanh:
        model.add(std::make_unique<Tanh>());
        break;
      case LayerSpec::Kind::kDropout:
        model.add(std::make_unique<Dropout>(op.drop_p));
        break;
      case LayerSpec::Kind::kLrn:
        DLB_CHECK(spatial, spec.name << ": lrn after flatten");
        model.add(std::make_unique<LocalResponseNorm>());
        break;
      case LayerSpec::Kind::kLinear: {
        flatten_if_needed();
        model.add(std::make_unique<Linear>(features, op.out_features,
                                           spec.init, rng));
        features = op.out_features;
        break;
      }
    }
  }
  DLB_CHECK(!spatial, spec.name << ": network never reaches an fc layer");
  return model;
}

std::int64_t spec_forward_flops(const NetworkSpec& spec) {
  bool spatial = true;
  std::int64_t c = spec.input_channels;
  std::int64_t h = spec.input_height;
  std::int64_t w = spec.input_width;
  std::int64_t features = 0;
  std::int64_t flops = 0;
  for (const auto& op : spec.ops) {
    switch (op.kind) {
      case LayerSpec::Kind::kConv: {
        tensor::ConvGeom g;
        g.in_c = c;
        g.in_h = h;
        g.in_w = w;
        g.out_c = op.out_channels;
        g.kernel = op.kernel;
        g.stride = op.stride;
        g.pad = op.pad;
        flops += 2 * g.out_c * g.out_h() * g.out_w() * g.patch_size();
        c = g.out_c;
        h = g.out_h();
        w = g.out_w();
        break;
      }
      case LayerSpec::Kind::kMaxPool:
      case LayerSpec::Kind::kAvgPool: {
        tensor::PoolGeom g;
        g.channels = c;
        g.in_h = h;
        g.in_w = w;
        g.window = op.window;
        g.stride = op.stride;
        g.ceil_mode = op.ceil_mode;
        flops += c * g.out_h() * g.out_w() * op.window * op.window;
        h = g.out_h();
        w = g.out_w();
        break;
      }
      case LayerSpec::Kind::kRelu:
      case LayerSpec::Kind::kTanh:
      case LayerSpec::Kind::kDropout:
        flops += spatial ? c * h * w : features;
        break;
      case LayerSpec::Kind::kLrn:
        flops += 4 * c * h * w * 9;  // window of 2*radius+1 = 9
        break;
      case LayerSpec::Kind::kLinear: {
        if (spatial) {
          features = c * h * w;
          spatial = false;
        }
        flops += 2 * features * op.out_features;
        features = op.out_features;
        break;
      }
    }
  }
  return flops;
}

}  // namespace dlbench::nn
