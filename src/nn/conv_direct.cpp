#include "nn/conv_direct.hpp"

#include <sstream>

#include "util/error.hpp"

namespace dlbench::nn {

using tensor::Shape;

Conv2dDirect::Conv2dDirect(tensor::ConvGeom geom, tensor::InitKind init,
                           util::Rng& rng)
    : geom_(geom),
      weight_(Shape({geom.out_c, geom.patch_size()})),
      bias_(Shape({geom.out_c})),
      dweight_(Shape({geom.out_c, geom.patch_size()})),
      dbias_(Shape({geom.out_c})) {
  tensor::initialize(weight_, init, geom.patch_size(),
                     geom.out_c * geom.kernel * geom.kernel, rng);
}

std::string Conv2dDirect::describe() const {
  std::ostringstream os;
  os << "conv-direct" << geom_.kernel << "x" << geom_.kernel << " "
     << geom_.in_c << "->" << geom_.out_c;
  return os.str();
}

Tensor Conv2dDirect::forward(const Tensor& x, const Context& ctx) {
  cached_input_ = x;
  return conv2d_direct_forward(x, weight_, bias_, geom_, ctx.device);
}

Tensor conv2d_direct_forward(const Tensor& x, const Tensor& weight,
                             const Tensor& bias, const tensor::ConvGeom& geom,
                             const runtime::Device& device) {
  DLB_CHECK(x.shape().rank() == 4 && x.dim(1) == geom.in_c &&
                x.dim(2) == geom.in_h && x.dim(3) == geom.in_w,
            "Conv2dDirect input " << x.shape().to_string()
                                  << " does not match geometry");
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = geom.out_h(), ow = geom.out_w();
  const std::int64_t k = geom.kernel;
  Tensor y({n, geom.out_c, oh, ow});

  const float* px = x.raw();
  const float* pw = weight.raw();
  const float* pb = bias.raw();
  float* py = y.raw();
  const std::int64_t in_plane = geom.in_h * geom.in_w;
  const std::int64_t in_sz = geom.in_c * in_plane;
  const std::int64_t out_sz = geom.out_c * oh * ow;

  device.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const float* xin = px + static_cast<std::int64_t>(i) * in_sz;
          float* yout = py + static_cast<std::int64_t>(i) * out_sz;
          for (std::int64_t oc = 0; oc < geom.out_c; ++oc) {
            const float* wk = pw + oc * geom.patch_size();
            for (std::int64_t y0 = 0; y0 < oh; ++y0) {
              for (std::int64_t x0 = 0; x0 < ow; ++x0) {
                float acc = pb[oc];
                for (std::int64_t ic = 0; ic < geom.in_c; ++ic) {
                  for (std::int64_t ky = 0; ky < k; ++ky) {
                    const std::int64_t iy = y0 * geom.stride + ky - geom.pad;
                    if (iy < 0 || iy >= geom.in_h) continue;
                    for (std::int64_t kx = 0; kx < k; ++kx) {
                      const std::int64_t ix =
                          x0 * geom.stride + kx - geom.pad;
                      if (ix < 0 || ix >= geom.in_w) continue;
                      acc += wk[(ic * k + ky) * k + kx] *
                             xin[ic * in_plane + iy * geom.in_w + ix];
                    }
                  }
                }
                yout[(oc * oh + y0) * ow + x0] = acc;
              }
            }
          }
        }
      },
      1);
  return y;
}

Tensor Conv2dDirect::backward(const Tensor& dy, const Context& ctx) {
  DLB_CHECK(!cached_input_.empty(), "Conv2dDirect::backward before forward");
  const Tensor& x = cached_input_;
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::int64_t k = geom_.kernel;
  Tensor dx(x.shape());

  const float* px = x.raw();
  const float* pw = weight_.raw();
  const float* pdy = dy.raw();
  float* pdx = dx.raw();
  float* pdw = dweight_.raw();
  float* pdb = dbias_.raw();
  const std::int64_t in_plane = geom_.in_h * geom_.in_w;
  const std::int64_t in_sz = geom_.in_c * in_plane;
  const std::int64_t out_sz = geom_.out_c * oh * ow;

  // Serial over the batch: the direct kernel is deliberately the naive
  // implementation (its slowness on CPU is the phenomenon under study);
  // parallel batches would also race on dweight_.
  for (std::int64_t i = 0; i < n; ++i) {
    const float* xin = px + i * in_sz;
    const float* dyo = pdy + i * out_sz;
    float* dxin = pdx + i * in_sz;
    for (std::int64_t oc = 0; oc < geom_.out_c; ++oc) {
      const float* wk = pw + oc * geom_.patch_size();
      float* dwk = pdw + oc * geom_.patch_size();
      for (std::int64_t y0 = 0; y0 < oh; ++y0) {
        for (std::int64_t x0 = 0; x0 < ow; ++x0) {
          const float g = dyo[(oc * oh + y0) * ow + x0];
          if (g == 0.f) continue;
          pdb[oc] += g;
          for (std::int64_t ic = 0; ic < geom_.in_c; ++ic) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              const std::int64_t iy = y0 * geom_.stride + ky - geom_.pad;
              if (iy < 0 || iy >= geom_.in_h) continue;
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t ix = x0 * geom_.stride + kx - geom_.pad;
                if (ix < 0 || ix >= geom_.in_w) continue;
                const std::int64_t xi = ic * in_plane + iy * geom_.in_w + ix;
                dwk[(ic * k + ky) * k + kx] += g * xin[xi];
                dxin[xi] += g * wk[(ic * k + ky) * k + kx];
              }
            }
          }
        }
      }
    }
  }
  (void)ctx;
  return dx;
}

LayerPtr Conv2dDirect::clone() const {
  util::Rng scratch(0);  // throwaway init, overwritten below
  auto copy = std::make_unique<Conv2dDirect>(
      geom_, tensor::InitKind::kXavierUniform, scratch);
  copy->weight_ = weight_.clone();
  copy->bias_ = bias_.clone();
  return copy;
}

}  // namespace dlbench::nn
