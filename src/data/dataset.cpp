#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "runtime/fault.hpp"
#include "util/entropy.hpp"
#include "util/error.hpp"

namespace dlbench::data {

Dataset Dataset::take(std::int64_t count) const {
  count = std::clamp<std::int64_t>(count, 0, size());
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  const std::int64_t c = channels(), h = height(), w = width();
  out.images = Tensor({count, c, h, w});
  const std::int64_t sample_sz = c * h * w;
  std::memcpy(out.images.raw(), images.raw(),
              static_cast<std::size_t>(count * sample_sz) * sizeof(float));
  out.labels.assign(labels.begin(), labels.begin() + count);
  return out;
}

Tensor Dataset::sample(std::int64_t index) const {
  DLB_CHECK(index >= 0 && index < size(),
            "sample index " << index << " out of " << size());
  const std::int64_t c = channels(), h = height(), w = width();
  const std::int64_t sample_sz = c * h * w;
  Tensor out({1, c, h, w});
  std::memcpy(out.raw(), images.raw() + index * sample_sz,
              static_cast<std::size_t>(sample_sz) * sizeof(float));
  return out;
}

void Dataset::validate() const {
  DLB_CHECK(images.shape().rank() == 4, "images must be [N, C, H, W]");
  DLB_CHECK(static_cast<std::int64_t>(labels.size()) == size(),
            "label count " << labels.size() << " != image count " << size());
  DLB_CHECK(num_classes > 1, "need at least two classes");
  for (std::int64_t y : labels)
    DLB_CHECK(y >= 0 && y < num_classes,
              "label " << y << " out of [0, " << num_classes << ")");
}

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size,
                       bool shuffle, util::Rng rng)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(rng),
      order_(static_cast<std::size_t>(dataset.size())) {
  DLB_CHECK(batch_size_ > 0, "batch size must be positive");
  DLB_CHECK(dataset.size() > 0, "dataset is empty");
  std::iota(order_.begin(), order_.end(), 0);
  start_epoch();
}

std::int64_t DataLoader::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
  cursor_ = 0;
  if (!shuffle_) return;
  // Fisher–Yates with our deterministic Rng.
  for (std::size_t i = order_.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng_.uniform_index(i));
    std::swap(order_[i - 1], order_[j]);
  }
}

bool DataLoader::next(Batch& out) {
  while (cursor_ < dataset_.size()) {
    const std::int64_t begin = cursor_;
    const std::int64_t end = std::min(dataset_.size(), begin + batch_size_);
    cursor_ = end;

    // Injected dataset faults may silently drop samples; a batch whose
    // samples were all dropped is skipped, not emitted empty.
    std::vector<std::int64_t> sources;
    sources.reserve(static_cast<std::size_t>(end - begin));
    const bool faulty = runtime::fault::enabled();
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t src = order_[static_cast<std::size_t>(i)];
      if (faulty && runtime::fault::maybe_drop_sample(src)) continue;
      sources.push_back(src);
    }
    if (sources.empty()) continue;

    const std::int64_t b = static_cast<std::int64_t>(sources.size());
    const std::int64_t c = dataset_.channels(), h = dataset_.height(),
                       w = dataset_.width();
    const std::int64_t sample_sz = c * h * w;
    out.images = Tensor({b, c, h, w});
    out.labels.resize(static_cast<std::size_t>(b));
    for (std::int64_t i = 0; i < b; ++i) {
      const std::int64_t src = sources[static_cast<std::size_t>(i)];
      std::memcpy(out.images.raw() + i * sample_sz,
                  dataset_.images.raw() + src * sample_sz,
                  static_cast<std::size_t>(sample_sz) * sizeof(float));
      out.labels[static_cast<std::size_t>(i)] =
          dataset_.labels[static_cast<std::size_t>(src)];
    }
    return true;
  }
  return false;
}

DatasetStats compute_stats(const Dataset& dataset) {
  DatasetStats s;
  auto values = dataset.images.data();
  s.pixel_entropy_bits = util::shannon_entropy(values);
  s.sparsity = util::sparsity(values);
  s.mean = util::mean(values);
  s.stddev = util::stddev(values);
  return s;
}

}  // namespace dlbench::data
