#include "data/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace dlbench::data {

const char* to_string(Preprocessing p) {
  switch (p) {
    case Preprocessing::kScaleOnly: return "scale-only";
    case Preprocessing::kPerImageStandardize: return "per-image-standardize";
    case Preprocessing::kMeanSubtract: return "mean-subtract";
    case Preprocessing::kGlobalChannelNormalize: return "channel-normalize";
  }
  return "unknown";
}

Dataset clone_dataset(const Dataset& d) {
  Dataset copy;
  copy.name = d.name;
  copy.num_classes = d.num_classes;
  copy.labels = d.labels;
  copy.images = d.images.clone();
  return copy;
}

void per_image_standardize(Dataset& d) {
  const std::int64_t n = d.size();
  const std::int64_t sz = d.channels() * d.height() * d.width();
  // TF's per_image_standardization floors the stddev at 1/sqrt(D).
  const float min_std = 1.0f / std::sqrt(static_cast<float>(sz));
  for (std::int64_t i = 0; i < n; ++i) {
    float* img = d.images.raw() + i * sz;
    double sum = 0;
    for (std::int64_t k = 0; k < sz; ++k) sum += img[k];
    const float mean = static_cast<float>(sum / sz);
    double var = 0;
    for (std::int64_t k = 0; k < sz; ++k) {
      const float dd = img[k] - mean;
      var += dd * dd;
    }
    const float stddev =
        std::max(min_std, static_cast<float>(std::sqrt(var / sz)));
    const float inv = 1.f / stddev;
    for (std::int64_t k = 0; k < sz; ++k) img[k] = (img[k] - mean) * inv;
  }
}

tensor::Tensor mean_image(const Dataset& d) {
  DLB_CHECK(d.size() > 0, "mean_image of empty dataset");
  const std::int64_t sz = d.channels() * d.height() * d.width();
  tensor::Tensor mean({d.channels(), d.height(), d.width()});
  float* pm = mean.raw();
  for (std::int64_t i = 0; i < d.size(); ++i) {
    const float* img = d.images.raw() + i * sz;
    for (std::int64_t k = 0; k < sz; ++k) pm[k] += img[k];
  }
  const float inv = 1.f / static_cast<float>(d.size());
  for (std::int64_t k = 0; k < sz; ++k) pm[k] *= inv;
  return mean;
}

void subtract_mean_image(Dataset& d, const tensor::Tensor& mean) {
  const std::int64_t sz = d.channels() * d.height() * d.width();
  DLB_CHECK(mean.numel() == sz, "mean image shape mismatch");
  const float* pm = mean.raw();
  for (std::int64_t i = 0; i < d.size(); ++i) {
    float* img = d.images.raw() + i * sz;
    for (std::int64_t k = 0; k < sz; ++k) img[k] -= pm[k];
  }
}

ChannelStats channel_stats(const Dataset& d) {
  DLB_CHECK(d.size() > 0, "channel_stats of empty dataset");
  const std::int64_t c = d.channels();
  const std::int64_t plane = d.height() * d.width();
  ChannelStats stats;
  stats.mean.assign(static_cast<std::size_t>(c), 0.f);
  stats.stddev.assign(static_cast<std::size_t>(c), 0.f);
  const std::int64_t per_channel_count = d.size() * plane;
  for (std::int64_t i = 0; i < d.size(); ++i) {
    const float* img = d.images.raw() + i * c * plane;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double acc = 0;
      const float* p = img + ch * plane;
      for (std::int64_t k = 0; k < plane; ++k) acc += p[k];
      stats.mean[static_cast<std::size_t>(ch)] +=
          static_cast<float>(acc / per_channel_count);
    }
  }
  for (std::int64_t i = 0; i < d.size(); ++i) {
    const float* img = d.images.raw() + i * c * plane;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double acc = 0;
      const float* p = img + ch * plane;
      const float m = stats.mean[static_cast<std::size_t>(ch)];
      for (std::int64_t k = 0; k < plane; ++k) {
        const float dd = p[k] - m;
        acc += dd * dd;
      }
      stats.stddev[static_cast<std::size_t>(ch)] +=
          static_cast<float>(acc / per_channel_count);
    }
  }
  for (auto& s : stats.stddev) s = std::max(1e-4f, std::sqrt(s));
  return stats;
}

void normalize_channels(Dataset& d, const ChannelStats& stats) {
  const std::int64_t c = d.channels();
  DLB_CHECK(static_cast<std::int64_t>(stats.mean.size()) == c &&
                static_cast<std::int64_t>(stats.stddev.size()) == c,
            "channel stats size mismatch");
  const std::int64_t plane = d.height() * d.width();
  for (std::int64_t i = 0; i < d.size(); ++i) {
    float* img = d.images.raw() + i * c * plane;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float m = stats.mean[static_cast<std::size_t>(ch)];
      const float inv = 1.f / stats.stddev[static_cast<std::size_t>(ch)];
      float* p = img + ch * plane;
      for (std::int64_t k = 0; k < plane; ++k) p[k] = (p[k] - m) * inv;
    }
  }
}

void apply_preprocessing(Preprocessing kind, Dataset& train, Dataset& test) {
  switch (kind) {
    case Preprocessing::kScaleOnly:
      return;  // generators already emit [0,1]
    case Preprocessing::kPerImageStandardize:
      per_image_standardize(train);
      per_image_standardize(test);
      return;
    case Preprocessing::kMeanSubtract: {
      tensor::Tensor mean = mean_image(train);
      subtract_mean_image(train, mean);
      subtract_mean_image(test, mean);
      return;
    }
    case Preprocessing::kGlobalChannelNormalize: {
      ChannelStats stats = channel_stats(train);
      normalize_channels(train, stats);
      normalize_channels(test, stats);
      return;
    }
  }
}

}  // namespace dlbench::data
