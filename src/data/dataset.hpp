#pragma once

// Dataset container + batching.

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dlbench::data {

using tensor::Tensor;

/// An in-memory labeled image dataset, pixels in [0, 1], NCHW.
struct Dataset {
  std::string name;
  Tensor images;                    // [N, C, H, W]
  std::vector<std::int64_t> labels; // size N, values in [0, num_classes)
  std::int64_t num_classes = 10;

  std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }
  std::int64_t channels() const { return images.dim(1); }
  std::int64_t height() const { return images.dim(2); }
  std::int64_t width() const { return images.dim(3); }

  /// Copy of the first `count` samples (count is clamped to size()).
  Dataset take(std::int64_t count) const;

  /// Copy of one sample as a [1, C, H, W] tensor.
  Tensor sample(std::int64_t index) const;

  /// Throws if labels/images disagree or labels are out of range.
  void validate() const;
};

/// A train/test split as emitted by the generators.
struct DatasetPair {
  Dataset train;
  Dataset test;
};

/// Mini-batch view materialized by the loader.
struct Batch {
  Tensor images;                    // [B, C, H, W]
  std::vector<std::int64_t> labels; // size B
  std::int64_t size() const { return images.dim(0); }
};

/// Shuffling mini-batch iterator. One pass over the data per epoch;
/// the last batch may be smaller. Shuffle order is drawn from the
/// provided Rng, so training runs are reproducible.
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle,
             util::Rng rng);

  /// Batches per epoch (ceil division).
  std::int64_t batches_per_epoch() const;

  /// Starts a new epoch (reshuffles if enabled).
  void start_epoch();

  /// Returns false when the epoch is exhausted.
  bool next(Batch& out);

 private:
  const Dataset& dataset_;
  std::int64_t batch_size_;
  bool shuffle_;
  util::Rng rng_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
};

/// Summary statistics used to validate the synthetic substitution
/// (paper §III-B attributes MNIST's results to low entropy/sparsity).
struct DatasetStats {
  double pixel_entropy_bits = 0.0;
  double sparsity = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};
DatasetStats compute_stats(const Dataset& dataset);

}  // namespace dlbench::data
