#pragma once

// Input preprocessing pipelines.
//
// Each framework's reference training pipeline transforms pixels before
// the first layer, and that transform is part of the "default setting"
// the paper cross-applies: TF's CIFAR-10 tutorial standardizes each
// image, Caffe's cifar10_quick subtracts the training-set mean image,
// Torch's demos normalize channels globally, and the MNIST pipelines
// only scale to [0,1]. Several of the paper's non-convergence results
// (§III-C/D) trace to exactly these mismatches — e.g. a high learning
// rate meeting uncentered inputs.

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace dlbench::data {

enum class Preprocessing {
  /// Pixels scaled to [0,1] (Caffe lenet's 1/256, TF MNIST feed). Our
  /// generators already emit [0,1], so this is the identity.
  kScaleOnly,
  /// Per-image zero mean / unit variance (TF CIFAR-10 tutorial).
  kPerImageStandardize,
  /// Subtract the training-set mean image (Caffe cifar10_quick).
  kMeanSubtract,
  /// Normalize each channel by training-set mean/std (Torch demos).
  kGlobalChannelNormalize,
};

const char* to_string(Preprocessing p);

/// Deep copy of a dataset (images are cloned, not aliased).
Dataset clone_dataset(const Dataset& d);

/// Standardizes each image in place: (x - mean) / max(std, 1/sqrt(D)).
void per_image_standardize(Dataset& d);

/// Mean image over a dataset ([C, H, W]).
tensor::Tensor mean_image(const Dataset& d);

/// Subtracts a mean image (broadcast over samples) in place.
void subtract_mean_image(Dataset& d, const tensor::Tensor& mean);

struct ChannelStats {
  std::vector<float> mean;
  std::vector<float> stddev;  // floored at 1e-4 to avoid division blowup
};

/// Per-channel statistics over a dataset.
ChannelStats channel_stats(const Dataset& d);

/// Applies (x - mean_c) / std_c per channel, in place.
void normalize_channels(Dataset& d, const ChannelStats& stats);

/// Fits the transform on `train` and applies it to both splits,
/// mirroring how the reference pipelines handle train/test.
void apply_preprocessing(Preprocessing kind, Dataset& train, Dataset& test);

}  // namespace dlbench::data
