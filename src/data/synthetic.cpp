#include "data/synthetic.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace dlbench::data {

namespace {

// ---- synthetic MNIST: seven-segment glyphs --------------------------------

// Segment layout on a 28x28 canvas (y grows downward):
//   A: top bar, G: middle bar, D: bottom bar,
//   F/B: upper-left/right verticals, E/C: lower-left/right verticals.
struct SegRect {
  int y0, y1, x0, x1;  // inclusive
};

constexpr SegRect kSegA{4, 6, 8, 19};
constexpr SegRect kSegG{13, 15, 8, 19};
constexpr SegRect kSegD{22, 24, 8, 19};
constexpr SegRect kSegF{4, 15, 8, 10};
constexpr SegRect kSegB{4, 15, 17, 19};
constexpr SegRect kSegE{13, 24, 8, 10};
constexpr SegRect kSegC{13, 24, 17, 19};

// Segment membership per digit, order {A, B, C, D, E, F, G}.
constexpr std::array<std::array<bool, 7>, 10> kDigitSegments = {{
    {true, true, true, true, true, true, false},     // 0
    {false, true, true, false, false, false, false}, // 1
    {true, true, false, true, true, false, true},    // 2
    {true, true, true, true, false, false, true},    // 3
    {false, true, true, false, false, true, true},   // 4
    {true, false, true, true, false, true, true},    // 5
    {true, false, true, true, true, true, true},     // 6
    {true, true, true, false, false, false, false},  // 7
    {true, true, true, true, true, true, true},      // 8
    {true, true, true, true, false, true, true},     // 9
}};

constexpr std::array<SegRect, 7> kSegRects = {kSegA, kSegB, kSegC, kSegD,
                                              kSegE, kSegF, kSegG};

void render_digit(float* image, int digit, int dy, int dx, float intensity,
                  double noise, double stroke_dropout, util::Rng& rng) {
  constexpr int kH = 28, kW = 28;
  std::memset(image, 0, kH * kW * sizeof(float));
  const auto& segs = kDigitSegments[static_cast<std::size_t>(digit)];
  for (std::size_t s = 0; s < kSegRects.size(); ++s) {
    if (!segs[s]) continue;
    const SegRect& r = kSegRects[s];
    for (int y = r.y0 + dy; y <= r.y1 + dy; ++y) {
      if (y < 0 || y >= kH) continue;
      for (int x = r.x0 + dx; x <= r.x1 + dx; ++x) {
        if (x < 0 || x >= kW) continue;
        if (rng.bernoulli(stroke_dropout)) continue;  // degraded stroke
        // Per-pixel stroke texture keeps strokes from being constant.
        const float wobble = static_cast<float>(rng.uniform(-0.1, 0.1));
        image[y * kW + x] =
            std::clamp(intensity + wobble, 0.f, 1.f);
      }
    }
  }
  if (noise > 0.0) {
    for (int i = 0; i < kH * kW; ++i) {
      const float n = static_cast<float>(rng.normal(0.0, noise));
      image[i] = std::clamp(image[i] + n, 0.f, 1.f);
    }
  }
}

Dataset make_mnist_split(const char* split, std::int64_t count,
                         const MnistOptions& opt, util::Rng& rng) {
  Dataset d;
  d.name = std::string(kMnistName) + "/" + split;
  d.num_classes = 10;
  d.images = tensor::Tensor({count, 1, 28, 28});
  d.labels.resize(static_cast<std::size_t>(count));
  float* base = d.images.raw();
  for (std::int64_t i = 0; i < count; ++i) {
    const int digit = static_cast<int>(i % 10);  // balanced classes
    const int dy = static_cast<int>(rng.uniform_index(
                       static_cast<std::uint64_t>(2 * opt.jitter + 1))) -
                   opt.jitter;
    const int dx = static_cast<int>(rng.uniform_index(
                       static_cast<std::uint64_t>(2 * opt.jitter + 1))) -
                   opt.jitter;
    const float intensity = static_cast<float>(rng.uniform(0.7, 1.0));
    render_digit(base + i * 28 * 28, digit, dy, dx, intensity, opt.noise,
                 opt.stroke_dropout, rng);
    d.labels[static_cast<std::size_t>(i)] = digit;
  }
  return d;
}

// ---- synthetic CIFAR-10: oriented color textures --------------------------
//
// Difficulty comes from deliberately *shared* attributes: classes c and
// c+5 share a palette and an orientation band and differ only in shape
// family and texture frequency, so no single cue separates all ten
// classes; per-sample jitter (orientation, color, brightness, phase,
// placement), a random distractor shape in a foreign palette, and heavy
// pixel noise give large intra-class variance, which is what keeps
// small nets and small visit budgets in the paper's 30–90% band.

struct Rgb {
  float r, g, b;
};

// Five palettes; palette p serves classes p and p+5.
constexpr std::array<std::array<Rgb, 2>, 5> kPalettes = {{
    {{{0.85f, 0.30f, 0.25f}, {0.20f, 0.45f, 0.70f}}},
    {{{0.25f, 0.70f, 0.35f}, {0.75f, 0.65f, 0.20f}}},
    {{{0.30f, 0.35f, 0.80f}, {0.85f, 0.80f, 0.75f}}},
    {{{0.80f, 0.60f, 0.25f}, {0.30f, 0.25f, 0.40f}}},
    {{{0.55f, 0.25f, 0.60f}, {0.70f, 0.75f, 0.30f}}},
}};

void render_texture(float* image, int cls, double difficulty,
                    util::Rng& rng) {
  constexpr int kH = 32, kW = 32;
  constexpr double kPi = 3.14159265358979;
  const auto& palette = kPalettes[static_cast<std::size_t>(cls % 5)];

  // Orientation band shared by c and c+5; wide jitter overlaps bands.
  const double base_theta = (cls % 5) * (kPi / 5.0);
  const double theta = base_theta + rng.normal(0.0, 0.10 * difficulty);
  // Frequency separates c from c+5 (5 % 3 == 2, so (c%3) differs).
  const double freq = 2.5 + (cls % 3) * 1.7 +
                      rng.normal(0.0, 0.25 * difficulty);
  const double phase = rng.uniform(0.0, 2.0 * kPi);
  const double ct = std::cos(theta), st = std::sin(theta);

  // Shape family separates the low five classes from the high five.
  const bool disc_family = cls < 5;
  const double cy = rng.uniform(8.0, 24.0);
  const double cx = rng.uniform(8.0, 24.0);
  const double radius = rng.uniform(3.0, 12.0);

  // Distractor: a second shape in a random foreign palette.
  const auto& dpal =
      kPalettes[static_cast<std::size_t>(rng.uniform_index(5))];
  const bool distractor_disc = rng.bernoulli(0.5);
  const double dy0 = rng.uniform(6.0, 26.0);
  const double dx0 = rng.uniform(6.0, 26.0);
  const double dradius = rng.uniform(3.0, 7.0);
  const auto& dpal2 =
      kPalettes[static_cast<std::size_t>(rng.uniform_index(5))];
  const bool distractor2_disc = rng.bernoulli(0.5);
  const double dy1 = rng.uniform(4.0, 28.0);
  const double dx1 = rng.uniform(4.0, 28.0);
  const double dradius2 = rng.uniform(2.0, 5.0);

  // Per-sample photometric jitter.
  const float mix = static_cast<float>(rng.uniform(0.25, 0.75));
  const float brightness = static_cast<float>(rng.uniform(0.85, 1.15));
  const float color_jitter[3] = {
      static_cast<float>(rng.uniform(-0.08, 0.08) * difficulty),
      static_cast<float>(rng.uniform(-0.08, 0.08) * difficulty),
      static_cast<float>(rng.uniform(-0.08, 0.08) * difficulty)};
  const double noise_sd = 0.07 * difficulty;

  auto inside_shape = [](bool disc, double y, double x, double cy0,
                         double cx0, double r) {
    if (disc) {
      const double ddy = y - cy0, ddx = x - cx0;
      return ddy * ddy + ddx * ddx <= r * r;
    }
    return std::fabs(y - cy0) <= r * 0.8 && std::fabs(x - cx0) <= r * 0.8;
  };

  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      const double proj = (x * ct + y * st) / kW;
      const double wave =
          0.5 + 0.5 * std::sin(2.0 * kPi * freq * proj + phase);
      const bool inside =
          inside_shape(disc_family, y, x, cy, cx, radius);
      const bool in_d1 =
          inside_shape(distractor_disc, y, x, dy0, dx0, dradius);
      const bool in_d2 =
          inside_shape(distractor2_disc, y, x, dy1, dx1, dradius2);

      const Rgb& fg = in_d1 ? dpal[0] : (in_d2 ? dpal2[0] : palette[0]);
      const Rgb& bg = in_d1 ? dpal[1] : (in_d2 ? dpal2[1] : palette[1]);
      const float blend = inside ? (1.f - mix) : mix;
      const float w = static_cast<float>(wave);
      const float channels[3] = {
          blend * fg.r + (1.f - blend) * bg.r * w,
          blend * fg.g + (1.f - blend) * bg.g * w,
          blend * fg.b + (1.f - blend) * bg.b * w,
      };
      for (int c = 0; c < 3; ++c) {
        const float n = static_cast<float>(rng.normal(0.0, noise_sd));
        image[(c * kH + y) * kW + x] = std::clamp(
            brightness * (channels[c] + color_jitter[c]) + n, 0.f, 1.f);
      }
    }
  }
}

Dataset make_cifar_split(const char* split, std::int64_t count,
                         const CifarOptions& opt, util::Rng& rng) {
  Dataset d;
  d.name = std::string(kCifarName) + "/" + split;
  d.num_classes = 10;
  d.images = tensor::Tensor({count, 3, 32, 32});
  d.labels.resize(static_cast<std::size_t>(count));
  float* base = d.images.raw();
  const std::int64_t sample_sz = 3 * 32 * 32;
  for (std::int64_t i = 0; i < count; ++i) {
    const int cls = static_cast<int>(i % 10);
    render_texture(base + i * sample_sz, cls, opt.difficulty, rng);
    d.labels[static_cast<std::size_t>(i)] = cls;
  }
  return d;
}

}  // namespace

DatasetPair synthetic_mnist(const MnistOptions& options) {
  DLB_CHECK(options.train_samples > 0 && options.test_samples > 0,
            "sample counts must be positive");
  util::Rng rng(options.seed);
  util::Rng train_rng = rng.fork();
  util::Rng test_rng = rng.fork();
  DatasetPair pair;
  pair.train =
      make_mnist_split("train", options.train_samples, options, train_rng);
  pair.test =
      make_mnist_split("test", options.test_samples, options, test_rng);
  pair.train.validate();
  pair.test.validate();
  return pair;
}

DatasetPair synthetic_cifar10(const CifarOptions& options) {
  DLB_CHECK(options.train_samples > 0 && options.test_samples > 0,
            "sample counts must be positive");
  util::Rng rng(options.seed);
  util::Rng train_rng = rng.fork();
  util::Rng test_rng = rng.fork();
  DatasetPair pair;
  pair.train =
      make_cifar_split("train", options.train_samples, options, train_rng);
  pair.test =
      make_cifar_split("test", options.test_samples, options, test_rng);
  pair.train.validate();
  pair.test.validate();
  return pair;
}

}  // namespace dlbench::data
