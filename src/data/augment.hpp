#pragma once

// Training-time data augmentation.
//
// TF's CIFAR-10 tutorial (the source of the paper's TF CIFAR setting)
// augments each batch with random crops and horizontal flips, and the
// paper's discussion of "incrementally enhanced datasets" (§II-C)
// assumes the same machinery. These transforms operate on batches in
// place, drawing from a deterministic Rng, and are exposed both as
// standalone functions and as an AugmentPolicy the harness can attach
// to a training run.

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace dlbench::data {

/// Mirrors each image left-right with probability p.
void random_horizontal_flip(Batch& batch, double p, util::Rng& rng);

/// Pads each image by `pad` zero pixels on every side, then crops a
/// random window of the original size (the classic CIFAR crop).
void random_crop(Batch& batch, int pad, util::Rng& rng);

/// Scales each image's intensities by U(1-delta, 1+delta), clipped to
/// keep values finite (no [0,1] clamp: augmentation may run after
/// preprocessing, where pixels are centered).
void random_brightness(Batch& batch, double delta, util::Rng& rng);

/// Composite policy applied to each training batch.
struct AugmentPolicy {
  bool horizontal_flip = false;
  double flip_probability = 0.5;
  int crop_pad = 0;          // 0 disables cropping
  double brightness_delta = 0.0;  // 0 disables

  bool enabled() const {
    return horizontal_flip || crop_pad > 0 || brightness_delta > 0.0;
  }

  void apply(Batch& batch, util::Rng& rng) const;

  /// The TF CIFAR-10 tutorial's policy: flip + pad-4 crop + brightness.
  static AugmentPolicy tf_cifar();
};

}  // namespace dlbench::data
