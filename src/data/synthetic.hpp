#pragma once

// Procedural stand-ins for MNIST and CIFAR-10.
//
// The real datasets are not available offline; these generators create
// datasets with the properties the paper's analysis rests on:
//
//  * synthetic MNIST — 28x28x1, ten glyph classes rendered from
//    seven-segment strokes with jitter and light noise. Sparse (mostly
//    zero background) and low-entropy, so simple CNNs exceed 99%,
//    exactly the regime of the paper's Fig. 1.
//  * synthetic CIFAR-10 — 32x32x3, ten classes of dense oriented color
//    textures with shape overlays and strong per-sample variation.
//    High-entropy and much harder, so the same nets land far below
//    MNIST accuracy and differentiate by capacity/epochs (Fig. 2).
//
// Both generators are fully deterministic given the seed.

#include <cstdint>

#include "data/dataset.hpp"

namespace dlbench::data {

struct MnistOptions {
  std::int64_t train_samples = 2000;
  std::int64_t test_samples = 500;
  std::uint64_t seed = 42;
  /// Std-dev of additive background noise (clipped at 0).
  double noise = 0.06;
  /// Max absolute translation jitter in pixels.
  int jitter = 2;
  /// Probability that an individual stroke pixel is erased — degrades
  /// glyphs so accuracy tops out near the paper's ~99.2% instead of a
  /// trivially-clean 100%.
  double stroke_dropout = 0.12;
};

/// Generates the paired train/test synthetic MNIST split.
DatasetPair synthetic_mnist(const MnistOptions& options = {});

struct CifarOptions {
  std::int64_t train_samples = 2000;
  std::int64_t test_samples = 500;
  std::uint64_t seed = 43;
  /// Scales the texture noise and orientation jitter; 1.0 lands simple
  /// CNNs in the paper's 60–90% band.
  double difficulty = 1.0;
};

/// Generates the paired train/test synthetic CIFAR-10 split.
DatasetPair synthetic_cifar10(const CifarOptions& options = {});

/// Canonical dataset names used by the config registry.
inline constexpr const char* kMnistName = "MNIST";
inline constexpr const char* kCifarName = "CIFAR-10";

}  // namespace dlbench::data
