#include "data/augment.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace dlbench::data {

void random_horizontal_flip(Batch& batch, double p, util::Rng& rng) {
  DLB_CHECK(p >= 0.0 && p <= 1.0, "flip probability must be in [0,1]");
  const std::int64_t n = batch.images.dim(0);
  const std::int64_t c = batch.images.dim(1);
  const std::int64_t h = batch.images.dim(2);
  const std::int64_t w = batch.images.dim(3);
  for (std::int64_t i = 0; i < n; ++i) {
    if (!rng.bernoulli(p)) continue;
    float* img = batch.images.raw() + i * c * h * w;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < h; ++y) {
        float* row = img + (ch * h + y) * w;
        std::reverse(row, row + w);
      }
    }
  }
}

void random_crop(Batch& batch, int pad, util::Rng& rng) {
  DLB_CHECK(pad >= 0, "crop pad must be non-negative");
  if (pad == 0) return;
  const std::int64_t n = batch.images.dim(0);
  const std::int64_t c = batch.images.dim(1);
  const std::int64_t h = batch.images.dim(2);
  const std::int64_t w = batch.images.dim(3);
  const std::int64_t ph = h + 2 * pad, pw = w + 2 * pad;
  std::vector<float> padded(static_cast<std::size_t>(c * ph * pw));

  for (std::int64_t i = 0; i < n; ++i) {
    float* img = batch.images.raw() + i * c * h * w;
    std::fill(padded.begin(), padded.end(), 0.f);
    for (std::int64_t ch = 0; ch < c; ++ch)
      for (std::int64_t y = 0; y < h; ++y)
        std::memcpy(
            padded.data() + (ch * ph + y + pad) * pw + pad,
            img + (ch * h + y) * w,
            static_cast<std::size_t>(w) * sizeof(float));
    const auto oy = static_cast<std::int64_t>(
        rng.uniform_index(static_cast<std::uint64_t>(2 * pad + 1)));
    const auto ox = static_cast<std::int64_t>(
        rng.uniform_index(static_cast<std::uint64_t>(2 * pad + 1)));
    for (std::int64_t ch = 0; ch < c; ++ch)
      for (std::int64_t y = 0; y < h; ++y)
        std::memcpy(img + (ch * h + y) * w,
                    padded.data() + (ch * ph + y + oy) * pw + ox,
                    static_cast<std::size_t>(w) * sizeof(float));
  }
}

void random_brightness(Batch& batch, double delta, util::Rng& rng) {
  DLB_CHECK(delta >= 0.0 && delta < 1.0, "brightness delta must be in [0,1)");
  if (delta == 0.0) return;
  const std::int64_t n = batch.images.dim(0);
  const std::int64_t sample = batch.images.numel() / n;
  for (std::int64_t i = 0; i < n; ++i) {
    const float scale =
        static_cast<float>(rng.uniform(1.0 - delta, 1.0 + delta));
    float* img = batch.images.raw() + i * sample;
    for (std::int64_t k = 0; k < sample; ++k) img[k] *= scale;
  }
}

void AugmentPolicy::apply(Batch& batch, util::Rng& rng) const {
  if (crop_pad > 0) random_crop(batch, crop_pad, rng);
  if (horizontal_flip) random_horizontal_flip(batch, flip_probability, rng);
  if (brightness_delta > 0.0) random_brightness(batch, brightness_delta, rng);
}

AugmentPolicy AugmentPolicy::tf_cifar() {
  AugmentPolicy policy;
  policy.horizontal_flip = true;
  policy.crop_pad = 4;
  policy.brightness_delta = 0.2;
  return policy;
}

}  // namespace dlbench::data
