#include "frameworks/predictor.hpp"

#include "frameworks/framework.hpp"
#include "frameworks/registry.hpp"
#include "nn/checkpoint.hpp"
#include "util/rng.hpp"

namespace dlbench::frameworks {

nn::FrozenModel make_predictor(const PredictorConfig& config) {
  const nn::NetworkSpec spec =
      default_network_spec(config.framework, config.dataset);
  const std::unique_ptr<Framework> fw = make_framework(config.framework);
  util::Rng rng(config.seed);
  nn::Sequential model = fw->build_model(spec, config.device, rng);
  if (!config.checkpoint_path.empty())
    nn::load_checkpoint(model, config.checkpoint_path);
  return nn::FrozenModel::freeze(model);
}

nn::FrozenModel freeze_for_serving(const nn::Sequential& model) {
  return nn::FrozenModel::freeze(model);
}

tensor::Shape sample_shape(DatasetId dataset) {
  switch (dataset) {
    case DatasetId::kMnist:
      return tensor::Shape({1, 28, 28});
    case DatasetId::kCifar10:
      return tensor::Shape({3, 32, 32});
  }
  return tensor::Shape({});  // unreachable
}

}  // namespace dlbench::frameworks
