#include "frameworks/registry.hpp"

#include "util/error.hpp"

namespace dlbench::frameworks {

using nn::LayerSpec;
using nn::NetworkSpec;
using tensor::InitKind;

TrainingConfig default_training_config(FrameworkKind kind, DatasetId dataset) {
  TrainingConfig cfg;
  if (dataset == DatasetId::kMnist) {
    switch (kind) {
      case FrameworkKind::kTensorFlow:
        // Table II, TF column.
        cfg.label = "TF MNIST";
        cfg.algo = OptimizerAlgo::kAdam;
        cfg.base_lr = 0.0001;
        cfg.batch_size = 50;
        cfg.epochs = 16.67;
        cfg.momentum = 0.0;  // Adam ignores momentum
        cfg.paper_max_iterations = 20000;
        return cfg;
      case FrameworkKind::kCaffe:
        cfg.label = "Caffe MNIST";
        cfg.algo = OptimizerAlgo::kSgd;
        cfg.base_lr = 0.01;
        cfg.batch_size = 64;
        cfg.epochs = 10.67;
        cfg.momentum = 0.9;
        cfg.paper_max_iterations = 10000;
        return cfg;
      case FrameworkKind::kTorch:
        cfg.label = "Torch MNIST";
        cfg.algo = OptimizerAlgo::kSgd;
        cfg.base_lr = 0.05;
        cfg.batch_size = 10;
        cfg.epochs = 20.0;
        cfg.momentum = 0.0;
        cfg.preprocessing = data::Preprocessing::kGlobalChannelNormalize;
        cfg.paper_max_iterations = 120000;
        return cfg;
    }
  }
  switch (kind) {
    case FrameworkKind::kTensorFlow:
      // Table III, TF column.
      cfg.label = "TF CIFAR-10";
      cfg.algo = OptimizerAlgo::kSgd;
      cfg.base_lr = 0.1;
      cfg.batch_size = 128;
      cfg.epochs = 2560.0;
      cfg.momentum = 0.0;  // the TF tutorial uses plain GradientDescent
      cfg.preprocessing = data::Preprocessing::kPerImageStandardize;
      cfg.paper_max_iterations = 1000000;
      return cfg;
    case FrameworkKind::kCaffe:
      cfg.label = "Caffe CIFAR-10";
      cfg.algo = OptimizerAlgo::kSgd;
      cfg.base_lr = 0.001;
      cfg.lr_phases = {{8.0, 0.0001}};  // phase 2: 0.0001 after 8 epochs
      cfg.batch_size = 100;
      cfg.epochs = 10.0;  // 8 + 2
      cfg.momentum = 0.9;
      cfg.preprocessing = data::Preprocessing::kMeanSubtract;
      cfg.paper_max_iterations = 5000;
      return cfg;
    case FrameworkKind::kTorch:
      cfg.label = "Torch CIFAR-10";
      cfg.algo = OptimizerAlgo::kSgd;
      cfg.base_lr = 0.001;
      cfg.batch_size = 1;
      cfg.epochs = 20.0;
      cfg.momentum = 0.0;
      cfg.preprocessing = data::Preprocessing::kGlobalChannelNormalize;
      // The Torch demo trains on 5,000 of the 50,000 CIFAR-10 images;
      // that is how the paper's 100,000 iterations = 20 epochs at batch
      // size 1 (§III-A) comes out.
      cfg.train_fraction = 0.1;
      cfg.paper_max_iterations = 100000;
      return cfg;
  }
  DLB_CHECK(false, "unknown framework/dataset");
  return cfg;  // unreachable
}

NetworkSpec default_network_spec(FrameworkKind kind, DatasetId dataset) {
  NetworkSpec spec;
  if (dataset == DatasetId::kMnist) {
    spec.input_channels = 1;
    spec.input_height = 28;
    spec.input_width = 28;
    switch (kind) {
      case FrameworkKind::kTensorFlow:
        // Table IV, TF column: SAME-padded convs, ReLU, 2x2 pools,
        // fc 3136->1024, fc 1024->10.
        spec.name = "TF-MNIST-net";
        spec.init = InitKind::kTruncatedNormal;
        spec.ops = {
            LayerSpec::conv(32, 5, /*pad=*/2), LayerSpec::relu(),
            LayerSpec::max_pool(2, 2),
            LayerSpec::conv(64, 5, /*pad=*/2), LayerSpec::relu(),
            LayerSpec::max_pool(2, 2),
            LayerSpec::linear(1024),           LayerSpec::relu(),
            LayerSpec::linear(10),
        };
        return spec;
      case FrameworkKind::kCaffe:
        // Table IV, Caffe column: LeNet — valid convs, ceil-mode pools,
        // fc 800->500 (ReLU), fc 500->10.
        spec.name = "Caffe-MNIST-net";
        spec.init = InitKind::kXavierUniform;
        spec.ops = {
            LayerSpec::conv(20, 5), LayerSpec::max_pool(2, 2, true),
            LayerSpec::conv(50, 5), LayerSpec::max_pool(2, 2, true),
            LayerSpec::linear(500), LayerSpec::relu(),
            LayerSpec::linear(10),
        };
        return spec;
      case FrameworkKind::kTorch:
        // Table IV, Torch column: Tanh nets, 3x3 pools; stride 2 yields
        // the printed 3x3x64->200 fc dims.
        spec.name = "Torch-MNIST-net";
        spec.init = InitKind::kLecunUniform;
        spec.ops = {
            LayerSpec::conv(32, 5), LayerSpec::tanh(),
            LayerSpec::max_pool(3, 2),
            LayerSpec::conv(64, 5), LayerSpec::tanh(),
            LayerSpec::max_pool(3, 2),
            LayerSpec::linear(200), LayerSpec::tanh(),
            LayerSpec::linear(10),
        };
        return spec;
    }
  }
  spec.input_channels = 3;
  spec.input_height = 32;
  spec.input_width = 32;
  switch (kind) {
    case FrameworkKind::kTensorFlow:
      // Table V, TF column: two conv+LRN blocks (norm after pool in
      // block 1, before pool in block 2), fc 3136->384->192->10.
      spec.name = "TF-CIFAR-net";
      spec.init = InitKind::kTruncatedNormal;
      spec.ops = {
          LayerSpec::conv(64, 5, /*pad=*/2), LayerSpec::relu(),
          LayerSpec::max_pool(3, 2),         LayerSpec::lrn(),
          LayerSpec::conv(64, 5, /*pad=*/2), LayerSpec::relu(),
          LayerSpec::lrn(),                  LayerSpec::max_pool(3, 2),
          LayerSpec::linear(384),            LayerSpec::relu(),
          LayerSpec::linear(192),            LayerSpec::relu(),
          LayerSpec::linear(10),
      };
      return spec;
    case FrameworkKind::kCaffe:
      // Table V, Caffe column: cifar10_quick — 3 convs, ceil pools,
      // fc 1024->64->10.
      spec.name = "Caffe-CIFAR-net";
      spec.init = InitKind::kXavierUniform;
      spec.ops = {
          LayerSpec::conv(32, 5, /*pad=*/2),
          LayerSpec::max_pool(3, 2, true),
          LayerSpec::relu(),
          LayerSpec::conv(32, 5, /*pad=*/2),
          LayerSpec::relu(),
          LayerSpec::avg_pool(3, 2, true),
          LayerSpec::conv(64, 5, /*pad=*/2),
          LayerSpec::relu(),
          LayerSpec::avg_pool(3, 2, true),
          LayerSpec::linear(64),
          LayerSpec::linear(10),
      };
      return spec;
    case FrameworkKind::kTorch:
      // Table V, Torch column: Tanh net, 2x2 pools, fc 6400->128->10.
      spec.name = "Torch-CIFAR-net";
      spec.init = InitKind::kLecunUniform;
      spec.ops = {
          LayerSpec::conv(16, 5),  LayerSpec::tanh(),
          LayerSpec::max_pool(2, 2),
          LayerSpec::conv(256, 5), LayerSpec::tanh(),
          LayerSpec::max_pool(2, 2),
          LayerSpec::linear(128),  LayerSpec::tanh(),
          LayerSpec::linear(10),
      };
      return spec;
  }
  DLB_CHECK(false, "unknown framework/dataset");
  return spec;  // unreachable
}

FrameworkInfo framework_info(FrameworkKind kind) {
  FrameworkInfo info;
  switch (kind) {
    case FrameworkKind::kTensorFlow:
      info.name = "TensorFlow";
      info.paper_version = "1.3.0";
      info.paper_hash = "ab0fcac";
      info.paper_library = "Eigen & CUDA";
      info.paper_interface = "Java, Python, Go, R";
      info.paper_loc = 1281085;
      info.paper_license = "Apache";
      info.paper_website = "https://www.tensorflow.org/";
      info.emulation =
          "graph-compiled executor, fused GEMM conv, dropout regularizer";
      return info;
    case FrameworkKind::kCaffe:
      info.name = "Caffe";
      info.paper_version = "1.0.0";
      info.paper_hash = "c430690";
      info.paper_library = "OpenBLAS & CUDA";
      info.paper_interface = "Python, Matlab";
      info.paper_loc = 69608;
      info.paper_license = "BSD";
      info.paper_website = "http://caffe.berkeleyvision.org/";
      info.emulation =
          "layer-wise solver, preallocated blobs, weight-decay regularizer";
      return info;
    case FrameworkKind::kTorch:
      info.name = "Torch";
      info.paper_version = "torch7";
      info.paper_hash = "0219027";
      info.paper_library = "optim & CUDA";
      info.paper_interface = "Lua";
      info.paper_loc = 29750;
      info.paper_license = "BSD";
      info.paper_website = "http://torch.ch/";
      info.emulation =
          "eager module dispatch, direct conv on CPU / GEMM conv on GPU";
      return info;
  }
  DLB_CHECK(false, "unknown framework");
  return info;  // unreachable
}

}  // namespace dlbench::frameworks
