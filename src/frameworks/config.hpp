#pragma once

// Identifiers and training configurations — the "default settings" the
// paper cross-applies between frameworks and datasets.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/preprocess.hpp"

namespace dlbench::frameworks {

/// The three frameworks under study (as emulations, see DESIGN.md).
enum class FrameworkKind { kTensorFlow, kCaffe, kTorch };

/// The two datasets every configuration was tuned for.
enum class DatasetId { kMnist, kCifar10 };

enum class OptimizerAlgo { kSgd, kAdam };

/// Which regularizer a framework's reference models apply — the knob
/// behind the paper's robustness differences (Table IX).
enum class Regularizer { kNone, kDropout, kWeightDecay };

const char* to_string(FrameworkKind kind);
const char* to_string(DatasetId id);
const char* to_string(OptimizerAlgo algo);
const char* to_string(Regularizer reg);

/// A complete "default training setting" as in Tables II and III:
/// optimizer algorithm, base learning rate (with Caffe's two-phase
/// CIFAR schedule expressed as phases), batch size, and epochs.
struct TrainingConfig {
  std::string label;            // e.g. "TF MNIST"
  OptimizerAlgo algo = OptimizerAlgo::kSgd;
  double base_lr = 0.01;
  /// Additional phases after the base one: {epoch boundary, lr}.
  /// Caffe CIFAR-10: base 0.001 for 8 epochs then 0.0001 for 2.
  std::vector<std::pair<double, double>> lr_phases;
  std::int64_t batch_size = 64;
  double epochs = 10.0;
  double momentum = 0.9;

  /// Input preprocessing the setting's reference pipeline applies
  /// (TF's CIFAR tutorial standardizes per image, Caffe's subtracts the
  /// training-mean image, Torch demos normalize channels, the MNIST
  /// pipelines only scale to [0,1]).
  data::Preprocessing preprocessing = data::Preprocessing::kScaleOnly;

  /// Fraction of the training split this setting actually uses. 1.0
  /// except Torch CIFAR-10: the Torch demo trains on a 5,000-sample
  /// subset, which is the only way the paper's 100,000 iterations x
  /// batch 1 = 20 epochs identity holds.
  double train_fraction = 1.0;

  /// Paper-reported #Max Iterations at full scale (informational; the
  /// trainer recomputes steps from epochs and actual dataset size).
  std::int64_t paper_max_iterations = 0;
};

/// Static framework properties for Table I. `paper_*` fields reproduce
/// the published row; `emulation` describes what this repo runs.
struct FrameworkInfo {
  std::string name;
  std::string paper_version;
  std::string paper_hash;
  std::string paper_library;
  std::string paper_interface;
  std::int64_t paper_loc = 0;
  std::string paper_license;
  std::string paper_website;
  std::string emulation;  // one-line description of the emulation
};

}  // namespace dlbench::frameworks
