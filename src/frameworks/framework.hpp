#pragma once

// The Framework abstraction: one emulation per framework in the study.
//
// A Framework owns the pieces that travel with the *framework* in the
// paper's methodology — execution model, regularizer, weight
// initialization quirks, conv kernel selection, evaluation batching —
// while the *setting* (TrainingConfig + NetworkSpec) travels separately
// and can come from any framework/dataset pair in the registry. This
// split is exactly what lets the harness reproduce the paper's
// dataset-dependent (Fig 3/4) and framework-dependent (Fig 6/7)
// cross-experiments.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.hpp"
#include "frameworks/config.hpp"
#include "nn/network_spec.hpp"
#include "optim/optimizer.hpp"
#include "runtime/device.hpp"
#include "runtime/scale.hpp"

namespace dlbench::frameworks {

using runtime::Device;

/// Harness-level knobs for one training run.
struct TrainOptions {
  runtime::ScaleConfig scale = runtime::ScaleConfig::bench_default();
  std::uint64_t seed = 1234;
  /// Loss curve sampling interval, in optimizer steps.
  std::int64_t loss_record_interval = 10;
  /// Floor on optimizer steps (before the cap). The paper's settings
  /// budget *iterations* (Tables II/III); shrinking the dataset while
  /// holding epochs would shrink the optimization budget 30-50x, so the
  /// harness floors steps at a fraction of the paper's iterations.
  std::int64_t min_steps_floor = 0;
};

/// Outcome of a training run (Figures 1–7 left panels + Figure 5).
struct TrainResult {
  double train_time_s = 0.0;
  std::int64_t steps = 0;
  double epochs_run = 0.0;
  /// (step, mean batch loss) samples.
  std::vector<std::pair<std::int64_t, double>> loss_curve;
  double final_loss = 0.0;
  /// False when training failed to beat chance-level loss — the
  /// paper's Caffe-on-CIFAR-with-MNIST-settings outcome.
  bool converged = false;
};

/// Outcome of an evaluation run (middle/right panels).
struct EvalResult {
  double test_time_s = 0.0;
  double accuracy_pct = 0.0;
  std::int64_t correct = 0;
  std::int64_t total = 0;
};

/// One emulated deep-learning framework.
class Framework {
 public:
  virtual ~Framework() = default;

  virtual FrameworkKind kind() const = 0;
  std::string name() const { return to_string(kind()); }

  /// The regularizer this framework's reference models apply.
  virtual Regularizer regularizer() const = 0;

  /// Materializes `spec` the way this framework would: applying its
  /// conv kernel choice for `device` and injecting its regularizer
  /// (e.g. TF inserts dropout before the classifier layer).
  virtual nn::Sequential build_model(const nn::NetworkSpec& spec,
                                     const Device& device,
                                     util::Rng& rng) const = 0;

  /// Builds this framework's optimizer for the given setting.
  /// `steps_per_epoch` converts the setting's epoch-based lr phases
  /// into step boundaries.
  virtual std::unique_ptr<optim::Optimizer> make_optimizer(
      const TrainingConfig& config, std::int64_t steps_per_epoch,
      std::int64_t total_steps) const = 0;

  /// One-time session setup before the first step (e.g. TF's graph
  /// compilation dry-run). Included in measured training time.
  virtual void prepare(nn::Sequential& model, const tensor::Tensor& sample,
                       const nn::Context& ctx) const;

  /// Test-time batch size (frameworks shipped different eval drivers;
  /// Torch's demos classified sample-by-sample).
  virtual std::int64_t eval_batch_size() const = 0;

  /// Runs the full training loop; wall-clock measured inside.
  TrainResult train(nn::Sequential& model, const data::Dataset& train_set,
                    const TrainingConfig& config, const Device& device,
                    const TrainOptions& options) const;

  /// Runs test-set evaluation; wall-clock measured inside.
  EvalResult evaluate(nn::Sequential& model, const data::Dataset& test_set,
                      const Device& device) const;
};

/// Factory for the three emulations.
std::unique_ptr<Framework> make_framework(FrameworkKind kind);

}  // namespace dlbench::frameworks
