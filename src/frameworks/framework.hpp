#pragma once

// The Framework abstraction: one emulation per framework in the study.
//
// A Framework owns the pieces that travel with the *framework* in the
// paper's methodology — execution model, regularizer, weight
// initialization quirks, conv kernel selection, evaluation batching —
// while the *setting* (TrainingConfig + NetworkSpec) travels separately
// and can come from any framework/dataset pair in the registry. This
// split is exactly what lets the harness reproduce the paper's
// dataset-dependent (Fig 3/4) and framework-dependent (Fig 6/7)
// cross-experiments.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.hpp"
#include "frameworks/config.hpp"
#include "nn/network_spec.hpp"
#include "optim/optimizer.hpp"
#include "runtime/device.hpp"
#include "runtime/scale.hpp"

namespace dlbench::frameworks {

using runtime::Device;

/// Divergence-detection and bounded-recovery policy for the guarded
/// training loop. A "divergent" step is one whose loss or gradients go
/// non-finite (or whose gradient L2 norm exceeds `grad_norm_limit`,
/// when that check is enabled). On divergence the trainer rolls the
/// model back to its last in-memory snapshot, rebuilds the optimizer
/// with a backed-off learning rate, and retries; when retries are
/// exhausted it returns a TrainResult marked diverged instead of
/// grinding through NaN weights or throwing.
struct GuardOptions {
  /// Rollback/retry attempts before giving up. 0 disables recovery
  /// (detection still records the divergence step).
  int max_recoveries = 2;
  /// Steps between in-memory parameter snapshots.
  std::int64_t snapshot_interval = 50;
  /// Multiplier applied to the setting's learning rate per recovery.
  double lr_backoff = 0.1;
  /// Gradient L2-norm limit for the explosion check; 0 disables it
  /// (non-finite gradients are always divergent).
  double grad_norm_limit = 0.0;
  /// Watchdog wall-clock budget per training run, seconds; 0 disables.
  /// A run that exceeds it is aborted and marked timed_out.
  double timeout_s = 0.0;

  /// Reads DLB_GUARD_MAX_RECOVERIES / DLB_GUARD_SNAPSHOT_INTERVAL /
  /// DLB_GUARD_LR_BACKOFF / DLB_GUARD_GRAD_LIMIT / DLB_TRAIN_TIMEOUT_S
  /// overrides on top of `fallback` (defaults when omitted).
  static GuardOptions from_env(GuardOptions fallback);
  static GuardOptions from_env() { return from_env(GuardOptions{}); }
};

/// Harness-level knobs for one training run.
struct TrainOptions {
  runtime::ScaleConfig scale = runtime::ScaleConfig::bench_default();
  std::uint64_t seed = 1234;
  /// Loss curve sampling interval, in optimizer steps.
  std::int64_t loss_record_interval = 10;
  /// Floor on optimizer steps (before the cap). The paper's settings
  /// budget *iterations* (Tables II/III); shrinking the dataset while
  /// holding epochs would shrink the optimization budget 30-50x, so the
  /// harness floors steps at a fraction of the paper's iterations.
  std::int64_t min_steps_floor = 0;
  /// Divergence recovery + watchdog policy.
  GuardOptions guard;
};

/// Wall-clock decomposition of one training run. Measured
/// unconditionally (a few steady-clock reads per step, far below the
/// noise floor); phase times sum to slightly less than train_time_s
/// because session prepare and loop bookkeeping are unattributed.
struct PhaseBreakdown {
  double data_s = 0.0;       // loader/batch assembly
  double forward_s = 0.0;    // forward pass + loss head
  double backward_s = 0.0;   // backpropagation
  double optimizer_s = 0.0;  // parameter updates
  double guard_s = 0.0;      // divergence checks, snapshots, rollbacks

  double total() const {
    return data_s + forward_s + backward_s + optimizer_s + guard_s;
  }
};

/// Outcome of a training run (Figures 1–7 left panels + Figure 5).
struct TrainResult {
  double train_time_s = 0.0;
  std::int64_t steps = 0;
  double epochs_run = 0.0;
  /// (step, mean batch loss) samples.
  std::vector<std::pair<std::int64_t, double>> loss_curve;
  double final_loss = 0.0;
  /// False when training failed to beat chance-level loss — the
  /// paper's Caffe-on-CIFAR-with-MNIST-settings outcome.
  bool converged = false;
  /// First step whose loss/gradients went non-finite (or exceeded the
  /// guard's norm limit); -1 when no step diverged. Recorded even when
  /// a rollback later recovered the run.
  std::int64_t divergence_step = -1;
  /// Rollback + learning-rate-backoff recoveries performed.
  int recovery_attempts = 0;
  /// True when recovery was exhausted and training aborted early.
  bool diverged = false;
  /// True when the watchdog expired before the step budget completed.
  bool timed_out = false;
  /// Where the wall clock went, by training phase.
  PhaseBreakdown phases;
};

/// Outcome of an evaluation run (middle/right panels).
struct EvalResult {
  double test_time_s = 0.0;
  double accuracy_pct = 0.0;
  std::int64_t correct = 0;
  std::int64_t total = 0;
};

/// One emulated deep-learning framework.
class Framework {
 public:
  virtual ~Framework() = default;

  virtual FrameworkKind kind() const = 0;
  std::string name() const { return to_string(kind()); }

  /// The regularizer this framework's reference models apply.
  virtual Regularizer regularizer() const = 0;

  /// Materializes `spec` the way this framework would: applying its
  /// conv kernel choice for `device` and injecting its regularizer
  /// (e.g. TF inserts dropout before the classifier layer).
  virtual nn::Sequential build_model(const nn::NetworkSpec& spec,
                                     const Device& device,
                                     util::Rng& rng) const = 0;

  /// Builds this framework's optimizer for the given setting.
  /// `steps_per_epoch` converts the setting's epoch-based lr phases
  /// into step boundaries.
  virtual std::unique_ptr<optim::Optimizer> make_optimizer(
      const TrainingConfig& config, std::int64_t steps_per_epoch,
      std::int64_t total_steps) const = 0;

  /// One-time session setup before the first step (e.g. TF's graph
  /// compilation dry-run). Included in measured training time.
  virtual void prepare(nn::Sequential& model, const tensor::Tensor& sample,
                       const nn::Context& ctx) const;

  /// Test-time batch size (frameworks shipped different eval drivers;
  /// Torch's demos classified sample-by-sample).
  virtual std::int64_t eval_batch_size() const = 0;

  /// Runs the full training loop; wall-clock measured inside.
  TrainResult train(nn::Sequential& model, const data::Dataset& train_set,
                    const TrainingConfig& config, const Device& device,
                    const TrainOptions& options) const;

  /// Runs test-set evaluation; wall-clock measured inside.
  EvalResult evaluate(nn::Sequential& model, const data::Dataset& test_set,
                      const Device& device) const;
};

/// Factory for the three emulations.
std::unique_ptr<Framework> make_framework(FrameworkKind kind);

}  // namespace dlbench::frameworks
