#include "frameworks/framework.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/stopwatch.hpp"
#include "util/error.hpp"

namespace dlbench::frameworks {

void Framework::prepare(nn::Sequential&, const tensor::Tensor&,
                        const nn::Context&) const {}

TrainResult Framework::train(nn::Sequential& model,
                             const data::Dataset& train_set,
                             const TrainingConfig& config,
                             const Device& device,
                             const TrainOptions& options) const {
  DLB_CHECK(train_set.size() > 0, "empty training set");
  DLB_CHECK(config.batch_size > 0, "batch size must be positive");

  const std::int64_t n = train_set.size();
  const std::int64_t steps_per_epoch =
      (n + config.batch_size - 1) / config.batch_size;
  const double epochs = options.scale.scale_epochs(config.epochs);
  std::int64_t total_steps = static_cast<std::int64_t>(
      std::ceil(epochs * static_cast<double>(steps_per_epoch)));
  total_steps = std::max(total_steps, options.min_steps_floor);
  total_steps = std::max<std::int64_t>(1, options.scale.cap_steps(total_steps));

  auto optimizer = make_optimizer(config, steps_per_epoch, total_steps);

  util::Rng rng(options.seed);
  util::Rng loader_rng = rng.fork();
  util::Rng dropout_rng = rng.fork();

  nn::Context ctx;
  ctx.device = device;
  ctx.training = true;
  ctx.rng = &dropout_rng;

  data::DataLoader loader(train_set, config.batch_size, /*shuffle=*/true,
                          loader_rng);

  TrainResult result;
  runtime::Stopwatch clock;

  // Session setup (e.g. TF graph compile) counts toward training time.
  prepare(model, train_set.sample(0), ctx);

  std::int64_t step = 0;
  data::Batch batch;
  while (step < total_steps) {
    loader.start_epoch();
    while (step < total_steps && loader.next(batch)) {
      model.zero_grads();
      nn::LossResult loss = model.forward_loss(batch.images, batch.labels, ctx);
      model.backward(loss, batch.labels, ctx);
      optimizer->step(model.params(), model.grads(), step, device);

      if (step % options.loss_record_interval == 0 ||
          step + 1 == total_steps) {
        result.loss_curve.emplace_back(step, loss.loss);
      }
      result.final_loss = loss.loss;
      ++step;
    }
  }

  result.train_time_s = clock.seconds();
  result.steps = step;
  result.epochs_run = static_cast<double>(step) /
                      static_cast<double>(steps_per_epoch);
  // Chance-level mean cross-entropy for C classes is ln(C); a run that
  // never gets meaningfully below it did not converge (paper Fig. 5).
  const double chance_loss =
      std::log(static_cast<double>(train_set.num_classes));
  result.converged = std::isfinite(result.final_loss) &&
                     result.final_loss < 0.95 * chance_loss;
  return result;
}

EvalResult Framework::evaluate(nn::Sequential& model,
                               const data::Dataset& test_set,
                               const Device& device) const {
  DLB_CHECK(test_set.size() > 0, "empty test set");
  nn::Context ctx;
  ctx.device = device;
  ctx.training = false;

  util::Rng unused(0);
  data::DataLoader loader(test_set, eval_batch_size(), /*shuffle=*/false,
                          unused);

  EvalResult result;
  runtime::Stopwatch clock;
  data::Batch batch;
  while (loader.next(batch)) {
    const auto predictions = model.predict(batch.images, ctx);
    for (std::size_t i = 0; i < predictions.size(); ++i)
      if (predictions[i] == batch.labels[i]) ++result.correct;
    result.total += batch.size();
  }
  result.test_time_s = clock.seconds();
  result.accuracy_pct = 100.0 * static_cast<double>(result.correct) /
                        static_cast<double>(result.total);
  return result;
}

}  // namespace dlbench::frameworks
