#include "frameworks/framework.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <span>

#include "runtime/fault.hpp"
#include "runtime/stopwatch.hpp"
#include "runtime/trace.hpp"
#include "util/error.hpp"

namespace dlbench::frameworks {

namespace {

using SteadyClock = std::chrono::steady_clock;

double secs_between(SteadyClock::time_point a, SteadyClock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtoll(raw, nullptr, 10);
}

double env_f64(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtod(raw, nullptr);
}

std::vector<tensor::Tensor> clone_params(nn::Sequential& model) {
  std::vector<tensor::Tensor> out;
  for (const tensor::Tensor* p : model.params()) out.push_back(p->clone());
  return out;
}

void restore_params(nn::Sequential& model,
                    const std::vector<tensor::Tensor>& snapshot) {
  auto params = model.params();
  DLB_ASSERT(params.size() == snapshot.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto dst = params[i]->data();
    auto src = snapshot[i].data();
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

// True when any gradient entry is non-finite, or (when `limit` > 0)
// the global gradient L2 norm exceeds it. A non-finite entry makes the
// accumulated sum of squares non-finite, so one pass covers both.
bool gradients_divergent(const std::vector<tensor::Tensor*>& grads,
                         double limit) {
  if (limit > 0.0) {
    double sumsq = 0.0;
    for (const tensor::Tensor* g : grads)
      for (const float v : g->data()) sumsq += static_cast<double>(v) * v;
    return !std::isfinite(sumsq) || std::sqrt(sumsq) > limit;
  }
  for (const tensor::Tensor* g : grads)
    if (g->has_non_finite()) return true;
  return false;
}

// The recovery retry runs the same setting at a backed-off rate; the
// multiplier applies to every phase of the schedule.
TrainingConfig scale_learning_rate(TrainingConfig config, double scale) {
  config.base_lr *= scale;
  for (auto& phase : config.lr_phases) phase.second *= scale;
  return config;
}

}  // namespace

GuardOptions GuardOptions::from_env(GuardOptions fallback) {
  GuardOptions opt = fallback;
  opt.max_recoveries = static_cast<int>(
      env_i64("DLB_GUARD_MAX_RECOVERIES", opt.max_recoveries));
  opt.snapshot_interval =
      env_i64("DLB_GUARD_SNAPSHOT_INTERVAL", opt.snapshot_interval);
  opt.lr_backoff = env_f64("DLB_GUARD_LR_BACKOFF", opt.lr_backoff);
  opt.grad_norm_limit = env_f64("DLB_GUARD_GRAD_LIMIT", opt.grad_norm_limit);
  opt.timeout_s = env_f64("DLB_TRAIN_TIMEOUT_S", opt.timeout_s);
  return opt;
}

void Framework::prepare(nn::Sequential&, const tensor::Tensor&,
                        const nn::Context&) const {}

TrainResult Framework::train(nn::Sequential& model,
                             const data::Dataset& train_set,
                             const TrainingConfig& config,
                             const Device& device,
                             const TrainOptions& options) const {
  DLB_CHECK(train_set.size() > 0, "empty training set");
  DLB_CHECK(config.batch_size > 0, "batch size must be positive");

  const std::int64_t n = train_set.size();
  const std::int64_t steps_per_epoch =
      (n + config.batch_size - 1) / config.batch_size;
  const double epochs = options.scale.scale_epochs(config.epochs);
  std::int64_t total_steps = static_cast<std::int64_t>(
      std::ceil(epochs * static_cast<double>(steps_per_epoch)));
  total_steps = std::max(total_steps, options.min_steps_floor);
  total_steps = std::max<std::int64_t>(1, options.scale.cap_steps(total_steps));

  auto optimizer = make_optimizer(config, steps_per_epoch, total_steps);

  util::Rng rng(options.seed);
  util::Rng loader_rng = rng.fork();
  util::Rng dropout_rng = rng.fork();

  nn::Context ctx;
  ctx.device = device;
  ctx.training = true;
  ctx.rng = &dropout_rng;

  data::DataLoader loader(train_set, config.batch_size, /*shuffle=*/true,
                          loader_rng);

  TrainResult result;
  runtime::Stopwatch clock;

  const GuardOptions& guard = options.guard;
  // Watchdog: bounds the run's wall clock so a stalled cell aborts
  // instead of hanging the whole suite (expiry is checked every step,
  // and injected stalls poll the abort flag it raises).
  runtime::fault::Watchdog watchdog(guard.timeout_s);

  // Session setup (e.g. TF graph compile) counts toward training time.
  prepare(model, train_set.sample(0), ctx);

  // Guarded loop state: a periodic in-memory snapshot to roll back to,
  // and the cumulative learning-rate backoff across recoveries.
  const bool recovery_enabled = guard.max_recoveries > 0;
  std::vector<tensor::Tensor> snapshot;
  std::int64_t snapshot_step = 0;
  if (recovery_enabled) snapshot = clone_params(model);
  double lr_scale = 1.0;

  // Timed batch fetch, attributed to the data phase.
  auto next_batch = [&](data::Batch& b) {
    runtime::trace::Span span("data.next_batch", "data");
    const auto t0 = SteadyClock::now();
    const bool ok = loader.next(b);
    result.phases.data_s += secs_between(t0, SteadyClock::now());
    return ok;
  };

  std::int64_t step = 0;
  bool aborted = false;
  data::Batch batch;
  while (step < total_steps && !aborted) {
    const std::int64_t step_at_epoch_start = step;
    bool rolled_back = false;
    loader.start_epoch();
    while (step < total_steps && next_batch(batch)) {
      if (watchdog.expired()) {
        result.timed_out = true;
        aborted = true;
        break;
      }
      runtime::fault::maybe_stall_step(step);
      runtime::trace::Span step_span("train.step", "train");

      model.zero_grads();
      const auto t_fwd = SteadyClock::now();
      nn::LossResult loss = model.forward_loss(batch.images, batch.labels, ctx);
      const auto t_bwd = SteadyClock::now();
      result.phases.forward_s += secs_between(t_fwd, t_bwd);
      model.backward(loss, batch.labels, ctx);
      const auto t_guard = SteadyClock::now();
      result.phases.backward_s += secs_between(t_bwd, t_guard);

      if (runtime::fault::enabled()) {
        std::vector<std::span<float>> grad_spans;
        for (tensor::Tensor* g : model.grads())
          grad_spans.push_back(g->data());
        runtime::fault::maybe_corrupt_gradients(step, grad_spans);
      }

      // Divergence is detected *before* the update is applied, so one
      // bad step cannot poison the parameters it would write to.
      const bool divergent =
          !std::isfinite(loss.loss) ||
          gradients_divergent(model.grads(), guard.grad_norm_limit);
      if (divergent) {
        if (result.divergence_step < 0) result.divergence_step = step;
        if (!recovery_enabled ||
            result.recovery_attempts >= guard.max_recoveries) {
          result.diverged = true;
          aborted = true;
        } else {
          // Bounded recovery: roll back to the snapshot, back off the
          // learning rate, and retry from there with a fresh optimizer.
          ++result.recovery_attempts;
          runtime::trace::counter_add("train.rollbacks", 1);
          restore_params(model, snapshot);
          model.zero_grads();
          lr_scale *= guard.lr_backoff;
          optimizer = make_optimizer(scale_learning_rate(config, lr_scale),
                                     steps_per_epoch, total_steps);
          while (!result.loss_curve.empty() &&
                 result.loss_curve.back().first >= snapshot_step)
            result.loss_curve.pop_back();
          step = snapshot_step;
          rolled_back = true;  // restart from a fresh epoch at the snapshot
        }
        result.phases.guard_s += secs_between(t_guard, SteadyClock::now());
        break;
      }
      result.phases.guard_s += secs_between(t_guard, SteadyClock::now());

      const auto t_opt = SteadyClock::now();
      {
        runtime::trace::Span span("optim.step", "optim");
        optimizer->step(model.params(), model.grads(), step, device);
      }
      result.phases.optimizer_s += secs_between(t_opt, SteadyClock::now());
      runtime::trace::counter_add("optim.steps", 1);

      if (step % options.loss_record_interval == 0 ||
          step + 1 == total_steps) {
        result.loss_curve.emplace_back(step, loss.loss);
      }
      result.final_loss = loss.loss;
      ++step;

      if (recovery_enabled && guard.snapshot_interval > 0 &&
          step % guard.snapshot_interval == 0) {
        runtime::trace::Span span("train.snapshot", "train");
        const auto t_snap = SteadyClock::now();
        snapshot = clone_params(model);
        snapshot_step = step;
        result.phases.guard_s += secs_between(t_snap, SteadyClock::now());
      }
    }
    // Data starvation (e.g. every sample of an epoch dropped by an
    // injected fault): give up instead of spinning on empty epochs.
    if (step == step_at_epoch_start && !rolled_back && !aborted) {
      if (result.divergence_step < 0) result.divergence_step = step;
      result.diverged = true;
      break;
    }
  }

  result.train_time_s = clock.seconds();
  result.steps = step;
  result.epochs_run = static_cast<double>(step) /
                      static_cast<double>(steps_per_epoch);
  // Chance-level mean cross-entropy for C classes is ln(C); a run that
  // never gets meaningfully below it did not converge (paper Fig. 5).
  // A run that exhausted recovery is a failure regardless of the last
  // loss it managed to record.
  const double chance_loss =
      std::log(static_cast<double>(train_set.num_classes));
  result.converged = step > 0 && !result.diverged &&
                     std::isfinite(result.final_loss) &&
                     result.final_loss < 0.95 * chance_loss;
  return result;
}

EvalResult Framework::evaluate(nn::Sequential& model,
                               const data::Dataset& test_set,
                               const Device& device) const {
  DLB_CHECK(test_set.size() > 0, "empty test set");
  nn::Context ctx;
  ctx.device = device;
  ctx.training = false;

  util::Rng unused(0);
  data::DataLoader loader(test_set, eval_batch_size(), /*shuffle=*/false,
                          unused);

  EvalResult result;
  runtime::Stopwatch clock;
  data::Batch batch;
  while (loader.next(batch)) {
    runtime::trace::Span span("eval.batch", "eval");
    const auto predictions = model.predict(batch.images, ctx);
    for (std::size_t i = 0; i < predictions.size(); ++i)
      if (predictions[i] == batch.labels[i]) ++result.correct;
    result.total += batch.size();
  }
  result.test_time_s = clock.seconds();
  // total can be 0 under an injected 100% sample-drop fault; report 0%
  // rather than a NaN that would poison downstream tables.
  result.accuracy_pct = result.total > 0
                            ? 100.0 * static_cast<double>(result.correct) /
                                  static_cast<double>(result.total)
                            : 0.0;
  return result;
}

}  // namespace dlbench::frameworks
