#pragma once

// The default-configuration registry: Tables I–V of the paper as data.
//
// Every experiment in the paper is a cross-product over this registry —
// "framework F trains dataset D using the default setting S(F', D')".
// default_training_config and default_network_spec return the setting
// that framework F' ships for dataset D'; the Framework object applies
// its own execution model and regularizer on top.

#include "frameworks/config.hpp"
#include "nn/network_spec.hpp"

namespace dlbench::frameworks {

/// Table II/III rows: the training hyperparameters framework `kind`
/// ships for dataset `dataset`.
TrainingConfig default_training_config(FrameworkKind kind, DatasetId dataset);

/// Table IV/V rows: the network structure framework `kind` ships for
/// dataset `dataset` (without the framework-injected regularizer).
nn::NetworkSpec default_network_spec(FrameworkKind kind, DatasetId dataset);

/// Table I row for framework `kind`.
FrameworkInfo framework_info(FrameworkKind kind);

/// All frameworks / datasets, in paper order.
inline constexpr FrameworkKind kAllFrameworks[] = {
    FrameworkKind::kTensorFlow, FrameworkKind::kCaffe, FrameworkKind::kTorch};
inline constexpr DatasetId kAllDatasets[] = {DatasetId::kMnist,
                                             DatasetId::kCifar10};

}  // namespace dlbench::frameworks
