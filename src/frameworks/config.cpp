#include "frameworks/config.hpp"

namespace dlbench::frameworks {

const char* to_string(FrameworkKind kind) {
  switch (kind) {
    case FrameworkKind::kTensorFlow: return "TensorFlow";
    case FrameworkKind::kCaffe: return "Caffe";
    case FrameworkKind::kTorch: return "Torch";
  }
  return "unknown";
}

const char* to_string(DatasetId id) {
  switch (id) {
    case DatasetId::kMnist: return "MNIST";
    case DatasetId::kCifar10: return "CIFAR-10";
  }
  return "unknown";
}

const char* to_string(OptimizerAlgo algo) {
  switch (algo) {
    case OptimizerAlgo::kSgd: return "SGD";
    case OptimizerAlgo::kAdam: return "Adam";
  }
  return "unknown";
}

const char* to_string(Regularizer reg) {
  switch (reg) {
    case Regularizer::kNone: return "none";
    case Regularizer::kDropout: return "drop out";
    case Regularizer::kWeightDecay: return "weight decay";
  }
  return "unknown";
}

}  // namespace dlbench::frameworks
