#pragma once

// The three concrete framework emulations. See DESIGN.md §2 for the
// substitution rationale; each class header documents which published
// behaviours it reproduces.

#include "frameworks/framework.hpp"

namespace dlbench::frameworks {

/// TensorFlow 1.3 emulation: graph-compiled session (a dry-run trace
/// before step 0), GEMM convolutions, dropout(0.5) injected before the
/// classifier layer — TF's regularizer in the paper's Table IX.
class TfLikeFramework final : public Framework {
 public:
  FrameworkKind kind() const override { return FrameworkKind::kTensorFlow; }
  Regularizer regularizer() const override { return Regularizer::kDropout; }

  nn::Sequential build_model(const nn::NetworkSpec& spec, const Device& device,
                             util::Rng& rng) const override;
  std::unique_ptr<optim::Optimizer> make_optimizer(
      const TrainingConfig& config, std::int64_t steps_per_epoch,
      std::int64_t total_steps) const override;
  void prepare(nn::Sequential& model, const tensor::Tensor& sample,
               const nn::Context& ctx) const override;
  std::int64_t eval_batch_size() const override { return 100; }
};

/// Caffe 1.0 emulation: layer-wise solver, GEMM convolutions, L2
/// weight decay (0.0005) applied through the solver — Caffe's
/// regularizer in the paper's Table IX.
class CaffeLikeFramework final : public Framework {
 public:
  static constexpr double kWeightDecay = 0.0005;

  FrameworkKind kind() const override { return FrameworkKind::kCaffe; }
  Regularizer regularizer() const override {
    return Regularizer::kWeightDecay;
  }

  nn::Sequential build_model(const nn::NetworkSpec& spec, const Device& device,
                             util::Rng& rng) const override;
  std::unique_ptr<optim::Optimizer> make_optimizer(
      const TrainingConfig& config, std::int64_t steps_per_epoch,
      std::int64_t total_steps) const override;
  std::int64_t eval_batch_size() const override { return 100; }
};

/// Torch7 emulation: eager module dispatch, direct convolution on the
/// CPU device (SpatialConvolutionMap) and GEMM convolution on the GPU
/// device (SpatialConvolutionMM) — the implementation split the paper
/// uses to explain Torch's CPU/GPU accuracy flip — and sample-by-sample
/// evaluation, which drives its long testing times.
class TorchLikeFramework final : public Framework {
 public:
  FrameworkKind kind() const override { return FrameworkKind::kTorch; }
  Regularizer regularizer() const override { return Regularizer::kNone; }

  nn::Sequential build_model(const nn::NetworkSpec& spec, const Device& device,
                             util::Rng& rng) const override;
  std::unique_ptr<optim::Optimizer> make_optimizer(
      const TrainingConfig& config, std::int64_t steps_per_epoch,
      std::int64_t total_steps) const override;
  std::int64_t eval_batch_size() const override { return 1; }
};

}  // namespace dlbench::frameworks
