#include "frameworks/emulations.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dlbench::frameworks {

namespace {

/// Converts a setting's epoch-based lr phases into a step-based
/// schedule. Phase boundaries keep their *relative* position when the
/// harness scales epochs down (Caffe's 8+2 split stays 80%/20%).
optim::LrSchedule schedule_from(const TrainingConfig& config,
                                std::int64_t total_steps) {
  if (config.lr_phases.empty()) return optim::LrSchedule(config.base_lr);
  std::vector<std::int64_t> boundaries;
  std::vector<double> rates;
  for (const auto& [epoch_boundary, rate] : config.lr_phases) {
    const double frac = epoch_boundary / config.epochs;
    boundaries.push_back(static_cast<std::int64_t>(
        std::round(frac * static_cast<double>(total_steps))));
    rates.push_back(rate);
  }
  return optim::LrSchedule(config.base_lr, std::move(boundaries),
                           std::move(rates));
}

// `momentum` is the *framework's* solver policy, not the setting's:
// Table II/III list only algorithm, lr, batch and iterations, so when a
// setting crosses frameworks it meets the host framework's solver
// defaults. Caffe's solver template always applies momentum 0.9 — which
// is why TF's CIFAR-10 setting (lr 0.1, tuned for momentum-free SGD)
// blows up inside Caffe (paper Table VIIc: 10.10%).
std::unique_ptr<optim::Optimizer> build_optimizer(const TrainingConfig& config,
                                                  std::int64_t total_steps,
                                                  double momentum,
                                                  double weight_decay) {
  optim::LrSchedule schedule = schedule_from(config, total_steps);
  if (config.algo == OptimizerAlgo::kAdam)
    return std::make_unique<optim::Adam>(std::move(schedule), 0.9, 0.999,
                                         1e-8, weight_decay);
  return std::make_unique<optim::Sgd>(std::move(schedule), momentum,
                                      weight_decay);
}

}  // namespace

// ---- TensorFlow-like ----

nn::Sequential TfLikeFramework::build_model(const nn::NetworkSpec& spec,
                                            const Device&,
                                            util::Rng& rng) const {
  // Inject dropout(0.5) before the classifier fc — TF's regularizer.
  nn::NetworkSpec with_dropout = spec;
  for (auto it = with_dropout.ops.rbegin(); it != with_dropout.ops.rend();
       ++it) {
    if (it->kind == nn::LayerSpec::Kind::kLinear) {
      with_dropout.ops.insert(it.base() - 1, nn::LayerSpec::dropout(0.5f));
      break;
    }
  }
  return nn::build_model(with_dropout, rng, nn::ConvImpl::kGemm);
}

std::unique_ptr<optim::Optimizer> TfLikeFramework::make_optimizer(
    const TrainingConfig& config, std::int64_t /*steps_per_epoch*/,
    std::int64_t total_steps) const {
  // TF tutorials use plain GradientDescent (or Adam where the setting
  // says so) and regularize via dropout, not the solver.
  return build_optimizer(config, total_steps, /*momentum=*/0.0,
                         /*weight_decay=*/0.0);
}

void TfLikeFramework::prepare(nn::Sequential& model,
                              const tensor::Tensor& sample,
                              const nn::Context& ctx) const {
  // Graph compilation: trace the network once to fix shapes and
  // allocation plans before step 0 (a real TF session does this on
  // first run). The dry-run executes in inference mode so dropout masks
  // and cached activations from it cannot leak into training.
  nn::Context trace_ctx = ctx;
  trace_ctx.training = false;
  (void)model.forward(sample, trace_ctx);
}

// ---- Caffe-like ----

nn::Sequential CaffeLikeFramework::build_model(const nn::NetworkSpec& spec,
                                               const Device&,
                                               util::Rng& rng) const {
  return nn::build_model(spec, rng, nn::ConvImpl::kGemm);
}

std::unique_ptr<optim::Optimizer> CaffeLikeFramework::make_optimizer(
    const TrainingConfig& config, std::int64_t /*steps_per_epoch*/,
    std::int64_t total_steps) const {
  // Caffe's solver prototxts ship momentum 0.9 + weight decay; both
  // apply no matter whose hyperparameters it is asked to run.
  return build_optimizer(config, total_steps, /*momentum=*/0.9, kWeightDecay);
}

// ---- Torch-like ----

nn::Sequential TorchLikeFramework::build_model(const nn::NetworkSpec& spec,
                                               const Device& device,
                                               util::Rng& rng) const {
  const nn::ConvImpl impl =
      device.is_parallel() ? nn::ConvImpl::kGemm : nn::ConvImpl::kDirect;
  return nn::build_model(spec, rng, impl);
}

std::unique_ptr<optim::Optimizer> TorchLikeFramework::make_optimizer(
    const TrainingConfig& config, std::int64_t /*steps_per_epoch*/,
    std::int64_t total_steps) const {
  // Torch demos call optim.sgd with no momentum and no weight decay.
  return build_optimizer(config, total_steps, /*momentum=*/0.0,
                         /*weight_decay=*/0.0);
}

// ---- factory ----

std::unique_ptr<Framework> make_framework(FrameworkKind kind) {
  switch (kind) {
    case FrameworkKind::kTensorFlow:
      return std::make_unique<TfLikeFramework>();
    case FrameworkKind::kCaffe:
      return std::make_unique<CaffeLikeFramework>();
    case FrameworkKind::kTorch:
      return std::make_unique<TorchLikeFramework>();
  }
  DLB_CHECK(false, "unknown framework kind");
  return nullptr;  // unreachable
}

}  // namespace dlbench::frameworks
