#pragma once

// Predictor construction: FrameworkConfig → frozen serving model.
//
// The serving layer (src/serve) is framework-agnostic: it batches
// requests against any FrozenModel. This file is the bridge from the
// paper's configuration space to that interface — it materializes the
// default network a framework ships for a dataset exactly the way the
// framework emulation would (conv kernel selection, injected
// regularizer), optionally restores trained parameters from a
// checkpoint, and freezes the result for concurrent inference.

#include <string>

#include "frameworks/config.hpp"
#include "nn/frozen.hpp"
#include "runtime/device.hpp"
#include "tensor/shape.hpp"

namespace dlbench::frameworks {

/// Everything needed to stand up a serving replica set.
struct PredictorConfig {
  FrameworkKind framework = FrameworkKind::kTensorFlow;
  DatasetId dataset = DatasetId::kMnist;
  /// Device the predictor will run on. Affects model *construction*
  /// too: the Torch emulation picks its direct conv kernel on the CPU
  /// device and the GEMM kernel on the parallel device.
  runtime::Device device = runtime::Device::cpu();
  /// Weight-init seed, so untrained predictors are reproducible.
  std::uint64_t seed = 1234;
  /// Checkpoint to restore (must match the default network's
  /// architecture); "" serves freshly initialized weights.
  std::string checkpoint_path;
};

/// Builds framework `config.framework`'s default network for
/// `config.dataset` (with the framework's conv choice and regularizer),
/// restores `config.checkpoint_path` if given, and freezes it.
nn::FrozenModel make_predictor(const PredictorConfig& config);

/// Freezes an already-trained model (e.g. Harness::train_model output).
nn::FrozenModel freeze_for_serving(const nn::Sequential& model);

/// Shape of one serving request sample for `dataset`: [C, H, W].
tensor::Shape sample_shape(DatasetId dataset);

}  // namespace dlbench::frameworks
