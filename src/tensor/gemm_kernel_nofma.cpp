// Portable kMulAdd micro-kernel (gemm_kernel.hpp). This translation
// unit is compiled with -ffp-contract=off: the whole point of the
// kMulAdd rounding contract is that the product is rounded before the
// add, and the default contraction mode would silently fuse
// `acc += av * b[j]` back into one fma, collapsing the two kernels
// into the same bits on some compilers and not others.

#include <cstring>

#include "tensor/gemm_kernel.hpp"
#include "tensor/pack.hpp"

namespace dlbench::tensor::detail {

void micro_kernel_scalar_muladd(const float* a_panel, const float* b_panel,
                                std::int64_t k, float* out, std::int64_t ldo,
                                GemmEpilogue epilogue, const float* bias_row,
                                const float* bias_col) {
  float acc[kGemmMR][kGemmNR];
  if (epilogue == GemmEpilogue::kBiasRowInit ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    for (std::int64_t r = 0; r < kGemmMR; ++r)
      for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] = bias_row[r];
  } else {
    std::memset(acc, 0, sizeof(acc));
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* a = a_panel + kk * kGemmMR;
    const float* b = b_panel + kk * kGemmNR;
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      const float av = a[r];
      for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] += av * b[j];
    }
  }
  if (epilogue == GemmEpilogue::kBiasColAdd ||
      epilogue == GemmEpilogue::kBiasColRelu) {
    for (std::int64_t r = 0; r < kGemmMR; ++r)
      for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] += bias_col[j];
  }
  if (epilogue == GemmEpilogue::kBiasColRelu ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    for (std::int64_t r = 0; r < kGemmMR; ++r)
      for (std::int64_t j = 0; j < kGemmNR; ++j)
        acc[r][j] = acc[r][j] > 0.f ? acc[r][j] : 0.f;
  }
  for (std::int64_t r = 0; r < kGemmMR; ++r)
    std::memcpy(out + r * ldo, acc[r],
                static_cast<std::size_t>(kGemmNR) * sizeof(float));
}

}  // namespace dlbench::tensor::detail
