#pragma once

// Elementwise / reduction kernels. Every kernel takes a Device and
// parallelizes on the "GPU" device via Device::parallel_for, so CPU/GPU
// runs exercise identical numerics with different execution models.

#include <cstdint>
#include <vector>

#include "runtime/device.hpp"
#include "tensor/tensor.hpp"

namespace dlbench::tensor {

using runtime::Device;

// ---- elementwise (out-of-place unless noted) ----

/// out = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b, const Device& dev);
/// out = a - b (same shape).
Tensor sub(const Tensor& a, const Tensor& b, const Device& dev);
/// out = a * b, elementwise (same shape).
Tensor mul(const Tensor& a, const Tensor& b, const Device& dev);
/// out = a * s.
Tensor scale(const Tensor& a, float s, const Device& dev);

/// a += b, in place.
void add_inplace(Tensor& a, const Tensor& b, const Device& dev);
/// a += s * b, in place (axpy).
void axpy_inplace(Tensor& a, float s, const Tensor& b, const Device& dev);
/// a *= s, in place.
void scale_inplace(Tensor& a, float s, const Device& dev);

/// ReLU forward: out = max(x, 0).
Tensor relu(const Tensor& x, const Device& dev);
/// ReLU backward: dx = dy * (x > 0).
Tensor relu_backward(const Tensor& x, const Tensor& dy, const Device& dev);

/// Tanh forward.
Tensor tanh_op(const Tensor& x, const Device& dev);
/// Tanh backward given the *output* y: dx = dy * (1 - y^2).
Tensor tanh_backward(const Tensor& y, const Tensor& dy, const Device& dev);

/// sign() as used by FGSM: +1 / 0 / -1 per element.
Tensor sign(const Tensor& x, const Device& dev);

/// Clamps every element to [lo, hi].
Tensor clamp(const Tensor& x, float lo, float hi, const Device& dev);

// ---- reductions / rows ----

/// Sum of all elements.
double sum(const Tensor& x);
/// Mean of all elements (0 for empty).
double mean_of(const Tensor& x);
/// Index of the max element in row `r` of a [N, M] tensor.
std::int64_t argmax_row(const Tensor& x, std::int64_t r);
/// Argmax per row of a [N, M] tensor.
std::vector<std::int64_t> argmax_rows(const Tensor& x);

// ---- softmax / losses ----

/// Row-wise softmax of a [N, C] tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits, const Device& dev);

/// Mean cross-entropy of row-softmax probabilities vs integer labels.
double cross_entropy_mean(const Tensor& probs,
                          const std::vector<std::int64_t>& labels);

/// Gradient of mean cross-entropy w.r.t. logits given softmax output:
/// d = (probs - onehot(labels)) / N.
Tensor softmax_cross_entropy_backward(const Tensor& probs,
                                      const std::vector<std::int64_t>& labels,
                                      const Device& dev);

}  // namespace dlbench::tensor
