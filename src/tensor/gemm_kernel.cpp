#include "tensor/gemm_kernel.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "runtime/trace.hpp"
#include "tensor/pack.hpp"
#include "util/error.hpp"

namespace dlbench::tensor {

using runtime::Device;

namespace detail {

void micro_kernel_scalar(const float* a_panel, const float* b_panel,
                         std::int64_t k, float* out, std::int64_t ldo,
                         GemmEpilogue epilogue, const float* bias_row,
                         const float* bias_col) {
  float acc[kGemmMR][kGemmNR];
  if (epilogue == GemmEpilogue::kBiasRowInit ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    for (std::int64_t r = 0; r < kGemmMR; ++r)
      for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] = bias_row[r];
  } else {
    std::memset(acc, 0, sizeof(acc));
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* a = a_panel + kk * kGemmMR;
    const float* b = b_panel + kk * kGemmNR;
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      const float av = a[r];
      for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] += av * b[j];
    }
  }
  if (epilogue == GemmEpilogue::kBiasColAdd ||
      epilogue == GemmEpilogue::kBiasColRelu) {
    for (std::int64_t r = 0; r < kGemmMR; ++r)
      for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] += bias_col[j];
  }
  if (epilogue == GemmEpilogue::kBiasColRelu ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    for (std::int64_t r = 0; r < kGemmMR; ++r)
      for (std::int64_t j = 0; j < kGemmNR; ++j)
        acc[r][j] = acc[r][j] > 0.f ? acc[r][j] : 0.f;
  }
  for (std::int64_t r = 0; r < kGemmMR; ++r)
    std::memcpy(out + r * ldo, acc[r],
                static_cast<std::size_t>(kGemmNR) * sizeof(float));
}

namespace {

// The single-panel kernel for the active tier, plus (when the tier has
// one) a double-panel kernel the driver prefers for full interior
// tiles. x2 is a pure throughput optimization — bitwise identical to
// two single-panel calls — so only the hot kFma path carries one.
struct SelectedKernels {
  MicroKernelFn single;
  MicroKernelFn x2;    // MR x 2*NR; nullptr when the tier has none
  MicroKernelFn quad;  // 2*MR x 2*NR; nullptr when the tier has none
};

SelectedKernels select_micro_kernel(GemmMath math) {
  const runtime::SimdLevel level = runtime::active_simd_level();
#if defined(DLB_HAVE_AVX512_BUILD)
  if (level == runtime::SimdLevel::kAvx512F) {
    return math == GemmMath::kFma
               ? SelectedKernels{micro_kernel_avx512, micro_kernel_avx512_x2,
                                 micro_kernel_avx512_2x2}
               : SelectedKernels{micro_kernel_avx512_muladd, nullptr, nullptr};
  }
#endif
#if defined(DLB_HAVE_AVX2_BUILD)
  if (level == runtime::SimdLevel::kAvx2Fma) {
    return math == GemmMath::kFma
               ? SelectedKernels{micro_kernel_avx2fma, nullptr, nullptr}
               : SelectedKernels{micro_kernel_avx2_muladd, nullptr, nullptr};
  }
#endif
  (void)level;
  return math == GemmMath::kFma
             ? SelectedKernels{micro_kernel_scalar, nullptr, nullptr}
             : SelectedKernels{micro_kernel_scalar_muladd, nullptr, nullptr};
}

}  // namespace
}  // namespace detail

bool gemm_packed_active() {
  return runtime::active_simd_level() != runtime::SimdLevel::kScalar;
}

namespace {

// Column macro-block width, in NR panels: a packed-B block of
// kMacroColPanels panels is revisited by every row panel of a thread's
// chunk before the next block streams in, bounding the B working set
// (K * 512 floats) to L2/L3 instead of the whole matrix.
constexpr std::int64_t kMacroColPanels = 32;

}  // namespace

void gemm_packed(const float* a, std::int64_t a_rs, std::int64_t a_cs,
                 const float* b, std::int64_t b_rs, std::int64_t b_cs,
                 float* c, std::int64_t m, std::int64_t k, std::int64_t n,
                 GemmEpilogue epilogue, const float* bias,
                 const Device& dev, GemmMath math) {
  DLB_CHECK(m > 0 && k > 0 && n > 0, "gemm_packed: empty dimensions");
  // No trace span here: every caller (matmul*, conv2d_forward) already
  // opens a kernel-category span, and a nested one would double-count
  // the category total (see TraceTest.KernelSpansRecordedFromMatmul).

  const std::int64_t n_mp = gemm_row_panels(m);
  const std::int64_t n_np = gemm_col_panels(n);

  // Grow-only scratch per calling thread: the training loop calls this
  // thousands of times from one thread, and serve replicas each get
  // their own buffers.
  thread_local std::vector<float> pa, pb;
  const std::size_t a_need = static_cast<std::size_t>(n_mp * kGemmMR * k);
  const std::size_t b_need = static_cast<std::size_t>(n_np * kGemmNR * k);
  if (pa.size() < a_need) pa.resize(a_need);
  if (pb.size() < b_need) pb.resize(b_need);
  pack_a_panels(a, a_rs, a_cs, m, k, pa.data(), dev);
  pack_b_panels(b, b_rs, b_cs, k, n, pb.data(), dev);

  const detail::SelectedKernels kernels = detail::select_micro_kernel(math);
  const detail::MicroKernelFn micro = kernels.single;
  const detail::MicroKernelFn micro_x2 = kernels.x2;
  const detail::MicroKernelFn micro_2x2 = kernels.quad;
  const float* pa_data = pa.data();
  const float* pb_data = pb.data();

  const bool row_bias = epilogue == GemmEpilogue::kBiasRowInit ||
                        epilogue == GemmEpilogue::kBiasRowRelu;
  const bool col_bias = epilogue == GemmEpilogue::kBiasColAdd ||
                        epilogue == GemmEpilogue::kBiasColRelu;

  // Macro-tile loop: threads split the row panels; every C tile is
  // computed whole by one thread (see determinism contract in the
  // header).
  dev.parallel_for(
      static_cast<std::size_t>(n_mp),
      [&](std::size_t lo, std::size_t hi) {
        float tmp[kGemmMR * kGemmNR];
        float bias_row_pad[kGemmMR];
        float bias_col_pad[kGemmNR];
        for (std::int64_t np0 = 0; np0 < n_np; np0 += kMacroColPanels) {
          const std::int64_t np1 = std::min(n_np, np0 + kMacroColPanels);
          for (std::size_t mp = lo; mp < hi;) {
            const std::int64_t m0 = static_cast<std::int64_t>(mp) * kGemmMR;
            const std::int64_t mr = std::min(kGemmMR, m - m0);
            const float* a_panel =
                pa_data + static_cast<std::int64_t>(mp) * k * kGemmMR;
            // Full interior pair of row panels: the quad kernel (when
            // the tier has one) covers both against each streamed-in B
            // panel pair, halving packed-B re-reads. Like column
            // pairing, this only regroups whole tiles — per-element
            // accumulation chains are untouched — so it is bitwise
            // neutral, even though chunk boundaries make the pairing
            // itself depend on the thread count.
            if (micro_2x2 != nullptr && mp + 2 <= hi &&
                m0 + 2 * kGemmMR <= m) {
              const float* brow2 = row_bias ? bias + m0 : nullptr;
              std::int64_t np = np0;
              for (; np + 2 <= np1 && (np + 2) * kGemmNR <= n; np += 2) {
                micro_2x2(a_panel, pb_data + np * k * kGemmNR, k,
                          c + m0 * n + np * kGemmNR, n, epilogue, brow2,
                          col_bias ? bias + np * kGemmNR : nullptr);
              }
              // Leftover column panel (or edge): two single-panel
              // calls, one per row panel.
              for (; np < np1; ++np) {
                const std::int64_t n0 = np * kGemmNR;
                const std::int64_t nr = std::min(kGemmNR, n - n0);
                const float* b_panel = pb_data + np * k * kGemmNR;
                const float* bcol = nullptr;
                if (col_bias) {
                  if (nr == kGemmNR) {
                    bcol = bias + n0;
                  } else {
                    for (std::int64_t j = 0; j < kGemmNR; ++j)
                      bias_col_pad[j] = j < nr ? bias[n0 + j] : 0.f;
                    bcol = bias_col_pad;
                  }
                }
                for (int half = 0; half < 2; ++half) {
                  const float* ap = a_panel + half * k * kGemmMR;
                  const std::int64_t hm0 = m0 + half * kGemmMR;
                  const float* hb = row_bias ? bias + hm0 : nullptr;
                  if (nr == kGemmNR) {
                    micro(ap, b_panel, k, c + hm0 * n + n0, n, epilogue, hb,
                          bcol);
                  } else {
                    micro(ap, b_panel, k, tmp, kGemmNR, epilogue, hb, bcol);
                    for (std::int64_t r = 0; r < kGemmMR; ++r)
                      std::memcpy(c + (hm0 + r) * n + n0, tmp + r * kGemmNR,
                                  static_cast<std::size_t>(nr) *
                                      sizeof(float));
                  }
                }
              }
              mp += 2;
              continue;
            }
            const float* brow = nullptr;
            if (row_bias) {
              if (mr == kGemmMR) {
                brow = bias + m0;
              } else {
                for (std::int64_t r = 0; r < kGemmMR; ++r)
                  bias_row_pad[r] = r < mr ? bias[m0 + r] : 0.f;
                brow = bias_row_pad;
              }
            }
            for (std::int64_t np = np0; np < np1;) {
              const std::int64_t n0 = np * kGemmNR;
              // Full interior pair of column panels: take the
              // double-panel kernel when the tier has one. Bitwise
              // identical to two single-panel calls (see the x2
              // declaration in gemm_kernel.hpp), so pairing — which
              // shifts with the macro-block edge but never with the
              // thread count — does not affect determinism.
              if (micro_x2 != nullptr && mr == kGemmMR && np + 2 <= np1 &&
                  n0 + 2 * kGemmNR <= n) {
                micro_x2(a_panel, pb_data + np * k * kGemmNR, k,
                         c + m0 * n + n0, n, epilogue, brow,
                         col_bias ? bias + n0 : nullptr);
                np += 2;
                continue;
              }
              const std::int64_t nr = std::min(kGemmNR, n - n0);
              const float* b_panel = pb_data + np * k * kGemmNR;
              const float* bcol = nullptr;
              if (col_bias) {
                if (nr == kGemmNR) {
                  bcol = bias + n0;
                } else {
                  for (std::int64_t j = 0; j < kGemmNR; ++j)
                    bias_col_pad[j] = j < nr ? bias[n0 + j] : 0.f;
                  bcol = bias_col_pad;
                }
              }
              if (mr == kGemmMR && nr == kGemmNR) {
                micro(a_panel, b_panel, k, c + m0 * n + n0, n, epilogue,
                      brow, bcol);
              } else {
                micro(a_panel, b_panel, k, tmp, kGemmNR, epilogue, brow,
                      bcol);
                for (std::int64_t r = 0; r < mr; ++r)
                  std::memcpy(c + (m0 + r) * n + n0, tmp + r * kGemmNR,
                              static_cast<std::size_t>(nr) * sizeof(float));
              }
              ++np;
            }
            ++mp;
          }
        }
      },
      1);
}

}  // namespace dlbench::tensor
