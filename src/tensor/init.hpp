#pragma once

// Weight initializers. The frameworks under study differed here too:
// Caffe's reference nets use Xavier, TF's tutorials used truncated
// normals, Torch used fan-in-scaled uniform (LeCun). The framework
// emulations pick their historical default via this enum.

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dlbench::tensor {

enum class InitKind {
  kXavierUniform,    // Caffe "xavier": U(+-sqrt(3/fan_in)) variant
  kTruncatedNormal,  // TF tutorials: N(0, 0.1) truncated at 2 sigma
  kLecunUniform,     // Torch default: U(+-1/sqrt(fan_in))
};

/// Fills `w` in place. fan_in/fan_out describe the layer geometry.
void initialize(Tensor& w, InitKind kind, std::int64_t fan_in,
                std::int64_t fan_out, util::Rng& rng);

const char* init_kind_name(InitKind kind);

}  // namespace dlbench::tensor
