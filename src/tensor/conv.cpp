#include "tensor/conv.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "runtime/trace.hpp"
#include "tensor/gemm_kernel.hpp"
#include "util/error.hpp"

namespace dlbench::tensor {

using runtime::Device;

void im2col(const float* image, const ConvGeom& g, float* columns) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  // columns is [in_c * k * k, oh * ow], row-major.
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
        const std::int64_t row = (c * g.kernel + ky) * g.kernel + kx;
        float* out_row = columns + row * ohw;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(out_row + y * ow, 0,
                        static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* in_row = image + (c * g.in_h + iy) * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kx - g.pad;
            out_row[y * ow + x] =
                (ix >= 0 && ix < g.in_w) ? in_row[ix] : 0.f;
          }
        }
      }
    }
  }
}

void col2im(const float* columns, const ConvGeom& g, float* image) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  std::memset(image, 0,
              static_cast<std::size_t>(g.in_c * g.in_h * g.in_w) *
                  sizeof(float));
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
        const std::int64_t row = (c * g.kernel + ky) * g.kernel + kx;
        const float* in_row = columns + row * ohw;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* img_row = image + (c * g.in_h + iy) * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kx - g.pad;
            if (ix >= 0 && ix < g.in_w) img_row[ix] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

namespace {

void check_conv_args(const Tensor& x, const Tensor& weight,
                     const Tensor& bias, const ConvGeom& g) {
  DLB_CHECK(x.shape().rank() == 4, "conv input must be [N, C, H, W]");
  DLB_CHECK(x.dim(1) == g.in_c && x.dim(2) == g.in_h && x.dim(3) == g.in_w,
            "conv input " << x.shape().to_string()
                          << " does not match geometry");
  DLB_CHECK(weight.shape().rank() == 2 && weight.dim(0) == g.out_c &&
                weight.dim(1) == g.patch_size(),
            "conv weight must be [out_c, in_c*k*k], got "
                << weight.shape().to_string());
  DLB_CHECK(bias.shape().rank() == 1 && bias.dim(0) == g.out_c,
            "conv bias must be [out_c]");
  DLB_CHECK(g.out_h() > 0 && g.out_w() > 0,
            "conv output is empty for input " << g.in_h << "x" << g.in_w);
}

}  // namespace

Tensor conv2d_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias, const ConvGeom& g,
                      const Device& dev) {
  runtime::trace::Span span("conv2d_fwd", "kernel");
  check_conv_args(x, weight, bias, g);
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t patch = g.patch_size();
  Tensor y({n, g.out_c, oh, ow});

  const float* px = x.raw();
  const float* pw = weight.raw();
  const float* pb = bias.raw();
  float* py = y.raw();
  const std::int64_t in_sz = g.in_c * g.in_h * g.in_w;
  const std::int64_t out_sz = g.out_c * ohw;

  // GEMM for one unfolded sample, 4-channel blocking so each column row
  // is read once per 4 output channels: out[oc, :] = W[oc, :]*columns+b.
  auto gemm_sample = [&](const float* columns, float* out, std::int64_t oc_lo,
                         std::int64_t oc_hi) {
    std::int64_t oc = oc_lo;
    for (; oc + 4 <= oc_hi; oc += 4) {
      float* o0 = out + (oc + 0) * ohw;
      float* o1 = out + (oc + 1) * ohw;
      float* o2 = out + (oc + 2) * ohw;
      float* o3 = out + (oc + 3) * ohw;
      std::fill_n(o0, ohw, pb[oc + 0]);
      std::fill_n(o1, ohw, pb[oc + 1]);
      std::fill_n(o2, ohw, pb[oc + 2]);
      std::fill_n(o3, ohw, pb[oc + 3]);
      const float* w0 = pw + (oc + 0) * patch;
      const float* w1 = pw + (oc + 1) * patch;
      const float* w2 = pw + (oc + 2) * patch;
      const float* w3 = pw + (oc + 3) * patch;
      for (std::int64_t p = 0; p < patch; ++p) {
        const float v0 = w0[p], v1 = w1[p], v2 = w2[p], v3 = w3[p];
        const float* crow = columns + p * ohw;
        for (std::int64_t j = 0; j < ohw; ++j) {
          const float cv = crow[j];
          o0[j] += v0 * cv;
          o1[j] += v1 * cv;
          o2[j] += v2 * cv;
          o3[j] += v3 * cv;
        }
      }
    }
    for (; oc < oc_hi; ++oc) {
      float* orow = out + oc * ohw;
      std::fill_n(orow, ohw, pb[oc]);
      const float* wrow = pw + oc * patch;
      for (std::int64_t p = 0; p < patch; ++p) {
        const float wv = wrow[p];
        if (wv == 0.f) continue;
        const float* crow = columns + p * ohw;
        for (std::int64_t j = 0; j < ohw; ++j) orow[j] += wv * crow[j];
      }
    }
  };

  // Packed tier: the unfolded sample is a [out_c, patch] x [patch, ohw]
  // GEMM with the per-channel bias applied in the kBiasRowInit epilogue
  // (accumulators start at bias[oc] — the same operation chain as the
  // legacy fill-then-accumulate kernel, so results are bitwise equal).
  const bool packed = gemm_packed_active();
  const Device serial = Device::cpu();

  if (n >= 4 || !dev.is_parallel()) {
    // Batch-level parallelism; each sample's GEMM runs serially inside
    // its chunk (the pool must not be re-entered from a worker).
    dev.parallel_for(
        static_cast<std::size_t>(n),
        [&](std::size_t lo, std::size_t hi) {
          std::vector<float> columns(static_cast<std::size_t>(patch * ohw));
          for (std::size_t i = lo; i < hi; ++i) {
            im2col(px + static_cast<std::int64_t>(i) * in_sz, g,
                   columns.data());
            float* out = py + static_cast<std::int64_t>(i) * out_sz;
            if (packed) {
              gemm_packed(pw, patch, 1, columns.data(), ohw, 1, out,
                          g.out_c, patch, ohw, GemmEpilogue::kBiasRowInit,
                          pb, serial);
            } else {
              gemm_sample(columns.data(), out, 0, g.out_c);
            }
          }
        },
        1);
    return y;
  }

  // Tiny batches on the parallel device: unfold serially, split the
  // GEMM across output channels (how GPU conv kernels keep SMs busy at
  // batch size 1, e.g. Torch's CIFAR-10 default). The packed kernel
  // threads over output-channel macro-tiles instead of raw rows.
  std::vector<float> columns(static_cast<std::size_t>(patch * ohw));
  for (std::int64_t i = 0; i < n; ++i) {
    im2col(px + i * in_sz, g, columns.data());
    float* out = py + i * out_sz;
    if (packed) {
      gemm_packed(pw, patch, 1, columns.data(), ohw, 1, out, g.out_c, patch,
                  ohw, GemmEpilogue::kBiasRowInit, pb, dev);
      continue;
    }
    dev.parallel_for(
        static_cast<std::size_t>(g.out_c),
        [&](std::size_t lo, std::size_t hi) {
          gemm_sample(columns.data(), out, static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(hi));
        },
        1);
  }
  return y;
}

ConvGrads conv2d_backward(const Tensor& x, const Tensor& weight,
                          const Tensor& dy, const ConvGeom& g,
                          const Device& dev) {
  runtime::trace::Span span("conv2d_bwd", "kernel");
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t patch = g.patch_size();
  DLB_CHECK(dy.shape() == Shape({n, g.out_c, oh, ow}),
            "conv dy shape " << dy.shape().to_string() << " unexpected");

  ConvGrads grads{Tensor(x.shape()), Tensor(weight.shape()),
                  Tensor({g.out_c})};
  const float* px = x.raw();
  const float* pw = weight.raw();
  const float* pdy = dy.raw();
  float* pdx = grads.dx.raw();
  const std::int64_t in_sz = g.in_c * g.in_h * g.in_w;
  const std::int64_t out_sz = g.out_c * ohw;

  // Per-chunk weight/bias partials, merged serially in chunk order after
  // the parallel region: float accumulation order is then a function of
  // the chunking alone, not of thread completion order, so an N-thread
  // run is bit-reproducible run to run.
  std::mutex reduce_mu;
  std::vector<std::pair<std::size_t, std::vector<float>>> partials;

  dev.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<float> columns(static_cast<std::size_t>(patch * ohw));
        std::vector<float> dcolumns(static_cast<std::size_t>(patch * ohw));
        std::vector<float> local_dw(static_cast<std::size_t>(g.out_c * patch),
                                    0.f);
        std::vector<float> local_db(static_cast<std::size_t>(g.out_c), 0.f);

        for (std::size_t i = lo; i < hi; ++i) {
          const float* xin = px + static_cast<std::int64_t>(i) * in_sz;
          const float* dyo = pdy + static_cast<std::int64_t>(i) * out_sz;
          im2col(xin, g, columns.data());

          // db[oc] += sum dy[oc, :]
          for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
            const float* drow = dyo + oc * ohw;
            float db_acc = 0.f;
            for (std::int64_t j = 0; j < ohw; ++j) db_acc += drow[j];
            local_db[static_cast<std::size_t>(oc)] += db_acc;
          }

          // Fused per-patch pass, 4-channel blocking:
          //   dW[oc, p]     += dy[oc, :] · columns[p, :]
          //   dcolumns[p,:] += W[oc, p] * dy[oc, :]
          for (std::int64_t p = 0; p < patch; ++p) {
            const float* crow = columns.data() + p * ohw;
            float* dcrow = dcolumns.data() + p * ohw;
            std::memset(dcrow, 0,
                        static_cast<std::size_t>(ohw) * sizeof(float));
            std::int64_t oc = 0;
            for (; oc + 4 <= g.out_c; oc += 4) {
              const float* d0 = dyo + (oc + 0) * ohw;
              const float* d1 = dyo + (oc + 1) * ohw;
              const float* d2 = dyo + (oc + 2) * ohw;
              const float* d3 = dyo + (oc + 3) * ohw;
              const float w0 = pw[(oc + 0) * patch + p];
              const float w1 = pw[(oc + 1) * patch + p];
              const float w2 = pw[(oc + 2) * patch + p];
              const float w3 = pw[(oc + 3) * patch + p];
              float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
              for (std::int64_t j = 0; j < ohw; ++j) {
                const float cv = crow[j];
                a0 += d0[j] * cv;
                a1 += d1[j] * cv;
                a2 += d2[j] * cv;
                a3 += d3[j] * cv;
                dcrow[j] += w0 * d0[j] + w1 * d1[j] + w2 * d2[j] + w3 * d3[j];
              }
              local_dw[static_cast<std::size_t>((oc + 0) * patch + p)] += a0;
              local_dw[static_cast<std::size_t>((oc + 1) * patch + p)] += a1;
              local_dw[static_cast<std::size_t>((oc + 2) * patch + p)] += a2;
              local_dw[static_cast<std::size_t>((oc + 3) * patch + p)] += a3;
            }
            for (; oc < g.out_c; ++oc) {
              const float* drow = dyo + oc * ohw;
              const float wv = pw[oc * patch + p];
              float acc = 0.f;
              for (std::int64_t j = 0; j < ohw; ++j) {
                acc += drow[j] * crow[j];
                dcrow[j] += wv * drow[j];
              }
              local_dw[static_cast<std::size_t>(oc * patch + p)] += acc;
            }
          }
          col2im(dcolumns.data(), g,
                 pdx + static_cast<std::int64_t>(i) * in_sz);
        }

        // Pack dW then db into one buffer keyed by the chunk's first
        // sample index; merged below in key order.
        local_dw.insert(local_dw.end(), local_db.begin(), local_db.end());
        std::lock_guard<std::mutex> lock(reduce_mu);
        partials.emplace_back(lo, std::move(local_dw));
      },
      1);

  std::sort(partials.begin(), partials.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  float* gw = grads.dweight.raw();
  float* gb = grads.dbias.raw();
  const std::size_t dw_size = static_cast<std::size_t>(g.out_c * patch);
  for (const auto& [lo, local] : partials) {
    for (std::size_t k = 0; k < dw_size; ++k) gw[k] += local[k];
    for (std::size_t k = 0; k < static_cast<std::size_t>(g.out_c); ++k)
      gb[k] += local[dw_size + k];
  }
  return grads;
}

}  // namespace dlbench::tensor
