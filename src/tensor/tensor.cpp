#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "runtime/trace.hpp"
#include "util/error.hpp"

namespace dlbench::tensor {

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  const auto n = static_cast<std::size_t>(shape_.numel());
  data_ = std::shared_ptr<float[]>(new float[n]());
  runtime::trace::counter_add("tensor.allocs", 1);
  runtime::trace::counter_add("tensor.bytes",
                              static_cast<std::int64_t>(n * sizeof(float)));
}

Tensor::Tensor(Shape shape, float value) : Tensor(std::move(shape)) {
  fill(value);
}

Tensor::Tensor(Shape shape, std::span<const float> values)
    : Tensor(std::move(shape)) {
  DLB_CHECK(static_cast<std::int64_t>(values.size()) == numel(),
            "value count " << values.size() << " != numel " << numel());
  std::memcpy(data_.get(), values.data(), values.size() * sizeof(float));
}

Tensor Tensor::uninit(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  const auto n = static_cast<std::size_t>(t.shape_.numel());
  t.data_ = std::shared_ptr<float[]>(new float[n]);
  runtime::trace::counter_add("tensor.allocs", 1);
  runtime::trace::counter_add("tensor.bytes",
                              static_cast<std::int64_t>(n * sizeof(float)));
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::span<float> Tensor::data() {
  return {data_.get(), static_cast<std::size_t>(numel())};
}

std::span<const float> Tensor::data() const {
  return {data_.get(), static_cast<std::size_t>(numel())};
}

float& Tensor::at(std::int64_t i) {
  DLB_CHECK(i >= 0 && i < numel(), "index " << i << " out of " << numel());
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  DLB_CHECK(i >= 0 && i < numel(), "index " << i << " out of " << numel());
  return data_[static_cast<std::size_t>(i)];
}

Tensor Tensor::clone() const {
  Tensor copy(shape_);
  if (numel() > 0)
    std::memcpy(copy.data_.get(), data_.get(),
                static_cast<std::size_t>(numel()) * sizeof(float));
  return copy;
}

Tensor Tensor::reshape(Shape new_shape) const {
  DLB_CHECK(new_shape.numel() == numel(),
            "reshape " << shape_.to_string() << " -> "
                       << new_shape.to_string() << " changes element count");
  Tensor view;
  view.shape_ = std::move(new_shape);
  view.data_ = data_;
  return view;
}

void Tensor::fill(float value) {
  std::fill_n(data_.get(), static_cast<std::size_t>(numel()), value);
}

bool Tensor::has_non_finite() const {
  for (float v : data())
    if (!std::isfinite(v)) return true;
  return false;
}

std::string Tensor::to_string() const {
  std::ostringstream os;
  os << "Tensor" << shape_.to_string() << " {";
  const std::int64_t n = numel();
  const std::int64_t show = std::min<std::int64_t>(n, 8);
  for (std::int64_t i = 0; i < show; ++i)
    os << (i ? ", " : "") << data_[static_cast<std::size_t>(i)];
  if (n > show) os << ", …";
  os << "}";
  return os.str();
}

}  // namespace dlbench::tensor
