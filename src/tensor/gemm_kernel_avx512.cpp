// AVX-512F micro-kernel for the packed GEMM (gemm_kernel.hpp).
// Compiled with -mavx512f; like the AVX2 translation units, nothing
// here may be called unless runtime dispatch selected the kAvx512F
// tier.
//
// One NR=16 panel is exactly one zmm register, so this kernel is the
// AVX2 kernel at double width: 6 zmm accumulators + 1 B vector + 1 A
// broadcast, half the loop iterations' worth of uops per flop. The
// lanes of a vector are independent C elements, and each element still
// accumulates through the same single fma chain over ascending k, so
// the result is bitwise identical to the AVX2+FMA and contracted
// scalar tiers — vector width never changes per-element rounding or
// order (DESIGN.md §11). Named accumulators, not an array — see the
// spill note in gemm_kernel_avx2.cpp.

#include <immintrin.h>

#include "tensor/gemm_kernel.hpp"
#include "tensor/pack.hpp"

namespace dlbench::tensor::detail {

static_assert(kGemmMR == 6 && kGemmNR == 16,
              "micro-kernel register blocking is hard-coded to 6x16");

void micro_kernel_avx512(const float* a_panel, const float* b_panel,
                         std::int64_t k, float* out, std::int64_t ldo,
                         GemmEpilogue epilogue, const float* bias_row,
                         const float* bias_col) {
  __m512 c0, c1, c2, c3, c4, c5;
  if (epilogue == GemmEpilogue::kBiasRowInit ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    c0 = _mm512_set1_ps(bias_row[0]);
    c1 = _mm512_set1_ps(bias_row[1]);
    c2 = _mm512_set1_ps(bias_row[2]);
    c3 = _mm512_set1_ps(bias_row[3]);
    c4 = _mm512_set1_ps(bias_row[4]);
    c5 = _mm512_set1_ps(bias_row[5]);
  } else {
    c0 = c1 = c2 = c3 = c4 = c5 = _mm512_setzero_ps();
  }

  const float* a = a_panel;
  const float* b = b_panel;
#pragma GCC unroll 4
  for (std::int64_t kk = 0; kk < k; ++kk, a += kGemmMR, b += kGemmNR) {
    const __m512 bv = _mm512_loadu_ps(b);
    c0 = _mm512_fmadd_ps(_mm512_set1_ps(a[0]), bv, c0);
    c1 = _mm512_fmadd_ps(_mm512_set1_ps(a[1]), bv, c1);
    c2 = _mm512_fmadd_ps(_mm512_set1_ps(a[2]), bv, c2);
    c3 = _mm512_fmadd_ps(_mm512_set1_ps(a[3]), bv, c3);
    c4 = _mm512_fmadd_ps(_mm512_set1_ps(a[4]), bv, c4);
    c5 = _mm512_fmadd_ps(_mm512_set1_ps(a[5]), bv, c5);
  }

  if (epilogue == GemmEpilogue::kBiasColAdd ||
      epilogue == GemmEpilogue::kBiasColRelu) {
    const __m512 bias = _mm512_loadu_ps(bias_col);
    c0 = _mm512_add_ps(c0, bias);
    c1 = _mm512_add_ps(c1, bias);
    c2 = _mm512_add_ps(c2, bias);
    c3 = _mm512_add_ps(c3, bias);
    c4 = _mm512_add_ps(c4, bias);
    c5 = _mm512_add_ps(c5, bias);
  }
  if (epilogue == GemmEpilogue::kBiasColRelu ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    const __m512 zero = _mm512_setzero_ps();
    c0 = _mm512_max_ps(c0, zero);
    c1 = _mm512_max_ps(c1, zero);
    c2 = _mm512_max_ps(c2, zero);
    c3 = _mm512_max_ps(c3, zero);
    c4 = _mm512_max_ps(c4, zero);
    c5 = _mm512_max_ps(c5, zero);
  }

  _mm512_storeu_ps(out + 0 * ldo, c0);
  _mm512_storeu_ps(out + 1 * ldo, c1);
  _mm512_storeu_ps(out + 2 * ldo, c2);
  _mm512_storeu_ps(out + 3 * ldo, c3);
  _mm512_storeu_ps(out + 4 * ldo, c4);
  _mm512_storeu_ps(out + 5 * ldo, c5);
}

// 6 x 32 variant: two adjacent B panels per call. The single-panel
// kernel above has only 6 accumulator chains against a 4-cycle fmadd
// latency, so its K loop is latency-bound near 100 GFLOP/s on this
// class of core; 12 chains (15 zmm live: 12 accumulators + 2 B vectors
// + 1 broadcast) make it throughput-bound instead. Each broadcast of
// A(r, k) feeds both column panels, so the load-port pressure stays at
// 8 loads per iteration.
void micro_kernel_avx512_x2(const float* a_panel, const float* b_panels,
                            std::int64_t k, float* out, std::int64_t ldo,
                            GemmEpilogue epilogue, const float* bias_row,
                            const float* bias_col) {
  __m512 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
  if (epilogue == GemmEpilogue::kBiasRowInit ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    c00 = c01 = _mm512_set1_ps(bias_row[0]);
    c10 = c11 = _mm512_set1_ps(bias_row[1]);
    c20 = c21 = _mm512_set1_ps(bias_row[2]);
    c30 = c31 = _mm512_set1_ps(bias_row[3]);
    c40 = c41 = _mm512_set1_ps(bias_row[4]);
    c50 = c51 = _mm512_set1_ps(bias_row[5]);
  } else {
    c00 = c01 = c10 = c11 = c20 = c21 = _mm512_setzero_ps();
    c30 = c31 = c40 = c41 = c50 = c51 = _mm512_setzero_ps();
  }

  const float* a = a_panel;
  const float* b0 = b_panels;
  const float* b1 = b_panels + k * kGemmNR;
  for (std::int64_t kk = 0; kk < k;
       ++kk, a += kGemmMR, b0 += kGemmNR, b1 += kGemmNR) {
    const __m512 bv0 = _mm512_loadu_ps(b0);
    const __m512 bv1 = _mm512_loadu_ps(b1);
    __m512 av;
    av = _mm512_set1_ps(a[0]);
    c00 = _mm512_fmadd_ps(av, bv0, c00);
    c01 = _mm512_fmadd_ps(av, bv1, c01);
    av = _mm512_set1_ps(a[1]);
    c10 = _mm512_fmadd_ps(av, bv0, c10);
    c11 = _mm512_fmadd_ps(av, bv1, c11);
    av = _mm512_set1_ps(a[2]);
    c20 = _mm512_fmadd_ps(av, bv0, c20);
    c21 = _mm512_fmadd_ps(av, bv1, c21);
    av = _mm512_set1_ps(a[3]);
    c30 = _mm512_fmadd_ps(av, bv0, c30);
    c31 = _mm512_fmadd_ps(av, bv1, c31);
    av = _mm512_set1_ps(a[4]);
    c40 = _mm512_fmadd_ps(av, bv0, c40);
    c41 = _mm512_fmadd_ps(av, bv1, c41);
    av = _mm512_set1_ps(a[5]);
    c50 = _mm512_fmadd_ps(av, bv0, c50);
    c51 = _mm512_fmadd_ps(av, bv1, c51);
  }

  if (epilogue == GemmEpilogue::kBiasColAdd ||
      epilogue == GemmEpilogue::kBiasColRelu) {
    const __m512 bias0 = _mm512_loadu_ps(bias_col);
    const __m512 bias1 = _mm512_loadu_ps(bias_col + kGemmNR);
    c00 = _mm512_add_ps(c00, bias0);
    c01 = _mm512_add_ps(c01, bias1);
    c10 = _mm512_add_ps(c10, bias0);
    c11 = _mm512_add_ps(c11, bias1);
    c20 = _mm512_add_ps(c20, bias0);
    c21 = _mm512_add_ps(c21, bias1);
    c30 = _mm512_add_ps(c30, bias0);
    c31 = _mm512_add_ps(c31, bias1);
    c40 = _mm512_add_ps(c40, bias0);
    c41 = _mm512_add_ps(c41, bias1);
    c50 = _mm512_add_ps(c50, bias0);
    c51 = _mm512_add_ps(c51, bias1);
  }
  if (epilogue == GemmEpilogue::kBiasColRelu ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    const __m512 zero = _mm512_setzero_ps();
    c00 = _mm512_max_ps(c00, zero);
    c01 = _mm512_max_ps(c01, zero);
    c10 = _mm512_max_ps(c10, zero);
    c11 = _mm512_max_ps(c11, zero);
    c20 = _mm512_max_ps(c20, zero);
    c21 = _mm512_max_ps(c21, zero);
    c30 = _mm512_max_ps(c30, zero);
    c31 = _mm512_max_ps(c31, zero);
    c40 = _mm512_max_ps(c40, zero);
    c41 = _mm512_max_ps(c41, zero);
    c50 = _mm512_max_ps(c50, zero);
    c51 = _mm512_max_ps(c51, zero);
  }

  _mm512_storeu_ps(out + 0 * ldo, c00);
  _mm512_storeu_ps(out + 0 * ldo + kGemmNR, c01);
  _mm512_storeu_ps(out + 1 * ldo, c10);
  _mm512_storeu_ps(out + 1 * ldo + kGemmNR, c11);
  _mm512_storeu_ps(out + 2 * ldo, c20);
  _mm512_storeu_ps(out + 2 * ldo + kGemmNR, c21);
  _mm512_storeu_ps(out + 3 * ldo, c30);
  _mm512_storeu_ps(out + 3 * ldo + kGemmNR, c31);
  _mm512_storeu_ps(out + 4 * ldo, c40);
  _mm512_storeu_ps(out + 4 * ldo + kGemmNR, c41);
  _mm512_storeu_ps(out + 5 * ldo, c50);
  _mm512_storeu_ps(out + 5 * ldo + kGemmNR, c51);
}

// 12 x 32 quad tile: two row panels x two column panels. 24
// accumulators + 2 B vectors + 2 A broadcasts = 28 live zmm of the 32
// architectural registers; every packed-B load now amortizes over 12
// output rows, halving the dominant L2 stream of the macro loop (the
// packed-B block is re-read once per row panel otherwise). Still
// FMA-throughput-bound: 24 fmadds vs 14 loads per iteration.
void micro_kernel_avx512_2x2(const float* a_panels, const float* b_panels,
                             std::int64_t k, float* out, std::int64_t ldo,
                             GemmEpilogue epilogue, const float* bias_row,
                             const float* bias_col) {
  __m512 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
  __m512 d00, d01, d10, d11, d20, d21, d30, d31, d40, d41, d50, d51;
  if (epilogue == GemmEpilogue::kBiasRowInit ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    c00 = c01 = _mm512_set1_ps(bias_row[0]);
    c10 = c11 = _mm512_set1_ps(bias_row[1]);
    c20 = c21 = _mm512_set1_ps(bias_row[2]);
    c30 = c31 = _mm512_set1_ps(bias_row[3]);
    c40 = c41 = _mm512_set1_ps(bias_row[4]);
    c50 = c51 = _mm512_set1_ps(bias_row[5]);
    d00 = d01 = _mm512_set1_ps(bias_row[6]);
    d10 = d11 = _mm512_set1_ps(bias_row[7]);
    d20 = d21 = _mm512_set1_ps(bias_row[8]);
    d30 = d31 = _mm512_set1_ps(bias_row[9]);
    d40 = d41 = _mm512_set1_ps(bias_row[10]);
    d50 = d51 = _mm512_set1_ps(bias_row[11]);
  } else {
    c00 = c01 = c10 = c11 = c20 = c21 = _mm512_setzero_ps();
    c30 = c31 = c40 = c41 = c50 = c51 = _mm512_setzero_ps();
    d00 = d01 = d10 = d11 = d20 = d21 = _mm512_setzero_ps();
    d30 = d31 = d40 = d41 = d50 = d51 = _mm512_setzero_ps();
  }

  const float* a0 = a_panels;
  const float* a1 = a_panels + k * kGemmMR;
  const float* b0 = b_panels;
  const float* b1 = b_panels + k * kGemmNR;
  for (std::int64_t kk = 0; kk < k;
       ++kk, a0 += kGemmMR, a1 += kGemmMR, b0 += kGemmNR, b1 += kGemmNR) {
    const __m512 bv0 = _mm512_loadu_ps(b0);
    const __m512 bv1 = _mm512_loadu_ps(b1);
    __m512 av;
    av = _mm512_set1_ps(a0[0]);
    c00 = _mm512_fmadd_ps(av, bv0, c00);
    c01 = _mm512_fmadd_ps(av, bv1, c01);
    av = _mm512_set1_ps(a0[1]);
    c10 = _mm512_fmadd_ps(av, bv0, c10);
    c11 = _mm512_fmadd_ps(av, bv1, c11);
    av = _mm512_set1_ps(a0[2]);
    c20 = _mm512_fmadd_ps(av, bv0, c20);
    c21 = _mm512_fmadd_ps(av, bv1, c21);
    av = _mm512_set1_ps(a0[3]);
    c30 = _mm512_fmadd_ps(av, bv0, c30);
    c31 = _mm512_fmadd_ps(av, bv1, c31);
    av = _mm512_set1_ps(a0[4]);
    c40 = _mm512_fmadd_ps(av, bv0, c40);
    c41 = _mm512_fmadd_ps(av, bv1, c41);
    av = _mm512_set1_ps(a0[5]);
    c50 = _mm512_fmadd_ps(av, bv0, c50);
    c51 = _mm512_fmadd_ps(av, bv1, c51);
    av = _mm512_set1_ps(a1[0]);
    d00 = _mm512_fmadd_ps(av, bv0, d00);
    d01 = _mm512_fmadd_ps(av, bv1, d01);
    av = _mm512_set1_ps(a1[1]);
    d10 = _mm512_fmadd_ps(av, bv0, d10);
    d11 = _mm512_fmadd_ps(av, bv1, d11);
    av = _mm512_set1_ps(a1[2]);
    d20 = _mm512_fmadd_ps(av, bv0, d20);
    d21 = _mm512_fmadd_ps(av, bv1, d21);
    av = _mm512_set1_ps(a1[3]);
    d30 = _mm512_fmadd_ps(av, bv0, d30);
    d31 = _mm512_fmadd_ps(av, bv1, d31);
    av = _mm512_set1_ps(a1[4]);
    d40 = _mm512_fmadd_ps(av, bv0, d40);
    d41 = _mm512_fmadd_ps(av, bv1, d41);
    av = _mm512_set1_ps(a1[5]);
    d50 = _mm512_fmadd_ps(av, bv0, d50);
    d51 = _mm512_fmadd_ps(av, bv1, d51);
  }

  if (epilogue == GemmEpilogue::kBiasColAdd ||
      epilogue == GemmEpilogue::kBiasColRelu) {
    const __m512 bias0 = _mm512_loadu_ps(bias_col);
    const __m512 bias1 = _mm512_loadu_ps(bias_col + kGemmNR);
    c00 = _mm512_add_ps(c00, bias0);
    c01 = _mm512_add_ps(c01, bias1);
    c10 = _mm512_add_ps(c10, bias0);
    c11 = _mm512_add_ps(c11, bias1);
    c20 = _mm512_add_ps(c20, bias0);
    c21 = _mm512_add_ps(c21, bias1);
    c30 = _mm512_add_ps(c30, bias0);
    c31 = _mm512_add_ps(c31, bias1);
    c40 = _mm512_add_ps(c40, bias0);
    c41 = _mm512_add_ps(c41, bias1);
    c50 = _mm512_add_ps(c50, bias0);
    c51 = _mm512_add_ps(c51, bias1);
    d00 = _mm512_add_ps(d00, bias0);
    d01 = _mm512_add_ps(d01, bias1);
    d10 = _mm512_add_ps(d10, bias0);
    d11 = _mm512_add_ps(d11, bias1);
    d20 = _mm512_add_ps(d20, bias0);
    d21 = _mm512_add_ps(d21, bias1);
    d30 = _mm512_add_ps(d30, bias0);
    d31 = _mm512_add_ps(d31, bias1);
    d40 = _mm512_add_ps(d40, bias0);
    d41 = _mm512_add_ps(d41, bias1);
    d50 = _mm512_add_ps(d50, bias0);
    d51 = _mm512_add_ps(d51, bias1);
  }
  if (epilogue == GemmEpilogue::kBiasColRelu ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    const __m512 zero = _mm512_setzero_ps();
    c00 = _mm512_max_ps(c00, zero);
    c01 = _mm512_max_ps(c01, zero);
    c10 = _mm512_max_ps(c10, zero);
    c11 = _mm512_max_ps(c11, zero);
    c20 = _mm512_max_ps(c20, zero);
    c21 = _mm512_max_ps(c21, zero);
    c30 = _mm512_max_ps(c30, zero);
    c31 = _mm512_max_ps(c31, zero);
    c40 = _mm512_max_ps(c40, zero);
    c41 = _mm512_max_ps(c41, zero);
    c50 = _mm512_max_ps(c50, zero);
    c51 = _mm512_max_ps(c51, zero);
    d00 = _mm512_max_ps(d00, zero);
    d01 = _mm512_max_ps(d01, zero);
    d10 = _mm512_max_ps(d10, zero);
    d11 = _mm512_max_ps(d11, zero);
    d20 = _mm512_max_ps(d20, zero);
    d21 = _mm512_max_ps(d21, zero);
    d30 = _mm512_max_ps(d30, zero);
    d31 = _mm512_max_ps(d31, zero);
    d40 = _mm512_max_ps(d40, zero);
    d41 = _mm512_max_ps(d41, zero);
    d50 = _mm512_max_ps(d50, zero);
    d51 = _mm512_max_ps(d51, zero);
  }

  _mm512_storeu_ps(out + 0 * ldo, c00);
  _mm512_storeu_ps(out + 0 * ldo + kGemmNR, c01);
  _mm512_storeu_ps(out + 1 * ldo, c10);
  _mm512_storeu_ps(out + 1 * ldo + kGemmNR, c11);
  _mm512_storeu_ps(out + 2 * ldo, c20);
  _mm512_storeu_ps(out + 2 * ldo + kGemmNR, c21);
  _mm512_storeu_ps(out + 3 * ldo, c30);
  _mm512_storeu_ps(out + 3 * ldo + kGemmNR, c31);
  _mm512_storeu_ps(out + 4 * ldo, c40);
  _mm512_storeu_ps(out + 4 * ldo + kGemmNR, c41);
  _mm512_storeu_ps(out + 5 * ldo, c50);
  _mm512_storeu_ps(out + 5 * ldo + kGemmNR, c51);
  _mm512_storeu_ps(out + 6 * ldo, d00);
  _mm512_storeu_ps(out + 6 * ldo + kGemmNR, d01);
  _mm512_storeu_ps(out + 7 * ldo, d10);
  _mm512_storeu_ps(out + 7 * ldo + kGemmNR, d11);
  _mm512_storeu_ps(out + 8 * ldo, d20);
  _mm512_storeu_ps(out + 8 * ldo + kGemmNR, d21);
  _mm512_storeu_ps(out + 9 * ldo, d30);
  _mm512_storeu_ps(out + 9 * ldo + kGemmNR, d31);
  _mm512_storeu_ps(out + 10 * ldo, d40);
  _mm512_storeu_ps(out + 10 * ldo + kGemmNR, d41);
  _mm512_storeu_ps(out + 11 * ldo, d50);
  _mm512_storeu_ps(out + 11 * ldo + kGemmNR, d51);
}

}  // namespace dlbench::tensor::detail
