#pragma once

// Tensor shapes: small fixed-capacity dimension vectors.

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace dlbench::tensor {

/// A tensor shape of up to 4 dimensions (N, C, H, W at most — all nets
/// in the paper are CNNs over NCHW batches plus 2-D weight matrices).
class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);

  int rank() const { return rank_; }

  /// Dimension i; negative i counts from the back (-1 = last).
  std::int64_t dim(int i) const;
  std::int64_t operator[](int i) const { return dim(i); }

  /// Product of all dimensions (1 for rank-0).
  std::int64_t numel() const;

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 28, 28]"
  std::string to_string() const;

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace dlbench::tensor
