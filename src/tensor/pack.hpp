#pragma once

// Panel packing for the blocked GEMM micro-kernel (gemm_kernel.hpp).
//
// The micro-kernel computes an MR x NR tile of C with all accumulators
// in registers. To feed it with unit-stride streams regardless of the
// logical operand layout (N/T variants are expressed as strides), A and
// B are repacked once per GEMM call:
//
//   A (M x K)  ->  ceil(M/MR) row panels, each K x MR column-major:
//                  a_pack[p][k*MR + r] = A(p*MR + r, k)
//   B (K x N)  ->  ceil(N/NR) column panels, each K x NR row-major:
//                  b_pack[p][k*NR + j] = B(k, p*NR + j)
//
// Edge panels (M % MR, N % NR) are zero-padded to full width, so the
// micro-kernel never branches on tile size; padded lanes produce zeros
// that are simply not copied out. Packing is a pure reordering copy —
// it is deterministic and parallelizes over panels.

#include <cstdint>

#include "runtime/device.hpp"

namespace dlbench::tensor {

/// Register-block dimensions shared by the packing layout and every
/// micro-kernel implementation. MR*NR accumulators must fit the
/// architectural register file: 6 x 16 floats = 12 of 16 ymm registers
/// on AVX2, leaving room for 2 B-vectors and 1 A-broadcast.
inline constexpr std::int64_t kGemmMR = 6;
inline constexpr std::int64_t kGemmNR = 16;

inline std::int64_t gemm_row_panels(std::int64_t m) {
  return (m + kGemmMR - 1) / kGemmMR;
}
inline std::int64_t gemm_col_panels(std::int64_t n) {
  return (n + kGemmNR - 1) / kGemmNR;
}

/// Packs A(M x K), where A(m, k) = a[m*row_stride + k*col_stride], into
/// `dst` (gemm_row_panels(M) * K * MR floats). Parallel over panels.
void pack_a_panels(const float* a, std::int64_t row_stride,
                   std::int64_t col_stride, std::int64_t m, std::int64_t k,
                   float* dst, const runtime::Device& dev);

/// Packs B(K x N), where B(k, n) = b[k*row_stride + n*col_stride], into
/// `dst` (gemm_col_panels(N) * K * NR floats). Parallel over panels.
void pack_b_panels(const float* b, std::int64_t row_stride,
                   std::int64_t col_stride, std::int64_t k, std::int64_t n,
                   float* dst, const runtime::Device& dev);

}  // namespace dlbench::tensor
