#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dlbench::tensor {

namespace {

constexpr std::size_t kGrain = 4096;  // min elements per parallel chunk

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  DLB_CHECK(a.shape() == b.shape(),
            op << ": shape mismatch " << a.shape().to_string() << " vs "
               << b.shape().to_string());
}

template <typename F>
Tensor map2(const Tensor& a, const Tensor& b, const Device& dev, F f,
            const char* op) {
  check_same_shape(a, b, op);
  Tensor out(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  dev.parallel_for(
      static_cast<std::size_t>(a.numel()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
      },
      kGrain);
  return out;
}

template <typename F>
Tensor map1(const Tensor& a, const Device& dev, F f) {
  Tensor out(a.shape());
  const float* pa = a.raw();
  float* po = out.raw();
  dev.parallel_for(
      static_cast<std::size_t>(a.numel()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
      },
      kGrain);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b, const Device& dev) {
  return map2(a, b, dev, [](float x, float y) { return x + y; }, "add");
}

Tensor sub(const Tensor& a, const Tensor& b, const Device& dev) {
  return map2(a, b, dev, [](float x, float y) { return x - y; }, "sub");
}

Tensor mul(const Tensor& a, const Tensor& b, const Device& dev) {
  return map2(a, b, dev, [](float x, float y) { return x * y; }, "mul");
}

Tensor scale(const Tensor& a, float s, const Device& dev) {
  return map1(a, dev, [s](float x) { return x * s; });
}

void add_inplace(Tensor& a, const Tensor& b, const Device& dev) {
  check_same_shape(a, b, "add_inplace");
  float* pa = a.raw();
  const float* pb = b.raw();
  dev.parallel_for(
      static_cast<std::size_t>(a.numel()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) pa[i] += pb[i];
      },
      kGrain);
}

void axpy_inplace(Tensor& a, float s, const Tensor& b, const Device& dev) {
  check_same_shape(a, b, "axpy_inplace");
  float* pa = a.raw();
  const float* pb = b.raw();
  dev.parallel_for(
      static_cast<std::size_t>(a.numel()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) pa[i] += s * pb[i];
      },
      kGrain);
}

void scale_inplace(Tensor& a, float s, const Device& dev) {
  float* pa = a.raw();
  dev.parallel_for(
      static_cast<std::size_t>(a.numel()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) pa[i] *= s;
      },
      kGrain);
}

Tensor relu(const Tensor& x, const Device& dev) {
  return map1(x, dev, [](float v) { return v > 0.f ? v : 0.f; });
}

Tensor relu_backward(const Tensor& x, const Tensor& dy, const Device& dev) {
  return map2(
      x, dy, dev, [](float v, float g) { return v > 0.f ? g : 0.f; },
      "relu_backward");
}

Tensor tanh_op(const Tensor& x, const Device& dev) {
  return map1(x, dev, [](float v) { return std::tanh(v); });
}

Tensor tanh_backward(const Tensor& y, const Tensor& dy, const Device& dev) {
  return map2(
      y, dy, dev, [](float v, float g) { return g * (1.f - v * v); },
      "tanh_backward");
}

Tensor sign(const Tensor& x, const Device& dev) {
  return map1(x, dev, [](float v) {
    if (v > 0.f) return 1.f;
    if (v < 0.f) return -1.f;
    return 0.f;
  });
}

Tensor clamp(const Tensor& x, float lo, float hi, const Device& dev) {
  DLB_CHECK(lo <= hi, "clamp: lo > hi");
  return map1(x, dev, [lo, hi](float v) { return std::clamp(v, lo, hi); });
}

double sum(const Tensor& x) {
  double acc = 0.0;
  for (float v : x.data()) acc += v;
  return acc;
}

double mean_of(const Tensor& x) {
  if (x.numel() == 0) return 0.0;
  return sum(x) / static_cast<double>(x.numel());
}

std::int64_t argmax_row(const Tensor& x, std::int64_t r) {
  DLB_CHECK(x.shape().rank() == 2, "argmax_row expects rank-2 tensor");
  const std::int64_t cols = x.dim(1);
  DLB_CHECK(r >= 0 && r < x.dim(0), "row " << r << " out of " << x.dim(0));
  const float* row = x.raw() + r * cols;
  std::int64_t best = 0;
  for (std::int64_t c = 1; c < cols; ++c)
    if (row[c] > row[best]) best = c;
  return best;
}

std::vector<std::int64_t> argmax_rows(const Tensor& x) {
  DLB_CHECK(x.shape().rank() == 2, "argmax_rows expects rank-2 tensor");
  std::vector<std::int64_t> out(static_cast<std::size_t>(x.dim(0)));
  for (std::int64_t r = 0; r < x.dim(0); ++r)
    out[static_cast<std::size_t>(r)] = argmax_row(x, r);
  return out;
}

Tensor softmax_rows(const Tensor& logits, const Device& dev) {
  DLB_CHECK(logits.shape().rank() == 2, "softmax_rows expects rank-2 tensor");
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  Tensor out(logits.shape());
  const float* pin = logits.raw();
  float* pout = out.raw();
  dev.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float* row = pin + r * static_cast<std::size_t>(c);
          float* orow = pout + r * static_cast<std::size_t>(c);
          float mx = row[0];
          for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
          float denom = 0.f;
          for (std::int64_t j = 0; j < c; ++j) {
            orow[j] = std::exp(row[j] - mx);
            denom += orow[j];
          }
          const float inv = 1.f / denom;
          for (std::int64_t j = 0; j < c; ++j) orow[j] *= inv;
        }
      },
      64);
  return out;
}

double cross_entropy_mean(const Tensor& probs,
                          const std::vector<std::int64_t>& labels) {
  DLB_CHECK(probs.shape().rank() == 2, "cross_entropy expects rank-2 tensor");
  const std::int64_t n = probs.dim(0);
  const std::int64_t c = probs.dim(1);
  DLB_CHECK(static_cast<std::int64_t>(labels.size()) == n,
            "label count mismatch");
  double loss = 0.0;
  // Clamp at FLT_MIN like Caffe's SoftmaxWithLoss: a fully diverged
  // model reports loss = -log(FLT_MIN) = 87.34, the plateau visible in
  // the paper's Fig. 5.
  constexpr double kMinProb = 1.17549435e-38;
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int64_t y = labels[static_cast<std::size_t>(r)];
    DLB_CHECK(y >= 0 && y < c, "label " << y << " out of " << c << " classes");
    const double p = static_cast<double>(probs.raw()[r * c + y]);
    loss -= std::log(std::max(p, kMinProb));
  }
  return loss / static_cast<double>(n);
}

Tensor softmax_cross_entropy_backward(const Tensor& probs,
                                      const std::vector<std::int64_t>& labels,
                                      const Device& dev) {
  DLB_CHECK(probs.shape().rank() == 2, "expects rank-2 tensor");
  const std::int64_t n = probs.dim(0);
  const std::int64_t c = probs.dim(1);
  DLB_CHECK(static_cast<std::int64_t>(labels.size()) == n,
            "label count mismatch");
  Tensor grad = probs.clone();
  float* pg = grad.raw();
  const float inv_n = 1.f / static_cast<float>(n);
  dev.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          float* row = pg + r * static_cast<std::size_t>(c);
          row[labels[r]] -= 1.f;
          for (std::int64_t j = 0; j < c; ++j) row[j] *= inv_n;
        }
      },
      64);
  return grad;
}

}  // namespace dlbench::tensor
