#include "tensor/matmul.hpp"

#include <cstring>

#include "runtime/trace.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::tensor {

using runtime::Device;

namespace {

// Legacy rows-of-A parallel GEMM, 4-row register blocking so each row
// of B is read once per 4 output rows (the kernel is bandwidth-bound
// otherwise): C[m..m+3, :] += A[m..m+3, k] * B[k, :]. This is the
// scalar-tier kernel and the packed kernel's benchmark baseline.
void gemm_rows(const float* a, const float* b, float* c, std::int64_t M,
               std::int64_t K, std::int64_t N, const Device& dev) {
  dev.parallel_for(
      static_cast<std::size_t>(M),
      [&](std::size_t lo, std::size_t hi) {
        std::size_t m = lo;
        for (; m + 4 <= hi; m += 4) {
          float* c0 = c + (m + 0) * static_cast<std::size_t>(N);
          float* c1 = c + (m + 1) * static_cast<std::size_t>(N);
          float* c2 = c + (m + 2) * static_cast<std::size_t>(N);
          float* c3 = c + (m + 3) * static_cast<std::size_t>(N);
          std::memset(c0, 0, static_cast<std::size_t>(N) * sizeof(float));
          std::memset(c1, 0, static_cast<std::size_t>(N) * sizeof(float));
          std::memset(c2, 0, static_cast<std::size_t>(N) * sizeof(float));
          std::memset(c3, 0, static_cast<std::size_t>(N) * sizeof(float));
          const float* a0 = a + (m + 0) * static_cast<std::size_t>(K);
          const float* a1 = a + (m + 1) * static_cast<std::size_t>(K);
          const float* a2 = a + (m + 2) * static_cast<std::size_t>(K);
          const float* a3 = a + (m + 3) * static_cast<std::size_t>(K);
          for (std::int64_t k = 0; k < K; ++k) {
            const float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
            if (v0 == 0.f && v1 == 0.f && v2 == 0.f && v3 == 0.f) continue;
            const float* brow = b + static_cast<std::size_t>(k * N);
            for (std::int64_t n = 0; n < N; ++n) {
              const float bv = brow[n];
              c0[n] += v0 * bv;
              c1[n] += v1 * bv;
              c2[n] += v2 * bv;
              c3[n] += v3 * bv;
            }
          }
        }
        for (; m < hi; ++m) {
          float* crow = c + m * static_cast<std::size_t>(N);
          std::memset(crow, 0, static_cast<std::size_t>(N) * sizeof(float));
          const float* arow = a + m * static_cast<std::size_t>(K);
          for (std::int64_t k = 0; k < K; ++k) {
            const float av = arow[k];
            if (av == 0.f) continue;  // sparse activations are common
            const float* brow = b + static_cast<std::size_t>(k * N);
            for (std::int64_t n = 0; n < N; ++n) crow[n] += av * brow[n];
          }
        }
      },
      4);
}

void check_rank2(const Tensor& a, const Tensor& b, const char* name) {
  DLB_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2,
            name << " expects rank-2 operands");
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, const Device& dev) {
  runtime::trace::Span span("matmul", "kernel");
  check_rank2(a, b, "matmul");
  const std::int64_t M = a.dim(0), K = a.dim(1);
  DLB_CHECK(b.dim(0) == K, "matmul: inner dims " << K << " vs " << b.dim(0));
  const std::int64_t N = b.dim(1);
  Tensor c = Tensor::uninit(Shape({M, N}));  // both branches write all of C
  if (gemm_packed_active()) {
    gemm_packed(a.raw(), K, 1, b.raw(), N, 1, c.raw(), M, K, N,
                GemmEpilogue::kNone, nullptr, dev);
  } else {
    gemm_rows(a.raw(), b.raw(), c.raw(), M, K, N, dev);
  }
  return c;
}

Tensor matmul_rows_reference(const Tensor& a, const Tensor& b,
                             const Device& dev) {
  check_rank2(a, b, "matmul_rows_reference");
  const std::int64_t M = a.dim(0), K = a.dim(1);
  DLB_CHECK(b.dim(0) == K,
            "matmul_rows_reference: inner dims " << K << " vs " << b.dim(0));
  const std::int64_t N = b.dim(1);
  Tensor c({M, N});
  gemm_rows(a.raw(), b.raw(), c.raw(), M, K, N, dev);
  return c;
}

Tensor matmul_bias(const Tensor& a, const Tensor& b, const Tensor& bias,
                   const Device& dev) {
  runtime::trace::Span span("matmul_bias", "kernel");
  check_rank2(a, b, "matmul_bias");
  const std::int64_t M = a.dim(0), K = a.dim(1);
  DLB_CHECK(b.dim(0) == K,
            "matmul_bias: inner dims " << K << " vs " << b.dim(0));
  const std::int64_t N = b.dim(1);
  DLB_CHECK(bias.shape().rank() == 1 && bias.dim(0) == N,
            "matmul_bias: bias must be [N]");
  Tensor c = Tensor::uninit(Shape({M, N}));  // both branches write all of C
  if (gemm_packed_active()) {
    gemm_packed(a.raw(), K, 1, b.raw(), N, 1, c.raw(), M, K, N,
                GemmEpilogue::kBiasColAdd, bias.raw(), dev);
  } else {
    gemm_rows(a.raw(), b.raw(), c.raw(), M, K, N, dev);
    add_row_bias(c, bias, dev);
  }
  return c;
}

Tensor matmul_bias_relu(const Tensor& a, const Tensor& b, const Tensor& bias,
                        const Device& dev) {
  runtime::trace::Span span("matmul_bias_relu", "kernel");
  check_rank2(a, b, "matmul_bias_relu");
  const std::int64_t M = a.dim(0), K = a.dim(1);
  DLB_CHECK(b.dim(0) == K,
            "matmul_bias_relu: inner dims " << K << " vs " << b.dim(0));
  const std::int64_t N = b.dim(1);
  DLB_CHECK(bias.shape().rank() == 1 && bias.dim(0) == N,
            "matmul_bias_relu: bias must be [N]");
  Tensor c = Tensor::uninit(Shape({M, N}));  // both branches write all of C
  if (gemm_packed_active()) {
    gemm_packed(a.raw(), K, 1, b.raw(), N, 1, c.raw(), M, K, N,
                GemmEpilogue::kBiasColRelu, bias.raw(), dev);
  } else {
    gemm_rows(a.raw(), b.raw(), c.raw(), M, K, N, dev);
    add_row_bias(c, bias, dev);
    c = relu(c, dev);
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b, const Device& dev) {
  runtime::trace::Span span("matmul_tn", "kernel");
  // a is stored [K, M]; compute C[M, N] = sum_k a[k, m] * b[k, n].
  check_rank2(a, b, "matmul_tn");
  const std::int64_t K = a.dim(0), M = a.dim(1);
  DLB_CHECK(b.dim(0) == K, "matmul_tn: inner dims " << K << " vs " << b.dim(0));
  const std::int64_t N = b.dim(1);
  Tensor c = Tensor::uninit(Shape({M, N}));  // both branches write all of C
  if (gemm_packed_active()) {
    // A(m, k) lives at a[k*M + m]: row stride 1, column stride M.
    gemm_packed(a.raw(), 1, M, b.raw(), N, 1, c.raw(), M, K, N,
                GemmEpilogue::kNone, nullptr, dev);
    return c;
  }
  float* pc = c.raw();
  const float* pa = a.raw();
  const float* pb = b.raw();
  dev.parallel_for(
      static_cast<std::size_t>(M),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t m = lo; m < hi; ++m) {
          float* crow = pc + m * static_cast<std::size_t>(N);
          std::memset(crow, 0, static_cast<std::size_t>(N) * sizeof(float));
          for (std::int64_t k = 0; k < K; ++k) {
            const float av = pa[static_cast<std::size_t>(k * M) + m];
            if (av == 0.f) continue;
            const float* brow = pb + static_cast<std::size_t>(k * N);
            for (std::int64_t n = 0; n < N; ++n) crow[n] += av * brow[n];
          }
        }
      },
      4);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b, const Device& dev) {
  runtime::trace::Span span("matmul_nt", "kernel");
  // b is stored [N, K]; compute C[M, N] = sum_k a[m, k] * b[n, k].
  check_rank2(a, b, "matmul_nt");
  const std::int64_t M = a.dim(0), K = a.dim(1);
  DLB_CHECK(b.dim(1) == K, "matmul_nt: inner dims " << K << " vs " << b.dim(1));
  const std::int64_t N = b.dim(0);
  Tensor c({M, N});
  // Deliberately NOT routed through the packed kernel on any tier. The
  // auto-vectorizer turns this dot-product loop into a K-dependent mix
  // of roundings (separate vmulps + ordered lane adds for the main
  // body, a contracted scalar-fma tail for the last K mod 8 steps), so
  // no single GemmMath variant reproduces its bits for every K, and
  // changing them would shift the recorded golden training
  // trajectories. The loop already vectorizes well, and the packing
  // cost gemm_packed would pay per call (B is [N, K], gathered
  // column-wise) is largest exactly here. See DESIGN.md §11.
  float* pc = c.raw();
  const float* pa = a.raw();
  const float* pb = b.raw();
  dev.parallel_for(
      static_cast<std::size_t>(M),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t m = lo; m < hi; ++m) {
          const float* arow = pa + m * static_cast<std::size_t>(K);
          float* crow = pc + m * static_cast<std::size_t>(N);
          for (std::int64_t n = 0; n < N; ++n) {
            const float* brow = pb + static_cast<std::size_t>(n * K);
            float acc = 0.f;
            for (std::int64_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
            crow[n] = acc;
          }
        }
      },
      4);
  return c;
}

void add_row_bias(Tensor& y, const Tensor& bias, const Device& dev) {
  DLB_CHECK(y.shape().rank() == 2 && bias.shape().rank() == 1,
            "add_row_bias expects [M,N] and [N]");
  const std::int64_t M = y.dim(0), N = y.dim(1);
  DLB_CHECK(bias.dim(0) == N, "bias length mismatch");
  float* py = y.raw();
  const float* pb = bias.raw();
  dev.parallel_for(
      static_cast<std::size_t>(M),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t m = lo; m < hi; ++m) {
          float* row = py + m * static_cast<std::size_t>(N);
          for (std::int64_t n = 0; n < N; ++n) row[n] += pb[n];
        }
      },
      16);
}

Tensor column_sums(const Tensor& x, const Device& dev) {
  DLB_CHECK(x.shape().rank() == 2, "column_sums expects rank-2 tensor");
  const std::int64_t M = x.dim(0), N = x.dim(1);
  Tensor out({N});
  float* po = out.raw();
  const float* px = x.raw();
  // Parallel over columns to avoid write contention.
  dev.parallel_for(
      static_cast<std::size_t>(N),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t n = lo; n < hi; ++n) {
          float acc = 0.f;
          for (std::int64_t m = 0; m < M; ++m)
            acc += px[static_cast<std::size_t>(m * N) + n];
          po[n] = acc;
        }
      },
      64);
  return out;
}

}  // namespace dlbench::tensor
