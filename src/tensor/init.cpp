#include "tensor/init.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dlbench::tensor {

void initialize(Tensor& w, InitKind kind, std::int64_t fan_in,
                std::int64_t fan_out, util::Rng& rng) {
  DLB_CHECK(fan_in > 0, "fan_in must be positive");
  (void)fan_out;
  switch (kind) {
    case InitKind::kXavierUniform: {
      const float limit = std::sqrt(3.0f / static_cast<float>(fan_in));
      for (auto& v : w.data())
        v = static_cast<float>(rng.uniform(-limit, limit));
      break;
    }
    case InitKind::kTruncatedNormal: {
      // TF's tutorial models hand-pick the stddev per layer (0.1 for
      // the MNIST fcs, 0.05/0.04 for the CIFAR convs/fcs). Those
      // choices track 2/sqrt(fan_in), which is what we use: fan 75 →
      // 0.1 (clamped), fan 1600 → 0.05, fan 3136 → 0.036.
      const float stddev = std::min(
          0.1f, 2.0f / std::sqrt(static_cast<float>(fan_in)));
      for (auto& v : w.data()) {
        float s;
        do {
          s = static_cast<float>(rng.normal(0.0, stddev));
        } while (std::fabs(s) > 2 * stddev);
        v = s;
      }
      break;
    }
    case InitKind::kLecunUniform: {
      const float limit = 1.0f / std::sqrt(static_cast<float>(fan_in));
      for (auto& v : w.data())
        v = static_cast<float>(rng.uniform(-limit, limit));
      break;
    }
  }
}

const char* init_kind_name(InitKind kind) {
  switch (kind) {
    case InitKind::kXavierUniform: return "xavier";
    case InitKind::kTruncatedNormal: return "truncated_normal";
    case InitKind::kLecunUniform: return "lecun_uniform";
  }
  return "unknown";
}

}  // namespace dlbench::tensor
