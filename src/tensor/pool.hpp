#pragma once

// Max / average pooling. The paper's default nets use MaxPooling(2x2),
// MaxPooling(3x3) and AveragePooling(3x3) (Tables IV and V); strides
// default to the window size (non-overlapping) unless specified, and a
// ceil-mode output size matches Caffe's pooling arithmetic.

#include <cstdint>
#include <vector>

#include "runtime/device.hpp"
#include "tensor/tensor.hpp"

namespace dlbench::tensor {

struct PoolGeom {
  std::int64_t channels = 0, in_h = 0, in_w = 0;
  std::int64_t window = 2;
  std::int64_t stride = 2;
  /// Caffe rounds pooling output sizes up (covering the edge with a
  /// partial window); TF's VALID pooling and Torch round down. The
  /// paper's Table IV/V layer dimensions only come out exactly when
  /// each emulation uses its framework's historical rounding.
  bool ceil_mode = false;

  std::int64_t out_h() const { return out_dim(in_h); }
  std::int64_t out_w() const { return out_dim(in_w); }

 private:
  std::int64_t out_dim(std::int64_t in) const {
    if (in < window) return ceil_mode ? 1 : 0;  // window larger than input
    if (ceil_mode) return (in - window + stride - 1) / stride + 1;
    return (in - window) / stride + 1;
  }
};

/// Max pool forward. `argmax` (same numel as the output) records the
/// flat input offset of each selected element for the backward pass.
Tensor maxpool_forward(const Tensor& x, const PoolGeom& g,
                       std::vector<std::int32_t>& argmax,
                       const runtime::Device& dev);

/// Max pool backward: routes dy to the recorded argmax positions.
Tensor maxpool_backward(const Tensor& dy, const PoolGeom& g,
                        const std::vector<std::int32_t>& argmax,
                        const runtime::Device& dev);

/// Average pool forward.
Tensor avgpool_forward(const Tensor& x, const PoolGeom& g,
                       const runtime::Device& dev);

/// Average pool backward: spreads dy uniformly over each window.
Tensor avgpool_backward(const Tensor& dy, const PoolGeom& g,
                        const runtime::Device& dev);

}  // namespace dlbench::tensor
