#pragma once

// Dense GEMM kernels. Convolution lowers to matmul via im2col, and the
// fully connected layers are matmuls directly, so this is the hot path
// of every experiment.

#include "runtime/device.hpp"
#include "tensor/tensor.hpp"

namespace dlbench::tensor {

/// C = A(MxK) * B(KxN). Parallelized over rows of A on the GPU device.
Tensor matmul(const Tensor& a, const Tensor& b, const runtime::Device& dev);

/// C = A^T(MxK as KxM stored) * B(KxN)  → matmul_tn(a, b): a is [K, M].
Tensor matmul_tn(const Tensor& a, const Tensor& b, const runtime::Device& dev);

/// C = A(MxK) * B^T where b is [N, K]  → result [M, N].
Tensor matmul_nt(const Tensor& a, const Tensor& b, const runtime::Device& dev);

/// y[M,N] += bias[N] broadcast over rows.
void add_row_bias(Tensor& y, const Tensor& bias, const runtime::Device& dev);

/// Column-sum of a [M, N] tensor → [N] (bias gradient).
Tensor column_sums(const Tensor& x, const runtime::Device& dev);

}  // namespace dlbench::tensor
