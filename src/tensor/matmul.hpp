#pragma once

// Dense GEMM entry points. Convolution lowers to matmul via im2col, and
// the fully connected layers are matmuls directly, so this is the hot
// path of every experiment.
//
// Each call dispatches on runtime::active_simd_level(): the AVX2+FMA
// tier routes through the packed-panel micro-kernel (gemm_kernel.hpp),
// the scalar tier runs the legacy row-blocked kernels below unchanged.
// Both tiers are bitwise-deterministic across thread counts; see
// DESIGN.md §11 for the dispatch table and determinism contract.

#include "runtime/device.hpp"
#include "tensor/tensor.hpp"

namespace dlbench::tensor {

/// C = A(MxK) * B(KxN). Parallelized over macro-tiles (packed tier) or
/// rows of A (scalar tier).
Tensor matmul(const Tensor& a, const Tensor& b, const runtime::Device& dev);

/// C = A^T(MxK as KxM stored) * B(KxN)  → matmul_tn(a, b): a is [K, M].
Tensor matmul_tn(const Tensor& a, const Tensor& b, const runtime::Device& dev);

/// C = A(MxK) * B^T where b is [N, K]  → result [M, N].
Tensor matmul_nt(const Tensor& a, const Tensor& b, const runtime::Device& dev);

/// Fused dense forward: C = A*B + bias[N], the bias applied in the GEMM
/// epilogue while the output tile is in registers (no second pass over
/// C). Bitwise-identical to matmul + add_row_bias.
Tensor matmul_bias(const Tensor& a, const Tensor& b, const Tensor& bias,
                   const runtime::Device& dev);

/// Fused dense forward + activation: C = relu(A*B + bias[N]).
/// Bitwise-identical to matmul + add_row_bias + relu.
Tensor matmul_bias_relu(const Tensor& a, const Tensor& b, const Tensor& bias,
                        const runtime::Device& dev);

/// The pre-packing row-blocked kernel, kept callable on every tier as
/// the benchmarking baseline (bench_micro_tensor) and the packed
/// kernel's differential-test reference (kernel_diff_test).
Tensor matmul_rows_reference(const Tensor& a, const Tensor& b,
                             const runtime::Device& dev);

/// y[M,N] += bias[N] broadcast over rows.
void add_row_bias(Tensor& y, const Tensor& bias, const runtime::Device& dev);

/// Column-sum of a [M, N] tensor → [N] (bias gradient).
Tensor column_sums(const Tensor& x, const runtime::Device& dev);

}  // namespace dlbench::tensor
