// AVX2 kMulAdd micro-kernel (gemm_kernel.hpp). Compiled with -mavx2
// -ffp-contract=off and, like gemm_kernel_avx2.cpp, must contain ONLY
// code unreachable unless runtime dispatch selected the kAvx2Fma tier.
//
// Same 6x16 register blocking as the FMA kernel (named accumulators,
// not an array — see the spill note there), but every step is an
// explicit _mm256_mul_ps followed by _mm256_add_ps — two roundings per
// (k, element). GCC lowers these intrinsics to generic vector * and +,
// which the default contraction mode would fuse into vfmadd, so the
// -ffp-contract=off on this file is load-bearing (see the rounding
// contract in gemm_kernel.hpp).

#include <immintrin.h>

#include "tensor/gemm_kernel.hpp"
#include "tensor/pack.hpp"

namespace dlbench::tensor::detail {

static_assert(kGemmMR == 6 && kGemmNR == 16,
              "micro-kernel register blocking is hard-coded to 6x16");

void micro_kernel_avx2_muladd(const float* a_panel, const float* b_panel,
                              std::int64_t k, float* out, std::int64_t ldo,
                              GemmEpilogue epilogue, const float* bias_row,
                              const float* bias_col) {
  __m256 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
  if (epilogue == GemmEpilogue::kBiasRowInit ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    c00 = c01 = _mm256_broadcast_ss(bias_row + 0);
    c10 = c11 = _mm256_broadcast_ss(bias_row + 1);
    c20 = c21 = _mm256_broadcast_ss(bias_row + 2);
    c30 = c31 = _mm256_broadcast_ss(bias_row + 3);
    c40 = c41 = _mm256_broadcast_ss(bias_row + 4);
    c50 = c51 = _mm256_broadcast_ss(bias_row + 5);
  } else {
    c00 = c01 = c10 = c11 = c20 = c21 = _mm256_setzero_ps();
    c30 = c31 = c40 = c41 = c50 = c51 = _mm256_setzero_ps();
  }

  const float* a = a_panel;
  const float* b = b_panel;
  for (std::int64_t kk = 0; kk < k; ++kk, a += kGemmMR, b += kGemmNR) {
    const __m256 b0 = _mm256_loadu_ps(b);
    const __m256 b1 = _mm256_loadu_ps(b + 8);
    __m256 av;
    av = _mm256_broadcast_ss(a + 0);
    c00 = _mm256_add_ps(c00, _mm256_mul_ps(av, b0));
    c01 = _mm256_add_ps(c01, _mm256_mul_ps(av, b1));
    av = _mm256_broadcast_ss(a + 1);
    c10 = _mm256_add_ps(c10, _mm256_mul_ps(av, b0));
    c11 = _mm256_add_ps(c11, _mm256_mul_ps(av, b1));
    av = _mm256_broadcast_ss(a + 2);
    c20 = _mm256_add_ps(c20, _mm256_mul_ps(av, b0));
    c21 = _mm256_add_ps(c21, _mm256_mul_ps(av, b1));
    av = _mm256_broadcast_ss(a + 3);
    c30 = _mm256_add_ps(c30, _mm256_mul_ps(av, b0));
    c31 = _mm256_add_ps(c31, _mm256_mul_ps(av, b1));
    av = _mm256_broadcast_ss(a + 4);
    c40 = _mm256_add_ps(c40, _mm256_mul_ps(av, b0));
    c41 = _mm256_add_ps(c41, _mm256_mul_ps(av, b1));
    av = _mm256_broadcast_ss(a + 5);
    c50 = _mm256_add_ps(c50, _mm256_mul_ps(av, b0));
    c51 = _mm256_add_ps(c51, _mm256_mul_ps(av, b1));
  }

  if (epilogue == GemmEpilogue::kBiasColAdd ||
      epilogue == GemmEpilogue::kBiasColRelu) {
    const __m256 v0 = _mm256_loadu_ps(bias_col);
    const __m256 v1 = _mm256_loadu_ps(bias_col + 8);
    c00 = _mm256_add_ps(c00, v0);
    c01 = _mm256_add_ps(c01, v1);
    c10 = _mm256_add_ps(c10, v0);
    c11 = _mm256_add_ps(c11, v1);
    c20 = _mm256_add_ps(c20, v0);
    c21 = _mm256_add_ps(c21, v1);
    c30 = _mm256_add_ps(c30, v0);
    c31 = _mm256_add_ps(c31, v1);
    c40 = _mm256_add_ps(c40, v0);
    c41 = _mm256_add_ps(c41, v1);
    c50 = _mm256_add_ps(c50, v0);
    c51 = _mm256_add_ps(c51, v1);
  }
  if (epilogue == GemmEpilogue::kBiasColRelu ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    const __m256 zero = _mm256_setzero_ps();
    c00 = _mm256_max_ps(c00, zero);
    c01 = _mm256_max_ps(c01, zero);
    c10 = _mm256_max_ps(c10, zero);
    c11 = _mm256_max_ps(c11, zero);
    c20 = _mm256_max_ps(c20, zero);
    c21 = _mm256_max_ps(c21, zero);
    c30 = _mm256_max_ps(c30, zero);
    c31 = _mm256_max_ps(c31, zero);
    c40 = _mm256_max_ps(c40, zero);
    c41 = _mm256_max_ps(c41, zero);
    c50 = _mm256_max_ps(c50, zero);
    c51 = _mm256_max_ps(c51, zero);
  }

  _mm256_storeu_ps(out + 0 * ldo, c00);
  _mm256_storeu_ps(out + 0 * ldo + 8, c01);
  _mm256_storeu_ps(out + 1 * ldo, c10);
  _mm256_storeu_ps(out + 1 * ldo + 8, c11);
  _mm256_storeu_ps(out + 2 * ldo, c20);
  _mm256_storeu_ps(out + 2 * ldo + 8, c21);
  _mm256_storeu_ps(out + 3 * ldo, c30);
  _mm256_storeu_ps(out + 3 * ldo + 8, c31);
  _mm256_storeu_ps(out + 4 * ldo, c40);
  _mm256_storeu_ps(out + 4 * ldo + 8, c41);
  _mm256_storeu_ps(out + 5 * ldo, c50);
  _mm256_storeu_ps(out + 5 * ldo + 8, c51);
}

}  // namespace dlbench::tensor::detail
