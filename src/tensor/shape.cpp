#include "tensor/shape.hpp"

#include <sstream>

#include "util/error.hpp"

namespace dlbench::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  DLB_CHECK(dims.size() <= kMaxRank,
            "shape rank " << dims.size() << " exceeds max " << kMaxRank);
  for (auto d : dims) {
    DLB_CHECK(d >= 0, "negative dimension " << d);
    dims_[static_cast<std::size_t>(rank_++)] = d;
  }
}

std::int64_t Shape::dim(int i) const {
  if (i < 0) i += rank_;
  DLB_CHECK(i >= 0 && i < rank_, "dim index " << i << " out of rank " << rank_);
  return dims_[static_cast<std::size_t>(i)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (int i = 0; i < rank_; ++i) n *= dims_[static_cast<std::size_t>(i)];
  return n;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (int i = 0; i < rank_; ++i)
    if (dims_[static_cast<std::size_t>(i)] !=
        other.dims_[static_cast<std::size_t>(i)])
      return false;
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < rank_; ++i)
    os << (i ? ", " : "") << dims_[static_cast<std::size_t>(i)];
  os << "]";
  return os.str();
}

}  // namespace dlbench::tensor
