#pragma once

// Packed-panel, register-blocked GEMM — the micro-kernel layer under
// every matmul and im2col convolution (DESIGN.md §11).
//
//   C(M x N) = op(A) · op(B) [+ bias] [then ReLU]
//
// Operands are given by base pointer + (row, col) element strides, so
// the transposed variants (matmul_tn / matmul_nt) are the same kernel
// with swapped strides; the packing layer (pack.hpp) turns any stride
// pattern into unit-stride panels. The inner loop is an MR x NR
// register-blocked micro-kernel selected at runtime from the dispatch
// table in runtime/device (AVX2+FMA when built and supported, portable
// scalar otherwise; DLB_SIMD=scalar forces the fallback).
//
// Determinism contract: C(m, n) is always the single-accumulator chain
//   acc = init; for k = 0..K-1 in order: acc = acc + A(m,k)*B(k,n)
// There is no K-splitting and no cross-thread reduction: every C tile
// is computed start-to-finish by exactly one thread, so results are
// bitwise identical across thread counts and across runs. Zero-padded
// edge lanes never feed a real output element.
//
// Rounding contract (GemmMath): the legacy kernels this layer replaces
// were auto-vectorized two different ways, and replaying their exact
// bits requires matching the rounding of each:
//   kFma    — one fused multiply-add per (k, element), no intermediate
//             rounding. This is what the compiler contracted the
//             row-blocked matmul / matmul_tn / conv loops into.
//   kMulAdd — round the product, then round the add (two roundings per
//             step). The matmul_nt dot-product loop vectorized into
//             separate vmulps + an ordered chain of lane adds, which
//             never contracts, so its packed replacement must not
//             contract either (the kMulAdd kernels live in translation
//             units built with -ffp-contract=off to pin this down).
//
// The epilogue is applied while the tile is still in registers, which
// is what lets a dense layer skip a full output-tensor round trip for
// bias and activation:
//   kBiasColAdd[Relu]  — y[m, n] += bias[n] after the K loop (Linear's
//                        layout; identical bits to a separate
//                        add_row_bias pass).
//   kBiasRowInit       — acc starts at bias[m] (conv's layout: one bias
//                        per output channel; identical bits to the
//                        legacy fill-then-accumulate kernel).

#include <cstdint>

#include "runtime/device.hpp"

namespace dlbench::tensor {

enum class GemmEpilogue {
  kNone,         // C = A·B
  kBiasColAdd,   // C = A·B + bias[n] (broadcast over rows)
  kBiasColRelu,  // C = relu(A·B + bias[n])
  kBiasRowInit,  // C = bias[m] + A·B (broadcast over columns)
  kBiasRowRelu,  // C = relu(bias[m] + A·B)
};

/// Per-step rounding of the K loop; see the rounding contract above.
enum class GemmMath {
  kFma,     // acc = fma(a, b, acc) — one rounding per step
  kMulAdd,  // acc = acc + round(a*b) — two roundings per step
};

/// True when matmul/conv route through the packed SIMD kernel; false
/// means the legacy row kernels run instead (scalar tier).
bool gemm_packed_active();

/// Packed GEMM. A(m, k) = a[m*a_rs + k*a_cs], B(k, n) = b[k*b_rs +
/// n*b_cs], C is written dense row-major [M, N]. `bias` must have N
/// entries for the column epilogues, M entries for the row epilogues,
/// and may be null for kNone. Parallelizes over macro-tiles of C via
/// `dev`; bitwise-deterministic for any worker count.
void gemm_packed(const float* a, std::int64_t a_rs, std::int64_t a_cs,
                 const float* b, std::int64_t b_rs, std::int64_t b_cs,
                 float* c, std::int64_t m, std::int64_t k, std::int64_t n,
                 GemmEpilogue epilogue, const float* bias,
                 const runtime::Device& dev, GemmMath math = GemmMath::kFma);

namespace detail {

/// Computes one MR x NR tile from packed panels into `out` (row stride
/// `ldo`), applying the epilogue. `bias_row` points at MR entries,
/// `bias_col` at NR entries (zero-padded by the caller on edge tiles);
/// unused ones may be null.
using MicroKernelFn = void (*)(const float* a_panel, const float* b_panel,
                               std::int64_t k, float* out, std::int64_t ldo,
                               GemmEpilogue epilogue, const float* bias_row,
                               const float* bias_col);

/// Portable scalar micro-kernel, kFma rounding (always available).
void micro_kernel_scalar(const float* a_panel, const float* b_panel,
                         std::int64_t k, float* out, std::int64_t ldo,
                         GemmEpilogue epilogue, const float* bias_row,
                         const float* bias_col);

/// Portable scalar micro-kernel, kMulAdd rounding (always available;
/// gemm_kernel_nofma.cpp, built with -ffp-contract=off).
void micro_kernel_scalar_muladd(const float* a_panel, const float* b_panel,
                                std::int64_t k, float* out, std::int64_t ldo,
                                GemmEpilogue epilogue, const float* bias_row,
                                const float* bias_col);

#if defined(DLB_HAVE_AVX2_BUILD)
/// AVX2+FMA micro-kernel, kFma rounding (gemm_kernel_avx2.cpp; only
/// dispatched when cpuid reports AVX2 and FMA).
void micro_kernel_avx2fma(const float* a_panel, const float* b_panel,
                          std::int64_t k, float* out, std::int64_t ldo,
                          GemmEpilogue epilogue, const float* bias_row,
                          const float* bias_col);

/// AVX2 micro-kernel, kMulAdd rounding (gemm_kernel_avx2_nofma.cpp,
/// built with -mavx2 -ffp-contract=off; same dispatch gate).
void micro_kernel_avx2_muladd(const float* a_panel, const float* b_panel,
                              std::int64_t k, float* out, std::int64_t ldo,
                              GemmEpilogue epilogue, const float* bias_row,
                              const float* bias_col);
#endif

#if defined(DLB_HAVE_AVX512_BUILD)
/// AVX-512F micro-kernels (gemm_kernel_avx512[_nofma].cpp; only
/// dispatched when cpuid reports AVX-512F). One NR panel is one zmm;
/// bitwise identical to the AVX2 kernels of the same GemmMath.
void micro_kernel_avx512(const float* a_panel, const float* b_panel,
                         std::int64_t k, float* out, std::int64_t ldo,
                         GemmEpilogue epilogue, const float* bias_row,
                         const float* bias_col);

void micro_kernel_avx512_muladd(const float* a_panel, const float* b_panel,
                                std::int64_t k, float* out, std::int64_t ldo,
                                GemmEpilogue epilogue, const float* bias_row,
                                const float* bias_col);

/// Double-width AVX-512 kFma kernel: one call computes an MR x 2*NR
/// tile from two adjacent packed-B panels (`b_panels` points at panel
/// np; panel np+1 follows at b_panels + k*kGemmNR). Each A broadcast
/// feeds two fmadds, doubling the independent accumulator chains (12)
/// so the K loop is FMA-throughput-bound instead of latency-bound.
/// Per-element accumulation is the same single ascending-k chain, so
/// the result is bitwise identical to two single-panel calls. Full
/// tiles only: `bias_col` (when used) must have 2*NR valid entries and
/// `out` 2*NR writable columns per row.
void micro_kernel_avx512_x2(const float* a_panel, const float* b_panels,
                            std::int64_t k, float* out, std::int64_t ldo,
                            GemmEpilogue epilogue, const float* bias_row,
                            const float* bias_col);

/// Quad tile: 2*MR x 2*NR from two adjacent A row panels (`a_panels`
/// points at panel mp; panel mp+1 follows at a_panels + k*kGemmMR) and
/// two adjacent B panels, 24 accumulator chains. Halves the per-flop
/// packed-B traffic of the x2 kernel (each B vector now feeds 12 rows
/// per load) at the same FMA-throughput bound. Same bitwise guarantee
/// and full-tile requirements as x2; `bias_row` (when used) must have
/// 2*MR valid entries.
void micro_kernel_avx512_2x2(const float* a_panels, const float* b_panels,
                             std::int64_t k, float* out, std::int64_t ldo,
                             GemmEpilogue epilogue, const float* bias_row,
                             const float* bias_col);
#endif

}  // namespace detail

}  // namespace dlbench::tensor
