#include "tensor/pool.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace dlbench::tensor {

using runtime::Device;

namespace {

void check_pool_input(const Tensor& x, const PoolGeom& g) {
  DLB_CHECK(x.shape().rank() == 4, "pool input must be [N, C, H, W]");
  DLB_CHECK(x.dim(1) == g.channels && x.dim(2) == g.in_h && x.dim(3) == g.in_w,
            "pool input " << x.shape().to_string()
                          << " does not match geometry");
  DLB_CHECK(g.window > 0 && g.stride > 0, "pool window/stride must be > 0");
  DLB_CHECK(g.out_h() > 0 && g.out_w() > 0, "pool output is empty");
}

}  // namespace

Tensor maxpool_forward(const Tensor& x, const PoolGeom& g,
                       std::vector<std::int32_t>& argmax, const Device& dev) {
  check_pool_input(x, g);
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor y({n, g.channels, oh, ow});
  argmax.assign(static_cast<std::size_t>(y.numel()), 0);

  const std::int64_t in_plane = g.in_h * g.in_w;
  const std::int64_t out_plane = oh * ow;
  const float* px = x.raw();
  float* py = y.raw();
  std::int32_t* pa = argmax.data();

  dev.parallel_for(
      static_cast<std::size_t>(n * g.channels),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pc = lo; pc < hi; ++pc) {
          const float* in = px + static_cast<std::int64_t>(pc) * in_plane;
          float* out = py + static_cast<std::int64_t>(pc) * out_plane;
          std::int32_t* amax = pa + static_cast<std::int64_t>(pc) * out_plane;
          for (std::int64_t y0 = 0; y0 < oh; ++y0) {
            for (std::int64_t x0 = 0; x0 < ow; ++x0) {
              const std::int64_t ys = y0 * g.stride;
              const std::int64_t xs = x0 * g.stride;
              const std::int64_t ye = std::min(ys + g.window, g.in_h);
              const std::int64_t xe = std::min(xs + g.window, g.in_w);
              float best = -std::numeric_limits<float>::infinity();
              std::int32_t best_idx = 0;
              for (std::int64_t iy = ys; iy < ye; ++iy) {
                for (std::int64_t ix = xs; ix < xe; ++ix) {
                  const float v = in[iy * g.in_w + ix];
                  if (v > best) {
                    best = v;
                    best_idx = static_cast<std::int32_t>(iy * g.in_w + ix);
                  }
                }
              }
              out[y0 * ow + x0] = best;
              amax[y0 * ow + x0] = best_idx;
            }
          }
        }
      },
      2);
  return y;
}

Tensor maxpool_backward(const Tensor& dy, const PoolGeom& g,
                        const std::vector<std::int32_t>& argmax,
                        const Device& dev) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  DLB_CHECK(dy.shape().rank() == 4 && dy.dim(1) == g.channels &&
                dy.dim(2) == oh && dy.dim(3) == ow,
            "maxpool dy shape mismatch: " << dy.shape().to_string());
  DLB_CHECK(static_cast<std::int64_t>(argmax.size()) == dy.numel(),
            "argmax size mismatch");
  const std::int64_t n = dy.dim(0);
  Tensor dx({n, g.channels, g.in_h, g.in_w});
  const std::int64_t in_plane = g.in_h * g.in_w;
  const std::int64_t out_plane = oh * ow;
  const float* pdy = dy.raw();
  float* pdx = dx.raw();
  const std::int32_t* pa = argmax.data();

  dev.parallel_for(
      static_cast<std::size_t>(n * g.channels),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pc = lo; pc < hi; ++pc) {
          const float* dout = pdy + static_cast<std::int64_t>(pc) * out_plane;
          const std::int32_t* amax =
              pa + static_cast<std::int64_t>(pc) * out_plane;
          float* din = pdx + static_cast<std::int64_t>(pc) * in_plane;
          for (std::int64_t j = 0; j < out_plane; ++j)
            din[amax[j]] += dout[j];
        }
      },
      2);
  return dx;
}

Tensor avgpool_forward(const Tensor& x, const PoolGeom& g, const Device& dev) {
  check_pool_input(x, g);
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor y({n, g.channels, oh, ow});
  const std::int64_t in_plane = g.in_h * g.in_w;
  const std::int64_t out_plane = oh * ow;
  const float* px = x.raw();
  float* py = y.raw();

  dev.parallel_for(
      static_cast<std::size_t>(n * g.channels),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pc = lo; pc < hi; ++pc) {
          const float* in = px + static_cast<std::int64_t>(pc) * in_plane;
          float* out = py + static_cast<std::int64_t>(pc) * out_plane;
          for (std::int64_t y0 = 0; y0 < oh; ++y0) {
            for (std::int64_t x0 = 0; x0 < ow; ++x0) {
              const std::int64_t ys = y0 * g.stride;
              const std::int64_t xs = x0 * g.stride;
              const std::int64_t ye = std::min(ys + g.window, g.in_h);
              const std::int64_t xe = std::min(xs + g.window, g.in_w);
              float acc = 0.f;
              for (std::int64_t iy = ys; iy < ye; ++iy)
                for (std::int64_t ix = xs; ix < xe; ++ix)
                  acc += in[iy * g.in_w + ix];
              const auto count = static_cast<float>((ye - ys) * (xe - xs));
              out[y0 * ow + x0] = acc / count;
            }
          }
        }
      },
      2);
  return y;
}

Tensor avgpool_backward(const Tensor& dy, const PoolGeom& g,
                        const Device& dev) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  DLB_CHECK(dy.shape().rank() == 4 && dy.dim(1) == g.channels &&
                dy.dim(2) == oh && dy.dim(3) == ow,
            "avgpool dy shape mismatch: " << dy.shape().to_string());
  const std::int64_t n = dy.dim(0);
  Tensor dx({n, g.channels, g.in_h, g.in_w});
  const std::int64_t in_plane = g.in_h * g.in_w;
  const std::int64_t out_plane = oh * ow;
  const float* pdy = dy.raw();
  float* pdx = dx.raw();

  dev.parallel_for(
      static_cast<std::size_t>(n * g.channels),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pc = lo; pc < hi; ++pc) {
          const float* dout = pdy + static_cast<std::int64_t>(pc) * out_plane;
          float* din = pdx + static_cast<std::int64_t>(pc) * in_plane;
          for (std::int64_t y0 = 0; y0 < oh; ++y0) {
            for (std::int64_t x0 = 0; x0 < ow; ++x0) {
              const std::int64_t ys = y0 * g.stride;
              const std::int64_t xs = x0 * g.stride;
              const std::int64_t ye = std::min(ys + g.window, g.in_h);
              const std::int64_t xe = std::min(xs + g.window, g.in_w);
              const auto count = static_cast<float>((ye - ys) * (xe - xs));
              const float share = dout[y0 * ow + x0] / count;
              for (std::int64_t iy = ys; iy < ye; ++iy)
                for (std::int64_t ix = xs; ix < xe; ++ix)
                  din[iy * g.in_w + ix] += share;
            }
          }
        }
      },
      2);
  return dx;
}

}  // namespace dlbench::tensor
