#include "tensor/pack.hpp"

#include <cstring>

namespace dlbench::tensor {

using runtime::Device;

void pack_a_panels(const float* a, std::int64_t row_stride,
                   std::int64_t col_stride, std::int64_t m, std::int64_t k,
                   float* dst, const Device& dev) {
  const std::int64_t panels = gemm_row_panels(m);
  dev.parallel_for(
      static_cast<std::size_t>(panels),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = lo; p < hi; ++p) {
          const std::int64_t m0 = static_cast<std::int64_t>(p) * kGemmMR;
          const std::int64_t rows = std::min(kGemmMR, m - m0);
          float* panel = dst + static_cast<std::int64_t>(p) * k * kGemmMR;
          if (col_stride == 1) {
            // Row-major A: gather MR strided rows, write column-major.
            for (std::int64_t kk = 0; kk < k; ++kk) {
              float* out = panel + kk * kGemmMR;
              for (std::int64_t r = 0; r < rows; ++r)
                out[r] = a[(m0 + r) * row_stride + kk];
              for (std::int64_t r = rows; r < kGemmMR; ++r) out[r] = 0.f;
            }
          } else {
            // Transposed A (row_stride == 1): each k reads MR contiguous
            // floats.
            for (std::int64_t kk = 0; kk < k; ++kk) {
              const float* src = a + kk * col_stride + m0 * row_stride;
              float* out = panel + kk * kGemmMR;
              for (std::int64_t r = 0; r < rows; ++r)
                out[r] = src[r * row_stride];
              for (std::int64_t r = rows; r < kGemmMR; ++r) out[r] = 0.f;
            }
          }
        }
      },
      4);
}

void pack_b_panels(const float* b, std::int64_t row_stride,
                   std::int64_t col_stride, std::int64_t k, std::int64_t n,
                   float* dst, const Device& dev) {
  const std::int64_t panels = gemm_col_panels(n);
  dev.parallel_for(
      static_cast<std::size_t>(panels),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = lo; p < hi; ++p) {
          const std::int64_t n0 = static_cast<std::int64_t>(p) * kGemmNR;
          const std::int64_t cols = std::min(kGemmNR, n - n0);
          float* panel = dst + static_cast<std::int64_t>(p) * k * kGemmNR;
          if (col_stride == 1 && cols == kGemmNR) {
            // Row-major B, full panel: contiguous 16-float row copies.
            for (std::int64_t kk = 0; kk < k; ++kk)
              std::memcpy(panel + kk * kGemmNR, b + kk * row_stride + n0,
                          static_cast<std::size_t>(kGemmNR) * sizeof(float));
          } else if (col_stride == 1) {
            for (std::int64_t kk = 0; kk < k; ++kk) {
              float* out = panel + kk * kGemmNR;
              const float* src = b + kk * row_stride + n0;
              for (std::int64_t j = 0; j < cols; ++j) out[j] = src[j];
              for (std::int64_t j = cols; j < kGemmNR; ++j) out[j] = 0.f;
            }
          } else {
            // Transposed B (row_stride == 1): read each source column
            // contiguously in k, scatter into the panel.
            if (cols < kGemmNR) {
              for (std::int64_t kk = 0; kk < k; ++kk) {
                float* out = panel + kk * kGemmNR;
                for (std::int64_t j = cols; j < kGemmNR; ++j) out[j] = 0.f;
              }
            }
            for (std::int64_t j = 0; j < cols; ++j) {
              const float* src = b + (n0 + j) * col_stride;
              for (std::int64_t kk = 0; kk < k; ++kk)
                panel[kk * kGemmNR + j] = src[kk * row_stride];
            }
          }
        }
      },
      4);
}

}  // namespace dlbench::tensor
