#pragma once

// Dense float32 tensors with shared storage.
//
// Tensor is a handle type, like the blob/tensor types in the frameworks
// under study: copying a Tensor aliases the same contiguous buffer;
// clone() makes a deep copy. All tensors are contiguous row-major and
// single-precision, matching the training configurations in the paper.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.hpp"
#include "util/rng.hpp"

namespace dlbench::tensor {

/// A contiguous, row-major float32 tensor handle.
class Tensor {
 public:
  /// Empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value);

  /// Wraps the given values (copied). values.size() must equal numel.
  Tensor(Shape shape, std::span<const float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  /// Allocates WITHOUT zero-filling. Only for destinations every
  /// element of which the caller immediately overwrites (GEMM / conv
  /// outputs); reading before writing is undefined.
  static Tensor uninit(Shape shape);
  static Tensor full(Shape shape, float value);
  /// i.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, util::Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  /// i.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, util::Rng& rng, float lo,
                             float hi);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  std::int64_t dim(int i) const { return shape_.dim(i); }
  bool empty() const { return numel() == 0; }

  /// Mutable / const access to the flat buffer.
  std::span<float> data();
  std::span<const float> data() const;
  float* raw() { return data_.get(); }
  const float* raw() const { return data_.get(); }

  /// Element access by flat index (debug-checked).
  float& at(std::int64_t i);
  float at(std::int64_t i) const;

  /// Deep copy.
  Tensor clone() const;

  /// Returns a tensor sharing this storage under a new shape with the
  /// same element count.
  Tensor reshape(Shape new_shape) const;

  /// Sets every element to `value`.
  void fill(float value);

  /// True if any element is NaN or infinite.
  bool has_non_finite() const;

  /// "Tensor[2, 3] {…}" — elided for big tensors.
  std::string to_string() const;

 private:
  Shape shape_;
  std::shared_ptr<float[]> data_;
};

}  // namespace dlbench::tensor
