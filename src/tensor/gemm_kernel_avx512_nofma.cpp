// AVX-512F kMulAdd micro-kernel (gemm_kernel.hpp). Compiled with
// -mavx512f -ffp-contract=off; only reachable on the kAvx512F tier.
// Same shape as gemm_kernel_avx512.cpp but every step is an explicit
// multiply then add — two roundings per (k, element); the contraction
// flag on this file keeps the compiler from fusing the generic vector
// * and + these intrinsics lower to (see the rounding contract in
// gemm_kernel.hpp).

#include <immintrin.h>

#include "tensor/gemm_kernel.hpp"
#include "tensor/pack.hpp"

namespace dlbench::tensor::detail {

static_assert(kGemmMR == 6 && kGemmNR == 16,
              "micro-kernel register blocking is hard-coded to 6x16");

void micro_kernel_avx512_muladd(const float* a_panel, const float* b_panel,
                                std::int64_t k, float* out, std::int64_t ldo,
                                GemmEpilogue epilogue, const float* bias_row,
                                const float* bias_col) {
  __m512 c0, c1, c2, c3, c4, c5;
  if (epilogue == GemmEpilogue::kBiasRowInit ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    c0 = _mm512_set1_ps(bias_row[0]);
    c1 = _mm512_set1_ps(bias_row[1]);
    c2 = _mm512_set1_ps(bias_row[2]);
    c3 = _mm512_set1_ps(bias_row[3]);
    c4 = _mm512_set1_ps(bias_row[4]);
    c5 = _mm512_set1_ps(bias_row[5]);
  } else {
    c0 = c1 = c2 = c3 = c4 = c5 = _mm512_setzero_ps();
  }

  const float* a = a_panel;
  const float* b = b_panel;
#pragma GCC unroll 4
  for (std::int64_t kk = 0; kk < k; ++kk, a += kGemmMR, b += kGemmNR) {
    const __m512 bv = _mm512_loadu_ps(b);
    c0 = _mm512_add_ps(c0, _mm512_mul_ps(_mm512_set1_ps(a[0]), bv));
    c1 = _mm512_add_ps(c1, _mm512_mul_ps(_mm512_set1_ps(a[1]), bv));
    c2 = _mm512_add_ps(c2, _mm512_mul_ps(_mm512_set1_ps(a[2]), bv));
    c3 = _mm512_add_ps(c3, _mm512_mul_ps(_mm512_set1_ps(a[3]), bv));
    c4 = _mm512_add_ps(c4, _mm512_mul_ps(_mm512_set1_ps(a[4]), bv));
    c5 = _mm512_add_ps(c5, _mm512_mul_ps(_mm512_set1_ps(a[5]), bv));
  }

  if (epilogue == GemmEpilogue::kBiasColAdd ||
      epilogue == GemmEpilogue::kBiasColRelu) {
    const __m512 bias = _mm512_loadu_ps(bias_col);
    c0 = _mm512_add_ps(c0, bias);
    c1 = _mm512_add_ps(c1, bias);
    c2 = _mm512_add_ps(c2, bias);
    c3 = _mm512_add_ps(c3, bias);
    c4 = _mm512_add_ps(c4, bias);
    c5 = _mm512_add_ps(c5, bias);
  }
  if (epilogue == GemmEpilogue::kBiasColRelu ||
      epilogue == GemmEpilogue::kBiasRowRelu) {
    const __m512 zero = _mm512_setzero_ps();
    c0 = _mm512_max_ps(c0, zero);
    c1 = _mm512_max_ps(c1, zero);
    c2 = _mm512_max_ps(c2, zero);
    c3 = _mm512_max_ps(c3, zero);
    c4 = _mm512_max_ps(c4, zero);
    c5 = _mm512_max_ps(c5, zero);
  }

  _mm512_storeu_ps(out + 0 * ldo, c0);
  _mm512_storeu_ps(out + 1 * ldo, c1);
  _mm512_storeu_ps(out + 2 * ldo, c2);
  _mm512_storeu_ps(out + 3 * ldo, c3);
  _mm512_storeu_ps(out + 4 * ldo, c4);
  _mm512_storeu_ps(out + 5 * ldo, c5);
}

}  // namespace dlbench::tensor::detail
