#pragma once

// 2-D convolution lowered to GEMM via im2col/col2im, the same strategy
// Caffe popularized and that cuDNN-era frameworks used on the nets in
// this paper (5x5 kernels, strides 1, small paddings).

#include <cstdint>

#include "runtime/device.hpp"
#include "tensor/tensor.hpp"

namespace dlbench::tensor {

/// Static geometry of a conv layer application.
struct ConvGeom {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t out_c = 0;
  std::int64_t kernel = 0;  // square kernels only (paper uses 5x5)
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix: in_c * kernel * kernel.
  std::int64_t patch_size() const { return in_c * kernel * kernel; }
};

/// Unfolds one image [C, H, W] (flat span) into a [patch_size, out_h*out_w]
/// column matrix (flat buffer provided by the caller, zero-padding applied).
void im2col(const float* image, const ConvGeom& g, float* columns);

/// Folds a column matrix back into an image gradient (accumulating).
void col2im(const float* columns, const ConvGeom& g, float* image);

/// Forward conv: x [N, C, H, W], weight [out_c, patch_size], bias [out_c]
/// → y [N, out_c, out_h, out_w]. Parallel over batch samples.
Tensor conv2d_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias, const ConvGeom& g,
                      const runtime::Device& dev);

/// Backward conv. Given dy [N, out_c, oh, ow] computes dx (same shape as
/// x), and accumulates dweight [out_c, patch_size] / dbias [out_c].
struct ConvGrads {
  Tensor dx;
  Tensor dweight;
  Tensor dbias;
};
ConvGrads conv2d_backward(const Tensor& x, const Tensor& weight,
                          const Tensor& dy, const ConvGeom& g,
                          const runtime::Device& dev);

}  // namespace dlbench::tensor
