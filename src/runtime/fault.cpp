#include "runtime/fault.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dlbench::runtime::fault {

namespace {

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtoll(raw, nullptr, 10);
}

double env_f64(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtod(raw, nullptr);
}

}  // namespace

bool FaultPlan::active() const {
  return grad_fault != GradFault::kNone || ckpt_flip_bytes > 0 ||
         sample_drop_rate > 0.0 || stall_ms > 0 || serve_active();
}

bool FaultPlan::serve_active() const {
  return serve_crash_every > 0 ||
         (serve_stall_every > 0 && serve_stall_ms > 0) ||
         serve_error_rate > 0.0 || serve_corrupt_rate > 0.0 ||
         serve_expire_rate > 0.0;
}

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;
  const std::int64_t nan_step = env_i64("DLB_FAULT_NAN_STEP", -1);
  const std::int64_t inf_step = env_i64("DLB_FAULT_INF_STEP", -1);
  if (nan_step >= 0) {
    plan.grad_fault = GradFault::kNaN;
    plan.grad_step = nan_step;
  } else if (inf_step >= 0) {
    plan.grad_fault = GradFault::kInf;
    plan.grad_step = inf_step;
  }
  plan.grad_max_fires = env_i64("DLB_FAULT_GRAD_FIRES", plan.grad_max_fires);
  plan.grad_fraction = env_f64("DLB_FAULT_GRAD_FRACTION", plan.grad_fraction);
  plan.ckpt_flip_bytes = env_i64("DLB_FAULT_CKPT_FLIPS", plan.ckpt_flip_bytes);
  plan.sample_drop_rate = env_f64("DLB_FAULT_DROP_RATE", plan.sample_drop_rate);
  plan.stall_ms = env_i64("DLB_FAULT_STALL_MS", plan.stall_ms);
  plan.stall_step = env_i64("DLB_FAULT_STALL_STEP", plan.stall_step);
  plan.stall_scope = env_i64("DLB_FAULT_STALL_WORKER", 0) != 0
                         ? StallScope::kPoolWorker
                         : StallScope::kTrainStep;
  plan.serve_crash_every =
      env_i64("DLB_CHAOS_CRASH_EVERY", plan.serve_crash_every);
  plan.serve_crash_max = env_i64("DLB_CHAOS_CRASH_MAX", plan.serve_crash_max);
  plan.serve_stall_every =
      env_i64("DLB_CHAOS_STALL_EVERY", plan.serve_stall_every);
  plan.serve_stall_ms = env_i64("DLB_CHAOS_STALL_MS", plan.serve_stall_ms);
  plan.serve_stall_max = env_i64("DLB_CHAOS_STALL_MAX", plan.serve_stall_max);
  plan.serve_error_rate = env_f64("DLB_CHAOS_ERROR_RATE", plan.serve_error_rate);
  plan.serve_error_attempts =
      env_i64("DLB_CHAOS_ERROR_ATTEMPTS", plan.serve_error_attempts);
  plan.serve_corrupt_rate =
      env_f64("DLB_CHAOS_CORRUPT_RATE", plan.serve_corrupt_rate);
  plan.serve_expire_rate =
      env_f64("DLB_CHAOS_EXPIRE_RATE", plan.serve_expire_rate);
  plan.seed = static_cast<std::uint64_t>(
      env_i64("DLB_FAULT_SEED", static_cast<std::int64_t>(plan.seed)));
  return plan;
}

struct FaultScope::State {
  explicit State(FaultPlan p) : plan(p), rng(p.seed) {}

  const FaultPlan plan;
  FaultStats stats;
  // Guards rng + stats (injection points can race with pool workers).
  std::mutex mu;
  util::Rng rng;
  std::atomic<std::int64_t> grad_fires{0};
  std::atomic<bool> step_stall_fired{false};
  std::atomic<bool> worker_stall_fired{false};
  // Serving-side global fire counters (enforce the crash/stall caps
  // without taking mu on the batch hot path).
  std::atomic<std::int64_t> serve_crash_fires{0};
  std::atomic<std::int64_t> serve_stall_fires{0};
};

namespace {

using State = FaultScope::State;

// The active scope's state. Raw pointer + relaxed load keeps the
// fault-off fast path to a single atomic read; the owning FaultScope
// outlives every injection it can trigger (its destructor clears the
// pointer before the shared_ptr releases).
std::atomic<FaultScope::State*> g_active{nullptr};

std::atomic<bool> g_abort{false};

FaultScope::State* active_state() {
  return g_active.load(std::memory_order_acquire);
}

// Sleeps for `ms`, polling the abort flag — and `cancel` when given —
// so a watchdog or a shutting-down server can cut the stall short
// instead of letting it hang the suite.
void abortable_sleep(std::int64_t ms,
                     const std::atomic<bool>* cancel = nullptr) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (abort_requested()) return;
    if (cancel && cancel->load(std::memory_order_acquire)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// splitmix64 finalizer: the bijective mix behind every serve-fault
// decision. Pure function of its input — no state, no ordering.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform [0, 1) draw keyed on (seed, tag, a, b): the decision for a
// given ordinal is identical in every run and on every thread.
double hash_uniform(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                    std::uint64_t b) {
  const std::uint64_t h = mix64(mix64(mix64(seed ^ tag) ^ a) ^ b);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kTagError = 0x5e77e001;
constexpr std::uint64_t kTagCorrupt = 0x5e77e002;
constexpr std::uint64_t kTagExpire = 0x5e77e003;

}  // namespace

FaultScope::FaultScope(FaultPlan plan)
    : state_(std::make_shared<State>(plan)) {
  FaultScope::State* expected = nullptr;
  DLB_CHECK(g_active.compare_exchange_strong(expected, state_.get(),
                                             std::memory_order_release),
            "a FaultScope is already active; scopes cannot nest");
}

FaultScope::~FaultScope() {
  g_active.store(nullptr, std::memory_order_release);
}

const FaultStats& FaultScope::stats() const { return state_->stats; }

bool enabled() { return active_state() != nullptr; }

bool maybe_corrupt_gradients(std::int64_t step,
                             const std::vector<std::span<float>>& grads) {
  State* s = active_state();
  if (!s) return false;
  const FaultPlan& plan = s->plan;
  if (plan.grad_fault == GradFault::kNone || step != plan.grad_step)
    return false;
  if (s->grad_fires.fetch_add(1) >= plan.grad_max_fires) {
    s->grad_fires.fetch_sub(1);
    return false;
  }
  const float value = plan.grad_fault == GradFault::kNaN
                          ? std::numeric_limits<float>::quiet_NaN()
                          : std::numeric_limits<float>::infinity();
  std::lock_guard<std::mutex> lock(s->mu);
  for (const std::span<float>& g : grads) {
    if (g.empty()) continue;
    const auto n = static_cast<std::int64_t>(g.size());
    std::int64_t hits = static_cast<std::int64_t>(
        plan.grad_fraction * static_cast<double>(n));
    hits = std::max<std::int64_t>(1, std::min(hits, n));
    for (std::int64_t k = 0; k < hits; ++k)
      g[s->rng.uniform_index(static_cast<std::uint64_t>(n))] = value;
  }
  ++s->stats.gradient_fires;
  return true;
}

bool maybe_drop_sample(std::int64_t) {
  State* s = active_state();
  if (!s || s->plan.sample_drop_rate <= 0.0) return false;
  std::lock_guard<std::mutex> lock(s->mu);
  if (!s->rng.bernoulli(s->plan.sample_drop_rate)) return false;
  ++s->stats.samples_dropped;
  return true;
}

std::int64_t maybe_corrupt_stream(std::string& bytes,
                                  std::size_t min_offset) {
  State* s = active_state();
  if (!s || s->plan.ckpt_flip_bytes <= 0) return 0;
  if (bytes.size() <= min_offset) return 0;
  const auto span = static_cast<std::uint64_t>(bytes.size() - min_offset);
  std::lock_guard<std::mutex> lock(s->mu);
  std::int64_t flips = 0;
  for (std::int64_t k = 0; k < s->plan.ckpt_flip_bytes; ++k) {
    const std::size_t off = min_offset + s->rng.uniform_index(span);
    // XOR with a nonzero mask so the byte always changes.
    bytes[off] = static_cast<char>(
        bytes[off] ^ static_cast<char>(1u << s->rng.uniform_index(8)));
    ++flips;
  }
  s->stats.checkpoint_bytes_flipped += flips;
  return flips;
}

void maybe_stall_step(std::int64_t step) {
  State* s = active_state();
  if (!s || s->plan.stall_ms <= 0 ||
      s->plan.stall_scope != StallScope::kTrainStep ||
      step != s->plan.stall_step)
    return;
  if (s->step_stall_fired.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    ++s->stats.stalls;
  }
  abortable_sleep(s->plan.stall_ms);
}

void maybe_stall_worker() {
  State* s = active_state();
  if (!s || s->plan.stall_ms <= 0 ||
      s->plan.stall_scope != StallScope::kPoolWorker)
    return;
  if (s->worker_stall_fired.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    ++s->stats.stalls;
  }
  abortable_sleep(s->plan.stall_ms);
}

bool serve_should_crash(int slot, std::int64_t batch_ordinal) {
  State* s = active_state();
  if (!s) return false;
  const FaultPlan& plan = s->plan;
  if (plan.serve_crash_every <= 0 || batch_ordinal <= 0) return false;
  if (batch_ordinal % plan.serve_crash_every != 0) return false;
  if (plan.serve_crash_max > 0) {
    // Claim a slot under the global cap; undo on overshoot so the cap
    // is exact even under concurrent claims.
    if (s->serve_crash_fires.fetch_add(1) >= plan.serve_crash_max) {
      s->serve_crash_fires.fetch_sub(1);
      return false;
    }
  } else {
    s->serve_crash_fires.fetch_add(1);
  }
  std::lock_guard<std::mutex> lock(s->mu);
  ++s->stats.serve_crashes;
  (void)slot;
  return true;
}

bool serve_maybe_stall(int slot, std::int64_t batch_ordinal,
                       const std::atomic<bool>* cancel) {
  State* s = active_state();
  if (!s) return false;
  const FaultPlan& plan = s->plan;
  if (plan.serve_stall_every <= 0 || plan.serve_stall_ms <= 0 ||
      batch_ordinal <= 0)
    return false;
  if (batch_ordinal % plan.serve_stall_every != 0) return false;
  if (plan.serve_stall_max > 0) {
    if (s->serve_stall_fires.fetch_add(1) >= plan.serve_stall_max) {
      s->serve_stall_fires.fetch_sub(1);
      return false;
    }
  } else {
    s->serve_stall_fires.fetch_add(1);
  }
  {
    std::lock_guard<std::mutex> lock(s->mu);
    ++s->stats.serve_stalls;
  }
  (void)slot;
  abortable_sleep(plan.serve_stall_ms, cancel);
  return true;
}

bool serve_forward_error(std::int64_t request_id, std::int64_t attempt) {
  State* s = active_state();
  if (!s) return false;
  const FaultPlan& plan = s->plan;
  if (plan.serve_error_rate <= 0.0 || attempt >= plan.serve_error_attempts)
    return false;
  if (hash_uniform(plan.seed, kTagError,
                   static_cast<std::uint64_t>(request_id),
                   0) >= plan.serve_error_rate)
    return false;
  std::lock_guard<std::mutex> lock(s->mu);
  ++s->stats.serve_errors;
  return true;
}

bool serve_corrupt_response(std::int64_t request_id) {
  State* s = active_state();
  if (!s || s->plan.serve_corrupt_rate <= 0.0) return false;
  if (hash_uniform(s->plan.seed, kTagCorrupt,
                   static_cast<std::uint64_t>(request_id),
                   0) >= s->plan.serve_corrupt_rate)
    return false;
  std::lock_guard<std::mutex> lock(s->mu);
  ++s->stats.serve_corruptions;
  return true;
}

bool serve_expire_request(std::int64_t request_id) {
  State* s = active_state();
  if (!s || s->plan.serve_expire_rate <= 0.0) return false;
  if (hash_uniform(s->plan.seed, kTagExpire,
                   static_cast<std::uint64_t>(request_id),
                   0) >= s->plan.serve_expire_rate)
    return false;
  std::lock_guard<std::mutex> lock(s->mu);
  ++s->stats.serve_expirations;
  return true;
}

void request_abort() { g_abort.store(true, std::memory_order_release); }
void clear_abort() { g_abort.store(false, std::memory_order_release); }
bool abort_requested() { return g_abort.load(std::memory_order_acquire); }

struct Watchdog::Impl {
  std::mutex mu;
  std::condition_variable cv;
  bool cancelled = false;
  std::atomic<bool> expired{false};
  std::thread monitor;
};

Watchdog::Watchdog(double timeout_s) {
  if (timeout_s <= 0.0) return;
  impl_ = std::make_unique<Impl>();
  const auto timeout = std::chrono::duration<double>(timeout_s);
  impl_->monitor = std::thread([impl = impl_.get(), timeout] {
    std::unique_lock<std::mutex> lock(impl->mu);
    if (impl->cv.wait_for(lock, timeout, [&] { return impl->cancelled; }))
      return;  // run finished in time
    impl->expired.store(true, std::memory_order_release);
    request_abort();
  });
}

Watchdog::~Watchdog() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->cancelled = true;
  }
  impl_->cv.notify_all();
  impl_->monitor.join();
  if (impl_->expired.load(std::memory_order_acquire)) clear_abort();
}

bool Watchdog::expired() const {
  return impl_ && impl_->expired.load(std::memory_order_acquire);
}

}  // namespace dlbench::runtime::fault
