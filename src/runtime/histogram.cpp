#include "runtime/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

namespace dlbench::runtime {

namespace {

// Adaptive duration formatting for summary lines.
std::string fmt_duration(double seconds) {
  char buf[32];
  if (seconds >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.3gs", seconds);
  else if (seconds >= 1e-3)
    std::snprintf(buf, sizeof(buf), "%.3gms", seconds * 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.3gus", seconds * 1e6);
  return buf;
}

}  // namespace

LatencyHistogram::LatencyHistogram() {
  std::memset(buckets_, 0, sizeof(buckets_));
}

int LatencyHistogram::bucket_index(std::int64_t ns) {
  // Width of the value in bits; |1 keeps countl_zero defined for 0.
  const int w =
      64 - std::countl_zero(static_cast<std::uint64_t>(ns) | 1);
  const int shift = w - kSubBits;
  if (shift <= 0) return static_cast<int>(ns);  // exact region
  return static_cast<int>(shift * kHalf + (ns >> shift));
}

std::int64_t LatencyHistogram::bucket_mid_ns(int index) {
  if (index < kPrecisionBuckets) return index;
  const int shift = index / static_cast<int>(kHalf) - 1;
  const std::int64_t top = index - std::int64_t{shift} * kHalf;
  const std::int64_t lower = top << shift;
  return lower + ((std::int64_t{1} << shift) >> 1);
}

void LatencyHistogram::record_ns(std::int64_t ns) {
  if (ns < 0) ns = 0;
  if (count_ == 0) {
    min_ns_ = max_ns_ = ns;
  } else {
    min_ns_ = std::min(min_ns_, ns);
    max_ns_ = std::max(max_ns_, ns);
  }
  ++count_;
  sum_ns_ += ns;
  ++buckets_[bucket_index(ns)];
}

void LatencyHistogram::record_s(double seconds) {
  record_ns(static_cast<std::int64_t>(std::llround(seconds * 1e9)));
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ns_ = other.min_ns_;
    max_ns_ = other.max_ns_;
  } else {
    min_ns_ = std::min(min_ns_, other.min_ns_);
    max_ns_ = std::max(max_ns_, other.max_ns_);
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void LatencyHistogram::reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = min_ns_ = max_ns_ = sum_ns_ = 0;
}

namespace {
// The one empty-histogram sentinel. Every statistic of a histogram with
// no samples returns this — never 0, which is a legal latency.
const double kEmptySentinel = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double LatencyHistogram::min_s() const {
  if (count_ == 0) return kEmptySentinel;
  return 1e-9 * static_cast<double>(min_ns_);
}

double LatencyHistogram::max_s() const {
  if (count_ == 0) return kEmptySentinel;
  return 1e-9 * static_cast<double>(max_ns_);
}

double LatencyHistogram::total_s() const {
  return 1e-9 * static_cast<double>(sum_ns_);
}

double LatencyHistogram::mean_s() const {
  if (count_ == 0) return kEmptySentinel;
  return total_s() / static_cast<double>(count_);
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return kEmptySentinel;
  if (p <= 0.0) return min_s();
  if (p >= 100.0) return max_s();
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::int64_t mid =
          std::clamp(bucket_mid_ns(i), min_ns_, max_ns_);
      return 1e-9 * static_cast<double>(mid);
    }
  }
  return max_s();  // unreachable: counts sum to count_
}

std::string LatencyHistogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ == 0) return os.str();
  os << " mean=" << fmt_duration(mean_s())
     << " p50=" << fmt_duration(percentile(50))
     << " p95=" << fmt_duration(percentile(95))
     << " p99=" << fmt_duration(percentile(99))
     << " p999=" << fmt_duration(percentile(99.9))
     << " max=" << fmt_duration(max_s());
  return os.str();
}

bool LatencyHistogram::operator==(const LatencyHistogram& other) const {
  return count_ == other.count_ && min_ns_ == other.min_ns_ &&
         max_ns_ == other.max_ns_ && sum_ns_ == other.sum_ns_ &&
         std::memcmp(buckets_, other.buckets_, sizeof(buckets_)) == 0;
}

}  // namespace dlbench::runtime
