#include "runtime/scale.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace dlbench::runtime {

std::int64_t ScaleConfig::scale_samples(std::int64_t n,
                                        std::int64_t min_keep) const {
  DLB_CHECK(data_fraction > 0.0 && data_fraction <= 1.0,
            "data_fraction must be in (0,1], got " << data_fraction);
  const auto scaled = static_cast<std::int64_t>(n * data_fraction);
  return std::clamp<std::int64_t>(scaled, std::min(n, min_keep), n);
}

double ScaleConfig::scale_epochs(double epochs) const {
  DLB_CHECK(epoch_fraction > 0.0 && epoch_fraction <= 1.0,
            "epoch_fraction must be in (0,1], got " << epoch_fraction);
  return std::max(0.05, epochs * epoch_fraction);
}

std::int64_t ScaleConfig::cap_steps(std::int64_t steps) const {
  if (max_step_cap <= 0) return steps;
  return std::min(steps, max_step_cap);
}

namespace {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtod(raw, nullptr);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtoll(raw, nullptr, 10);
}

}  // namespace

ScaleConfig ScaleConfig::from_env(const ScaleConfig& fallback) {
  ScaleConfig cfg = fallback;
  cfg.data_fraction = env_double("DLB_DATA_FRACTION", cfg.data_fraction);
  cfg.epoch_fraction = env_double("DLB_EPOCH_FRACTION", cfg.epoch_fraction);
  cfg.max_step_cap = env_int("DLB_STEP_CAP", cfg.max_step_cap);
  return cfg;
}

ScaleConfig ScaleConfig::bench_default() {
  // ~2k train / 500 test samples per dataset; epoch counts shrunk so a
  // full bench binary finishes in tens of seconds while keeping the
  // cross-framework epoch *ratios* of Tables II/III.
  ScaleConfig cfg;
  cfg.data_fraction = 1.0;   // dataset generators already emit bench-size sets
  cfg.epoch_fraction = 1.0;  // epoch ratios are encoded in the registry
  cfg.max_step_cap = 0;
  return cfg;
}

ScaleConfig ScaleConfig::test_default() {
  ScaleConfig cfg;
  cfg.data_fraction = 0.25;
  cfg.epoch_fraction = 0.25;
  cfg.max_step_cap = 200;
  return cfg;
}

}  // namespace dlbench::runtime
