#include "runtime/device.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

namespace dlbench::runtime {

namespace {

std::size_t global_pool_size() {
  // DLB_THREADS caps the shared pool (benchmarking thread scaling
  // without recompiling); default is all hardware cores.
  if (const char* env = std::getenv("DLB_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return std::max(2u, std::thread::hardware_concurrency());
}

std::shared_ptr<ThreadPool> shared_global_pool() {
  // One process-wide pool for all GPU devices: spawning a pool per
  // Device would oversubscribe cores when experiments create devices
  // in loops.
  static std::shared_ptr<ThreadPool> pool =
      std::make_shared<ThreadPool>(global_pool_size());
  return pool;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    f.avx2 = __builtin_cpu_supports("avx2");
    f.fma = __builtin_cpu_supports("fma");
    f.avx512f = __builtin_cpu_supports("avx512f");
#endif
    return f;
  }();
  return features;
}

SimdLevel active_simd_level() {
  static const SimdLevel level = [] {
#if defined(DLB_HAVE_AVX2_BUILD)
    const bool avx2_built = true;
#else
    const bool avx2_built = false;
#endif
#if defined(DLB_HAVE_AVX512_BUILD)
    const bool avx512_built = true;
#else
    const bool avx512_built = false;
#endif
    const CpuFeatures& f = cpu_features();
    SimdLevel best = SimdLevel::kScalar;
    if (avx2_built && f.avx2 && f.fma) best = SimdLevel::kAvx2Fma;
    if (best == SimdLevel::kAvx2Fma && avx512_built && f.avx512f)
      best = SimdLevel::kAvx512F;
    if (const char* env = std::getenv("DLB_SIMD")) {
      const std::string v(env);
      if (v == "scalar") return SimdLevel::kScalar;
      // A request is a cap, not a guarantee: it cannot raise the level
      // above what the build and the CPU support.
      if (v == "avx2") return std::min(best, SimdLevel::kAvx2Fma);
      if (v == "avx512" || v == "auto" || v.empty()) return best;
      return SimdLevel::kScalar;  // unknown value: fail safe, stay portable
    }
    return best;
  }();
  return level;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512F: return "avx512f";
    case SimdLevel::kAvx2Fma: return "avx2+fma";
    case SimdLevel::kScalar: break;
  }
  return "scalar";
}

Device Device::cpu() { return Device(Kind::kCpu, nullptr); }

Device Device::gpu() { return Device(Kind::kGpu, shared_global_pool()); }

Device Device::parallel(std::size_t workers) {
  if (workers <= 1) return cpu();
  return Device(Kind::kGpu, std::make_shared<ThreadPool>(workers));
}

void Device::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) const {
  if (count == 0) return;
  if (!pool_ || count <= grain) {
    fn(0, count);
    return;
  }
  pool_->parallel_for_ranges(count, fn);
}

}  // namespace dlbench::runtime
