#include "runtime/device.hpp"

#include <algorithm>
#include <thread>

namespace dlbench::runtime {

namespace {

std::shared_ptr<ThreadPool> shared_global_pool() {
  // One process-wide pool for all GPU devices: spawning a pool per
  // Device would oversubscribe cores when experiments create devices
  // in loops.
  static std::shared_ptr<ThreadPool> pool = std::make_shared<ThreadPool>(
      std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace

Device Device::cpu() { return Device(Kind::kCpu, nullptr); }

Device Device::gpu() { return Device(Kind::kGpu, shared_global_pool()); }

Device Device::parallel(std::size_t workers) {
  if (workers <= 1) return cpu();
  return Device(Kind::kGpu, std::make_shared<ThreadPool>(workers));
}

void Device::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) const {
  if (count == 0) return;
  if (!pool_ || count <= grain) {
    fn(0, count);
    return;
  }
  pool_->parallel_for_ranges(count, fn);
}

}  // namespace dlbench::runtime
