#pragma once

// Deterministic fault injection + cooperative watchdog.
//
// Framework comparisons are only trustworthy when failure modes are
// detected, isolated and reported rather than crashing the run. This
// module makes failures *reproducible*: a seeded FaultPlan describes
// which faults to fire (NaN/Inf gradient corruption at a chosen step,
// byte flips in serialized checkpoints, dataset sample drops, stalled
// workers), and a FaultScope installs it for the dynamic extent of a
// run. Injection points are free functions that cost one relaxed
// atomic load when no scope is active, so production paths are
// untouched when faults are off.
//
// The Watchdog bounds a run's wall clock. It cannot forcibly kill a
// thread (nothing portable can), so expiry is cooperative: it raises a
// global abort flag that the guarded training loop checks every step
// and that injected stalls poll every millisecond, which is enough to
// guarantee a stalled cell unwinds instead of hanging a bench suite.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace dlbench::runtime::fault {

/// What to write into corrupted gradient entries.
enum class GradFault { kNone, kNaN, kInf };

/// Where an injected stall fires.
enum class StallScope { kTrainStep, kPoolWorker };

/// A deterministic description of the faults to inject. Every random
/// choice (which entries to corrupt, which bytes to flip, which samples
/// to drop) is drawn from an Rng seeded with `seed`, so a plan replays
/// identically.
struct FaultPlan {
  // -- gradient corruption (guarded-training divergence trigger) --
  GradFault grad_fault = GradFault::kNone;
  /// Global optimizer step at which gradients are corrupted.
  std::int64_t grad_step = -1;
  /// How many times the gradient fault may fire in total. The guarded
  /// loop re-visits `grad_step` after a rollback, so 1 models a
  /// transient fault (recoverable) and a large count a persistent one
  /// (drives retry exhaustion).
  std::int64_t grad_max_fires = 1;
  /// Fraction of each gradient tensor's entries to corrupt, in (0, 1].
  double grad_fraction = 0.01;

  // -- checkpoint stream corruption --
  /// Number of random byte flips applied to each serialized checkpoint.
  std::int64_t ckpt_flip_bytes = 0;

  // -- dataset faults --
  /// Probability that the loader silently drops any given sample.
  double sample_drop_rate = 0.0;

  // -- stalls --
  /// Stall duration; 0 disables stalling.
  std::int64_t stall_ms = 0;
  /// Training step at which a kTrainStep stall fires.
  std::int64_t stall_step = 0;
  StallScope stall_scope = StallScope::kTrainStep;

  /// Seed for the plan's private Rng stream.
  std::uint64_t seed = 0xfa017u;

  /// True if any fault is armed.
  bool active() const;

  /// Builds a plan from DLB_FAULT_* environment variables:
  ///   DLB_FAULT_NAN_STEP / DLB_FAULT_INF_STEP  step to corrupt grads
  ///   DLB_FAULT_GRAD_FIRES    max gradient-fault firings (default 1)
  ///   DLB_FAULT_GRAD_FRACTION fraction of entries corrupted (0.01)
  ///   DLB_FAULT_CKPT_FLIPS    byte flips per serialized checkpoint
  ///   DLB_FAULT_DROP_RATE     per-sample drop probability
  ///   DLB_FAULT_STALL_MS      stall duration (0 = off)
  ///   DLB_FAULT_STALL_STEP    step at which the stall fires (0)
  ///   DLB_FAULT_STALL_WORKER  1 = stall a pool worker instead
  ///   DLB_FAULT_SEED          fault Rng seed
  static FaultPlan from_env();
};

/// Counts of faults actually delivered under a scope.
struct FaultStats {
  std::int64_t gradient_fires = 0;
  std::int64_t checkpoint_bytes_flipped = 0;
  std::int64_t samples_dropped = 0;
  std::int64_t stalls = 0;
};

/// RAII activation of a FaultPlan. At most one scope is active at a
/// time (nesting throws); destruction deactivates and keeps the stats
/// readable. Thread-safe: injection points may be hit from pool
/// workers while the owner thread trains.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan);
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
  ~FaultScope();

  const FaultStats& stats() const;

  /// Opaque shared state; defined in fault.cpp (the injection points
  /// reach it through the module's active-scope pointer).
  struct State;

 private:
  std::shared_ptr<State> state_;
};

/// True when a FaultScope is active (one relaxed atomic load).
bool enabled();

/// Corrupts a deterministic subset of the given gradient buffers if the
/// active plan's gradient fault is armed for `step` and firings remain.
/// Returns true when the fault fired.
bool maybe_corrupt_gradients(std::int64_t step,
                             const std::vector<std::span<float>>& grads);

/// True when the active plan says to drop this sample.
bool maybe_drop_sample(std::int64_t sample_index);

/// Flips the planned number of random bytes in `bytes`, restricted to
/// offsets in [min_offset, bytes.size()). Returns flips performed.
std::int64_t maybe_corrupt_stream(std::string& bytes,
                                  std::size_t min_offset = 0);

/// Training-loop stall: sleeps stall_ms (abort-aware) when the active
/// plan's kTrainStep stall is armed for `step`. Fires at most once.
void maybe_stall_step(std::int64_t step);

/// Pool-worker stall: first task executed after scope activation sleeps
/// stall_ms (abort-aware) when a kPoolWorker stall is armed.
void maybe_stall_worker();

// ---- cooperative abort (set by Watchdog, polled by stalls/loops) ----

void request_abort();
void clear_abort();
bool abort_requested();

/// Wall-clock guard for one training run. Arms a monitor thread that
/// raises the global abort flag once `timeout_s` elapses; timeout <= 0
/// disarms (no thread is spawned). The destructor stops the monitor
/// and, if the watchdog fired, clears the abort flag it raised.
class Watchdog {
 public:
  explicit Watchdog(double timeout_s);
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;
  ~Watchdog();

  /// True once the deadline has passed.
  bool expired() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dlbench::runtime::fault
