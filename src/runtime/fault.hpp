#pragma once

// Deterministic fault injection + cooperative watchdog.
//
// Framework comparisons are only trustworthy when failure modes are
// detected, isolated and reported rather than crashing the run. This
// module makes failures *reproducible*: a seeded FaultPlan describes
// which faults to fire (NaN/Inf gradient corruption at a chosen step,
// byte flips in serialized checkpoints, dataset sample drops, stalled
// workers), and a FaultScope installs it for the dynamic extent of a
// run. Injection points are free functions that cost one relaxed
// atomic load when no scope is active, so production paths are
// untouched when faults are off.
//
// The Watchdog bounds a run's wall clock. It cannot forcibly kill a
// thread (nothing portable can), so expiry is cooperative: it raises a
// global abort flag that the guarded training loop checks every step
// and that injected stalls poll every millisecond, which is enough to
// guarantee a stalled cell unwinds instead of hanging a bench suite.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace dlbench::runtime::fault {

/// What to write into corrupted gradient entries.
enum class GradFault { kNone, kNaN, kInf };

/// Where an injected stall fires.
enum class StallScope { kTrainStep, kPoolWorker };

/// A deterministic description of the faults to inject. Every random
/// choice (which entries to corrupt, which bytes to flip, which samples
/// to drop) is drawn from an Rng seeded with `seed`, so a plan replays
/// identically.
struct FaultPlan {
  // -- gradient corruption (guarded-training divergence trigger) --
  GradFault grad_fault = GradFault::kNone;
  /// Global optimizer step at which gradients are corrupted.
  std::int64_t grad_step = -1;
  /// How many times the gradient fault may fire in total. The guarded
  /// loop re-visits `grad_step` after a rollback, so 1 models a
  /// transient fault (recoverable) and a large count a persistent one
  /// (drives retry exhaustion).
  std::int64_t grad_max_fires = 1;
  /// Fraction of each gradient tensor's entries to corrupt, in (0, 1].
  double grad_fraction = 0.01;

  // -- checkpoint stream corruption --
  /// Number of random byte flips applied to each serialized checkpoint.
  std::int64_t ckpt_flip_bytes = 0;

  // -- dataset faults --
  /// Probability that the loader silently drops any given sample.
  double sample_drop_rate = 0.0;

  // -- stalls --
  /// Stall duration; 0 disables stalling.
  std::int64_t stall_ms = 0;
  /// Training step at which a kTrainStep stall fires.
  std::int64_t stall_step = 0;
  StallScope stall_scope = StallScope::kTrainStep;

  // -- serving faults (chaos gauntlet; see DESIGN.md §13) --
  //
  // Determinism contract: every serve-fault decision is a pure function
  // of (seed, stable ordinal) — replica slot + per-incarnation batch
  // ordinal for replica-level faults, request id (+ attempt) for
  // request-level faults — never wall clock or thread interleaving.
  // With a fixed request count, injected-event totals replay
  // identically run-to-run even though batching and scheduling differ.

  /// Replica slot crashes on every k-th batch it processes since its
  /// last (re)start; 0 disables. Its in-flight batch is requeued.
  std::int64_t serve_crash_every = 0;
  /// Global cap on injected crashes across all slots (0 = unlimited).
  std::int64_t serve_crash_max = 0;
  /// Replica slot stalls for serve_stall_ms on every k-th batch; 0 off.
  std::int64_t serve_stall_every = 0;
  std::int64_t serve_stall_ms = 0;
  /// Global cap on injected stalls (0 = unlimited).
  std::int64_t serve_stall_max = 0;
  /// Fraction of request ids marked for a transient forward error.
  double serve_error_rate = 0.0;
  /// Dispatch attempts (0-based) on which a marked request's forward
  /// fails; with the default 1, attempt 0 fails and a retry succeeds,
  /// so retry count == marked count exactly.
  std::int64_t serve_error_attempts = 1;
  /// Fraction of request ids whose response payload is corrupted
  /// (detectable: probabilities scaled to sum > 1).
  double serve_corrupt_rate = 0.0;
  /// Fraction of request ids that arrive with an already-expired
  /// deadline — deterministic deadline-shed load.
  double serve_expire_rate = 0.0;

  /// Seed for the plan's private Rng stream.
  std::uint64_t seed = 0xfa017u;

  /// True if any fault is armed.
  bool active() const;

  /// True if any serving-side fault is armed.
  bool serve_active() const;

  /// Builds a plan from DLB_FAULT_* environment variables:
  ///   DLB_FAULT_NAN_STEP / DLB_FAULT_INF_STEP  step to corrupt grads
  ///   DLB_FAULT_GRAD_FIRES    max gradient-fault firings (default 1)
  ///   DLB_FAULT_GRAD_FRACTION fraction of entries corrupted (0.01)
  ///   DLB_FAULT_CKPT_FLIPS    byte flips per serialized checkpoint
  ///   DLB_FAULT_DROP_RATE     per-sample drop probability
  ///   DLB_FAULT_STALL_MS      stall duration (0 = off)
  ///   DLB_FAULT_STALL_STEP    step at which the stall fires (0)
  ///   DLB_FAULT_STALL_WORKER  1 = stall a pool worker instead
  ///   DLB_FAULT_SEED          fault Rng seed
  /// and serving-side DLB_CHAOS_* variables:
  ///   DLB_CHAOS_CRASH_EVERY     crash a replica every k-th batch (0)
  ///   DLB_CHAOS_CRASH_MAX       global crash cap (0 = unlimited)
  ///   DLB_CHAOS_STALL_EVERY     stall a replica every k-th batch (0)
  ///   DLB_CHAOS_STALL_MS        serve stall duration (0)
  ///   DLB_CHAOS_STALL_MAX       global stall cap (0 = unlimited)
  ///   DLB_CHAOS_ERROR_RATE      fraction of requests marked to fail
  ///   DLB_CHAOS_ERROR_ATTEMPTS  attempts on which marked fail (1)
  ///   DLB_CHAOS_CORRUPT_RATE    fraction of responses corrupted
  ///   DLB_CHAOS_EXPIRE_RATE     fraction arriving already expired
  static FaultPlan from_env();
};

/// Counts of faults actually delivered under a scope.
struct FaultStats {
  std::int64_t gradient_fires = 0;
  std::int64_t checkpoint_bytes_flipped = 0;
  std::int64_t samples_dropped = 0;
  std::int64_t stalls = 0;
  // Serving-side deliveries (the gauntlet cross-checks these against
  // the server's own event counters).
  std::int64_t serve_crashes = 0;
  std::int64_t serve_stalls = 0;
  std::int64_t serve_errors = 0;
  std::int64_t serve_corruptions = 0;
  std::int64_t serve_expirations = 0;
};

/// RAII activation of a FaultPlan. At most one scope is active at a
/// time (nesting throws); destruction deactivates and keeps the stats
/// readable. Thread-safe: injection points may be hit from pool
/// workers while the owner thread trains.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan);
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
  ~FaultScope();

  const FaultStats& stats() const;

  /// Opaque shared state; defined in fault.cpp (the injection points
  /// reach it through the module's active-scope pointer).
  struct State;

 private:
  std::shared_ptr<State> state_;
};

/// True when a FaultScope is active (one relaxed atomic load).
bool enabled();

/// Corrupts a deterministic subset of the given gradient buffers if the
/// active plan's gradient fault is armed for `step` and firings remain.
/// Returns true when the fault fired.
bool maybe_corrupt_gradients(std::int64_t step,
                             const std::vector<std::span<float>>& grads);

/// True when the active plan says to drop this sample.
bool maybe_drop_sample(std::int64_t sample_index);

/// Flips the planned number of random bytes in `bytes`, restricted to
/// offsets in [min_offset, bytes.size()). Returns flips performed.
std::int64_t maybe_corrupt_stream(std::string& bytes,
                                  std::size_t min_offset = 0);

/// Training-loop stall: sleeps stall_ms (abort-aware) when the active
/// plan's kTrainStep stall is armed for `step`. Fires at most once.
void maybe_stall_step(std::int64_t step);

/// Pool-worker stall: first task executed after scope activation sleeps
/// stall_ms (abort-aware) when a kPoolWorker stall is armed.
void maybe_stall_worker();

// ---- serving-side injection points (called by serve::ModelServer) ----
//
// All decisions are pure functions of (plan seed, ordinals) via a
// splitmix64-derived hash — see the determinism contract on FaultPlan.

/// True when replica `slot` must crash after its `batch_ordinal`-th
/// batch since (re)start (1-based). Respects the global crash cap.
bool serve_should_crash(int slot, std::int64_t batch_ordinal);

/// Stalls replica `slot` for serve_stall_ms when armed for this batch
/// ordinal; the sleep polls both the global abort flag and `cancel` (a
/// server shutdown flag, may be null) every millisecond. Returns true
/// when a stall was delivered (even if cut short).
bool serve_maybe_stall(int slot, std::int64_t batch_ordinal,
                       const std::atomic<bool>* cancel);

/// True when the forward pass for (request_id, attempt) must fail with
/// a transient error. Attempt is 0-based; only attempts below the
/// plan's serve_error_attempts are eligible.
bool serve_forward_error(std::int64_t request_id, std::int64_t attempt);

/// True when request_id's response payload must be corrupted.
bool serve_corrupt_response(std::int64_t request_id);

/// True when request_id arrives with an already-expired deadline.
bool serve_expire_request(std::int64_t request_id);

// ---- cooperative abort (set by Watchdog, polled by stalls/loops) ----

void request_abort();
void clear_abort();
bool abort_requested();

/// Wall-clock guard for one training run. Arms a monitor thread that
/// raises the global abort flag once `timeout_s` elapses; timeout <= 0
/// disarms (no thread is spawned). The destructor stops the monitor
/// and, if the watchdog fired, clears the abort flag it raised.
class Watchdog {
 public:
  explicit Watchdog(double timeout_s);
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;
  ~Watchdog();

  /// True once the deadline has passed.
  bool expired() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dlbench::runtime::fault
