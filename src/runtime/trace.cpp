#include "runtime/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "util/format.hpp"
#include "util/table.hpp"

namespace dlbench::runtime::trace {

namespace {

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtoll(raw, nullptr, 10);
}

}  // namespace

// Defined outside the DLB_TRACE_DISABLED guard: callers arm tracing
// from the environment regardless of whether the build can honor it.
TraceOptions TraceOptions::from_env() {
  TraceOptions opts;
  opts.armed = env_i64("DLB_TRACE", 0) != 0;
  if (const char* raw = std::getenv("DLB_TRACE_OUT"); raw && *raw)
    opts.out_path = raw;
  opts.print_summary = env_i64("DLB_TRACE_SUMMARY", 0) != 0;
  opts.max_events_per_thread =
      env_i64("DLB_TRACE_EVENT_CAP", opts.max_events_per_thread);
  return opts;
}

double TraceReport::total_for(const std::string& name) const {
  double total = 0.0;
  for (const SpanStat& s : spans)
    if (s.name == name) total += s.total_s;
  return total;
}

double TraceReport::category_total(const std::string& category) const {
  double total = 0.0;
  for (const SpanStat& s : spans)
    if (s.category == category) total += s.total_s;
  return total;
}

std::string TraceReport::summary_table() const {
  std::ostringstream os;
  util::Table span_table(
      {"Span", "Category", "Count", "Total (s)", "Mean (ms)", "Max (ms)"});
  span_table.set_title("Trace spans");
  for (const SpanStat& s : spans) {
    const double mean_ms =
        s.count > 0 ? 1e3 * s.total_s / static_cast<double>(s.count) : 0.0;
    span_table.add_row({s.name, s.category, std::to_string(s.count),
                        util::format_fixed(s.total_s, 4),
                        util::format_fixed(mean_ms, 3),
                        util::format_fixed(1e3 * s.max_s, 3)});
  }
  os << span_table.to_string();
  if (!counters.empty()) {
    util::Table counter_table({"Counter", "Value", "Peak", "Samples"});
    counter_table.set_title("Trace counters");
    for (const CounterStat& c : counters)
      counter_table.add_row({c.name, std::to_string(c.value),
                             std::to_string(c.peak),
                             std::to_string(c.samples)});
    os << counter_table.to_string();
  }
  if (dropped_events > 0)
    os << "(" << dropped_events << " span events dropped: buffer cap)\n";
  return os.str();
}

}  // namespace dlbench::runtime::trace

#ifndef DLB_TRACE_DISABLED

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <unordered_set>

#include "util/error.hpp"

namespace dlbench::runtime::trace {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t next_gen() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

struct SpanEvent {
  const char* name;
  const char* category;
  std::int64_t start_ns;
  std::int64_t dur_ns;
};

// Counters and gauges share one cell type; `is_gauge` picks the merge
// rule (sum-of-sums vs last/peak).
struct CounterCell {
  const char* name;
  bool is_gauge;
  std::int64_t sum = 0;   // counters: running sum; gauges: last value
  std::int64_t peak = 0;  // gauges: max observed
  std::int64_t samples = 0;
};

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<SpanEvent> spans;
  std::vector<CounterCell> counters;  // tiny; linear scan by name pointer
  std::int64_t dropped = 0;
};

}  // namespace

struct TraceScope::State {
  explicit State(TraceOptions opts)
      : options(std::move(opts)), epoch_ns(now_ns()) {}

  const TraceOptions options;
  const std::int64_t epoch_ns;
  /// Process-unique scope id. Thread-local buffer caches key off this
  /// rather than the State address: a new scope can be allocated at a
  /// freed scope's address, and an address-keyed cache would then hand
  /// back a dangling buffer from the dead scope.
  const std::uint64_t gen = next_gen();
  // Guards buffer registration and flush-time aggregation. Event
  // recording itself is lock-free: each thread appends to its own
  // buffer.
  mutable std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

namespace detail {

// Active scope, one inlined load on the disabled fast path (see
// header). The owning TraceScope outlives every event it can record.
std::atomic<void*> g_active{nullptr};

std::int64_t clock_now_ns() { return now_ns(); }

}  // namespace detail

namespace {

using State = TraceScope::State;

State* active_state() {
  return static_cast<State*>(detail::g_active.load(std::memory_order_acquire));
}

// Per-thread buffer cache, re-registered when the active scope changes.
// Keyed by the scope's generation id, not its address — see State::gen.
struct TlsSlot {
  std::uint64_t gen = 0;
  ThreadBuffer* buffer = nullptr;
};
thread_local TlsSlot tls_slot;

ThreadBuffer* buffer_for(State* s) {
  if (tls_slot.gen == s->gen) return tls_slot.buffer;
  std::lock_guard<std::mutex> lock(s->mu);
  s->buffers.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buf = s->buffers.back().get();
  buf->tid = s->next_tid++;
  tls_slot.gen = s->gen;
  tls_slot.buffer = buf;
  return buf;
}

CounterCell& cell_for(ThreadBuffer& buf, const char* name, bool is_gauge) {
  for (CounterCell& c : buf.counters)
    if (c.name == name) return c;
  buf.counters.push_back(CounterCell{name, is_gauge});
  return buf.counters.back();
}

// Minimal JSON string escaping (names are ASCII identifiers/labels).
std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", ch);
          out += hex;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

TraceScope::TraceScope(TraceOptions options)
    : state_(std::make_shared<State>(std::move(options))) {
  void* expected = nullptr;
  DLB_CHECK(detail::g_active.compare_exchange_strong(
                expected, state_.get(), std::memory_order_release),
            "a TraceScope is already active; scopes cannot nest");
}

TraceScope::~TraceScope() {
  detail::g_active.store(nullptr, std::memory_order_release);
  if (!state_->options.out_path.empty())
    write_chrome_json(state_->options.out_path);
  if (state_->options.print_summary)
    std::fputs(report().summary_table().c_str(), stdout);
}

const char* intern(const std::string& name) {
  static std::mutex mu;
  static std::unordered_set<std::string> pool;
  std::lock_guard<std::mutex> lock(mu);
  return pool.insert(name).first->c_str();
}

void Span::record() {
  State* s = active_state();
  if (!s || s->epoch_ns > start_ns_) return;  // scope changed mid-span
  ThreadBuffer* buf = buffer_for(s);
  if (static_cast<std::int64_t>(buf->spans.size()) >=
      s->options.max_events_per_thread) {
    ++buf->dropped;
    return;
  }
  buf->spans.push_back(
      SpanEvent{name_, category_, start_ns_, now_ns() - start_ns_});
}

void detail::record_span_slow(const char* name, const char* category,
                              std::int64_t start_ns, std::int64_t end_ns) {
  State* s = active_state();
  if (!s || s->epoch_ns > start_ns) return;  // scope changed mid-span
  ThreadBuffer* buf = buffer_for(s);
  if (static_cast<std::int64_t>(buf->spans.size()) >=
      s->options.max_events_per_thread) {
    ++buf->dropped;
    return;
  }
  buf->spans.push_back(SpanEvent{name, category, start_ns,
                                 std::max<std::int64_t>(0, end_ns - start_ns)});
}

void detail::counter_add_slow(const char* name, std::int64_t delta) {
  State* s = active_state();
  if (!s) return;
  CounterCell& cell = cell_for(*buffer_for(s), name, /*is_gauge=*/false);
  cell.sum += delta;
  ++cell.samples;
}

void detail::gauge_record_slow(const char* name, std::int64_t value) {
  State* s = active_state();
  if (!s) return;
  CounterCell& cell = cell_for(*buffer_for(s), name, /*is_gauge=*/true);
  cell.sum = value;
  cell.peak = std::max(cell.peak, value);
  ++cell.samples;
}

TraceReport TraceScope::report() const {
  TraceReport out;
  std::map<std::pair<std::string, std::string>, SpanStat> span_agg;
  std::map<std::string, CounterStat> counter_agg;
  std::map<std::string, bool> counter_is_gauge;

  std::lock_guard<std::mutex> lock(state_->mu);
  for (const auto& buf : state_->buffers) {
    out.dropped_events += buf->dropped;
    for (const SpanEvent& e : buf->spans) {
      SpanStat& stat = span_agg[{e.name, e.category}];
      if (stat.count == 0) {
        stat.name = e.name;
        stat.category = e.category;
        stat.min_s = stat.max_s = 1e-9 * static_cast<double>(e.dur_ns);
      }
      const double dur_s = 1e-9 * static_cast<double>(e.dur_ns);
      ++stat.count;
      stat.total_s += dur_s;
      stat.min_s = std::min(stat.min_s, dur_s);
      stat.max_s = std::max(stat.max_s, dur_s);
    }
    for (const CounterCell& c : buf->counters) {
      CounterStat& stat = counter_agg[c.name];
      stat.name = c.name;
      counter_is_gauge[c.name] = c.is_gauge;
      if (c.is_gauge) {
        // Cross-thread gauge: report the largest last-value as `value`
        // and the overall peak.
        stat.value = std::max(stat.value, c.sum);
        stat.peak = std::max(stat.peak, c.peak);
      } else {
        stat.value += c.sum;
        stat.peak = stat.value;
      }
      stat.samples += c.samples;
    }
  }
  for (auto& [key, stat] : span_agg) out.spans.push_back(std::move(stat));
  std::sort(out.spans.begin(), out.spans.end(),
            [](const SpanStat& a, const SpanStat& b) {
              return a.total_s > b.total_s;
            });
  for (auto& [name, stat] : counter_agg)
    out.counters.push_back(std::move(stat));
  return out;
}

std::string TraceScope::chrome_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(state_->mu);
  for (const auto& buf : state_->buffers) {
    for (const SpanEvent& e : buf->spans) {
      if (!first) os << ",";
      first = false;
      // Complete ("X") events, timestamps in microseconds relative to
      // scope activation.
      os << "\n{\"name\":\"" << json_escaped(e.name) << "\",\"cat\":\""
         << json_escaped(e.category) << "\",\"ph\":\"X\",\"ts\":"
         << util::format_fixed(
                1e-3 * static_cast<double>(e.start_ns - state_->epoch_ns), 3)
         << ",\"dur\":"
         << util::format_fixed(1e-3 * static_cast<double>(e.dur_ns), 3)
         << ",\"pid\":1,\"tid\":" << buf->tid << "}";
    }
  }
  // Final counter/gauge values as a single trailing "C" event each.
  for (const auto& buf : state_->buffers) {
    for (const CounterCell& c : buf->counters) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"" << json_escaped(c.name)
         << "\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":" << buf->tid
         << ",\"args\":{\"value\":" << c.sum << "}}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

void TraceScope::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return;  // tracing must never fail a run over an fs error
  out << chrome_json();
}

}  // namespace dlbench::runtime::trace

#endif  // DLB_TRACE_DISABLED
