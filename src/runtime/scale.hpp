#pragma once

// Workload scaling.
//
// The paper's full workloads are hours long (TF CIFAR-10 CPU: 60.88 h).
// Every experiment here honors a ScaleConfig that subsamples datasets
// and proportionally caps iteration counts while keeping code paths
// identical. The paper's findings are cross-framework comparisons at a
// fixed workload, which proportional scaling preserves.

#include <cstdint>

namespace dlbench::runtime {

/// Scaling knobs applied uniformly to all experiments in a run.
struct ScaleConfig {
  /// Multiplier on dataset sizes (train and test), in (0, 1].
  double data_fraction = 1.0;
  /// Multiplier on epoch counts, in (0, 1]. Iterations are recomputed
  /// from scaled epochs and scaled dataset size, exactly like the
  /// paper's #Epochs = max_steps * batch / #samples identity.
  double epoch_fraction = 1.0;
  /// Hard cap on total optimizer steps per training run (0 = no cap).
  std::int64_t max_step_cap = 0;

  /// Applies data_fraction, keeping at least `min_keep` samples.
  std::int64_t scale_samples(std::int64_t n, std::int64_t min_keep = 32) const;

  /// Applies epoch_fraction, keeping at least a fraction of an epoch.
  double scale_epochs(double epochs) const;

  /// Applies max_step_cap (identity when cap is 0).
  std::int64_t cap_steps(std::int64_t steps) const;

  /// Reads DLB_DATA_FRACTION / DLB_EPOCH_FRACTION / DLB_STEP_CAP from
  /// the environment, falling back to `fallback` for unset values.
  static ScaleConfig from_env(const ScaleConfig& fallback);

  /// Default scale for the bundled benches: small enough that the whole
  /// suite finishes in minutes on a laptop, large enough that every
  /// paper comparison keeps its shape.
  static ScaleConfig bench_default();

  /// Tiny scale for unit/integration tests.
  static ScaleConfig test_default();
};

}  // namespace dlbench::runtime
