#pragma once

// Fixed-size worker pool with a parallel_for primitive.
//
// This is the execution substrate behind the simulated "GPU" device:
// data-parallel kernels (matmul tiles, conv output rows, per-sample
// batch work) are sliced across the pool. A pool of size 1 executes
// inline on the calling thread, which is how the "CPU" device runs.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dlbench::runtime {

/// A fixed set of worker threads consuming a shared task queue.
/// Destruction joins all workers after draining outstanding tasks.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. 0 or 1 means "inline execution":
  /// no threads are spawned and submitted work runs on the caller.
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t size() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Runs fn(i) for i in [0, count), partitioned into contiguous chunks
  /// across the pool. Blocks until every index has been processed.
  /// Exceptions from fn propagate to the caller (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Like parallel_for but hands each worker a [begin, end) range, which
  /// avoids per-index std::function overhead in hot kernels.
  void parallel_for_ranges(
      std::size_t count,
      const std::function<void(std::size_t begin, std::size_t end)>& fn);

  /// Enqueues one task for the workers. On an inline pool (no workers)
  /// the task runs immediately on the calling thread — there is nobody
  /// else to run it, and parking it in the queue would leak it (or
  /// deadlock a caller waiting on its completion).
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool sized to the hardware concurrency; lazily created.
ThreadPool& global_pool();

}  // namespace dlbench::runtime
