#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "runtime/fault.hpp"
#include "runtime/trace.hpp"
#include "util/error.hpp"

namespace dlbench::runtime {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    fault::maybe_stall_worker();
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline pool: no worker will ever drain the queue, so enqueueing
    // here would strand the task forever. Run it on the caller, which
    // is the documented execution mode of a <=1-thread pool.
    trace::counter_add("pool.tasks", 1);
    task();
    return;
  }
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    depth = tasks_.size();
  }
  // Recorded from the submitting thread only: workers may still be
  // draining the queue after a TraceScope on the caller's side ends.
  trace::counter_add("pool.tasks", 1);
  trace::gauge_record("pool.queue_depth", static_cast<std::int64_t>(depth));
  cv_.notify_one();
}

void ThreadPool::parallel_for_ranges(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    fn(0, count);
    return;
  }
  const std::size_t n_chunks = std::min(count, workers_.size());
  const std::size_t chunk = (count + n_chunks - 1) / n_chunks;

  // Completion state lives behind done_mu: the counter must be
  // decremented under the lock, otherwise the waiter can observe zero
  // and destroy the mutex while the last worker is still locking it.
  std::exception_ptr first_error;
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t remaining = n_chunks;

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    submit([&, begin, end] {
      std::exception_ptr error;
      try {
        fn(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) done_cv.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_ranges(count, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& global_pool() {
  static ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace dlbench::runtime
