#pragma once

// Wall-clock timing for the training/testing time metrics.

#include <chrono>

namespace dlbench::runtime {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the clock.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dlbench::runtime
