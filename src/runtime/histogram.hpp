#pragma once

// Log-bucketed latency histogram.
//
// The serving subsystem's headline metric is the latency *distribution*
// — the paper's follow-up (DLaaS measurement study) shows p99/p999 tail
// latency, not mean throughput, dominates serving cost. A sorted vector
// of every sample would be exact but unbounded; this histogram is
// HdrHistogram-style instead: fixed memory (one int64 per bucket),
// O(1) record, exact counts with bounded relative value error per
// bucket, and merge() is exact (bucket-wise sum), so per-thread
// histograms can be combined into one distribution with no loss.
//
// Threading contract: a LatencyHistogram is NOT internally
// synchronized. Each recording thread owns its own instance; an
// aggregator merges them under external locking (ModelServer does
// exactly this per worker).

#include <cstdint>
#include <string>

namespace dlbench::runtime {

/// Fixed-size log-bucketed histogram of durations. Values are recorded
/// in nanoseconds; below kPrecisionBuckets they are exact, above they
/// land in buckets of relative width 1/32 (kMaxRelativeError).
class LatencyHistogram {
 public:
  /// Sub-bucket resolution: each power-of-two octave is split into
  /// 2^(kSubBits-1) buckets once values exceed 2^kSubBits ns.
  static constexpr int kSubBits = 6;
  static constexpr std::int64_t kHalf = std::int64_t{1} << (kSubBits - 1);
  /// Values below this many nanoseconds are bucketed exactly.
  static constexpr std::int64_t kPrecisionBuckets = std::int64_t{1}
                                                    << kSubBits;
  /// Upper bound on |estimate - true| / true for any percentile
  /// (bucket width / bucket lower bound = 1/kHalf; the reported value
  /// is the bucket midpoint, halving that again).
  static constexpr double kMaxRelativeError = 1.0 / static_cast<double>(kHalf);
  /// Bucket count covering the full int64 nanosecond range.
  static constexpr int kNumBuckets = (64 - kSubBits + 2) * kHalf;

  LatencyHistogram();

  /// Records one duration. Negative durations clamp to zero.
  void record_ns(std::int64_t ns);
  void record_s(double seconds);

  /// Adds every sample of `other` into this histogram. Exact: merging
  /// is commutative and associative (bucket-wise integer sums).
  void merge(const LatencyHistogram& other);

  /// Drops all samples.
  void reset();

  std::int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Min/max/mean of an empty histogram are NaN (see percentile).
  double min_s() const;
  double max_s() const;
  double mean_s() const;
  double total_s() const;

  /// Value at percentile `p` in [0, 100], seconds, within
  /// kMaxRelativeError of the exact order statistic (rank
  /// ceil(p/100 * count)). p <= 0 returns the exact minimum, p >= 100
  /// the exact maximum. An empty histogram (including one built only
  /// from empty merges) has no order statistics: every percentile —
  /// and min/max/mean — returns quiet NaN, one sentinel on every path,
  /// so a window where every request was shed can never masquerade as
  /// a 0 ns p99. JSON writers must map non-finite values to null
  /// (core::report does).
  double percentile(double p) const;

  /// "n=1234 mean=1.2ms p50=0.9ms p95=3.1ms p99=5.0ms p999=7.2ms
  ///  max=8.8ms" — all adaptive units.
  std::string summary() const;

  /// Exact state equality (bucket counts + min/max/sum/count); the
  /// merge-associativity tests rely on this being bitwise.
  bool operator==(const LatencyHistogram& other) const;
  bool operator!=(const LatencyHistogram& other) const {
    return !(*this == other);
  }

 private:
  static int bucket_index(std::int64_t ns);
  /// Midpoint of the value range covered by bucket `index`, ns.
  static std::int64_t bucket_mid_ns(int index);

  std::int64_t buckets_[kNumBuckets];
  std::int64_t count_ = 0;
  std::int64_t min_ns_ = 0;
  std::int64_t max_ns_ = 0;
  /// Exact integer sum, so merged totals are order-independent.
  std::int64_t sum_ns_ = 0;
};

}  // namespace dlbench::runtime
