#pragma once

// Low-overhead tracing and metrics.
//
// The paper's contribution is measurement, so the harness must be able
// to say *where* a cell's wall clock went — per layer, per kernel, per
// training phase — not just how long the cell took. This module
// provides RAII scoped spans recorded into thread-local buffers, plus
// monotonic counters and gauges (tensor allocations, pool queue depth),
// aggregated by an active TraceScope and exportable as a
// chrome://tracing JSON file or a plain-text summary table.
//
// The design mirrors runtime/fault: a TraceScope (RAII, at most one
// active) installs shared state behind a single atomic pointer, and
// every instrumentation point costs one relaxed atomic load when no
// scope is active. Building with -DDLBENCH_TRACE=OFF (which defines
// DLB_TRACE_DISABLED) compiles the instrumentation out entirely.
//
// Threading contract, same as FaultScope: events may be recorded from
// pool workers, but the scope owner must not destroy the scope (or call
// report()) while instrumented work is in flight. All instrumented
// paths run inside parallel_for extents or on the owner thread, so the
// contract holds by construction in this codebase.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dlbench::runtime::trace {

/// Knobs for one tracing session.
struct TraceOptions {
  /// True when tracing was requested (from_env: DLB_TRACE=1).
  bool armed = true;
  /// chrome://tracing JSON written on scope destruction; "" = none.
  std::string out_path;
  /// Print the summary table to stdout on scope destruction.
  bool print_summary = false;
  /// Per-thread span-event capacity; further events are counted as
  /// dropped instead of growing without bound.
  std::int64_t max_events_per_thread = 1 << 20;

  /// Reads DLB_TRACE (arm), DLB_TRACE_OUT (chrome JSON path),
  /// DLB_TRACE_SUMMARY (print table) and DLB_TRACE_EVENT_CAP.
  static TraceOptions from_env();
};

/// Aggregated statistics for one span name.
struct SpanStat {
  std::string name;
  std::string category;
  std::int64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
};

/// Final value of one counter or gauge.
struct CounterStat {
  std::string name;
  /// Sum of deltas (counters) or last recorded value (gauges).
  std::int64_t value = 0;
  /// Peak value observed (gauges; equals `value` for counters).
  std::int64_t peak = 0;
  std::int64_t samples = 0;
};

/// A detachable aggregation of everything a scope recorded. Embeddable
/// in RunRecord so metric summaries travel with measurements.
struct TraceReport {
  std::vector<SpanStat> spans;        // sorted by total_s, descending
  std::vector<CounterStat> counters;  // sorted by name
  std::int64_t dropped_events = 0;

  bool empty() const { return spans.empty() && counters.empty(); }
  /// Total seconds across spans with the given name ("" = none found).
  double total_for(const std::string& name) const;
  /// Total seconds across every span in the given category.
  double category_total(const std::string& category) const;
  /// Two ASCII tables: spans and counters.
  std::string summary_table() const;
};

#ifndef DLB_TRACE_DISABLED

/// True when tracing support is compiled in.
constexpr bool compiled() { return true; }

/// RAII activation of tracing. At most one scope is active (nesting
/// throws). Destruction deactivates, writes options.out_path (if set),
/// and prints the summary (if requested).
class TraceScope {
 public:
  explicit TraceScope(TraceOptions options = TraceOptions{});
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

  /// Aggregates everything recorded so far. Call only while no
  /// instrumented work is in flight.
  TraceReport report() const;

  /// Serializes recorded events in chrome://tracing "traceEvents"
  /// format (open via chrome://tracing or https://ui.perfetto.dev).
  std::string chrome_json() const;
  void write_chrome_json(const std::string& path) const;

  /// Opaque shared state; defined in trace.cpp.
  struct State;

 private:
  std::shared_ptr<State> state_;
};

namespace detail {
/// The active scope's State, published by TraceScope. Exposed only so
/// the fast-path checks below can inline down to one atomic load —
/// instrumented kernels sit inside GEMM inner functions where even an
/// out-of-line call per invocation shows up in the disarmed build.
extern std::atomic<void*> g_active;

std::int64_t clock_now_ns();
}  // namespace detail

/// True when a TraceScope is active (one atomic load, inlined).
inline bool enabled() {
  return detail::g_active.load(std::memory_order_acquire) != nullptr;
}

/// Interns `name` into a process-lifetime pool and returns a stable
/// C string usable as a Span name (span events store raw pointers, so
/// dynamic names must outlive the scope; interning guarantees that).
const char* intern(const std::string& name);

/// RAII scoped span: records [construction, destruction) under `name`.
/// `name` and `category` must be string literals or interned strings.
/// A null `name` or inactive tracing makes the span a no-op.
class Span {
 public:
  Span(const char* name, const char* category)
      : name_(name), category_(category), start_ns_(-1) {
    // Disarmed fast path: one inlined atomic load, no call.
    if (name != nullptr && enabled()) start_ns_ = detail::clock_now_ns();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (start_ns_ >= 0) record();
  }

 private:
  /// Slow path: appends the finished event to the thread's buffer.
  void record();

  const char* name_;
  const char* category_;
  std::int64_t start_ns_;  // < 0 when inactive
};

namespace detail {
void counter_add_slow(const char* name, std::int64_t delta);
void gauge_record_slow(const char* name, std::int64_t value);
void record_span_slow(const char* name, const char* category,
                      std::int64_t start_ns, std::int64_t end_ns);
}  // namespace detail

/// Current value of the trace clock, for record_span(). Valid whether
/// or not a scope is active.
inline std::int64_t clock_ns() { return detail::clock_now_ns(); }

/// Records a completed span with explicit endpoints (clock_ns() values).
/// This is how cross-thread waits are traced: the serving layer stamps
/// a request at enqueue on the client thread and emits the
/// "serve.enqueue_wait" span from the worker that dequeued it — an RAII
/// Span cannot straddle threads. Spans starting before the active
/// scope did are dropped, matching Span::record().
inline void record_span(const char* name, const char* category,
                        std::int64_t start_ns, std::int64_t end_ns) {
  if (enabled()) detail::record_span_slow(name, category, start_ns, end_ns);
}

/// Adds `delta` to the named monotonic counter.
inline void counter_add(const char* name, std::int64_t delta) {
  if (enabled()) detail::counter_add_slow(name, delta);
}

/// Records an instantaneous gauge sample (reported as last + peak).
inline void gauge_record(const char* name, std::int64_t value) {
  if (enabled()) detail::gauge_record_slow(name, value);
}

#else  // DLB_TRACE_DISABLED: every entry point collapses to a no-op.

constexpr bool compiled() { return false; }

class TraceScope {
 public:
  explicit TraceScope(TraceOptions options = TraceOptions{}) {
    (void)options;
  }
  TraceReport report() const { return TraceReport{}; }
  std::string chrome_json() const { return "{\"traceEvents\":[]}\n"; }
  void write_chrome_json(const std::string&) const {}
};

inline bool enabled() { return false; }
inline const char* intern(const std::string&) { return ""; }
inline std::int64_t clock_ns() { return 0; }
inline void record_span(const char*, const char*, std::int64_t,
                        std::int64_t) {}

class Span {
 public:
  Span(const char*, const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

inline void counter_add(const char*, std::int64_t) {}
inline void gauge_record(const char*, std::int64_t) {}

#endif  // DLB_TRACE_DISABLED

// Span names used by the instrumented hot paths, collected here so
// tooling and tests agree on the taxonomy:
//   layer   fwd/<layer>, bwd/<layer>, fwd/loss-head, bwd/loss-head
//   kernel  matmul, matmul_tn, matmul_nt, conv2d_fwd, conv2d_bwd
//   optim   optim.step
//   train   train.step, train.snapshot
//   data    data.next_batch
//   eval    eval.batch
//   io      checkpoint.save, checkpoint.load
//   serve   serve.enqueue_wait, serve.assemble, serve.forward,
//           serve.scatter
// Counters: tensor.allocs, tensor.bytes, pool.tasks, optim.steps,
// train.rollbacks, serve.requests, serve.rejected, serve.batches.
// Gauges: pool.queue_depth, serve.queue_depth.

}  // namespace dlbench::runtime::trace
