#pragma once

// Device model: the paper benchmarks every framework on CPU and on a
// GTX 1080 Ti GPU. Offline we substitute an execution-model device:
//
//   * Device::cpu()  — kernels run serially on the calling thread,
//     mirroring the single-stream CPU runs in the paper.
//   * Device::gpu()  — kernels are data-parallel across a thread pool
//     sized to all hardware cores, mirroring the massively parallel
//     GPU runs. Relative speedups (GPU/CPU ratio per framework) are the
//     reproduced quantity; absolute speedup is bounded by core count.
//
// Kernels in dlb_tensor take a `const Device&` and call
// device.parallel_for(...) so the same code path serves both devices.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "runtime/thread_pool.hpp"

namespace dlbench::runtime {

/// Instruction-set capabilities of the host CPU, probed once at startup.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// Host CPU features (cached; safe to call from any thread).
const CpuFeatures& cpu_features();

/// Which kernel implementation tier the tensor library dispatches to.
/// Each SIMD tier requires both compiler support (its translation unit
/// was built) and runtime support (cpuid reports the features); kScalar
/// is the portable fallback and is always available. Ordered: a higher
/// enumerator strictly implies the lower tiers' features.
enum class SimdLevel { kScalar, kAvx2Fma, kAvx512F };

/// The dispatch decision: the highest level both built and supported,
/// overridable with DLB_SIMD=scalar|avx2|avx512|auto (default auto; a
/// request cannot raise the level above what build+CPU support, and
/// "avx2" caps an AVX-512 host at the AVX2 tier). Resolved once on
/// first call and cached.
SimdLevel active_simd_level();

/// "scalar", "avx2+fma" or "avx512f" — for logs, benches and reports.
const char* simd_level_name(SimdLevel level);

/// Where/how tensor kernels execute. Value-semantic handle; cheap to copy.
class Device {
 public:
  enum class Kind { kCpu, kGpu };

  /// Serial device (paper's "CPU" runs).
  static Device cpu();

  /// Parallel device over all hardware cores (paper's "GPU" runs).
  static Device gpu();

  /// Parallel device with an explicit worker count (tests/ablation).
  static Device parallel(std::size_t workers);

  Kind kind() const { return kind_; }
  std::string name() const { return kind_ == Kind::kCpu ? "CPU" : "GPU"; }
  bool is_parallel() const { return pool_ != nullptr; }
  std::size_t workers() const { return pool_ ? pool_->size() : 1; }

  /// Runs fn over [0, count): serially on CPU, chunked across the pool
  /// on GPU. `grain` is the minimum work per chunk; counts below it run
  /// inline even on the parallel device (kernel-launch economics).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1) const;

 private:
  Device(Kind kind, std::shared_ptr<ThreadPool> pool)
      : kind_(kind), pool_(std::move(pool)) {}

  Kind kind_;
  std::shared_ptr<ThreadPool> pool_;  // null → serial
};

}  // namespace dlbench::runtime
