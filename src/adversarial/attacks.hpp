#pragma once

// Adversarial example crafting — the paper's fourth metric family.
//
// Two attacks, exactly the ones in §II-C:
//  * FGSM (Goodfellow et al.): untargeted, x' = x + eps*sign(dL/dx).
//    Exposed both as the paper's one-shot formula and as the iterated
//    variant (apply-until-misclassified) used for the Fig 8 sweeps.
//  * JSMA (Papernot et al.): targeted. Builds the logit Jacobian by
//    backpropagating each class seed through the model, scores input
//    features with the saliency map of the paper's Equation (2), and
//    perturbs the highest-saliency feature per iteration.

#include <array>
#include <cstdint>
#include <vector>

#include "adversarial/engine.hpp"
#include "data/dataset.hpp"
#include "nn/sequential.hpp"

namespace dlbench::adversarial {

using nn::Context;
using nn::Sequential;
using tensor::Tensor;

/// Result of attacking one sample.
struct AttackOutcome {
  bool success = false;
  std::int64_t source_class = -1;
  std::int64_t final_class = -1;
  int iterations = 0;
  double craft_time_s = 0.0;
  double distortion_l0 = 0.0;  // fraction of features changed
  Tensor adversarial_example;  // [1, C, H, W]
};

struct FgsmOptions {
  /// Paper §III-E sets eps = 0.001.
  float epsilon = 0.001f;
  /// 1 reproduces the one-shot formula; >1 iterates (BIM) until the
  /// prediction flips or the budget is exhausted.
  int max_iterations = 1;
  /// Keep pixels in [0, 1].
  bool clip = true;
};

/// Untargeted FGSM on a single sample with true label `label`.
AttackOutcome fgsm_attack(Sequential& model, const Tensor& x,
                          std::int64_t label, const FgsmOptions& options,
                          const Context& ctx);

struct NoiseOptions {
  /// Per-trial L-inf noise magnitude.
  float epsilon = 0.02f;
  /// Number of independent noise draws before giving up.
  int max_trials = 50;
  std::uint64_t seed = 7;
  bool clip = true;
};

/// Random (untargeted) perturbation baseline — the paper's "random
/// (untargeted) attacks" control: draws i.i.d. U(-eps, +eps) noise
/// until the prediction flips or trials run out. Gradient-based FGSM
/// should beat this decisively at equal epsilon.
AttackOutcome random_noise_attack(Sequential& model, const Tensor& x,
                                  std::int64_t label,
                                  const NoiseOptions& options,
                                  const Context& ctx);

struct JsmaOptions {
  /// Per-step feature increment (clipped into [0,1]).
  float theta = 0.5f;
  /// Stop after perturbing this fraction of input features.
  double max_distortion = 0.12;
  /// Number of classes the Jacobian spans. 0 derives it from the
  /// model's logit width; a nonzero value is validated against it
  /// (sweeps set this from the dataset's num_classes).
  std::int64_t classes = 0;
};

/// Targeted JSMA: perturbs `x` until the model classifies it as
/// `target` or the distortion budget runs out.
AttackOutcome jsma_attack(Sequential& model, const Tensor& x,
                          std::int64_t target, const JsmaOptions& options,
                          const Context& ctx);

/// Logit Jacobian at x: row j holds d logit_j / d x (flattened input).
/// One forward pass plus `classes` backward passes.
Tensor logit_jacobian(Sequential& model, const Tensor& x,
                      std::int64_t classes, const Context& ctx);

// ---- sweeps over a dataset ----
//
// Both sweeps run in two phases. Screening (serial, timed as
// timing.screening_s) selects the victims with a frozen inference view
// of the model — bitwise-identical to eval-mode forward, and it leaves
// the model untouched. Crafting fans the selected attack units across
// `threads` workers via the crafting engine (engine.hpp), each with
// its own deep-copied model replica; per-unit outcomes are reduced in
// unit-index order afterwards, so every tally below is
// bitwise-identical at any thread count.

/// Fig 8: per-source-digit untargeted success rates and the matrix of
/// destination classes adversarial examples fall into.
struct UntargetedSweep {
  std::array<double, 10> success_rate{};             // per source class
  std::array<std::array<std::int64_t, 10>, 10> destination_counts{};
  std::array<std::int64_t, 10> attempts{};
  std::int64_t total_attacks = 0;
  std::int64_t total_successes = 0;
  /// Sum of per-attack gradient iterations (deterministic work proxy).
  std::int64_t total_iterations = 0;
  /// Screening vs crafting wall clock + per-attack craft-time
  /// distribution. Screening predictions used to be folded into the
  /// sweep's total time, inflating the paper's crafting-time metric.
  CraftTiming timing;
};
UntargetedSweep fgsm_sweep(const Sequential& model, const data::Dataset& data,
                           const FgsmOptions& options, const Context& ctx,
                           std::int64_t max_per_class, int threads = 1);

/// Fig 9 / Tables VIII–IX: success rate of crafting `source_class`
/// into every other class, plus mean crafting time.
struct TargetedSweep {
  std::array<double, 10> success_rate{};  // index = target class
  std::array<std::int64_t, 10> attempts{};
  double mean_craft_time_s = 0.0;
  std::int64_t total_attacks = 0;
  std::int64_t total_successes = 0;
  /// Sum of per-attack perturbation iterations.
  std::int64_t total_iterations = 0;
  CraftTiming timing;
};
TargetedSweep jsma_sweep(const Sequential& model, const data::Dataset& data,
                         std::int64_t source_class, const JsmaOptions& options,
                         const Context& ctx, std::int64_t samples_per_target,
                         int threads = 1);

}  // namespace dlbench::adversarial
