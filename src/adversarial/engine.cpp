#include "adversarial/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "runtime/stopwatch.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trace.hpp"
#include "util/error.hpp"

namespace dlbench::adversarial {

namespace {

using runtime::trace::Span;

/// One worker's share of a sweep: clone the model once, then walk the
/// strided unit set. The replica clone happens *inside* the worker task
/// so replicas materialize concurrently and on the thread that uses
/// them.
void run_worker(const nn::Sequential& model, const nn::Context& ctx,
                std::int64_t unit_count, std::int64_t worker,
                std::int64_t stride,
                const std::function<double(nn::Sequential&, const nn::Context&,
                                           std::int64_t)>& attack,
                runtime::LatencyHistogram& craft_time) {
  nn::Sequential replica;
  {
    Span span("attack/replicate", "attack");
    replica = model.clone();
  }
  for (std::int64_t unit = worker; unit < unit_count; unit += stride) {
    Span span("attack/unit", "attack");
    const double craft_s = attack(replica, ctx, unit);
    craft_time.record_s(craft_s);
    runtime::trace::counter_add("attack.units", 1);
  }
}

}  // namespace

CraftTiming craft_units(
    const nn::Sequential& model, const nn::Context& ctx,
    std::int64_t unit_count, int threads,
    const std::function<double(nn::Sequential& replica, const nn::Context& ctx,
                               std::int64_t unit)>& attack) {
  DLB_CHECK(unit_count >= 0, "negative unit count");
  CraftTiming timing;
  const std::int64_t n_workers = std::max<std::int64_t>(
      1, std::min<std::int64_t>(threads, std::max<std::int64_t>(1, unit_count)));
  timing.threads = static_cast<int>(n_workers);
  if (unit_count == 0) return timing;

  // Units run with a serial device regardless of what the caller's
  // context says: see the determinism contract in engine.hpp.
  nn::Context unit_ctx = ctx;
  unit_ctx.device = runtime::Device::cpu();
  unit_ctx.training = false;

  runtime::Stopwatch clock;
  std::vector<runtime::LatencyHistogram> histograms(
      static_cast<std::size_t>(n_workers));

  if (n_workers == 1) {
    run_worker(model, unit_ctx, unit_count, 0, 1, attack, histograms[0]);
  } else {
    // Completion latch, mirroring ThreadPool::parallel_for_ranges: the
    // counter is decremented under the lock so the waiter cannot
    // observe zero and destroy the mutex while a worker still holds it.
    std::exception_ptr first_error;
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::int64_t remaining = n_workers;
    runtime::ThreadPool& pool = runtime::global_pool();
    for (std::int64_t w = 0; w < n_workers; ++w) {
      pool.submit([&, w] {
        std::exception_ptr error;
        try {
          run_worker(model, unit_ctx, unit_count, w, n_workers, attack,
                     histograms[static_cast<std::size_t>(w)]);
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(done_mu);
        if (error && !first_error) first_error = error;
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
    if (first_error) std::rethrow_exception(first_error);
  }

  timing.craft_wall_s = clock.seconds();
  // Worker-index order; exact bucket-wise sums make the result
  // order-independent anyway.
  for (const auto& h : histograms) timing.craft_time.merge(h);
  return timing;
}

}  // namespace dlbench::adversarial
