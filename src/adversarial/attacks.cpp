#include "adversarial/attacks.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "adversarial/engine.hpp"
#include "nn/frozen.hpp"
#include "runtime/stopwatch.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::adversarial {

namespace {

std::int64_t predict_one(Sequential& model, const Tensor& x,
                         const Context& ctx) {
  Context eval = ctx;
  eval.training = false;
  Tensor logits = model.forward(x, eval);
  return tensor::argmax_row(logits, 0);
}

double l0_distortion(const Tensor& a, const Tensor& b) {
  std::int64_t changed = 0;
  const float* pa = a.raw();
  const float* pb = b.raw();
  for (std::int64_t i = 0; i < a.numel(); ++i)
    if (pa[i] != pb[i]) ++changed;
  return static_cast<double>(changed) / static_cast<double>(a.numel());
}

}  // namespace

AttackOutcome fgsm_attack(Sequential& model, const Tensor& x,
                          std::int64_t label, const FgsmOptions& options,
                          const Context& ctx) {
  DLB_CHECK(x.shape().rank() == 4 && x.dim(0) == 1,
            "attack expects a single [1, C, H, W] sample");
  DLB_CHECK(options.epsilon > 0.f, "epsilon must be positive");
  DLB_CHECK(options.max_iterations >= 1, "need at least one iteration");

  Context eval = ctx;
  eval.training = false;  // gradients w.r.t. the *deployed* model

  AttackOutcome outcome;
  outcome.source_class = label;
  runtime::Stopwatch clock;

  Tensor adv = x.clone();
  const std::vector<std::int64_t> labels{label};
  for (int it = 0; it < options.max_iterations; ++it) {
    nn::LossResult loss = model.forward_loss(adv, labels, eval);
    model.zero_grads();
    Tensor dx = model.backward(loss, labels, eval);
    Tensor step = tensor::sign(dx, eval.device);
    tensor::axpy_inplace(adv, options.epsilon, step, eval.device);
    if (options.clip) adv = tensor::clamp(adv, 0.f, 1.f, eval.device);
    outcome.iterations = it + 1;

    const std::int64_t pred = predict_one(model, adv, eval);
    if (pred != label) {
      outcome.success = true;
      outcome.final_class = pred;
      break;
    }
    outcome.final_class = pred;
  }
  outcome.craft_time_s = clock.seconds();
  outcome.distortion_l0 = l0_distortion(x, adv);
  outcome.adversarial_example = adv;
  return outcome;
}

AttackOutcome random_noise_attack(Sequential& model, const Tensor& x,
                                  std::int64_t label,
                                  const NoiseOptions& options,
                                  const Context& ctx) {
  DLB_CHECK(x.shape().rank() == 4 && x.dim(0) == 1,
            "attack expects a single [1, C, H, W] sample");
  DLB_CHECK(options.epsilon > 0.f, "epsilon must be positive");
  DLB_CHECK(options.max_trials >= 1, "need at least one trial");

  Context eval = ctx;
  eval.training = false;
  util::Rng rng(options.seed);

  AttackOutcome outcome;
  outcome.source_class = label;
  runtime::Stopwatch clock;

  Tensor best = x.clone();
  for (int trial = 0; trial < options.max_trials; ++trial) {
    Tensor candidate = x.clone();
    float* pc = candidate.raw();
    for (std::int64_t i = 0; i < candidate.numel(); ++i)
      pc[i] += static_cast<float>(
          rng.uniform(-options.epsilon, options.epsilon));
    if (options.clip) candidate = tensor::clamp(candidate, 0.f, 1.f,
                                                eval.device);
    outcome.iterations = trial + 1;
    const std::int64_t pred = predict_one(model, candidate, eval);
    outcome.final_class = pred;
    best = candidate;
    if (pred != label) {
      outcome.success = true;
      break;
    }
  }
  outcome.craft_time_s = clock.seconds();
  outcome.distortion_l0 = l0_distortion(x, best);
  outcome.adversarial_example = best;
  return outcome;
}

Tensor logit_jacobian(Sequential& model, const Tensor& x,
                      std::int64_t classes, const Context& ctx) {
  DLB_CHECK(x.shape().rank() == 4 && x.dim(0) == 1,
            "jacobian expects a single sample");
  Context eval = ctx;
  eval.training = false;

  // One forward pass caches activations; each class seed then
  // backpropagates through the same cache.
  (void)model.forward(x, eval);
  const std::int64_t d = x.numel();
  Tensor jacobian({classes, d});
  for (std::int64_t j = 0; j < classes; ++j) {
    Tensor seed({std::int64_t{1}, classes});
    seed.raw()[j] = 1.f;
    model.zero_grads();
    Tensor dx = model.backward_from_logits(seed, eval);
    std::memcpy(jacobian.raw() + j * d, dx.raw(),
                static_cast<std::size_t>(d) * sizeof(float));
  }
  return jacobian;
}

AttackOutcome jsma_attack(Sequential& model, const Tensor& x,
                          std::int64_t target, const JsmaOptions& options,
                          const Context& ctx) {
  DLB_CHECK(x.shape().rank() == 4 && x.dim(0) == 1,
            "attack expects a single [1, C, H, W] sample");
  DLB_CHECK(options.theta > 0.f, "theta must be positive");

  Context eval = ctx;
  eval.training = false;

  AttackOutcome outcome;
  runtime::Stopwatch clock;

  Tensor adv = x.clone();
  const std::int64_t d = adv.numel();
  const int max_iterations = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(options.max_distortion *
                                   static_cast<double>(d)));

  // The Jacobian spans the model's logits; a caller-provided class
  // count (e.g. the dataset's) must agree with what the model emits —
  // a silent mismatch would read garbage rows or truncate the
  // "other-class mass" term of the saliency map.
  Tensor logits = model.forward(adv, eval);
  const std::int64_t logit_width = logits.dim(logits.shape().rank() - 1);
  const std::int64_t classes =
      options.classes > 0 ? options.classes : logit_width;
  DLB_CHECK(classes == logit_width,
            "JsmaOptions.classes=" << classes << " but the model emits "
                                   << logit_width << " logits");
  DLB_CHECK(target >= 0 && target < classes,
            "JSMA target " << target << " out of range [0, " << classes
                           << ")");
  outcome.source_class = tensor::argmax_row(logits, 0);
  if (outcome.source_class == target) {
    // Already the target class; trivially successful, zero distortion.
    outcome.success = true;
    outcome.final_class = target;
    outcome.adversarial_example = adv;
    outcome.craft_time_s = clock.seconds();
    return outcome;
  }

  for (int it = 0; it < max_iterations; ++it) {
    Tensor jac = logit_jacobian(model, adv, classes, eval);
    const float* J = jac.raw();
    float* px = adv.raw();

    // Saliency map, Equation (2): reject features whose target
    // derivative is negative or whose other-class mass increases;
    // score the rest by dF_t/dx_i * |sum_{j != t} dF_j/dx_i|.
    std::int64_t best = -1;
    float best_score = 0.f;
    for (std::int64_t i = 0; i < d; ++i) {
      if (px[i] >= 1.f) continue;  // saturated, cannot increase
      const float alpha = J[target * d + i];
      float others = 0.f;
      for (std::int64_t j = 0; j < classes; ++j)
        if (j != target) others += J[j * d + i];
      if (alpha < 0.f || others > 0.f) continue;
      const float score = alpha * std::fabs(others);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best < 0) break;  // saliency map exhausted

    px[best] = std::min(1.f, px[best] + options.theta);
    outcome.iterations = it + 1;

    const std::int64_t pred = predict_one(model, adv, eval);
    outcome.final_class = pred;
    if (pred == target) {
      outcome.success = true;
      break;
    }
  }
  outcome.craft_time_s = clock.seconds();
  outcome.distortion_l0 = l0_distortion(x, adv);
  outcome.adversarial_example = adv;
  return outcome;
}

UntargetedSweep fgsm_sweep(const Sequential& model, const data::Dataset& data,
                           const FgsmOptions& options, const Context& ctx,
                           std::int64_t max_per_class, int threads) {
  DLB_CHECK(data.num_classes == 10, "sweeps assume 10 classes");
  UntargetedSweep sweep;

  // Phase 1 — screening (victim selection), timed separately from
  // crafting: attack only samples the model classifies correctly, as
  // in the paper (success rate measures crafting, not model error).
  // A frozen view keeps the caller's model untouched and is
  // bitwise-identical to eval-mode forward.
  runtime::Stopwatch screen_clock;
  const nn::FrozenModel frozen = nn::FrozenModel::freeze(model);
  struct Unit {
    std::int64_t sample;
    std::int64_t label;
  };
  std::vector<Unit> units;
  for (std::int64_t i = 0; i < data.size(); ++i) {
    const std::int64_t label = data.labels[static_cast<std::size_t>(i)];
    const auto cls = static_cast<std::size_t>(label);
    if (sweep.attempts[cls] >= max_per_class) continue;
    Tensor x = data.sample(i);
    if (frozen.predict(x, ctx.device)[0] != label) continue;
    ++sweep.attempts[cls];
    units.push_back({i, label});
  }
  sweep.total_attacks = static_cast<std::int64_t>(units.size());
  const double screening_s = screen_clock.seconds();

  // Phase 2 — crafting, fanned across the engine. Each unit writes
  // only its own slot; tallies are reduced in unit-index order below,
  // so the tables are bitwise-identical at any thread count.
  struct Slot {
    bool success = false;
    std::int64_t final_class = -1;
    int iterations = 0;
  };
  std::vector<Slot> slots(units.size());
  CraftTiming craft = craft_units(
      model, ctx, static_cast<std::int64_t>(units.size()), threads,
      [&](Sequential& replica, const Context& unit_ctx, std::int64_t u) {
        const auto i = static_cast<std::size_t>(u);
        Tensor x = data.sample(units[i].sample);
        AttackOutcome out =
            fgsm_attack(replica, x, units[i].label, options, unit_ctx);
        slots[i] = {out.success, out.final_class, out.iterations};
        return out.craft_time_s;
      });
  craft.screening_s = screening_s;
  sweep.timing = std::move(craft);

  std::array<std::int64_t, 10> successes{};
  for (std::size_t u = 0; u < units.size(); ++u) {
    const auto cls = static_cast<std::size_t>(units[u].label);
    sweep.total_iterations += slots[u].iterations;
    if (slots[u].success) {
      ++successes[cls];
      ++sweep.total_successes;
      ++sweep.destination_counts[cls]
            [static_cast<std::size_t>(slots[u].final_class)];
    }
  }
  for (std::size_t c = 0; c < 10; ++c)
    sweep.success_rate[c] =
        sweep.attempts[c] == 0
            ? 0.0
            : static_cast<double>(successes[c]) /
                  static_cast<double>(sweep.attempts[c]);
  return sweep;
}

TargetedSweep jsma_sweep(const Sequential& model, const data::Dataset& data,
                         std::int64_t source_class, const JsmaOptions& options,
                         const Context& ctx, std::int64_t samples_per_target,
                         int threads) {
  DLB_CHECK(data.num_classes == 10, "sweeps assume 10 classes");
  TargetedSweep sweep;
  JsmaOptions unit_options = options;
  if (unit_options.classes == 0) unit_options.classes = data.num_classes;

  // Phase 1 — screening: collect correctly-classified source samples
  // once (frozen view; timed separately from crafting).
  runtime::Stopwatch screen_clock;
  const nn::FrozenModel frozen = nn::FrozenModel::freeze(model);
  std::vector<std::int64_t> sources;
  for (std::int64_t i = 0; i < data.size() &&
                           static_cast<std::int64_t>(sources.size()) <
                               samples_per_target;
       ++i) {
    if (data.labels[static_cast<std::size_t>(i)] != source_class) continue;
    Tensor x = data.sample(i);
    if (frozen.predict(x, ctx.device)[0] == source_class) sources.push_back(i);
  }
  const double screening_s = screen_clock.seconds();

  // Phase 2 — crafting. Unit order preserves the serial sweep's
  // enumeration: targets ascending, sources inside each target.
  struct Unit {
    std::int64_t target;
    std::int64_t sample;
  };
  std::vector<Unit> units;
  units.reserve(static_cast<std::size_t>(9) * sources.size());
  for (std::int64_t target = 0; target < 10; ++target) {
    if (target == source_class) continue;
    for (std::int64_t idx : sources) units.push_back({target, idx});
  }

  struct Slot {
    bool success = false;
    int iterations = 0;
  };
  std::vector<Slot> slots(units.size());
  CraftTiming craft = craft_units(
      model, ctx, static_cast<std::int64_t>(units.size()), threads,
      [&](Sequential& replica, const Context& unit_ctx, std::int64_t u) {
        const auto i = static_cast<std::size_t>(u);
        Tensor x = data.sample(units[i].sample);
        AttackOutcome out =
            jsma_attack(replica, x, units[i].target, unit_options, unit_ctx);
        slots[i] = {out.success, out.iterations};
        return out.craft_time_s;
      });
  craft.screening_s = screening_s;
  sweep.timing = std::move(craft);

  std::array<std::int64_t, 10> successes{};
  for (std::size_t u = 0; u < units.size(); ++u) {
    const auto t = static_cast<std::size_t>(units[u].target);
    ++sweep.attempts[t];
    ++sweep.total_attacks;
    sweep.total_iterations += slots[u].iterations;
    if (slots[u].success) {
      ++successes[t];
      ++sweep.total_successes;
    }
  }
  for (std::size_t t = 0; t < 10; ++t)
    sweep.success_rate[t] =
        sweep.attempts[t] == 0
            ? 0.0
            : static_cast<double>(successes[t]) /
                  static_cast<double>(sweep.attempts[t]);
  // Exact: the histogram keeps an integer nanosecond sum, so the mean
  // does not drift with merge order.
  sweep.mean_craft_time_s =
      sweep.total_attacks == 0 ? 0.0 : sweep.timing.craft_time.mean_s();
  return sweep;
}

}  // namespace dlbench::adversarial
