#pragma once

// Parallel adversarial crafting engine.
//
// The paper's fourth metric family (adversarial success rate and
// crafting time, Tables VIII–IX and Figs. 8–9) decomposes into
// independent *attack units*: one sample×attack for untargeted FGSM,
// one sample×target for targeted JSMA. Units never share state — each
// attack reads one set of weights and mutates only its own input copy —
// so the engine fans them across runtime::global_pool() workers.
//
// A Sequential is a training object: every layer caches activations in
// forward() for the following backward(), so two threads cannot share
// one. Attacks need gradients (FGSM differentiates the loss, JSMA the
// logit Jacobian), so the frozen inference views used by serve/ are not
// enough here; instead each worker receives its own deep-copied replica
// (Sequential::clone — same weights, private caches), mirroring the
// FrozenModel replica pattern from serve/ for mutable models. Replica
// memory cost is one full parameter+gradient set per worker (see
// DESIGN.md §12), negligible next to the Jacobian work per unit.
//
// Determinism contract: parallel sweeps produce **bitwise-identical**
// result tables to serial at any thread count. Three mechanisms:
//   1. Units are deterministic: FGSM/JSMA draw no random numbers, and
//      every unit executes with a *serial* per-worker device
//      (Device::cpu()), so float summation order inside a unit never
//      depends on the engine's thread count. (Batch-1 attack kernels
//      are below the parallel grain anyway — unit-level fan-out is the
//      productive axis, and it sidesteps pool re-entrancy: a unit that
//      re-submitted kernel chunks to the pool its own task runs on
//      could deadlock with every worker blocked on a child chunk.)
//   2. Unit results land in a caller-owned per-unit slot (one writer
//      each); all cross-unit aggregation happens after the join, in
//      unit-index order, on the calling thread.
//   3. Craft-time histograms are per-worker and merged in worker-index
//      order; LatencyHistogram::merge is exact (bucket-wise integer
//      sums), so the merged *count* structure is order-independent.
//      Recorded durations are wall-clock and naturally vary run to run
//      — timing is measurement output, never an input to the tables.

#include <cstdint>
#include <functional>

#include "nn/sequential.hpp"
#include "runtime/histogram.hpp"

namespace dlbench::adversarial {

/// Where a sweep's wall clock went, with screening and crafting
/// reported separately: screening predictions (discarding samples the
/// model already misclassifies) are victim *selection*, not crafting,
/// and folding them into crafting time inflated the paper's Table VIII
/// metric.
struct CraftTiming {
  /// Wall clock of the victim-screening predictions.
  double screening_s = 0.0;
  /// Wall clock of the parallel crafting phase (dispatch to join).
  double craft_wall_s = 0.0;
  /// Worker threads the crafting phase ran with.
  int threads = 1;
  /// Per-attack crafting times across all units (p50/p95/p99 via
  /// percentile()); exact merge of the per-worker histograms.
  runtime::LatencyHistogram craft_time;
};

/// Runs `attack(replica, ctx, unit)` for every unit in [0, unit_count)
/// across `threads` workers fanned over runtime::global_pool(). Worker
/// w owns a private clone of `model` and processes units w, w+T,
/// w+2T, … — assignment is load-balancing only; nothing about the
/// results may depend on it (see determinism contract above). `ctx` is
/// forwarded to the attack with its device replaced by the serial
/// device. The double returned by `attack` is that unit's crafting
/// time in seconds, recorded into the per-worker histogram. Exceptions
/// from units propagate to the caller after all workers join (first
/// one wins). `threads <= 1` runs every unit on the calling thread
/// through the identical replica path.
///
/// Returns craft_wall_s, threads and the merged craft_time histogram;
/// screening_s is the caller's phase and stays zero here.
CraftTiming craft_units(
    const nn::Sequential& model, const nn::Context& ctx,
    std::int64_t unit_count, int threads,
    const std::function<double(nn::Sequential& replica,
                               const nn::Context& ctx, std::int64_t unit)>&
        attack);

}  // namespace dlbench::adversarial
