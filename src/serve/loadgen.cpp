#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dlbench::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-thread tallies, merged after the run (no locking while driving).
struct ClientTally {
  /// Wall clock of the *dispatch* window, excluding the final drain of
  /// in-flight futures — offered load is issued / this, else an
  /// overloaded server's slow drain would deflate the offered rate it
  /// was in fact subjected to.
  double dispatch_s = 0.0;
  std::int64_t issued = 0;
  std::int64_t ok = 0;
  std::int64_t rejected = 0;
  std::int64_t shutdown = 0;
  std::int64_t expired = 0;
  std::int64_t errors = 0;
  std::int64_t shed = 0;
  std::int64_t retried = 0;
  std::int64_t hedged = 0;
  std::int64_t corrupted = 0;
  std::int64_t batch_sum = 0;
  runtime::LatencyHistogram latency;
  runtime::LatencyHistogram queue_wait;
  std::vector<LoadGenResult::Sample> samples;

  void absorb(const Prediction& p, double issue_offset_s,
              bool record_sample) {
    switch (p.status) {
      case RequestStatus::kOk:
        ++ok;
        batch_sum += p.batch_size;
        latency.record_s(p.total_s);
        queue_wait.record_s(p.queue_wait_s);
        if (p.attempts > 1) ++retried;
        if (p.hedged) ++hedged;
        // Integrity check: an uncorrupted softmax row sums to ~1.
        if (!p.probabilities.empty()) {
          double sum = 0.0;
          for (const float v : p.probabilities) sum += v;
          if (sum > 1.5 || sum < 0.5) ++corrupted;
        }
        break;
      case RequestStatus::kRejected:
        ++rejected;
        break;
      case RequestStatus::kShutdown:
        ++shutdown;
        break;
      case RequestStatus::kExpired:
        ++expired;
        break;
      case RequestStatus::kError:
        ++errors;
        break;
      case RequestStatus::kShed:
        ++shed;
        break;
    }
    if (record_sample)
      samples.push_back({issue_offset_s, p.total_s, p.status});
  }

  void merge(const ClientTally& other) {
    issued += other.issued;
    ok += other.ok;
    rejected += other.rejected;
    shutdown += other.shutdown;
    expired += other.expired;
    errors += other.errors;
    shed += other.shed;
    retried += other.retried;
    hedged += other.hedged;
    corrupted += other.corrupted;
    batch_sum += other.batch_sum;
    latency.merge(other.latency);
    queue_wait.merge(other.queue_wait);
    samples.insert(samples.end(), other.samples.begin(), other.samples.end());
  }
};

ClientTally run_closed(ModelServer& server,
                       const std::vector<tensor::Tensor>& inputs,
                       const LoadGenOptions& options) {
  const int clients = std::max(1, options.clients);
  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  util::Rng seeder(options.seed);
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c, rng = seeder.fork()]() mutable {
      ClientTally& tally = tallies[static_cast<std::size_t>(c)];
      SubmitOptions submit_options;
      submit_options.deadline_s = options.deadline_s;
      while (Clock::now() < deadline) {
        const auto& input = inputs[rng.uniform_index(inputs.size())];
        submit_options.slo =
            options.low_priority_fraction > 0.0 &&
                    rng.bernoulli(options.low_priority_fraction)
                ? SloClass::kBronze
                : SloClass::kSilver;
        const double offset_s = seconds_since(start);
        ++tally.issued;
        tally.absorb(server.predict(input, submit_options), offset_s,
                     options.record_samples);
      }
    });
  }
  for (auto& t : threads) t.join();
  ClientTally total;
  for (const auto& tally : tallies) total.merge(tally);
  total.dispatch_s = seconds_since(start);
  return total;
}

ClientTally run_open(ModelServer& server,
                     const std::vector<tensor::Tensor>& inputs,
                     const LoadGenOptions& options) {
  DLB_CHECK(options.offered_rps > 0.0,
            "open-loop load needs offered_rps > 0");
  util::Rng rng(options.seed);
  ClientTally tally;
  std::vector<std::future<Prediction>> futures;
  std::vector<double> issue_offsets;
  futures.reserve(
      options.max_requests > 0
          ? static_cast<std::size_t>(options.max_requests)
          : static_cast<std::size_t>(options.offered_rps *
                                     options.duration_s) + 16);

  // Poisson process: exponential inter-arrival gaps at the offered
  // rate, dispatched on an absolute schedule (next += gap) so transient
  // stalls don't silently lower the offered load — the open-loop
  // discipline is the whole point. With max_requests set, the run is
  // count-bound instead of time-bound (fixed request-id set ⇒
  // deterministic fault decisions, see LoadGenOptions).
  SubmitOptions submit_options;
  submit_options.deadline_s = options.deadline_s;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));
  auto next = start;
  while (options.max_requests > 0 ? tally.issued < options.max_requests
                                  : next < deadline) {
    std::this_thread::sleep_until(next);
    const auto& input = inputs[rng.uniform_index(inputs.size())];
    submit_options.slo =
        options.low_priority_fraction > 0.0 &&
                rng.bernoulli(options.low_priority_fraction)
            ? SloClass::kBronze
            : SloClass::kSilver;
    ++tally.issued;
    if (options.record_samples) issue_offsets.push_back(seconds_since(start));
    futures.push_back(server.submit(input, submit_options));
    const double gap_s = poisson_gap_s(rng, options.offered_rps);
    next += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap_s));
  }
  tally.dispatch_s = seconds_since(start);
  for (std::size_t i = 0; i < futures.size(); ++i)
    tally.absorb(futures[i].get(),
                 options.record_samples ? issue_offsets[i] : 0.0,
                 options.record_samples);
  return tally;
}

}  // namespace

double poisson_gap_s(double u, double rate_rps) {
  DLB_CHECK(rate_rps > 0.0, "Poisson rate must be positive");
  // Clamp u strictly below 1: -log(1-u) diverges there. Our xoshiro
  // uniform() is [0, 1), but the sampler must stay safe for any
  // conforming uniform source (std ones may return 1.0 exactly).
  constexpr double kMaxU = 1.0 - 1e-12;
  u = std::min(std::max(u, 0.0), kMaxU);
  return -std::log(1.0 - u) / rate_rps;
}

double poisson_gap_s(util::Rng& rng, double rate_rps) {
  return poisson_gap_s(rng.uniform(), rate_rps);
}

const char* to_string(LoadGenOptions::Mode mode) {
  switch (mode) {
    case LoadGenOptions::Mode::kOpenLoop:
      return "open";
    case LoadGenOptions::Mode::kClosedLoop:
      return "closed";
  }
  return "unknown";
}

std::vector<MixedArrival> make_mixed_trace(
    const std::vector<TenantStream>& streams, double duration_s,
    std::uint64_t seed, std::int64_t max_arrivals) {
  DLB_CHECK(!streams.empty(), "make_mixed_trace needs at least one stream");
  DLB_CHECK(duration_s > 0.0 || max_arrivals > 0,
            "make_mixed_trace needs duration_s or max_arrivals");
  util::Rng seeder(seed);
  std::vector<MixedArrival> trace;
  for (int i = 0; i < static_cast<int>(streams.size()); ++i) {
    // One fork per stream, taken in index order, whether or not the
    // stream produces arrivals — stream i's schedule is a function of
    // (seed, i) only, never of its neighbours' rates.
    util::Rng rng = seeder.fork();
    const double rate = streams[static_cast<std::size_t>(i)].offered_rps;
    DLB_CHECK(rate > 0.0, "TenantStream::offered_rps must be positive");
    // No stream needs more than max_arrivals of its own arrivals: the
    // final merged prefix can't contain more than that from any one
    // stream, and capping per stream (not globally) keeps the bounded
    // trace an exact prefix of the unbounded one.
    std::int64_t produced = 0;
    double t = poisson_gap_s(rng, rate);
    while ((duration_s <= 0.0 || t < duration_s) &&
           (max_arrivals <= 0 || produced < max_arrivals)) {
      trace.push_back({t, i});
      ++produced;
      t += poisson_gap_s(rng, rate);
    }
  }
  // Stable sort keeps equal-time arrivals in stream-index order — the
  // merge is a pure function of the per-stream schedules.
  std::stable_sort(trace.begin(), trace.end(),
                   [](const MixedArrival& a, const MixedArrival& b) {
                     return a.t_s < b.t_s ||
                            (a.t_s == b.t_s && a.stream < b.stream);
                   });
  if (max_arrivals > 0 &&
      static_cast<std::int64_t>(trace.size()) > max_arrivals)
    trace.resize(static_cast<std::size_t>(max_arrivals));
  return trace;
}

LoadGenResult run_load(ModelServer& server,
                       const std::vector<tensor::Tensor>& inputs,
                       const LoadGenOptions& options) {
  DLB_CHECK(!inputs.empty(), "run_load needs at least one input sample");
  DLB_CHECK(options.duration_s > 0.0, "run_load needs duration_s > 0");

  const auto start = Clock::now();
  const ClientTally tally = options.mode == LoadGenOptions::Mode::kOpenLoop
                                ? run_open(server, inputs, options)
                                : run_closed(server, inputs, options);
  const double wall_s = seconds_since(start);

  LoadGenResult result;
  result.duration_s = wall_s;
  result.issued = tally.issued;
  result.ok = tally.ok;
  result.rejected = tally.rejected;
  result.shutdown = tally.shutdown;
  result.expired = tally.expired;
  result.errors = tally.errors;
  result.shed = tally.shed;
  result.retried = tally.retried;
  result.hedged = tally.hedged;
  result.corrupted = tally.corrupted;
  result.samples = std::move(tally.samples);
  result.offered_rps = static_cast<double>(tally.issued) / tally.dispatch_s;
  result.achieved_rps = static_cast<double>(tally.ok) / wall_s;
  result.latency = tally.latency;
  result.queue_wait = tally.queue_wait;
  result.mean_batch =
      tally.ok > 0 ? static_cast<double>(tally.batch_sum) /
                         static_cast<double>(tally.ok)
                   : 0.0;
  return result;
}

}  // namespace dlbench::serve
