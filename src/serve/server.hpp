#pragma once

// In-process inference serving: dynamic batching, replicas,
// backpressure — and, since PR 6, supervised fault tolerance.
//
// The paper's "testing time" metric family measures offline batch
// inference only; its follow-up (the DLaaS measurement study, Wu et
// al.) shows that the serving-side concerns — request batching,
// concurrency, tail latency — dominate deployment cost. ModelServer is
// that missing layer: clients submit single-sample requests and get
// futures; N replica worker threads pull from one bounded queue through
// a dynamic batcher (flush on max-batch-size or max-queue-delay,
// whichever comes first), run one batched forward over an immutable
// FrozenModel, and scatter per-request results back through the
// futures.
//
// Overload policy is shed-at-admission: once queue depth reaches
// `reject_watermark` a request is completed immediately with
// RequestStatus::kRejected instead of being enqueued, so queue memory
// is bounded by the watermark no matter the offered load — the
// backpressure signal is an explicit status, never unbounded growth.
//
// Robustness layer (see DESIGN.md §13): replicas are slots in a
// supervised fleet. A supervisor thread heartbeats the fleet,
// restarting replicas that crash (their in-flight batch is requeued by
// the dying thread, so no future is ever stranded) and
// abandoning-and-replacing replicas stalled past `stall_timeout_s`.
// Requests carry optional deadlines propagated through the batcher:
// an expired request is shed before forward and never batched. A
// transient forward error triggers per-request retry with exponential
// backoff (up to `max_retries`); `hedge_delay_s` arms hedged
// re-dispatch for stragglers, first result wins via an atomic
// claim. A circuit breaker sheds bronze-class load once the failure
// rate over a sliding window crosses `breaker_threshold`, re-closing
// after `breaker_probe_s`. All fault decisions come from
// runtime/fault's seeded serve plan, so injected-event counts are
// reproducible run-to-run (the determinism contract).
//
// Every stage is measured twice: into reusable LatencyHistograms
// (per-replica, merged on stats()) and as runtime/trace spans
// ("serve.enqueue_wait" / "serve.assemble" / "serve.forward" /
// "serve.scatter"), so chrome://tracing shows the batching pipeline
// whenever a TraceScope is active. Supervision events additionally
// feed trace counters ("serve.crashes", "serve.restarts", ...).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/frozen.hpp"
#include "runtime/device.hpp"
#include "runtime/histogram.hpp"
#include "tensor/tensor.hpp"

namespace dlbench::serve {

/// Terminal status of one request.
enum class RequestStatus {
  kOk,        // served
  kRejected,  // shed at admission: queue depth >= reject_watermark
  kShutdown,  // submitted after shutdown began, or abandoned by it
  kExpired,   // deadline passed before forward; shed, never batched
  kError,     // forward failed and retries were exhausted (or off)
  kShed,      // shed by class: breaker open (bronze) or SLO admission
};
const char* to_string(RequestStatus status);

/// Service-level class of one request, ordered: higher classes shed
/// later. Shared by the circuit breaker (bronze load is shed while the
/// breaker is open — the PR 6 "priority 0" contract) and the fleet
/// layer's SLO admission control (serve/fleet, which sheds bronze
/// first, then silver, and gold only at the global queue budget).
enum class SloClass : int {
  kBronze = 0,  // best-effort: first shed under any pressure
  kSilver = 1,  // standard: the old "normal priority"
  kGold = 2,    // premium: shed last, never by the breaker
};
const char* to_string(SloClass slo);

/// Per-request submission policy (all optional).
struct SubmitOptions {
  /// Client deadline in seconds from submission; 0 uses the server's
  /// default_deadline_s (which may itself be 0 = no deadline).
  double deadline_s = 0.0;
  /// SLO class; bronze is sheddable when the circuit breaker is open.
  SloClass slo = SloClass::kSilver;
};

/// What a client's future resolves to.
struct Prediction {
  RequestStatus status = RequestStatus::kOk;
  /// Argmax class (kOk only).
  std::int64_t label = -1;
  /// Softmax row (kOk and ServerOptions::compute_probabilities only).
  std::vector<float> probabilities;
  /// Size of the batch this request rode in.
  std::int64_t batch_size = 0;
  /// Seconds spent waiting in the queue before batch assembly began.
  double queue_wait_s = 0.0;
  /// End-to-end seconds, submit to scatter.
  double total_s = 0.0;
  /// Dispatch attempts consumed (1 = first try; >1 means retries).
  std::int64_t attempts = 1;
  /// True when a hedged duplicate dispatch was launched for this
  /// request (whether or not the hedge delivered first).
  bool hedged = false;
};

/// Serving policy for one ModelServer.
struct ServerOptions {
  /// Shape of one request sample (the model input without the batch
  /// dimension), e.g. [1, 28, 28]. Required.
  tensor::Shape sample_shape;
  /// Replica worker threads.
  int replicas = 2;
  /// Batcher flush threshold: a batch never exceeds this many requests.
  std::int64_t max_batch = 8;
  /// Batcher flush deadline: a batch is dispatched once its oldest
  /// request has waited this long, full or not. 0 = dispatch whatever
  /// is immediately available (no lingering).
  double max_batch_delay_s = 0.002;
  /// Admission control: submissions are rejected while queue depth is
  /// at or above this. 0 picks 3/4 of queue_capacity.
  std::size_t reject_watermark = 0;
  /// Hard queue bound (sanity ceiling above the watermark).
  std::size_t queue_capacity = 1024;
  /// Device each replica runs its batched forward on. The serial CPU
  /// device gives replica-level parallelism (one core per replica);
  /// the parallel device spreads each batch across the pool, which is
  /// how batch size buys throughput GPU-style.
  runtime::Device device = runtime::Device::cpu();
  /// Attach a softmax row to every Prediction. Costs one row copy per
  /// request; throughput sweeps turn it off.
  bool compute_probabilities = true;

  // -- robustness / supervision (DESIGN.md §13) --

  /// Run the supervisor thread: crashed replicas restart, stalled
  /// replicas are replaced, retries and hedges are dispatched. Off, the
  /// fleet degrades exactly as faults land (the gauntlet baseline).
  bool supervise = true;
  /// Supervisor heartbeat period.
  double heartbeat_s = 0.002;
  /// A replica busy on one batch longer than this is abandoned and its
  /// slot restarted. 0 disables the stall watchdog.
  double stall_timeout_s = 0.0;
  /// Default per-request deadline when SubmitOptions::deadline_s is 0.
  /// 0 = requests never expire.
  double default_deadline_s = 0.0;
  /// Re-dispatch attempts after a transient forward error (supervised
  /// only; 0 = fail immediately with kError).
  int max_retries = 0;
  /// Base retry backoff; attempt k waits retry_backoff_s * 2^k.
  double retry_backoff_s = 0.0005;
  /// Hedge a request still unresolved this long after dispatch
  /// (supervised only; one hedge per request; 0 = off).
  double hedge_delay_s = 0.0;
  /// Circuit breaker: open once the failure fraction over the last
  /// breaker_window outcomes reaches this. 0 = breaker off.
  double breaker_threshold = 0.0;
  /// Sliding outcome-window length for the breaker.
  int breaker_window = 64;
  /// How long the breaker stays open before closing again (the probe
  /// window: the next breaker_window outcomes re-decide).
  double breaker_probe_s = 0.05;
  /// Upper bound on how long shutdown(drain=true) waits for in-flight
  /// work before force-failing it with kShutdown — stop() can never
  /// hang on a permanently stalled replica.
  double shutdown_deadline_s = 5.0;
};

/// Per-stage latency distributions (merged across replicas).
struct StageLatencies {
  runtime::LatencyHistogram queue_wait;  // submit → dequeued, per request
  runtime::LatencyHistogram assemble;    // gather into batch tensor, per batch
  runtime::LatencyHistogram forward;     // batched forward, per batch
  runtime::LatencyHistogram scatter;     // results → futures, per batch
  runtime::LatencyHistogram total;       // submit → future set, per request

  void merge(const StageLatencies& other);
};

/// Snapshot of server counters + latency distributions.
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;          // shed by admission control
  std::int64_t rejected_shutdown = 0; // submitted after shutdown
  std::int64_t completed = 0;         // served OK
  std::int64_t batches = 0;
  std::int64_t max_queue_depth = 0;
  /// Sum of replica wall-clock spent processing batches.
  double busy_s = 0.0;
  StageLatencies latency;

  // -- robustness counters (all deterministic per fault seed where the
  //    determinism contract applies; see DESIGN.md §13) --
  std::int64_t expired = 0;          // deadline-shed before forward
  std::int64_t errors = 0;           // failed after retry exhaustion
  std::int64_t shed_breaker = 0;     // bronze-class shed while open
  std::int64_t retries = 0;          // re-dispatches scheduled
  std::int64_t hedges = 0;           // hedged duplicate dispatches
  std::int64_t hedge_wins = 0;       // hedge delivered before primary
  std::int64_t corrupted = 0;        // corrupted responses delivered
  std::int64_t crashes = 0;          // replica crash-exits
  std::int64_t restarts = 0;         // supervisor slot restarts
  std::int64_t stalls_replaced = 0;  // stalled replicas abandoned
  std::int64_t crash_requeues = 0;   // requests requeued by dying replicas
  std::int64_t breaker_opens = 0;
  std::int64_t breaker_closes = 0;
  bool breaker_open = false;
  /// Replicas currently alive (not crashed, not abandoned).
  std::int64_t live_replicas = 0;

  /// Mean requests per dispatched batch.
  double mean_batch_size() const {
    return batches > 0
               ? static_cast<double>(completed) / static_cast<double>(batches)
               : 0.0;
  }
};

/// A serving endpoint over one frozen model. Thread-safe: submit() from
/// any number of client threads. Destruction drains accepted requests
/// (bounded by shutdown_deadline_s), then joins the fleet.
class ModelServer {
 public:
  ModelServer(nn::FrozenModel model, ServerOptions options);
  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;
  ~ModelServer();

  /// Submits one sample (shape must equal options().sample_shape).
  /// Never blocks: over the watermark the future resolves immediately
  /// with kRejected. The tensor is aliased, not copied — callers must
  /// not mutate it until the future resolves.
  std::future<Prediction> submit(tensor::Tensor input,
                                 SubmitOptions submit_options = {});

  /// Synchronous convenience: submit + wait.
  Prediction predict(tensor::Tensor input, SubmitOptions submit_options = {});

  /// Stops admission; accepted requests are still served (`drain`), or
  /// failed with kShutdown (!`drain`). Draining blocks until in-flight
  /// work finishes or shutdown_deadline_s elapses, whichever is first —
  /// on timeout the remainder is force-failed with kShutdown, so this
  /// returns in bounded time even with a replica stalled forever.
  /// Idempotent; the destructor calls shutdown(true).
  void shutdown(bool drain = true);

  /// Replica lease/release hook for the fleet layer (serve/fleet).
  /// Grows the fleet by staffing fresh slots, or shrinks it by retiring
  /// the highest slots *after drain*: a retiring replica finishes the
  /// batch it is processing (and scatters every result) before exiting,
  /// so scale-down never strands or drops in-flight work. Target must
  /// be >= 1. Thread-safe; concurrent with submit()/stats().
  void resize_replicas(int target);

  /// Currently staffed (non-retiring) replica slots.
  int replica_target() const;

  /// Counters + merged per-stage latency histograms (includes retired
  /// replica incarnations).
  ServerStats stats() const;

  std::size_t queue_depth() const;
  const ServerOptions& options() const { return options_; }

 private:
  /// One client request; shared between the queue, in-flight batches,
  /// hedge duplicates and the retry heap. `claimed` is the first-wins
  /// gate: whoever exchanges it to true owns the promise.
  struct Request {
    std::int64_t id = 0;
    tensor::Tensor input;
    std::promise<Prediction> promise;
    std::int64_t enqueue_ns = 0;
    std::int64_t deadline_ns = 0;  // 0 = none
    SloClass slo = SloClass::kSilver;
    std::atomic<bool> claimed{false};
    /// Set by the hedger; read by replicas during scatter.
    std::atomic<bool> hedged{false};
  };
  using RequestPtr = std::shared_ptr<Request>;

  /// One dispatch of a request to the fleet (retries and hedges are
  /// fresh dispatches of the same Request).
  struct Dispatch {
    RequestPtr req;
    std::int64_t attempt = 0;
    bool is_hedge = false;
  };

  /// A retry waiting out its backoff (min-heap on ready_ns).
  struct TimedDispatch {
    std::int64_t ready_ns = 0;
    Dispatch dispatch;
  };

  /// An in-flight dispatch the hedger watches.
  struct InFlight {
    RequestPtr req;
    std::int64_t dispatched_ns = 0;
    std::int64_t attempt = 0;
  };

  /// Per-replica state; replicas are slots in the fleet and may be
  /// retired (crash, stall) and replaced by the supervisor. Latency
  /// histograms are owned by the replica and only touched under `mu`,
  /// which stats() also takes — the histogram itself needs no internal
  /// synchronization (see runtime/histogram).
  struct Replica {
    const nn::FrozenModel model;  // handle copy; storage shared, immutable
    int slot = 0;
    std::thread thread;
    mutable std::mutex mu;
    StageLatencies lat;
    std::int64_t batches = 0;
    std::int64_t completed = 0;
    double busy_s = 0.0;
    /// Set by the replica thread as it crash-exits.
    std::atomic<bool> dead{false};
    /// Set by the supervisor when the stall watchdog gives up on it.
    std::atomic<bool> abandoned{false};
    /// Set by resize_replicas on scale-down: finish the current batch,
    /// then exit without taking another (retire-after-drain).
    std::atomic<bool> retiring{false};
    /// now_ns() when the current batch began; 0 = idle. The stall
    /// watchdog reads this.
    std::atomic<std::int64_t> busy_since_ns{0};

    Replica(nn::FrozenModel m, int s) : model(std::move(m)), slot(s) {}
  };

  void replica_loop(Replica& replica);
  void process_batch(Replica& replica, std::vector<Dispatch>& batch,
                     std::int64_t batch_ordinal);
  void crash_exit(Replica& replica, std::vector<Dispatch>& batch);
  void supervisor_loop();
  void supervisor_tick();
  /// Wins the first-claim on `dispatch`'s request; false when a twin
  /// dispatch already resolved it. Callers bump their counters between
  /// this and resolve_*, so a client that has seen its future resolve
  /// also sees the counters — resolving first would let stats() race
  /// one increment behind.
  static bool claim_dispatch(Dispatch& dispatch);
  /// Resolves a claimed dispatch with a failure `status`.
  static void resolve_failure(Dispatch& dispatch, RequestStatus status);
  /// claim + resolve for paths with no counters of their own.
  void fail_dispatch(Dispatch& dispatch, RequestStatus status);
  /// Feeds the breaker's sliding window; may open the breaker.
  void record_outcome(bool success);
  void record_outcome_locked(bool success);
  void maybe_close_breaker_locked(std::int64_t now);
  std::int64_t flush_ready_retries_locked(std::int64_t now);

  ServerOptions options_;
  nn::FrozenModel model_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Dispatch> queue_;
  std::vector<TimedDispatch> retry_heap_;  // min-heap by ready_ns
  std::vector<InFlight> inflight_watch_;   // hedger's watch list
  bool stopping_ = false;
  bool drain_ = true;
  std::atomic<bool> hard_stop_{false};
  std::int64_t next_id_ = 0;
  std::int64_t submitted_ = 0;
  std::int64_t accepted_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t rejected_shutdown_ = 0;
  std::int64_t max_queue_depth_ = 0;
  std::int64_t live_replicas_ = 0;
  bool all_dead_ = false;  // every replica gone and nobody restarts them

  // Breaker state (guarded by mu_).
  std::deque<bool> outcome_window_;  // true = failure
  std::int64_t window_failures_ = 0;
  bool breaker_open_ = false;
  std::int64_t breaker_open_until_ns_ = 0;

  // Event counters: bumped from replica/supervisor threads without mu_.
  std::atomic<std::int64_t> expired_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> shed_breaker_{0};
  std::atomic<std::int64_t> retries_{0};
  std::atomic<std::int64_t> hedges_{0};
  std::atomic<std::int64_t> hedge_wins_{0};
  std::atomic<std::int64_t> corrupted_{0};
  std::atomic<std::int64_t> crashes_{0};
  std::atomic<std::int64_t> restarts_{0};
  std::atomic<std::int64_t> stalls_replaced_{0};
  std::atomic<std::int64_t> crash_requeues_{0};
  std::atomic<std::int64_t> breaker_opens_{0};
  std::atomic<std::int64_t> breaker_closes_{0};
  std::atomic<std::int64_t> inflight_count_{0};

  /// Fleet topology: slot vector + retired incarnations. Guarded by
  /// fleet_mu_, never held together with mu_ (fleet_mu_ first when
  /// both are needed).
  mutable std::mutex fleet_mu_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Replica>> retired_;
  /// Next slot id for replicas added by resize_replicas; slot ids are
  /// never reused so fault-plan slot keys stay unambiguous.
  int next_slot_id_ = 0;

  std::thread supervisor_;
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  bool sup_stop_ = false;
};

}  // namespace dlbench::serve
