#pragma once

// In-process inference serving: dynamic batching, replicas,
// backpressure.
//
// The paper's "testing time" metric family measures offline batch
// inference only; its follow-up (the DLaaS measurement study, Wu et
// al.) shows that the serving-side concerns — request batching,
// concurrency, tail latency — dominate deployment cost. ModelServer is
// that missing layer: clients submit single-sample requests and get
// futures; N replica worker threads pull from one bounded queue through
// a dynamic batcher (flush on max-batch-size or max-queue-delay,
// whichever comes first), run one batched forward over an immutable
// FrozenModel, and scatter per-request results back through the
// futures.
//
// Overload policy is shed-at-admission: once queue depth reaches
// `reject_watermark` a request is completed immediately with
// RequestStatus::kRejected instead of being enqueued, so queue memory
// is bounded by the watermark no matter the offered load — the
// backpressure signal is an explicit status, never unbounded growth.
//
// Every stage is measured twice: into reusable LatencyHistograms
// (per-replica, merged on stats()) and as runtime/trace spans
// ("serve.enqueue_wait" / "serve.assemble" / "serve.forward" /
// "serve.scatter"), so chrome://tracing shows the batching pipeline
// whenever a TraceScope is active.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/frozen.hpp"
#include "runtime/device.hpp"
#include "runtime/histogram.hpp"
#include "tensor/tensor.hpp"

namespace dlbench::serve {

/// Terminal status of one request.
enum class RequestStatus {
  kOk,        // served
  kRejected,  // shed at admission: queue depth >= reject_watermark
  kShutdown,  // submitted after shutdown began
};
const char* to_string(RequestStatus status);

/// What a client's future resolves to.
struct Prediction {
  RequestStatus status = RequestStatus::kOk;
  /// Argmax class (kOk only).
  std::int64_t label = -1;
  /// Softmax row (kOk and ServerOptions::compute_probabilities only).
  std::vector<float> probabilities;
  /// Size of the batch this request rode in.
  std::int64_t batch_size = 0;
  /// Seconds spent waiting in the queue before batch assembly began.
  double queue_wait_s = 0.0;
  /// End-to-end seconds, submit to scatter.
  double total_s = 0.0;
};

/// Serving policy for one ModelServer.
struct ServerOptions {
  /// Shape of one request sample (the model input without the batch
  /// dimension), e.g. [1, 28, 28]. Required.
  tensor::Shape sample_shape;
  /// Replica worker threads.
  int replicas = 2;
  /// Batcher flush threshold: a batch never exceeds this many requests.
  std::int64_t max_batch = 8;
  /// Batcher flush deadline: a batch is dispatched once its oldest
  /// request has waited this long, full or not. 0 = dispatch whatever
  /// is immediately available (no lingering).
  double max_batch_delay_s = 0.002;
  /// Admission control: submissions are rejected while queue depth is
  /// at or above this. 0 picks 3/4 of queue_capacity.
  std::size_t reject_watermark = 0;
  /// Hard queue bound (sanity ceiling above the watermark).
  std::size_t queue_capacity = 1024;
  /// Device each replica runs its batched forward on. The serial CPU
  /// device gives replica-level parallelism (one core per replica);
  /// the parallel device spreads each batch across the pool, which is
  /// how batch size buys throughput GPU-style.
  runtime::Device device = runtime::Device::cpu();
  /// Attach a softmax row to every Prediction. Costs one row copy per
  /// request; throughput sweeps turn it off.
  bool compute_probabilities = true;
};

/// Per-stage latency distributions (merged across replicas).
struct StageLatencies {
  runtime::LatencyHistogram queue_wait;  // submit → dequeued, per request
  runtime::LatencyHistogram assemble;    // gather into batch tensor, per batch
  runtime::LatencyHistogram forward;     // batched forward, per batch
  runtime::LatencyHistogram scatter;     // results → futures, per batch
  runtime::LatencyHistogram total;       // submit → future set, per request

  void merge(const StageLatencies& other);
};

/// Snapshot of server counters + latency distributions.
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;          // shed by admission control
  std::int64_t rejected_shutdown = 0; // submitted after shutdown
  std::int64_t completed = 0;         // served OK
  std::int64_t batches = 0;
  std::int64_t max_queue_depth = 0;
  /// Sum of replica wall-clock spent processing batches.
  double busy_s = 0.0;
  StageLatencies latency;

  /// Mean requests per dispatched batch.
  double mean_batch_size() const {
    return batches > 0
               ? static_cast<double>(completed) / static_cast<double>(batches)
               : 0.0;
  }
};

/// A serving endpoint over one frozen model. Thread-safe: submit() from
/// any number of client threads. Destruction drains accepted requests,
/// then joins the replicas.
class ModelServer {
 public:
  ModelServer(nn::FrozenModel model, ServerOptions options);
  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;
  ~ModelServer();

  /// Submits one sample (shape must equal options().sample_shape).
  /// Never blocks: over the watermark the future resolves immediately
  /// with kRejected. The tensor is aliased, not copied — callers must
  /// not mutate it until the future resolves.
  std::future<Prediction> submit(tensor::Tensor input);

  /// Synchronous convenience: submit + wait.
  Prediction predict(tensor::Tensor input);

  /// Stops admission; accepted requests are still served (`drain`), or
  /// failed with kShutdown (!`drain`). Idempotent; the destructor calls
  /// shutdown(true).
  void shutdown(bool drain = true);

  /// Counters + merged per-stage latency histograms.
  ServerStats stats() const;

  std::size_t queue_depth() const;
  const ServerOptions& options() const { return options_; }

 private:
  struct Pending {
    tensor::Tensor input;
    std::promise<Prediction> promise;
    std::int64_t enqueue_ns = 0;
  };

  /// Per-replica state. Latency histograms are owned by the replica and
  /// only touched under `mu`, which stats() also takes — the histogram
  /// itself needs no internal synchronization (see runtime/histogram).
  struct Replica {
    const nn::FrozenModel model;  // handle copy; storage shared, immutable
    std::thread thread;
    mutable std::mutex mu;
    StageLatencies lat;
    std::int64_t batches = 0;
    std::int64_t completed = 0;
    double busy_s = 0.0;

    explicit Replica(nn::FrozenModel m) : model(std::move(m)) {}
  };

  void replica_loop(Replica& replica);
  void process_batch(Replica& replica, std::vector<Pending>& batch);

  ServerOptions options_;
  nn::FrozenModel model_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool drain_ = true;
  std::int64_t submitted_ = 0;
  std::int64_t accepted_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t rejected_shutdown_ = 0;
  std::int64_t max_queue_depth_ = 0;

  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace dlbench::serve
