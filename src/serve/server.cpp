#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <utility>

#include "runtime/trace.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::serve {

namespace trace = runtime::trace;

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

void StageLatencies::merge(const StageLatencies& other) {
  queue_wait.merge(other.queue_wait);
  assemble.merge(other.assemble);
  forward.merge(other.forward);
  scatter.merge(other.scatter);
  total.merge(other.total);
}

namespace {

// Monotonic nanoseconds on the same clock the trace subsystem stamps
// spans with, so enqueue timestamps taken on client threads line up
// with worker-side span endpoints. With tracing compiled out
// trace::clock_ns() returns 0, so fall back to steady_clock.
std::int64_t now_ns() {
  if constexpr (trace::compiled()) {
    return trace::clock_ns();
  } else {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
}

Prediction make_failure(RequestStatus status) {
  Prediction p;
  p.status = status;
  return p;
}

}  // namespace

ModelServer::ModelServer(nn::FrozenModel model, ServerOptions options)
    : options_(std::move(options)), model_(std::move(model)) {
  DLB_CHECK(!model_.empty(), "ModelServer needs a non-empty model");
  DLB_CHECK(options_.sample_shape.numel() > 0,
            "ServerOptions::sample_shape is required");
  DLB_CHECK(options_.sample_shape.rank() >= 1 &&
                options_.sample_shape.rank() < tensor::Shape::kMaxRank,
            "sample_shape must leave room for the batch dimension");
  DLB_CHECK(options_.replicas >= 1, "need at least one replica");
  DLB_CHECK(options_.max_batch >= 1, "max_batch must be positive");
  DLB_CHECK(options_.max_batch_delay_s >= 0.0,
            "max_batch_delay_s must be non-negative");
  DLB_CHECK(options_.queue_capacity >= 1, "queue_capacity must be positive");
  if (options_.reject_watermark == 0)
    options_.reject_watermark = std::max<std::size_t>(
        1, options_.queue_capacity - options_.queue_capacity / 4);
  DLB_CHECK(options_.reject_watermark <= options_.queue_capacity,
            "reject_watermark cannot exceed queue_capacity");

  replicas_.reserve(static_cast<std::size_t>(options_.replicas));
  for (int i = 0; i < options_.replicas; ++i)
    replicas_.push_back(std::make_unique<Replica>(model_));
  // Threads start only after every Replica is constructed so replicas_
  // is never resized while a worker runs.
  for (auto& replica : replicas_)
    replica->thread = std::thread([this, r = replica.get()] {
      replica_loop(*r);
    });
}

ModelServer::~ModelServer() {
  shutdown(/*drain=*/true);
  for (auto& replica : replicas_)
    if (replica->thread.joinable()) replica->thread.join();
}

std::future<Prediction> ModelServer::submit(tensor::Tensor input) {
  DLB_CHECK(input.shape() == options_.sample_shape,
            "request shape " + input.shape().to_string() +
                " != sample_shape " + options_.sample_shape.to_string());
  std::promise<Prediction> promise;
  std::future<Prediction> future = promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  ++submitted_;
  if (stopping_) {
    ++rejected_shutdown_;
    lock.unlock();
    promise.set_value(make_failure(RequestStatus::kShutdown));
    return future;
  }
  if (queue_.size() >= options_.reject_watermark) {
    ++rejected_;
    lock.unlock();
    trace::counter_add("serve.requests", 1);
    trace::counter_add("serve.rejected", 1);
    promise.set_value(make_failure(RequestStatus::kRejected));
    return future;
  }
  ++accepted_;
  Pending pending;
  pending.input = std::move(input);
  pending.promise = std::move(promise);
  pending.enqueue_ns = now_ns();
  queue_.push_back(std::move(pending));
  const auto depth = static_cast<std::int64_t>(queue_.size());
  max_queue_depth_ = std::max(max_queue_depth_, depth);
  lock.unlock();
  trace::counter_add("serve.requests", 1);
  trace::gauge_record("serve.queue_depth", depth);
  cv_.notify_one();
  return future;
}

Prediction ModelServer::predict(tensor::Tensor input) {
  return submit(std::move(input)).get();
}

void ModelServer::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && drain_ <= drain) return;  // idempotent
    stopping_ = true;
    drain_ = drain;
    if (!drain) {
      for (auto& pending : queue_)
        pending.promise.set_value(make_failure(RequestStatus::kShutdown));
      queue_.clear();
    }
  }
  cv_.notify_all();
}

std::size_t ModelServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ServerStats ModelServer::stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.submitted = submitted_;
    stats.accepted = accepted_;
    stats.rejected = rejected_;
    stats.rejected_shutdown = rejected_shutdown_;
    stats.max_queue_depth = max_queue_depth_;
  }
  for (const auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->mu);
    stats.completed += replica->completed;
    stats.batches += replica->batches;
    stats.busy_s += replica->busy_s;
    stats.latency.merge(replica->lat);
  }
  return stats;
}

void ModelServer::replica_loop(Replica& replica) {
  const auto delay = std::chrono::nanoseconds(
      static_cast<std::int64_t>(options_.max_batch_delay_s * 1e9));
  std::vector<Pending> batch;
  batch.reserve(static_cast<std::size_t>(options_.max_batch));

  for (;;) {
    batch.clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping && drained

    // Greedy grab, then linger: take everything available up to
    // max_batch; if short and a delay is configured, wait for more
    // until the *oldest* request in the batch hits its deadline. The
    // deadline is anchored at that request's enqueue time, not at the
    // grab, so no request's queueing is extended past max_batch_delay_s
    // by the batcher itself.
    auto take_available = [&] {
      while (!queue_.empty() &&
             static_cast<std::int64_t>(batch.size()) < options_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    };
    take_available();
    if (static_cast<std::int64_t>(batch.size()) < options_.max_batch &&
        delay.count() > 0) {
      const std::int64_t deadline_ns = batch.front().enqueue_ns + delay.count();
      while (static_cast<std::int64_t>(batch.size()) < options_.max_batch &&
             !stopping_) {
        const std::int64_t remaining_ns = deadline_ns - now_ns();
        if (remaining_ns <= 0) break;
        cv_.wait_for(lock, std::chrono::nanoseconds(remaining_ns));
        take_available();
      }
      take_available();
    }
    const bool more_work = !queue_.empty();
    lock.unlock();
    // Another replica may be able to start on what we left behind.
    if (more_work) cv_.notify_one();

    process_batch(replica, batch);
  }
}

void ModelServer::process_batch(Replica& replica, std::vector<Pending>& batch) {
  const std::int64_t batch_size = static_cast<std::int64_t>(batch.size());
  const std::int64_t start_ns = now_ns();

  // Queue wait ends now, as assembly begins. Emitted with explicit
  // endpoints because the span started on the client thread.
  StageLatencies lat;
  for (const Pending& pending : batch) {
    lat.queue_wait.record_ns(start_ns - pending.enqueue_ns);
    trace::record_span("serve.enqueue_wait", "serve", pending.enqueue_ns,
                       start_ns);
  }

  // Assemble: gather request samples into one [B, ...sample] tensor.
  tensor::Tensor batched;
  {
    trace::Span span("serve.assemble", "serve");
    const tensor::Shape& sample = options_.sample_shape;
    tensor::Shape batched_shape;
    switch (sample.rank()) {
      case 1:
        batched_shape = {batch_size, sample[0]};
        break;
      case 2:
        batched_shape = {batch_size, sample[0], sample[1]};
        break;
      default:
        batched_shape = {batch_size, sample[0], sample[1], sample[2]};
        break;
    }
    batched = tensor::Tensor(batched_shape);
    const std::int64_t stride = sample.numel();
    float* dst = batched.raw();
    for (std::int64_t i = 0; i < batch_size; ++i)
      std::memcpy(dst + i * stride, batch[static_cast<std::size_t>(i)]
                      .input.raw(),
                  static_cast<std::size_t>(stride) * sizeof(float));
  }
  const std::int64_t assembled_ns = now_ns();

  // Forward: one batched pass over the shared frozen weights.
  tensor::Tensor logits;
  tensor::Tensor probs;
  {
    trace::Span span("serve.forward", "serve");
    logits = replica.model.forward(batched, options_.device);
    if (options_.compute_probabilities)
      probs = tensor::softmax_rows(logits, options_.device);
  }
  const std::int64_t forwarded_ns = now_ns();

  // Scatter: materialize per-request results (argmax + probabilities).
  std::vector<Prediction> results(static_cast<std::size_t>(batch_size));
  {
    trace::Span span("serve.scatter", "serve");
    const std::int64_t classes = logits.shape().dim(-1);
    const float* logit_rows = logits.raw();
    for (std::int64_t i = 0; i < batch_size; ++i) {
      Prediction& result = results[static_cast<std::size_t>(i)];
      result.status = RequestStatus::kOk;
      const float* row = logit_rows + i * classes;
      result.label = static_cast<std::int64_t>(
          std::max_element(row, row + classes) - row);
      if (options_.compute_probabilities) {
        const float* prow = probs.raw() + i * classes;
        result.probabilities.assign(prow, prow + classes);
      }
      result.batch_size = batch_size;
      result.queue_wait_s =
          static_cast<double>(start_ns - batch[static_cast<std::size_t>(i)]
                                             .enqueue_ns) * 1e-9;
      const std::int64_t total_ns =
          now_ns() - batch[static_cast<std::size_t>(i)].enqueue_ns;
      result.total_s = static_cast<double>(total_ns) * 1e-9;
      lat.total.record_ns(total_ns);
    }
  }
  const std::int64_t end_ns = now_ns();

  lat.assemble.record_ns(assembled_ns - start_ns);
  lat.forward.record_ns(forwarded_ns - assembled_ns);
  lat.scatter.record_ns(end_ns - forwarded_ns);
  trace::counter_add("serve.batches", 1);

  // Accounting commits before the promises resolve, so a client that
  // just observed its future may immediately read stats() and find its
  // own request counted.
  {
    std::lock_guard<std::mutex> lock(replica.mu);
    replica.lat.merge(lat);
    replica.completed += batch_size;
    replica.batches += 1;
    replica.busy_s += static_cast<double>(end_ns - start_ns) * 1e-9;
  }
  for (std::int64_t i = 0; i < batch_size; ++i)
    batch[static_cast<std::size_t>(i)].promise.set_value(
        std::move(results[static_cast<std::size_t>(i)]));
}

}  // namespace dlbench::serve
