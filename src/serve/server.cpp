#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <optional>
#include <utility>

#include "runtime/fault.hpp"
#include "runtime/trace.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace dlbench::serve {

namespace trace = runtime::trace;
namespace fault = runtime::fault;

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kShutdown:
      return "shutdown";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kError:
      return "error";
    case RequestStatus::kShed:
      return "shed";
  }
  return "unknown";
}

const char* to_string(SloClass slo) {
  switch (slo) {
    case SloClass::kBronze:
      return "bronze";
    case SloClass::kSilver:
      return "silver";
    case SloClass::kGold:
      return "gold";
  }
  return "unknown";
}

void StageLatencies::merge(const StageLatencies& other) {
  queue_wait.merge(other.queue_wait);
  assemble.merge(other.assemble);
  forward.merge(other.forward);
  scatter.merge(other.scatter);
  total.merge(other.total);
}

namespace {

// Monotonic nanoseconds on the same clock the trace subsystem stamps
// spans with, so enqueue timestamps taken on client threads line up
// with worker-side span endpoints. With tracing compiled out
// trace::clock_ns() returns 0, so fall back to steady_clock.
std::int64_t now_ns() {
  if constexpr (trace::compiled()) {
    return trace::clock_ns();
  } else {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
}

Prediction make_failure(RequestStatus status) {
  Prediction p;
  p.status = status;
  return p;
}

// Comparator making push_heap/pop_heap a min-heap on ready_ns.
constexpr auto heap_later = [](const auto& a, const auto& b) {
  return a.ready_ns > b.ready_ns;
};

}  // namespace

ModelServer::ModelServer(nn::FrozenModel model, ServerOptions options)
    : options_(std::move(options)), model_(std::move(model)) {
  DLB_CHECK(!model_.empty(), "ModelServer needs a non-empty model");
  DLB_CHECK(options_.sample_shape.numel() > 0,
            "ServerOptions::sample_shape is required");
  DLB_CHECK(options_.sample_shape.rank() >= 1 &&
                options_.sample_shape.rank() < tensor::Shape::kMaxRank,
            "sample_shape must leave room for the batch dimension");
  DLB_CHECK(options_.replicas >= 1, "need at least one replica");
  DLB_CHECK(options_.max_batch >= 1, "max_batch must be positive");
  DLB_CHECK(options_.max_batch_delay_s >= 0.0,
            "max_batch_delay_s must be non-negative");
  DLB_CHECK(options_.queue_capacity >= 1, "queue_capacity must be positive");
  if (options_.reject_watermark == 0)
    options_.reject_watermark = std::max<std::size_t>(
        1, options_.queue_capacity - options_.queue_capacity / 4);
  DLB_CHECK(options_.reject_watermark <= options_.queue_capacity,
            "reject_watermark cannot exceed queue_capacity");
  DLB_CHECK(options_.heartbeat_s > 0.0, "heartbeat_s must be positive");
  DLB_CHECK(options_.max_retries >= 0, "max_retries cannot be negative");
  DLB_CHECK(options_.breaker_window >= 1, "breaker_window must be positive");
  DLB_CHECK(options_.shutdown_deadline_s > 0.0,
            "shutdown_deadline_s must be positive");

  live_replicas_ = options_.replicas;
  {
    std::lock_guard<std::mutex> fleet_lock(fleet_mu_);
    replicas_.reserve(static_cast<std::size_t>(options_.replicas));
    for (int i = 0; i < options_.replicas; ++i)
      replicas_.push_back(std::make_unique<Replica>(model_, i));
    next_slot_id_ = options_.replicas;
    // Threads start only after every Replica is constructed so the slot
    // vector is never resized while a worker runs.
    for (auto& replica : replicas_)
      replica->thread = std::thread([this, r = replica.get()] {
        replica_loop(*r);
      });
  }
  if (options_.supervise)
    supervisor_ = std::thread([this] { supervisor_loop(); });
}

ModelServer::~ModelServer() {
  shutdown(/*drain=*/true);
  if (supervisor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sup_mu_);
      sup_stop_ = true;
    }
    sup_cv_.notify_all();
    supervisor_.join();
  }
  // The supervisor is gone: nobody mutates the fleet anymore. Make sure
  // every thread — including abandoned stallers polling the cancel
  // flag — unwinds, then join all incarnations.
  hard_stop_.store(true, std::memory_order_release);
  cv_.notify_all();
  for (auto& replica : replicas_)
    if (replica->thread.joinable()) replica->thread.join();
  for (auto& replica : retired_)
    if (replica->thread.joinable()) replica->thread.join();
}

std::future<Prediction> ModelServer::submit(tensor::Tensor input,
                                            SubmitOptions submit_options) {
  DLB_CHECK(input.shape() == options_.sample_shape,
            "request shape " + input.shape().to_string() +
                " != sample_shape " + options_.sample_shape.to_string());
  std::promise<Prediction> promise;
  std::future<Prediction> future = promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  ++submitted_;
  if (stopping_) {
    ++rejected_shutdown_;
    lock.unlock();
    promise.set_value(make_failure(RequestStatus::kShutdown));
    return future;
  }
  if (all_dead_) {
    // Unsupervised fleet with every replica crashed: nobody will ever
    // serve this, so fail fast instead of queueing forever.
    errors_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    promise.set_value(make_failure(RequestStatus::kError));
    return future;
  }
  const std::int64_t enqueue_ns = now_ns();
  maybe_close_breaker_locked(enqueue_ns);
  if (breaker_open_ && submit_options.slo == SloClass::kBronze) {
    shed_breaker_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    trace::counter_add("serve.requests", 1);
    trace::counter_add("serve.shed", 1);
    promise.set_value(make_failure(RequestStatus::kShed));
    return future;
  }
  if (queue_.size() >= options_.reject_watermark) {
    ++rejected_;
    lock.unlock();
    trace::counter_add("serve.requests", 1);
    trace::counter_add("serve.rejected", 1);
    promise.set_value(make_failure(RequestStatus::kRejected));
    return future;
  }
  ++accepted_;
  auto req = std::make_shared<Request>();
  // Ids are assigned at *acceptance* in arrival order, so with a fixed
  // request count the id set — and therefore every id-keyed fault
  // decision — is identical run-to-run (determinism contract).
  req->id = next_id_++;
  req->input = std::move(input);
  req->promise = std::move(promise);
  req->enqueue_ns = enqueue_ns;
  req->slo = submit_options.slo;
  if (fault::serve_expire_request(req->id)) {
    req->deadline_ns = enqueue_ns - 1;  // arrives already expired
  } else if (submit_options.deadline_s > 0.0) {
    req->deadline_ns =
        enqueue_ns +
        static_cast<std::int64_t>(submit_options.deadline_s * 1e9);
  } else if (options_.default_deadline_s > 0.0) {
    req->deadline_ns =
        enqueue_ns +
        static_cast<std::int64_t>(options_.default_deadline_s * 1e9);
  }
  queue_.push_back(Dispatch{std::move(req), 0, false});
  const auto depth = static_cast<std::int64_t>(queue_.size());
  max_queue_depth_ = std::max(max_queue_depth_, depth);
  lock.unlock();
  trace::counter_add("serve.requests", 1);
  trace::gauge_record("serve.queue_depth", depth);
  cv_.notify_one();
  return future;
}

Prediction ModelServer::predict(tensor::Tensor input,
                                SubmitOptions submit_options) {
  return submit(std::move(input), submit_options).get();
}

bool ModelServer::claim_dispatch(Dispatch& dispatch) {
  return !dispatch.req->claimed.exchange(true);
}

void ModelServer::resolve_failure(Dispatch& dispatch, RequestStatus status) {
  Prediction p = make_failure(status);
  p.attempts = dispatch.attempt + 1;
  p.hedged = dispatch.req->hedged.load(std::memory_order_relaxed);
  dispatch.req->promise.set_value(std::move(p));
}

void ModelServer::fail_dispatch(Dispatch& dispatch, RequestStatus status) {
  if (claim_dispatch(dispatch)) resolve_failure(dispatch, status);
}

void ModelServer::record_outcome(bool success) {
  if (options_.breaker_threshold <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  record_outcome_locked(success);
}

void ModelServer::record_outcome_locked(bool success) {
  if (options_.breaker_threshold <= 0.0) return;
  outcome_window_.push_back(!success);
  if (!success) ++window_failures_;
  while (static_cast<int>(outcome_window_.size()) > options_.breaker_window) {
    if (outcome_window_.front()) --window_failures_;
    outcome_window_.pop_front();
  }
  if (!breaker_open_ &&
      static_cast<int>(outcome_window_.size()) >= options_.breaker_window &&
      static_cast<double>(window_failures_) >=
          options_.breaker_threshold *
              static_cast<double>(outcome_window_.size())) {
    breaker_open_ = true;
    breaker_open_until_ns_ =
        now_ns() + static_cast<std::int64_t>(options_.breaker_probe_s * 1e9);
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
    trace::counter_add("serve.breaker_opens", 1);
  }
}

void ModelServer::maybe_close_breaker_locked(std::int64_t now) {
  if (!breaker_open_ || now < breaker_open_until_ns_) return;
  // Probe window over: close and forget the window so the next
  // breaker_window outcomes decide afresh.
  breaker_open_ = false;
  outcome_window_.clear();
  window_failures_ = 0;
  breaker_closes_.fetch_add(1, std::memory_order_relaxed);
  trace::counter_add("serve.breaker_closes", 1);
}

std::int64_t ModelServer::flush_ready_retries_locked(std::int64_t now) {
  std::int64_t flushed = 0;
  while (!retry_heap_.empty() && retry_heap_.front().ready_ns <= now) {
    std::pop_heap(retry_heap_.begin(), retry_heap_.end(), heap_later);
    // Retries jump the line: the request already waited a full service
    // attempt plus backoff.
    queue_.push_front(std::move(retry_heap_.back().dispatch));
    retry_heap_.pop_back();
    ++flushed;
  }
  return flushed;
}

void ModelServer::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && drain_ <= drain) return;  // idempotent
    stopping_ = true;
    drain_ = drain;
  }
  cv_.notify_all();

  bool drained = false;
  if (drain) {
    // Bounded drain: poll until no queued, backoff-pending or in-flight
    // work remains, giving up after shutdown_deadline_s so a replica
    // stalled forever cannot hang stop().
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.shutdown_deadline_s));
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty() && retry_heap_.empty() &&
            inflight_count_.load(std::memory_order_acquire) == 0) {
          drained = true;
          break;
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      cv_.notify_all();
    }
  }
  if (!drained) {
    // Deadline blown (or drain not requested): cut injected stalls via
    // the cancel flag and fail everything still queued.
    hard_stop_.store(true, std::memory_order_release);
    std::deque<Dispatch> doomed;
    std::vector<TimedDispatch> doomed_retries;
    {
      std::lock_guard<std::mutex> lock(mu_);
      doomed.swap(queue_);
      doomed_retries.swap(retry_heap_);
    }
    for (auto& dispatch : doomed)
      fail_dispatch(dispatch, RequestStatus::kShutdown);
    for (auto& timed : doomed_retries)
      fail_dispatch(timed.dispatch, RequestStatus::kShutdown);
    cv_.notify_all();
  }
}

std::size_t ModelServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int ModelServer::replica_target() const {
  std::lock_guard<std::mutex> fleet_lock(fleet_mu_);
  return static_cast<int>(replicas_.size());
}

void ModelServer::resize_replicas(int target) {
  DLB_CHECK(target >= 1, "resize_replicas target must be >= 1");
  std::vector<Replica*> started;
  {
    std::lock_guard<std::mutex> fleet_lock(fleet_mu_);
    const int current = static_cast<int>(replicas_.size());
    for (int i = current; i < target; ++i) {
      replicas_.push_back(std::make_unique<Replica>(model_, next_slot_id_++));
      started.push_back(replicas_.back().get());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++live_replicas_;
        all_dead_ = false;
      }
    }
    // Shrink from the highest slots: mark retiring and move to retired_
    // immediately so the supervisor never restarts them. The thread
    // keeps running until it finishes its current batch (the slot
    // unique_ptr is stable in retired_), so no in-flight work is ever
    // dropped; live_replicas_ drops when the thread actually exits.
    for (int i = current; i > target; --i) {
      auto slot = std::move(replicas_.back());
      replicas_.pop_back();
      slot->retiring.store(true, std::memory_order_release);
      retired_.push_back(std::move(slot));
    }
  }
  for (Replica* replica : started)
    replica->thread = std::thread([this, replica] { replica_loop(*replica); });
  cv_.notify_all();
}

ServerStats ModelServer::stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.submitted = submitted_;
    stats.accepted = accepted_;
    stats.rejected = rejected_;
    stats.rejected_shutdown = rejected_shutdown_;
    stats.max_queue_depth = max_queue_depth_;
    stats.breaker_open = breaker_open_;
    stats.live_replicas = live_replicas_;
  }
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.shed_breaker = shed_breaker_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  stats.corrupted = corrupted_.load(std::memory_order_relaxed);
  stats.crashes = crashes_.load(std::memory_order_relaxed);
  stats.restarts = restarts_.load(std::memory_order_relaxed);
  stats.stalls_replaced = stalls_replaced_.load(std::memory_order_relaxed);
  stats.crash_requeues = crash_requeues_.load(std::memory_order_relaxed);
  stats.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  stats.breaker_closes = breaker_closes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> fleet_lock(fleet_mu_);
  for (const auto* group : {&replicas_, &retired_}) {
    for (const auto& replica : *group) {
      std::lock_guard<std::mutex> lock(replica->mu);
      stats.completed += replica->completed;
      stats.batches += replica->batches;
      stats.busy_s += replica->busy_s;
      stats.latency.merge(replica->lat);
    }
  }
  return stats;
}

void ModelServer::supervisor_loop() {
  const auto heartbeat = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.heartbeat_s));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(sup_mu_);
      sup_cv_.wait_for(lock, heartbeat, [this] { return sup_stop_; });
      if (sup_stop_) return;
    }
    supervisor_tick();
  }
}

void ModelServer::supervisor_tick() {
  const std::int64_t now = now_ns();
  bool wake_workers = false;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (flush_ready_retries_locked(now) > 0) wake_workers = true;
    maybe_close_breaker_locked(now);
    if (options_.hedge_delay_s > 0.0) {
      const auto hedge_ns =
          static_cast<std::int64_t>(options_.hedge_delay_s * 1e9);
      for (auto it = inflight_watch_.begin(); it != inflight_watch_.end();) {
        if (it->req->claimed.load(std::memory_order_acquire)) {
          *it = std::move(inflight_watch_.back());
          inflight_watch_.pop_back();
          continue;
        }
        if (now - it->dispatched_ns >= hedge_ns &&
            !it->req->hedged.exchange(true, std::memory_order_acq_rel)) {
          // One hedge per request: a duplicate dispatch with the same
          // attempt index (same fault decisions — determinism), first
          // claim wins.
          queue_.push_front(Dispatch{it->req, it->attempt, true});
          hedges_.fetch_add(1, std::memory_order_relaxed);
          trace::counter_add("serve.hedges", 1);
          wake_workers = true;
        }
        ++it;
      }
    }
  }
  if (wake_workers) cv_.notify_all();

  if (hard_stop_.load(std::memory_order_acquire)) return;

  // Fleet scan: restart crashed slots, replace stalled ones. fleet_mu_
  // is taken before mu_ when both are needed (fixed order, never the
  // reverse).
  const auto stall_ns = options_.stall_timeout_s > 0.0
                            ? static_cast<std::int64_t>(
                                  options_.stall_timeout_s * 1e9)
                            : std::int64_t{0};
  std::vector<Replica*> started;
  {
    std::lock_guard<std::mutex> fleet_lock(fleet_mu_);
    for (auto& slot : replicas_) {
      Replica* replica = slot.get();
      if (replica->dead.load(std::memory_order_acquire)) {
        // The thread has crash-exited (after requeueing its batch);
        // joining it is immediate.
        if (replica->thread.joinable()) replica->thread.join();
        auto fresh = std::make_unique<Replica>(model_, replica->slot);
        retired_.push_back(std::move(slot));
        slot = std::move(fresh);
        started.push_back(slot.get());
        restarts_.fetch_add(1, std::memory_order_relaxed);
        trace::counter_add("serve.restarts", 1);
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++live_replicas_;
          all_dead_ = false;
        }
        continue;
      }
      const std::int64_t busy_since =
          replica->busy_since_ns.load(std::memory_order_acquire);
      if (stall_ns > 0 && busy_since > 0 && now - busy_since > stall_ns &&
          !replica->abandoned.load(std::memory_order_acquire)) {
        // Stalled past the watchdog: abandon the incarnation (it will
        // exit once its batch finally completes — hedges cover its
        // stranded requests meanwhile) and staff the slot afresh.
        replica->abandoned.store(true, std::memory_order_release);
        auto fresh = std::make_unique<Replica>(model_, replica->slot);
        retired_.push_back(std::move(slot));
        slot = std::move(fresh);
        started.push_back(slot.get());
        stalls_replaced_.fetch_add(1, std::memory_order_relaxed);
        trace::counter_add("serve.stalls_replaced", 1);
      }
    }
  }
  for (Replica* replica : started)
    replica->thread = std::thread([this, replica] { replica_loop(*replica); });
  if (!started.empty()) cv_.notify_all();
}

void ModelServer::crash_exit(Replica& replica, std::vector<Dispatch>& batch) {
  // Counter first (counter-before-resolve): the all-dead drain below
  // resolves client futures, and a client that just observed one may
  // immediately read stats() — it must find this crash counted.
  crashes_.fetch_add(1, std::memory_order_relaxed);
  trace::counter_add("serve.crashes", 1);
  // Requeue the in-flight batch at the head of the queue before dying:
  // no client future is ever stranded by a crash, the work just lands
  // on a surviving (or restarted) replica.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = batch.rbegin(); it != batch.rend(); ++it)
      queue_.push_front(std::move(*it));
    crash_requeues_.fetch_add(static_cast<std::int64_t>(batch.size()),
                              std::memory_order_relaxed);
    inflight_count_.fetch_sub(static_cast<std::int64_t>(batch.size()),
                              std::memory_order_acq_rel);
    --live_replicas_;
    if (live_replicas_ == 0 && !options_.supervise) {
      // Nobody will ever restart us: fail everything queued now and
      // turn submit() into an immediate error (see submit).
      all_dead_ = true;
      for (auto& dispatch : queue_) {
        if (!claim_dispatch(dispatch)) continue;
        errors_.fetch_add(1, std::memory_order_relaxed);
        resolve_failure(dispatch, RequestStatus::kError);
      }
      queue_.clear();
      for (auto& timed : retry_heap_) {
        if (!claim_dispatch(timed.dispatch)) continue;
        errors_.fetch_add(1, std::memory_order_relaxed);
        resolve_failure(timed.dispatch, RequestStatus::kError);
      }
      retry_heap_.clear();
    }
  }
  batch.clear();
  cv_.notify_all();
  // dead is the supervisor's cue to reap the slot; set it last so the
  // requeue above is visible before any restart can race it.
  replica.dead.store(true, std::memory_order_release);
}

void ModelServer::replica_loop(Replica& replica) {
  const auto delay = std::chrono::nanoseconds(
      static_cast<std::int64_t>(options_.max_batch_delay_s * 1e9));
  const bool watch_inflight =
      options_.supervise && options_.hedge_delay_s > 0.0;
  std::vector<Dispatch> batch;
  std::vector<Dispatch> expired;
  batch.reserve(static_cast<std::size_t>(options_.max_batch));
  std::int64_t batch_ordinal = 0;  // per-incarnation (determinism key)

  for (;;) {
    batch.clear();
    expired.clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return hard_stop_.load(std::memory_order_acquire) ||
             replica.abandoned.load(std::memory_order_acquire) ||
             replica.retiring.load(std::memory_order_acquire) ||
             !queue_.empty() ||
             (stopping_ && retry_heap_.empty() &&
              inflight_count_.load(std::memory_order_acquire) == 0);
    });
    if (hard_stop_.load(std::memory_order_acquire) ||
        replica.abandoned.load(std::memory_order_acquire))
      return;
    if (replica.retiring.load(std::memory_order_acquire)) {
      // Scale-down retire point: only ever between batches, so the
      // batch this replica just finished has fully scattered. The lease
      // is released here, not in resize_replicas, so live_replicas_
      // counts threads that can still touch work.
      --live_replicas_;
      return;
    }
    if (queue_.empty()) {
      if (stopping_ && retry_heap_.empty() &&
          inflight_count_.load(std::memory_order_acquire) == 0)
        return;  // fully drained
      continue;
    }

    // Greedy grab, then linger: take everything available up to
    // max_batch; if short and a delay is configured, wait for more
    // until the *oldest* request in the batch hits its deadline. The
    // deadline is anchored at that request's enqueue time, not at the
    // grab, so no request's queueing is extended past max_batch_delay_s
    // by the batcher itself. Claimed dispatches (hedge already won) are
    // dropped; expired ones are shed here — before forward, never
    // batched.
    const auto take_available = [&] {
      while (!queue_.empty() &&
             static_cast<std::int64_t>(batch.size()) < options_.max_batch) {
        Dispatch dispatch = std::move(queue_.front());
        queue_.pop_front();
        if (dispatch.req->claimed.load(std::memory_order_acquire)) continue;
        if (dispatch.req->deadline_ns > 0 &&
            now_ns() > dispatch.req->deadline_ns) {
          expired.push_back(std::move(dispatch));
          continue;
        }
        inflight_count_.fetch_add(1, std::memory_order_acq_rel);
        if (watch_inflight)
          inflight_watch_.push_back(
              {dispatch.req, now_ns(), dispatch.attempt});
        batch.push_back(std::move(dispatch));
      }
    };
    take_available();
    if (!batch.empty() &&
        static_cast<std::int64_t>(batch.size()) < options_.max_batch &&
        delay.count() > 0) {
      const std::int64_t deadline_ns =
          batch.front().req->enqueue_ns + delay.count();
      while (static_cast<std::int64_t>(batch.size()) < options_.max_batch &&
             !stopping_ && !hard_stop_.load(std::memory_order_acquire) &&
             !replica.abandoned.load(std::memory_order_acquire) &&
             !replica.retiring.load(std::memory_order_acquire)) {
        const std::int64_t remaining_ns = deadline_ns - now_ns();
        if (remaining_ns <= 0) break;
        cv_.wait_for(lock, std::chrono::nanoseconds(remaining_ns));
        take_available();
      }
      take_available();
    }
    const bool more_work = !queue_.empty();
    lock.unlock();
    // Another replica may be able to start on what we left behind.
    if (more_work) cv_.notify_one();

    for (auto& dispatch : expired) {
      if (!claim_dispatch(dispatch)) continue;
      expired_.fetch_add(1, std::memory_order_relaxed);
      trace::counter_add("serve.expired", 1);
      record_outcome(false);
      resolve_failure(dispatch, RequestStatus::kExpired);
    }
    if (batch.empty()) continue;

    ++batch_ordinal;
    if (fault::serve_should_crash(replica.slot, batch_ordinal)) {
      crash_exit(replica, batch);
      return;
    }
    replica.busy_since_ns.store(now_ns(), std::memory_order_release);
    process_batch(replica, batch, batch_ordinal);
    replica.busy_since_ns.store(0, std::memory_order_release);
  }
}

void ModelServer::process_batch(Replica& replica, std::vector<Dispatch>& batch,
                                std::int64_t batch_ordinal) {
  const std::int64_t batch_size = static_cast<std::int64_t>(batch.size());
  const std::int64_t start_ns = now_ns();

  // Queue wait ends now, as assembly begins. Emitted with explicit
  // endpoints because the span started on the client thread.
  StageLatencies lat;
  for (const Dispatch& dispatch : batch) {
    lat.queue_wait.record_ns(start_ns - dispatch.req->enqueue_ns);
    trace::record_span("serve.enqueue_wait", "serve",
                       dispatch.req->enqueue_ns, start_ns);
  }

  // Assemble: gather request samples into one [B, ...sample] tensor.
  tensor::Tensor batched;
  {
    trace::Span span("serve.assemble", "serve");
    const tensor::Shape& sample = options_.sample_shape;
    tensor::Shape batched_shape;
    switch (sample.rank()) {
      case 1:
        batched_shape = {batch_size, sample[0]};
        break;
      case 2:
        batched_shape = {batch_size, sample[0], sample[1]};
        break;
      default:
        batched_shape = {batch_size, sample[0], sample[1], sample[2]};
        break;
    }
    batched = tensor::Tensor(batched_shape);
    const std::int64_t stride = sample.numel();
    float* dst = batched.raw();
    for (std::int64_t i = 0; i < batch_size; ++i)
      std::memcpy(dst + i * stride,
                  batch[static_cast<std::size_t>(i)].req->input.raw(),
                  static_cast<std::size_t>(stride) * sizeof(float));
  }
  const std::int64_t assembled_ns = now_ns();

  // Injected slowdown lands inside the "busy" window so the stall
  // watchdog observes it exactly like a genuinely slow forward.
  fault::serve_maybe_stall(replica.slot, batch_ordinal, &hard_stop_);

  // Forward: one batched pass over the shared frozen weights.
  tensor::Tensor logits;
  tensor::Tensor probs;
  {
    trace::Span span("serve.forward", "serve");
    logits = replica.model.forward(batched, options_.device);
    if (options_.compute_probabilities)
      probs = tensor::softmax_rows(logits, options_.device);
  }
  const std::int64_t forwarded_ns = now_ns();

  // Scatter: per dispatch, route the result through the fault filters
  // (transient error → retry/fail, corruption) and the first-wins
  // claim (hedged duplicates resolve exactly once). Results are built
  // and every counter committed here; promises resolve only after the
  // whole batch's accounting lands below, so a client that just
  // observed its future may immediately read stats() and find its own
  // request — and its batchmates — counted.
  std::int64_t delivered = 0;
  std::vector<std::optional<Prediction>> resolutions(
      static_cast<std::size_t>(batch_size));
  {
    trace::Span span("serve.scatter", "serve");
    const std::int64_t classes = logits.shape().dim(-1);
    const float* logit_rows = logits.raw();
    for (std::int64_t i = 0; i < batch_size; ++i) {
      Dispatch& dispatch = batch[static_cast<std::size_t>(i)];
      Request& req = *dispatch.req;
      if (fault::serve_forward_error(req.id, dispatch.attempt)) {
        bool retry_scheduled = false;
        if (options_.supervise && dispatch.attempt < options_.max_retries &&
            !hard_stop_.load(std::memory_order_acquire)) {
          const std::int64_t backoff_ns = static_cast<std::int64_t>(
              options_.retry_backoff_s * 1e9 *
              static_cast<double>(std::int64_t{1} << dispatch.attempt));
          std::lock_guard<std::mutex> lock(mu_);
          retry_heap_.push_back(
              {now_ns() + backoff_ns,
               Dispatch{dispatch.req, dispatch.attempt + 1, false}});
          std::push_heap(retry_heap_.begin(), retry_heap_.end(), heap_later);
          retries_.fetch_add(1, std::memory_order_relaxed);
          trace::counter_add("serve.retries", 1);
          retry_scheduled = true;
        }
        if (!retry_scheduled && claim_dispatch(dispatch)) {
          errors_.fetch_add(1, std::memory_order_relaxed);
          trace::counter_add("serve.errors", 1);
          record_outcome(false);
          Prediction failure = make_failure(RequestStatus::kError);
          failure.attempts = dispatch.attempt + 1;
          failure.hedged = req.hedged.load(std::memory_order_relaxed);
          resolutions[static_cast<std::size_t>(i)] = std::move(failure);
        }
        continue;
      }
      if (req.claimed.exchange(true)) continue;  // hedge twin won
      Prediction result;
      result.status = RequestStatus::kOk;
      const float* row = logit_rows + i * classes;
      result.label = static_cast<std::int64_t>(
          std::max_element(row, row + classes) - row);
      if (options_.compute_probabilities) {
        const float* prow = probs.raw() + i * classes;
        result.probabilities.assign(prow, prow + classes);
      }
      if (fault::serve_corrupt_response(req.id)) {
        // Detectable payload damage: probabilities no longer sum to 1
        // (or the label is shifted when no probabilities ride along).
        if (!result.probabilities.empty()) {
          for (float& p : result.probabilities) p *= 2.0f;
        } else {
          result.label = (result.label + 1) % classes;
        }
        corrupted_.fetch_add(1, std::memory_order_relaxed);
        trace::counter_add("serve.corrupted", 1);
      }
      result.batch_size = batch_size;
      result.attempts = dispatch.attempt + 1;
      result.hedged = req.hedged.load(std::memory_order_relaxed);
      result.queue_wait_s =
          static_cast<double>(start_ns - req.enqueue_ns) * 1e-9;
      const std::int64_t total_ns = now_ns() - req.enqueue_ns;
      result.total_s = static_cast<double>(total_ns) * 1e-9;
      lat.total.record_ns(total_ns);
      if (dispatch.is_hedge)
        hedge_wins_.fetch_add(1, std::memory_order_relaxed);
      ++delivered;
      record_outcome(true);
      resolutions[static_cast<std::size_t>(i)] = std::move(result);
    }
  }
  const std::int64_t end_ns = now_ns();

  lat.assemble.record_ns(assembled_ns - start_ns);
  lat.forward.record_ns(forwarded_ns - assembled_ns);
  lat.scatter.record_ns(end_ns - forwarded_ns);
  trace::counter_add("serve.batches", 1);

  // Accounting commits before any promise resolves and before the
  // in-flight count drops, so both a just-resumed client and a drain
  // waiter observing zero in-flight see the final counters.
  {
    std::lock_guard<std::mutex> lock(replica.mu);
    replica.lat.merge(lat);
    replica.completed += delivered;
    replica.batches += 1;
    replica.busy_s += static_cast<double>(end_ns - start_ns) * 1e-9;
  }
  for (std::int64_t i = 0; i < batch_size; ++i) {
    auto& resolution = resolutions[static_cast<std::size_t>(i)];
    if (resolution.has_value())
      batch[static_cast<std::size_t>(i)].req->promise.set_value(
          std::move(*resolution));
  }
  inflight_count_.fetch_sub(batch_size, std::memory_order_acq_rel);
  cv_.notify_all();
}

}  // namespace dlbench::serve
