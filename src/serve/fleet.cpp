#include "serve/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "runtime/trace.hpp"
#include "util/error.hpp"

namespace dlbench::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

double seconds_between(std::int64_t a_ns, std::int64_t b_ns) {
  return static_cast<double>(b_ns - a_ns) * 1e-9;
}

Prediction immediate(RequestStatus status) {
  Prediction p;
  p.status = status;
  return p;
}

}  // namespace

const char* to_string(FleetPolicy policy) {
  switch (policy) {
    case FleetPolicy::kWeightedFair:
      return "weighted_fair";
    case FleetPolicy::kFifo:
      return "fifo";
  }
  return "unknown";
}

const char* to_string(FleetDecisionKind kind) {
  switch (kind) {
    case FleetDecisionKind::kShedAdmission:
      return "shed";
    case FleetDecisionKind::kRejectQueue:
      return "reject";
    case FleetDecisionKind::kDispatch:
      return "dispatch";
    case FleetDecisionKind::kScaleUp:
      return "scale_up";
    case FleetDecisionKind::kScaleDown:
      return "scale_down";
  }
  return "unknown";
}

std::string format_decision(const FleetDecision& d) {
  std::ostringstream out;
  out << d.ordinal << ' ' << to_string(d.kind) << ' '
      << (d.tenant.empty() ? "-" : d.tenant) << ' ' << d.model << ' '
      << to_string(d.slo) << ' ' << d.detail;
  return out.str();
}

FleetManager::FleetManager(FleetOptions options)
    : options_(std::move(options)) {
  DLB_CHECK(options_.core_budget >= 1, "fleet core_budget must be >= 1");
  DLB_CHECK(options_.tenant_queue_capacity > 0,
            "fleet tenant_queue_capacity must be positive");
  DLB_CHECK(options_.global_queue_budget > 0,
            "fleet global_queue_budget must be positive");
  DLB_CHECK(options_.drr_quantum >= 1, "fleet drr_quantum must be >= 1");
  DLB_CHECK(options_.autoscale_every >= 1,
            "fleet autoscale_every must be >= 1");
  DLB_CHECK(options_.hysteresis_evals >= 1,
            "fleet hysteresis_evals must be >= 1");
  DLB_CHECK(options_.bronze_watermark <= options_.silver_watermark &&
                options_.silver_watermark <= options_.gold_watermark,
            "fleet SLO watermarks must be ordered bronze <= silver <= gold");
}

FleetManager::~FleetManager() { stop(true); }

void FleetManager::register_model(FleetModelConfig config,
                                  nn::FrozenModel model) {
  std::lock_guard<std::mutex> lock(mu_);
  DLB_CHECK(!started_, "register_model must precede start()");
  DLB_CHECK(!config.name.empty(), "fleet model needs a name");
  DLB_CHECK(config.min_replicas >= 1, "fleet model min_replicas must be >= 1");
  DLB_CHECK(config.max_replicas >= config.min_replicas,
            "fleet model max_replicas must be >= min_replicas");
  DLB_CHECK(config.window_per_replica >= 1,
            "fleet model window_per_replica must be >= 1");
  for (const auto& m : models_)
    DLB_CHECK(m->config.name != config.name,
              "fleet model name registered twice: " + config.name);
  models_.push_back(
      std::make_unique<Model>(std::move(config), std::move(model)));
}

void FleetManager::register_tenant(FleetTenantConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  DLB_CHECK(!started_, "register_tenant must precede start()");
  DLB_CHECK(!config.name.empty(), "fleet tenant needs a name");
  DLB_CHECK(config.weight >= 1, "fleet tenant weight must be >= 1");
  for (const auto& t : tenants_)
    DLB_CHECK(t.config.name != config.name,
              "fleet tenant name registered twice: " + config.name);
  int model_index = -1;
  for (int i = 0; i < static_cast<int>(models_.size()); ++i)
    if (models_[static_cast<std::size_t>(i)]->config.name == config.model)
      model_index = i;
  DLB_CHECK(model_index >= 0,
            "fleet tenant targets unregistered model: " + config.model);
  Tenant tenant;
  tenant.config = std::move(config);
  tenant.model_index = model_index;
  tenants_.push_back(std::move(tenant));
}

void FleetManager::start(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DLB_CHECK(!started_, "fleet already started");
    DLB_CHECK(!models_.empty(), "fleet needs at least one model");
    DLB_CHECK(!tenants_.empty(), "fleet needs at least one tenant");
    int floor = 0;
    for (const auto& m : models_) floor += m->config.min_replicas;
    DLB_CHECK(floor <= options_.core_budget,
              "sum of model min_replicas exceeds the fleet core budget");
    for (auto& m : models_) {
      ServerOptions server_options;
      server_options.sample_shape = m->config.sample_shape;
      server_options.replicas = m->config.min_replicas;
      server_options.max_batch = m->config.max_batch;
      server_options.max_batch_delay_s = m->config.max_batch_delay_s;
      server_options.device = m->config.device;
      server_options.compute_probabilities = m->config.compute_probabilities;
      // The fleet is the admission layer; the inner server must never
      // push back on dispatches the scheduler already admitted. The
      // dispatch window bounds in-flight work far below these.
      server_options.queue_capacity = 1 << 16;
      server_options.reject_watermark = 1 << 15;
      m->server =
          std::make_unique<ModelServer>(m->frozen, std::move(server_options));
      m->target = m->config.min_replicas;
      m->peak = m->target;
      m->low = m->target;
    }
    started_ = true;
    paused_ = paused;
  }
  for (int i = 0; i < static_cast<int>(models_.size()); ++i)
    models_[static_cast<std::size_t>(i)]->watcher =
        std::thread([this, i] { watcher_loop(i); });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

std::future<Prediction> FleetManager::submit(const std::string& tenant,
                                             tensor::Tensor input) {
  return submit(tenant_index(tenant), std::move(input));
}

std::future<Prediction> FleetManager::submit(int tenant_index,
                                             tensor::Tensor input) {
  auto promise = std::make_shared<std::promise<Prediction>>();
  std::future<Prediction> future = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    DLB_CHECK(started_, "fleet submit() before start()");
    DLB_CHECK(tenant_index >= 0 &&
                  tenant_index < static_cast<int>(tenants_.size()),
              "fleet tenant index out of range");
    Tenant& tenant = tenants_[static_cast<std::size_t>(tenant_index)];
    const Model& model = *models_[static_cast<std::size_t>(tenant.model_index)];
    ++tenant.submitted;
    runtime::trace::counter_add("fleet.submitted", 1);
    if (stop_) {
      promise->set_value(immediate(RequestStatus::kShutdown));
      return future;
    }
    if (options_.slo_admission) {
      double watermark = options_.gold_watermark;
      if (tenant.config.slo == SloClass::kBronze)
        watermark = options_.bronze_watermark;
      else if (tenant.config.slo == SloClass::kSilver)
        watermark = options_.silver_watermark;
      const auto threshold = static_cast<std::int64_t>(
          watermark * static_cast<double>(options_.global_queue_budget));
      if (queued_total_ >= threshold) {
        ++tenant.shed;
        runtime::trace::counter_add("fleet.shed", 1);
        log_locked(FleetDecisionKind::kShedAdmission, tenant.config.name,
                   model.config.name, tenant.config.slo, queued_total_);
        promise->set_value(immediate(RequestStatus::kShed));
        return future;
      }
    }
    if (tenant.queue.size() >= options_.tenant_queue_capacity) {
      ++tenant.rejected;
      runtime::trace::counter_add("fleet.rejected", 1);
      log_locked(FleetDecisionKind::kRejectQueue, tenant.config.name,
                 model.config.name, tenant.config.slo,
                 static_cast<std::int64_t>(tenant.queue.size()));
      promise->set_value(immediate(RequestStatus::kRejected));
      return future;
    }
    ++tenant.admitted;
    ++queued_total_;
    runtime::trace::gauge_record("fleet.queued", queued_total_);
    tenant.queue.push_back(Queued{std::move(input), promise, now_ns()});
    if (options_.policy == FleetPolicy::kFifo) fifo_.push_back(tenant_index);
  }
  cv_work_.notify_all();
  return future;
}

void FleetManager::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void FleetManager::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void FleetManager::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  DLB_CHECK(started_, "fleet drain() before start()");
  if (paused_) {
    paused_ = false;
    cv_work_.notify_all();
  }
  cv_idle_.wait(lock, [&] { return idle_locked(); });
}

void FleetManager::stop(bool drain_first) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) {
      // Never started (nothing to join) or already stopped (idempotent).
      if (!started_) return;
    }
  }
  if (drain_first) drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_watch_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Fail whatever is still queued (drain=false path), outside mu_ so
  // future continuations can't deadlock back into the fleet.
  std::vector<std::shared_ptr<std::promise<Prediction>>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& tenant : tenants_) {
      while (!tenant.queue.empty()) {
        orphans.push_back(std::move(tenant.queue.front().promise));
        tenant.queue.pop_front();
        --queued_total_;
      }
    }
    fifo_.clear();
  }
  for (auto& promise : orphans)
    promise->set_value(immediate(RequestStatus::kShutdown));
  // Watchers drain their pending lists (the inner servers resolve every
  // accepted future in bounded time), then exit on stop_ + empty.
  for (auto& m : models_)
    if (m->watcher.joinable()) m->watcher.join();
  for (auto& m : models_)
    if (m->server) m->server->shutdown(true);
  cv_idle_.notify_all();
}

void FleetManager::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_work_.wait(lock, [&] {
      return stop_ || (!paused_ && queued_total_ > 0);
    });
    if (stop_) return;
    const int t = pick_locked();
    if (t < 0) continue;  // raced with a concurrent drain-to-empty
    Tenant& tenant = tenants_[static_cast<std::size_t>(t)];
    Model& model = *models_[static_cast<std::size_t>(tenant.model_index)];
    // Strict-order blocking dispatch: the chosen tenant is committed.
    // If its model's window is full we wait for a completion, never
    // skip — see the determinism contract in the header.
    cv_work_.wait(lock, [&] {
      return stop_ || model.inflight < window_locked(model);
    });
    if (stop_) return;
    Queued queued = std::move(tenant.queue.front());
    tenant.queue.pop_front();
    --queued_total_;
    ++tenant.dispatched;
    ++model.dispatched;
    ++model.inflight;
    ++inflight_total_;
    ++dispatch_count_;
    log_locked(FleetDecisionKind::kDispatch, tenant.config.name,
               model.config.name, tenant.config.slo, queued_total_);
    runtime::trace::counter_add("fleet.dispatches", 1);
    const std::int64_t dispatch_ns = now_ns();
    std::future<Prediction> inner;
    {
      runtime::trace::Span span("fleet.dispatch", "serve");
      SubmitOptions submit_options;
      submit_options.slo = tenant.config.slo;
      inner = model.server->submit(std::move(queued.input), submit_options);
    }
    model.pending.push_back(Pending{std::move(inner), std::move(queued.promise),
                                    t, queued.admit_ns, dispatch_ns});
    cv_watch_.notify_all();
    if (options_.autoscale && dispatch_count_ % options_.autoscale_every == 0)
      autoscale_locked();
  }
}

void FleetManager::watcher_loop(int model_index) {
  Model& model = *models_[static_cast<std::size_t>(model_index)];
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_watch_.wait(lock, [&] { return stop_ || !model.pending.empty(); });
    if (model.pending.empty()) {
      if (stop_) return;
      continue;
    }
    Pending pending = std::move(model.pending.front());
    model.pending.pop_front();
    lock.unlock();
    // Block outside the lock: the inner server resolves every accepted
    // future (its shutdown deadline bounds even pathological stalls).
    Prediction prediction = pending.inner.get();
    const std::int64_t resolve_ns = now_ns();
    lock.lock();
    Tenant& tenant = tenants_[static_cast<std::size_t>(pending.tenant)];
    if (prediction.status == RequestStatus::kOk) {
      ++tenant.ok;
      tenant.latency.record_s(seconds_between(pending.admit_ns, resolve_ns));
      tenant.queue_wait.record_s(
          seconds_between(pending.admit_ns, pending.dispatch_ns));
    } else {
      ++tenant.failed;
    }
    --model.inflight;
    --inflight_total_;
    const bool idle = idle_locked();
    lock.unlock();
    // End-to-end time as the tenant saw it: admission → resolution,
    // with the fleet queue wait folded into the reported wait.
    prediction.queue_wait_s +=
        seconds_between(pending.admit_ns, pending.dispatch_ns);
    prediction.total_s = seconds_between(pending.admit_ns, resolve_ns);
    pending.promise->set_value(std::move(prediction));
    cv_work_.notify_all();  // window freed
    if (idle) cv_idle_.notify_all();
    lock.lock();
  }
}

int FleetManager::pick_locked() {
  if (options_.policy == FleetPolicy::kFifo) {
    while (!fifo_.empty()) {
      const int t = fifo_.front();
      fifo_.pop_front();
      if (!tenants_[static_cast<std::size_t>(t)].queue.empty()) return t;
    }
    return -1;
  }
  return pick_drr_locked();
}

int FleetManager::pick_drr_locked() {
  const int n = static_cast<int>(tenants_.size());
  // At most one full rotor revolution past the serving tenant: each
  // iteration either returns, or advances the rotor by one.
  for (int guard = 0; guard <= n + 1; ++guard) {
    if (drr_serving_ >= 0) {
      Tenant& tenant = tenants_[static_cast<std::size_t>(drr_serving_)];
      if (!tenant.queue.empty() && tenant.deficit >= 1) {
        tenant.deficit -= 1;
        return drr_serving_;
      }
      // Emptied queues forfeit leftover deficit (classic DRR: deficit
      // only accumulates while backlogged, so an idle tenant can't
      // hoard service credit).
      if (tenant.queue.empty()) tenant.deficit = 0;
      drr_cursor_ = (drr_serving_ + 1) % n;
      drr_serving_ = -1;
    }
    int scanned = 0;
    while (scanned < n &&
           tenants_[static_cast<std::size_t>(drr_cursor_)].queue.empty()) {
      tenants_[static_cast<std::size_t>(drr_cursor_)].deficit = 0;
      drr_cursor_ = (drr_cursor_ + 1) % n;
      ++scanned;
    }
    if (scanned == n) return -1;  // every queue empty
    Tenant& next = tenants_[static_cast<std::size_t>(drr_cursor_)];
    next.deficit +=
        options_.drr_quantum * static_cast<std::int64_t>(next.config.weight);
    drr_serving_ = drr_cursor_;
  }
  DLB_CHECK(false, "DRR rotor failed to converge");
  return -1;
}

void FleetManager::autoscale_locked() {
  int total = 0;
  for (const auto& m : models_) total += m->target;
  for (auto& model_ptr : models_) {
    Model& m = *model_ptr;
    // Backlog-only signal, deliberately excluding in-flight work:
    // queued counts are pure functions of the decision ordinal, so the
    // scale sequence replays deterministically; in-flight counts are
    // completion-timing dependent.
    std::int64_t backlog = 0;
    for (const auto& tenant : tenants_)
      if (&*models_[static_cast<std::size_t>(tenant.model_index)] == &m)
        backlog += static_cast<std::int64_t>(tenant.queue.size());
    const double per_replica =
        static_cast<double>(backlog) / static_cast<double>(m.target);
    if (per_replica >= options_.scale_up_backlog &&
        m.target < m.config.max_replicas && total < options_.core_budget) {
      const int from = m.target;
      ++m.target;
      ++total;
      ++m.scale_ups;
      m.low_evals = 0;
      m.peak = std::max(m.peak, m.target);
      m.server->resize_replicas(m.target);
      log_locked(FleetDecisionKind::kScaleUp, "", m.config.name,
                 SloClass::kSilver, m.target);
      timeline_.push_back(
          FleetScaleEvent{decision_ordinal_ - 1, m.config.name, from, m.target});
      runtime::trace::counter_add("fleet.scale_ups", 1);
      runtime::trace::gauge_record("fleet.replicas", total);
    } else if (per_replica <= options_.scale_down_backlog &&
               m.target > m.config.min_replicas) {
      if (++m.low_evals >= options_.hysteresis_evals) {
        const int from = m.target;
        --m.target;
        --total;
        ++m.scale_downs;
        m.low_evals = 0;
        m.low = std::min(m.low, m.target);
        m.server->resize_replicas(m.target);
        log_locked(FleetDecisionKind::kScaleDown, "", m.config.name,
                   SloClass::kSilver, m.target);
        timeline_.push_back(FleetScaleEvent{decision_ordinal_ - 1,
                                            m.config.name, from, m.target});
        runtime::trace::counter_add("fleet.scale_downs", 1);
        runtime::trace::gauge_record("fleet.replicas", total);
      }
    } else {
      // Neither pressure nor sustained slack: hysteresis restarts.
      m.low_evals = 0;
    }
  }
}

void FleetManager::log_locked(FleetDecisionKind kind,
                              const std::string& tenant,
                              const std::string& model, SloClass slo,
                              std::int64_t detail) {
  const std::int64_t ordinal = decision_ordinal_++;
  if (!options_.record_decisions) return;
  FleetDecision d;
  d.ordinal = ordinal;
  d.kind = kind;
  d.tenant = tenant;
  d.model = model;
  d.slo = slo;
  d.detail = detail;
  log_.push_back(std::move(d));
}

FleetStats FleetManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetStats stats;
  stats.tenants.reserve(tenants_.size());
  for (const auto& tenant : tenants_) {
    FleetTenantStats t;
    t.tenant = tenant.config.name;
    t.model = tenant.config.model;
    t.slo = tenant.config.slo;
    t.weight = tenant.config.weight;
    t.submitted = tenant.submitted;
    t.admitted = tenant.admitted;
    t.shed = tenant.shed;
    t.rejected = tenant.rejected;
    t.dispatched = tenant.dispatched;
    t.ok = tenant.ok;
    t.failed = tenant.failed;
    t.latency = tenant.latency;
    t.queue_wait = tenant.queue_wait;
    stats.tenants.push_back(std::move(t));
  }
  stats.models.reserve(models_.size());
  for (const auto& m : models_) {
    FleetModelStats s;
    s.model = m->config.name;
    s.replicas = m->target;
    s.replicas_peak = m->peak;
    s.replicas_low = m->low;
    s.dispatched = m->dispatched;
    s.scale_ups = m->scale_ups;
    s.scale_downs = m->scale_downs;
    stats.models.push_back(std::move(s));
  }
  stats.timeline = timeline_;
  stats.decisions = decision_ordinal_;
  stats.queued = queued_total_;
  stats.inflight = inflight_total_;
  return stats;
}

std::vector<FleetDecision> FleetManager::decision_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

int FleetManager::tenant_index(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < static_cast<int>(tenants_.size()); ++i)
    if (tenants_[static_cast<std::size_t>(i)].config.name == tenant) return i;
  DLB_CHECK(false, "unknown fleet tenant: " + tenant);
  return -1;
}

int FleetManager::replica_target(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& m : models_)
    if (m->config.name == model) return m->target;
  DLB_CHECK(false, "unknown fleet model: " + model);
  return -1;
}

FleetLoadResult run_fleet_trace(
    FleetManager& fleet, const std::vector<TenantStream>& streams,
    const std::vector<MixedArrival>& trace,
    const std::vector<std::vector<tensor::Tensor>>& inputs,
    const FleetLoadOptions& options) {
  DLB_CHECK(inputs.size() == streams.size(),
            "run_fleet_trace needs one input set per stream");
  for (const auto& set : inputs)
    DLB_CHECK(!set.empty(), "run_fleet_trace input sets must be non-empty");
  std::vector<int> tenant_of_stream;
  tenant_of_stream.reserve(streams.size());
  for (const auto& stream : streams)
    tenant_of_stream.push_back(fleet.tenant_index(stream.tenant));

  FleetLoadResult result;
  result.issued = static_cast<std::int64_t>(trace.size());
  std::vector<std::future<Prediction>> futures;
  futures.reserve(trace.size());
  std::vector<std::int64_t> arrival_count(streams.size(), 0);
  const auto start = Clock::now();
  for (const auto& arrival : trace) {
    const auto s = static_cast<std::size_t>(arrival.stream);
    if (options.realtime) {
      const double offset_s = arrival.t_s * options.time_scale;
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(offset_s)));
    }
    const auto& set = inputs[s];
    const auto k = static_cast<std::size_t>(arrival_count[s]++) % set.size();
    futures.push_back(fleet.submit(tenant_of_stream[s], set[k]));
  }
  fleet.drain();
  for (auto& future : futures) future.wait();
  result.duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace dlbench::serve
