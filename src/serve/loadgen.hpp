#pragma once

// Load generation against a ModelServer.
//
// Two disciplines, because they measure different things:
//
//   Open loop — a dispatcher issues requests on a Poisson process at a
//   fixed offered rate, regardless of how the server is keeping up.
//   This is the right model for external traffic and the only one that
//   exposes queueing collapse: past saturation the latency distribution
//   degrades and admission control starts shedding, while a closed loop
//   would silently self-throttle (coordinated omission).
//
//   Closed loop — N client threads each keep exactly one request in
//   flight (submit, wait, repeat). Offered load adapts to service rate;
//   this measures peak sustainable throughput and per-request latency
//   without queueing inflation.
//
// Each client/dispatcher records into its own LatencyHistogram; results
// are merged at the end (exercising the histogram's exact merge).

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/histogram.hpp"
#include "serve/server.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dlbench::serve {

/// One load-generation run's policy.
struct LoadGenOptions {
  enum class Mode {
    kOpenLoop,    // Poisson arrivals at offered_rps
    kClosedLoop,  // `clients` threads, one request in flight each
  };
  Mode mode = Mode::kClosedLoop;
  /// Target arrival rate, requests/second (open loop only).
  double offered_rps = 1000.0;
  /// Concurrent client threads (closed loop only).
  int clients = 4;
  double duration_s = 0.5;
  /// Seed for arrival-gap sampling and input selection.
  std::uint64_t seed = 7;
  /// Open loop only: issue exactly this many requests instead of
  /// running for duration_s. A fixed request count fixes the request-id
  /// set, which makes every id-keyed fault decision — and therefore the
  /// gauntlet's injected-event totals — identical run-to-run.
  std::int64_t max_requests = 0;
  /// Per-request deadline forwarded to submit(); 0 = none.
  double deadline_s = 0.0;
  /// Fraction of requests submitted at SloClass::kBronze (sheddable by
  /// the server's circuit breaker). Drawn from the run's seeded Rng.
  double low_priority_fraction = 0.0;
  /// Record one Sample per issued request (issue offset, latency,
  /// status) so callers can build windowed/recovery timelines.
  bool record_samples = false;
};

const char* to_string(LoadGenOptions::Mode mode);

/// Exponential inter-arrival gap (seconds) for a Poisson process at
/// `rate_rps`, from a uniform draw `u` in [0, 1]. Inverse-CDF
/// -log(1-u)/rate, with u clamped away from 1 so the gap stays finite —
/// at u == 1.0 the raw formula is -log(0) = +inf, which would stall the
/// open-loop dispatcher forever on one unlucky draw.
double poisson_gap_s(double u, double rate_rps);

/// Same, drawing u from `rng` (the open-loop dispatcher's form).
double poisson_gap_s(util::Rng& rng, double rate_rps);

/// Client-side view of one run (server-side counters live in
/// ServerStats; the two are reported together by bench_serve).
struct LoadGenResult {
  double duration_s = 0.0;     // wall clock incl. draining in-flight work
  double offered_rps = 0.0;    // issued / dispatch window (excl. drain)
  double achieved_rps = 0.0;   // ok / duration_s
  std::int64_t issued = 0;
  std::int64_t ok = 0;
  std::int64_t rejected = 0;
  std::int64_t shutdown = 0;
  std::int64_t expired = 0;    // deadline shed (client-visible timeouts)
  std::int64_t errors = 0;     // forward errors after retry exhaustion
  std::int64_t shed = 0;       // breaker-shed low-priority requests
  std::int64_t retried = 0;    // ok responses that needed > 1 attempt
  std::int64_t hedged = 0;     // ok responses with a hedge launched
  /// Responses whose payload failed the integrity check (softmax row
  /// no longer sums to ~1) — the corruption fault made client-visible.
  std::int64_t corrupted = 0;
  /// End-to-end latency of ok requests (client-observed).
  runtime::LatencyHistogram latency;
  /// Queue wait of ok requests, as reported by the server.
  runtime::LatencyHistogram queue_wait;
  /// Mean batch size the ok requests rode in.
  double mean_batch = 0.0;

  /// One record per issued request (LoadGenOptions::record_samples
  /// only), in issue order: when it was issued relative to the run
  /// start, how long it took, and how it ended.
  struct Sample {
    double issue_offset_s = 0.0;
    double total_s = 0.0;
    RequestStatus status = RequestStatus::kOk;
  };
  std::vector<Sample> samples;
};

/// Drives `server` with samples cycled from `inputs` (each of the
/// server's sample_shape) for options.duration_s. Blocks until every
/// issued request has resolved.
LoadGenResult run_load(ModelServer& server,
                       const std::vector<tensor::Tensor>& inputs,
                       const LoadGenOptions& options);

// ---- mixed multi-tenant arrival streams (serve/fleet) -------------------

/// One tenant's open-loop traffic in a mixed multi-tenant trace.
struct TenantStream {
  /// Registered fleet tenant the arrivals are submitted as.
  std::string tenant;
  /// Marginal Poisson arrival rate of this stream alone.
  double offered_rps = 100.0;
};

/// One arrival of a mixed trace: which stream fires at what offset.
struct MixedArrival {
  double t_s = 0.0;  // offset from trace start
  int stream = 0;    // index into the TenantStream vector
};

/// Deterministic merged multi-tenant arrival schedule: each stream gets
/// an independent Poisson process (its Rng is the stream-index-th fork
/// of Rng(seed), so a stream's schedule depends only on (seed, index) —
/// adding or changing *other* streams never perturbs it, which is what
/// "interleaving preserves each tenant's marginal rate" means here).
/// Streams are merged by arrival time with a stable stream-index
/// tie-break, so the result is sorted and reproducible bit-for-bit.
/// Bounded by whichever of duration_s / max_arrivals (0 = unbounded)
/// binds first; at least one bound is required.
std::vector<MixedArrival> make_mixed_trace(
    const std::vector<TenantStream>& streams, double duration_s,
    std::uint64_t seed, std::int64_t max_arrivals = 0);

}  // namespace dlbench::serve
