#pragma once

// Multi-tenant DLaaS control plane over serve::ModelServer.
//
// One ModelServer serves one frozen model; production DLaaS platforms
// (the Wu et al. measurement study this repo's serving layer follows)
// multiplex many models and many tenants over one machine's cores.
// FleetManager is that layer: it registers several frozen models (each
// backed by its own ModelServer replica pool), shares one process-wide
// replica core budget across them, and admits tenant traffic through
// per-tenant bounded queues drained by a deterministic weighted-fair
// scheduler.
//
// The pieces, front to back:
//
//   Admission — each tenant owns a bounded FIFO queue and an SLO class.
//   A submission is shed (kShed) when the *global* queued backlog has
//   crossed its class watermark: bronze sheds first (at
//   bronze_watermark × global_queue_budget), then silver, and gold only
//   once the full budget is exhausted — "gold sheds last". Past the
//   watermark check, a full per-tenant queue rejects (kRejected). Both
//   decisions are pure functions of the queued backlog, which is what
//   makes drained replays reproducible (below).
//
//   Scheduling — a single dispatcher thread drains the tenant queues in
//   deficit-round-robin order: each round visit deposits
//   quantum × weight into the tenant's deficit counter and dispatches
//   one queued request per unit of deficit; an emptied queue forfeits
//   its leftover deficit. Over any busy interval tenants therefore
//   receive service in exact proportion to their weights. The FIFO
//   policy ablates this: one global arrival-order queue, no weights —
//   the configuration the bench shows collapsing under overload.
//
//   Dispatch window — each model accepts at most
//   window_per_replica × current-replica-target in-flight dispatches.
//   When the scheduler's chosen tenant targets a full model it BLOCKS
//   until a completion frees the window; it never skips to another
//   tenant. Blocking (not skipping) is what keeps the decision sequence
//   independent of completion *timing*: the next decision depends only
//   on queue contents, never on which model happened to finish first.
//
//   Autoscaling — every autoscale_every dispatch decisions (an ordinal
//   cadence, deliberately not wall clock) the dispatcher re-evaluates
//   each model's queued backlog per replica. Backlog above
//   scale_up_backlog adds a replica (within the model's max and the
//   global core budget); backlog at or below scale_down_backlog for
//   hysteresis_evals consecutive evaluations retires one (never below
//   min). Scale-down goes through ModelServer::resize_replicas, whose
//   retire-after-drain contract finishes the replica's current batch
//   before the thread exits — scale-down never strands in-flight work.
//
// Determinism contract (DESIGN.md §14): in the pause → preload → resume
// drain mode, every admission decision happens while the scheduler is
// idle (so it is a pure function of trace order, caps and watermarks),
// and every dispatch / scale decision is then a pure function of the
// static queue contents and the decision ordinal. Same registration
// order + same arrival trace ⇒ bit-identical decision log, independent
// of machine load, core count or model speed. Live mode (submissions
// racing the scheduler) shares the same code path but only the
// per-decision *invariants* hold, not log identity.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/frozen.hpp"
#include "runtime/histogram.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "tensor/tensor.hpp"

namespace dlbench::serve {

/// Dispatcher policy: the real scheduler, or the ablation baseline.
enum class FleetPolicy {
  kWeightedFair,  // deficit round-robin over per-tenant queues
  kFifo,          // one global arrival-order queue (ablation)
};
const char* to_string(FleetPolicy policy);

/// Fleet-wide policy knobs (per-model knobs live in FleetModelConfig).
struct FleetOptions {
  FleetPolicy policy = FleetPolicy::kWeightedFair;
  /// Process-wide replica budget shared by every model: the autoscaler
  /// never lets the sum of replica targets exceed this.
  int core_budget = 4;
  /// Per-tenant queue bound; a full queue rejects (kRejected).
  std::size_t tenant_queue_capacity = 256;
  /// Global queued-backlog budget the SLO watermarks scale against.
  std::size_t global_queue_budget = 512;
  /// Shed-by-class admission control. Off, only per-tenant queue
  /// capacity pushes back (the "no-admission" ablation).
  bool slo_admission = true;
  /// Class watermarks as fractions of global_queue_budget: a class is
  /// shed once the global queued backlog reaches its watermark. Bronze
  /// sheds first, gold last (at the full budget by default).
  double bronze_watermark = 0.5;
  double silver_watermark = 0.75;
  double gold_watermark = 1.0;
  /// Deficit deposited per round visit is quantum × tenant weight.
  std::int64_t drr_quantum = 4;

  // -- autoscaler --
  bool autoscale = true;
  /// Dispatch decisions between autoscaler evaluations (ordinal
  /// cadence: evaluation points are decision counts, not timestamps,
  /// so scale decisions replay deterministically).
  std::int64_t autoscale_every = 64;
  /// Queued backlog per replica at or above which a model gains one.
  double scale_up_backlog = 4.0;
  /// Queued backlog per replica at or below which a model is a
  /// scale-down candidate.
  double scale_down_backlog = 1.0;
  /// Consecutive scale-down-candidate evaluations required before a
  /// replica is actually retired (hysteresis against flapping).
  int hysteresis_evals = 3;

  /// Keep the full decision log (admission sheds, dispatches, scale
  /// events). The determinism tests replay against it; long-lived live
  /// deployments can turn it off.
  bool record_decisions = true;
};

/// One registered model: a frozen predictor plus its serving knobs.
/// The fleet owns a ModelServer per model, staffed between
/// [min_replicas, max_replicas] by the autoscaler.
struct FleetModelConfig {
  std::string name;
  /// Shape of one request sample, e.g. [1, 28, 28].
  tensor::Shape sample_shape;
  int min_replicas = 1;
  int max_replicas = 2;
  /// Max in-flight dispatches per staffed replica before the scheduler
  /// blocks on this model (the dispatch window numerator).
  std::int64_t window_per_replica = 2;
  /// Inner-server batching knobs (see ServerOptions).
  std::int64_t max_batch = 8;
  double max_batch_delay_s = 0.001;
  runtime::Device device = runtime::Device::cpu();
  bool compute_probabilities = false;
};

/// One registered tenant: a named principal submitting against one
/// registered model, with a weight (DRR share) and an SLO class.
struct FleetTenantConfig {
  std::string name;
  std::string model;
  SloClass slo = SloClass::kSilver;
  /// Relative weighted-fair share (>= 1). Ignored by kFifo.
  int weight = 1;
};

/// What one decision-log entry records.
enum class FleetDecisionKind {
  kShedAdmission,  // SLO watermark shed (tenant, slo, detail = backlog)
  kRejectQueue,    // per-tenant queue full (detail = queue depth)
  kDispatch,       // request handed to a model server (detail = backlog)
  kScaleUp,        // model gained a replica (detail = new target)
  kScaleDown,      // model retired a replica (detail = new target)
};
const char* to_string(FleetDecisionKind kind);

/// One entry of the fleet's decision log. In drained replays the whole
/// sequence is bit-identical run-to-run (see the determinism contract
/// above); format_decision gives the canonical one-line form the tests
/// and the bench compare.
struct FleetDecision {
  std::int64_t ordinal = 0;
  FleetDecisionKind kind = FleetDecisionKind::kDispatch;
  std::string tenant;  // empty for scale events
  std::string model;
  SloClass slo = SloClass::kSilver;
  std::int64_t detail = 0;
};
std::string format_decision(const FleetDecision& d);

/// Per-tenant outcome counters + latency, snapshot by stats().
struct FleetTenantStats {
  std::string tenant;
  std::string model;
  SloClass slo = SloClass::kSilver;
  int weight = 1;
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t shed = 0;      // SLO watermark sheds
  std::int64_t rejected = 0;  // tenant queue full
  std::int64_t dispatched = 0;
  std::int64_t ok = 0;
  std::int64_t failed = 0;  // dispatched but not kOk (expired, error, ...)
  /// End-to-end latency of ok requests: admission → future resolved.
  runtime::LatencyHistogram latency;
  /// Fleet-queue wait: admission → handed to the model server.
  runtime::LatencyHistogram queue_wait;
};

/// Per-model staffing + dispatch counters, snapshot by stats().
struct FleetModelStats {
  std::string model;
  int replicas = 0;       // current target
  int replicas_peak = 0;  // high-water mark over the run
  int replicas_low = 0;   // low-water mark over the run
  std::int64_t dispatched = 0;
  std::int64_t scale_ups = 0;
  std::int64_t scale_downs = 0;
};

/// One autoscaler action, for the replica timeline.
struct FleetScaleEvent {
  std::int64_t ordinal = 0;  // decision ordinal it fired at
  std::string model;
  int from = 0;
  int to = 0;
};

/// Snapshot of the whole fleet.
struct FleetStats {
  std::vector<FleetTenantStats> tenants;  // registration order
  std::vector<FleetModelStats> models;    // registration order
  std::vector<FleetScaleEvent> timeline;  // scale events in ordinal order
  std::int64_t decisions = 0;             // log length (or would-be length)
  std::int64_t queued = 0;                // current global backlog
  std::int64_t inflight = 0;              // dispatched, unresolved
};

/// The control plane. Lifecycle: construct → register models and
/// tenants → start() → submit()/pause()/resume()/drain() → stop().
/// Thread-safe: submit() from any number of threads; the dispatcher
/// and one completion watcher per model run internally.
class FleetManager {
 public:
  explicit FleetManager(FleetOptions options);
  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;
  ~FleetManager();

  /// Registers a model (before start() only). Names must be unique.
  void register_model(FleetModelConfig config, nn::FrozenModel model);
  /// Registers a tenant (before start() only) against a registered
  /// model. Names must be unique; weight >= 1.
  void register_tenant(FleetTenantConfig config);

  /// Builds the model servers (each at min_replicas) and starts the
  /// dispatcher + completion watchers. `paused` starts the dispatcher
  /// idle so a trace can be preloaded (the deterministic drain mode).
  void start(bool paused = false);

  /// Admits one request for `tenant`. Never blocks: the future resolves
  /// immediately with kShed (SLO watermark) or kRejected (tenant queue
  /// full) when admission fails. The tensor is aliased, not copied.
  std::future<Prediction> submit(const std::string& tenant,
                                 tensor::Tensor input);
  /// Same, by registration index (the hot path for trace drivers).
  std::future<Prediction> submit(int tenant_index, tensor::Tensor input);

  /// Dispatcher gate for the drain mode. pause() stops dispatching
  /// after the in-progress decision; resume() restarts it.
  void pause();
  void resume();

  /// Blocks until every queue is empty and every dispatch has resolved.
  /// Resumes a paused dispatcher first (preload → drain).
  void drain();

  /// Stops the fleet. `drain` serves everything still queued first;
  /// otherwise queued requests resolve kShutdown (dispatched work is
  /// always allowed to finish — nothing in flight is dropped).
  /// Idempotent; the destructor calls stop(true).
  void stop(bool drain = true);

  FleetStats stats() const;
  /// Copy of the decision log (record_decisions only).
  std::vector<FleetDecision> decision_log() const;
  /// Registration index for `tenant` (DLB_CHECKs on unknown names).
  int tenant_index(const std::string& tenant) const;
  /// Current replica target for `model`.
  int replica_target(const std::string& model) const;
  const FleetOptions& options() const { return options_; }

 private:
  /// One admitted-but-undispatched request in a tenant queue.
  struct Queued {
    tensor::Tensor input;
    std::shared_ptr<std::promise<Prediction>> promise;
    std::int64_t admit_ns = 0;
  };

  /// One dispatched request a completion watcher is waiting on.
  struct Pending {
    std::future<Prediction> inner;
    std::shared_ptr<std::promise<Prediction>> promise;
    int tenant = 0;
    std::int64_t admit_ns = 0;
    std::int64_t dispatch_ns = 0;
  };

  struct Model {
    FleetModelConfig config;
    nn::FrozenModel frozen;
    std::unique_ptr<ModelServer> server;
    int target = 0;        // current replica target
    int peak = 0;          // high-water replica mark
    int low = 0;           // low-water replica mark
    std::int64_t inflight = 0;
    std::int64_t dispatched = 0;
    std::int64_t scale_ups = 0;
    std::int64_t scale_downs = 0;
    int low_evals = 0;  // consecutive scale-down-candidate evaluations
    std::deque<Pending> pending;  // dispatch order
    std::thread watcher;

    Model(FleetModelConfig c, nn::FrozenModel f)
        : config(std::move(c)), frozen(std::move(f)) {}
  };

  struct Tenant {
    FleetTenantConfig config;
    int model_index = 0;
    std::deque<Queued> queue;
    std::int64_t deficit = 0;
    std::int64_t submitted = 0;
    std::int64_t admitted = 0;
    std::int64_t shed = 0;
    std::int64_t rejected = 0;
    std::int64_t dispatched = 0;
    std::int64_t ok = 0;
    std::int64_t failed = 0;
    runtime::LatencyHistogram latency;
    runtime::LatencyHistogram queue_wait;
  };

  void dispatcher_loop();
  void watcher_loop(int model_index);
  /// Next tenant to serve under the active policy, or -1 when every
  /// queue is empty. Consumes DRR deficit / FIFO head. mu_ held.
  int pick_locked();
  int pick_drr_locked();
  /// Ordinal-cadence autoscaler evaluation. mu_ held.
  void autoscale_locked();
  void log_locked(FleetDecisionKind kind, const std::string& tenant,
                  const std::string& model, SloClass slo,
                  std::int64_t detail);
  std::int64_t window_locked(const Model& m) const {
    return m.config.window_per_replica * static_cast<std::int64_t>(m.target);
  }
  bool idle_locked() const { return queued_total_ == 0 && inflight_total_ == 0; }

  FleetOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // dispatcher: work / window / resume
  std::condition_variable cv_watch_;  // watchers: pending arrived / stop
  std::condition_variable cv_idle_;   // drain(): fleet went idle
  std::vector<std::unique_ptr<Model>> models_;
  std::vector<Tenant> tenants_;
  std::deque<int> fifo_;  // admission-order tenant indices (kFifo only)
  bool started_ = false;
  bool paused_ = false;
  bool stop_ = false;
  std::int64_t queued_total_ = 0;
  std::int64_t inflight_total_ = 0;
  std::int64_t decision_ordinal_ = 0;
  std::int64_t dispatch_count_ = 0;
  int drr_cursor_ = 0;   // next tenant the DRR rotor visits
  int drr_serving_ = -1; // tenant currently spending deficit, -1 = none
  std::vector<FleetDecision> log_;
  std::vector<FleetScaleEvent> timeline_;

  std::thread dispatcher_;
};

// ---- trace driver -------------------------------------------------------

/// How run_fleet_trace replays a mixed arrival trace.
struct FleetLoadOptions {
  /// true: live mode — sleep to each arrival's offset and submit, so
  /// latency and backlog reflect the offered rates (the bench's
  /// overload cells). false: deterministic drain mode — pause, preload
  /// every arrival, resume and drain (the decision-log replay mode).
  bool realtime = true;
  /// Arrival offsets are multiplied by this (compress a trace to run
  /// faster than generated; realtime only).
  double time_scale = 1.0;
};

/// Client-side view of one trace replay (per-tenant detail lives in
/// FleetManager::stats()).
struct FleetLoadResult {
  double duration_s = 0.0;  // wall clock incl. drain
  std::int64_t issued = 0;
};

/// Replays `trace` (from make_mixed_trace over `streams`) against
/// `fleet`: arrival i submits inputs[stream][k mod inputs[stream].size]
/// (k = that stream's arrival count) as the tenant named by its stream.
/// Blocks until every future has resolved. The fleet must be started —
/// paused for drain mode, running for realtime.
FleetLoadResult run_fleet_trace(
    FleetManager& fleet, const std::vector<TenantStream>& streams,
    const std::vector<MixedArrival>& trace,
    const std::vector<std::vector<tensor::Tensor>>& inputs,
    const FleetLoadOptions& options = {});

}  // namespace dlbench::serve
