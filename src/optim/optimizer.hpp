#pragma once

// Optimizers and learning-rate schedules.
//
// Table II/III: TF uses Adam on MNIST, everyone uses SGD elsewhere;
// Caffe applies weight decay through its solver (its regularizer in the
// paper's robustness comparison) and a two-phase learning-rate schedule
// on CIFAR-10 (0.001 for 8 epochs, then 0.0001 for 2).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/device.hpp"
#include "tensor/tensor.hpp"

namespace dlbench::optim {

using runtime::Device;
using tensor::Tensor;

/// Piecewise-constant learning-rate schedule: rate(step) returns the lr
/// for the given global step. Default is a fixed rate.
class LrSchedule {
 public:
  /// Fixed learning rate.
  explicit LrSchedule(double base_lr);

  /// Multistep: rate drops to `rates[i]` once step >= boundaries[i].
  LrSchedule(double base_lr, std::vector<std::int64_t> boundaries,
             std::vector<double> rates);

  double rate(std::int64_t step) const;
  double base() const { return base_lr_; }
  std::string describe() const;

 private:
  double base_lr_;
  std::vector<std::int64_t> boundaries_;
  std::vector<double> rates_;
};

/// Mutates parameters in place from their accumulated gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;

  /// Applies one update. `step` is the 0-based global step count.
  virtual void step(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads, std::int64_t step,
                    const Device& dev) = 0;
};

/// SGD with optional momentum and decoupled L2 weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(LrSchedule schedule, double momentum = 0.0, double weight_decay = 0.0);

  std::string name() const override { return "SGD"; }
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads, std::int64_t step,
            const Device& dev) override;

  double momentum() const { return momentum_; }
  double weight_decay() const { return weight_decay_; }

 private:
  LrSchedule schedule_;
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;  // lazily sized to params
};

/// SGD with Nesterov momentum (Torch's optim.sgd `nesterov` flag; the
/// lookahead variant many 2015-era recipes preferred for CNNs).
class NesterovSgd final : public Optimizer {
 public:
  NesterovSgd(LrSchedule schedule, double momentum = 0.9,
              double weight_decay = 0.0);

  std::string name() const override { return "NesterovSGD"; }
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads, std::int64_t step,
            const Device& dev) override;

 private:
  LrSchedule schedule_;
  double momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

/// AdaGrad (Duchi et al.): per-parameter rates from accumulated
/// squared gradients — one of the optimizer choices the frameworks
/// under study shipped (caffe's ADAGRAD solver type).
class AdaGrad final : public Optimizer {
 public:
  AdaGrad(LrSchedule schedule, double epsilon = 1e-8,
          double weight_decay = 0.0);

  std::string name() const override { return "AdaGrad"; }
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads, std::int64_t step,
            const Device& dev) override;

 private:
  LrSchedule schedule_;
  double epsilon_, weight_decay_;
  std::vector<Tensor> accum_;
};

/// RMSProp (Hinton): exponentially decayed squared-gradient scaling —
/// the optimizer TF's original CIFAR-10 multi-GPU recipes used.
class RmsProp final : public Optimizer {
 public:
  RmsProp(LrSchedule schedule, double decay = 0.9, double epsilon = 1e-8,
          double weight_decay = 0.0);

  std::string name() const override { return "RMSProp"; }
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads, std::int64_t step,
            const Device& dev) override;

 private:
  LrSchedule schedule_;
  double decay_, epsilon_, weight_decay_;
  std::vector<Tensor> mean_square_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(LrSchedule schedule, double beta1 = 0.9, double beta2 = 0.999,
       double epsilon = 1e-8, double weight_decay = 0.0);

  std::string name() const override { return "Adam"; }
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads, std::int64_t step,
            const Device& dev) override;

 private:
  LrSchedule schedule_;
  double beta1_, beta2_, epsilon_, weight_decay_;
  std::vector<Tensor> m_, v_;
};

}  // namespace dlbench::optim
