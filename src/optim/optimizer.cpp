#include "optim/optimizer.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace dlbench::optim {

// ---- LrSchedule ----

LrSchedule::LrSchedule(double base_lr) : base_lr_(base_lr) {
  DLB_CHECK(base_lr > 0.0, "learning rate must be positive");
}

LrSchedule::LrSchedule(double base_lr, std::vector<std::int64_t> boundaries,
                       std::vector<double> rates)
    : base_lr_(base_lr),
      boundaries_(std::move(boundaries)),
      rates_(std::move(rates)) {
  DLB_CHECK(base_lr > 0.0, "learning rate must be positive");
  DLB_CHECK(boundaries_.size() == rates_.size(),
            "boundaries/rates size mismatch");
  for (std::size_t i = 1; i < boundaries_.size(); ++i)
    DLB_CHECK(boundaries_[i] > boundaries_[i - 1],
              "boundaries must be increasing");
}

double LrSchedule::rate(std::int64_t step) const {
  double lr = base_lr_;
  for (std::size_t i = 0; i < boundaries_.size(); ++i)
    if (step >= boundaries_[i]) lr = rates_[i];
  return lr;
}

std::string LrSchedule::describe() const {
  std::ostringstream os;
  os << base_lr_;
  for (std::size_t i = 0; i < boundaries_.size(); ++i)
    os << " ->" << rates_[i] << "@" << boundaries_[i];
  return os.str();
}

namespace {

void check_param_grads(const std::vector<Tensor*>& params,
                       const std::vector<Tensor*>& grads) {
  DLB_CHECK(params.size() == grads.size(), "params/grads count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i)
    DLB_CHECK(params[i]->shape() == grads[i]->shape(),
              "param/grad shape mismatch at index " << i);
}

void ensure_state(std::vector<Tensor>& state,
                  const std::vector<Tensor*>& params) {
  if (state.size() == params.size()) return;
  DLB_CHECK(state.empty(), "optimizer rebound to a different model");
  state.reserve(params.size());
  for (Tensor* p : params) state.emplace_back(p->shape());
}

}  // namespace

// ---- SGD ----

Sgd::Sgd(LrSchedule schedule, double momentum, double weight_decay)
    : schedule_(std::move(schedule)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  DLB_CHECK(momentum >= 0.0 && momentum < 1.0, "momentum must be in [0,1)");
  DLB_CHECK(weight_decay >= 0.0, "weight decay must be non-negative");
}

void Sgd::step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads, std::int64_t step,
               const Device& dev) {
  check_param_grads(params, grads);
  const auto lr = static_cast<float>(schedule_.rate(step));
  const auto wd = static_cast<float>(weight_decay_);
  const auto mu = static_cast<float>(momentum_);

  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      float* p = params[i]->raw();
      const float* g = grads[i]->raw();
      dev.parallel_for(
          static_cast<std::size_t>(params[i]->numel()),
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t k = lo; k < hi; ++k)
              p[k] -= lr * (g[k] + wd * p[k]);
          },
          4096);
    }
    return;
  }

  ensure_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->raw();
    const float* g = grads[i]->raw();
    float* v = velocity_[i].raw();
    dev.parallel_for(
        static_cast<std::size_t>(params[i]->numel()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            v[k] = mu * v[k] + g[k] + wd * p[k];
            p[k] -= lr * v[k];
          }
        },
        4096);
  }
}

// ---- Nesterov SGD ----

NesterovSgd::NesterovSgd(LrSchedule schedule, double momentum,
                         double weight_decay)
    : schedule_(std::move(schedule)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  DLB_CHECK(momentum >= 0.0 && momentum < 1.0, "momentum must be in [0,1)");
  DLB_CHECK(weight_decay >= 0.0, "weight decay must be non-negative");
}

void NesterovSgd::step(const std::vector<Tensor*>& params,
                       const std::vector<Tensor*>& grads, std::int64_t step,
                       const Device& dev) {
  check_param_grads(params, grads);
  ensure_state(velocity_, params);
  const auto lr = static_cast<float>(schedule_.rate(step));
  const auto mu = static_cast<float>(momentum_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->raw();
    const float* g = grads[i]->raw();
    float* v = velocity_[i].raw();
    dev.parallel_for(
        static_cast<std::size_t>(params[i]->numel()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            const float gk = g[k] + wd * p[k];
            v[k] = mu * v[k] + gk;
            // Nesterov lookahead: apply the momentum-extrapolated step.
            p[k] -= lr * (gk + mu * v[k]);
          }
        },
        4096);
  }
}

// ---- AdaGrad ----

AdaGrad::AdaGrad(LrSchedule schedule, double epsilon, double weight_decay)
    : schedule_(std::move(schedule)),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  DLB_CHECK(epsilon > 0.0, "epsilon must be positive");
  DLB_CHECK(weight_decay >= 0.0, "weight decay must be non-negative");
}

void AdaGrad::step(const std::vector<Tensor*>& params,
                   const std::vector<Tensor*>& grads, std::int64_t step,
                   const Device& dev) {
  check_param_grads(params, grads);
  ensure_state(accum_, params);
  const auto lr = static_cast<float>(schedule_.rate(step));
  const auto eps = static_cast<float>(epsilon_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->raw();
    const float* g = grads[i]->raw();
    float* a = accum_[i].raw();
    dev.parallel_for(
        static_cast<std::size_t>(params[i]->numel()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            const float gk = g[k] + wd * p[k];
            a[k] += gk * gk;
            p[k] -= lr * gk / (std::sqrt(a[k]) + eps);
          }
        },
        4096);
  }
}

// ---- RMSProp ----

RmsProp::RmsProp(LrSchedule schedule, double decay, double epsilon,
                 double weight_decay)
    : schedule_(std::move(schedule)),
      decay_(decay),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  DLB_CHECK(decay >= 0.0 && decay < 1.0, "decay must be in [0,1)");
  DLB_CHECK(epsilon > 0.0, "epsilon must be positive");
}

void RmsProp::step(const std::vector<Tensor*>& params,
                   const std::vector<Tensor*>& grads, std::int64_t step,
                   const Device& dev) {
  check_param_grads(params, grads);
  ensure_state(mean_square_, params);
  const auto lr = static_cast<float>(schedule_.rate(step));
  const auto rho = static_cast<float>(decay_);
  const auto eps = static_cast<float>(epsilon_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->raw();
    const float* g = grads[i]->raw();
    float* ms = mean_square_[i].raw();
    dev.parallel_for(
        static_cast<std::size_t>(params[i]->numel()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            const float gk = g[k] + wd * p[k];
            ms[k] = rho * ms[k] + (1.f - rho) * gk * gk;
            p[k] -= lr * gk / (std::sqrt(ms[k]) + eps);
          }
        },
        4096);
  }
}

// ---- Adam ----

Adam::Adam(LrSchedule schedule, double beta1, double beta2, double epsilon,
           double weight_decay)
    : schedule_(std::move(schedule)),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  DLB_CHECK(beta1 >= 0.0 && beta1 < 1.0, "beta1 must be in [0,1)");
  DLB_CHECK(beta2 >= 0.0 && beta2 < 1.0, "beta2 must be in [0,1)");
  DLB_CHECK(epsilon > 0.0, "epsilon must be positive");
}

void Adam::step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads, std::int64_t step,
                const Device& dev) {
  check_param_grads(params, grads);
  ensure_state(m_, params);
  ensure_state(v_, params);

  const auto lr = schedule_.rate(step);
  const double t = static_cast<double>(step) + 1.0;
  const double bc1 = 1.0 - std::pow(beta1_, t);
  const double bc2 = 1.0 - std::pow(beta2_, t);
  const auto alpha = static_cast<float>(lr * std::sqrt(bc2) / bc1);
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(epsilon_);
  const auto wd = static_cast<float>(weight_decay_);

  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->raw();
    const float* g = grads[i]->raw();
    float* m = m_[i].raw();
    float* v = v_[i].raw();
    dev.parallel_for(
        static_cast<std::size_t>(params[i]->numel()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            const float gk = g[k] + wd * p[k];
            m[k] = b1 * m[k] + (1.f - b1) * gk;
            v[k] = b2 * v[k] + (1.f - b2) * gk * gk;
            p[k] -= alpha * m[k] / (std::sqrt(v[k]) + eps);
          }
        },
        4096);
  }
}

}  // namespace dlbench::optim
