#pragma once

// Experiment harness: the paper's methodology as an API.
//
// Every measurement in the paper is an instance of one experiment
// template: framework F trains dataset D on device V using default
// setting S(F', D') — the setting framework F' ships for dataset D' —
// then evaluates on D's test split. The harness owns the datasets and
// the scaling policy and exposes run() over that template, so each
// bench binary is a thin loop over the cross-product its figure needs.

#include <cstdint>
#include <optional>
#include <string>

#include "data/dataset.hpp"
#include "frameworks/framework.hpp"
#include "frameworks/registry.hpp"
#include "runtime/fault.hpp"
#include "runtime/trace.hpp"

namespace dlbench::core {

using frameworks::DatasetId;
using frameworks::FrameworkKind;
using runtime::Device;

/// Workload sizing. The defaults are the "bench profile" documented in
/// DESIGN.md §7: small enough for minutes-long suites, large enough to
/// preserve every cross-framework comparison shape.
struct HarnessOptions {
  std::int64_t mnist_train = 1200;
  std::int64_t mnist_test = 300;
  std::int64_t cifar_train = 1000;
  std::int64_t cifar_test = 300;
  std::uint64_t data_seed = 42;
  std::uint64_t train_seed = 1234;

  /// Compute budget per training run, in estimated FLOPs. Substitutes
  /// for the paper's hour-scale runs: a run's step cap is
  /// budget / (3 x forward-flops x batch), so cheap nets earn
  /// proportionally more optimizer steps — the same way the paper's
  /// per-framework iteration counts relate (Caffe 5k vs TF 1M).
  /// Deterministic, unlike a wall-clock budget.
  double mnist_flop_budget = 4.0e11;
  double cifar_flop_budget = 2.3e12;

  /// Hard step cap for small-batch (< 32) settings, where per-step
  /// dispatch overhead, not FLOPs, dominates wall time.
  std::int64_t small_batch_step_cap = 450;

  /// Fraction of each setting's paper iteration count used as a floor
  /// on optimizer steps (see TrainOptions::min_steps_floor). Keeps
  /// modest-budget settings (Caffe: 5,000 iterations) from being
  /// starved of updates when the dataset shrinks. The floor is still
  /// subject to the flop budget above.
  double iteration_fraction = 0.05;

  /// Reads DLB_* environment overrides (see runtime/scale.hpp) plus
  /// DLB_MNIST_TRAIN/DLB_CIFAR_TRAIN/... sizes.
  static HarnessOptions from_env();

  /// Reduced profile for unit/integration tests.
  static HarnessOptions test_profile();
};

/// One measured cell of a paper table/figure.
struct RunRecord {
  std::string framework;      // executing framework
  std::string setting;        // e.g. "TF MNIST" (owner + tuned dataset)
  std::string dataset;        // dataset trained/evaluated on
  std::string device;         // "CPU" / "GPU"
  frameworks::TrainResult train;
  frameworks::EvalResult eval;
  /// Non-empty when the cell's train/eval threw: the error message.
  /// A failed cell is reported, not rethrown, so one bad cell cannot
  /// abort a whole figure sweep.
  std::string error;
  /// Per-cell metric summary, populated when the harness armed tracing
  /// for this cell (DLB_TRACE=1 and no caller-owned TraceScope).
  runtime::trace::TraceReport trace;

  bool failed() const { return !error.empty(); }
};

/// Owns datasets + scaling; executes experiment cells.
class Harness {
 public:
  explicit Harness(HarnessOptions options = HarnessOptions::from_env());

  /// Framework `fw` trains `data` on `device` using the default setting
  /// that framework `setting_fw` ships for `setting_data`.
  RunRecord run(FrameworkKind fw, FrameworkKind setting_fw,
                DatasetId setting_data, DatasetId data,
                const Device& device);

  /// Baseline cell: framework's own setting for the dataset it runs on.
  RunRecord run_default(FrameworkKind fw, DatasetId data,
                        const Device& device);

  /// Trains a model and returns it together with the record — used by
  /// the adversarial benches, which attack the trained model.
  struct TrainedModel {
    nn::Sequential model;
    RunRecord record;
    /// Test split with the setting's preprocessing applied — what the
    /// model actually sees; adversarial sweeps must attack this.
    data::Dataset test;
  };
  TrainedModel train_model(FrameworkKind fw, FrameworkKind setting_fw,
                           DatasetId setting_data, DatasetId data,
                           const Device& device);

  /// Same, but with the first fc layer resized (Table IX ablation).
  TrainedModel train_model_with_fc_width(FrameworkKind fw,
                                         FrameworkKind setting_fw,
                                         DatasetId setting_data,
                                         DatasetId data, const Device& device,
                                         std::int64_t fc_width);

  const data::Dataset& train_set(DatasetId id) const;
  const data::Dataset& test_set(DatasetId id) const;
  const HarnessOptions& options() const { return options_; }

 private:
  frameworks::TrainOptions train_options_for(
      const frameworks::TrainingConfig& config, DatasetId data,
      const nn::NetworkSpec& spec) const;

  HarnessOptions options_;
  /// Holds the env-armed DLB_FAULT_* plan (if any) for the harness's
  /// lifetime, so bench sweeps honor fault injection with no code
  /// changes. Empty when no fault is requested or a scope already
  /// exists (e.g. a test driving its own FaultScope).
  std::optional<runtime::fault::FaultScope> fault_scope_;
  data::DatasetPair mnist_;
  data::DatasetPair cifar_;
};

}  // namespace dlbench::core
