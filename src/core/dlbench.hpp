#pragma once

// Umbrella header: the public API of the DLBench reproduction.
//
// Quickstart:
//
//   #include "core/dlbench.hpp"
//   using namespace dlbench;
//
//   core::Harness harness;
//   auto record = harness.run_default(frameworks::FrameworkKind::kCaffe,
//                                     frameworks::DatasetId::kMnist,
//                                     runtime::Device::gpu());
//   std::cout << core::summarize(record) << "\n";
//
// See examples/ for full programs and DESIGN.md for the architecture.

#include "adversarial/attacks.hpp"
#include "core/harness.hpp"
#include "core/report.hpp"
#include "data/augment.hpp"
#include "data/dataset.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "frameworks/config.hpp"
#include "frameworks/emulations.hpp"
#include "frameworks/framework.hpp"
#include "frameworks/registry.hpp"
#include "nn/checkpoint.hpp"
#include "nn/layers.hpp"
#include "nn/network_spec.hpp"
#include "nn/sequential.hpp"
#include "optim/optimizer.hpp"
#include "runtime/device.hpp"
#include "runtime/scale.hpp"
#include "runtime/stopwatch.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
