#pragma once

// Paper-style rendering of harness results.

#include <cstdint>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "util/table.hpp"

namespace dlbench::core {

/// Table with the paper's standard columns — Framework / Default
/// Settings / Training Time (s) / Testing Time (s) / Accuracy (%).
util::Table results_table(const std::string& title,
                          const std::vector<RunRecord>& records);

/// One-line summary of a record for log output.
std::string summarize(const RunRecord& record);

/// Convergence/failure status cell for a record: "yes",
/// "yes (recovered x1)", "NO (diverged@120, 2 recoveries)",
/// "NO (timed out)", or "ERROR".
std::string run_status(const RunRecord& record);

/// Prints a header banner for a bench binary, including the workload
/// profile so results are interpretable.
void print_banner(const std::string& experiment_id,
                  const std::string& description,
                  const HarnessOptions& options);

/// Paper-vs-measured comparison row: prints the paper's published value
/// next to ours so benches double as EXPERIMENTS.md generators.
struct PaperComparison {
  std::string label;
  double paper_value;
  double measured_value;
  std::string unit;
};
util::Table comparison_table(const std::string& title,
                             const std::vector<PaperComparison>& rows);

/// One serving-benchmark cell: the configuration swept plus the
/// client-observed and server-observed outcome. Plain data on purpose —
/// core does not depend on src/serve; bench_serve fills this from
/// serve::LoadGenResult + serve::ServerStats.
struct ServeRecord {
  // Configuration.
  std::string framework;
  std::string dataset;
  std::string mode;  // "open" (Poisson) or "closed"
  std::string device;
  int replicas = 0;
  std::int64_t max_batch = 0;
  double max_batch_delay_s = 0.0;
  // Client-observed outcome.
  double duration_s = 0.0;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  std::int64_t issued = 0;
  std::int64_t ok = 0;
  std::int64_t rejected = 0;
  double mean_batch = 0.0;
  double latency_mean_s = 0.0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_p999_s = 0.0;
  double latency_max_s = 0.0;
  // Server-observed breakdown.
  std::int64_t max_queue_depth = 0;
  double busy_s = 0.0;
  double queue_wait_p50_s = 0.0;
  double queue_wait_p99_s = 0.0;
  double assemble_mean_s = 0.0;
  double forward_mean_s = 0.0;
  double scatter_mean_s = 0.0;
};

/// Serving analogue of results_table: Framework / Mode / Replicas /
/// Batch / Offered / Achieved / p50 / p99 / p999 / Rejected.
util::Table serve_table(const std::string& title,
                        const std::vector<ServeRecord>& records);

/// One adversarial-sweep cell: which model was attacked, with what,
/// and the crafting outcome — success rate plus the crafting-time
/// distribution the paper's Table VIII reports. Plain data on purpose,
/// like ServeRecord: core does not depend on src/adversarial; the
/// attack benches fill this from UntargetedSweep/TargetedSweep.
struct AttackRecord {
  // Configuration.
  std::string framework;  // framework whose trained model was attacked
  std::string setting;    // training setting label (e.g. "TF MNIST")
  std::string dataset;
  std::string attack;     // "fgsm" / "jsma"
  std::string device;
  int threads = 0;        // crafting workers the sweep ran with
  // Outcome.
  std::int64_t attacks = 0;          // attack units crafted
  std::int64_t successes = 0;
  double success_rate = 0.0;         // successes / attacks
  std::int64_t total_iterations = 0; // summed gradient/perturb steps
  // Timing, screening and crafting separated (see adversarial/engine).
  double screening_s = 0.0;
  double craft_wall_s = 0.0;
  double craft_mean_s = 0.0;
  double craft_p50_s = 0.0;
  double craft_p95_s = 0.0;
  double craft_p99_s = 0.0;
  double craft_max_s = 0.0;
};

/// Attack analogue of serve_table: Framework / Attack / Threads /
/// Attacks / Success / wall / mean / p50 / p95 / p99.
util::Table attack_table(const std::string& title,
                         const std::vector<AttackRecord>& records);

/// One-line summary of an attack cell for log output.
std::string summarize(const AttackRecord& record);

/// One attack cell as a JSON object / all cells as a JSON array.
std::string attack_record_json(const AttackRecord& record);
std::string attack_records_json(const std::vector<AttackRecord>& records);

/// Writes attack_records_json to `path`; warns and returns false on
/// filesystem errors, like write_records_json.
bool write_attack_records_json(const std::string& path,
                               const std::vector<AttackRecord>& records);

/// One-line summary of a serving cell for log output.
std::string summarize(const ServeRecord& record);

/// One serving cell as a JSON object / all cells as a JSON array.
std::string serve_record_json(const ServeRecord& record);
std::string serve_records_json(const std::vector<ServeRecord>& records);

/// Writes serve_records_json to `path`; warns and returns false on
/// filesystem errors, like write_records_json.
bool write_serve_records_json(const std::string& path,
                              const std::vector<ServeRecord>& records);

/// One record as a JSON object: identity + train (with the per-phase
/// time breakdown and loss curve) + eval + the trace summary when the
/// record carries one.
std::string record_json(const RunRecord& record);

/// All records as a JSON array.
std::string records_json(const std::vector<RunRecord>& records);

/// Writes records_json(records) to `path`; returns false (after
/// printing a warning) on filesystem errors rather than throwing, so a
/// finished sweep is never lost to a bad output path.
bool write_records_json(const std::string& path,
                        const std::vector<RunRecord>& records);

}  // namespace dlbench::core
