#pragma once

// Paper-style rendering of harness results.

#include <cstdint>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "util/table.hpp"

namespace dlbench::core {

/// Table with the paper's standard columns — Framework / Default
/// Settings / Training Time (s) / Testing Time (s) / Accuracy (%).
util::Table results_table(const std::string& title,
                          const std::vector<RunRecord>& records);

/// One-line summary of a record for log output.
std::string summarize(const RunRecord& record);

/// Convergence/failure status cell for a record: "yes",
/// "yes (recovered x1)", "NO (diverged@120, 2 recoveries)",
/// "NO (timed out)", or "ERROR".
std::string run_status(const RunRecord& record);

/// Prints a header banner for a bench binary, including the workload
/// profile so results are interpretable.
void print_banner(const std::string& experiment_id,
                  const std::string& description,
                  const HarnessOptions& options);

/// Paper-vs-measured comparison row: prints the paper's published value
/// next to ours so benches double as EXPERIMENTS.md generators.
struct PaperComparison {
  std::string label;
  double paper_value;
  double measured_value;
  std::string unit;
};
util::Table comparison_table(const std::string& title,
                             const std::vector<PaperComparison>& rows);

/// One serving-benchmark cell: the configuration swept plus the
/// client-observed and server-observed outcome. Plain data on purpose —
/// core does not depend on src/serve; bench_serve fills this from
/// serve::LoadGenResult + serve::ServerStats.
struct ServeRecord {
  // Configuration.
  std::string framework;
  std::string dataset;
  std::string mode;  // "open" (Poisson) or "closed"
  std::string device;
  int replicas = 0;
  std::int64_t max_batch = 0;
  double max_batch_delay_s = 0.0;
  // Client-observed outcome.
  double duration_s = 0.0;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  std::int64_t issued = 0;
  std::int64_t ok = 0;
  std::int64_t rejected = 0;
  double mean_batch = 0.0;
  double latency_mean_s = 0.0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_p999_s = 0.0;
  double latency_max_s = 0.0;
  // Server-observed breakdown.
  std::int64_t max_queue_depth = 0;
  double busy_s = 0.0;
  double queue_wait_p50_s = 0.0;
  double queue_wait_p99_s = 0.0;
  double assemble_mean_s = 0.0;
  double forward_mean_s = 0.0;
  double scatter_mean_s = 0.0;
};

/// Serving analogue of results_table: Framework / Mode / Replicas /
/// Batch / Offered / Achieved / p50 / p99 / p999 / Rejected.
util::Table serve_table(const std::string& title,
                        const std::vector<ServeRecord>& records);

/// One adversarial-sweep cell: which model was attacked, with what,
/// and the crafting outcome — success rate plus the crafting-time
/// distribution the paper's Table VIII reports. Plain data on purpose,
/// like ServeRecord: core does not depend on src/adversarial; the
/// attack benches fill this from UntargetedSweep/TargetedSweep.
struct AttackRecord {
  // Configuration.
  std::string framework;  // framework whose trained model was attacked
  std::string setting;    // training setting label (e.g. "TF MNIST")
  std::string dataset;
  std::string attack;     // "fgsm" / "jsma"
  std::string device;
  int threads = 0;        // crafting workers the sweep ran with
  // Outcome.
  std::int64_t attacks = 0;          // attack units crafted
  std::int64_t successes = 0;
  double success_rate = 0.0;         // successes / attacks
  std::int64_t total_iterations = 0; // summed gradient/perturb steps
  // Timing, screening and crafting separated (see adversarial/engine).
  double screening_s = 0.0;
  double craft_wall_s = 0.0;
  double craft_mean_s = 0.0;
  double craft_p50_s = 0.0;
  double craft_p95_s = 0.0;
  double craft_p99_s = 0.0;
  double craft_max_s = 0.0;
};

/// Attack analogue of serve_table: Framework / Attack / Threads /
/// Attacks / Success / wall / mean / p50 / p95 / p99.
util::Table attack_table(const std::string& title,
                         const std::vector<AttackRecord>& records);

/// One-line summary of an attack cell for log output.
std::string summarize(const AttackRecord& record);

/// One attack cell as a JSON object / all cells as a JSON array.
std::string attack_record_json(const AttackRecord& record);
std::string attack_records_json(const std::vector<AttackRecord>& records);

/// Writes attack_records_json to `path`; warns and returns false on
/// filesystem errors, like write_records_json.
bool write_attack_records_json(const std::string& path,
                               const std::vector<AttackRecord>& records);

/// One chaos-gauntlet cell: a serving run driven through a seeded fault
/// schedule, reporting the robustness metric family (goodput, p99
/// inflation, recovery window, fault/supervision event counts) the
/// comparative studies never measure. Plain data like ServeRecord —
/// core does not depend on src/serve; bench_gauntlet fills this from
/// serve::LoadGenResult + serve::ServerStats. Event counts are
/// deterministic given (seed, schedule): two runs with the same
/// configuration must produce identical crashes/retries/shed counts
/// (see DESIGN.md §13 determinism contract).
struct ChaosRecord {
  // Configuration.
  std::string framework;
  std::string dataset;
  std::string device;
  std::string scenario;  // fault-schedule label, e.g. "crash", "stall"
  bool supervised = true;
  int replicas = 0;
  std::int64_t max_batch = 0;
  double offered_rps = 0.0;
  double duration_s = 0.0;
  std::uint64_t seed = 0;
  // Client-observed outcome.
  std::int64_t issued = 0;
  std::int64_t ok = 0;
  std::int64_t rejected = 0;
  std::int64_t expired = 0;   // deadline shed (client-visible timeouts)
  std::int64_t errors = 0;    // forward errors surfaced after retries
  std::int64_t shed = 0;      // breaker-shed low-priority requests
  double goodput_rps = 0.0;   // ok responses / wall duration
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;
  // Degradation metrics from windowed p99s (NaN-safe: all-shed windows
  // carry the histogram sentinel and serialize as null).
  double baseline_p99_s = 0.0;  // pre-fault window p99
  double faulted_p99_s = 0.0;   // worst degraded-window p99
  double p99_inflation = 0.0;   // faulted / baseline
  double recovery_s = -1.0;     // degraded -> recovered window gap; -1 = never
  // Fault/supervision event counts (deterministic per seed+schedule).
  std::int64_t crashes = 0;
  std::int64_t restarts = 0;
  std::int64_t stalls_replaced = 0;
  std::int64_t retries = 0;
  std::int64_t hedges = 0;
  std::int64_t hedge_wins = 0;
  std::int64_t corrupted = 0;
  std::int64_t breaker_opens = 0;
  std::int64_t breaker_closes = 0;
};

/// Chaos analogue of serve_table: Scenario / Supervised / Offered /
/// Goodput / base p99 / fault p99 / inflation / recovery / events.
util::Table chaos_table(const std::string& title,
                        const std::vector<ChaosRecord>& records);

/// One-line summary of a chaos cell for log output.
std::string summarize(const ChaosRecord& record);

/// One chaos cell as a JSON object / all cells as a JSON array.
std::string chaos_record_json(const ChaosRecord& record);
std::string chaos_records_json(const std::vector<ChaosRecord>& records);

/// Writes chaos_records_json to `path`; warns and returns false on
/// filesystem errors, like write_records_json.
bool write_chaos_records_json(const std::string& path,
                              const std::vector<ChaosRecord>& records);

/// One tenant of a multi-tenant fleet cell: who submitted, under what
/// SLO class and fair share, and what they experienced — per-tenant
/// tail latency, goodput, shed/reject counts, and the replica staffing
/// of their model over the run. Plain data like ServeRecord — core does
/// not depend on src/serve; bench_serve fills this from
/// serve::FleetTenantStats + serve::FleetModelStats.
struct TenantRecord {
  // Configuration.
  std::string scenario;  // fleet cell label, e.g. "drr_slo", "fifo"
  std::string tenant;
  std::string model;  // registered fleet model the tenant targets
  std::string slo;    // "bronze" / "silver" / "gold"
  int weight = 1;
  double offered_rps = 0.0;
  double duration_s = 0.0;
  // Outcome.
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t shed = 0;      // SLO watermark sheds
  std::int64_t rejected = 0;  // tenant queue full
  std::int64_t ok = 0;
  std::int64_t failed = 0;
  double goodput_rps = 0.0;  // ok responses / wall duration
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;
  double queue_wait_p99_s = 0.0;
  // Replica staffing of the tenant's model (autoscaler timeline
  // extremes plus how often it acted).
  int replicas_min = 0;
  int replicas_max = 0;
  std::int64_t scale_ups = 0;
  std::int64_t scale_downs = 0;
};

/// Fleet analogue of serve_table: Scenario / Tenant / SLO / Weight /
/// Offered / Goodput / Shed / p50 / p99 / Replicas.
util::Table tenant_table(const std::string& title,
                         const std::vector<TenantRecord>& records);

/// One-line summary of a tenant cell for log output.
std::string summarize(const TenantRecord& record);

/// One tenant cell as a JSON object / all cells as a JSON array.
std::string tenant_record_json(const TenantRecord& record);
std::string tenant_records_json(const std::vector<TenantRecord>& records);

/// Writes tenant_records_json to `path`; warns and returns false on
/// filesystem errors, like write_records_json.
bool write_tenant_records_json(const std::string& path,
                               const std::vector<TenantRecord>& records);

/// One-line summary of a serving cell for log output.
std::string summarize(const ServeRecord& record);

/// One serving cell as a JSON object / all cells as a JSON array.
std::string serve_record_json(const ServeRecord& record);
std::string serve_records_json(const std::vector<ServeRecord>& records);

/// Writes serve_records_json to `path`; warns and returns false on
/// filesystem errors, like write_records_json.
bool write_serve_records_json(const std::string& path,
                              const std::vector<ServeRecord>& records);

/// One record as a JSON object: identity + train (with the per-phase
/// time breakdown and loss curve) + eval + the trace summary when the
/// record carries one.
std::string record_json(const RunRecord& record);

/// All records as a JSON array.
std::string records_json(const std::vector<RunRecord>& records);

/// Writes records_json(records) to `path`; returns false (after
/// printing a warning) on filesystem errors rather than throwing, so a
/// finished sweep is never lost to a bad output path.
bool write_records_json(const std::string& path,
                        const std::vector<RunRecord>& records);

}  // namespace dlbench::core
