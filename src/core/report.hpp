#pragma once

// Paper-style rendering of harness results.

#include <string>
#include <vector>

#include "core/harness.hpp"
#include "util/table.hpp"

namespace dlbench::core {

/// Table with the paper's standard columns — Framework / Default
/// Settings / Training Time (s) / Testing Time (s) / Accuracy (%).
util::Table results_table(const std::string& title,
                          const std::vector<RunRecord>& records);

/// One-line summary of a record for log output.
std::string summarize(const RunRecord& record);

/// Convergence/failure status cell for a record: "yes",
/// "yes (recovered x1)", "NO (diverged@120, 2 recoveries)",
/// "NO (timed out)", or "ERROR".
std::string run_status(const RunRecord& record);

/// Prints a header banner for a bench binary, including the workload
/// profile so results are interpretable.
void print_banner(const std::string& experiment_id,
                  const std::string& description,
                  const HarnessOptions& options);

/// Paper-vs-measured comparison row: prints the paper's published value
/// next to ours so benches double as EXPERIMENTS.md generators.
struct PaperComparison {
  std::string label;
  double paper_value;
  double measured_value;
  std::string unit;
};
util::Table comparison_table(const std::string& title,
                             const std::vector<PaperComparison>& rows);

/// One record as a JSON object: identity + train (with the per-phase
/// time breakdown and loss curve) + eval + the trace summary when the
/// record carries one.
std::string record_json(const RunRecord& record);

/// All records as a JSON array.
std::string records_json(const std::vector<RunRecord>& records);

/// Writes records_json(records) to `path`; returns false (after
/// printing a warning) on filesystem errors rather than throwing, so a
/// finished sweep is never lost to a bad output path.
bool write_records_json(const std::string& path,
                        const std::vector<RunRecord>& records);

}  // namespace dlbench::core
