#include "core/harness.hpp"

#include <cctype>
#include <cstdlib>

#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace dlbench::core {

namespace {

std::int64_t env_int64(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtoll(raw, nullptr, 10);
}

// "Caffe/TF MNIST/mnist/CPU" -> "caffe_tf_mnist_mnist_cpu": filesystem-
// safe cell tag for per-cell trace output paths.
std::string sanitize_cell_tag(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    else if (!out.empty() && out.back() != '_')
      out += '_';
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

// Inserts the cell tag before the extension: trace.json ->
// trace.caffe_mnist_cpu.json, so a sweep's cells do not clobber each
// other's chrome traces.
std::string per_cell_path(const std::string& base, const std::string& tag) {
  const auto slash = base.find_last_of('/');
  const auto dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + "." + tag;
  return base.substr(0, dot) + "." + tag + base.substr(dot);
}

}  // namespace

HarnessOptions HarnessOptions::from_env() {
  HarnessOptions opt;
  opt.mnist_train = env_int64("DLB_MNIST_TRAIN", opt.mnist_train);
  opt.mnist_test = env_int64("DLB_MNIST_TEST", opt.mnist_test);
  opt.cifar_train = env_int64("DLB_CIFAR_TRAIN", opt.cifar_train);
  opt.cifar_test = env_int64("DLB_CIFAR_TEST", opt.cifar_test);
  opt.small_batch_step_cap =
      env_int64("DLB_SMALL_BATCH_STEP_CAP", opt.small_batch_step_cap);
  if (const char* raw = std::getenv("DLB_MNIST_FLOPS"); raw && *raw)
    opt.mnist_flop_budget = std::strtod(raw, nullptr);
  if (const char* raw = std::getenv("DLB_CIFAR_FLOPS"); raw && *raw)
    opt.cifar_flop_budget = std::strtod(raw, nullptr);
  if (const char* raw = std::getenv("DLB_ITER_FRACTION"); raw && *raw)
    opt.iteration_fraction = std::strtod(raw, nullptr);
  return opt;
}

HarnessOptions HarnessOptions::test_profile() {
  HarnessOptions opt;
  opt.mnist_train = 300;
  opt.mnist_test = 100;
  opt.cifar_train = 300;
  opt.cifar_test = 100;
  opt.mnist_flop_budget = 4.0e10;
  opt.cifar_flop_budget = 4.0e10;
  opt.small_batch_step_cap = 150;
  opt.iteration_fraction = 0.01;
  return opt;
}

Harness::Harness(HarnessOptions options) : options_(options) {
  // Arm env-requested fault injection (DLB_FAULT_*) for the harness's
  // lifetime, i.e. a whole sweep. With the default single firing, the
  // first cell to reach the trigger absorbs the fault and the rest of
  // the sweep runs clean. Skipped if the caller already owns a scope.
  if (!runtime::fault::enabled()) {
    runtime::fault::FaultPlan plan = runtime::fault::FaultPlan::from_env();
    if (plan.active()) fault_scope_.emplace(plan);
  }

  data::MnistOptions mnist_opt;
  mnist_opt.train_samples = options_.mnist_train;
  mnist_opt.test_samples = options_.mnist_test;
  mnist_opt.seed = options_.data_seed;
  mnist_ = data::synthetic_mnist(mnist_opt);

  data::CifarOptions cifar_opt;
  cifar_opt.train_samples = options_.cifar_train;
  cifar_opt.test_samples = options_.cifar_test;
  cifar_opt.seed = options_.data_seed + 1;
  cifar_ = data::synthetic_cifar10(cifar_opt);
}

const data::Dataset& Harness::train_set(DatasetId id) const {
  return id == DatasetId::kMnist ? mnist_.train : cifar_.train;
}

const data::Dataset& Harness::test_set(DatasetId id) const {
  return id == DatasetId::kMnist ? mnist_.test : cifar_.test;
}

frameworks::TrainOptions Harness::train_options_for(
    const frameworks::TrainingConfig& config, DatasetId data,
    const nn::NetworkSpec& spec) const {
  frameworks::TrainOptions opts;
  opts.seed = options_.train_seed;
  opts.min_steps_floor = static_cast<std::int64_t>(
      options_.iteration_fraction *
      static_cast<double>(config.paper_max_iterations));
  opts.guard = frameworks::GuardOptions::from_env();
  opts.scale = runtime::ScaleConfig::from_env(runtime::ScaleConfig());
  if (opts.scale.max_step_cap == 0) {
    // Convert the per-run compute budget into a step cap: one training
    // step costs roughly 3x the forward pass (fwd + param/input grads).
    const double budget = data == DatasetId::kMnist
                              ? options_.mnist_flop_budget
                              : options_.cifar_flop_budget;
    const double step_flops = 3.0 *
                              static_cast<double>(nn::spec_forward_flops(spec)) *
                              static_cast<double>(config.batch_size);
    std::int64_t cap = static_cast<std::int64_t>(budget / step_flops);
    if (config.batch_size < 32)
      cap = std::min(cap, options_.small_batch_step_cap);
    opts.scale.max_step_cap = std::max<std::int64_t>(10, cap);
  }
  return opts;
}

Harness::TrainedModel Harness::train_model(FrameworkKind fw,
                                           FrameworkKind setting_fw,
                                           DatasetId setting_data,
                                           DatasetId data,
                                           const Device& device) {
  return train_model_with_fc_width(fw, setting_fw, setting_data, data, device,
                                   /*fc_width=*/0);
}

Harness::TrainedModel Harness::train_model_with_fc_width(
    FrameworkKind fw, FrameworkKind setting_fw, DatasetId setting_data,
    DatasetId data, const Device& device, std::int64_t fc_width) {
  auto framework = frameworks::make_framework(fw);
  frameworks::TrainingConfig config =
      frameworks::default_training_config(setting_fw, setting_data);
  nn::NetworkSpec spec =
      frameworks::default_network_spec(setting_fw, setting_data);
  if (fc_width > 0) spec = spec.with_first_fc_width(fc_width);

  // Working copies: the setting's preprocessing is fitted on the train
  // split and applied to both (the originals stay raw for other runs).
  const data::Dataset& train_base = train_set(data);
  data::Dataset train =
      config.train_fraction < 1.0
          ? train_base.take(static_cast<std::int64_t>(
                train_base.size() * config.train_fraction))
          : data::clone_dataset(train_base);
  data::Dataset test = data::clone_dataset(test_set(data));
  data::apply_preprocessing(config.preprocessing, train, test);

  // Cross-dataset settings keep the structure but adapt the input
  // geometry to the dataset actually trained (paper §III-C).
  spec.input_channels = train.channels();
  spec.input_height = train.height();
  spec.input_width = train.width();

  util::Rng model_rng(options_.train_seed ^ 0x5eed);
  TrainedModel out;
  out.model = framework->build_model(spec, device, model_rng);

  out.record.framework = framework->name();
  out.record.setting = config.label;
  out.record.dataset = train.name;
  out.record.device = device.name();
  // Env-armed per-cell tracing (DLB_TRACE=1): each cell gets its own
  // scope so its report lands in the record and its chrome trace (when
  // DLB_TRACE_OUT is set) in a per-cell file. Skipped when the caller
  // already owns a scope (e.g. a bench binary tracing a whole sweep).
  std::optional<runtime::trace::TraceScope> cell_trace;
  {
    runtime::trace::TraceOptions trace_opts =
        runtime::trace::TraceOptions::from_env();
    if (trace_opts.armed && runtime::trace::compiled() &&
        !runtime::trace::enabled()) {
      if (!trace_opts.out_path.empty()) {
        const std::string tag = sanitize_cell_tag(
            out.record.framework + "_" + out.record.setting + "_" +
            out.record.dataset + "_" + out.record.device);
        trace_opts.out_path = per_cell_path(trace_opts.out_path, tag);
      }
      cell_trace.emplace(std::move(trace_opts));
    }
  }

  // Guarded execution: a cell whose train/eval throws is returned as a
  // failed record (with the trainer's divergence/recovery stats intact)
  // instead of killing the sweep that requested it.
  try {
    out.record.train = framework->train(
        out.model, train, config, device,
        train_options_for(config, data, spec));
    out.record.eval = framework->evaluate(out.model, test, device);
  } catch (const dlbench::Error& e) {
    out.record.error = e.what();
  }
  if (cell_trace) {
    out.record.trace = cell_trace->report();
    cell_trace.reset();  // deactivate; writes the chrome JSON if requested
  }
  out.test = std::move(test);
  return out;
}

RunRecord Harness::run(FrameworkKind fw, FrameworkKind setting_fw,
                       DatasetId setting_data, DatasetId data,
                       const Device& device) {
  return train_model(fw, setting_fw, setting_data, data, device).record;
}

RunRecord Harness::run_default(FrameworkKind fw, DatasetId data,
                               const Device& device) {
  return run(fw, fw, data, data, device);
}

}  // namespace dlbench::core
