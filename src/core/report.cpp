#include "core/report.hpp"

#include <iostream>
#include <sstream>

#include "util/format.hpp"

namespace dlbench::core {

std::string run_status(const RunRecord& r) {
  if (r.failed()) return "ERROR";
  std::ostringstream os;
  if (r.train.converged) {
    os << "yes";
    if (r.train.recovery_attempts > 0)
      os << " (recovered x" << r.train.recovery_attempts << ")";
    return os.str();
  }
  os << "NO";
  if (r.train.timed_out) {
    os << " (timed out)";
  } else if (r.train.divergence_step >= 0) {
    os << " (diverged@" << r.train.divergence_step;
    if (r.train.recovery_attempts > 0)
      os << ", " << r.train.recovery_attempts << " recoveries";
    os << ")";
  }
  return os.str();
}

util::Table results_table(const std::string& title,
                          const std::vector<RunRecord>& records) {
  util::Table table({"Framework", "Default Settings", "Device",
                     "Training Time (s)", "Testing Time (s)",
                     "Accuracy (%)", "Converged"});
  table.set_title(title);
  for (const auto& r : records) {
    table.add_row({r.framework, r.setting, r.device,
                   util::format_seconds(r.train.train_time_s),
                   util::format_seconds(r.eval.test_time_s),
                   util::format_percent(r.eval.accuracy_pct),
                   run_status(r)});
  }
  return table;
}

std::string summarize(const RunRecord& r) {
  std::ostringstream os;
  os << r.framework << " [" << r.setting << "] on " << r.dataset << " ("
     << r.device << "): train " << util::format_seconds(r.train.train_time_s)
     << "s over " << r.train.steps << " steps ("
     << util::format_fixed(r.train.epochs_run, 2) << " epochs), test "
     << util::format_seconds(r.eval.test_time_s) << "s, accuracy "
     << util::format_percent(r.eval.accuracy_pct) << "%";
  if (r.train.recovery_attempts > 0 && !r.train.diverged) {
    os << "  [RECOVERED from divergence at step " << r.train.divergence_step
       << " after " << r.train.recovery_attempts << " rollback(s)]";
  }
  if (!r.train.converged) {
    os << "  [DID NOT CONVERGE";
    if (r.train.timed_out) {
      os << ": watchdog timeout";
    } else if (r.train.diverged) {
      os << ": diverged at step " << r.train.divergence_step << ", "
         << r.train.recovery_attempts << " recovery attempt(s) exhausted";
    }
    os << "]";
  }
  if (r.failed()) os << "  [ERROR: " << r.error << "]";
  return os.str();
}

void print_banner(const std::string& experiment_id,
                  const std::string& description,
                  const HarnessOptions& options) {
  std::cout << "==========================================================\n"
            << experiment_id << " — " << description << "\n"
            << "workload: MNIST " << options.mnist_train << "/"
            << options.mnist_test << ", CIFAR-10 " << options.cifar_train
            << "/" << options.cifar_test << " (train/test samples), "
            << "flop budgets mnist " << options.mnist_flop_budget
            << ", cifar " << options.cifar_flop_budget
            << "; small-batch step cap " << options.small_batch_step_cap
            << "\n"
            << "note: absolute numbers are bench-scale; compare shapes\n"
            << "      (ordering, ratios) against the paper values shown.\n"
            << "==========================================================\n";
}

util::Table comparison_table(const std::string& title,
                             const std::vector<PaperComparison>& rows) {
  util::Table table({"Quantity", "Paper", "Measured", "Unit"});
  table.set_title(title);
  for (const auto& row : rows) {
    table.add_row({row.label, util::format_fixed(row.paper_value, 2),
                   util::format_fixed(row.measured_value, 2), row.unit});
  }
  return table;
}

}  // namespace dlbench::core
